// Package serve turns the batch simulator into an online job service: an
// open system where MapReduce jobs arrive while the cluster is live,
// admission control sheds load the cluster cannot absorb, and every
// boundary event is recorded so any live run can be replayed offline,
// byte for byte.
//
// The layering is deliberate. internal/sched remains the closed-system
// scheduler (policies, placement, backfill); serve wraps its incremental
// API with the things only an open system needs: per-tenant quotas, a
// bounded admission queue with reject/shed backpressure, a job lifecycle
// (submitted → queued → running → done/failed, plus rejected and
// cancelled), and the wall-clock boundary. Live mode maps wall-clock
// arrivals onto virtual time through the des engine's injection
// primitive; replay mode drives the identical admission code from a
// recorded trace, with no wall clock anywhere. See DESIGN.md, "Online
// serving".
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/sched"
)

// State is a job's position in the service lifecycle.
type State int

const (
	// Rejected jobs never reached the cluster: admission control turned
	// them away (shed, quota, or invalid submission).
	Rejected State = iota
	// Queued jobs passed admission and wait for a gang.
	Queued
	// Running jobs hold a gang.
	Running
	// Done jobs completed and their output digest is recorded.
	Done
	// Failed jobs were admitted but could not launch.
	Failed
	// Cancelled jobs were withdrawn from the queue before placement.
	Cancelled
)

// String names the state for reports and JSON.
func (s State) String() string {
	switch s {
	case Rejected:
		return "rejected"
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return "unknown"
}

// Request is one submission crossing the service boundary.
type Request struct {
	Tenant string
	Kind   string
	Params Params
	// Weight and MinGang pass through to the scheduler policy (see
	// sched.JobSpec).
	Weight  int
	MinGang int
	// Class names the service class ("batch", "standard", "interactive";
	// empty means batch) and Deadline the relative completion SLO — both
	// pass through to sched.JobSpec, where admission may reject a
	// predicted miss, or demote the job to batch instead when Downgrade
	// is set. Elastic opts a molded gang into grow-back.
	Class     string
	Deadline  des.Time
	Downgrade bool
	Elastic   bool
	// Tag is an optional submitter-chosen correlation handle, recorded in
	// the arrival trace and echoed in the job record. The fleet router
	// keys its cross-shard job table on it: after a shard loss or router
	// restart, tags are what let re-admitted jobs be matched to their
	// fleet-level identity.
	Tag string
	// TraceID is the causal correlation ID threaded through the whole
	// stack: the fleet router stamps one on every submission it routes
	// (defaulting to the fleet tag), and serve echoes it into the job
	// record, the arrival trace, and the job's obs streams, so a job's
	// journey router -> shard -> sched -> core reads as one chain.
	TraceID string
}

// JobInfo is the service's record of one submission. All times are
// virtual (simulated) times.
type JobInfo struct {
	ID     int    `json:"id"`
	Tenant string `json:"tenant"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Params Params `json:"params,omitempty"`
	Tag    string `json:"tag,omitempty"`
	// TraceID is the fleet-level causal correlation ID (see
	// Request.TraceID); empty for direct submissions.
	TraceID string `json:"traceId,omitempty"`

	State  State  `json:"-"`
	Status string `json:"state"` // State.String(), kept in sync for JSON
	Reason string `json:"reason,omitempty"`

	Arrival des.Time `json:"arrival"`
	Admit   des.Time `json:"admit,omitempty"`
	Finish  des.Time `json:"finish,omitempty"`

	Want    int `json:"want,omitempty"`
	Granted int `json:"granted,omitempty"`

	// SLO record: normalized class name (set only when the submission used
	// SLO features), relative deadline, whether admission demoted the job
	// to batch, and — on a shed/quota reject — the predicted queue-drain
	// retry hint in wall seconds (the HTTP 429 Retry-After value).
	Class      string   `json:"class,omitempty"`
	Deadline   des.Time `json:"deadline,omitempty"`
	Downgraded bool     `json:"downgraded,omitempty"`
	RetryAfter int      `json:"retryAfter,omitempty"`

	// Digest is the canonical output digest (core.OutputDigester), valid
	// when HasDigest is set — the replay-verification handle.
	Digest    uint64 `json:"digest,omitempty"`
	HasDigest bool   `json:"hasDigest,omitempty"`

	WireBytes int64 `json:"wireBytes,omitempty"`
}

// TenantStats aggregates one tenant's admission history.
type TenantStats struct {
	Submitted int64
	Admitted  int64
	Rejected  int64
	Done      int64
}

// ClassStats aggregates one service class's SLO history. Met/Missed
// count only deadline-carrying completions; Rejected counts SLO
// admission rejects (predicted misses without downgrade).
type ClassStats struct {
	Submitted int64
	Done      int64
	Met       int64
	Missed    int64
	Rejected  int64
}

// Stats aggregates the service's admission and completion counters, plus
// the current queue/running gauges.
type Stats struct {
	Submitted       int64
	Admitted        int64
	Done            int64
	Failed          int64
	Cancelled       int64
	RejectedShed    int64
	RejectedQuota   int64
	RejectedInvalid int64
	RejectedSLO     int64 // predicted deadline misses turned away at admission

	Queued  int64 // gauge: currently waiting for a gang
	Running int64 // gauge: currently holding gangs

	WireBytes    int64    // cross-node traffic of completed jobs
	WaitTotal    des.Time // Σ (admit − arrival) over placed jobs
	ServiceTotal des.Time // Σ (finish − admit) over placed jobs

	// WaitHist and ServiceHist are the bucketed counterparts of the
	// integrals above, exposed as Prometheus histograms so p50/p95 are
	// scrapeable without client-side deltas.
	WaitHist    *Histogram
	ServiceHist *Histogram

	Tenants map[string]*TenantStats

	// Classes breaks attainment down by service class; nil until the first
	// submission that uses SLO features, so pre-SLO runs are unchanged.
	Classes map[string]*ClassStats
}

// rejected sums the reject counters.
func (s *Stats) rejected() int64 {
	return s.RejectedShed + s.RejectedQuota + s.RejectedInvalid + s.RejectedSLO
}

// clone deep-copies the stats for a snapshot.
func (s *Stats) clone() Stats {
	out := *s
	out.WaitHist = s.WaitHist.clone()
	out.ServiceHist = s.ServiceHist.clone()
	out.Tenants = make(map[string]*TenantStats, len(s.Tenants))
	for k, v := range s.Tenants {
		c := *v
		out.Tenants[k] = &c
	}
	if s.Classes != nil {
		out.Classes = make(map[string]*ClassStats, len(s.Classes))
		for k, v := range s.Classes {
			c := *v
			out.Classes[k] = &c
		}
	}
	return out
}

// Config shapes one service instance.
type Config struct {
	Cluster cluster.Config
	Policy  sched.Policy
	Catalog *Catalog

	// MaxQueue bounds the admission queue: a submission arriving while
	// MaxQueue jobs already wait is shed with a reject, the service's
	// backpressure signal. 0 defaults to 64; negative means unbounded.
	MaxQueue int
	// Quota caps any one tenant's in-flight jobs (queued + running);
	// 0 means unlimited. Quotas overrides per tenant.
	Quota  int
	Quotas map[string]int

	// TimeScale maps wall-clock onto virtual time in live mode: an
	// arrival T wall-seconds after start lands at T·TimeScale virtual
	// seconds (or at the engine frontier, whichever is later — virtual
	// time never runs backwards). 0 defaults to 1. Replay ignores it.
	TimeScale float64
	// TraceW, when set, records the live arrival trace (JSONL; see
	// trace.go). Replay ignores it.
	TraceW io.Writer

	// KeepOutputs retains the canonical rendered output of the most
	// recent KeepOutputs completed jobs (core.OutputRenderer text), so
	// results can be retrieved after completion — the fleet router
	// proxies them. 0 disables retention. Retention never affects
	// reports: outputs are a side table, not report state.
	KeepOutputs int
}

func (c Config) withDefaults() Config {
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	return c
}

// header captures everything admission depends on for the trace.
func (c Config) header() Header {
	return Header{
		Version:     TraceVersion,
		Policy:      c.Policy.Kind.String(),
		Share:       c.Policy.Share,
		NoBackfill:  c.Policy.NoBackfill,
		GPUs:        c.Cluster.GPUs,
		GPUsPerNode: c.Cluster.GPUsPerNode,
		MaxQueue:    c.MaxQueue,
		Quota:       c.Quota,
		Quotas:      c.Quotas,
		PhysBudget:  c.Catalog.PhysBudget(),
		Reserve:     c.Policy.Reserve,
		Preempt:     c.Policy.Preempt,
		Elastic:     c.Policy.Elastic,
	}
}

// quotaFor resolves one tenant's in-flight cap (0 = unlimited).
func (c Config) quotaFor(tenant string) int {
	if q, ok := c.Quotas[tenant]; ok {
		return q
	}
	return c.Quota
}

// session is the mode-independent half of the service: the engine,
// cluster, scheduler, and bookkeeping shared by live and replay runs.
// All mutations happen at engine time (engine-confined); the mutex only
// publishes job records and stats to foreign reader goroutines (HTTP).
type session struct {
	cfg Config
	eng *des.Engine   // the hub engine (shard 0 when sharded)
	ss  *des.ShardSet // nil = single-engine run
	cl  *cluster.Cluster
	sch *sched.Scheduler
	rec *TraceWriter

	mu       sync.Mutex
	jobs     []*JobInfo
	stats    Stats
	inflight map[string]int // per-tenant queued+running
	vnow     des.Time       // virtual time of the last state change

	// Fleet identity, stamped by the router's registration handshake
	// (empty when the daemon runs standalone).
	fleetShard string
	fleetEpoch int

	// Retained job outputs (Config.KeepOutputs most recent completions).
	outputs  map[int]string
	outOrder []int // completion order, for eviction

	// Engine-confined (never read by foreign goroutines):
	runnables []core.Runnable // by serve ID; dropped once digested
	schedOf   []int           // serve ID → sched ID, -1 when never admitted
	serveOf   map[int]int     // sched ID → serve ID
}

func newSession(cfg Config) (*session, error) {
	if cfg.Catalog == nil {
		return nil, errors.New("serve: config needs a Catalog")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	var eng *des.Engine
	var ss *des.ShardSet
	if n := cfg.Cluster.ShardCount(); n > 0 {
		ss = des.NewShardSet(n)
		eng = ss.Engine(0)
	} else {
		eng = des.NewEngine()
	}
	if cfg.Cluster.Obs.Enabled() {
		if ss != nil {
			ss.SetRecorder(cfg.Cluster.Obs)
		} else {
			eng.SetRecorder(cfg.Cluster.Obs)
		}
	}
	cl := cluster.New(eng, cfg.Cluster)
	sch, err := sched.NewScheduler(eng, cl, cfg.Policy)
	if err != nil {
		cl.Close()
		return nil, err
	}
	if ss != nil {
		sch.EnableSharding(ss, cfg.Cluster.Launch(), cfg.Cluster.Fabric.Latency)
	}
	ses := &session{
		cfg:      cfg,
		eng:      eng,
		ss:       ss,
		cl:       cl,
		sch:      sch,
		inflight: make(map[string]int),
		serveOf:  make(map[int]int),
		outputs:  make(map[int]string),
	}
	ses.stats.Tenants = make(map[string]*TenantStats)
	ses.stats.WaitHist = newLatencyHistogram()
	ses.stats.ServiceHist = newLatencyHistogram()
	if cfg.TraceW != nil {
		ses.rec = NewTraceWriter(cfg.TraceW, cfg.header())
	}
	sch.OnStart = ses.onStart
	sch.OnDone = ses.onDone
	sch.OnRequeue = ses.onRequeue
	return ses, nil
}

// run drives the session's engine (or shard set) to completion.
func (ses *session) run() des.Time {
	if ses.ss != nil {
		return ses.ss.Run()
	}
	return ses.eng.Run()
}

// newInjector opens the session's injection boundary, served by whichever
// dispatcher (engine or shard coordinator) will run.
func (ses *session) newInjector() *des.Injector {
	if ses.ss != nil {
		return ses.ss.NewInjector()
	}
	return ses.eng.NewInjector()
}

// tenantStats returns (creating) one tenant's counters. Callers hold mu.
func (ses *session) tenantStats(tenant string) *TenantStats {
	ts := ses.stats.Tenants[tenant]
	if ts == nil {
		ts = &TenantStats{}
		ses.stats.Tenants[tenant] = ts
	}
	return ts
}

// classStats returns (creating) one service class's counters. Callers
// hold mu. The Classes map itself is created lazily so pre-SLO runs
// never carry it.
func (ses *session) classStats(class string) *ClassStats {
	if ses.stats.Classes == nil {
		ses.stats.Classes = make(map[string]*ClassStats)
	}
	cs := ses.stats.Classes[class]
	if cs == nil {
		cs = &ClassStats{}
		ses.stats.Classes[class] = cs
	}
	return cs
}

// retryAfter predicts, in wall seconds, how long a shed submitter
// should back off: the cost-model drain time of the current queue,
// mapped through TimeScale and clamped to [1s, 1h]. Engine-confined
// (reads scheduler state).
func (ses *session) retryAfter() int {
	scale := ses.cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	secs := int(math.Ceil(ses.sch.QueuedCost().Seconds() / scale))
	if secs < 1 {
		secs = 1
	}
	if secs > 3600 {
		secs = 3600
	}
	return secs
}

// arrive runs one submission through admission at the current simulated
// time. Engine-confined; returns a copy of the job's record.
func (ses *session) arrive(now des.Time, req Request) JobInfo {
	id := len(ses.jobs)
	name := fmt.Sprintf("%s-%s-%d", req.Tenant, req.Kind, id)
	// The trace records every arrival — including ones about to be
	// rejected — because rejects are decisions, and decisions are
	// recomputed on replay, not recorded.
	if ses.rec != nil {
		ses.rec.Arrive(Arrival{Seq: id, At: now, Tenant: req.Tenant, Kind: req.Kind,
			Params: req.Params, Weight: req.Weight, MinGang: req.MinGang, Tag: req.Tag,
			TraceID: req.TraceID, Class: req.Class, Deadline: req.Deadline,
			Downgrade: req.Downgrade, Elastic: req.Elastic})
	}

	info := &JobInfo{
		ID: id, Tenant: req.Tenant, Kind: req.Kind, Name: name, Params: req.Params,
		Tag: req.Tag, TraceID: req.TraceID, Arrival: now,
		State: Rejected, Status: Rejected.String(),
	}
	ses.runnables = append(ses.runnables, nil)
	ses.schedOf = append(ses.schedOf, -1)
	if r := ses.cl.Obs; r.Enabled() {
		// The trace attr ties this job's streams to the fleet-level causal
		// chain; attached only when present so pre-fleet recordings stay
		// byte-identical.
		attrs := []obs.Attr{obs.A("tenant", req.Tenant), obs.A("kind", req.Kind)}
		if req.TraceID != "" {
			attrs = append(attrs, obs.A("trace", req.TraceID))
		}
		r.Emit(int64(now), obs.CatSim, "serve/"+name, "arrive", attrs...)
	}

	ses.mu.Lock()
	defer ses.mu.Unlock()
	ses.jobs = append(ses.jobs, info)
	ses.vnow = now
	ses.stats.Submitted++
	ts := ses.tenantStats(req.Tenant)
	ts.Submitted++

	reject := func(reason, class string, counter *int64) JobInfo {
		info.Reason = reason
		*counter = *counter + 1
		ts.Rejected++
		if r := ses.cl.Obs; r.Enabled() {
			r.Emit(int64(now), obs.CatSim, "serve/"+name, "reject", obs.A("reason", class))
		}
		return *info
	}

	cls, clsErr := sched.ParseClass(req.Class)
	if clsErr != nil {
		return reject(clsErr.Error(), "invalid", &ses.stats.RejectedInvalid)
	}
	// sloReq marks a submission that opted into any SLO feature; only
	// those carry a class record and feed the per-class stats, so plain
	// traffic reports exactly as before.
	sloReq := req.Class != "" || req.Deadline > 0 || req.Downgrade || req.Elastic
	var cs *ClassStats
	if sloReq {
		info.Class = cls.String()
		info.Deadline = req.Deadline
		cs = ses.classStats(info.Class)
		cs.Submitted++
	}

	run, err := ses.cfg.Catalog.Build(req.Kind, name, req.Params)
	if err != nil {
		return reject(err.Error(), "invalid", &ses.stats.RejectedInvalid)
	}
	info.Want = run.GangWant()
	if ses.cfg.MaxQueue >= 0 && ses.sch.QueueLen() >= ses.cfg.MaxQueue {
		info.RetryAfter = ses.retryAfter()
		return reject(fmt.Sprintf("shed: admission queue full (%d waiting)", ses.sch.QueueLen()),
			"shed", &ses.stats.RejectedShed)
	}
	if q := ses.cfg.quotaFor(req.Tenant); q > 0 && ses.inflight[req.Tenant] >= q {
		info.RetryAfter = ses.retryAfter()
		return reject(fmt.Sprintf("quota: tenant %q has %d jobs in flight (cap %d)",
			req.Tenant, ses.inflight[req.Tenant], q), "quota", &ses.stats.RejectedQuota)
	}

	// Admission. Submit synchronously runs the admission scan, so OnStart
	// may fire (and flip the state to Running) before Submit returns —
	// set Queued first and let the hook overwrite. The hooks re-lock mu;
	// release it across the call.
	info.State = Queued
	info.Status = Queued.String()
	ses.stats.Admitted++
	ses.stats.Queued++
	ts.Admitted++
	ses.inflight[req.Tenant]++
	ses.runnables[id] = run
	ses.mu.Unlock()
	// Register first so the sched↔serve ID maps are in place before
	// Arrive runs admission — OnStart can fire synchronously from it.
	schedID, err := ses.sch.Register(sched.JobSpec{Job: run, Weight: req.Weight, MinGang: req.MinGang,
		Class: cls, Deadline: req.Deadline, DowngradeOnMiss: req.Downgrade, Elastic: req.Elastic})
	if err == nil {
		ses.schedOf[id] = schedID
		ses.serveOf[schedID] = id
		ses.sch.Arrive(schedID)
	}
	ses.mu.Lock()
	if err != nil {
		// The job was validated by the catalog but the scheduler still
		// refused it (e.g. it wants more ranks than the cluster has).
		info.State = Rejected
		info.Status = Rejected.String()
		ses.stats.Admitted--
		ses.stats.Queued--
		ts.Admitted--
		ses.inflight[req.Tenant]--
		ses.runnables[id] = nil
		return reject(err.Error(), "invalid", &ses.stats.RejectedInvalid)
	}
	if ses.sch.Rejected(schedID) {
		// The SLO admission check predicted a deadline miss and turned the
		// job away at arrival.
		info.State = Rejected
		info.Status = Rejected.String()
		ses.stats.Admitted--
		ses.stats.Queued--
		ts.Admitted--
		ses.inflight[req.Tenant]--
		ses.runnables[id] = nil
		if cs != nil {
			cs.Rejected++
		}
		return reject(fmt.Sprintf("slo: predicted to miss %v deadline", req.Deadline),
			"slo", &ses.stats.RejectedSLO)
	}
	if ses.sch.Downgraded(schedID) {
		info.Downgraded = true
	}
	return *info
}

// cancel withdraws a queued job at the current simulated time, or — when
// the policy preempts — checkpoint-preempts a running one, whose gang
// then frees at its next chunk boundary (onRequeue settles the record).
// Engine-confined.
func (ses *session) cancel(now des.Time, id int) bool {
	if id < 0 || id >= len(ses.jobs) {
		return false
	}
	info := ses.jobs[id]
	switch {
	case info.State == Queued && ses.sch.Cancel(ses.schedOf[id]):
		if ses.rec != nil {
			ses.rec.Cancel(Cancel{Seq: id, At: now})
		}
		if r := ses.cl.Obs; r.Enabled() {
			r.Emit(int64(now), obs.CatSim, "serve/"+info.Name, "cancel")
		}
		ses.runnables[id] = nil
		ses.mu.Lock()
		defer ses.mu.Unlock()
		ses.vnow = now
		info.State = Cancelled
		info.Status = Cancelled.String()
		info.Finish = now
		ses.stats.Cancelled++
		ses.stats.Queued--
		ses.inflight[info.Tenant]--
		return true
	case info.State == Running && ses.cfg.Policy.Preempt && ses.sch.PreemptCancel(ses.schedOf[id]):
		if ses.rec != nil {
			ses.rec.Cancel(Cancel{Seq: id, At: now})
		}
		if r := ses.cl.Obs; r.Enabled() {
			r.Emit(int64(now), obs.CatSim, "serve/"+info.Name, "cancel", obs.A("mode", "preempt"))
		}
		ses.mu.Lock()
		defer ses.mu.Unlock()
		ses.vnow = now
		return true
	}
	return false
}

// onStart is the scheduler's placement hook.
func (ses *session) onStart(schedID int, gang []int) {
	id := ses.serveOf[schedID]
	info := ses.jobs[id]
	ses.mu.Lock()
	defer ses.mu.Unlock()
	ses.vnow = ses.eng.Now()
	info.State = Running
	info.Status = Running.String()
	info.Admit = ses.eng.Now()
	info.Granted = len(gang)
	ses.stats.Queued--
	ses.stats.Running++
}

// onRequeue is the scheduler's checkpoint-preemption hook: the job's
// launch drained at a chunk boundary and either re-entered the queue
// (class preemption, elastic grow-back) or was torn down (preempt-
// cancel). Either way the gang is free and the record must reflect it.
func (ses *session) onRequeue(schedID int, cancelled bool) {
	id := ses.serveOf[schedID]
	info := ses.jobs[id]
	now := ses.eng.Now()
	if cancelled {
		ses.runnables[id] = nil
	}
	ses.mu.Lock()
	defer ses.mu.Unlock()
	ses.vnow = now
	ses.stats.Running--
	if cancelled {
		info.State = Cancelled
		info.Status = Cancelled.String()
		info.Finish = now
		ses.stats.Cancelled++
		ses.inflight[info.Tenant]--
		return
	}
	info.State = Queued
	info.Status = Queued.String()
	info.Admit = 0
	info.Granted = 0
	ses.stats.Queued++
}

// onDone is the scheduler's completion hook: extract the output digest,
// drop the job's runnable (a long-running service must not accumulate
// results), and settle the counters.
func (ses *session) onDone(schedID int, tr *core.Trace, err error) {
	id := ses.serveOf[schedID]
	info := ses.jobs[id]
	now := ses.eng.Now()
	var digest uint64
	var hasDigest bool
	var output string
	if err == nil {
		if d, ok := ses.runnables[id].(core.OutputDigester); ok {
			digest, hasDigest = d.OutputDigest()
		}
		if ses.cfg.KeepOutputs > 0 {
			if rr, ok := ses.runnables[id].(core.OutputRenderer); ok {
				var sb strings.Builder
				if rerr := rr.RenderOutput(&sb); rerr == nil {
					output = sb.String()
				}
			}
		}
	}
	ses.runnables[id] = nil

	ses.mu.Lock()
	defer ses.mu.Unlock()
	ses.vnow = now
	if output != "" {
		ses.outputs[id] = output
		ses.outOrder = append(ses.outOrder, id)
		for len(ses.outOrder) > ses.cfg.KeepOutputs {
			delete(ses.outputs, ses.outOrder[0])
			ses.outOrder = ses.outOrder[1:]
		}
	}
	info.Finish = now
	info.Digest = digest
	info.HasDigest = hasDigest
	ses.stats.Running--
	ses.inflight[info.Tenant]--
	ses.stats.WaitTotal += info.Admit - info.Arrival
	ses.stats.ServiceTotal += now - info.Admit
	ses.stats.WaitHist.Observe((info.Admit - info.Arrival).Seconds())
	ses.stats.ServiceHist.Observe((now - info.Admit).Seconds())
	if r := ses.cl.Obs; r.Enabled() {
		stream := "serve/" + info.Name
		r.Span(int64(info.Arrival), int64(info.Admit), obs.CatSim, stream, "job.wait")
		state := Done
		if err != nil {
			state = Failed
		}
		r.Span(int64(info.Admit), int64(now), obs.CatSim, stream, "job.run",
			obs.A("state", state.String()), obs.Int("gang", int64(info.Granted)))
	}
	if err != nil {
		info.State = Failed
		info.Status = Failed.String()
		info.Reason = err.Error()
		ses.stats.Failed++
		return
	}
	info.State = Done
	info.Status = Done.String()
	ses.stats.Done++
	ses.tenantStats(info.Tenant).Done++
	if info.Class != "" {
		cs := ses.classStats(info.Class)
		cs.Done++
		if info.Deadline > 0 {
			if now-info.Arrival <= info.Deadline {
				cs.Met++
			} else {
				cs.Missed++
			}
		}
	}
	if tr != nil {
		info.WireBytes = tr.WireBytes
		ses.stats.WireBytes += tr.WireBytes
	}
}

// report assembles the end-of-run record.
func (ses *session) report(makespan des.Time) *Report {
	ses.mu.Lock()
	defer ses.mu.Unlock()
	r := &Report{Cluster: ses.sch.Trace(makespan), Stats: ses.stats.clone()}
	for _, j := range ses.jobs {
		r.Jobs = append(r.Jobs, *j)
	}
	return r
}

// Report is a completed (drained) run: the cluster-level scheduling trace
// of everything admitted, the full serve-level job table, and the
// admission counters.
type Report struct {
	Cluster *sched.ClusterTrace
	Jobs    []JobInfo
	Stats   Stats
}

// String renders the report deterministically: a live run, its replay,
// and an equivalent offline sched.Run must print byte-identical text.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString(r.Cluster.String())
	s := &r.Stats
	// The slo reject count appears only when non-zero, so pre-SLO reports
	// stay byte-identical.
	slo := ""
	if s.RejectedSLO > 0 {
		slo = fmt.Sprintf(" slo %d", s.RejectedSLO)
	}
	fmt.Fprintf(&sb, "serve: %d submitted  %d done  %d failed  %d cancelled  %d rejected (shed %d quota %d invalid %d%s)\n",
		s.Submitted, s.Done, s.Failed, s.Cancelled, s.rejected(),
		s.RejectedShed, s.RejectedQuota, s.RejectedInvalid, slo)
	fmt.Fprintf(&sb, "serve: wait total %v  service total %v  wire %.1f MB\n",
		s.WaitTotal, s.ServiceTotal, float64(s.WireBytes)/1e6)
	tenants := make([]string, 0, len(s.Tenants))
	for t := range s.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		ts := s.Tenants[t]
		fmt.Fprintf(&sb, "  tenant %-10s submitted %3d  admitted %3d  rejected %3d  done %3d\n",
			t, ts.Submitted, ts.Admitted, ts.Rejected, ts.Done)
	}
	for _, c := range []string{"interactive", "standard", "batch"} {
		cs := s.Classes[c]
		if cs == nil {
			continue
		}
		fmt.Fprintf(&sb, "  class %-11s submitted %3d  done %3d  met %3d  missed %3d  rejected %3d\n",
			c, cs.Submitted, cs.Done, cs.Met, cs.Missed, cs.Rejected)
	}
	for i := range r.Jobs {
		j := &r.Jobs[i]
		dig := "-"
		if j.HasDigest {
			dig = fmt.Sprintf("%016x", j.Digest)
		}
		reason := ""
		if j.Reason != "" {
			reason = "  " + j.Reason
		}
		fmt.Fprintf(&sb, "  sjob %3d %-9s %-24s arr %12v  fin %12v  dig %s%s\n",
			j.ID, j.State, j.Name, j.Arrival, j.Finish, dig, reason)
	}
	return sb.String()
}

// ErrDraining reports a submission or cancellation against a server that
// is shutting down.
var ErrDraining = errors.New("serve: server is draining")

// ErrUnknownJob reports a job ID outside the service's job table. HTTP
// handlers map it to 404, distinct from internal failures (500).
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrNoOutput reports an output request for a job whose output is not
// retained: the job has not completed, retention is disabled
// (Config.KeepOutputs), or the output has been evicted.
var ErrNoOutput = errors.New("serve: output not retained")

// Server is the live service: a running engine fed through an injector,
// with wall-clock arrivals mapped onto virtual time at this boundary.
// Submit, Cancel, and the snapshot methods are safe from any goroutine.
type Server struct {
	ses   *session
	inj   *des.Injector
	base  time.Time
	scale float64

	draining  atomic.Bool
	drainOnce sync.Once
	runDone   chan struct{}
	makespan  des.Time
	report    *Report
	drainErr  error
}

// Start builds the cluster and begins serving. The engine runs on a
// background goroutine, parked whenever there is no work; Drain shuts it
// down.
func Start(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ses, err := newSession(cfg)
	if err != nil {
		return nil, err
	}
	sv := &Server{
		ses:     ses,
		inj:     ses.newInjector(),
		base:    time.Now(),
		scale:   cfg.TimeScale,
		runDone: make(chan struct{}),
	}
	go func() {
		defer close(sv.runDone)
		sv.makespan = ses.run()
		ses.cl.Close()
	}()
	return sv, nil
}

// wallVT maps the current wall-clock offset onto virtual time.
func (sv *Server) wallVT() des.Time {
	return des.FromSeconds(time.Since(sv.base).Seconds() * sv.scale)
}

// Submit runs one submission through admission and returns its record —
// state Queued (or already Running) when admitted, Rejected with a reason
// when admission turned it away. It blocks until the simulation reaches
// the arrival's virtual time (normally instantaneous: a parked engine
// jumps straight to it).
func (sv *Server) Submit(req Request) (JobInfo, error) {
	if sv.draining.Load() {
		return JobInfo{}, ErrDraining
	}
	vt := sv.wallVT()
	ch := make(chan JobInfo, 1)
	err := sv.inj.Inject("serve.arrival", func(p *des.Proc) {
		if d := vt - p.Now(); d > 0 {
			p.Sleep(d)
		}
		ch <- sv.ses.arrive(p.Now(), req)
	})
	if err != nil {
		return JobInfo{}, ErrDraining
	}
	return <-ch, nil
}

// Cancel withdraws a queued job; it reports false when the job is
// already running, finished, or unknown. Cancels apply at the engine
// frontier rather than the wall-mapped instant: unlike an arrival, a
// cancel may be a no-op, and a no-op must not advance virtual time (an
// unrecorded advance would make the live makespan diverge from the
// trace's replay). The successful case records its actual application
// time, which is all replay needs.
func (sv *Server) Cancel(id int) (bool, error) {
	if sv.draining.Load() {
		return false, ErrDraining
	}
	ch := make(chan bool, 1)
	err := sv.inj.Inject("serve.cancel", func(p *des.Proc) {
		ch <- sv.ses.cancel(p.Now(), id)
	})
	if err != nil {
		return false, ErrDraining
	}
	return <-ch, nil
}

// Job returns a snapshot of one job's record.
func (sv *Server) Job(id int) (JobInfo, bool) {
	sv.ses.mu.Lock()
	defer sv.ses.mu.Unlock()
	if id < 0 || id >= len(sv.ses.jobs) {
		return JobInfo{}, false
	}
	return *sv.ses.jobs[id], true
}

// Jobs returns a snapshot of every job record, by ID.
func (sv *Server) Jobs() []JobInfo {
	sv.ses.mu.Lock()
	defer sv.ses.mu.Unlock()
	out := make([]JobInfo, len(sv.ses.jobs))
	for i, j := range sv.ses.jobs {
		out[i] = *j
	}
	return out
}

// Stats returns a snapshot of the admission counters.
func (sv *Server) Stats() Stats {
	sv.ses.mu.Lock()
	defer sv.ses.mu.Unlock()
	return sv.ses.stats.clone()
}

// VirtualNow returns the virtual time of the service's last state change.
func (sv *Server) VirtualNow() des.Time {
	sv.ses.mu.Lock()
	defer sv.ses.mu.Unlock()
	return sv.ses.vnow
}

// Draining reports whether the server has begun shutting down. The
// health endpoint uses it so a fleet router can tell a draining shard
// (expected: its jobs will finish) from a lost one (failover).
func (sv *Server) Draining() bool { return sv.draining.Load() }

// SetFleet stamps the server's fleet identity — its shard ID and the
// ring epoch it joined at — into the job service and, when recording,
// the arrival-trace header. It must be called before the first job
// arrives; stamping a trace whose header has already been written fails.
func (sv *Server) SetFleet(shard string, epoch int) error {
	if shard == "" {
		return errors.New("serve: empty fleet shard id")
	}
	ses := sv.ses
	if ses.rec != nil {
		if err := ses.rec.SetFleet(shard, epoch); err != nil {
			return err
		}
	}
	ses.mu.Lock()
	defer ses.mu.Unlock()
	ses.fleetShard, ses.fleetEpoch = shard, epoch
	return nil
}

// FleetID returns the fleet identity stamped by SetFleet (empty shard
// when the daemon runs standalone).
func (sv *Server) FleetID() (shard string, epoch int) {
	sv.ses.mu.Lock()
	defer sv.ses.mu.Unlock()
	return sv.ses.fleetShard, sv.ses.fleetEpoch
}

// Output returns the retained canonical output text of a completed job
// (see Config.KeepOutputs). ErrUnknownJob for an ID outside the job
// table; ErrNoOutput when the job's output is not retained.
func (sv *Server) Output(id int) (string, error) {
	sv.ses.mu.Lock()
	defer sv.ses.mu.Unlock()
	if id < 0 || id >= len(sv.ses.jobs) {
		return "", fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	out, ok := sv.ses.outputs[id]
	if !ok {
		return "", fmt.Errorf("%w: job %d is %s", ErrNoOutput, id, sv.ses.jobs[id].State)
	}
	return out, nil
}

// WriteJobTable writes the current job table as JSONL, one JobInfo per
// line in ID order — the restartable record a shard leaves behind at
// drain so a successor (or the router) can account for every job the
// old incarnation ever admitted.
func (sv *Server) WriteJobTable(w io.Writer) error {
	jobs := sv.Jobs()
	enc := json.NewEncoder(w)
	for i := range jobs {
		if err := enc.Encode(&jobs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Drain stops accepting work, waits for every admitted job to finish,
// flushes the arrival trace, and returns the final report. Idempotent;
// concurrent callers all receive the same report.
func (sv *Server) Drain() (*Report, error) {
	sv.draining.Store(true)
	sv.drainOnce.Do(func() {
		if err := sv.inj.Close(); err != nil {
			sv.drainErr = err
		}
		<-sv.runDone
		sv.report = sv.ses.report(sv.makespan)
		if sv.ses.rec != nil {
			if err := sv.ses.rec.Flush(); err != nil && sv.drainErr == nil {
				sv.drainErr = err
			}
		}
	})
	return sv.report, sv.drainErr
}

// ReplayOptions tunes an offline replay.
type ReplayOptions struct {
	// Catalog overrides the default catalog built from the trace's
	// physical budget. It must match the catalog the live run used, or
	// replayed outputs will (detectably) diverge.
	Catalog *Catalog
	// Workers selects the kernel-execution backend (cluster.Config.Workers).
	Workers int
	// Shards selects the engine sharding (cluster.Config.Shards): 0 keeps
	// the legacy single-engine replay, n >= 1 runs n shards, negative one
	// per node plus the hub. Replays at any shard count >= 1 are mutually
	// byte-identical; a live run and its replay must use the same setting.
	Shards int
	// Cluster overrides the cluster reconstruction. The trace header only
	// records the machine's shape (GPUs, GPUs per node) and Replay rebuilds
	// the paper's default testbed from it; a live run on non-default
	// hardware properties must supply the same cluster here.
	Cluster *cluster.Config
	// Obs, when set, records the replay's flight-recorder trace (see
	// internal/obs). Recording does not perturb the replay: reports stay
	// byte-identical with and without it.
	Obs *obs.Recorder
}

// Replay feeds a recorded arrival trace through the identical admission
// and scheduling code with no wall clock anywhere: arrivals fire at their
// recorded virtual times from one deterministic process. The returned
// report — admissions, rejects, gangs, traces, output digests — is
// byte-identical to the live run's, and to any other replay of the same
// trace.
func Replay(tr *Trace, opt ReplayOptions) (*Report, error) {
	ses, makespan, err := replaySession(tr, opt)
	if err != nil {
		return nil, err
	}
	return ses.report(makespan), nil
}

// replaySession runs a replay to completion and returns the drained
// session, so internal callers (tests, timeline snapshots) can inspect
// more than the report. The cluster is already closed on return.
func replaySession(tr *Trace, opt ReplayOptions) (*session, des.Time, error) {
	pol, err := tr.Header.policy()
	if err != nil {
		return nil, 0, err
	}
	cc := cluster.DefaultConfig(tr.Header.GPUs)
	if opt.Cluster != nil {
		cc = *opt.Cluster
	} else if tr.Header.GPUsPerNode > 0 {
		cc.GPUsPerNode = tr.Header.GPUsPerNode
	}
	// An explicit cluster override keeps its own Workers unless the
	// option asks for a specific backend.
	if opt.Cluster == nil || opt.Workers != 0 {
		cc.Workers = opt.Workers
	}
	if opt.Cluster == nil || opt.Shards != 0 {
		cc.Shards = opt.Shards
	}
	if opt.Obs != nil {
		cc.Obs = opt.Obs
	}
	cat := opt.Catalog
	if cat == nil {
		cat = DefaultCatalog(tr.Header.PhysBudget)
	}
	cfg := Config{
		Cluster:  cc,
		Policy:   pol,
		Catalog:  cat,
		MaxQueue: tr.Header.MaxQueue,
		Quota:    tr.Header.Quota,
		Quotas:   tr.Header.Quotas,
	}.withDefaults()
	ses, err := newSession(cfg)
	if err != nil {
		return nil, 0, err
	}
	defer ses.cl.Close()
	events := tr.Events
	ses.eng.Spawn("serve.replay", func(p *des.Proc) {
		for _, ev := range events {
			if d := ev.at() - p.Now(); d > 0 {
				p.Sleep(d)
			}
			if a := ev.Arrive; a != nil {
				info := ses.arrive(p.Now(), Request{Tenant: a.Tenant, Kind: a.Kind,
					Params: a.Params, Weight: a.Weight, MinGang: a.MinGang, Tag: a.Tag,
					TraceID: a.TraceID, Class: a.Class, Deadline: a.Deadline,
					Downgrade: a.Downgrade, Elastic: a.Elastic})
				if info.ID != a.Seq {
					panic(fmt.Sprintf("serve: replay assigned ID %d to recorded seq %d", info.ID, a.Seq))
				}
			} else {
				ses.cancel(p.Now(), ev.Cancel.Seq)
			}
		}
	})
	makespan := ses.run()
	return ses, makespan, nil
}
