package core

import (
	"testing"

	"repro/internal/keyval"
)

func pairs[V any](ks []uint32, vs []V) keyval.Pairs[V] {
	return keyval.Pairs[V]{Keys: ks, Vals: vs}
}

func TestResultDigestDiscriminates(t *testing.T) {
	base := func() *Result[uint32] {
		return &Result[uint32]{
			Output:  pairs([]uint32{1, 2}, []uint32{10, 20}),
			PerRank: []keyval.Pairs[uint32]{pairs([]uint32{1}, []uint32{10}), pairs([]uint32{2}, []uint32{20})},
		}
	}
	ref := base().Digest()
	if got := base().Digest(); got != ref {
		t.Fatalf("digest not deterministic: %x vs %x", got, ref)
	}

	mutations := map[string]func(*Result[uint32]){
		"key":           func(r *Result[uint32]) { r.Output.Keys[0] = 3 },
		"value":         func(r *Result[uint32]) { r.Output.Vals[1] = 21 },
		"partition key": func(r *Result[uint32]) { r.PerRank[1].Keys[0] = 9 },
		"moved pair": func(r *Result[uint32]) {
			// Same multiset of pairs, different partition — must differ.
			r.PerRank[0] = pairs([]uint32{1, 2}, []uint32{10, 20})
			r.PerRank[1] = pairs[uint32](nil, nil)
		},
		"extra empty partition": func(r *Result[uint32]) {
			r.PerRank = append(r.PerRank, keyval.Pairs[uint32]{})
		},
	}
	for name, mutate := range mutations {
		r := base()
		mutate(r)
		if r.Digest() == ref {
			t.Errorf("%s mutation did not change the digest", name)
		}
	}
}

// TestResultDigestFloatCanonical pins the float path: equal float64 values
// digest equal; different values (including tiny perturbations fmt can
// still round-trip) digest differently.
func TestResultDigestFloatCanonical(t *testing.T) {
	x, y := 0.1, 0.2 // runtime addition: 0.30000000000000004, not the constant 0.3
	a := &Result[float64]{Output: pairs([]uint32{7}, []float64{x + y})}
	b := &Result[float64]{Output: pairs([]uint32{7}, []float64{x + y})}
	if a.Digest() != b.Digest() {
		t.Fatal("identical float results digest differently")
	}
	c := &Result[float64]{Output: pairs([]uint32{7}, []float64{0.3})}
	if a.Digest() == c.Digest() {
		t.Fatal("0.1+0.2 and 0.3 digest equal — float canonicalization lost precision")
	}
}

func TestScheduledOutputDigest(t *testing.T) {
	s := &Scheduled[uint32]{}
	if _, ok := s.OutputDigest(); ok {
		t.Fatal("digest reported before completion")
	}
	s.Result = &Result[uint32]{Output: pairs([]uint32{1}, []uint32{1})}
	d, ok := s.OutputDigest()
	if !ok || d != s.Result.Digest() {
		t.Fatalf("OutputDigest = (%x, %v), want (%x, true)", d, ok, s.Result.Digest())
	}
}
