package kmc

import (
	"math"
	"testing"
)

func testParams(points int64, gpus int) Params {
	return Params{Points: points, GPUs: gpus, PhysMax: 1 << 12, Centers: 8, Dim: 4}
}

func gatherSums(t *testing.T, p Params) (map[uint32]float64, *Built, int64) {
	t.Helper()
	b := NewJob(p)
	res := b.Job.MustRun()
	got := make(map[uint32]float64)
	for i, k := range res.Output.Keys {
		got[k] += res.Output.Vals[i]
	}
	return got, b, b.Job.Config.VirtFactor
}

func checkSums(t *testing.T, got, ref map[uint32]float64) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%d keys, want %d", len(got), len(ref))
	}
	for k, want := range ref {
		g := got[k]
		if math.Abs(g-want) > 1e-6*(math.Abs(want)+1) {
			t.Fatalf("key %d: %g, want %g", k, g, want)
		}
	}
}

func TestCorrectnessSingleGPU(t *testing.T) {
	got, b, vf := gatherSums(t, testParams(1<<12, 1))
	checkSums(t, got, b.Reference(vf))
}

func TestCorrectnessMultiGPU(t *testing.T) {
	got, b, vf := gatherSums(t, testParams(1<<12, 4))
	checkSums(t, got, b.Reference(vf))
}

func TestVirtualScaling(t *testing.T) {
	got, b, vf := gatherSums(t, testParams(1<<20, 2))
	if vf < 2 {
		t.Fatalf("expected virtual factor > 1, got %d", vf)
	}
	checkSums(t, got, b.Reference(vf))
}

func TestPartitionerGroupsCenters(t *testing.T) {
	pt := partitioner{dim: 4}
	for c := 0; c < 8; c++ {
		want := pt.Rank(keyOf(c, 0, 4), 4)
		for s := 1; s <= 4; s++ {
			if got := pt.Rank(keyOf(c, s, 4), 4); got != want {
				t.Errorf("center %d slot %d routed to %d, want %d", c, s, got, want)
			}
		}
	}
}

func TestNewCentersMeansPoints(t *testing.T) {
	p := testParams(1<<12, 2)
	got, b, vf := gatherSums(t, p)
	centers := NewCenters(got, p.Centers, p.Dim, vf)
	if len(centers) != p.Centers {
		t.Fatalf("%d centers", len(centers))
	}
	// New centers must be means of assigned points: recompute from the
	// reference sums and compare.
	ref := b.Reference(vf)
	for ci := 0; ci < p.Centers; ci++ {
		count := ref[keyOf(ci, p.Dim, p.Dim)]
		for d := 0; d < p.Dim; d++ {
			want := float32(0)
			if count > 0 {
				want = float32(ref[keyOf(ci, d, p.Dim)] / count)
			}
			if diff := float64(centers[ci][d] - want); math.Abs(diff) > 1e-3 {
				t.Fatalf("center %d dim %d: %f, want %f", ci, d, centers[ci][d], want)
			}
		}
	}
}

func TestMapComputeBound(t *testing.T) {
	// Paper: KMC is mostly compute-bound in Map.
	b := NewJob(Params{Points: 32 << 20, GPUs: 4, PhysMax: 1 << 12, Centers: 32, Dim: 4})
	res := b.Job.MustRun()
	br := res.Trace.Breakdown()
	if br.Map < 0.5 {
		t.Errorf("KMC map fraction %.2f — expected map-dominated", br.Map)
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := NewJob(Params{Points: 1 << 12, GPUs: 1, PhysMax: 1 << 12})
	if len(b.Centers) != 32 || b.Dim != 4 {
		t.Errorf("defaults: centers=%d dim=%d", len(b.Centers), b.Dim)
	}
}
