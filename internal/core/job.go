package core

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/keyval"
	"repro/internal/obs"
)

// Job describes one GPMR run: input chunks plus the user's pipeline pieces.
// Mapper is required; everything else is optional with the paper's
// defaults (RoundRobin partitioning is NOT default — a nil Partitioner
// routes all pairs to rank 0, matching GPMR's "omit Partition" behaviour).
type Job[V any] struct {
	Config Config
	Chunks []Chunk

	// Assign optionally overrides the initial round-robin chunk placement
	// (chunk index → rank). Ranks outside the job's actual gang size are
	// wrapped, so placements written for the requested GPU count still
	// work when a scheduler grants a smaller gang.
	Assign func(chunk int) int

	Mapper         Mapper[V]
	PartialReducer PartialReducer[V]
	Combiner       Combiner[V]
	Partitioner    Partitioner
	Sorter         Sorter
	Reducer        Reducer[V]
}

// Result is a completed job's output.
type Result[V any] struct {
	// Output is the gathered final pairs at rank 0 (rank order), when
	// Config.GatherOutput is set.
	Output keyval.Pairs[V]
	// PerRank holds each reduce partition's final pairs (reduce output,
	// or the post-shuffle pairs when the job has no Reducer). Partition r
	// is reduced by rank r unless a failure reassigned it to a successor;
	// the slot is indexed by partition either way.
	PerRank []keyval.Pairs[V]
	Trace   *Trace
}

// Validate checks the job's pipeline configuration without running it.
func (j *Job[V]) Validate() error {
	if j.Mapper == nil {
		return errors.New("core: job needs a Mapper")
	}
	if len(j.Chunks) == 0 {
		return errors.New("core: job needs at least one chunk")
	}
	if j.Config.Accumulate && (j.Combiner != nil || j.PartialReducer != nil) {
		return errors.New("core: Accumulation excludes Combiner and PartialReducer")
	}
	if j.Config.DisableSort && (j.Reducer != nil || j.Combiner != nil) {
		return errors.New("core: DisableSort requires no Reducer and no Combiner")
	}
	if j.Config.resilient() && (j.Config.Accumulate || j.Combiner != nil) {
		// Accumulation and Combine emit whole-rank (not per-chunk) output,
		// so chunk-granular re-execution and exactly-once delivery do not
		// apply to them. Straggler-only plans are fine: derating needs no
		// recovery machinery.
		return errors.New("core: fail-stop injection and speculation require the streaming pipeline (no Accumulation, no Combiner)")
	}
	return nil
}

// Run executes the job on a freshly built, exclusive simulated cluster and
// returns the result with its timing trace. It is launchOn specialized to
// the single-tenant case: the gang is the whole cluster. Job and config
// validation happen inside launchOn; only the Cluster field needs
// resolving here, before the machine is built.
func (j *Job[V]) Run() (*Result[V], error) {
	cfg, err := j.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	var eng *des.Engine
	var ss *des.ShardSet
	if n := cfg.Cluster.ShardCount(); n > 0 {
		// An exclusive job is one gang — one shard's worth of work — so
		// any sharded run collapses to a single engine with no cross-shard
		// edges. Going through ShardSet.Run anyway exercises the sharded
		// dispatch path (post-aware stepping, coordinator shutdown checks)
		// and is byte-identical to the legacy loop.
		ss = des.NewShardSet(1)
		eng = ss.Engine(0)
	} else {
		eng = des.NewEngine()
	}
	if r := cfg.Cluster.Obs; r.Enabled() {
		if ss != nil {
			ss.SetRecorder(r)
		} else {
			eng.SetRecorder(r)
		}
	}
	cl := cluster.New(eng, *cfg.Cluster)
	defer cl.Close()
	var res *Result[V]
	if _, err := j.launchOn(eng, cl, identityRanks(cfg.GPUs), func(r *Result[V]) { res = r }); err != nil {
		return nil, err
	}
	if ss != nil {
		ss.Run()
	} else {
		eng.Run()
	}
	return res, nil
}

// MustRun is Run for tests and examples where errors are fatal bugs.
func (j *Job[V]) MustRun() *Result[V] {
	res, err := j.Run()
	if err != nil {
		panic(fmt.Sprintf("core: job %q: %v", j.Config.Name, err))
	}
	return res
}

// launchOn instantiates the job's processes on a shared engine and cluster
// against the given global rank subset (the job's gang) and returns
// immediately; the engine runs the job alongside any co-resident tenants.
// The job executes with GPUs = len(ranks) — a scheduler may grant a gang
// smaller than the requested Config.GPUs — and Config.Cluster is ignored
// (the machine is whatever cl is). done fires, in simulated time from one
// of the job's own processes, when the job's last process finishes; the
// Result's Trace carries the job-relative makespan and the job's own share
// of the shared fabric's traffic. The returned stop handle quiesces this
// launch at its next chunk boundary (checkpoint-preemption; see
// Scheduled.PreemptLaunch) — callers that never preempt may discard it.
func (j *Job[V]) launchOn(eng *des.Engine, cl *cluster.Cluster, ranks []int, done func(*Result[V])) (func(), error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if len(ranks) == 0 {
		return nil, errors.New("core: launch needs a non-empty gang")
	}
	cfg := j.Config
	cfg.GPUs = len(ranks)
	if cfg.GPUs < j.Config.GPUs && !cfg.Faults.Empty() {
		// The scheduler granted a smaller gang than requested. Fault
		// events aimed at job-local ranks that were valid for the request
		// but no longer exist are vacuously dropped — the GPU that would
		// have failed is not part of this job. Events outside even the
		// requested range still fail validation below.
		kept := make([]fault.Event, 0, len(cfg.Faults.Events))
		for _, ev := range cfg.Faults.Events {
			if ev.Rank < cfg.GPUs || ev.Rank >= j.Config.GPUs {
				kept = append(kept, ev)
			}
		}
		if len(kept) == 0 {
			cfg.Faults = nil
		} else {
			cfg.Faults = &fault.Plan{Events: kept}
		}
	}
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	g, err := newGang(cl, ranks)
	if err != nil {
		return nil, err
	}
	rt := &runtime[V]{
		job:    j,
		cfg:    cfg,
		g:      g,
		start:  eng.Now(),
		wg:     des.NewWaitGroup(eng),
		traces: make([]RankTrace, cfg.GPUs),
		outs:   make([]keyval.Pairs[V], cfg.GPUs),
		gather: make([]*keyval.Pairs[V], cfg.GPUs),
		ft:     newFaultState(cfg.GPUs),
		obs:    cl.Obs,
	}
	rt.sched = newScheduler(eng, j.Chunks, cfg, g, j.Assign)
	rt.sched.derateOf = g.derate
	if j.Sorter == nil {
		rt.sorter = RadixSorter{}
	} else {
		rt.sorter = j.Sorter
	}
	for r := 0; r < cfg.GPUs; r++ {
		rt.spawnRank(eng, r)
	}
	rt.spawnInjectors(eng)
	eng.Spawn(rt.procName("done"), func(p *des.Proc) {
		rt.wg.Wait(p)
		// Lease-end invariant: the job consumed everything addressed to
		// it. A message left behind would leak into the next tenant of
		// that global rank on a shared cluster.
		for l := 0; l < rt.g.size(); l++ {
			if n := rt.g.pending(l); n != 0 {
				panic(fmt.Sprintf("core: job %q left %d unread message(s) in rank %d's inbox", cfg.Name, n, ranks[l]))
			}
		}
		done(rt.collect(p.Now()))
	})
	return rt.sched.quiesce, nil
}

// collect assembles the job's Result at completion time now.
func (rt *runtime[V]) collect(now des.Time) *Result[V] {
	res := &Result[V]{
		PerRank: rt.outs,
		Trace: &Trace{
			Name:       rt.cfg.Name,
			GPUs:       rt.cfg.GPUs,
			Wall:       now - rt.start,
			Ranks:      rt.traces,
			WireBytes:  rt.g.wireBytes,
			LocalBytes: rt.g.localBytes,
			Preempted:  rt.sched.stopped,
		},
	}
	if rt.cfg.GatherOutput {
		// Concatenate in partition order; a partition reduced by a
		// successor rank after a failure still lands in its own slot, so
		// the gathered output is identical to a failure-free run.
		for part := 0; part < rt.cfg.GPUs; part++ {
			var pr *keyval.Pairs[V]
			if rt.ft.owner[part] == 0 {
				pr = &rt.outs[part]
			} else {
				pr = rt.gather[part]
			}
			if pr != nil {
				res.Output.AppendPairs(pr)
			}
		}
	}
	return res
}

// spawn registers one of the job's processes, tracked so the completion
// watcher knows when the job's last process has finished.
func (rt *runtime[V]) spawn(eng *des.Engine, name string, body func(p *des.Proc)) {
	rt.wg.Add(1)
	eng.Spawn(name, func(p *des.Proc) {
		body(p)
		rt.wg.Done()
	})
}

// procName prefixes a process or primitive name with the job's name so
// shared-engine diagnostics (deadlock reports) identify the tenant.
func (rt *runtime[V]) procName(suffix string) string {
	return rt.cfg.Name + "." + suffix
}

// runtime holds one execution's shared state.
type runtime[V any] struct {
	job    *Job[V]
	cfg    Config
	g      *gang
	start  des.Time // simulated admission time; traces are relative to it
	wg     *des.WaitGroup
	sched  *scheduler
	sorter Sorter
	traces []RankTrace
	outs   []keyval.Pairs[V]  // final pairs by reduce partition
	gather []*keyval.Pairs[V] // rank 0's gathered outputs, by partition
	ft     faultState
	obs    *obs.Recorder // flight recorder, from the cluster (nil = off)
}

// Runnable is the non-generic face of a Job, letting the job-level
// scheduler (internal/sched) admit heterogeneous jobs — different value
// types V — onto one shared cluster. Wrap a Job in a Scheduled to get one.
type Runnable interface {
	// RunName labels the job in cluster traces.
	RunName() string
	// GangWant is the job's requested gang size (Config.GPUs).
	GangWant() int
	// ValidateJob checks the job without running it.
	ValidateJob() error
	// LaunchOn instantiates the job on the shared engine and cluster
	// against the granted rank subset; done fires (in simulated time)
	// with the job's trace when its last process finishes.
	LaunchOn(eng *des.Engine, cl *cluster.Cluster, ranks []int, done func(*Trace)) error
}

// Preemptible marks a Runnable whose in-flight launch can be asked to
// quiesce at a chunk boundary — GPMR's checkpoint: chunk completion is
// the only instant where no device-resident state is in motion, so it is
// where a launch can stop cleanly. The job-level scheduler uses it for
// class preemption and elastic grow-back. See Scheduled.PreemptLaunch.
type Preemptible interface {
	Runnable
	PreemptLaunch() bool
}

// Scheduled adapts one generic Job for the job-level scheduler and
// captures its Result when it completes, so callers can check scheduled
// output against exclusive runs.
type Scheduled[V any] struct {
	Job *Job[V]
	// Result is populated when the scheduled job completes.
	Result *Result[V]

	// stop quiesces the most recent launch (nil before the first one).
	stop func()
}

// RunName implements Runnable.
func (s *Scheduled[V]) RunName() string { return s.Job.Config.Name }

// GangWant implements Runnable.
func (s *Scheduled[V]) GangWant() int { return s.Job.Config.GPUs }

// ValidateJob implements Runnable.
func (s *Scheduled[V]) ValidateJob() error {
	if err := s.Job.Validate(); err != nil {
		return err
	}
	_, err := s.Job.Config.normalize()
	return err
}

// LaunchOn implements Runnable. Relaunching after a preemption is safe:
// chunks are read-only inputs and every launch builds a fresh runtime, so
// a restarted job reproduces the output an uninterrupted run would have.
func (s *Scheduled[V]) LaunchOn(eng *des.Engine, cl *cluster.Cluster, ranks []int, done func(*Trace)) error {
	stop, err := s.Job.launchOn(eng, cl, ranks, func(res *Result[V]) {
		s.Result = res
		done(res.Trace)
	})
	if err != nil {
		return err
	}
	s.stop = stop
	return nil
}

// PreemptLaunch implements Preemptible: ask the in-flight launch to
// quiesce at its next chunk boundary. The launch then drains — in-flight
// chunks finish mapping, the shuffle and reduce consume whatever was
// delivered — and completes with Trace.Preempted set; the scheduler
// discards the partial output and requeues the job for a deterministic
// restart from scratch. Reports false before the first launch; calling it
// after a launch has completed is harmless (the handle is stale).
func (s *Scheduled[V]) PreemptLaunch() bool {
	if s.stop == nil {
		return false
	}
	s.stop()
	return true
}
