package core

import (
	"repro/internal/cluster"
	"repro/internal/des"
)

// CostEstimator is the admission cost model's hook: a Runnable that can
// predict its service time on a gang of n ranks before it runs. SLO
// admission, the EASY backfill reservation, and the serve layer's
// Retry-After drain hint all consume it.
//
// The estimate must be a deterministic pure function of the job and the
// cluster's hardware properties, and monotone — more bytes or fewer
// ranks never predict a faster job. It is deliberately coarse: a
// roofline walk over the pipeline's bulk data movement, not a
// simulation. The EASY reservation only needs a consistent ordering of
// predicted completions; the M/G/k calibration test checks the open
// system against measured service times, not predicted ones.
type CostEstimator interface {
	EstimateCost(cl *cluster.Cluster, gang int) des.Time
}

// EstimateCost implements CostEstimator for a scheduled job. On top of
// the generic data-movement walk it prices the sort stage with the
// job's own Sorter cost model (the same formula the pipeline charges at
// run time), approximating the per-rank pair count from the input bytes
// — map emission counts are app-specific and unknowable before the run.
func (s *Scheduled[V]) EstimateCost(cl *cluster.Cluster, gang int) des.Time {
	if gang < 1 {
		gang = 1
	}
	var bytes int64
	for _, c := range s.Job.Chunks {
		bytes += c.VirtBytes()
	}
	t := estimateJobCost(cl, bytes, len(s.Job.Chunks), gang)
	if !s.Job.Config.DisableSort {
		valBytes := s.Job.Config.ValBytes
		if valBytes <= 0 {
			valBytes = 4
		}
		sorter := s.Job.Sorter
		if sorter == nil {
			sorter = RadixSorter{}
		}
		pairs := bytes / (4 + valBytes) / int64(gang)
		t += sorter.SortCost(cl.Cfg.GPU, pairs, valBytes)
	}
	return t
}

// estimateJobCost prices one map→shuffle→reduce round on a gang of the
// given size: each rank's share of the input crosses PCIe once (H2D), is
// read and written coalesced by the map and sort kernels, emitted and
// permuted in scattered patterns (two touches at the uncoalesced rate —
// map emission scatter and the sort's key permutation, which the kernel
// cost model charges at MemBandwidth/UncoalescedPenalty), and crosses
// the wire once in the shuffle — plus fixed per-chunk launch/transfer
// overheads and the job dispatch overhead. Calibrated against exclusive
// runs of the benchmark apps, this lands within ~2× below the simulated
// service time (it remains a deliberate lower bound: app-specific
// compute and atomic terms are not priced).
func estimateJobCost(cl *cluster.Cluster, bytes int64, chunks, gang int) des.Time {
	if gang < 1 {
		gang = 1
	}
	cfg := cl.Cfg
	per := float64(bytes) / float64(gang)
	scatter := cfg.GPU.UncoalescedPenalty
	if scatter < 1 {
		scatter = 1
	}
	mem := (4 + 2*scatter) * per / cfg.GPU.MemBandwidth
	sec := per/cfg.PCIe.Bandwidth + mem + per/cfg.Fabric.Bandwidth
	t := des.FromSeconds(sec)
	perChunk := 3 * (cfg.GPU.LaunchOverhead + cfg.PCIe.Latency + cfg.Fabric.Latency)
	t += perChunk * des.Time((chunks+gang-1)/gang)
	return t + cfg.Launch()
}
