package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// The exports are hand-serialized with a fixed field order so the output
// is byte-deterministic: a canonical event set always produces an
// identical file, which is what the cross-shard/cross-backend trace
// differential tests diff. String values go through encoding/json so
// arbitrary tenant/job names stay valid JSON.

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Marshal of a string cannot fail.
		panic(err)
	}
	return string(b)
}

// writeEventJSON writes one event as a single-line JSON object with a
// fixed field order: t, dur, stream, kind, attrs (attrs omitted when
// empty, preserving emission order inside the object).
func writeEventJSON(w *bufio.Writer, e *Event) {
	w.WriteString(`{"t":`)
	w.WriteString(strconv.FormatInt(e.T, 10))
	w.WriteString(`,"dur":`)
	w.WriteString(strconv.FormatInt(e.Dur, 10))
	w.WriteString(`,"stream":`)
	w.WriteString(jstr(e.Stream))
	w.WriteString(`,"kind":`)
	w.WriteString(jstr(e.Kind))
	if len(e.Attrs) > 0 {
		w.WriteString(`,"attrs":{`)
		for i, a := range e.Attrs {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(jstr(a.K))
			w.WriteByte(':')
			w.WriteString(jstr(a.V))
		}
		w.WriteByte('}')
	}
	w.WriteByte('}')
}

// WriteJSONL writes the canonical event set as JSON Lines: one event per
// line, canonical order, fixed field order. This is the schema of record
// for trace differential tests.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Canonical())
}

// WriteJSONL serializes an event slice as JSON Lines.
func WriteJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	for i := range evs {
		writeEventJSON(bw, &evs[i])
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteChrome writes the canonical event set in Chrome trace-event JSON
// (the "JSON object format"), loadable in Perfetto and chrome://tracing.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChrome(w, r.Canonical(), nil)
}

// WriteChromeFiltered writes the canonical events whose stream keep
// accepts — e.g. one job's timelines for a per-job HTTP endpoint.
func (r *Recorder) WriteChromeFiltered(w io.Writer, keep func(stream string) bool) error {
	return WriteChrome(w, r.Canonical(), keep)
}

// usec renders a nanosecond time as trace-event microseconds with fixed
// (3-digit) precision, keeping full nanosecond resolution byte-stably.
func usec(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}

// WriteChrome serializes events as Chrome trace-event JSON. Streams map
// to thread lanes (tid), named through thread_name metadata records; spans
// become complete ("X") events and instants thread-scoped ("i") events.
// keep, when non-nil, filters by stream. Output is byte-deterministic.
func WriteChrome(w io.Writer, evs []Event, keep func(stream string) bool) error {
	if keep != nil {
		kept := make([]Event, 0, len(evs))
		for _, e := range evs {
			if keep(e.Stream) {
				kept = append(kept, e)
			}
		}
		evs = kept
	}
	// Stable lane assignment: streams sorted by name.
	tids := make(map[string]int)
	var streams []string
	for i := range evs {
		if _, ok := tids[evs[i].Stream]; !ok {
			tids[evs[i].Stream] = 0
			streams = append(streams, evs[i].Stream)
		}
	}
	sort.Strings(streams)
	for i, s := range streams {
		tids[s] = i + 1
	}

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n")
	bw.WriteString(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"gpmr"}}`)
	for _, s := range streams {
		bw.WriteString(",\n")
		bw.WriteString(`{"ph":"M","pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(tids[s]))
		bw.WriteString(`,"name":"thread_name","args":{"name":`)
		bw.WriteString(jstr(s))
		bw.WriteString(`}}`)
	}
	for i := range evs {
		e := &evs[i]
		bw.WriteString(",\n")
		if e.Dur > 0 {
			bw.WriteString(`{"ph":"X","pid":1,"tid":`)
			bw.WriteString(strconv.Itoa(tids[e.Stream]))
			bw.WriteString(`,"ts":`)
			bw.WriteString(usec(e.T))
			bw.WriteString(`,"dur":`)
			bw.WriteString(usec(e.Dur))
		} else {
			bw.WriteString(`{"ph":"i","pid":1,"tid":`)
			bw.WriteString(strconv.Itoa(tids[e.Stream]))
			bw.WriteString(`,"ts":`)
			bw.WriteString(usec(e.T))
			bw.WriteString(`,"s":"t"`)
		}
		bw.WriteString(`,"cat":"sim","name":`)
		bw.WriteString(jstr(e.Kind))
		bw.WriteString(`,"args":{`)
		for j, a := range e.Attrs {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(jstr(a.K))
			bw.WriteByte(':')
			bw.WriteString(jstr(a.V))
		}
		bw.WriteString(`}}`)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
