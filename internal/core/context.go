package core

import (
	"repro/internal/des"
	"repro/internal/gpu"
	"repro/internal/keyval"
)

// MapContext is the mapper's window onto the device and the pipeline. One
// context lives per rank for the whole map stage, so accumulation state
// carries across chunks.
//
// Closure-capture contract: a kernel closure passed to Launch/LaunchFor
// may run on a real worker goroutine, concurrently with every other
// simulated process, and joins no later than the kernel's simulated
// completion (see gpu.Backend). Inside the closure, only touch state this
// rank's map process owns — the context's emission buffer (Emit,
// EmitPairs), its Resident() pairs, the chunk being mapped, and locals of
// the enclosing Map call — plus immutable shared inputs (lookup tables,
// centers, matrices). Never call the context's Launch/LaunchFor, the
// device, or any des primitive from inside a closure, and never touch
// state reachable from another rank. Everything outside the closure runs
// on the simulated process as before.
type MapContext[V any] struct {
	Rank     int
	NumRanks int
	Dev      *gpu.Device
	Proc     *des.Proc

	// VirtFactor is the job's virtual replication factor; mappers multiply
	// physical emission counts by it when declaring virtual counts.
	VirtFactor int64

	out      keyval.Pairs[V]
	resident keyval.Pairs[V]
}

// Launch runs a kernel on this rank's GPU, charging the map stage.
func (c *MapContext[V]) Launch(spec gpu.KernelSpec, fn func()) des.Time {
	return c.Dev.Launch(c.Proc, spec, fn)
}

// LaunchFor charges a precomputed kernel-sequence cost. Prefer
// LaunchForNamed where a kernel name is known.
func (c *MapContext[V]) LaunchFor(cost des.Time, fn func()) des.Time {
	return c.Dev.LaunchFor(c.Proc, cost, fn)
}

// LaunchForNamed is LaunchFor with an explicit kernel-sequence name for
// leak and panic diagnostics.
func (c *MapContext[V]) LaunchForNamed(name string, cost des.Time, fn func()) des.Time {
	return c.Dev.LaunchForNamed(c.Proc, name, cost, fn)
}

// Emit appends one pair to the current chunk's output. Use EmitPairs for
// bulk emission with an explicit virtual count.
func (c *MapContext[V]) Emit(key uint32, val V) { c.out.Append(key, val) }

// EmitPairs appends a pair buffer (with its virtual count) to the current
// chunk's output.
func (c *MapContext[V]) EmitPairs(p *keyval.Pairs[V]) { c.out.AppendPairs(p) }

// SetEmittedVirt overrides the virtual pair count of the current chunk's
// emissions; mappers whose emission count scales with input size set this
// to physical × VirtFactor.
func (c *MapContext[V]) SetEmittedVirt(n int64) { c.out.Virt = n }

// Emitted exposes the current chunk's output buffer (for PartialReducers).
func (c *MapContext[V]) Emitted() *keyval.Pairs[V] { return &c.out }

// Resident returns the GPU-resident accumulation pairs. Only meaningful
// when Config.Accumulate is set; the mapper updates these in place and the
// framework transfers them once after the last chunk. The buffer's Virt
// field must be kept accurate by the mapper (for accumulation apps the
// resident set is typically small and independent of input size).
func (c *MapContext[V]) Resident() *keyval.Pairs[V] { return &c.resident }

// ReduceContext is the reducer's window onto the device. Kernel closures
// obey the same capture contract as MapContext's: touch only this rank's
// reduce-owned state (the context's emission buffer, the sorted
// keys/segs/vals slices passed to Reduce) and immutable shared inputs.
type ReduceContext[V any] struct {
	Rank     int
	NumRanks int
	Dev      *gpu.Device
	Proc     *des.Proc

	VirtFactor int64

	out keyval.Pairs[V]
}

// Launch runs a kernel on this rank's GPU, charging the reduce stage.
func (c *ReduceContext[V]) Launch(spec gpu.KernelSpec, fn func()) des.Time {
	return c.Dev.Launch(c.Proc, spec, fn)
}

// Emit appends one final pair.
func (c *ReduceContext[V]) Emit(key uint32, val V) { c.out.Append(key, val) }

// SetEmittedVirt overrides the virtual count of the reduce output emitted
// so far in this call.
func (c *ReduceContext[V]) SetEmittedVirt(n int64) { c.out.Virt = n }
