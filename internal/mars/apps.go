package mars

import (
	"strings"

	"repro/internal/apps/apputil"
	"repro/internal/mph"
	"repro/internal/workload"
)

// MM is Mars's matrix multiplication: one thread per output element
// computing a row–column inner product without shared-memory tiling —
// memory-bound where GPMR's tiled kernel is compute-bound.
func MM(dim int64, physDim int, seed uint64) (App[float64], []float32, []float32, int) {
	if physDim <= 0 || int64(physDim) > dim {
		physDim = 64
	}
	a := workload.Matrix(seed, physDim)
	b := workload.Matrix(seed+1, physDim)
	app := App[float64]{
		Name:       "mm",
		InputBytes: 2 * dim * dim * 4,
		Elements:   dim * dim,
		Pairs:      dim * dim,
		ValBytes:   4,
		NoSort:     true, // output keys are unique; Mars disables its sort
		// Row reads broadcast across the warp (1/32 each); column reads
		// stride, with the texture cache absorbing ~7/8 of them.
		MapFlopsPerElem: float64(2 * dim),
		MapBytesPerElem: float64(dim*4)/32 + float64(dim*4)/8,
		UncoalescedFrac: 0.1,
		MapTask: func(emit func(uint32, float64)) {
			for i := 0; i < physDim; i++ {
				for j := 0; j < physDim; j++ {
					var s float64
					for k := 0; k < physDim; k++ {
						s += float64(a[i*physDim+k]) * float64(b[k*physDim+j])
					}
					emit(uint32(i*physDim+j), s)
				}
			}
		},
	}
	return app, a, b, physDim
}

// KMC is Mars's k-means: every point emits ⟨closest-center, point⟩, so the
// whole dataset becomes intermediate pairs that the monolithic sort must
// order — the cost GPMR's Accumulation removes.
func KMC(points int64, physMax, centers, dim int, seed uint64) (App[float64], []float32, [][]float32, int64) {
	sc := apputil.PlanScale(points, physMax)
	pts := workload.Points(seed, sc.PhysElems, dim)
	ctrs := make([][]float32, centers)
	crng := workload.NewRNG(seed + 7)
	for i := range ctrs {
		c := make([]float32, dim)
		for d := range c {
			c[d] = crng.Float32() * 100
		}
		ctrs[i] = c
	}
	scale := float64(sc.Factor)
	app := App[float64]{
		Name:              "kmc",
		InputBytes:        sc.VirtElems * int64(dim) * 4,
		Elements:          sc.VirtElems,
		Pairs:             sc.VirtElems, // one <center, point> pair per point
		ValBytes:          int64(dim) * 4,
		MapFlopsPerElem:   float64(3 * dim * centers),
		MapBytesPerElem:   float64(dim * 4),
		UncoalescedFrac:   0.3, // one thread per point, unaligned point loads
		ReduceFlopsPerVal: 1,
		MapTask: func(emit func(uint32, float64)) {
			n := len(pts) / dim
			for i := 0; i < n; i++ {
				pt := pts[i*dim : (i+1)*dim]
				best, bestD := 0, float32(0)
				for ci, ctr := range ctrs {
					var d float32
					for d2 := 0; d2 < dim; d2++ {
						diff := pt[d2] - ctr[d2]
						d += diff * diff
					}
					if ci == 0 || d < bestD {
						best, bestD = ci, d
					}
				}
				for d2 := 0; d2 < dim; d2++ {
					emit(uint32(best*(dim+1)+d2), float64(pt[d2])*scale)
				}
				emit(uint32(best*(dim+1)+dim), scale)
			}
		},
		Reduce: func(_ uint32, vals []float64) float64 {
			var s float64
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
	return app, pts, ctrs, sc.Factor
}

// WO is Mars's word occurrence: every word instance becomes a pair that
// the monolithic sort orders (no accumulation); keys are hashed word ids
// as in the GPMR build so outputs are comparable.
func WO(bytes int64, physMax, dictSize int, seed uint64) (App[uint32], []string, *mph.Table) {
	if dictSize <= 0 {
		dictSize = workload.DictionarySize
	}
	dict := workload.Dictionary(seed, dictSize)
	table, err := mph.Build(dict)
	if err != nil {
		panic("mars: " + err.Error())
	}
	sc := apputil.PlanScale(bytes, physMax)
	lines := workload.Text(seed+1, dict, sc.PhysElems)
	// Each map thread pre-aggregates repeats within its line (Mars's WO
	// keeps a per-thread table), so ~1/8 of word instances become pairs.
	words := sc.VirtElems / 8 / 8
	app := App[uint32]{
		Name:            "wo",
		InputBytes:      sc.VirtElems,
		Elements:        sc.VirtElems / 80, // one thread per line
		Pairs:           words,
		ValBytes:        4,
		MapFlopsPerElem: 80 * 5, // scan + hash each byte of the line
		MapBytesPerElem: 80,
		UncoalescedFrac: 0.5, // per-thread line pointers scatter reads
		MapTask: func(emit func(uint32, uint32)) {
			for _, ln := range lines {
				for _, w := range strings.Fields(ln) {
					emit(table.Lookup(w), 1)
				}
			}
		},
		Reduce: func(_ uint32, vals []uint32) uint32 {
			var s uint32
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
	return app, lines, table
}
