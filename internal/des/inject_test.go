package des

import (
	"sync"
	"testing"
	"time"
)

// TestInjectorParksAndResumes proves the open-system contract: an engine
// with an open injector does not exit (or declare deadlock) when its event
// queue drains; injected work runs at the frontier; Close releases Run.
func TestInjectorParksAndResumes(t *testing.T) {
	eng := NewEngine()
	inj := eng.NewInjector()

	var order []string
	var mu sync.Mutex
	note := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}

	done := make(chan Time, 1)
	go func() { done <- eng.Run() }()

	// First injection: the engine is parked at t=0 with nothing to do.
	if err := inj.Inject("a", func(p *Proc) {
		if p.Now() != 0 {
			t.Errorf("first injection at t=%v, want 0", p.Now())
		}
		p.Sleep(10)
		note("a")
	}); err != nil {
		t.Fatalf("Inject a: %v", err)
	}

	// Wait until the engine has drained process a and parked again, then
	// inject b: it must start at the frontier left by a (t=10), not at 0.
	waitParked(t, eng, 10)
	if err := inj.Inject("b", func(p *Proc) {
		if p.Now() != 10 {
			t.Errorf("second injection at t=%v, want 10", p.Now())
		}
		p.Sleep(5)
		note("b")
	}); err != nil {
		t.Fatalf("Inject b: %v", err)
	}
	waitParked(t, eng, 15)

	if err := inj.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	end := <-done
	if end != 15 {
		t.Fatalf("Run returned t=%v, want 15", end)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("execution order %v, want [a b]", order)
	}
}

// waitParked spins until the engine has advanced to at least want and gone
// idle. Reading now from another goroutine is racy in general; here the
// engine is parked (quiescent) once the condition holds, and the test only
// proceeds after it does. The injection channel is the synchronization.
func waitParked(t *testing.T, eng *Engine, want Time) {
	t.Helper()
	probe := make(chan Time, 1)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := injectProbe(eng, probe); err != nil {
			return // engine stopped; let the caller fail on its own terms
		}
		if at := <-probe; at >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("engine never reached t=%v", want)
}

// injectProbe runs a no-op process that reports the frontier time.
func injectProbe(eng *Engine, probe chan Time) error {
	return eng.inject(injMsg{name: "probe", body: func(p *Proc) { probe <- p.Now() }})
}

// TestInjectorConcurrentSubmitters drives many foreign goroutines into one
// engine under the race detector: every injection must land exactly once,
// at a monotonically non-decreasing frontier.
func TestInjectorConcurrentSubmitters(t *testing.T) {
	eng := NewEngine()
	inj := eng.NewInjector()
	const submitters, each = 8, 25

	var mu sync.Mutex
	seen := 0
	var last Time

	done := make(chan Time, 1)
	go func() { done <- eng.Run() }()

	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < each; k++ {
				err := inj.Inject("job", func(p *Proc) {
					at := p.Now()
					mu.Lock()
					// Spawn times never go backwards: each injection lands
					// at the frontier, which only advances. (The engine
					// serializes injection bodies, but the map under test
					// is still guarded — the -race run is the point.)
					if at < last {
						t.Errorf("frontier went backwards: %v after %v", at, last)
					}
					last = at
					mu.Unlock()
					p.Sleep(3)
					mu.Lock()
					seen++
					mu.Unlock()
				})
				if err != nil {
					t.Errorf("Inject: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := inj.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done
	if seen != submitters*each {
		t.Fatalf("saw %d injections, want %d", seen, submitters*each)
	}
}

// TestInjectorAfterStop: once Run has returned, injections fail fast with
// ErrEngineStopped instead of blocking forever.
func TestInjectorAfterStop(t *testing.T) {
	eng := NewEngine()
	inj := eng.NewInjector()
	done := make(chan Time, 1)
	go func() { done <- eng.Run() }()
	if err := inj.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done
	// The injector itself was closed to let Run return, so the first gate
	// it hits is its own closed flag.
	if err := inj.Inject("late", func(p *Proc) {}); err != ErrInjectorClosed {
		t.Fatalf("Inject after stop: err=%v, want ErrInjectorClosed", err)
	}
	// The engine-level boundary (a racing injector that never observed the
	// shutdown) fails fast instead of blocking on a drained channel.
	if err := eng.inject(injMsg{name: "late", body: func(p *Proc) {}}); err != ErrEngineStopped {
		t.Fatalf("engine inject after stop: err=%v, want ErrEngineStopped", err)
	}
}

// TestInjectorClosedRejects: a closed injector refuses work even while the
// engine is still running (another injector holds it open).
func TestInjectorClosedRejects(t *testing.T) {
	eng := NewEngine()
	a := eng.NewInjector()
	b := eng.NewInjector()
	done := make(chan Time, 1)
	go func() { done <- eng.Run() }()
	if err := a.Close(); err != nil {
		t.Fatalf("Close a: %v", err)
	}
	if err := a.Inject("x", func(p *Proc) {}); err != ErrInjectorClosed {
		t.Fatalf("Inject on closed injector: err=%v, want ErrInjectorClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	ran := make(chan struct{})
	if err := b.Inject("y", func(p *Proc) { close(ran) }); err != nil {
		t.Fatalf("Inject on live injector: %v", err)
	}
	<-ran
	if err := b.Close(); err != nil {
		t.Fatalf("Close b: %v", err)
	}
	<-done
}

// TestInjectorWhileBusy: injections submitted while the engine is mid-run
// are applied between events, at the then-current frontier.
func TestInjectorWhileBusy(t *testing.T) {
	eng := NewEngine()
	inj := eng.NewInjector()
	// A long-running background process keeps the engine busy.
	tick := make(chan Time, 64)
	eng.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(2)
			select {
			case tick <- p.Now():
			default:
			}
		}
	})
	done := make(chan Time, 1)
	go func() { done <- eng.Run() }()

	<-tick // engine is demonstrably past t=0
	at := make(chan Time, 1)
	if err := inj.Inject("probe", func(p *Proc) { at <- p.Now() }); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if got := <-at; got <= 0 || got > 100 {
		t.Fatalf("injection landed at t=%v, want within the ticker's run (0, 100]", got)
	}
	if err := inj.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if end := <-done; end != 100 {
		t.Fatalf("Run returned t=%v, want 100", end)
	}
}
