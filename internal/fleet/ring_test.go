package fleet

import (
	"fmt"
	"testing"
)

func eligibleZero(ids ...string) map[string]int {
	m := make(map[string]int, len(ids))
	for _, id := range ids {
		m[id] = 0
	}
	return m
}

// TestRingDeterminism pins the routing function: same ring, key, loads,
// and factor always pick the same shard, across ring constructions.
func TestRingDeterminism(t *testing.T) {
	ids := []string{"s0", "s1", "s2"}
	r1, err := NewRing(ids, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	r2, err := NewRing([]string{"s2", "s0", "s1"}, 0) // order must not matter
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("tenant%d", i)
		a, ok1 := r1.Pick(key, eligibleZero(ids...), 1.25)
		b, ok2 := r2.Pick(key, eligibleZero(ids...), 1.25)
		if !ok1 || !ok2 || a != b {
			t.Fatalf("key %s: picks differ (%s vs %s)", key, a, b)
		}
	}
}

// TestRingDistribution checks every shard owns a reasonable slice of
// the keyspace (vnodes doing their job).
func TestRingDistribution(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3"}
	r, err := NewRing(ids, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	counts := make(map[string]int)
	const keys = 1000
	for i := 0; i < keys; i++ {
		s, ok := r.Pick(fmt.Sprintf("k%d", i), eligibleZero(ids...), -1)
		if !ok {
			t.Fatalf("no pick for k%d", i)
		}
		counts[s]++
	}
	for _, id := range ids {
		if counts[id] < keys/len(ids)/4 {
			t.Fatalf("shard %s owns only %d of %d keys: %v", id, counts[id], keys, counts)
		}
	}
}

// TestRingBoundedLoadSpill: a hot shard at its bound spills the key to
// the next eligible shard on the ring, deterministically; with the
// bound disabled the key sticks to the hot shard.
func TestRingBoundedLoadSpill(t *testing.T) {
	ids := []string{"s0", "s1", "s2"}
	r, err := NewRing(ids, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	key := "hot-tenant"
	home, _ := r.Pick(key, eligibleZero(ids...), -1) // plain hashing home
	loads := eligibleZero(ids...)
	loads[home] = 10 // total 10, n 3 → bound ceil(1.25·11/3) = 5
	spill, ok := r.Pick(key, loads, 1.25)
	if !ok || spill == home {
		t.Fatalf("hot shard %s did not spill (got %s)", home, spill)
	}
	again, _ := r.Pick(key, loads, 1.25)
	if spill != again {
		t.Fatalf("spill is not deterministic: %s vs %s", spill, again)
	}
	stick, _ := r.Pick(key, loads, -1)
	if stick != home {
		t.Fatalf("plain hashing moved the key: %s vs home %s", stick, home)
	}
	// Ineligible home (shard down): even plain hashing moves on.
	delete(loads, home)
	moved, ok := r.Pick(key, loads, -1)
	if !ok || moved == home {
		t.Fatalf("dead shard still picked: %s", moved)
	}
	// Nothing eligible: no pick.
	if _, ok := r.Pick(key, nil, 1.25); ok {
		t.Fatal("picked a shard from an empty eligible set")
	}
}

// TestRingRejectsBadShards pins constructor validation.
func TestRingRejectsBadShards(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty shard id accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate shard id accepted")
	}
}
