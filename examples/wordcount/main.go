// Command wordcount runs the paper's Word Occurrence workload end to end:
// a random corpus over a 43,000-word dictionary, minimal-perfect-hash
// keys, GPU-side Accumulation, and the partitioner crossover — then prints
// the most frequent words and how little data crossed the network thanks
// to Accumulation.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/apps/wo"
)

func main() {
	gpus := flag.Int("gpus", 8, "simulated GPU count")
	megabytes := flag.Int64("mb", 64, "virtual corpus size in MiB")
	flag.Parse()

	b := wo.NewJob(wo.Params{
		Bytes:    *megabytes << 20,
		GPUs:     *gpus,
		PhysMax:  1 << 20, // materialize up to 1 MiB; costs stay at full scale
		DictSize: 4300,
	})
	res, err := b.Job.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Invert the hash to report actual words.
	bySlot := make(map[uint32]string, len(b.Dict))
	for _, w := range b.Dict {
		bySlot[b.Table.Lookup(w)] = w
	}
	type wc struct {
		word  string
		count uint32
	}
	var top []wc
	for i, k := range res.Output.Keys {
		if res.Output.Vals[i] > 0 {
			top = append(top, wc{bySlot[k], res.Output.Vals[i]})
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].count != top[j].count {
			return top[i].count > top[j].count
		}
		return top[i].word < top[j].word
	})

	fmt.Printf("word occurrence over a %d MiB virtual corpus on %d GPUs\n", *megabytes, *gpus)
	fmt.Printf("simulated wall time %v; %.2f MB crossed the wire, %.2f MB stayed intra-node\n",
		res.Trace.Wall, float64(res.Trace.WireBytes)/1e6, float64(res.Trace.LocalBytes)/1e6)
	if b.Job.Partitioner == nil {
		fmt.Printf("partitioner: off (GPU count <= crossover %d; all pairs to one reducer)\n", wo.PartitionerCrossover)
	} else {
		fmt.Println("partitioner: round-robin (above the crossover)")
	}
	fmt.Println("top words:")
	for i := 0; i < 10 && i < len(top); i++ {
		fmt.Printf("  %-14s %6d\n", top[i].word, top[i].count)
	}
}
