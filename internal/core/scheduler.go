package core

import (
	"repro/internal/des"
	"repro/internal/fabric"
)

// scheduler implements GPMR's dynamic work queues: each GPU pulls chunks
// from its local queue, and when a queue runs dry while others still have
// work, a chunk is shifted from the fullest queue — charging the chunk's
// serialized transfer over the fabric, which is why chunks must be
// serializable in GPMR.
type scheduler struct {
	chunks []Chunk
	queues [][]int // chunk indices per rank
	fab    *fabric.Fabric
}

// newScheduler distributes chunks round-robin across ranks; assign may
// override the initial placement (used by tests to create imbalance and by
// apps with locality preferences).
func newScheduler(chunks []Chunk, ranks int, fab *fabric.Fabric, assign func(chunk int) int) *scheduler {
	s := &scheduler{chunks: chunks, queues: make([][]int, ranks), fab: fab}
	for i := range chunks {
		r := i % ranks
		if assign != nil {
			r = assign(i)
		}
		s.queues[r] = append(s.queues[r], i)
	}
	return s
}

// next returns the rank's next chunk, shifting one from the fullest queue
// when the local queue is empty. The second result reports whether the
// chunk was stolen (and from where); ok=false means global exhaustion.
func (s *scheduler) next(p *des.Proc, rank int) (c Chunk, stolenFrom int, ok bool) {
	if q := s.queues[rank]; len(q) > 0 {
		idx := q[0]
		s.queues[rank] = q[1:]
		return s.chunks[idx], -1, true
	}
	victim, best := -1, 1 // require at least 2 queued to justify a shift
	for r, q := range s.queues {
		if len(q) > best {
			victim, best = r, len(q)
		}
	}
	if victim < 0 {
		// Fall back to taking a final queued chunk even from a queue of 1:
		// better one shift than an idle GPU.
		for r, q := range s.queues {
			if len(q) > 0 {
				victim = r
				break
			}
		}
	}
	if victim < 0 {
		return nil, -1, false
	}
	q := s.queues[victim]
	idx := q[len(q)-1] // steal from the tail: the victim keeps its prefix
	s.queues[victim] = q[:len(q)-1]
	c = s.chunks[idx]
	s.fab.Transfer(p, victim, rank, c.VirtBytes())
	return c, victim, true
}

// remaining reports how many chunks are still queued anywhere.
func (s *scheduler) remaining() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}
