package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
)

// newRecordingShard is newTestShard with the flight recorder on: the
// shard records its arrival trace for replay and serves GET /flight
// for the live stitch.
func newRecordingShard(t *testing.T) *testShard {
	t.Helper()
	trace := &syncBuffer{}
	cc := cluster.DefaultConfig(8)
	cc.Obs = obs.New()
	sv, err := serve.Start(serve.Config{
		Cluster:     cc,
		Policy:      sched.Policy{Kind: sched.WeightedFair},
		Catalog:     serve.DefaultCatalog(2048),
		MaxQueue:    -1,
		TimeScale:   20,
		TraceW:      trace,
		KeepOutputs: 4,
	})
	if err != nil {
		t.Fatalf("serve.Start: %v", err)
	}
	hs := httptest.NewServer(serve.NewHandler(sv, serve.HandlerConfig{Logf: quiet}))
	return &testShard{sv: sv, hs: hs, trace: trace}
}

// settleFleet waits until every fleet job reached a terminal state.
func settleFleet(t *testing.T, rt *Router) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never settled: jobs %+v", rt.Jobs())
		}
		allDone := true
		for _, j := range rt.Jobs() {
			if j.State != "done" {
				allDone = false
			}
		}
		if allDone {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStitchedTimelineLiveMatchesReplay is the tracing tentpole's
// acceptance proof: the live stitched fleet timeline (router recording
// + every shard's flight recording fetched over /flight) must be
// byte-identical to the offline stitch of the same run's trace
// directory (shard arrival traces replayed + router.obs read back).
// It also pins the causal-ID contract (an unstamped submission adopts
// its fleet tag) and the explain/timeline HTTP surface.
func TestStitchedTimelineLiveMatchesReplay(t *testing.T) {
	shards := []*testShard{newRecordingShard(t), newRecordingShard(t)}
	cfg := Config{
		Shards: []Shard{
			{ID: "s0", URL: shards[0].hs.URL},
			{ID: "s1", URL: shards[1].hs.URL},
		},
		LoadFactor:    -1,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		FailAfter:     2,
		RetryBackoff:  5 * time.Millisecond,
		SkewThreshold: -1,
		Logf:          quiet,
		Obs:           obs.New(),
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rt.Start()

	// Submit until both shards own work (plain hashing is deterministic,
	// but which tenants land where is an implementation detail).
	owned := map[string]bool{}
	for i, tn := range []string{"ana", "bo", "cy", "dan", "eve", "fay", "gil", "hal", "ira", "joy"} {
		st := rt.Submit(serve.Request{Tenant: tn, Kind: "wo",
			Params: serve.Params{"bytes": 1 << 20, "gpus": 2, "seed": int64(i + 1)}})
		if st.Code != http.StatusAccepted {
			t.Fatalf("submit %s: status %d (%s)", tn, st.Code, st.Err)
		}
		if st.Job.TraceID == "" || st.Job.TraceID != st.Job.Tag {
			t.Errorf("submit %s: TraceID %q, want the fleet tag %q", tn, st.Job.TraceID, st.Job.Tag)
		}
		owned[st.Job.Shard] = true
		if i >= 1 && len(owned) == len(cfg.Shards) {
			break
		}
	}
	if len(owned) != len(cfg.Shards) {
		t.Fatalf("hashing sent every tenant to %v; widen the tenant pool", owned)
	}
	settleFleet(t, rt)

	// Live stitch: must be valid Chrome trace JSON with router events in.
	var live bytes.Buffer
	if err := rt.WriteTimeline(&live); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(live.Bytes(), &chrome); err != nil {
		t.Fatalf("live timeline is not valid JSON: %v", err)
	}
	groups := map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev["name"] == "process_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				groups[args["name"].(string)] = true
			}
		}
	}
	wantGroups := []string{"fleet"}
	for id := range owned {
		wantGroups = append(wantGroups, id)
	}
	for _, want := range wantGroups {
		if !groups[want] {
			t.Errorf("live timeline missing lane group %q (have %v)", want, groups)
		}
	}

	// The HTTP surface: /timeline re-renders the same bytes on a settled
	// fleet, and /jobs/{id}/explain wraps the shard's breakdown with the
	// router hop record in both JSON and text renderings.
	fh := httptest.NewServer(NewHandler(rt, HandlerConfig{Logf: quiet}))
	defer fh.Close()
	get := func(path string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Get(fh.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), body
	}

	code, _, body := get("/timeline")
	if code != http.StatusOK {
		t.Fatalf("/timeline: status %d", code)
	}
	if !bytes.Equal(body, live.Bytes()) {
		t.Error("/timeline differs from WriteTimeline on a settled fleet")
	}

	code, ctype, body := get("/jobs/0/explain")
	if code != http.StatusOK {
		t.Fatalf("/jobs/0/explain: status %d: %s", code, body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/jobs/0/explain content type %q", ctype)
	}
	var wrapped struct {
		Fleet   FleetJob        `json:"fleet"`
		Explain obs.Explanation `json:"explain"`
	}
	if err := json.Unmarshal(body, &wrapped); err != nil {
		t.Fatalf("/jobs/0/explain: %v\n%s", err, body)
	}
	if wrapped.Fleet.ID != 0 || wrapped.Fleet.TraceID == "" {
		t.Errorf("/jobs/0/explain fleet record: %+v", wrapped.Fleet)
	}
	if wrapped.Explain.TraceID != wrapped.Fleet.TraceID {
		t.Errorf("explain trace %q != fleet trace %q", wrapped.Explain.TraceID, wrapped.Fleet.TraceID)
	}
	var sum int64
	for _, p := range wrapped.Explain.Phases {
		sum += p.DurNs
	}
	if len(wrapped.Explain.Phases) == 0 || sum != wrapped.Explain.LatencyNs {
		t.Errorf("explain phases sum to %d, latency %d: %+v", sum, wrapped.Explain.LatencyNs, wrapped.Explain)
	}

	code, ctype, body = get("/jobs/0/explain?format=text")
	if code != http.StatusOK {
		t.Fatalf("/jobs/0/explain?format=text: status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("text explain content type %q", ctype)
	}
	if !strings.HasPrefix(string(body), "fleet: job 0  ") {
		t.Errorf("text explain missing fleet hop line:\n%s", body)
	}
	if !strings.Contains(string(body), "bottleneck") {
		t.Errorf("text explain missing shard breakdown:\n%s", body)
	}

	if code, _, _ := get("/jobs/99/explain"); code != http.StatusNotFound {
		t.Errorf("/jobs/99/explain: status %d, want 404", code)
	}

	// Drain flushes the shard arrival traces; the settled router's own
	// recording is unchanged by it (a successful drain emits no events).
	if _, err := rt.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Offline stitch of the run's trace directory: byte-identical to the
	// live timeline captured before the drain.
	dir := t.TempDir()
	for i, s := range cfg.Shards {
		tb := shards[i].trace.Bytes()
		if len(tb) == 0 {
			continue // a shard that saw no arrivals has no trace to replay
		}
		p := filepath.Join(dir, s.ID+".jsonl")
		if err := os.WriteFile(p, tb, 0o644); err != nil {
			t.Fatalf("writing trace: %v", err)
		}
	}
	var robs bytes.Buffer
	if err := rt.WriteObs(&robs); err != nil {
		t.Fatalf("WriteObs: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, RouterObsName), robs.Bytes(), 0o644); err != nil {
		t.Fatalf("writing router obs: %v", err)
	}
	var off bytes.Buffer
	if err := WriteStitchedDir(&off, dir, serve.ReplayOptions{}); err != nil {
		t.Fatalf("WriteStitchedDir: %v", err)
	}
	if !bytes.Equal(live.Bytes(), off.Bytes()) {
		os.WriteFile("/tmp/stitch_live.json", live.Bytes(), 0o644)
		os.WriteFile("/tmp/stitch_off.json", off.Bytes(), 0o644)
		t.Fatalf("live and offline stitched timelines differ (dumped to /tmp/stitch_{live,off}.json)")
	}

	// Without router.obs the offline stitch still works — shards only,
	// exactly like a run whose router record was lost.
	if err := os.Remove(filepath.Join(dir, RouterObsName)); err != nil {
		t.Fatal(err)
	}
	evs, err := StitchDir(dir, serve.ReplayOptions{})
	if err != nil {
		t.Fatalf("StitchDir without router.obs: %v", err)
	}
	for _, e := range evs {
		if StitchGroup(e.Stream) == "fleet" {
			t.Fatalf("router stream %q present after router.obs removed", e.Stream)
		}
	}
}
