#!/usr/bin/env bash
# End-to-end smoke for the gpmrd online job service:
#   1. start the daemon with trace recording,
#   2. submit a small job stream over HTTP (mixed tenants and kinds,
#      including a rejected submission),
#   3. poll every job to a terminal state,
#   4. drain via SIGINT and capture the live report from stdout,
#   5. replay the recorded arrival trace offline,
#   6. diff the two reports byte for byte.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

addr="127.0.0.1:8373"
base="http://$addr"

go build -o "$workdir/gpmrd" ./cmd/gpmrd
"$workdir/gpmrd" -addr "$addr" -gpus 8 -policy weighted-fair -queue 8 -quota 4 \
  -phys 4096 -timescale 20 -trace "$workdir/trace.jsonl" \
  >"$workdir/live.out" 2>"$workdir/live.log" &
pid=$!

for i in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "gpmrd never became healthy"; cat "$workdir/live.log"; exit 1; }
  sleep 0.1
done

submit() {
  curl -sS -X POST "$base/jobs" -d "$1" -o /dev/null -w '%{http_code}'
}

# A small mixed stream: two tenants, three kinds.
[ "$(submit '{"tenant":"alice","kind":"wo","params":{"bytes":1048576,"gpus":2,"seed":1}}')" = 202 ]
[ "$(submit '{"tenant":"alice","kind":"kmc","params":{"points":1048576,"gpus":2,"seed":2}}')" = 202 ]
[ "$(submit '{"tenant":"bob","kind":"sio","params":{"elements":2097152,"gpus":4,"seed":3}}')" = 202 ]
[ "$(submit '{"tenant":"bob","kind":"wo","params":{"bytes":1048576,"gpus":2,"seed":4}}')" = 202 ]
# Invalid kind: rejected at admission, recorded in the trace all the same.
[ "$(submit '{"tenant":"eve","kind":"nope"}')" = 400 ]

# Poll every submitted job to a terminal state.
for i in $(seq 1 200); do
  states="$(curl -fsS "$base/jobs" | tr ',' '\n' | grep '"state"' || true)"
  live="$(echo "$states" | grep -cE 'queued|running' || true)"
  [ "$live" = 0 ] && break
  [ "$i" = 200 ] && { echo "jobs never drained:"; curl -fsS "$base/jobs"; exit 1; }
  sleep 0.1
done

# Metrics sanity while the daemon is still up: counters, and the latency
# histograms' cumulative +Inf buckets must equal the placed-job count.
# (Snapshot to a file: `curl | grep -q` SIGPIPEs curl when grep exits at
# the first match.)
curl -fsS "$base/metrics" >"$workdir/metrics.txt"
grep -q '^gpmr_serve_done_total 4' "$workdir/metrics.txt"
grep -q 'gpmr_serve_rejected_total{reason="invalid"} 1' "$workdir/metrics.txt"
grep -q 'gpmr_serve_wait_seconds_bucket{le="+Inf"} 4' "$workdir/metrics.txt"
grep -q '^gpmr_serve_service_seconds_count 4' "$workdir/metrics.txt"

# Per-job timeline: valid Chrome trace-event JSON with this job's lanes.
curl -fsS "$base/jobs/0/timeline" >"$workdir/timeline.json"
python3 - "$workdir/timeline.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
evs = doc["traceEvents"]
lanes = [e["args"]["name"] for e in evs if e.get("name") == "thread_name"]
assert any(l.startswith("serve/") for l in lanes), lanes
assert any(e.get("ph") == "X" for e in evs), "no spans in timeline"
EOF
# An unknown job is a clean 404.
[ "$(curl -sS -o /dev/null -w '%{http_code}' "$base/jobs/99/timeline")" = 404 ]

# Drain race: submissions racing SIGINT must get terminal HTTP answers
# (202/400/429/503) or fail cleanly at dial time (curl exit 7 once the
# listener is gone) — never a torn connection (exit 52/56).
racepids=""
for i in $(seq 1 8); do
  curl -sS -o /dev/null -w '%{http_code}\n' -X POST "$base/jobs" \
    -d "{\"tenant\":\"race\",\"kind\":\"wo\",\"params\":{\"bytes\":1048576,\"gpus\":2,\"seed\":$((100 + i))}}" \
    >>"$workdir/race.codes" 2>>"$workdir/race.log" &
  racepids="$racepids $!"
done
sleep 0.05
kill -INT "$pid"
for rp in $racepids; do
  rc=0
  wait "$rp" || rc=$?
  case "$rc" in
    0|7) ;;
    *) echo "race submission died with curl exit $rc (torn connection?)"
       cat "$workdir/race.log"; exit 1 ;;
  esac
done
if grep -qvE '^(000|202|400|429|503)$' "$workdir/race.codes"; then
  echo "race submission got a non-terminal answer:"
  cat "$workdir/race.codes"
  exit 1
fi
wait "$pid"

# Replay the recorded trace offline: the report must match byte for byte.
"$workdir/gpmrd" -replay "$workdir/trace.jsonl" >"$workdir/replay.out"
if ! diff -u "$workdir/live.out" "$workdir/replay.out"; then
  echo "live and replay reports differ"
  exit 1
fi

echo "gpmrd smoke: live report matches offline replay ($(wc -l <"$workdir/live.out") lines)"
