package serve

import "strconv"

// latencyBuckets are the upper bounds (virtual seconds) of the serve
// latency histograms. They span sub-millisecond queue waits (small
// replayed benchmarks) through multi-second services (paper-scale runs),
// roughly 2.5x apart — the standard Prometheus latency ladder.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram in Prometheus's model:
// per-bucket counts (exposed cumulatively), a sum, and a total count.
type Histogram struct {
	Bounds []float64 // bucket upper bounds, ascending
	Counts []int64   // len(Bounds)+1: per-bucket, last is the +Inf overflow
	Sum    float64
	Count  int64
}

func newLatencyHistogram() *Histogram {
	return &Histogram{Bounds: latencyBuckets, Counts: make([]int64, len(latencyBuckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Sum += v
	h.Count++
}

// clone deep-copies the histogram for a snapshot.
func (h *Histogram) clone() *Histogram {
	if h == nil {
		return nil
	}
	out := *h
	out.Counts = append([]int64(nil), h.Counts...)
	return &out
}

// fmtBound renders a bucket bound the way Prometheus clients do: the
// shortest exact decimal.
func fmtBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
