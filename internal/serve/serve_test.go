package serve

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/sched"
)

const testPhys = 2048

func testCatalog() *Catalog { return DefaultCatalog(testPhys) }

// waitDrained polls until every submitted job reached a terminal state.
func waitDrained(t *testing.T, sv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		s := sv.Stats()
		if s.Done+s.Failed+s.Cancelled+s.rejected() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("jobs never drained: %+v", sv.Stats())
}

// TestLiveReplayOfflineIdentity is the subsystem's core promise: a live
// run with concurrent submitters — wall-clock arrivals, injection
// primitive, admission control — records a trace whose offline replay
// reproduces the run byte for byte, and whose admitted stream fed to the
// closed-system sched.Run produces the identical ClusterTrace and
// byte-identical job outputs (via canonical digests). Run under -race,
// this is also the injection primitive's concurrency stress.
func TestLiveReplayOfflineIdentity(t *testing.T) {
	var rec bytes.Buffer
	cfg := Config{
		Cluster:   cluster.DefaultConfig(8),
		Policy:    sched.Policy{Kind: sched.WeightedFair},
		Catalog:   testCatalog(),
		TimeScale: 20,
		TraceW:    &rec,
	}
	sv, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}

	kinds := []struct {
		kind   string
		params Params
	}{
		{"wo", Params{"bytes": 1 << 20, "gpus": 2, "seed": 7}},
		{"kmc", Params{"points": 1 << 20, "gpus": 2, "seed": 11}},
		{"sio", Params{"elements": 2 << 20, "gpus": 4, "seed": 13}},
	}
	const perTenant = 3
	var wg sync.WaitGroup
	for ti, tenant := range []string{"alice", "bob", "carol"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perTenant; k++ {
				spec := kinds[(ti+k)%len(kinds)]
				p := Params{}
				for key, v := range spec.params {
					p[key] = v
				}
				p["seed"] = int64(100*ti + k + 1)
				info, err := sv.Submit(Request{Tenant: tenant, Kind: spec.kind, Params: p})
				if err != nil {
					t.Errorf("submit %s/%s: %v", tenant, spec.kind, err)
					return
				}
				if info.State == Rejected {
					t.Errorf("submit %s/%s rejected: %s", tenant, spec.kind, info.Reason)
				}
			}
		}()
	}
	wg.Wait()
	waitDrained(t, sv, 3*perTenant)
	live, err := sv.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if live.Stats.Done != 3*perTenant {
		t.Fatalf("live run: %d done, want %d\n%s", live.Stats.Done, 3*perTenant, live.String())
	}

	// Replay the recorded trace offline: byte-identical report.
	tr, err := ReadTrace(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	replay, err := Replay(tr, ReplayOptions{Catalog: testCatalog()})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if live.String() != replay.String() {
		t.Fatalf("live and replay reports differ:\n--- live ---\n%s--- replay ---\n%s", live.String(), replay.String())
	}

	// Replay again with the pooled kernel backend: still identical.
	replay2, err := Replay(tr, ReplayOptions{Catalog: testCatalog(), Workers: 2})
	if err != nil {
		t.Fatalf("Replay(workers=2): %v", err)
	}
	if replay.String() != replay2.String() {
		t.Fatalf("replay diverges across kernel backends:\n%s\nvs\n%s", replay.String(), replay2.String())
	}

	// The same admitted stream through the closed-system scheduler:
	// identical ClusterTrace text, byte-identical outputs by digest.
	var specs []sched.JobSpec
	var runs []core.Runnable
	for _, ev := range tr.Events {
		a := ev.Arrive
		if a == nil {
			t.Fatal("unexpected cancel in trace")
		}
		name := fmt.Sprintf("%s-%s-%d", a.Tenant, a.Kind, a.Seq)
		run, err := testCatalog().Build(a.Kind, name, a.Params)
		if err != nil {
			t.Fatalf("rebuilding %s: %v", name, err)
		}
		specs = append(specs, sched.JobSpec{At: a.At, Job: run, Weight: a.Weight, MinGang: a.MinGang})
		runs = append(runs, run)
	}
	ct, err := sched.Run(cluster.DefaultConfig(8), cfg.Policy, specs)
	if err != nil {
		t.Fatalf("sched.Run: %v", err)
	}
	if ct.String() != replay.Cluster.String() {
		t.Fatalf("offline sched.Run trace differs from serve replay:\n--- sched.Run ---\n%s--- serve ---\n%s",
			ct.String(), replay.Cluster.String())
	}
	for i, run := range runs {
		d, ok := run.(core.OutputDigester)
		if !ok {
			t.Fatalf("job %d is not digestible", i)
		}
		dig, done := d.OutputDigest()
		if !done {
			t.Fatalf("offline job %d never completed", i)
		}
		j := replay.Jobs[i]
		if !j.HasDigest || j.Digest != dig {
			t.Fatalf("job %d output digest: serve %x (has=%v), offline %x — outputs differ",
				i, j.Digest, j.HasDigest, dig)
		}
	}
}

// buildTrace assembles an in-memory trace for deterministic replay tests.
func buildTrace(h Header, evs []Event) *Trace { return &Trace{Header: h, Events: evs} }

func arr(seq int, at des.Time, tenant, kind string, p Params) Event {
	return Event{Arrive: &Arrival{Seq: seq, At: at, Tenant: tenant, Kind: kind, Params: p}}
}

// TestAdmissionControl drives shed, quota, and invalid rejects plus a
// cancellation through a hand-built trace, where every virtual time is
// exact. FIFO-exclusive keeps the first job holding the whole machine so
// the queue actually builds.
func TestAdmissionControl(t *testing.T) {
	h := Header{
		Version: TraceVersion, Policy: "fifo-exclusive",
		GPUs: 4, GPUsPerNode: 4,
		MaxQueue: 2, Quota: 2, PhysBudget: testPhys,
	}
	wp := Params{"bytes": 1 << 20, "gpus": 2, "seed": 3}
	ms := des.Millisecond
	tr := buildTrace(h, []Event{
		arr(0, 0, "a", "wo", wp),                    // runs immediately
		arr(1, ms, "a", "wo", wp),                   // queued (depth 1)
		arr(2, 2*ms, "a", "wo", wp),                 // quota: a already has 2 in flight
		arr(3, 3*ms, "b", "wo", wp),                 // queued (depth 2)
		arr(4, 4*ms, "c", "wo", wp),                 // shed: queue full
		arr(5, 5*ms, "c", "nope", nil),              // invalid kind
		arr(6, 6*ms, "c", "wo", Params{"bogus": 1}), // invalid param
		{Cancel: &Cancel{Seq: 3, At: 7 * ms}},       // b withdraws its queued job
		{Cancel: &Cancel{Seq: 0, At: 8 * ms}},       // no-op: job 0 is running
		arr(7, 9*ms, "c", "wo", wp),                 // queue has room again
	})

	rep, err := Replay(tr, ReplayOptions{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	wantStates := map[int]State{0: Done, 1: Done, 2: Rejected, 3: Cancelled, 4: Rejected, 5: Rejected, 6: Rejected, 7: Done}
	for id, want := range wantStates {
		if got := rep.Jobs[id].State; got != want {
			t.Errorf("job %d state %v, want %v (%s)", id, got, want, rep.Jobs[id].Reason)
		}
	}
	wantReason := map[int]string{2: "quota", 4: "shed", 5: "unknown job kind", 6: "does not accept parameter"}
	for id, frag := range wantReason {
		if !strings.Contains(rep.Jobs[id].Reason, frag) {
			t.Errorf("job %d reason %q, want fragment %q", id, rep.Jobs[id].Reason, frag)
		}
	}
	s := rep.Stats
	if s.Submitted != 8 || s.Done != 3 || s.Cancelled != 1 ||
		s.RejectedQuota != 1 || s.RejectedShed != 1 || s.RejectedInvalid != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if ts := s.Tenants["a"]; ts.Submitted != 3 || ts.Admitted != 2 || ts.Rejected != 1 || ts.Done != 2 {
		t.Fatalf("tenant a stats: %+v", ts)
	}
	// Only admitted, uncancelled jobs reach the cluster trace.
	if len(rep.Cluster.Jobs) != 3 {
		t.Fatalf("cluster trace has %d jobs, want 3:\n%s", len(rep.Cluster.Jobs), rep.Cluster.String())
	}

	// Determinism: a second replay — with rejects and cancels in the
	// stream — renders the identical report.
	rep2, err := Replay(tr, ReplayOptions{})
	if err != nil {
		t.Fatalf("second Replay: %v", err)
	}
	if rep.String() != rep2.String() {
		t.Fatalf("replay not deterministic:\n%s\nvs\n%s", rep.String(), rep2.String())
	}
}

// TestLiveCancelAndDrain checks the live cancellation surface and that a
// live run containing cancel attempts still replays identically (only
// successful cancels are recorded; failed ones are non-events).
func TestLiveCancelAndDrain(t *testing.T) {
	var rec bytes.Buffer
	cfg := Config{
		Cluster: cluster.DefaultConfig(4),
		Policy:  sched.Policy{Kind: sched.FIFOExclusive},
		Catalog: testCatalog(),
		TraceW:  &rec,
	}
	sv, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if ok, _ := sv.Cancel(99); ok {
		t.Fatal("cancelling an unknown job succeeded")
	}
	// A rapid burst under an exclusive policy: the head runs, the tail
	// queues. Whether any given job is still queued when we cancel is
	// wall-clock dependent — the replay-identity assertion is not.
	var last JobInfo
	for i := 0; i < 5; i++ {
		info, err := sv.Submit(Request{Tenant: "t", Kind: "sio",
			Params: Params{"elements": 16 << 20, "gpus": 4, "seed": int64(i + 1)}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		last = info
	}
	got, err := sv.Cancel(last.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	want := int64(5)
	if got {
		want = 5 // cancelled jobs are terminal too; waitDrained counts them
	}
	waitDrained(t, sv, want)
	// A failed cancel long after the last completion must not advance
	// virtual time (it is not recorded, so an advance would make the
	// live makespan diverge from the replay's — the diff below).
	time.Sleep(50 * time.Millisecond)
	if ok, _ := sv.Cancel(0); ok {
		t.Fatal("cancelling a finished job succeeded")
	}
	live, err := sv.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if j, ok := sv.Job(last.ID); !ok || (got && j.State != Cancelled) || (!got && j.State != Done) {
		t.Fatalf("cancel returned %v but job ended %v", got, j.State)
	}
	if _, err := sv.Submit(Request{Tenant: "t", Kind: "wo"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: err=%v, want ErrDraining", err)
	}

	tr, err := ReadTrace(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	replay, err := Replay(tr, ReplayOptions{Catalog: testCatalog()})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if live.String() != replay.String() {
		t.Fatalf("live and replay reports differ:\n--- live ---\n%s--- replay ---\n%s", live.String(), replay.String())
	}
}

// TestCatalogValidation pins the submission-surface errors.
func TestCatalogValidation(t *testing.T) {
	c := testCatalog()
	if _, err := c.Build("nope", "x", nil); err == nil || !strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("unknown kind: %v", err)
	}
	if _, err := c.Build("wo", "x", Params{"byte": 1}); err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Fatalf("unknown param: %v", err)
	}
	// Hostile values must reject, never panic: a catalog build runs on
	// the engine goroutine, where a panic kills the whole service.
	for name, p := range map[string]Params{
		"negative size": {"elements": -1},
		"zero size":     {"elements": 0},
		"absurd size":   {"elements": 1 << 50},
		"zero gpus":     {"gpus": 0},
	} {
		if _, err := c.Build("sio", "x", p); err == nil || !strings.Contains(err.Error(), "outside") {
			t.Errorf("%s: err = %v, want range error", name, err)
		}
	}
	if _, err := c.Build("wo", "x", Params{"bytes": -5}); err == nil {
		t.Error("wo accepted a negative corpus size")
	}
	if _, err := c.Build("kmc", "x", Params{"centers": -1}); err == nil {
		t.Error("kmc accepted negative centers")
	}
	if got := c.Kinds(); len(got) != 3 || got[0] != "kmc" || got[1] != "sio" || got[2] != "wo" {
		t.Fatalf("kinds: %v", got)
	}
}

// TestServerMetrics smoke-checks the Prometheus exposition: counters
// present, consistent with the stats snapshot.
func TestServerMetrics(t *testing.T) {
	cfg := Config{
		Cluster: cluster.DefaultConfig(4),
		Policy:  sched.Policy{Kind: sched.WeightedFair},
		Catalog: testCatalog(),
		Quota:   1,
	}
	sv, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := sv.Submit(Request{Tenant: "m", Kind: "wo", Params: Params{"bytes": 1 << 20, "gpus": 2}}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitDrained(t, sv, 1)
	var mb strings.Builder
	sv.WriteMetrics(&mb)
	out := mb.String()
	for _, want := range []string{
		"gpmr_serve_submitted_total 1",
		"gpmr_serve_done_total 1",
		`gpmr_serve_rejected_total{reason="shed"} 0`,
		"gpmr_serve_queue_depth 0",
		"gpmr_serve_ranks 4",
		`gpmr_serve_tenant_submitted_total{tenant="m"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
	if _, err := sv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}
