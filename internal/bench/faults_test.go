package bench

import (
	"reflect"
	"strings"
	"testing"
)

func faultRowsForTest(t *testing.T) []FaultRow {
	t.Helper()
	rows, err := Faults(Options{PhysBudget: 1 << 14, Seed: 1})
	if err != nil {
		t.Fatalf("Faults: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	return rows
}

func findRow(t *testing.T, rows []FaultRow, name string) FaultRow {
	t.Helper()
	for _, r := range rows {
		if r.Scenario == name {
			return r
		}
	}
	t.Fatalf("scenario %q missing", name)
	return FaultRow{}
}

func TestFaultsScenarios(t *testing.T) {
	rows := faultRowsForTest(t)
	base := findRow(t, rows, "baseline")
	fail := findRow(t, rows, "failstop")
	slow := findRow(t, rows, "straggler")
	spec := findRow(t, rows, "straggler+spec")

	for _, r := range rows {
		if !r.OutputOK {
			t.Errorf("%s: output diverged from the failure-free run", r.Scenario)
		}
	}

	// A mid-map failure must cost something and be visible as recovery.
	if fail.ChunksRecovered == 0 || fail.RecoveredBytes == 0 {
		t.Errorf("failstop recovered nothing: %+v", fail)
	}
	if fail.Wall <= base.Wall {
		t.Errorf("failstop makespan %v not above baseline %v", fail.Wall, base.Wall)
	}

	// The straggler drags the job; speculation buys part of it back.
	if slow.Wall <= base.Wall {
		t.Errorf("straggler makespan %v not above baseline %v", slow.Wall, base.Wall)
	}
	if spec.Wall >= slow.Wall {
		t.Errorf("speculation did not improve the straggler makespan: %v vs %v", spec.Wall, slow.Wall)
	}
	// MapDone is not compared between the straggler rows: the no-spec run
	// is non-resilient (straggler-only plan), whose earlier end-of-map
	// declaration makes the two numbers different accounting regimes.
	if fail.MapDone <= base.MapDone {
		t.Errorf("failstop did not extend the map phase: %v vs %v", fail.MapDone, base.MapDone)
	}
	if spec.SpecLaunched == 0 || spec.SpecWon == 0 {
		t.Errorf("speculation launched=%d won=%d", spec.SpecLaunched, spec.SpecWon)
	}
}

func TestFaultsDeterministic(t *testing.T) {
	a := faultRowsForTest(t)
	b := faultRowsForTest(t)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault experiment rows differ across runs:\n%+v\nvs\n%+v", a, b)
	}
}

func TestRenderFaults(t *testing.T) {
	var sb strings.Builder
	RenderFaults(&sb, faultRowsForTest(t))
	out := sb.String()
	for _, want := range []string{"failstop", "straggler+spec", "IDENTICAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table lacks %q:\n%s", want, out)
		}
	}
}
