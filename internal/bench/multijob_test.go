package bench

import (
	"testing"
)

// multijobOpts keeps the stream cheap enough for CI.
func multijobOpts() Options { return Options{PhysBudget: 4096, Seed: 1} }

func TestMultijobPoliciesCompareOnOneStream(t *testing.T) {
	rows, traces, err := Multijob(multijobOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(traces) != 3 {
		t.Fatalf("got %d rows / %d traces, want 3 policies", len(rows), len(traces))
	}
	byPolicy := map[string]MultijobRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.Jobs != MultijobJobs {
			t.Errorf("%s completed %d jobs, want %d", r.Policy, r.Jobs, MultijobJobs)
		}
	}
	fifo, ok1 := byPolicy["fifo-exclusive"]
	wfair, ok2 := byPolicy["weighted-fair"]
	if !ok1 || !ok2 {
		t.Fatalf("missing policies in %v", rows)
	}

	// The headline claim: sharing the cluster cuts the small jobs' tail
	// latency versus draining the queue one exclusive job at a time.
	if wfair.P95Small >= fifo.P95Small {
		t.Errorf("weighted-fair p95 small-job latency %v >= fifo-exclusive %v",
			wfair.P95Small, fifo.P95Small)
	}
	if wfair.MeanWait >= fifo.MeanWait {
		t.Errorf("weighted-fair mean wait %v >= fifo-exclusive %v", wfair.MeanWait, fifo.MeanWait)
	}
	if wfair.Jain <= fifo.Jain {
		t.Errorf("weighted-fair Jain %f <= fifo-exclusive %f", wfair.Jain, fifo.Jain)
	}

	// Every policy sees the same arrival stream and finishes every job.
	for _, ct := range traces {
		for i := range ct.Jobs {
			j := &ct.Jobs[i]
			if j.Trace == nil {
				t.Errorf("%s job %d (%s) has no trace", ct.Policy.Kind, j.ID, j.Name)
			}
			if j.Finish < j.Admit || j.Admit < j.Arrival {
				t.Errorf("%s job %d times out of order: arr %v admit %v finish %v",
					ct.Policy.Kind, j.ID, j.Arrival, j.Admit, j.Finish)
			}
			if other := &traces[0].Jobs[i]; j.Arrival != other.Arrival || j.Name != other.Name {
				t.Errorf("policies saw different streams: job %d is %s@%v vs %s@%v",
					i, j.Name, j.Arrival, other.Name, other.Arrival)
			}
		}
	}

	// Exclusive gangs get their full request; fixed-share caps at 4.
	for i := range traces[0].Jobs {
		if j := &traces[0].Jobs[i]; j.Granted != j.Want {
			t.Errorf("fifo-exclusive granted %d of %d to job %d", j.Granted, j.Want, j.ID)
		}
		if j := &traces[1].Jobs[i]; j.Granted > 4 {
			t.Errorf("fixed-share(4) granted %d ranks to job %d", j.Granted, j.ID)
		}
	}
}

func TestMultijobStreamBitIdentical(t *testing.T) {
	// Golden-trace determinism for the whole multi-tenant run: two
	// executions of the same seeded arrival stream must render the exact
	// same cluster traces, byte for byte.
	_, a, err := Multijob(multijobOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Multijob(multijobOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		as, bs := a[i].String(), b[i].String()
		if as != bs {
			t.Errorf("policy %s traces differ between runs:\n--- run 1\n%s\n--- run 2\n%s",
				a[i].Policy.Kind, as, bs)
		}
	}
}
