package des

import "fmt"

// Time is a point in simulated time, in nanoseconds.
type Time int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts a duration in seconds to a Time, rounding to the
// nearest nanosecond. Negative and non-finite inputs are clamped to zero:
// cost models occasionally produce -0.0 or tiny negative values from
// floating-point cancellation, and a negative wait would corrupt the event
// queue ordering.
func FromSeconds(s float64) Time {
	if !(s > 0) {
		return 0
	}
	return Time(s*float64(Second) + 0.5)
}

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
