package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fabric"
	"repro/internal/gpu"
)

// gang maps one job's local ranks (0..n-1, the coordinate system the whole
// pipeline runs in) onto a subset of a cluster's global ranks. It is the
// seam that lets many jobs space-share one simulated machine: each job's
// processes address only their own gang, while every send, transfer, and
// kernel still lands on the shared devices, PCIe links, and NICs — so
// co-resident jobs contend for real hardware in the fabric model.
//
// The gang also meters the job's own fabric traffic. The cluster-wide
// Fabric counters aggregate every tenant; per-job wire accounting has to
// happen at the boundary where the job hands bytes to the shared fabric.
type gang struct {
	cl      *cluster.Cluster
	ranks   []int // local rank -> global cluster rank
	localOf map[int]int

	// Per-job fabric traffic in virtual bytes, counted at send/transfer
	// time (receive bytes mirror sends, as in Fabric's own accounting).
	wireBytes  int64
	localBytes int64
}

// newGang builds the local→global mapping. Every global rank must exist on
// the cluster and appear at most once.
func newGang(cl *cluster.Cluster, ranks []int) (*gang, error) {
	g := &gang{cl: cl, ranks: append([]int(nil), ranks...), localOf: make(map[int]int, len(ranks))}
	for l, r := range g.ranks {
		if r < 0 || r >= cl.Ranks() {
			return nil, fmt.Errorf("core: gang rank %d outside cluster 0..%d", r, cl.Ranks()-1)
		}
		if _, dup := g.localOf[r]; dup {
			return nil, fmt.Errorf("core: gang lists cluster rank %d twice", r)
		}
		g.localOf[r] = l
	}
	return g, nil
}

// identityRanks is the exclusive-cluster mapping: local rank i is global
// rank i.
func identityRanks(n int) []int {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// size is the gang's rank count.
func (g *gang) size() int { return len(g.ranks) }

// dev returns the local rank's GPU.
func (g *gang) dev(local int) *gpu.Device { return g.cl.GPUs[g.ranks[local]] }

// node returns the host node of a local rank.
func (g *gang) node(local int) *cluster.Node { return g.cl.NodeOfRank(g.ranks[local]) }

// sameNode reports whether two local ranks share a host node.
func (g *gang) sameNode(a, b int) bool {
	return g.cl.Fabric.SameNode(g.ranks[a], g.ranks[b])
}

// derate returns the local rank's current straggler factor.
func (g *gang) derate(local int) float64 { return g.cl.DerateFactor(g.ranks[local]) }

// setDerate stretches the local rank's GPU durations by factor.
func (g *gang) setDerate(local int, factor float64) { g.cl.Derate(g.ranks[local], factor) }

// count records one fabric handoff in the job's own traffic meters.
func (g *gang) count(from, to int, virtBytes int64) {
	if g.sameNode(from, to) {
		g.localBytes += virtBytes
	} else {
		g.wireBytes += virtBytes
	}
}

// send transmits between two gang members over the shared fabric.
func (g *gang) send(p *des.Proc, from, to int, tag string, virtBytes int64, payload any) {
	g.count(from, to, virtBytes)
	g.cl.Fabric.Send(p, g.ranks[from], g.ranks[to], tag, virtBytes, payload)
}

// localize translates a received message's endpoints back into gang
// coordinates. Space-sharing keeps gangs disjoint, so every sender to a
// gang member's inbox during the job's tenure is a gang member.
func (g *gang) localize(m fabric.Message, local int) fabric.Message {
	from, ok := g.localOf[m.From]
	if !ok {
		panic(fmt.Sprintf("core: rank %d received a message from rank %d outside its gang", g.ranks[local], m.From))
	}
	m.From = from
	m.To = local
	return m
}

// recv blocks on the local rank's inbox and returns the message with its
// endpoints translated back into gang coordinates.
func (g *gang) recv(p *des.Proc, local int) fabric.Message {
	return g.localize(g.cl.Fabric.Recv(p, g.ranks[local]), local)
}

// tryRecv pops a pending message without blocking, endpoints translated
// as in recv.
func (g *gang) tryRecv(local int) (fabric.Message, bool) {
	m, ok := g.cl.Fabric.TryRecv(g.ranks[local])
	if !ok {
		return fabric.Message{}, false
	}
	return g.localize(m, local), true
}

// pending reports the local rank's unread inbox depth.
func (g *gang) pending(local int) int { return g.cl.Fabric.Pending(g.ranks[local]) }

// transfer is a synchronous bulk move between gang members (chunk shifts,
// recovery re-fetches).
func (g *gang) transfer(p *des.Proc, from, to int, virtBytes int64) des.Time {
	g.count(from, to, virtBytes)
	return g.cl.Fabric.Transfer(p, g.ranks[from], g.ranks[to], virtBytes)
}
