//go:build !race

package gpmr_test

// Wall-clock regression guard for the kernel-execution backends: the Pool
// backend exists to cut the *harness's* host time by running kernels'
// functional work from different simulated GPUs on real cores
// concurrently, so this file measures host ns per job for Serial vs
// Pool(GOMAXPROCS) on one WO size, emits the BENCH_backend.json artifact,
// and asserts the pool is not slower than serial on the multi-GPU
// configurations (where concurrent kernels actually exist). Simulated
// results are byte-identical across backends — that invariant is held by
// internal/bench's differential matrix, not here.
//
// Excluded under -race: race instrumentation taxes the pool's per-launch
// synchronization (channel handoffs, future joins) far more than serial's
// plain function calls, so wall-clock comparisons there measure the
// detector, not the backend. The non-race CI job enforces the guard.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/apps/wo"
	"repro/internal/bench"
	"repro/internal/core"
)

// backendBenchParams is the guard's workload: a mid-size WO corpus with
// enough physical data that map kernels do real host work per launch.
func backendBenchJob(gpus, workers int) *core.Job[uint32] {
	b := wo.NewJob(wo.Params{
		Bytes:    64 << 20,
		GPUs:     gpus,
		Seed:     1,
		PhysMax:  1 << 19, // 512 KB materialized corpus: real hashing per kernel
		DictSize: 4300,
	})
	b.Job.Config.Workers = workers
	return b.Job
}

// timeBackend returns the fastest of reps host-timed runs (job build
// excluded — workload generation and the MPH build are backend-blind).
func timeBackend(tb testing.TB, gpus, workers, reps int) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		job := backendBenchJob(gpus, workers)
		start := time.Now()
		if _, err := job.Run(); err != nil {
			tb.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// backendBenchRow is one configuration's measurement in the artifact.
type backendBenchRow struct {
	GPUs     int     `json:"gpus"`
	SerialNs int64   `json:"serial_ns"`
	PoolNs   int64   `json:"pool_ns"`
	Speedup  float64 `json:"speedup"`
}

// TestBackendWallClockGuard measures Serial vs Pool(GOMAXPROCS) host time
// on WO at 1, 4, and 8 GPUs, writes BENCH_backend.json, and fails if the
// pool is slower than serial on the multi-GPU configs. A 25% tolerance
// absorbs scheduler and CI timing noise — the guard catches a backend
// whose dispatch overhead eats its concurrency, not single-digit jitter.
func TestBackendWallClockGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement skipped in -short")
	}
	type artifact struct {
		bench.Stamp
		App       string            `json:"app"`
		VirtBytes int64             `json:"virt_bytes"`
		Rows      []backendBenchRow `json:"rows"`
	}
	// Pin GOMAXPROCS to the full machine for the measurement: the guard
	// compares parallel dispatch against serial, so inheriting a capped
	// setting (containerized CI once handed this test GOMAXPROCS=1, and the
	// artifact recorded a meaningless 1.0x sweep) would measure nothing.
	// Restored afterwards; the recorded value is what the rows actually ran
	// under.
	if n := runtime.NumCPU(); n >= 2 && runtime.GOMAXPROCS(0) != n {
		prev := runtime.GOMAXPROCS(n)
		defer runtime.GOMAXPROCS(prev)
	}
	art := artifact{Stamp: bench.NewStamp(), App: "wo", VirtBytes: 64 << 20}
	const reps = 3
	for _, gpus := range []int{1, 4, 8} {
		serial := timeBackend(t, gpus, 0, reps)
		pool := timeBackend(t, gpus, -1, reps)
		art.Rows = append(art.Rows, backendBenchRow{
			GPUs:     gpus,
			SerialNs: serial.Nanoseconds(),
			PoolNs:   pool.Nanoseconds(),
			Speedup:  float64(serial) / float64(pool),
		})
		t.Logf("wo %d GPUs: serial %v, pool(%d) %v, speedup %.2fx",
			gpus, serial, art.GOMAXPROCS, pool, float64(serial)/float64(pool))
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_backend.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if art.GOMAXPROCS < 2 {
		t.Skip("single-core host: pool cannot beat serial, regression assert skipped")
	}
	for _, row := range art.Rows {
		if row.GPUs < 4 {
			continue // single-GPU has no concurrent kernels to win on
		}
		if float64(row.PoolNs) > 1.25*float64(row.SerialNs) {
			t.Errorf("wo %d GPUs: pool %v slower than serial %v beyond tolerance",
				row.GPUs, time.Duration(row.PoolNs), time.Duration(row.SerialNs))
		}
	}
}

// BenchmarkBackendSerial and BenchmarkBackendPool expose the same
// comparison through `go test -bench=Backend` for profiling sessions.
func BenchmarkBackendSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := backendBenchJob(8, 0).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackendPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := backendBenchJob(8, -1).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
