package bench

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// LoCRow is one Table 4 column: source lines for a benchmark under each
// framework. The paper counted benchmark code excluding setup; we count
// our Go implementations the same way (GPMR: the app package; Phoenix and
// Mars: the app's adapter declarations), alongside the paper's numbers
// for its C++/CUDA code.
type LoCRow struct {
	Bench                              string
	Phoenix, Mars, GPMR                int
	PaperPhoenix, PaperMars, PaperGPMR int
}

var table4Paper = map[string][3]int{
	// Phoenix, Mars, GPMR per the paper's Table 4.
	"mm": {317, 235, 214}, "kmc": {345, 152, 129}, "wo": {231, 140, 397},
}

// Table4 counts benchmark source lines. root is the repository root.
func Table4(root string) ([]LoCRow, error) {
	var rows []LoCRow
	for _, b := range []string{"mm", "kmc", "wo"} {
		gp, err := countPackageLines(filepath.Join(root, "internal", "apps", b))
		if err != nil {
			return nil, err
		}
		ph, err := countDeclLines(filepath.Join(root, "internal", "phoenix", "apps.go"), b)
		if err != nil {
			return nil, err
		}
		ma, err := countDeclLines(filepath.Join(root, "internal", "mars", "apps.go"), b)
		if err != nil {
			return nil, err
		}
		p := table4Paper[b]
		rows = append(rows, LoCRow{Bench: b, Phoenix: ph, Mars: ma, GPMR: gp,
			PaperPhoenix: p[0], PaperMars: p[1], PaperGPMR: p[2]})
	}
	return rows, nil
}

// countPackageLines counts non-test Go lines in a package directory.
func countPackageLines(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return 0, err
		}
		total += strings.Count(string(data), "\n")
	}
	return total, nil
}

// countDeclLines counts the lines of top-level declarations in file whose
// names start with the benchmark name (case-insensitive), e.g. MM, KMC.
func countDeclLines(file, benchName string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return 0, err
	}
	lines := strings.Split(string(src), "\n")
	prefix := strings.ToUpper(benchName)
	total := 0
	for _, d := range f.Decls {
		pos := fset.Position(d.Pos())
		end := fset.Position(d.End())
		first := lines[pos.Line-1]
		if strings.Contains(first, "func "+prefix) {
			total += end.Line - pos.Line + 1
		}
	}
	return total, nil
}

// RenderTable4 writes the LoC comparison.
func RenderTable4(w io.Writer, rows []LoCRow) {
	fmt.Fprintln(w, "Table 4 — benchmark source lines (ours in Go; paper's C++/CUDA in parens)")
	fmt.Fprintf(w, "%-6s %16s %16s %16s\n", "bench", "Phoenix", "Mars", "GPMR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10d (%3d) %10d (%3d) %10d (%3d)\n",
			r.Bench, r.Phoenix, r.PaperPhoenix, r.Mars, r.PaperMars, r.GPMR, r.PaperGPMR)
	}
}
