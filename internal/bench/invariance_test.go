package bench

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"repro/internal/apps/kmc"
	"repro/internal/apps/sio"
	"repro/internal/apps/wo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/keyval"
	"repro/internal/sched"
)

// canonBytes serializes a job's output as a canonical byte string: every
// partition's pairs pooled, sorted by key then by encoded value, and
// binary-encoded. Two runs produced the same *answer* iff their canonical
// bytes are equal, regardless of how many partitions the answer was split
// into or the order pairs arrived within a key.
func canonBytes[V any](t *testing.T, perRank []keyval.Pairs[V]) []byte {
	t.Helper()
	type pair struct {
		k uint32
		v []byte
	}
	var all []pair
	for i := range perRank {
		pr := &perRank[i]
		for j := range pr.Keys {
			var vb bytes.Buffer
			if err := binary.Write(&vb, binary.LittleEndian, pr.Vals[j]); err != nil {
				t.Fatalf("encoding value: %v", err)
			}
			all = append(all, pair{k: pr.Keys[j], v: vb.Bytes()})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].k != all[j].k {
			return all[i].k < all[j].k
		}
		return bytes.Compare(all[i].v, all[j].v) < 0
	})
	var out bytes.Buffer
	for _, p := range all {
		binary.Write(&out, binary.LittleEndian, p.k)
		out.Write(p.v)
	}
	return out.Bytes()
}

// invariancePoint is one cell of the metamorphic matrix.
type invariancePoint struct {
	gpus  int
	steal core.StealPolicy
	gd    bool
	depth int
}

func invarianceMatrix() []invariancePoint {
	var pts []invariancePoint
	for _, gpus := range []int{1, 4, 8} {
		for _, steal := range []core.StealPolicy{core.StealGlobal, core.StealLocalFirst} {
			for _, gd := range []bool{false, true} {
				for _, depth := range []int{1, 2} {
					pts = append(pts, invariancePoint{gpus, steal, gd, depth})
				}
			}
		}
	}
	return pts
}

// mutate applies one matrix point to a job and skews the initial chunk
// placement onto rank 0, so the steal machinery genuinely runs and the
// chunk→rank mapping genuinely differs across cells.
func mutate[V any](job *core.Job[V], pt invariancePoint) {
	job.Config.StealPolicy = pt.steal
	job.Config.GPUDirect = pt.gd
	job.Config.PipelineDepth = pt.depth
	job.Assign = func(int) int { return 0 }
}

// TestOutputInvarianceMatrix is the metamorphic test: for each app, every
// combination of GPU count, steal policy, GPUDirect, and pipeline depth
// must produce the byte-identical canonical answer. These knobs move
// work between ranks and reorder every accumulation — they may change the
// cost, never the answer.
func TestOutputInvarianceMatrix(t *testing.T) {
	apps := []struct {
		name string
		run  func(t *testing.T, pt invariancePoint) []byte
	}{
		{"wo", func(t *testing.T, pt invariancePoint) []byte {
			b := wo.NewJob(wo.Params{Bytes: 4 << 20, GPUs: pt.gpus, Seed: 1, PhysMax: 1 << 14, DictSize: 1000, ChunkCap: 1 << 18})
			mutate(b.Job, pt)
			return canonBytes(t, b.Job.MustRun().PerRank)
		}},
		{"sio", func(t *testing.T, pt invariancePoint) []byte {
			job, _ := sio.NewJob(sio.Params{Elements: 4 << 20, GPUs: pt.gpus, Seed: 1, PhysMax: 1 << 14, ChunkCap: 1 << 19})
			mutate(job, pt)
			return canonBytes(t, job.MustRun().PerRank)
		}},
		{"kmc", func(t *testing.T, pt invariancePoint) []byte {
			b := kmc.NewJob(kmc.Params{Points: 4 << 20, GPUs: pt.gpus, Seed: 1, PhysMax: 1 << 12})
			mutate(b.Job, pt)
			return canonBytes(t, b.Job.MustRun().PerRank)
		}},
	}
	for _, app := range apps {
		t.Run(app.name, func(t *testing.T) {
			var want []byte
			var base invariancePoint
			for _, pt := range invarianceMatrix() {
				got := app.run(t, pt)
				if len(got) == 0 {
					t.Fatalf("%+v produced empty output", pt)
				}
				if want == nil {
					want, base = got, pt
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("output diverged: %+v vs baseline %+v", pt, base)
				}
			}
		})
	}
}

// concurrentFixture builds the three-app jobs used by the
// concurrent-vs-exclusive identity test. Rebuilt per call so scheduled
// and solo runs use identical fresh jobs.
func concurrentFixture() (*core.Scheduled[uint32], *core.Scheduled[uint32], *core.Scheduled[float64]) {
	woB := wo.NewJob(wo.Params{Bytes: 4 << 20, GPUs: 4, Seed: 3, PhysMax: 1 << 14, DictSize: 1000, ChunkCap: 1 << 18})
	sioJ, _ := sio.NewJob(sio.Params{Elements: 4 << 20, GPUs: 4, Seed: 3, PhysMax: 1 << 14, ChunkCap: 1 << 19})
	kmcB := kmc.NewJob(kmc.Params{Points: 4 << 20, GPUs: 4, Seed: 3, PhysMax: 1 << 12})
	return &core.Scheduled[uint32]{Job: woB.Job}, &core.Scheduled[uint32]{Job: sioJ}, &core.Scheduled[float64]{Job: kmcB.Job}
}

// TestConcurrentJobsMatchExclusiveRuns is the multi-tenancy identity
// criterion: jobs running concurrently on a shared, contended cluster
// must produce output byte-identical to the same jobs run alone on an
// exclusive cluster with the same gang size. Sharing changes time, never
// answers.
func TestConcurrentJobsMatchExclusiveRuns(t *testing.T) {
	cWo, cSio, cKmc := concurrentFixture()
	specs := []sched.JobSpec{
		{At: 0, Job: cWo},
		{At: des.Microsecond, Job: cSio},
		{At: 2 * des.Microsecond, Job: cKmc},
	}
	// A 12-rank cluster under fixed-share(4): all three jobs run at once,
	// two gangs sharing nodes and NICs with a neighbour.
	ct, err := sched.Run(cluster.DefaultConfig(12), sched.Policy{Kind: sched.FixedShare, Share: 4}, specs)
	if err != nil {
		t.Fatal(err)
	}
	overlap := false
	for i := range ct.Jobs {
		for j := range ct.Jobs {
			if i != j && ct.Jobs[i].Admit < ct.Jobs[j].Finish && ct.Jobs[j].Admit < ct.Jobs[i].Finish {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("fixture did not actually run jobs concurrently")
	}
	for i := range ct.Jobs {
		if got, want := ct.Jobs[i].Granted, 4; got != want {
			t.Fatalf("job %d granted %d ranks, want %d", i, got, want)
		}
	}

	// Exclusive baselines: fresh identical jobs, each alone on its own
	// 4-rank cluster.
	sWo, sSio, sKmc := concurrentFixture()
	assertPerRankEqual(t, ct.Jobs[0].Name, sWo.Job.MustRun().PerRank, cWo.Result.PerRank)
	assertPerRankEqual(t, ct.Jobs[1].Name, sSio.Job.MustRun().PerRank, cSio.Result.PerRank)
	assertPerRankEqual(t, ct.Jobs[2].Name, sKmc.Job.MustRun().PerRank, cKmc.Result.PerRank)
}

// assertPerRankEqual demands byte-exact equality partition by partition —
// stronger than the canonical comparison, possible here because gang
// sizes match.
func assertPerRankEqual[V comparable](t *testing.T, name string, solo, conc []keyval.Pairs[V]) {
	t.Helper()
	if conc == nil {
		t.Fatalf("%s: no captured concurrent result", name)
	}
	if len(solo) != len(conc) {
		t.Fatalf("%s: %d vs %d partitions", name, len(solo), len(conc))
	}
	for part := range solo {
		a, b := &solo[part], &conc[part]
		if a.Len() != b.Len() {
			t.Errorf("%s partition %d: %d vs %d pairs", name, part, a.Len(), b.Len())
			continue
		}
		for i := range a.Keys {
			if a.Keys[i] != b.Keys[i] || a.Vals[i] != b.Vals[i] {
				t.Errorf("%s partition %d diverges at pair %d: (%d,%v) vs (%d,%v)",
					name, part, i, a.Keys[i], a.Vals[i], b.Keys[i], b.Vals[i])
				break
			}
		}
	}
}

// TestScheduledGangSizeAdaptation: a job granted fewer ranks than
// requested still produces the same answer as an exclusive run at that
// granted size (the moldable-job contract).
func TestScheduledGangSizeAdaptation(t *testing.T) {
	mk := func() *core.Job[uint32] {
		job, _ := sio.NewJob(sio.Params{Elements: 4 << 20, GPUs: 8, Seed: 5, PhysMax: 1 << 14, ChunkCap: 1 << 19})
		return job
	}
	// Occupy 6 of 8 ranks with a long job; the 8-want SIO molds onto 2.
	long, _ := sio.NewJob(sio.Params{Elements: 16 << 20, GPUs: 6, Seed: 6, PhysMax: 1 << 14, ChunkCap: 1 << 20})
	molded := &core.Scheduled[uint32]{Job: mk()}
	ct, err := sched.Run(cluster.DefaultConfig(8), sched.Policy{Kind: sched.WeightedFair}, []sched.JobSpec{
		{At: 0, Job: &core.Scheduled[uint32]{Job: long}},
		{At: des.Millisecond, Job: molded},
	})
	if err != nil {
		t.Fatal(err)
	}
	granted := ct.Jobs[1].Granted
	if granted >= 8 {
		t.Fatalf("fixture failed: molded job granted %d ranks", granted)
	}
	solo := mk()
	solo.Config.GPUs = granted
	res, err := solo.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonBytes(t, res.PerRank), canonBytes(t, molded.Result.PerRank)) {
		t.Errorf("molded job (gang %d) output differs from exclusive run at the same size", granted)
	}
}
