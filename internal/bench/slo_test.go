package bench

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func sloOpts() Options { return Options{PhysBudget: 2048, Seed: 1} }

// TestSLODeterminism: the sweep is a pure function of the options — two
// runs produce identical rows (attainment counts, latencies, rejects).
func TestSLODeterminism(t *testing.T) {
	a, err := SLO(sloOpts())
	if err != nil {
		t.Fatalf("SLO: %v", err)
	}
	b, err := SLO(sloOpts())
	if err != nil {
		t.Fatalf("SLO (second run): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("slo sweep not deterministic:\n%v\nvs\n%v", a, b)
	}
}

// TestSLOInvariance: the sweep's rows do not depend on the kernel
// execution backend (any worker count at a fixed shard count), and all
// shard counts >= 1 agree with each other — the SLO machinery
// (admission prediction, reservation, checkpoint-preemption) is part of
// the simulation, not the harness. As everywhere in the scheduled
// stack, the legacy single engine (shards=0) is its own reference: the
// sharded scheduler's modeled launch/done latencies legitimately shift
// the schedule, but never differently for different shard counts.
func TestSLOInvariance(t *testing.T) {
	run := func(workers, shards int) []SLORow {
		got, err := SLO(Options{PhysBudget: 2048, Seed: 1, Workers: workers, Shards: shards})
		if err != nil {
			t.Fatalf("SLO(workers=%d shards=%d): %v", workers, shards, err)
		}
		return got
	}
	legacy := run(0, 0)
	if got := run(2, 0); !reflect.DeepEqual(got, legacy) {
		t.Errorf("slo sweep depends on the kernel backend (workers=2, legacy engine):\n%v\nvs\n%v", got, legacy)
	}
	sharded := run(0, 1)
	for _, p := range []struct{ workers, shards int }{{0, 2}, {4, 2}} {
		if got := run(p.workers, p.shards); !reflect.DeepEqual(got, sharded) {
			t.Errorf("slo sweep differs at workers=%d shards=%d from the one-shard set:\n%v\nvs\n%v",
				p.workers, p.shards, got, sharded)
		}
	}
}

// TestSLOScenario sanity-checks the sweep's shape: accounting adds up
// per cell, the admission predictor actually bites somewhere (rejects or
// downgrades fire), preemption only runs in the +slo cell, and the SLO
// cell never serves interactive jobs worse than plain weighted-fair.
func TestSLOScenario(t *testing.T) {
	rows, err := SLO(sloOpts())
	if err != nil {
		t.Fatalf("SLO: %v", err)
	}
	if len(rows) != len(sloGapsMs)*len(sloConfigs()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(sloGapsMs)*len(sloConfigs()))
	}
	var rejects, downs int64
	p95 := map[string]map[float64]int64{}
	for _, r := range rows {
		if r.Admitted+r.Shed+r.SLORej != SLOJobs {
			t.Errorf("%s@%vms: admit %d + shed %d + rej %d != %d offered",
				r.Config, r.GapMs, r.Admitted, r.Shed, r.SLORej, SLOJobs)
		}
		if r.Config != "weighted-fair+slo" && r.Preempts > 0 {
			t.Errorf("%s@%vms: %d preempts without the preempt policy", r.Config, r.GapMs, r.Preempts)
		}
		rejects += r.SLORej
		downs += r.Downgraded
		if p95[r.Config] == nil {
			p95[r.Config] = map[float64]int64{}
		}
		p95[r.Config][r.GapMs] = int64(r.P95Int)
	}
	if rejects == 0 {
		t.Error("no predicted-miss rejects anywhere in the sweep — admission prediction never engaged")
	}
	if downs == 0 {
		t.Error("no predicted-miss downgrades anywhere in the sweep")
	}
	for _, gap := range sloGapsMs {
		if slo, wf := p95["weighted-fair+slo"][gap], p95["weighted-fair"][gap]; slo > wf {
			t.Errorf("gap %vms: +slo interactive p95 %d worse than plain weighted-fair %d", gap, slo, wf)
		}
	}
}

// TestRenderSLO smoke-checks the table renderer.
func TestRenderSLO(t *testing.T) {
	rows, err := SLO(sloOpts())
	if err != nil {
		t.Fatalf("SLO: %v", err)
	}
	var sb strings.Builder
	RenderSLO(&sb, rows)
	out := sb.String()
	for _, want := range []string{"SLO scheduling", "fifo-exclusive", "weighted-fair+slo",
		"int met", "p95 int", fmt.Sprintf("%v", sloInteractiveDeadline)} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
