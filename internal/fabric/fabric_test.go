package fabric

import (
	"testing"

	"repro/internal/des"
)

func twoNodeFabric(eng *des.Engine) *Fabric {
	// Ranks 0,1 on node 0; ranks 2,3 on node 1.
	return New(eng, QDRInfiniBand(), []int{0, 0, 1, 1})
}

func TestCrossNodeSendDelivers(t *testing.T) {
	eng := des.NewEngine()
	f := twoNodeFabric(eng)
	var got Message
	var when des.Time
	eng.Spawn("recv", func(p *des.Proc) {
		got = f.Recv(p, 2)
		when = p.Now()
	})
	eng.Spawn("send", func(p *des.Proc) {
		f.Send(p, 0, 2, "pairs", 32<<20, "payload")
	})
	eng.Run()
	if got.Payload != "payload" || got.From != 0 || got.To != 2 || got.Tag != "pairs" {
		t.Errorf("message %+v", got)
	}
	wire := des.FromSeconds(float64(32<<20) / 3.2e9)
	min := wire + f.props.Latency
	if when < min {
		t.Errorf("delivered at %v, faster than wire time %v", when, min)
	}
	if f.BytesSent() != 32<<20 {
		t.Errorf("BytesSent=%d", f.BytesSent())
	}
}

func TestIntraNodeSendBypassesNIC(t *testing.T) {
	eng := des.NewEngine()
	f := twoNodeFabric(eng)
	var when des.Time
	eng.Spawn("recv", func(p *des.Proc) {
		f.Recv(p, 1)
		when = p.Now()
	})
	eng.Spawn("send", func(p *des.Proc) {
		f.Send(p, 0, 1, "pairs", 32<<20, nil)
	})
	eng.Run()
	want := des.FromSeconds(float64(32<<20) / f.props.HostMemBW)
	if when != want {
		t.Errorf("intra-node delivery at %v, want %v", when, want)
	}
	if f.BytesSent() != 0 || f.LocalBytes() != 32<<20 {
		t.Errorf("BytesSent=%d LocalBytes=%d", f.BytesSent(), f.LocalBytes())
	}
}

func TestEgressNICSerializesSenders(t *testing.T) {
	eng := des.NewEngine()
	f := twoNodeFabric(eng)
	var sendDone []des.Time
	for r := 0; r < 2; r++ {
		rank := r
		eng.Spawn("send", func(p *des.Proc) {
			f.Send(p, rank, 2+rank, "x", 32<<20, nil)
			sendDone = append(sendDone, p.Now())
		})
	}
	eng.Spawn("recv2", func(p *des.Proc) { f.Recv(p, 2) })
	eng.Spawn("recv3", func(p *des.Proc) { f.Recv(p, 3) })
	eng.Run()
	wire := des.FromSeconds(float64(32<<20) / 3.2e9)
	if sendDone[0] != wire {
		t.Errorf("first send done at %v, want %v", sendDone[0], wire)
	}
	if sendDone[1] != 2*wire {
		t.Errorf("second send done at %v, want serialized %v", sendDone[1], 2*wire)
	}
}

func TestTransferSynchronous(t *testing.T) {
	eng := des.NewEngine()
	f := twoNodeFabric(eng)
	var dur des.Time
	eng.Spawn("mv", func(p *des.Proc) {
		dur = f.Transfer(p, 0, 2, 64<<20)
	})
	eng.Run()
	want := f.props.Latency + des.FromSeconds(float64(64<<20)/3.2e9)
	if dur != want {
		t.Errorf("transfer took %v, want %v", dur, want)
	}
}

func TestTransferIntraNode(t *testing.T) {
	eng := des.NewEngine()
	f := twoNodeFabric(eng)
	var dur des.Time
	eng.Spawn("mv", func(p *des.Proc) {
		dur = f.Transfer(p, 0, 1, 64<<20)
	})
	eng.Run()
	want := des.FromSeconds(float64(64<<20) / f.props.HostMemBW)
	if dur != want {
		t.Errorf("intra-node transfer %v, want %v", dur, want)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	eng := des.NewEngine()
	f := twoNodeFabric(eng)
	b := f.NewBarrier(3)
	var releases []des.Time
	for i := 0; i < 3; i++ {
		d := des.Time(i+1) * des.Microsecond
		eng.Spawn("p", func(p *des.Proc) {
			p.Sleep(d)
			b.Arrive(p)
			releases = append(releases, p.Now())
		})
	}
	eng.Run()
	want := 3*des.Microsecond + f.props.Latency
	for i, r := range releases {
		if r != want {
			t.Errorf("participant %d released at %v, want %v", i, r, want)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	eng := des.NewEngine()
	f := twoNodeFabric(eng)
	b := f.NewBarrier(2)
	rounds := make([]int, 2)
	for i := 0; i < 2; i++ {
		id := i
		eng.Spawn("p", func(p *des.Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(des.Time(id+1) * des.Microsecond)
				b.Arrive(p)
				rounds[id]++
			}
		})
	}
	eng.Run()
	if rounds[0] != 3 || rounds[1] != 3 {
		t.Errorf("rounds %v", rounds)
	}
}

func TestSameNode(t *testing.T) {
	eng := des.NewEngine()
	f := twoNodeFabric(eng)
	if !f.SameNode(0, 1) || f.SameNode(1, 2) {
		t.Error("SameNode topology wrong")
	}
	if f.Ranks() != 4 || f.NodeOf(3) != 1 {
		t.Error("rank bookkeeping wrong")
	}
}
