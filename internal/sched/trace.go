package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
)

// JobTrace records one job's passage through the shared cluster.
type JobTrace struct {
	ID      int
	Name    string
	Want    int // requested gang size (Config.GPUs)
	Granted int // ranks actually received
	Weight  int
	Gang    []int // global cluster ranks, ascending

	// SLO fields (zero when the submission used none). Deadline is
	// relative to arrival; Downgraded marks a predicted-miss demoted to
	// Batch; Preempts counts checkpoint-restarts (class preemption and
	// elastic grow-back), after which Admit is the FINAL launch's start —
	// Wait then includes the time lost to restarts, Service only the run
	// that completed.
	Class      Class
	Deadline   des.Time
	Downgraded bool
	Preempts   int

	Arrival des.Time
	Admit   des.Time
	Finish  des.Time

	// Trace is the job's own pipeline trace (job-relative times, the
	// job's share of fabric traffic).
	Trace *core.Trace
}

// Met reports whether the job finished inside its deadline (vacuously
// false without one — use Deadline > 0 to scope attainment stats).
func (j *JobTrace) Met() bool { return j.Deadline > 0 && j.Latency() <= j.Deadline }

// Wait is the job's queue time before admission.
func (j *JobTrace) Wait() des.Time { return j.Admit - j.Arrival }

// Latency is arrival to completion — what a user of the shared cluster
// experiences.
func (j *JobTrace) Latency() des.Time { return j.Finish - j.Arrival }

// Service is admission to completion (the job's makespan on its gang).
func (j *JobTrace) Service() des.Time { return j.Finish - j.Admit }

// Slowdown is Latency/Service: 1 means the job never waited; large values
// mean queueing dominated its response time.
func (j *JobTrace) Slowdown() float64 {
	if j.Service() <= 0 {
		return 1
	}
	return float64(j.Latency()) / float64(j.Service())
}

// ClusterTrace aggregates one scheduler run.
type ClusterTrace struct {
	Policy   Policy
	Ranks    int
	Makespan des.Time
	Jobs     []JobTrace // submission order

	// Rejected lists jobs the SLO admission check turned away at arrival
	// (submission order; only identity fields are meaningful — they never
	// ran).
	Rejected []JobTrace
}

// sloActive reports whether any submission used SLO features; it gates
// the String additions so pre-SLO goldens stay byte-identical.
func (t *ClusterTrace) sloActive() bool {
	if len(t.Rejected) > 0 {
		return true
	}
	for i := range t.Jobs {
		j := &t.Jobs[i]
		if j.Class != Batch || j.Deadline > 0 || j.Downgraded || j.Preempts > 0 {
			return true
		}
	}
	return false
}

// SLOStats summarises deadline attainment for one job class.
type SLOStats struct {
	Jobs     int // completed jobs carrying a deadline
	Met      int
	Rejected int // turned away at admission
}

// SLOByClass folds attainment per class over completed and rejected
// jobs. Classes with no deadline-carrying traffic are absent.
func (t *ClusterTrace) SLOByClass() map[Class]*SLOStats {
	out := map[Class]*SLOStats{}
	get := func(c Class) *SLOStats {
		if out[c] == nil {
			out[c] = &SLOStats{}
		}
		return out[c]
	}
	for i := range t.Jobs {
		j := &t.Jobs[i]
		if j.Deadline <= 0 {
			continue
		}
		st := get(j.Class)
		st.Jobs++
		if j.Met() {
			st.Met++
		}
	}
	for i := range t.Rejected {
		get(t.Rejected[i].Class).Rejected++
	}
	return out
}

// Throughput is completed jobs per simulated second.
func (t *ClusterTrace) Throughput() float64 {
	if t.Makespan <= 0 {
		return 0
	}
	return float64(len(t.Jobs)) / t.Makespan.Seconds()
}

// WireBytes sums every job's cross-node traffic.
func (t *ClusterTrace) WireBytes() int64 {
	var n int64
	for i := range t.Jobs {
		if tr := t.Jobs[i].Trace; tr != nil {
			n += tr.WireBytes
		}
	}
	return n
}

// MeanWait averages queue time across jobs.
func (t *ClusterTrace) MeanWait() des.Time {
	if len(t.Jobs) == 0 {
		return 0
	}
	var sum des.Time
	for i := range t.Jobs {
		sum += t.Jobs[i].Wait()
	}
	return sum / des.Time(len(t.Jobs))
}

// LatencyPercentile returns the nearest-rank pct-th percentile job
// latency (pct in 1..100) over jobs matching pred (nil matches all).
// Zero when nothing matches. Integer ceil keeps the rank exact — no
// float rounding at percentile boundaries.
func (t *ClusterTrace) LatencyPercentile(pct int, pred func(*JobTrace) bool) des.Time {
	var lats []des.Time
	for i := range t.Jobs {
		if pred == nil || pred(&t.Jobs[i]) {
			lats = append(lats, t.Jobs[i].Latency())
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (len(lats)*pct+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

// Jain is Jain's fairness index over per-job slowdowns:
// (Σx)² / (n·Σx²) ∈ (0,1], 1 when every job's queueing penalty is equal.
// An exclusive policy that makes small jobs wait behind big ones spreads
// the slowdowns and drives the index down.
func (t *ClusterTrace) Jain() float64 {
	if len(t.Jobs) == 0 {
		return 1
	}
	var sum, sq float64
	for i := range t.Jobs {
		x := t.Jobs[i].Slowdown()
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(t.Jobs)) * sq)
}

// String renders the run deterministically — the multijob golden-trace
// tests diff this output exactly.
func (t *ClusterTrace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "multijob[%s]: %d ranks, %d jobs, makespan %v\n", t.Policy.Kind, t.Ranks, len(t.Jobs), t.Makespan)
	fmt.Fprintf(&sb, "  throughput %.2f jobs/s  p50 %v  p95 %v  wait %v  jain %.3f  wire %.1f MB\n",
		t.Throughput(), t.LatencyPercentile(50, nil), t.LatencyPercentile(95, nil),
		t.MeanWait(), t.Jain(), float64(t.WireBytes())/1e6)
	slo := t.sloActive()
	for i := range t.Jobs {
		j := &t.Jobs[i]
		gang := make([]string, len(j.Gang))
		for k, r := range j.Gang {
			gang[k] = fmt.Sprint(r)
		}
		fmt.Fprintf(&sb, "  job %2d %-10s want %2d got %2d  arr %v  wait %v  run %v  lat %v  slow %.2f  ranks [%s]",
			j.ID, j.Name, j.Want, j.Granted, j.Arrival, j.Wait(), j.Service(), j.Latency(),
			j.Slowdown(), strings.Join(gang, " "))
		if slo {
			fmt.Fprintf(&sb, "  %s", j.Class)
			if j.Deadline > 0 {
				verdict := "met"
				if !j.Met() {
					verdict = "MISS"
				}
				fmt.Fprintf(&sb, " ddl %v %s", j.Deadline, verdict)
			}
			if j.Downgraded {
				sb.WriteString(" downgraded")
			}
			if j.Preempts > 0 {
				fmt.Fprintf(&sb, " preempts %d", j.Preempts)
			}
		}
		sb.WriteByte('\n')
	}
	if slo {
		classes := []Class{Interactive, Standard, Batch}
		stats := t.SLOByClass()
		for _, c := range classes {
			st := stats[c]
			if st == nil {
				continue
			}
			fmt.Fprintf(&sb, "  slo %-11s %d/%d met  %d rejected\n", c, st.Met, st.Jobs, st.Rejected)
		}
		for i := range t.Rejected {
			j := &t.Rejected[i]
			fmt.Fprintf(&sb, "  rej %2d %-10s want %2d  arr %v  %s ddl %v\n",
				j.ID, j.Name, j.Want, j.Arrival, j.Class, j.Deadline)
		}
	}
	return sb.String()
}
