package gpu

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/des"
)

// Backend is the execution seam for kernels' functional work. Every
// Device.Launch/LaunchFor hands its closure to a Backend: Serial runs it
// inline on the simulated process's goroutine (the original behaviour),
// Pool dispatches it to a bounded set of real worker goroutines and the
// device joins the result no later than the kernel's simulated completion
// event. Either way the DES schedule — and therefore every trace, output
// byte, and steal decision — is identical; only host wall-clock changes,
// because kernel work from different simulated GPUs (and different tenant
// jobs) can occupy real cores concurrently.
//
// Closure-capture contract (what makes the Pool backend safe): a kernel
// closure runs concurrently with every other simulated process while its
// issuing process sleeps through the kernel's modeled duration. It may
// therefore touch only (a) state owned by the issuing process — emitted-
// pair buffers, the rank's resident accumulation pairs, locals of the
// enclosing stage — and (b) immutable shared inputs (chunk data, lookup
// tables, center/matrix arrays). It must never call into the des engine,
// the fabric, or the device, and must not touch state another rank's
// process or closure can reach. See DESIGN.md, "Execution backends".
type Backend interface {
	// Start begins fn's execution and returns its join handle; nil means
	// fn already ran inline (or fn was nil). name labels the work in
	// leak and panic diagnostics — pass the kernel name.
	Start(eng *des.Engine, name string, fn func()) *des.Future
	// Close releases the backend's workers. Idempotent; must only be
	// called after the engine has run to completion (every future
	// joined).
	Close()
	// String names the backend for reports ("serial", "pool(8)").
	String() string
}

// Serial is the inline backend: closures run on the issuing process's
// goroutine before the kernel's simulated duration elapses. Zero value is
// ready to use.
type Serial struct{}

// Start implements Backend by running fn inline.
func (Serial) Start(_ *des.Engine, _ string, fn func()) *des.Future {
	if fn != nil {
		fn()
	}
	return nil
}

// Close implements Backend (no resources to release).
func (Serial) Close() {}

func (Serial) String() string { return "serial" }

// Pool executes kernel closures on a fixed set of worker goroutines.
// Dispatch blocks (in host time only) when every worker is busy and the
// submission buffer is full — backpressure that bounds in-flight host
// work without ever touching the simulated clock.
type Pool struct {
	workers int
	jobs    chan poolJob
	wg      sync.WaitGroup
	once    sync.Once
}

type poolJob struct {
	fn  func()
	fut *des.Future
}

// NewPool starts a backend with the given number of workers (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, jobs: make(chan poolJob, workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				j.run()
			}
		}()
	}
	return p
}

// run executes one closure, routing a panic into the future so the
// joining simulated process re-raises it under its own name.
func (j poolJob) run() {
	defer func() {
		if r := recover(); r != nil {
			j.fut.Fail(r)
		} else {
			j.fut.Complete()
		}
	}()
	j.fn()
}

// Start implements Backend by dispatching fn to a worker.
func (p *Pool) Start(eng *des.Engine, name string, fn func()) *des.Future {
	if fn == nil {
		return nil
	}
	fut := eng.NewFuture(name)
	p.jobs <- poolJob{fn: fn, fut: fut}
	return fut
}

// Close shuts the workers down after they drain outstanding submissions.
func (p *Pool) Close() {
	p.once.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) String() string { return fmt.Sprintf("pool(%d)", p.workers) }

// NewBackend maps a worker-count knob onto a backend: 0 is Serial (the
// default), n >= 1 is Pool(n), and negative means Pool(GOMAXPROCS) — "use
// the machine". This is the decoding used by core.Config.Workers,
// cluster.Config.Workers, and the gpmrbench -workers flag.
func NewBackend(workers int) Backend {
	switch {
	case workers == 0:
		return Serial{}
	case workers < 0:
		return NewPool(runtime.GOMAXPROCS(0))
	default:
		return NewPool(workers)
	}
}
