package bench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"repro/internal/apps/kmc"
	"repro/internal/apps/lr"
	"repro/internal/apps/mm"
	"repro/internal/apps/sio"
	"repro/internal/apps/wo"
	"repro/internal/fault"
)

// backendPoints are the execution backends the differential matrix pits
// against each other: Serial (the reference semantics), Pool(1) (async
// dispatch with no real concurrency — isolates the dispatch/join protocol),
// and Pool(GOMAXPROCS) (full host-core concurrency).
func backendPoints() []int { return []int{0, 1, -1} }

func backendName(workers int) string {
	switch {
	case workers == 0:
		return "serial"
	case workers < 0:
		return "pool(numcpu)"
	default:
		return fmt.Sprintf("pool(%d)", workers)
	}
}

// backendRun is one cell's observable outcome: the job's canonical result
// bytes and its full golden trace rendering. The differential harness
// demands both be byte-identical across backends — the trace includes
// every simulated timestamp, stage breakdown, steal decision, and byte
// counter, so equality pins the entire DES schedule, not just the answer.
type backendRun struct {
	result []byte
	trace  string
}

// diffApps is the app matrix shared by the backend differential harness
// (sweeping workers at shards=0) and the engine-sharding differential
// harness in engine_test.go (sweeping shards at workers=0). Each entry
// runs one app at an explicit backend (workers) and engine (shards)
// configuration and reports its canonical observables.
var diffApps = []struct {
	name string
	run  func(t *testing.T, gpus, workers, shards int) backendRun
}{
	{"wo", func(t *testing.T, gpus, workers, shards int) backendRun {
		b := wo.NewJob(wo.Params{Bytes: 4 << 20, GPUs: gpus, Seed: 1, PhysMax: 1 << 14, DictSize: 1000, ChunkCap: 1 << 18})
		b.Job.Config.Workers = workers
		b.Job.Config.Shards = shards
		res := b.Job.MustRun()
		return backendRun{result: canonBytes(t, res.PerRank), trace: res.Trace.String()}
	}},
	{"sio", func(t *testing.T, gpus, workers, shards int) backendRun {
		job, _ := sio.NewJob(sio.Params{Elements: 4 << 20, GPUs: gpus, Seed: 1, PhysMax: 1 << 14, ChunkCap: 1 << 19})
		job.Config.Workers = workers
		job.Config.Shards = shards
		res := job.MustRun()
		return backendRun{result: canonBytes(t, res.PerRank), trace: res.Trace.String()}
	}},
	{"kmc", func(t *testing.T, gpus, workers, shards int) backendRun {
		b := kmc.NewJob(kmc.Params{Points: 4 << 20, GPUs: gpus, Seed: 1, PhysMax: 1 << 12})
		b.Job.Config.Workers = workers
		b.Job.Config.Shards = shards
		res := b.Job.MustRun()
		return backendRun{result: canonBytes(t, res.PerRank), trace: res.Trace.String()}
	}},
	{"lr", func(t *testing.T, gpus, workers, shards int) backendRun {
		b := lr.NewJob(lr.Params{Points: 4 << 20, GPUs: gpus, Seed: 1, PhysMax: 1 << 12})
		b.Job.Config.Workers = workers
		b.Job.Config.Shards = shards
		res := b.Job.MustRun()
		return backendRun{result: canonBytes(t, res.PerRank), trace: res.Trace.String()}
	}},
	{"mm", func(t *testing.T, gpus, workers, shards int) backendRun {
		b, err := mm.New(mm.Params{Dim: 1024, GPUs: gpus, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		b.Job1.Config.Workers = workers
		b.Job1.Config.Shards = shards
		perRank, tr1, tr2, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return backendRun{result: mmCanonBytes(t, perRank), trace: tr1.String() + "\n" + tr2.String()}
	}},
}

// TestBackendDifferentialMatrix is the differential identity harness:
// every app (WO, SIO, KMC, MM, LR) at 1, 4, and 8 GPUs must produce
// byte-identical results and identical golden traces on the Serial,
// Pool(1), and Pool(NumCPU) backends. The pool moves kernels' functional
// work onto concurrent host goroutines; nothing observable may change.
func TestBackendDifferentialMatrix(t *testing.T) {
	for _, app := range diffApps {
		t.Run(app.name, func(t *testing.T) {
			for _, gpus := range []int{1, 4, 8} {
				var want backendRun
				for _, workers := range backendPoints() {
					got := app.run(t, gpus, workers, 0)
					if len(got.result) == 0 {
						t.Fatalf("%d GPUs, %s: empty result", gpus, backendName(workers))
					}
					if workers == 0 {
						want = got
						continue
					}
					if !bytes.Equal(got.result, want.result) {
						t.Errorf("%d GPUs: %s result bytes diverge from serial", gpus, backendName(workers))
					}
					if got.trace != want.trace {
						t.Errorf("%d GPUs: %s golden trace diverges from serial:\n--- serial\n%s\n--- %s\n%s",
							gpus, backendName(workers), want.trace, backendName(workers), got.trace)
					}
				}
			}
		})
	}
}

// mmCanonBytes canonically serializes MM's per-rank result-tile maps
// (generic because mm's tile type is unexported).
func mmCanonBytes[T ~[]float32](t *testing.T, perRank []map[uint32]T) []byte {
	t.Helper()
	var out bytes.Buffer
	for r, m := range perRank {
		keys := make([]uint32, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			binary.Write(&out, binary.LittleEndian, uint32(r))
			binary.Write(&out, binary.LittleEndian, k)
			if err := binary.Write(&out, binary.LittleEndian, []float32(m[k])); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out.Bytes()
}

// TestBackendDifferentialFaults extends the matrix with fault injection:
// a fail-stop mid-map plus a derated straggler with speculation — the
// paths where recovery requeues, relays, and twin races most stress the
// join protocol. Output and trace (including every recovery counter) must
// not depend on the backend.
func TestBackendDifferentialFaults(t *testing.T) {
	run := func(workers int) backendRun {
		job, _ := sio.NewJob(sio.Params{Elements: 8 << 20, GPUs: 8, Seed: 2, PhysMax: 1 << 13, ChunkCap: 1 << 20})
		job.Config.GatherOutput = true
		job.Config.Workers = workers
		job.Config.Speculate = true
		job.Config.Faults = &fault.Plan{Events: []fault.Event{
			fault.FailAfterChunks(2, 2),
			fault.SlowdownAfterChunks(5, 1, 8),
		}}
		res := job.MustRun()
		return backendRun{result: canonBytes(t, res.PerRank), trace: res.Trace.String()}
	}
	want := run(0)
	for _, workers := range backendPoints()[1:] {
		got := run(workers)
		if !bytes.Equal(got.result, want.result) {
			t.Errorf("%s fault-run result bytes diverge from serial", backendName(workers))
		}
		if got.trace != want.trace {
			t.Errorf("%s fault-run golden trace diverges from serial:\n--- serial\n%s\n--- got\n%s",
				backendName(workers), want.trace, got.trace)
		}
	}
}

// TestBackendDifferentialMultijob extends the matrix with the multi-tenant
// stream: three admission policies over a 12-job mix on one shared
// 16-rank cluster, where pooled kernels from co-resident tenants overlap
// on real cores. The full per-policy cluster traces must be identical
// across backends.
func TestBackendDifferentialMultijob(t *testing.T) {
	run := func(workers int) string {
		_, traces, err := Multijob(Options{PhysBudget: 4096, Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var all bytes.Buffer
		for _, ct := range traces {
			all.WriteString(ct.String())
			all.WriteByte('\n')
		}
		return all.String()
	}
	want := run(0)
	for _, workers := range backendPoints()[1:] {
		if got := run(workers); got != want {
			t.Errorf("%s multijob cluster traces diverge from serial:\n--- serial\n%s\n--- got\n%s",
				backendName(workers), want, got)
		}
	}
}
