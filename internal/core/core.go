package core
