// Package sched is GPMR's job-level scheduler: it admits a queue of
// heterogeneous MapReduce jobs onto ONE shared simulated cluster, where
// the paper's system dedicates the whole machine to a single job.
//
// The sharing model is space-sharing: each admitted job receives a gang —
// a disjoint subset of the cluster's GPU ranks — and runs the unmodified
// GPMR pipeline against it (see core's gang seam). Co-resident gangs
// contend for the hardware the fabric model already prices: jobs placed on
// the same node share its NIC pair, CPU cores, and (when packed onto the
// same PCIe host interface card) the PCIe link, so a neighbour's shuffle
// slows yours exactly the way the paper's Figure-2 communication wall
// predicts. Gang placement is therefore topology-aware: whole nodes first,
// so a job's shuffle stays on its own NICs whenever the cluster allows.
//
// Three admission policies size the gangs; backfill lets small jobs start
// on idle ranks while a large one drains. See DESIGN.md, "Multi-tenancy".
package sched

import (
	"errors"
	"fmt"
)

// PolicyKind selects how the scheduler sizes and admits gangs.
type PolicyKind int

const (
	// FIFOExclusive is the paper's implicit policy: jobs run strictly in
	// arrival order, one at a time, each holding the whole cluster even
	// when its gang is smaller. The baseline every sharing policy is
	// measured against.
	FIFOExclusive PolicyKind = iota
	// FixedShare caps every gang at a fixed rank count (Policy.Share) and
	// runs jobs concurrently while free ranks last — static partitioning,
	// simple and predictable, wasteful when the mix is heterogeneous.
	FixedShare
	// WeightedFair sizes each gang by the job's weight relative to every
	// job currently in the system (running or queued): gang =
	// clamp(total·w/Σw, MinGang..requested). Jobs are moldable — when
	// fewer ranks are idle than the fair share, the gang shrinks to the
	// idle set (never below MinGang) rather than wait, which is what lets
	// small jobs slip in while a big one drains.
	WeightedFair
)

// String names the policy for traces and reports.
func (k PolicyKind) String() string {
	switch k {
	case FIFOExclusive:
		return "fifo-exclusive"
	case FixedShare:
		return "fixed-share"
	case WeightedFair:
		return "weighted-fair"
	}
	return "unknown"
}

// ParsePolicyKind resolves a policy name as printed by PolicyKind.String
// — the single lookup shared by the daemon's flags and the arrival-trace
// header, so a new kind cannot exist in one and not the other.
func ParsePolicyKind(name string) (PolicyKind, error) {
	for _, k := range []PolicyKind{FIFOExclusive, FixedShare, WeightedFair} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
}

// Policy configures admission for one scheduler run.
type Policy struct {
	Kind PolicyKind

	// Share is the per-gang rank cap for FixedShare (required there,
	// ignored elsewhere).
	Share int

	// NoBackfill disables skip-ahead admission for the sharing policies:
	// by default, when the queue head does not fit on the idle ranks, the
	// scheduler scans past it and admits any later job that does. The
	// head is always tried first, so a head that fits is never overtaken;
	// a head demanding more ranks than are ever simultaneously idle can
	// still be delayed by a continuous stream of small jobs (no
	// EASY-style reservation is made for it — future work).
	// FIFOExclusive never backfills regardless.
	NoBackfill bool
}

// Named validation errors. Policy and submission mistakes must surface as
// errors before the simulation starts, never as panics inside it.
var (
	// ErrUnknownPolicy reports a PolicyKind outside the defined set.
	ErrUnknownPolicy = errors.New("sched: unknown policy kind")
	// ErrBadShare reports a FixedShare cap of zero, negative, or larger
	// than the cluster.
	ErrBadShare = errors.New("sched: fixed-share cap outside 1..cluster ranks")
	// ErrBadWeight reports a negative job weight (zero defaults to 1).
	ErrBadWeight = errors.New("sched: job weight must be >= 1")
	// ErrGangTooBig reports a job requesting more ranks than the cluster
	// has.
	ErrGangTooBig = errors.New("sched: requested gang larger than cluster")
	// ErrBadMinGang reports a MinGang that is negative or exceeds the
	// job's requested gang.
	ErrBadMinGang = errors.New("sched: MinGang outside 0..requested gang")
	// ErrBadArrival reports a negative arrival time.
	ErrBadArrival = errors.New("sched: negative arrival time")
	// ErrNilJob reports a submission without a job.
	ErrNilJob = errors.New("sched: submission has no job")
	// ErrNoJobs reports an empty submission list.
	ErrNoJobs = errors.New("sched: no jobs submitted")
	// ErrBadCluster reports an unusable cluster shape.
	ErrBadCluster = errors.New("sched: invalid cluster configuration")
)

// Validate checks the policy against a cluster of totalRanks.
func (p Policy) Validate(totalRanks int) error {
	switch p.Kind {
	case FIFOExclusive, WeightedFair:
	case FixedShare:
		if p.Share < 1 || p.Share > totalRanks {
			return fmt.Errorf("%w: Share=%d, cluster has %d", ErrBadShare, p.Share, totalRanks)
		}
	default:
		return fmt.Errorf("%w: %d", ErrUnknownPolicy, int(p.Kind))
	}
	return nil
}

// backfills reports whether the policy skips past a blocked queue head.
func (p Policy) backfills() bool {
	return p.Kind != FIFOExclusive && !p.NoBackfill
}
