package mph

import (
	"strings"
	"testing"
)

// FuzzBuildPerfect feeds Build arbitrary word sets and checks the minimal
// perfect hash contract the WO pipeline depends on: every dictionary word
// maps to a distinct slot in [0, len(words)) — no collisions, no lost
// keys — so per-word counts can never merge or vanish before partitioning.
func FuzzBuildPerfect(f *testing.F) {
	f.Add("the quick brown fox")
	f.Add("a b c d e f g h i j k l m n o p")
	f.Add("x")
	f.Add("word word2 word3 verylongwordthatkeepsongoing yy zz")
	f.Fuzz(func(t *testing.T, corpus string) {
		seen := map[string]bool{}
		var words []string
		for _, w := range strings.Fields(corpus) {
			if len(w) > 64 || seen[w] {
				continue // Build's contract: no duplicates
			}
			seen[w] = true
			words = append(words, w)
		}
		if len(words) == 0 {
			return
		}
		table, err := Build(words)
		if err != nil {
			// Construction may legitimately fail only by exhausting
			// displacement seeds, which the fixed iteration cap reports
			// as an error; accepting that is fine, silent corruption is
			// not.
			t.Skipf("build failed: %v", err)
		}
		if table.Len() != len(words) {
			t.Fatalf("table has %d slots for %d words (not minimal)", table.Len(), len(words))
		}
		slots := map[uint32]string{}
		for _, w := range words {
			s := table.Lookup(w)
			if s >= uint32(len(words)) {
				t.Fatalf("word %q hashed to slot %d, beyond %d words", w, s, len(words))
			}
			if prev, dup := slots[s]; dup {
				t.Fatalf("words %q and %q collide at slot %d (not perfect)", prev, w, s)
			}
			slots[s] = w
		}
	})
}
