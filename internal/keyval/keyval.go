// Package keyval provides the key–value pair buffers that flow through the
// GPMR pipeline. Keys are 4-byte integers, as in the paper — GPMR imposes
// no strict key definition, but every benchmark (including WordOccurrence,
// via a minimal perfect hash) maps its keys onto uint32 for coalesced
// access. Values are a generic fixed-size type.
//
// Buffers carry both a physical pair count (the data actually materialized
// and computed on, so results stay exactly checkable) and a virtual pair
// count (the paper-scale workload the cost model charges for); see the
// virtual replication discussion in DESIGN.md.
package keyval

// Pairs is a structure-of-arrays pair buffer: Keys[i] goes with Vals[i].
// The SoA layout mirrors what a GPU implementation needs for coalescing.
type Pairs[V any] struct {
	Keys []uint32
	Vals []V

	// Virt is the virtual pair count this buffer represents. Zero means
	// "same as physical" and is normalized by VirtLen.
	Virt int64
}

// Len returns the physical pair count.
func (p *Pairs[V]) Len() int { return len(p.Keys) }

// VirtLen returns the virtual pair count (defaulting to physical).
func (p *Pairs[V]) VirtLen() int64 {
	if p.Virt > 0 {
		return p.Virt
	}
	return int64(len(p.Keys))
}

// VirtBytes returns the buffer's virtual size given the per-value byte
// width used by the app's cost accounting.
func (p *Pairs[V]) VirtBytes(valBytes int64) int64 {
	return p.VirtLen() * (4 + valBytes)
}

// Append adds one pair.
func (p *Pairs[V]) Append(k uint32, v V) {
	p.Keys = append(p.Keys, k)
	p.Vals = append(p.Vals, v)
}

// AppendPairs adds all pairs from q and folds in its virtual count.
func (p *Pairs[V]) AppendPairs(q *Pairs[V]) {
	pv, qv := p.VirtLen(), q.VirtLen()
	p.Keys = append(p.Keys, q.Keys...)
	p.Vals = append(p.Vals, q.Vals...)
	p.Virt = pv + qv
}

// Reset empties the buffer, keeping capacity.
func (p *Pairs[V]) Reset() {
	p.Keys = p.Keys[:0]
	p.Vals = p.Vals[:0]
	p.Virt = 0
}

// Equal reports whether two buffers hold the same pairs in the same
// order — the byte-identity check output-invariance tests and benchmarks
// apply to job results. Virtual counts are cost-model bookkeeping, not
// identity, and are not compared.
func Equal[V comparable](a, b *Pairs[V]) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || a.Vals[i] != b.Vals[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the buffer.
func (p *Pairs[V]) Clone() Pairs[V] {
	return Pairs[V]{
		Keys: append([]uint32(nil), p.Keys...),
		Vals: append([]V(nil), p.Vals...),
		Virt: p.Virt,
	}
}

// Bucket splits pairs into n buckets according to rankOf(key), preserving
// relative order within each bucket (a stable scatter, as GPMR's GPU
// partitioner produces so each reducer's pairs are contiguous). Virtual
// counts are apportioned proportionally, with remainders assigned
// low-bucket-first so they always sum to the input's virtual count.
func (p *Pairs[V]) Bucket(n int, rankOf func(key uint32) int) []Pairs[V] {
	if n <= 0 {
		panic("keyval: Bucket with n <= 0")
	}
	buckets := make([]Pairs[V], n)
	for i, k := range p.Keys {
		d := rankOf(k)
		if d < 0 || d >= n {
			panic("keyval: partitioner returned rank out of range")
		}
		buckets[d].Append(k, p.Vals[i])
	}
	phys := int64(p.Len())
	if phys == 0 {
		return buckets
	}
	virt := p.VirtLen()
	assigned := int64(0)
	for i := range buckets {
		share := virt * int64(buckets[i].Len()) / phys
		buckets[i].Virt = share
		assigned += share
	}
	for i := 0; assigned < virt && i < n; i++ {
		if buckets[i].Len() > 0 {
			buckets[i].Virt++
			assigned++
		}
	}
	return buckets
}
