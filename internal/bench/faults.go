package bench

import (
	"fmt"
	"io"

	"repro/internal/apps/sio"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/keyval"
)

// FaultGPUs is the cluster shape for the fault scenarios: eight ranks
// packed four per node, the paper's testbed shape.
const FaultGPUs = 8

// FaultRow reports one fault scenario on the SIO workload.
type FaultRow struct {
	Scenario string
	Wall     des.Time
	// MapDone is the global map-phase completion (latest rank). For the
	// failstop scenario it isolates the re-execution cost. Note the
	// accounting caveat: in resilient runs (failstop, straggler+spec) a
	// rank's MapDone includes waiting for the all-chunks-delivered
	// declaration, so it is not comparable against non-resilient rows.
	MapDone   des.Time
	WireBytes int64

	// Recovery cost: lost chunks re-executed by survivors, the input
	// re-fetch traffic for them, and the failed rank's partition-handoff
	// relay traffic.
	ChunksRecovered int
	RecoveredBytes  int64
	RelayBytes      int64

	// Speculation outcome.
	SpecLaunched  int
	SpecWon       int
	ChunksWasted  int
	ChunksSkipped int

	// OutputOK reports that the scenario's gathered output is
	// byte-identical to the failure-free baseline.
	OutputOK bool
}

// faultJob builds the common SIO job: 32 virtual-MB-scale chunks over
// eight GPUs with gathered output so scenarios are comparable byte for
// byte.
func faultJob(o Options) *core.Job[uint32] {
	job, _ := sio.NewJob(sio.Params{
		Elements: 32 << 20,
		GPUs:     FaultGPUs,
		Seed:     o.Seed,
		PhysMax:  o.PhysBudget,
		ChunkCap: 1 << 20, // many small chunks: failures always strike mid-map
	})
	job.Config.GatherOutput = true
	job.Config.Workers = o.Workers
	return job
}

// Faults runs the fault-injection scenarios the DESIGN.md fault-tolerance
// section argues:
//
//   - baseline: the failure-free run every scenario's output must match.
//   - failstop: rank 2's GPU dies right after its third map chunk; the
//     survivors re-execute its lost chunks and inherit its partition.
//   - straggler: rank 5 derates 8x after its first chunk; no backups.
//   - straggler+spec: same derating with Config.Speculate, so idle ranks
//     re-execute the straggler's in-flight chunks and it abandons copies
//     that lost — the makespan win speculation buys.
//
// Everything runs in the deterministic simulated-time domain: the same
// options give bit-identical rows, including the recovery traffic.
func Faults(o Options) ([]FaultRow, error) {
	o = o.withDefaults()
	base, err := faultJob(o).Run()
	if err != nil {
		return nil, err
	}

	row := func(name string, res *core.Result[uint32]) FaultRow {
		rec := res.Trace.Recovery()
		var mapDone des.Time
		for _, r := range res.Trace.Ranks {
			if r.MapDone > mapDone {
				mapDone = r.MapDone
			}
		}
		return FaultRow{
			Scenario:        name,
			Wall:            res.Trace.Wall,
			MapDone:         mapDone,
			WireBytes:       res.Trace.WireBytes,
			ChunksRecovered: rec.ChunksRecovered,
			RecoveredBytes:  rec.RecoveredBytes,
			RelayBytes:      rec.RelayBytes,
			SpecLaunched:    rec.SpecLaunched,
			SpecWon:         rec.SpecWon,
			ChunksWasted:    rec.ChunksWasted,
			ChunksSkipped:   rec.ChunksSkipped,
			OutputOK:        keyval.Equal(&res.Output, &base.Output),
		}
	}
	rows := []FaultRow{row("baseline", base)}

	scenarios := []struct {
		name      string
		plan      *fault.Plan
		speculate bool
	}{
		// The fail-stop strikes after rank 2's third chunk (of four): late
		// enough that its host memory holds shuffle pairs to hand off,
		// early enough that lost chunks remain to re-execute.
		{"failstop", &fault.Plan{Events: []fault.Event{fault.FailAfterChunks(2, 3)}}, false},
		{"straggler", &fault.Plan{Events: []fault.Event{fault.SlowdownAfterChunks(5, 1, 8)}}, false},
		{"straggler+spec", &fault.Plan{Events: []fault.Event{fault.SlowdownAfterChunks(5, 1, 8)}}, true},
	}
	for _, sc := range scenarios {
		job := faultJob(o)
		job.Config.Faults = sc.plan
		job.Config.Speculate = sc.speculate
		res, err := job.Run()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row(sc.name, res))
	}
	return rows, nil
}

// RenderFaults writes the scenario comparison table.
func RenderFaults(w io.Writer, rows []FaultRow) {
	fmt.Fprintf(w, "Fault injection — SIO, %d GPUs (4 per node), recovery and speculation\n", FaultGPUs)
	fmt.Fprintf(w, "%-15s %12s %12s %9s %6s %9s %9s %6s %5s %7s %7s %7s\n",
		"scenario", "makespan", "map done", "wire MB", "reexec", "refetchMB", "relay MB", "spec", "won", "wasted", "skipped", "output")
	for _, r := range rows {
		ok := "IDENTICAL"
		if !r.OutputOK {
			ok = "DIVERGED"
		}
		fmt.Fprintf(w, "%-15s %12v %12v %9.1f %6d %9.1f %9.1f %6d %5d %7d %7d %7s\n",
			r.Scenario, r.Wall, r.MapDone, float64(r.WireBytes)/1e6,
			r.ChunksRecovered, float64(r.RecoveredBytes)/1e6, float64(r.RelayBytes)/1e6,
			r.SpecLaunched, r.SpecWon, r.ChunksWasted, r.ChunksSkipped, ok)
	}
}
