package mm

import (
	"math"
	"testing"
)

func runMM(t *testing.T, dim int64, gpus int) (*Built, []float32) {
	t.Helper()
	b, err := New(Params{Dim: dim, GPUs: gpus})
	if err != nil {
		t.Fatal(err)
	}
	perRank, _, _, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	return b, b.Reassemble(perRank)
}

func checkProduct(t *testing.T, b *Built, got []float32) {
	t.Helper()
	ref := b.Reference()
	for i := range ref {
		if math.Abs(float64(got[i]-ref[i])) > 1e-3*(math.Abs(float64(ref[i]))+1) {
			t.Fatalf("C[%d] = %f, want %f", i, got[i], ref[i])
		}
	}
}

func TestCorrectnessSingleGPU(t *testing.T) {
	b, got := runMM(t, 1024, 1)
	checkProduct(t, b, got)
}

func TestCorrectnessMultiGPU(t *testing.T) {
	b, got := runMM(t, 2048, 4)
	checkProduct(t, b, got)
}

func TestCorrectnessManyGPUs(t *testing.T) {
	b, got := runMM(t, 4096, 16)
	checkProduct(t, b, got)
}

func TestInvalidDim(t *testing.T) {
	if _, err := New(Params{Dim: 1000, GPUs: 1}); err == nil {
		t.Error("expected error for non-multiple dim")
	}
	if _, err := New(Params{Dim: 0, GPUs: 1}); err == nil {
		t.Error("expected error for zero dim")
	}
}

func TestStripPlanning(t *testing.T) {
	// 4096² on 4 GPUs: full inner products fit in core and T² = 16 chunks
	// already cover 4 GPUs, so one strip per result tile.
	b, err := New(Params{Dim: 4096, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Job1.Chunks) != b.T*b.T {
		t.Errorf("4096/4GPUs: %d chunks, want %d", len(b.Job1.Chunks), b.T*b.T)
	}
	// 2048² on 64 GPUs: the tile edge shrinks to the 256 floor (T=8) and
	// strips split until chunks cover 2× the GPUs.
	b2, err := New(Params{Dim: 2048, GPUs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if b2.Tv != MinVirtTile {
		t.Errorf("2048/64GPUs: tile edge %d, want %d", b2.Tv, MinVirtTile)
	}
	if len(b2.Job1.Chunks) < 2*64 {
		t.Errorf("2048/64GPUs: %d chunks, want >= 128", len(b2.Job1.Chunks))
	}
}

func TestComputeBoundScaling(t *testing.T) {
	// Paper Figure 3: MM is GPU-compute bound with near-perfect scaling.
	wall := func(gpus int) float64 {
		b, err := New(Params{Dim: 4096, GPUs: gpus})
		if err != nil {
			t.Fatal(err)
		}
		_, tr1, tr2, err := b.Run()
		if err != nil {
			t.Fatal(err)
		}
		return (tr1.Wall + tr2.Wall).Seconds()
	}
	t1, t4 := wall(1), wall(4)
	eff := t1 / (t4 * 4)
	// Table 2 implies the paper's own intra-node 1→4-GPU MM efficiency is
	// 559.2/162.7/4 ≈ 0.86; require the same regime.
	if eff < 0.72 {
		t.Errorf("MM 4-GPU efficiency %.2f — expected near-perfect scaling", eff)
	}
}

func TestPartialTilesStayLocal(t *testing.T) {
	b, err := New(Params{Dim: 2048, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Job1.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Chunk placement matches the partitioner, so no tile bytes cross the
	// wire (4 GPUs share a node: LocalBytes may be nonzero, WireBytes not).
	if res.Trace.WireBytes > 4096 { // allow end-marker control traffic
		t.Errorf("job1 moved %d bytes across the wire; tiles should stay on their owner", res.Trace.WireBytes)
	}
}

func TestMapDominatesRuntime(t *testing.T) {
	b, err := New(Params{Dim: 4096, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, tr1, _, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	br := tr1.Breakdown()
	if br.Map < 0.6 {
		t.Errorf("MM map fraction %.2f, expected compute-dominated", br.Map)
	}
}
