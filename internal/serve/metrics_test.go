package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/obs"
)

// metricsTrace is a small deterministic arrival stream: three placed
// jobs across two tenants plus one invalid submission, enough to
// exercise every counter family, both histograms, and a reject.
func metricsTrace() *Trace {
	h := Header{Version: TraceVersion, Policy: "weighted-fair", GPUs: 8, GPUsPerNode: 4,
		MaxQueue: 4, Quota: 2, PhysBudget: 2048}
	return &Trace{Header: h, Events: []Event{
		{Arrive: &Arrival{Seq: 0, At: 0, Tenant: "ana", Kind: "wo",
			Params: Params{"bytes": 1 << 20, "gpus": 2, "seed": 1}}},
		{Arrive: &Arrival{Seq: 1, At: des.Millisecond, Tenant: "bo", Kind: "kmc",
			Params: Params{"points": 1 << 20, "gpus": 2, "seed": 2}}},
		{Arrive: &Arrival{Seq: 2, At: 2 * des.Millisecond, Tenant: "ana", Kind: "sio",
			Params: Params{"elements": 1 << 20, "gpus": 4, "seed": 3, "chunkcap": 1 << 18}}},
		{Arrive: &Arrival{Seq: 3, At: 3 * des.Millisecond, Tenant: "cy", Kind: "nope"}},
	}}
}

// metricsText replays the stream and snapshots the exposition.
func metricsText(t *testing.T, rec *obs.Recorder) (string, *session) {
	t.Helper()
	ses, _, err := replaySession(metricsTrace(), ReplayOptions{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ses.writeMetrics(&buf)
	return buf.String(), ses
}

func TestMetricsGolden(t *testing.T) {
	// The replay is deterministic, so two independent sessions must
	// expose byte-identical metrics text...
	a, _ := metricsText(t, nil)
	b, _ := metricsText(t, nil)
	if a != b {
		t.Fatalf("metrics text differs between identical replays:\n--- a\n%s\n--- b\n%s", a, b)
	}
	// ...and the headline samples are pinned exactly.
	for _, want := range []string{
		"gpmr_serve_submitted_total 4\n",
		"gpmr_serve_done_total 3\n",
		"gpmr_serve_failed_total 0\n",
		`gpmr_serve_rejected_total{reason="invalid"} 1` + "\n",
		"gpmr_serve_wait_seconds_count 3\n",
		"gpmr_serve_service_seconds_count 3\n",
		`gpmr_serve_wait_seconds_bucket{le="+Inf"} 3` + "\n",
		`gpmr_serve_tenant_submitted_total{tenant="ana"} 2` + "\n",
		`gpmr_serve_tenant_rejected_total{tenant="cy"} 1` + "\n",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("exposition is missing %q", strings.TrimSpace(want))
		}
	}
}

// sampleName extracts the metric name of one sample line.
func sampleName(line string) string {
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		return line[:i]
	}
	return line
}

// baseName strips a histogram sample's series suffix back to the
// declared metric name.
func baseName(name string, histograms map[string]bool) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b := strings.TrimSuffix(name, suf); b != name && histograms[b] {
			return b
		}
	}
	return name
}

func TestMetricsExpositionLint(t *testing.T) {
	text, _ := metricsText(t, nil)
	nameRe := regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

	helps := map[string]bool{}
	types := map[string]string{}
	histograms := map[string]bool{}
	type series struct {
		buckets []int64 // cumulative, in exposition order
		inf     int64
		count   int64
		hasInf  bool
	}
	hists := map[string]*series{}

	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(f) != 2 || f[1] == "" {
				t.Errorf("HELP without text: %q", line)
			}
			helps[f[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line[len("# TYPE "):])
			if len(f) != 2 {
				t.Fatalf("malformed TYPE: %q", line)
			}
			types[f[0]] = f[1]
			if f[1] == "histogram" {
				histograms[f[0]] = true
				hists[f[0]] = &series{}
			}
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment line %q", line)
		default:
			name := sampleName(line)
			base := baseName(name, histograms)
			if !nameRe.MatchString(name) {
				t.Errorf("sample name %q violates [a-z_][a-z0-9_]*", name)
			}
			if !helps[base] {
				t.Errorf("sample %q has no HELP for %q", line, base)
			}
			if types[base] == "" {
				t.Errorf("sample %q has no TYPE for %q", line, base)
			}
			if h := hists[base]; h != nil {
				val, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
				switch {
				case strings.Contains(line, `le="+Inf"`):
					if err != nil {
						t.Errorf("bad +Inf bucket %q", line)
					}
					h.inf, h.hasInf = val, true
				case strings.HasPrefix(name, base+"_bucket"):
					if err != nil {
						t.Errorf("bad bucket value %q", line)
					}
					h.buckets = append(h.buckets, val)
				case name == base+"_count":
					if err != nil {
						t.Errorf("bad count value %q", line)
					}
					h.count = val
				}
			}
		}
	}

	for name, h := range hists {
		if !h.hasInf {
			t.Errorf("histogram %s has no +Inf bucket", name)
			continue
		}
		prev := int64(0)
		for i, v := range h.buckets {
			if v < prev {
				t.Errorf("histogram %s bucket %d not cumulative: %d < %d", name, i, v, prev)
			}
			prev = v
		}
		if h.inf < prev {
			t.Errorf("histogram %s +Inf bucket %d below last finite bucket %d", name, h.inf, prev)
		}
		if h.inf != h.count {
			t.Errorf("histogram %s +Inf bucket %d != count %d", name, h.inf, h.count)
		}
	}
}

func TestTimelineExport(t *testing.T) {
	rec := obs.New()
	_, ses := metricsText(t, rec)
	if len(ses.jobs) != 4 {
		t.Fatalf("replay recorded %d jobs, want 4", len(ses.jobs))
	}
	name := ses.jobs[0].Name

	var buf bytes.Buffer
	if err := ses.writeTimeline(&buf, name); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	var lanes []string
	var spans int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			lanes = append(lanes, fmt.Sprint(ev["args"].(map[string]any)["name"]))
		}
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("timeline has no spans")
	}
	var sawServe, sawSched bool
	for _, l := range lanes {
		switch {
		case l == "serve/"+name:
			sawServe = true
		case l == "sched/"+name:
			sawSched = true
		case strings.HasPrefix(l, name+"/r"):
		default:
			t.Errorf("timeline leaked foreign stream %q", l)
		}
	}
	if !sawServe || !sawSched {
		t.Errorf("timeline lanes %v missing serve/ or sched/ stream", lanes)
	}

	// A session without a recorder refuses cleanly.
	plain, _, err := replaySession(metricsTrace(), ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.writeTimeline(&buf, name); err != ErrNoRecorder {
		t.Errorf("timeline without recorder: err = %v, want ErrNoRecorder", err)
	}
}
