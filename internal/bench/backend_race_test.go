package bench

import (
	"bytes"
	"testing"

	"repro/internal/apps/kmc"
	"repro/internal/apps/sio"
	"repro/internal/apps/wo"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/workload"
)

// stressWorkers oversubscribes the host so pooled kernels genuinely
// contend for cores and the race detector sees as many concurrent
// closure pairs as possible.
const stressWorkers = -1 // pool(GOMAXPROCS)

// TestPoolRaceStressInvarianceMatrix reruns the PR 3 output-invariance
// matrix — every combination of GPU count, steal policy, GPUDirect, and
// pipeline depth, with placement skewed so stealing genuinely runs — on
// the pooled backend, comparing each cell byte-for-byte against its
// serial twin. Under `go test -race` (the CI race job) this doubles as
// the data-race stress for the closure-capture contract: every cell runs
// map/partition/sort/reduce closures from up to 8 simulated GPUs
// concurrently on real cores.
func TestPoolRaceStressInvarianceMatrix(t *testing.T) {
	apps := []struct {
		name string
		run  func(t *testing.T, pt invariancePoint, workers int) []byte
	}{
		{"wo", func(t *testing.T, pt invariancePoint, workers int) []byte {
			b := wo.NewJob(wo.Params{Bytes: 4 << 20, GPUs: pt.gpus, Seed: 1, PhysMax: 1 << 14, DictSize: 1000, ChunkCap: 1 << 18})
			mutate(b.Job, pt)
			b.Job.Config.Workers = workers
			return canonBytes(t, b.Job.MustRun().PerRank)
		}},
		{"sio", func(t *testing.T, pt invariancePoint, workers int) []byte {
			job, _ := sio.NewJob(sio.Params{Elements: 4 << 20, GPUs: pt.gpus, Seed: 1, PhysMax: 1 << 14, ChunkCap: 1 << 19})
			mutate(job, pt)
			job.Config.Workers = workers
			return canonBytes(t, job.MustRun().PerRank)
		}},
		{"kmc", func(t *testing.T, pt invariancePoint, workers int) []byte {
			b := kmc.NewJob(kmc.Params{Points: 4 << 20, GPUs: pt.gpus, Seed: 1, PhysMax: 1 << 12})
			mutate(b.Job, pt)
			b.Job.Config.Workers = workers
			return canonBytes(t, b.Job.MustRun().PerRank)
		}},
	}
	for _, app := range apps {
		t.Run(app.name, func(t *testing.T) {
			for _, pt := range invarianceMatrix() {
				serial := app.run(t, pt, 0)
				pooled := app.run(t, pt, stressWorkers)
				if !bytes.Equal(serial, pooled) {
					t.Errorf("%+v: pooled output diverges from serial", pt)
				}
			}
		})
	}
}

// jitterPlan derates every rank by a seeded pseudo-random straggler
// factor starting at a seeded time: kernel costs stretch unevenly, the
// simulated overlap pattern shifts, and the host-side join order of
// pooled closures is scrambled run to run — scheduling pressure on the
// dispatch/join protocol without changing what any kernel computes.
func jitterPlan(seed uint64, gpus int) *fault.Plan {
	rng := workload.NewRNG(seed)
	var evs []fault.Event
	for r := 0; r < gpus; r++ {
		factor := 1 + rng.Float64()/2 // 1.0–1.5x slower
		at := des.Time(rng.Intn(int(2 * des.Millisecond)))
		evs = append(evs, fault.SlowdownAt(r, at, factor))
	}
	return &fault.Plan{Events: evs}
}

// FuzzPoolJitter is the seeded backend-scheduling fuzz: random kernel
// cost jitter (per-rank straggler derating at random times) reorders the
// pool's join pressure, and the canonical output must still match the
// jitter-free serial baseline. The seed corpus runs on every `go test`;
// fuzzing explores further schedules.
func FuzzPoolJitter(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 0xdeadbeef, 1 << 33} {
		f.Add(seed)
	}
	baseline := func(t *testing.T) []byte {
		job, _ := sio.NewJob(sio.Params{Elements: 4 << 20, GPUs: 8, Seed: 9, PhysMax: 1 << 13, ChunkCap: 1 << 19})
		return canonBytes(t, job.MustRun().PerRank)
	}
	var want []byte
	f.Fuzz(func(t *testing.T, seed uint64) {
		if want == nil {
			want = baseline(t)
		}
		job, _ := sio.NewJob(sio.Params{Elements: 4 << 20, GPUs: 8, Seed: 9, PhysMax: 1 << 13, ChunkCap: 1 << 19})
		job.Config.Workers = stressWorkers
		job.Config.StealPolicy = core.StealLocalFirst // derates starve ranks: steal under jitter
		job.Config.Faults = jitterPlan(seed, 8)
		got := canonBytes(t, job.MustRun().PerRank)
		if !bytes.Equal(got, want) {
			t.Errorf("seed %#x: jittered pooled output diverges from jitter-free serial baseline", seed)
		}
	})
}
