package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/des"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

// The SLO experiment: the online sweep's open system, but with the
// arrival stream split into service classes — interactive queries under
// tight deadlines, standard analytics that would rather be demoted than
// turned away, and elastic batch scans with no deadline at all — run
// once under plain weighted-fair and once with the SLO machinery
// (EASY reservation, class preemption, elastic grow-back) switched on.
// Both cells see byte-identical arrivals, so the table isolates what the
// scheduling upgrades buy: deadline attainment per class against the
// shed/reject rate. Every run goes through serve's deterministic replay
// path, so the table is bit-identical across runs, backends, and shard
// counts.

// SLOGPUs is the shared cluster for the SLO sweep.
const SLOGPUs = 16

// SLOJobs is the arrival-stream length per load point.
const SLOJobs = 18

// SLOMaxQueue bounds the admission queue.
const SLOMaxQueue = 12

// sloGapsMs are the mean inter-arrival gaps swept, loosest to tightest.
var sloGapsMs = []float64{8, 4, 2}

// sloDeadlines per class, relative to arrival.
const (
	sloInteractiveDeadline = 25 * des.Millisecond
	sloStandardDeadline    = 60 * des.Millisecond
)

// sloStream builds the seeded three-class arrival stream for one load
// point. A pure function of (options, gap), so both policy cells at a
// given load see byte-identical arrivals.
func sloStream(o Options, gapMs float64) []serve.Event {
	rng := workload.NewRNG(o.Seed + 0x2545f491)
	var evs []serve.Event
	var at des.Time
	for i := 0; i < SLOJobs; i++ {
		u := rng.Float64()
		at += des.FromSeconds(gapMs / 1e3 * -math.Log(1-u))
		seed := int64(o.Seed) + int64(i)*1000
		a := &serve.Arrival{Seq: i, At: at, Tenant: onlineTenants[i%len(onlineTenants)]}
		switch rng.Intn(4) {
		case 0:
			// Interactive query: small, tight deadline, reject on a
			// predicted miss (the user would rather know immediately).
			a.Kind = "wo"
			a.Params = serve.Params{"bytes": 4 << 20, "gpus": 2, "seed": seed}
			a.MinGang = 2 // rigid: a latency query cannot mold down
			a.Class, a.Deadline = "interactive", sloInteractiveDeadline
		case 1:
			// Standard analytics: moderate deadline, demoted to batch on a
			// predicted miss rather than turned away.
			a.Kind = "kmc"
			a.Params = serve.Params{"points": 4 << 20, "gpus": 4, "seed": seed}
			a.MinGang = 4
			a.Class, a.Deadline, a.Downgrade = "standard", sloStandardDeadline, true
		case 2:
			// Batch scan: no deadline, molds down under load and opts into
			// elastic grow-back.
			a.Kind = "sio"
			a.Params = serve.Params{"elements": 64 << 20, "gpus": 8, "seed": seed, "chunkcap": 1 << 20}
			a.Class, a.Elastic = "batch", true
		default:
			// Large batch scan, likewise elastic.
			a.Kind = "sio"
			a.Params = serve.Params{"elements": 128 << 20, "gpus": 12, "seed": seed, "chunkcap": 1 << 20}
			a.Class, a.Elastic = "batch", true
		}
		evs = append(evs, serve.Event{Arrive: a})
	}
	return evs
}

// sloConfigs are the cells compared at each load point: exclusive FIFO
// (where the admission predictor sees the whole machine's drain ahead of
// every job, so infeasible deadlines are rejected or downgraded at
// arrival), plain weighted-fair, and weighted-fair with the SLO
// scheduling upgrades.
type sloConfig struct {
	Name, Policy              string
	Reserve, Preempt, Elastic bool
}

func sloConfigs() []sloConfig {
	return []sloConfig{
		{Name: "fifo-exclusive", Policy: "fifo-exclusive"},
		{Name: "weighted-fair", Policy: "weighted-fair"},
		{Name: "weighted-fair+slo", Policy: "weighted-fair", Reserve: true, Preempt: true, Elastic: true},
	}
}

// SLORow is one (load, config) cell of the sweep.
type SLORow struct {
	GapMs  float64
	Config string

	Admitted   int64
	Shed       int64 // queue-full sheds
	SLORej     int64 // predicted-miss rejects (interactive)
	Downgraded int64 // predicted-miss demotions (standard)
	Preempts   int64 // checkpoint-restarts across the run

	IntMet, IntJobs int64 // interactive deadline attainment
	StdMet, StdJobs int64 // standard deadline attainment
	BatchDone       int64

	P95Int   des.Time // p95 latency over interactive completions
	Makespan des.Time
}

// SLO sweeps offered load × SLO configuration through the serving
// layer's replay path and reports per-class deadline attainment and
// shed/reject rates.
func SLO(o Options) ([]SLORow, error) {
	o = o.withDefaults()
	var rows []SLORow
	for _, gap := range sloGapsMs {
		evs := sloStream(o, gap)
		for _, cfg := range sloConfigs() {
			h := serve.Header{
				Version:     serve.TraceVersion,
				Policy:      cfg.Policy,
				GPUs:        SLOGPUs,
				GPUsPerNode: 4,
				MaxQueue:    SLOMaxQueue,
				PhysBudget:  o.PhysBudget,
				Reserve:     cfg.Reserve,
				Preempt:     cfg.Preempt,
				Elastic:     cfg.Elastic,
			}
			o.Obs.SetPrefix(fmt.Sprintf("%.0fms/%s/", gap, cfg.Name))
			rep, err := serve.Replay(&serve.Trace{Header: h, Events: evs},
				serve.ReplayOptions{Workers: o.Workers, Shards: o.Shards, Obs: o.Obs})
			if err != nil {
				o.Obs.SetPrefix("")
				return nil, fmt.Errorf("slo: gap %.0fms config %s: %w", gap, cfg.Name, err)
			}
			s := rep.Stats
			row := SLORow{
				GapMs:    gap,
				Config:   cfg.Name,
				Admitted: s.Admitted,
				Shed:     s.RejectedShed,
				SLORej:   s.RejectedSLO,
				Makespan: rep.Cluster.Makespan,
			}
			if cs := s.Classes["interactive"]; cs != nil {
				row.IntMet, row.IntJobs = cs.Met, cs.Met+cs.Missed
			}
			if cs := s.Classes["standard"]; cs != nil {
				row.StdMet, row.StdJobs = cs.Met, cs.Met+cs.Missed
			}
			if cs := s.Classes["batch"]; cs != nil {
				row.BatchDone = cs.Done
			}
			for i := range rep.Jobs {
				if rep.Jobs[i].Downgraded {
					row.Downgraded++
				}
			}
			for i := range rep.Cluster.Jobs {
				row.Preempts += int64(rep.Cluster.Jobs[i].Preempts)
			}
			row.P95Int = rep.Cluster.LatencyPercentile(95, func(j *sched.JobTrace) bool {
				return j.Class == sched.Interactive
			})
			rows = append(rows, row)
		}
	}
	o.Obs.SetPrefix("")
	return rows, nil
}

// RenderSLO writes the SLO sweep.
func RenderSLO(w io.Writer, rows []SLORow) {
	fmt.Fprintf(w, "SLO scheduling — %d-job three-class streams on %d shared GPUs, queue bound %d\n",
		SLOJobs, SLOGPUs, SLOMaxQueue)
	fmt.Fprintf(w, "deadlines: interactive %v (reject on predicted miss), standard %v (downgrade), batch none (elastic)\n",
		sloInteractiveDeadline, sloStandardDeadline)
	fmt.Fprintf(w, "%8s %-18s %5s %5s %4s %4s %5s %7s %7s %6s %12s\n",
		"gap", "config", "admit", "shed", "rej", "down", "preem", "int met", "std met", "batch", "p95 int")
	lastGap := -1.0
	for _, r := range rows {
		if r.GapMs != lastGap && lastGap >= 0 {
			fmt.Fprintln(w)
		}
		lastGap = r.GapMs
		fmt.Fprintf(w, "%6.0fms %-18s %5d %5d %4d %4d %5d %3d/%-3d %3d/%-3d %6d %12v\n",
			r.GapMs, r.Config, r.Admitted, r.Shed, r.SLORej, r.Downgraded, r.Preempts,
			r.IntMet, r.IntJobs, r.StdMet, r.StdJobs, r.BatchDone, r.P95Int)
	}
}
