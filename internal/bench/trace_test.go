package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// The flight recorder's contract, proven end to end: recording must not
// perturb the simulation (every rendered report is byte-identical with
// and without it), and the canonical trace itself must be byte-identical
// across engine shard counts and kernel-execution backends.

// traceOpts keeps the recording runs cheap enough for CI.
func traceOpts() Options { return Options{PhysBudget: 2048, Seed: 1} }

// renderMultijob runs the multi-tenant experiment and renders its report.
func renderMultijob(t *testing.T, o Options) string {
	t.Helper()
	rows, traces, err := Multijob(o)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderMultijob(&sb, rows, traces)
	return sb.String()
}

func TestTracingDoesNotPerturbMultijob(t *testing.T) {
	// Both the legacy single engine and a sharded run must render the
	// exact same report whether or not a recorder is attached.
	for _, shards := range []int{0, 2} {
		o := traceOpts()
		o.Shards = shards
		base := renderMultijob(t, o)
		o.Obs = obs.New()
		traced := renderMultijob(t, o)
		if traced != base {
			t.Errorf("shards=%d: report with tracing differs from report without", shards)
		}
		if o.Obs.Len() == 0 {
			t.Errorf("shards=%d: recorder attached but captured no events", shards)
		}
	}
}

func TestTracingDoesNotPerturbOnline(t *testing.T) {
	o := traceOpts()
	base, err := Online(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Obs = obs.New()
	traced, err := Online(o)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 strings.Builder
	RenderOnline(&b1, base)
	RenderOnline(&b2, traced)
	if b1.String() != b2.String() {
		t.Error("online sweep with tracing differs from sweep without")
	}
	if o.Obs.Len() == 0 {
		t.Error("recorder attached but captured no events")
	}
}

func TestTracingDoesNotPerturbRunTrace(t *testing.T) {
	o := traceOpts()
	_, plain, err := Run("wo", 4<<20, 2, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Obs = obs.New()
	_, traced, err := Run("wo", 4<<20, 2, o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != traced.String() {
		t.Errorf("golden Trace.String differs with tracing on:\n--- off\n%s\n--- on\n%s",
			plain.String(), traced.String())
	}
}

// canonicalJSONL records one multijob run and returns its canonical
// JSONL serialization.
func canonicalJSONL(t *testing.T, shards, workers int) string {
	t.Helper()
	o := traceOpts()
	o.Shards = shards
	o.Workers = workers
	o.Obs = obs.New()
	if _, _, err := Multijob(o); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Obs.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTraceByteIdenticalAcrossShardsAndBackends(t *testing.T) {
	// The recorded simulation trace is part of the deterministic output:
	// every shard count >= 1 crossed with every kernel backend must
	// produce the identical canonical file.
	ref := canonicalJSONL(t, 1, 0)
	if ref == "" {
		t.Fatal("reference run recorded no events")
	}
	for _, c := range []struct{ shards, workers int }{
		{2, 0}, {-1, 0}, {1, 4}, {2, 4}, {-1, 4},
	} {
		got := canonicalJSONL(t, c.shards, c.workers)
		if got != ref {
			t.Errorf("shards=%d workers=%d: canonical trace differs from shards=1 workers=0 (%d vs %d bytes)",
				c.shards, c.workers, len(got), len(ref))
		}
	}
}

func TestChromeExportAndSummary(t *testing.T) {
	o := traceOpts()
	o.Obs = obs.New()
	wall, _, err := Run("sio", 8<<20, 4, o)
	if err != nil {
		t.Fatal(err)
	}

	// The Chrome export must be one valid JSON document in trace-event
	// "JSON object format".
	var buf bytes.Buffer
	if err := o.Obs.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	var metas, spans int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			spans++
		}
	}
	if metas < 2 || spans == 0 {
		t.Errorf("chrome export has %d metadata and %d span events, want >= 2 and > 0", metas, spans)
	}

	// The post-processed summary must reconstruct the run: makespan,
	// bounded per-stream utilization, per-phase percentiles over the 4
	// ranks, and a non-trivial critical path ending at the makespan.
	sum := obs.Summarize(o.Obs.Canonical())
	if sum.MakespanNs <= 0 {
		t.Fatalf("summary makespan %d, want > 0", sum.MakespanNs)
	}
	if got := sum.MakespanNs; got > int64(wall) {
		t.Errorf("summary makespan %d exceeds job wall %d", got, int64(wall))
	}
	if len(sum.Streams) == 0 {
		t.Fatal("summary has no streams")
	}
	var busy bool
	for _, s := range sum.Streams {
		if s.Util < 0 || s.Util > 1 {
			t.Errorf("stream %s utilization %f out of [0,1]", s.Stream, s.Util)
		}
		if s.Util > 0 {
			busy = true
		}
	}
	if !busy {
		t.Error("no stream shows any utilization")
	}
	phases := map[string]obs.PhaseStats{}
	for _, p := range sum.Phases {
		phases[p.Kind] = p
	}
	for _, kind := range []string{"phase.map", "phase.shuffle", "phase.sort", "phase.reduce"} {
		p, ok := phases[kind]
		if !ok {
			t.Errorf("summary is missing %s", kind)
			continue
		}
		if p.Count != 4 {
			t.Errorf("%s count %d, want 4 (one per rank)", kind, p.Count)
		}
		if p.P50Ns > p.P95Ns || p.P95Ns > p.P99Ns {
			t.Errorf("%s percentiles not monotone: p50 %d p95 %d p99 %d", kind, p.P50Ns, p.P95Ns, p.P99Ns)
		}
	}
	if len(sum.Critical.Steps) == 0 {
		t.Fatal("critical path is empty")
	}
	if sum.Critical.EndNs != sum.MakespanNs {
		t.Errorf("critical path ends at %d, makespan %d", sum.Critical.EndNs, sum.MakespanNs)
	}
	if sum.String() == "" {
		t.Error("summary renders empty")
	}
}
