package bench

import (
	"fmt"
	"io"

	"repro/internal/des"
	"repro/internal/gpu"
	"repro/internal/mars"
	"repro/internal/phoenix"
)

// Table1 renders the dataset-size matrix (Table 1).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — dataset sizes")
	fmt.Fprintln(w, "                      MM              SIO         WO           KMC         LR")
	fmt.Fprintln(w, "elem size             --              4 B         1 B          16 B        8 B")
	fmt.Fprintln(w, "strong set      1024..16384 sq.   1,8,32,128M  1,16,64,512M  1,8,32,512M  1,16,64,512M")
	fmt.Fprintln(w, "weak set (/GPU)       --           1..32M      1..256M       1..32M       1..64M")
}

// SpeedupRow is one column of Tables 2 and 3.
type SpeedupRow struct {
	Bench     string
	Paper1GPU float64 // the paper's reported 1-GPU speedup
	Paper4GPU float64
	Speedup1  float64 // measured: baseline wall / GPMR wall
	Speedup4  float64
	Baseline  des.Time
	GPMR1GPU  des.Time
	GPMR4GPU  des.Time
}

// table2Inputs are the paper's Table-2 inputs: the second-biggest first-set
// size for each app, except MM which uses the small set (Phoenix needed
// ~20 s for 1024²).
var table2Inputs = map[string]int64{
	"mm": 1024, "kmc": 32 << 20, "lr": 64 << 20, "sio": 32 << 20, "wo": 64 << 20,
}

// table2Paper records the published Table 2 for side-by-side reporting.
var table2Paper = map[string][2]float64{
	"mm": {162.712, 559.209}, "kmc": {2.991, 11.726}, "lr": {1.296, 4.085},
	"sio": {1.450, 2.322}, "wo": {11.080, 18.441},
}

// Table2 regenerates the GPMR-vs-Phoenix speedups.
func Table2(o Options) ([]SpeedupRow, error) {
	o = o.withDefaults()
	var rows []SpeedupRow
	for _, b := range []string{"mm", "kmc", "lr", "sio", "wo"} {
		size := table2Inputs[b]
		var base des.Time
		switch b {
		case "mm":
			app, _, _, _ := phoenix.MM(size, 32, o.Seed)
			res, err := phoenix.Run(app, 0)
			if err != nil {
				return nil, err
			}
			base = res.Wall
		case "kmc":
			app, _, _ := phoenix.KMC(size, o.PhysBudget, 32, 4, o.Seed)
			res, err := phoenix.Run(app, 0)
			if err != nil {
				return nil, err
			}
			base = res.Wall
		case "lr":
			app, _ := phoenix.LR(size, o.PhysBudget, o.Seed, 2, 3, 0.5)
			res, err := phoenix.Run(app, 0)
			if err != nil {
				return nil, err
			}
			base = res.Wall
		case "sio":
			app, _ := phoenix.SIO(size, o.PhysBudget, o.Seed)
			res, err := phoenix.Run(app, 0)
			if err != nil {
				return nil, err
			}
			base = res.Wall
		case "wo":
			app, _, _ := phoenix.WO(size, o.PhysBudget, woDict(o), o.Seed)
			res, err := phoenix.Run(app, 0)
			if err != nil {
				return nil, err
			}
			base = res.Wall
		}
		g1, _, err := Run(b, size, 1, o)
		if err != nil {
			return nil, err
		}
		g4, _, err := Run(b, size, 4, o)
		if err != nil {
			return nil, err
		}
		p := table2Paper[b]
		rows = append(rows, SpeedupRow{
			Bench: b, Paper1GPU: p[0], Paper4GPU: p[1],
			Speedup1: float64(base) / float64(g1), Speedup4: float64(base) / float64(g4),
			Baseline: base, GPMR1GPU: g1, GPMR4GPU: g4,
		})
	}
	return rows, nil
}

// table3Inputs: 4096² MM, 8M-point KMC, 512 MB WO — the largest problems
// meeting Mars's in-core requirements (Mars sees the full 4 GB parts).
var table3Inputs = map[string]int64{"mm": 4096, "kmc": 8 << 20, "wo": 512 << 20}

var table3Paper = map[string][2]float64{
	"mm": {2.695, 10.760}, "kmc": {37.344, 129.425}, "wo": {3.098, 11.709},
}

// Table3 regenerates the GPMR-vs-Mars speedups.
func Table3(o Options) ([]SpeedupRow, error) {
	o = o.withDefaults()
	pr := gpu.GT200()
	pr.MemBytes = 4 << 30 // Mars uses the S1070's full memory
	var rows []SpeedupRow
	for _, b := range []string{"mm", "kmc", "wo"} {
		size := table3Inputs[b]
		var base des.Time
		switch b {
		case "mm":
			app, _, _, _ := mars.MM(size, 32, o.Seed)
			res, err := mars.Run(app, pr)
			if err != nil {
				return nil, err
			}
			base = res.Wall
		case "kmc":
			app, _, _, _ := mars.KMC(size, o.PhysBudget, 32, 4, o.Seed)
			res, err := mars.Run(app, pr)
			if err != nil {
				return nil, err
			}
			base = res.Wall
		case "wo":
			app, _, _ := mars.WO(size, o.PhysBudget, woDict(o), o.Seed)
			res, err := mars.Run(app, pr)
			if err != nil {
				return nil, err
			}
			base = res.Wall
		}
		g1, _, err := Run(b, size, 1, o)
		if err != nil {
			return nil, err
		}
		g4, _, err := Run(b, size, 4, o)
		if err != nil {
			return nil, err
		}
		p := table3Paper[b]
		rows = append(rows, SpeedupRow{
			Bench: b, Paper1GPU: p[0], Paper4GPU: p[1],
			Speedup1: float64(base) / float64(g1), Speedup4: float64(base) / float64(g4),
			Baseline: base, GPMR1GPU: g1, GPMR4GPU: g4,
		})
	}
	return rows, nil
}

// RenderSpeedups writes a Table 2/3-style comparison with the paper's
// numbers alongside.
func RenderSpeedups(w io.Writer, title string, rows []SpeedupRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s %14s\n", "bench", "1-GPU", "(paper)", "4-GPU", "(paper)", "baseline wall")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %12.2f %12.2f %12.2f %12.2f %14v\n",
			r.Bench, r.Speedup1, r.Paper1GPU, r.Speedup4, r.Paper4GPU, r.Baseline)
	}
}

// WeakPoint is one weak-scaling measurement.
type WeakPoint struct {
	GPUs       int
	Total      int64
	Wall       des.Time
	Efficiency float64 // t(1) / t(n) with per-GPU work fixed
}

// weakPerGPU holds per-GPU workload sizes from Table 1's second sets
// (a mid-range pick per benchmark).
var weakPerGPU = map[string]int64{
	"sio": 4 << 20, "wo": 32 << 20, "kmc": 4 << 20, "lr": 8 << 20,
}

// Weak runs the weak-scaling experiment the paper describes (second
// dataset sets: elements per GPU held constant).
func Weak(benchName string, o Options) ([]WeakPoint, error) {
	o = o.withDefaults()
	per, ok := weakPerGPU[benchName]
	if !ok {
		return nil, fmt.Errorf("bench: no weak-scaling set for %q", benchName)
	}
	var pts []WeakPoint
	var base des.Time
	for _, g := range o.GPUCounts {
		total := per * int64(g)
		wall, _, err := Run(benchName, total, g, o)
		if err != nil {
			return nil, err
		}
		if g == o.GPUCounts[0] {
			base = wall
		}
		pts = append(pts, WeakPoint{GPUs: g, Total: total, Wall: wall, Efficiency: float64(base) / float64(wall)})
	}
	return pts, nil
}

// RenderWeak writes the weak-scaling table.
func RenderWeak(w io.Writer, benchName string, pts []WeakPoint) {
	fmt.Fprintf(w, "Weak scaling — %s (%d per-GPU elements/bytes)\n", benchName, weakPerGPU[benchName])
	fmt.Fprintf(w, "%6s %14s %14s %12s\n", "GPUs", "total", "wall", "efficiency")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %14d %14v %12.3f\n", p.GPUs, p.Total, p.Wall, p.Efficiency)
	}
}
