package core

import (
	"fmt"
	"strings"

	"repro/internal/des"
)

// RankTrace records one GPU process's stage completion timestamps plus
// bookkeeping counters. The Figure-2 decomposition derives from the
// timestamps: Map is everything until the last map-side work finishes,
// Complete Binning is the shuffle drain that could not overlap with
// mapping, then Sort and Reduce, with the remainder attributed to GPMR
// internals (scheduling, gather, barriers).
type RankTrace struct {
	MapDone     des.Time // last map/accumulate/combine kernel finished
	ShuffleDone des.Time // all partitions received (binning complete)
	SortDone    des.Time
	ReduceDone  des.Time

	ChunksMapped int
	ChunksStolen int   // total chunks this rank stole (local + remote)
	StolenBytes  int64 // total virtual bytes this rank stole
	PairsEmitted int64 // virtual
	PairsReduced int64 // virtual pairs fed to reducers
	OutOfCore    bool  // sort stage spilled

	// Steal provenance: a local steal is an intra-node shift (host-memory
	// copy); a remote steal crosses the node boundary and occupies both
	// endpoints' NICs for the whole transfer.
	LocalSteals       int
	RemoteSteals      int
	LocalStolenBytes  int64
	RemoteStolenBytes int64

	// Communication accounting at the fabric boundary (virtual bytes):
	// every message this rank handed to or received from the fabric,
	// split wire (cross-node) vs local (intra-node shared memory). Steal
	// and recovery re-fetch transfers are charged by the scheduler and
	// tracked by the steal/recovery counters, not here.
	SentWireBytes  int64
	SentLocalBytes int64
	RecvWireBytes  int64
	RecvLocalBytes int64

	// Fault state, set by the injection plan (internal/fault).
	Failed   bool
	FailedAt des.Time
	Derated  float64 // straggler factor (0 = nominal)

	// Recovery: re-executions of a failed rank's lost chunks that this
	// rank ran, their input re-fetch traffic, and — on the failed rank
	// itself — the partition-handoff bytes its surviving host process
	// re-sent to the successor.
	ChunksRecovered int
	RecoveredBytes  int64
	RelayBytes      int64

	// Speculation: backup copies this rank launched, how many delivered
	// first, chunk executions whose output was discarded because a twin
	// delivered first, copies abandoned before mapping, and duplicate
	// shuffle deliveries dropped by this rank's receiver (defense in
	// depth; the win/lose protocol makes duplicates unreachable).
	SpecLaunched  int
	SpecWon       int
	ChunksWasted  int
	ChunksSkipped int
	DupDropped    int
}

// Add accumulates o's timestamps and counters into t. It exists to fold
// multi-job benchmarks (MM's two passes) into one reported trace.
func (t *RankTrace) Add(o RankTrace) {
	t.MapDone += o.MapDone
	t.ShuffleDone += o.ShuffleDone
	t.SortDone += o.SortDone
	t.ReduceDone += o.ReduceDone
	t.ChunksMapped += o.ChunksMapped
	t.ChunksStolen += o.ChunksStolen
	t.StolenBytes += o.StolenBytes
	t.PairsEmitted += o.PairsEmitted
	t.PairsReduced += o.PairsReduced
	t.OutOfCore = t.OutOfCore || o.OutOfCore
	t.LocalSteals += o.LocalSteals
	t.RemoteSteals += o.RemoteSteals
	t.LocalStolenBytes += o.LocalStolenBytes
	t.RemoteStolenBytes += o.RemoteStolenBytes
	t.SentWireBytes += o.SentWireBytes
	t.SentLocalBytes += o.SentLocalBytes
	t.RecvWireBytes += o.RecvWireBytes
	t.RecvLocalBytes += o.RecvLocalBytes
	t.Failed = t.Failed || o.Failed
	if o.FailedAt > t.FailedAt {
		t.FailedAt = o.FailedAt
	}
	if o.Derated > t.Derated {
		t.Derated = o.Derated
	}
	t.ChunksRecovered += o.ChunksRecovered
	t.RecoveredBytes += o.RecoveredBytes
	t.RelayBytes += o.RelayBytes
	t.SpecLaunched += o.SpecLaunched
	t.SpecWon += o.SpecWon
	t.ChunksWasted += o.ChunksWasted
	t.ChunksSkipped += o.ChunksSkipped
	t.DupDropped += o.DupDropped
}

// Trace aggregates a job's timing.
type Trace struct {
	Name  string
	GPUs  int
	Wall  des.Time
	Ranks []RankTrace

	// WireBytes is total cross-node virtual bytes; LocalBytes intra-node.
	WireBytes  int64
	LocalBytes int64

	// Preempted marks a launch that was asked to quiesce
	// (Scheduled.PreemptLaunch) and drained early; its output is partial
	// and must be discarded — the job-level scheduler requeues the job
	// for a restart from scratch.
	Preempted bool
}

// StealStats aggregates chunk-shift provenance across a job's ranks.
type StealStats struct {
	LocalSteals  int
	RemoteSteals int
	LocalBytes   int64
	RemoteBytes  int64
}

// Total is the combined steal count.
func (s StealStats) Total() int { return s.LocalSteals + s.RemoteSteals }

// Steals sums the per-rank steal provenance counters.
func (t *Trace) Steals() StealStats {
	var s StealStats
	for _, r := range t.Ranks {
		s.LocalSteals += r.LocalSteals
		s.RemoteSteals += r.RemoteSteals
		s.LocalBytes += r.LocalStolenBytes
		s.RemoteBytes += r.RemoteStolenBytes
	}
	return s
}

// RecoveryStats aggregates fault recovery and speculation across ranks.
type RecoveryStats struct {
	FailedRanks     int
	DeratedRanks    int
	ChunksRecovered int   // lost chunks re-executed by survivors
	RecoveredBytes  int64 // input re-fetch traffic for those
	RelayBytes      int64 // partition-handoff traffic from failed ranks
	SpecLaunched    int
	SpecWon         int
	ChunksWasted    int
	ChunksSkipped   int
	DupDropped      int
}

// Active reports whether any fault, recovery, or speculation happened.
func (r RecoveryStats) Active() bool {
	return r.FailedRanks > 0 || r.DeratedRanks > 0 || r.ChunksRecovered > 0 || r.SpecLaunched > 0
}

// Recovery sums the per-rank fault recovery and speculation counters.
func (t *Trace) Recovery() RecoveryStats {
	var s RecoveryStats
	for _, r := range t.Ranks {
		if r.Failed {
			s.FailedRanks++
		}
		if r.Derated > 1 {
			s.DeratedRanks++
		}
		s.ChunksRecovered += r.ChunksRecovered
		s.RecoveredBytes += r.RecoveredBytes
		s.RelayBytes += r.RelayBytes
		s.SpecLaunched += r.SpecLaunched
		s.SpecWon += r.SpecWon
		s.ChunksWasted += r.ChunksWasted
		s.ChunksSkipped += r.ChunksSkipped
		s.DupDropped += r.DupDropped
	}
	return s
}

// Breakdown is a Figure-2-style runtime decomposition, in fractions of the
// wall time (summing to 1).
type Breakdown struct {
	Map             float64
	CompleteBinning float64
	Sort            float64
	Reduce          float64
	Internal        float64
}

// Breakdown averages the per-rank stage decomposition.
func (t *Trace) Breakdown() Breakdown {
	if t.Wall <= 0 || len(t.Ranks) == 0 {
		return Breakdown{}
	}
	var b Breakdown
	w := float64(t.Wall)
	for _, r := range t.Ranks {
		m := clampT(r.MapDone)
		sh := maxT(r.ShuffleDone, m)
		so := maxT(r.SortDone, sh)
		re := maxT(r.ReduceDone, so)
		b.Map += float64(m) / w
		b.CompleteBinning += float64(sh-m) / w
		b.Sort += float64(so-sh) / w
		b.Reduce += float64(re-so) / w
		b.Internal += float64(t.Wall-re) / w
	}
	n := float64(len(t.Ranks))
	b.Map /= n
	b.CompleteBinning /= n
	b.Sort /= n
	b.Reduce /= n
	b.Internal /= n
	return b
}

func clampT(t des.Time) des.Time {
	if t < 0 {
		return 0
	}
	return t
}

func maxT(a, b des.Time) des.Time {
	if a > b {
		return a
	}
	return b
}

// String renders a compact human-readable summary: the stage breakdown,
// fabric totals, steal provenance, per-rank communication accounting, and
// — when faults were injected — the recovery and speculation counters.
func (t *Trace) String() string {
	b := t.Breakdown()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d GPU(s), wall %v\n", t.Name, t.GPUs, t.Wall)
	fmt.Fprintf(&sb, "  map %.1f%%  bin %.1f%%  sort %.1f%%  reduce %.1f%%  internal %.1f%%\n",
		b.Map*100, b.CompleteBinning*100, b.Sort*100, b.Reduce*100, b.Internal*100)
	fmt.Fprintf(&sb, "  wire %.1f MB  local %.1f MB", float64(t.WireBytes)/1e6, float64(t.LocalBytes)/1e6)
	if st := t.Steals(); st.Total() > 0 {
		fmt.Fprintf(&sb, "\n  steals %d local (%.1f MB) / %d remote (%.1f MB)",
			st.LocalSteals, float64(st.LocalBytes)/1e6,
			st.RemoteSteals, float64(st.RemoteBytes)/1e6)
	}
	for r := range t.Ranks {
		rt := &t.Ranks[r]
		fmt.Fprintf(&sb, "\n  comm r%d: sent %.1f MB wire / %.1f MB local, recv %.1f / %.1f",
			r, float64(rt.SentWireBytes)/1e6, float64(rt.SentLocalBytes)/1e6,
			float64(rt.RecvWireBytes)/1e6, float64(rt.RecvLocalBytes)/1e6)
		if rt.Failed {
			fmt.Fprintf(&sb, "  [FAILED @%v]", rt.FailedAt)
		}
		if rt.Derated > 1 {
			fmt.Fprintf(&sb, "  [straggler x%.3g]", rt.Derated)
		}
		if rt.ChunksRecovered > 0 {
			fmt.Fprintf(&sb, "  [recovered %d chunks, %.1f MB]", rt.ChunksRecovered, float64(rt.RecoveredBytes)/1e6)
		}
		if rt.RelayBytes > 0 {
			fmt.Fprintf(&sb, "  [relayed %.1f MB]", float64(rt.RelayBytes)/1e6)
		}
	}
	if rec := t.Recovery(); rec.Active() {
		fmt.Fprintf(&sb, "\n  faults: %d failed, %d derated; recovery %d chunks re-executed (%.1f MB refetch, %.1f MB relay)",
			rec.FailedRanks, rec.DeratedRanks, rec.ChunksRecovered,
			float64(rec.RecoveredBytes)/1e6, float64(rec.RelayBytes)/1e6)
		if rec.SpecLaunched > 0 || rec.ChunksWasted > 0 || rec.ChunksSkipped > 0 {
			fmt.Fprintf(&sb, "\n  speculation: %d launched, %d won, %d wasted, %d skipped, %d dups dropped",
				rec.SpecLaunched, rec.SpecWon, rec.ChunksWasted, rec.ChunksSkipped, rec.DupDropped)
		}
	}
	return sb.String()
}
