package serve

import (
	"fmt"
	"sort"

	"repro/internal/apps/kmc"
	"repro/internal/apps/sio"
	"repro/internal/apps/wo"
	"repro/internal/core"
)

// Params are a submission's job parameters: a flat integer map, because
// every knob the catalog exposes is a count, a size, or a seed. The shape
// is deliberate — integer params marshal canonically (JSON object keys
// sort), so the recorded arrival trace is byte-stable and a replayed build
// sees exactly the submitted values.
type Params map[string]int64

// get reads a parameter with a default.
func (p Params) get(key string, def int64) int64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// ranged reads a parameter with a default, rejecting values outside
// lo..hi. Builders use it for every size-like knob: a tenant-supplied
// value reaches job construction on the engine goroutine, where an
// unchecked non-positive size (or an absurd one) would panic or exhaust
// the host instead of rejecting the one submission.
func (p Params) ranged(key string, def, lo, hi int64) (int64, error) {
	v := p.get(key, def)
	if v < lo || v > hi {
		return 0, fmt.Errorf("serve: parameter %q = %d outside %d..%d", key, v, lo, hi)
	}
	return v, nil
}

// Builder constructs one runnable job from submitted parameters. name is
// the unique job name the service assigned (it appears in cluster traces
// and deadlock diagnostics); implementations must set it on the job's
// Config and must build deterministically — same name and params, same
// job, byte for byte. That determinism is what makes the arrival trace a
// complete record of a live run.
type Builder struct {
	// Desc is a one-line description for service introspection.
	Desc string
	// Keys is the full set of accepted parameter names; submissions using
	// any other key are rejected before they reach the cluster.
	Keys []string
	// Build constructs the job.
	Build func(name string, p Params) (core.Runnable, error)
}

// Catalog maps submission kinds to job builders. A service accepts only
// catalogued kinds: the catalog is both the API surface tenants see and
// the replay guarantee (a trace can be re-run anywhere the same catalog
// exists).
type Catalog struct {
	phys     int
	builders map[string]Builder
}

// NewCatalog returns an empty catalog whose jobs materialize at most phys
// physical elements each (the usual fidelity/wall-clock trade; see
// bench.Options.PhysBudget). phys <= 0 defaults to 1<<16.
func NewCatalog(phys int) *Catalog {
	if phys <= 0 {
		phys = 1 << 16
	}
	return &Catalog{phys: phys, builders: make(map[string]Builder)}
}

// PhysBudget returns the per-job physical element cap.
func (c *Catalog) PhysBudget() int { return c.phys }

// Register adds a kind. Registering an existing kind replaces it.
func (c *Catalog) Register(kind string, b Builder) { c.builders[kind] = b }

// Kinds lists the registered kinds, sorted.
func (c *Catalog) Kinds() []string {
	ks := make([]string, 0, len(c.builders))
	for k := range c.builders {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Describe returns a kind's one-line description and accepted keys.
func (c *Catalog) Describe(kind string) (Builder, bool) {
	b, ok := c.builders[kind]
	return b, ok
}

// Build constructs the job for one submission, validating the kind and
// every parameter key first.
func (c *Catalog) Build(kind, name string, p Params) (core.Runnable, error) {
	b, ok := c.builders[kind]
	if !ok {
		return nil, fmt.Errorf("serve: unknown job kind %q (have %v)", kind, c.Kinds())
	}
	allowed := make(map[string]bool, len(b.Keys))
	for _, k := range b.Keys {
		allowed[k] = true
	}
	// Sorted key order so the rejection reason — which lands in the
	// replay-diffed report — never depends on map iteration order.
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !allowed[k] {
			return nil, fmt.Errorf("serve: kind %q does not accept parameter %q (accepts %v)", kind, k, b.Keys)
		}
	}
	return b.Build(name, p)
}

// DefaultCatalog serves the three streaming benchmarks that make sense as
// ad-hoc queries: word-occurrence counts, one k-means iteration, and the
// sparse-integer scan. (MM and LR are excluded: their inputs are dense
// matrices a submission could not meaningfully parameterize by size alone.)
func DefaultCatalog(phys int) *Catalog {
	c := NewCatalog(phys)
	// maxData bounds any virtual dataset size: large enough for paper-scale
	// runs (1 TB), small enough that chunk lists stay addressable.
	const maxData = 1 << 40
	c.Register("wo", Builder{
		Desc: "word-occurrence count over a seeded corpus",
		Keys: []string{"bytes", "gpus", "seed", "dict"},
		Build: func(name string, p Params) (core.Runnable, error) {
			bytes, err := p.ranged("bytes", 4<<20, 1, maxData)
			if err != nil {
				return nil, err
			}
			gpus, err := p.ranged("gpus", 2, 1, 4096)
			if err != nil {
				return nil, err
			}
			dict, err := p.ranged("dict", 2048, 1, 1<<24)
			if err != nil {
				return nil, err
			}
			b := wo.NewJob(wo.Params{
				Bytes:    bytes,
				GPUs:     int(gpus),
				Seed:     uint64(p.get("seed", 1)),
				PhysMax:  c.phys,
				DictSize: int(dict),
			})
			b.Job.Config.Name = name
			return &core.Scheduled[uint32]{Job: b.Job}, nil
		},
	})
	c.Register("kmc", Builder{
		Desc: "one k-means clustering iteration over seeded points",
		Keys: []string{"points", "gpus", "seed", "centers"},
		Build: func(name string, p Params) (core.Runnable, error) {
			points, err := p.ranged("points", 4<<20, 1, maxData)
			if err != nil {
				return nil, err
			}
			gpus, err := p.ranged("gpus", 2, 1, 4096)
			if err != nil {
				return nil, err
			}
			centers, err := p.ranged("centers", 0, 0, 1<<20) // 0 = default
			if err != nil {
				return nil, err
			}
			b := kmc.NewJob(kmc.Params{
				Points:  points,
				GPUs:    int(gpus),
				Seed:    uint64(p.get("seed", 1)),
				Centers: int(centers),
				PhysMax: c.phys,
			})
			b.Job.Config.Name = name
			return &core.Scheduled[float64]{Job: b.Job}, nil
		},
	})
	c.Register("sio", Builder{
		Desc: "sparse-integer occurrence scan",
		Keys: []string{"elements", "gpus", "seed", "chunkcap"},
		Build: func(name string, p Params) (core.Runnable, error) {
			elements, err := p.ranged("elements", 8<<20, 1, maxData)
			if err != nil {
				return nil, err
			}
			gpus, err := p.ranged("gpus", 4, 1, 4096)
			if err != nil {
				return nil, err
			}
			chunkcap, err := p.ranged("chunkcap", 0, 0, maxData) // 0 = default
			if err != nil {
				return nil, err
			}
			job, _ := sio.NewJob(sio.Params{
				Elements: elements,
				GPUs:     int(gpus),
				Seed:     uint64(p.get("seed", 1)),
				PhysMax:  c.phys,
				ChunkCap: chunkcap,
			})
			job.Config.Name = name
			return &core.Scheduled[uint32]{Job: job}, nil
		},
	})
	return c
}
