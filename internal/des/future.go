package des

import "fmt"

// FuturePanic is the value Join re-panics when host work failed: it names
// the future (the kernel) and carries the worker's original panic value,
// so a recover() upstream can still match the underlying cause by type or
// value while the engine's report stays kernel-labeled.
type FuturePanic struct {
	Future string
	Value  any
}

// String renders the kernel-labeled report the engine's process-panic
// path prints via %v.
func (p FuturePanic) String() string {
	return fmt.Sprintf("future %q panicked: %v", p.Future, p.Value)
}

// Future is the engine's join primitive for host work that runs OUTSIDE
// the simulation: a functional closure dispatched to a real worker
// goroutine while the simulated process that issued it sleeps through the
// work's modeled duration. A Future carries no simulated time — Complete
// and Fail happen in host time on the worker, and Join blocks the owning
// process's OS goroutine (never the simulation clock) until the result is
// in. Because no engine interaction happens between dispatch and join, the
// DES event schedule is bit-identical whether the work ran inline or on a
// worker; only host wall-clock changes.
//
// Protocol:
//
//   - The worker calls exactly one of Complete or Fail, exactly once.
//   - A simulated process calls Join before depending on the work's
//     effects — at the latest when the simulated operation that covers
//     the work completes. Join re-panics a Fail value in the joining
//     process, so the engine's normal panic report names the process
//     that launched the work.
//   - Every future must be joined before the engine shuts down: Run
//     panics on leaked futures, naming them. An unjoined future means
//     host work whose effects the simulation never ordered — a
//     correctness bug, not a cleanup detail.
type Future struct {
	eng  *Engine
	name string
	done chan struct{}
	pnc  any
}

// NewFuture registers a join obligation with the engine and returns the
// handle the worker completes and the owning process joins. It must be
// called from the engine's owning goroutine or a running process (like
// all engine state, the open-future set is engine-serialized).
func (e *Engine) NewFuture(name string) *Future {
	f := &Future{eng: e, name: name, done: make(chan struct{})}
	e.openFutures[f] = struct{}{}
	return f
}

// OpenFutures reports how many futures have been created but not joined.
func (e *Engine) OpenFutures() int { return len(e.openFutures) }

// Name returns the label given at creation (typically the kernel name).
func (f *Future) Name() string { return f.name }

// Complete marks the work finished. Called from the worker goroutine; the
// channel close publishes every write the worker made to the joiner.
func (f *Future) Complete() { close(f.done) }

// Fail records a panic value recovered from the work and completes the
// future; Join re-panics it in the joining process.
func (f *Future) Fail(pnc any) {
	f.pnc = pnc
	close(f.done)
}

// Join blocks the calling process's goroutine until the future completes,
// discharges the engine's join obligation, and re-panics any Fail value
// wrapped in a FuturePanic (preserving the worker's original panic value
// for upstream recover() matching). It must be called from a process of
// the owning engine (the open-future set is engine-serialized state).
func (f *Future) Join() {
	<-f.done
	delete(f.eng.openFutures, f)
	if f.pnc != nil {
		panic(FuturePanic{Future: f.name, Value: f.pnc})
	}
}
