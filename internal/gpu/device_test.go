package gpu

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func testDevice(eng *des.Engine) *Device {
	link := des.NewResource(eng, "pcie", 1)
	return NewDevice(eng, 0, GT200(), link, PCIeGen1x16())
}

func TestKernelCostComputeBound(t *testing.T) {
	pr := GT200()
	spec := KernelSpec{
		Name:           "mm-tile",
		Threads:        pr.MaxResidentThreads,
		FlopsPerThread: 1e6,
		BytesRead:      1024,
	}
	got := spec.Cost(pr)
	wantSec := float64(spec.Threads) * spec.FlopsPerThread / pr.SustainedFlops
	want := pr.LaunchOverhead + des.FromSeconds(wantSec)
	if got != want {
		t.Errorf("compute-bound cost %v, want %v", got, want)
	}
}

func TestKernelCostMemoryBound(t *testing.T) {
	pr := GT200()
	spec := KernelSpec{
		Name:         "streaming",
		Threads:      pr.MaxResidentThreads,
		BytesRead:    1 << 30,
		BytesWritten: 1 << 30,
	}
	got := spec.Cost(pr)
	want := pr.LaunchOverhead + des.FromSeconds(float64(2<<30)/pr.MemBandwidth)
	if got != want {
		t.Errorf("memory-bound cost %v, want %v", got, want)
	}
}

func TestKernelCostUncoalescedPenalty(t *testing.T) {
	pr := GT200()
	co := KernelSpec{Threads: pr.MaxResidentThreads, BytesRead: 1 << 26}.Cost(pr)
	unco := KernelSpec{Threads: pr.MaxResidentThreads, UncoalescedBytes: 1 << 26}.Cost(pr)
	ratio := float64(unco-pr.LaunchOverhead) / float64(co-pr.LaunchOverhead)
	if ratio < pr.UncoalescedPenalty*0.99 || ratio > pr.UncoalescedPenalty*1.01 {
		t.Errorf("uncoalesced ratio %.2f, want ~%.0f", ratio, pr.UncoalescedPenalty)
	}
}

func TestKernelCostSmallLaunchLosesThroughput(t *testing.T) {
	pr := GT200()
	full := KernelSpec{Threads: pr.MaxResidentThreads, FlopsPerThread: 1000}.Cost(pr)
	tiny := KernelSpec{Threads: 32, FlopsPerThread: 1000}.Cost(pr)
	// 32 threads do 1/960 the work of a full launch but should take roughly
	// as long, because they cannot fill the machine.
	if tiny < (full-pr.LaunchOverhead)/2 {
		t.Errorf("tiny launch %v unrealistically fast vs full %v", tiny, full)
	}
}

func TestKernelCostAtomicsAdditive(t *testing.T) {
	pr := GT200()
	base := KernelSpec{Threads: 1024, FlopsPerThread: 10}.Cost(pr)
	withAtomics := KernelSpec{Threads: 1024, FlopsPerThread: 10, Atomics: 6e6, AtomicConflict: 2}.Cost(pr)
	wantExtra := des.FromSeconds(6e6 * 2 / pr.AtomicThroughput)
	extra := withAtomics - base
	if extra < wantExtra*99/100 || extra > wantExtra*101/100 {
		t.Errorf("atomic surcharge %v, want ~%v", extra, wantExtra)
	}
}

func TestKernelCostZeroThreads(t *testing.T) {
	pr := GT200()
	if got := (KernelSpec{}).Cost(pr); got != pr.LaunchOverhead {
		t.Errorf("empty kernel cost %v, want launch overhead %v", got, pr.LaunchOverhead)
	}
}

func TestAllocAccounting(t *testing.T) {
	eng := des.NewEngine()
	d := testDevice(eng)
	a := d.MustAlloc("a", 400<<20, nil)
	if d.MemUsed() != 400<<20 {
		t.Fatalf("used %d", d.MemUsed())
	}
	b, err := d.Alloc("b", 700<<20, nil)
	if err == nil {
		t.Fatalf("expected OOM, got buffer %v", b)
	}
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("error type %T", err)
	}
	if oom.Free != d.MemFree() {
		t.Errorf("oom.Free=%d, MemFree=%d", oom.Free, d.MemFree())
	}
	a.Free()
	if d.MemUsed() != 0 {
		t.Errorf("after free used=%d", d.MemUsed())
	}
	if d.MemPeak() != 400<<20 {
		t.Errorf("peak %d", d.MemPeak())
	}
}

func TestBufferResize(t *testing.T) {
	eng := des.NewEngine()
	d := testDevice(eng)
	b := d.MustAlloc("b", 100, nil)
	if err := b.Resize(500); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 500 {
		t.Errorf("used %d after grow", d.MemUsed())
	}
	if err := b.Resize(50); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 50 {
		t.Errorf("used %d after shrink", d.MemUsed())
	}
	if err := b.Resize(d.MemBytes + 1); err == nil {
		t.Error("expected OOM on oversize resize")
	}
	b.Free()
}

func TestDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	eng := des.NewEngine()
	d := testDevice(eng)
	b := d.MustAlloc("b", 10, nil)
	b.Free()
	b.Free()
}

func TestLaunchOccupiesComputeEngine(t *testing.T) {
	eng := des.NewEngine()
	d := testDevice(eng)
	spec := KernelSpec{Threads: d.MaxResidentThreads, FlopsPerThread: 1e5}
	single := spec.Cost(d.Props)
	var end des.Time
	for i := 0; i < 2; i++ {
		eng.Spawn("launcher", func(p *des.Proc) {
			d.Launch(p, spec, nil)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	eng.Run()
	if end != 2*single {
		t.Errorf("two kernels on one engine ended at %v, want %v", end, 2*single)
	}
}

func TestCopyOverlapsCompute(t *testing.T) {
	eng := des.NewEngine()
	d := testDevice(eng)
	kernel := KernelSpec{Threads: d.MaxResidentThreads, FlopsPerThread: 1e5}
	kcost := kernel.Cost(d.Props)
	copyBytes := int64(float64(kcost.Seconds()) * 3.2e9) // sized to match kernel time
	var kEnd, cEnd des.Time
	eng.Spawn("compute", func(p *des.Proc) {
		d.Launch(p, kernel, nil)
		kEnd = p.Now()
	})
	eng.Spawn("copy", func(p *des.Proc) {
		d.CopyToDevice(p, copyBytes, nil)
		cEnd = p.Now()
	})
	total := eng.Run()
	serial := kEnd + cEnd
	if total >= serial {
		t.Errorf("no overlap: total %v, serialized %v", total, serial)
	}
}

func TestTwoCopiesSerializeOnOneEngine(t *testing.T) {
	eng := des.NewEngine()
	d := testDevice(eng)
	one := d.pcieLat + des.FromSeconds(float64(64<<20)/3.2e9)
	var last des.Time
	for i := 0; i < 2; i++ {
		eng.Spawn("cp", func(p *des.Proc) {
			d.CopyToHost(p, 64<<20, nil)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.Run()
	if last != 2*one {
		t.Errorf("two copies ended at %v, want %v", last, 2*one)
	}
}

func TestSharedPCIeLinkContention(t *testing.T) {
	eng := des.NewEngine()
	link := des.NewResource(eng, "pcie", 1)
	d0 := NewDevice(eng, 0, GT200(), link, PCIeGen1x16())
	d1 := NewDevice(eng, 1, GT200(), link, PCIeGen1x16())
	var end des.Time
	for _, d := range []*Device{d0, d1} {
		dev := d
		eng.Spawn("cp", func(p *des.Proc) {
			dev.CopyToDevice(p, 64<<20, nil)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	eng.Run()
	one := PCIeGen1x16().Latency + des.FromSeconds(float64(64<<20)/3.2e9)
	if end != 2*one {
		t.Errorf("shared-link copies ended at %v, want serialized %v", end, 2*one)
	}
}

func TestLaunchRunsFunctionalWork(t *testing.T) {
	eng := des.NewEngine()
	d := testDevice(eng)
	data := make([]int, 8)
	eng.Spawn("k", func(p *des.Proc) {
		d.Launch(p, KernelSpec{Name: "fill", Threads: 8}, func() {
			for i := range data {
				data[i] = i * i
			}
		})
	})
	eng.Run()
	for i, v := range data {
		if v != i*i {
			t.Fatalf("data[%d]=%d", i, v)
		}
	}
}

// Property: kernel cost is monotone in each work dimension.
func TestPropertyKernelCostMonotone(t *testing.T) {
	pr := GT200()
	f := func(th uint32, fl, rd, wr, unc uint32) bool {
		base := KernelSpec{
			Threads:          int64(th%1_000_000) + 1,
			FlopsPerThread:   float64(fl % 10_000),
			BytesRead:        float64(rd),
			BytesWritten:     float64(wr),
			UncoalescedBytes: float64(unc),
		}
		c0 := base.Cost(pr)
		more := base
		more.FlopsPerThread += 1000
		more.BytesRead += 1 << 20
		more.UncoalescedBytes += 1 << 20
		return more.Cost(pr) >= c0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: alloc/free leaves accounting balanced.
func TestPropertyAllocFreeBalanced(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := des.NewEngine()
		d := testDevice(eng)
		var bufs []*Buffer
		for _, s := range sizes {
			b, err := d.Alloc("x", int64(s), nil)
			if err != nil {
				continue
			}
			bufs = append(bufs, b)
		}
		for _, b := range bufs {
			b.Free()
		}
		return d.MemUsed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
