package bench

import (
	"fmt"
	"io"

	"repro/internal/apps/sio"
	"repro/internal/core"
	"repro/internal/des"
)

// ImbalanceGPUs is the cluster shape for the chunk-imbalance scenario:
// eight ranks packed four per node (the paper's testbed shape), so half
// the ranks sit across a node boundary from the other half.
const ImbalanceGPUs = 8

// ImbalanceRow reports one steal policy's behaviour on the skewed
// placement: job makespan, fabric traffic split cross-node vs intra-node,
// and steal provenance.
type ImbalanceRow struct {
	Policy            string
	Wall              des.Time
	WireBytes         int64 // cross-node fabric traffic (Fabric.BytesSent)
	LocalBytes        int64 // intra-node (shared-memory) traffic
	LocalSteals       int
	RemoteSteals      int
	LocalStolenBytes  int64
	RemoteStolenBytes int64
}

// Imbalance runs the chunk-imbalance scenario once per steal policy. The
// initial placement is skewed: every chunk starts on its node's first
// rank (ranks 0 and 4), so three of four ranks per node starve and must
// steal. Under StealGlobal starved ranks regularly pick the other node's
// fullest queue even though an equally full queue sits on their own node,
// holding both NICs for each shifted chunk; StealLocalFirst keeps those
// shifts on-node, which this scenario quantifies as lower cross-node
// BytesSent at equal work.
func Imbalance(o Options) ([]ImbalanceRow, error) {
	o = o.withDefaults()
	var rows []ImbalanceRow
	for _, policy := range []core.StealPolicy{core.StealGlobal, core.StealLocalFirst} {
		job, _ := sio.NewJob(sio.Params{
			Elements: 32 << 20,
			GPUs:     ImbalanceGPUs,
			Seed:     o.Seed,
			PhysMax:  o.PhysBudget,
			ChunkCap: 1 << 20, // many small chunks: plenty of steal events
		})
		job.Config.StealPolicy = policy
		job.Config.Workers = o.Workers
		job.Assign = func(chunk int) int { return (chunk % 2) * 4 }
		res, err := job.Run()
		if err != nil {
			return nil, err
		}
		st := res.Trace.Steals()
		rows = append(rows, ImbalanceRow{
			Policy:            policy.String(),
			Wall:              res.Trace.Wall,
			WireBytes:         res.Trace.WireBytes,
			LocalBytes:        res.Trace.LocalBytes,
			LocalSteals:       st.LocalSteals,
			RemoteSteals:      st.RemoteSteals,
			LocalStolenBytes:  st.LocalBytes,
			RemoteStolenBytes: st.RemoteBytes,
		})
	}
	return rows, nil
}

// RenderImbalance writes the policy comparison table.
func RenderImbalance(w io.Writer, rows []ImbalanceRow) {
	fmt.Fprintf(w, "Chunk imbalance — steal policies on a skewed placement (%d GPUs, 4 per node)\n", ImbalanceGPUs)
	fmt.Fprintf(w, "%-12s %14s %10s %10s %8s %8s %12s %12s\n",
		"policy", "makespan", "wire MB", "local MB", "lsteals", "rsteals", "lstolen MB", "rstolen MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %14v %10.1f %10.1f %8d %8d %12.1f %12.1f\n",
			r.Policy, r.Wall, float64(r.WireBytes)/1e6, float64(r.LocalBytes)/1e6,
			r.LocalSteals, r.RemoteSteals,
			float64(r.LocalStolenBytes)/1e6, float64(r.RemoteStolenBytes)/1e6)
	}
}
