// Command gpmrloc regenerates Table 4: benchmark source-line counts for
// the MM, KMC, and WO implementations under each framework (our Go
// implementations, with the paper's C++/CUDA counts alongside).
//
// Usage:
//
//	gpmrloc [repo root]
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	rows, err := bench.Table4(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmrloc: %v\n", err)
		os.Exit(1)
	}
	bench.RenderTable4(os.Stdout, rows)
}
