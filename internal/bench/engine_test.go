package bench

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/apps/sio"
	"repro/internal/fault"
	"repro/internal/serve"
)

// shardPoints are the engine configurations the differential matrix pits
// against each other: 0 (the legacy single event loop — the reference
// semantics), 1 (a one-shard ShardSet — isolates the coordinator round
// protocol with no cross-shard traffic), 2 (real cross-shard posts), and
// -1 (one shard per node plus the hub, the widest decomposition).
func shardPoints() []int { return []int{0, 1, 2, -1} }

func shardPointName(shards int) string {
	switch {
	case shards == 0:
		return "legacy"
	case shards < 0:
		return "per-node"
	default:
		return fmt.Sprintf("shards(%d)", shards)
	}
}

// TestShardDifferentialMatrix is the engine-layer counterpart of
// TestBackendDifferentialMatrix: every app at 1, 4, and 8 GPUs must
// produce byte-identical results and identical golden traces whether the
// simulation runs on the legacy single engine or as a sharded set.
// Exclusive jobs always collapse to one shard, so this pins the ShardSet
// round protocol (coordinator loop, injection drain, future checks)
// against the plain Engine.Run loop.
func TestShardDifferentialMatrix(t *testing.T) {
	for _, app := range diffApps {
		t.Run(app.name, func(t *testing.T) {
			for _, gpus := range []int{1, 4, 8} {
				var want backendRun
				for _, shards := range shardPoints() {
					got := app.run(t, gpus, 0, shards)
					if len(got.result) == 0 {
						t.Fatalf("%d GPUs, %s: empty result", gpus, shardPointName(shards))
					}
					if shards == 0 {
						want = got
						continue
					}
					if !bytes.Equal(got.result, want.result) {
						t.Errorf("%d GPUs: %s result bytes diverge from legacy engine", gpus, shardPointName(shards))
					}
					if got.trace != want.trace {
						t.Errorf("%d GPUs: %s golden trace diverges from legacy engine:\n--- legacy\n%s\n--- %s\n%s",
							gpus, shardPointName(shards), want.trace, shardPointName(shards), got.trace)
					}
				}
			}
		})
	}
}

// TestShardDifferentialFaults reruns the fault-injection scenario (a
// fail-stop mid-map plus a derated straggler with speculation) across
// shard counts: recovery requeues, relays, and twin races must be
// schedule-identical under the sharded coordinator.
func TestShardDifferentialFaults(t *testing.T) {
	run := func(shards int) backendRun {
		job, _ := sio.NewJob(sio.Params{Elements: 8 << 20, GPUs: 8, Seed: 2, PhysMax: 1 << 13, ChunkCap: 1 << 20})
		job.Config.GatherOutput = true
		job.Config.Shards = shards
		job.Config.Speculate = true
		job.Config.Faults = &fault.Plan{Events: []fault.Event{
			fault.FailAfterChunks(2, 2),
			fault.SlowdownAfterChunks(5, 1, 8),
		}}
		res := job.MustRun()
		return backendRun{result: canonBytes(t, res.PerRank), trace: res.Trace.String()}
	}
	want := run(0)
	for _, shards := range shardPoints()[1:] {
		got := run(shards)
		if !bytes.Equal(got.result, want.result) {
			t.Errorf("%s fault-run result bytes diverge from legacy engine", shardPointName(shards))
		}
		if got.trace != want.trace {
			t.Errorf("%s fault-run golden trace diverges from legacy engine:\n--- legacy\n%s\n--- got\n%s",
				shardPointName(shards), want.trace, got.trace)
		}
	}
}

// TestShardDifferentialMultijob is where sharding actually changes the
// execution shape: concurrent tenants run on different engine goroutines,
// launches and completions cross shard boundaries as ordered posts, and
// gangs lease whole nodes. Unlike exclusive runs, the sharded scheduler's
// schedule legitimately differs from the legacy engine's (launch and
// completion latencies become modeled posts, gangs lease whole nodes), so
// the invariant here is SHARD-COUNT invariance: every shard count >= 1,
// crossed with both kernel backends, must reproduce the one-shard serial
// traces byte-for-byte. Pooled kernels under per-node shards is the
// maximally concurrent configuration the engine supports.
func TestShardDifferentialMultijob(t *testing.T) {
	run := func(workers, shards int) string {
		_, traces, err := Multijob(Options{PhysBudget: 4096, Seed: 1, Workers: workers, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var all bytes.Buffer
		for _, ct := range traces {
			all.WriteString(ct.String())
			all.WriteByte('\n')
		}
		return all.String()
	}
	want := run(0, 1)
	for _, workers := range []int{0, -1} {
		for _, shards := range shardPoints()[1:] {
			if workers == 0 && shards == 1 {
				continue
			}
			if got := run(workers, shards); got != want {
				t.Errorf("workers=%d %s multijob cluster traces diverge from one-shard serial:\n--- shards(1)\n%s\n--- got\n%s",
					workers, shardPointName(shards), want, got)
			}
		}
	}
}

// TestShardDifferentialReplay closes the matrix at the serving layer: the
// same recorded arrival trace replayed through serve at every shard count
// must produce an identical full report (cluster trace, admission
// counters, per-tenant stats, job table). This covers the injector-fed
// session path rather than sched.Run's pre-batched one. As with
// multijob, the baseline is the one-shard set, not the legacy engine:
// the sharded scheduler's modeled launch/done latencies shift the
// schedule, but never differently for different shard counts.
func TestShardDifferentialReplay(t *testing.T) {
	o := Options{PhysBudget: 4096, Seed: 1}.withDefaults()
	evs := onlineStream(o, 8)
	h := serve.Header{
		Version:     serve.TraceVersion,
		Policy:      "weighted-fair",
		GPUs:        OnlineGPUs,
		GPUsPerNode: 4,
		MaxQueue:    OnlineMaxQueue,
		Quota:       OnlineQuota,
		PhysBudget:  o.PhysBudget,
	}
	run := func(shards int) string {
		rep, err := serve.Replay(&serve.Trace{Header: h, Events: evs}, serve.ReplayOptions{Shards: shards})
		if err != nil {
			t.Fatalf("%s replay: %v", shardPointName(shards), err)
		}
		return rep.String()
	}
	want := run(1)
	for _, shards := range []int{2, -1} {
		if got := run(shards); got != want {
			t.Errorf("%s replay report diverges from the one-shard set:\n--- shards(1)\n%s\n--- got\n%s",
				shardPointName(shards), want, got)
		}
	}
}
