package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/keyval"
)

// OutputDigester is the optional face of a Runnable whose completed output
// can be summarized as one canonical 64-bit digest. The online serving
// layer records digests in its arrival trace so a replayed run can prove
// byte-identical job outputs without shipping the outputs themselves.
type OutputDigester interface {
	// OutputDigest returns the canonical digest of the job's final
	// output, and false while the job has not completed.
	OutputDigest() (uint64, bool)
}

// Digest canonically hashes a completed job's output: the gathered pairs
// (when GatherOutput was set) followed by every reduce partition's final
// pairs, in partition order. Keys hash as little-endian uint32; values
// hash through fmt's %v — deterministic for every value type the apps use
// (integers verbatim, floats via strconv's shortest round-trip form).
// Two Results digest equal iff keyval.Equal holds slot for slot.
func (r *Result[V]) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(r.PerRank)))
	h.Write(buf[:4])
	digestPairs(h.Write, &r.Output)
	for i := range r.PerRank {
		digestPairs(h.Write, &r.PerRank[i])
	}
	return h.Sum64()
}

// digestPairs feeds one pair list into the hash with length framing, so
// pair boundaries cannot alias across lists.
func digestPairs[V any](write func([]byte) (int, error), p *keyval.Pairs[V]) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Len()))
	write(buf[:])
	for i, k := range p.Keys {
		binary.LittleEndian.PutUint32(buf[:4], k)
		write(buf[:4])
		v := fmt.Sprintf("%v", p.Vals[i])
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(v)))
		write(buf[:4])
		write([]byte(v))
	}
}

// OutputDigest implements OutputDigester for a scheduled job.
func (s *Scheduled[V]) OutputDigest() (uint64, bool) {
	if s.Result == nil {
		return 0, false
	}
	return s.Result.Digest(), true
}

// OutputRenderer is the optional face of a Runnable whose completed
// output can be rendered as canonical text — the serving layer's
// output-retrieval endpoint uses it so a fleet router can proxy results
// without the shard retaining live Result structures.
type OutputRenderer interface {
	// RenderOutput writes the job's final output as canonical text, and
	// fails while the job has not completed.
	RenderOutput(w io.Writer) error
}

// RenderOutput implements OutputRenderer for a scheduled job: one line
// per pair, gathered output first, then every reduce partition in
// partition order — the same canonical ordering Digest hashes. Values
// render through fmt's %v, exactly as they digest, so two jobs render
// identical text iff their digests match.
func (s *Scheduled[V]) RenderOutput(w io.Writer) error {
	if s.Result == nil {
		return fmt.Errorf("core: job %q has no result to render", s.Job.Config.Name)
	}
	bw := bufio.NewWriter(w)
	writePairs := func(label string, p *keyval.Pairs[V]) {
		for i, k := range p.Keys {
			fmt.Fprintf(bw, "%s %d %v\n", label, k, p.Vals[i])
		}
	}
	writePairs("out", &s.Result.Output)
	for i := range s.Result.PerRank {
		writePairs(fmt.Sprintf("r%d", i), &s.Result.PerRank[i])
	}
	return bw.Flush()
}
