package core

import (
	"fmt"

	"repro/internal/cudpp"
	"repro/internal/des"
	"repro/internal/gpu"
	"repro/internal/keyval"
	"repro/internal/obs"
)

// Message tags on the fabric.
const (
	tagPairs = "pairs"
	tagEnd   = "end"
	tagOut   = "out"
	// tagFault tells a rank's own reduce loop that its GPU just died, so
	// its surviving host process hands its partition state to the
	// successor (see recovery.go).
	tagFault = "fault"
	// tagRelayDone marks the end of a failed rank's relay stream; the
	// successor must not close its shuffle before receiving it.
	tagRelayDone = "relaydone"
)

// endMsgBytes is the virtual size of an end-of-stream control message.
const endMsgBytes = 64

// shufMsg is one shuffle delivery: chunk identifies the producing map
// chunk (-1 for the non-chunked Accumulation/Combine paths) and part the
// destination reduce partition — together the exactly-once key that lets
// receivers drop duplicate deliveries from speculative twins.
type shufMsg[V any] struct {
	chunk int
	part  int
	pairs *keyval.Pairs[V]
}

// outMsg carries one reduce partition's final pairs to rank 0 during the
// gather; partition identity survives reassignment to a successor rank.
type outMsg[V any] struct {
	part  int
	pairs *keyval.Pairs[V]
}

// binKind discriminates messages from the map process to the bin process.
type binKind int

const (
	binBuckets  binKind = iota // partitioned pairs: D2H, stage, send
	binToHost                  // combine staging: D2H into host memory
	binEndMaps                 // all maps complete (fires combine phase)
	binFinalEnd                // no more data: broadcast end markers
)

type binMsg[V any] struct {
	kind      binKind
	buckets   []keyval.Pairs[V]
	buf       *gpu.Buffer // device emit buffer to release after D2H
	virtBytes int64       // D2H transfer size
	pairs     *keyval.Pairs[V]
	chunk     int  // producing chunk index (-1 for non-chunked paths)
	spec      bool // output of a speculative backup copy
}

type loadedChunk struct {
	chunk       Chunk
	buf         *gpu.Buffer
	idx         int
	speculative bool
}

// rankState wires one GPU process's sub-processes together.
type rankState[V any] struct {
	rt     *runtime[V]
	rank   int
	dev    *gpu.Device
	tr     *RankTrace
	stream string // flight-recorder stream: "<job>/r<rank>"

	loadedQ      *des.Queue
	binQ         *des.Queue
	slots        *des.Resource
	emitSlots    *des.Resource // bounds device emit buffers awaiting D2H
	mctx         *MapContext[V]
	hostCombine  keyval.Pairs[V]
	combineReady *des.Signal

	recvd    []shufMsg[V]    // accepted shuffle deliveries, arrival order
	seen     map[[2]int]bool // (chunk, part) exactly-once guard
	shuffle  keyval.Pairs[V] // partition being sorted/reduced
	sortedIn bool            // sorted pairs resident on device (in-core path)
	devPairs *gpu.Buffer
}

func (rt *runtime[V]) spawnRank(eng *des.Engine, rank int) {
	st := &rankState[V]{
		rt:        rt,
		rank:      rank,
		dev:       rt.g.dev(rank),
		tr:        &rt.traces[rank],
		stream:    fmt.Sprintf("%s/r%d", rt.cfg.Name, rank),
		loadedQ:   des.NewQueue(eng, rt.procName(fmt.Sprintf("r%d.loaded", rank))),
		binQ:      des.NewQueue(eng, rt.procName(fmt.Sprintf("r%d.bin", rank))),
		slots:     des.NewResource(eng, rt.procName(fmt.Sprintf("r%d.slots", rank)), rt.cfg.PipelineDepth),
		emitSlots: des.NewResource(eng, rt.procName(fmt.Sprintf("r%d.emitslots", rank)), rt.cfg.PipelineDepth),
		seen:      make(map[[2]int]bool),
	}
	st.mctx = &MapContext[V]{
		Rank:       rank,
		NumRanks:   rt.cfg.GPUs,
		Dev:        st.dev,
		VirtFactor: rt.cfg.VirtFactor,
	}
	if rt.job.Combiner != nil {
		st.combineReady = des.NewSignal(eng)
	}
	rt.spawn(eng, rt.procName(fmt.Sprintf("r%d.loader", rank)), st.loaderProc)
	rt.spawn(eng, rt.procName(fmt.Sprintf("r%d.map", rank)), st.mapProc)
	rt.spawn(eng, rt.procName(fmt.Sprintf("r%d.bin", rank)), st.binProc)
	rt.spawn(eng, rt.procName(fmt.Sprintf("r%d.reduce", rank)), st.reduceProc)
}

// dead reports whether this rank's GPU has fail-stopped.
func (st *rankState[V]) dead() bool { return st.rt.ft.failed[st.rank] }

// send transmits over the fabric, recording per-rank sent-byte provenance
// (wire vs intra-node) in the trace.
func (st *rankState[V]) send(p *des.Proc, to int, tag string, virtBytes int64, payload any) {
	if st.rt.g.sameNode(st.rank, to) {
		st.tr.SentLocalBytes += virtBytes
	} else {
		st.tr.SentWireBytes += virtBytes
	}
	st.rt.g.send(p, st.rank, to, tag, virtBytes, payload)
}

// countRecv records received-byte provenance for one delivery.
func (st *rankState[V]) countRecv(from int, virtBytes int64) {
	if st.rt.g.sameNode(from, st.rank) {
		st.tr.RecvLocalBytes += virtBytes
	} else {
		st.tr.RecvWireBytes += virtBytes
	}
}

// loaderProc streams chunks onto the GPU, overlapping the H2D copy of the
// next chunk with the map of the current one (bounded by PipelineDepth).
func (st *rankState[V]) loaderProc(p *des.Proc) {
	if st.rt.cfg.Startup > 0 {
		p.Sleep(st.rt.cfg.Startup)
	}
	for {
		a, ok := st.rt.sched.next(p, st.rank)
		if !ok {
			st.loadedQ.Put(loadedChunk{})
			return
		}
		chunk := a.chunk
		r := st.rt.obs
		switch {
		case a.speculative:
			st.tr.SpecLaunched++
			if r.Enabled() {
				r.Emit(int64(p.Now()), obs.CatSim, st.stream, "spec.launch",
					obs.Int("chunk", int64(a.idx)))
			}
		case a.recoveredFrom >= 0:
			st.tr.ChunksRecovered++
			st.tr.RecoveredBytes += chunk.VirtBytes()
			if r.Enabled() {
				r.Emit(int64(p.Now()), obs.CatSim, st.stream, "recover",
					obs.Int("from", int64(a.recoveredFrom)), obs.Int("bytes", chunk.VirtBytes()))
			}
		case a.stolenFrom >= 0:
			st.tr.ChunksStolen++
			st.tr.StolenBytes += chunk.VirtBytes()
			if st.rt.g.sameNode(a.stolenFrom, st.rank) {
				st.tr.LocalSteals++
				st.tr.LocalStolenBytes += chunk.VirtBytes()
			} else {
				st.tr.RemoteSteals++
				st.tr.RemoteStolenBytes += chunk.VirtBytes()
			}
			if r.Enabled() {
				r.Emit(int64(p.Now()), obs.CatSim, st.stream, "steal",
					obs.Int("from", int64(a.stolenFrom)), obs.Int("bytes", chunk.VirtBytes()))
			}
		}
		st.slots.Acquire(p, 1)
		buf := st.dev.MustAlloc("chunk", chunk.VirtBytes(), nil)
		st.dev.CopyToDevice(p, chunk.VirtBytes(), nil)
		st.loadedQ.Put(loadedChunk{chunk: chunk, buf: buf, idx: a.idx, speculative: a.speculative})
	}
}

// mapProc runs the Map substages for each chunk, then the Accumulation or
// Combination tail, and finally tells the bin process to flush.
func (st *rankState[V]) mapProc(p *des.Proc) {
	rt := st.rt
	st.mctx.Proc = p
	for {
		item := st.loadedQ.Get(p).(loadedChunk)
		if item.chunk == nil {
			break
		}
		if st.dead() {
			// The GPU is gone; the scheduler already requeued this chunk
			// for re-execution by a survivor.
			item.buf.Free()
			st.slots.Release(1)
			continue
		}
		if rt.resilient() && rt.sched.isDone(item.idx) {
			// A twin copy already delivered this chunk: abandon it unmapped.
			st.tr.ChunksSkipped++
			item.buf.Free()
			st.slots.Release(1)
			continue
		}
		st.mctx.out.Reset()
		rt.job.Mapper.Map(st.mctx, item.chunk)
		st.tr.ChunksMapped++
		rt.afterChunk(p, st.rank, st.tr.ChunksMapped)
		if st.dead() {
			// A chunk-count trigger just killed this GPU: the chunk's
			// freshly mapped output dies in device memory with it.
			st.mctx.out.Reset()
			item.buf.Free()
			st.slots.Release(1)
			continue
		}
		if rt.job.PartialReducer != nil {
			rt.job.PartialReducer.PartialReduce(st.mctx, &st.mctx.out)
		}
		item.buf.Free()
		st.slots.Release(1)
		if rt.cfg.Accumulate {
			if st.mctx.out.Len() != 0 {
				panic("core: Accumulate job emitted pairs; fold into Resident() instead")
			}
			continue
		}
		out := st.takeEmitted()
		if rt.job.Combiner != nil {
			st.stageToHost(p, out)
			continue
		}
		st.partitionAndBin(p, out, item.idx, item.speculative)
	}

	if rt.cfg.Accumulate {
		res := st.mctx.resident
		st.mctx.resident = keyval.Pairs[V]{}
		st.tr.PairsEmitted += res.VirtLen()
		st.partitionAndBin(p, res, -1, false)
	}
	if rt.job.Combiner != nil {
		st.binQ.Put(binMsg[V]{kind: binEndMaps})
		st.combineReady.Wait(p)
		st.combineTail(p)
	}
	st.tr.MapDone = p.Now() - rt.start
	st.binQ.Put(binMsg[V]{kind: binFinalEnd})
}

// takeEmitted moves the context's emission buffer out, counting it.
func (st *rankState[V]) takeEmitted() keyval.Pairs[V] {
	out := st.mctx.out
	st.mctx.out = keyval.Pairs[V]{}
	st.tr.PairsEmitted += out.VirtLen()
	return out
}

// stageToHost queues one chunk's pairs for D2H staging into host memory
// (the Combiner path: pairs wait in CPU memory until all maps finish).
func (st *rankState[V]) stageToHost(p *des.Proc, out keyval.Pairs[V]) {
	vb := out.VirtBytes(st.rt.cfg.ValBytes)
	st.emitSlots.Acquire(p, 1)
	buf := st.dev.MustAlloc("emit", vb, nil)
	pr := out
	st.binQ.Put(binMsg[V]{kind: binToHost, buf: buf, virtBytes: vb, pairs: &pr})
}

// partitionAndBin runs the Partition substage on the GPU and hands the
// buckets to the bin process, tagged with the producing chunk for the
// exactly-once delivery protocol.
func (st *rankState[V]) partitionAndBin(p *des.Proc, out keyval.Pairs[V], chunkIdx int, spec bool) {
	rt := st.rt
	n := rt.cfg.GPUs
	vb := out.VirtBytes(rt.cfg.ValBytes)
	if out.Len() == 0 && out.VirtLen() == 0 {
		// Nothing to partition: skip the kernel (it would launch with zero
		// threads) and hand the bin process empty buckets so it still sees
		// one message per chunk.
		st.binQ.Put(binMsg[V]{kind: binBuckets, buckets: make([]keyval.Pairs[V], n), chunk: chunkIdx, spec: spec})
		return
	}
	var buckets []keyval.Pairs[V]
	if rt.job.Partitioner == nil || n == 1 {
		// Omitted Partition: all pairs to a single reducer, no kernel.
		buckets = make([]keyval.Pairs[V], n)
		buckets[0] = out
	} else {
		part := rt.job.Partitioner
		// The partition kernel's parallelism tracks the bytes it moves
		// (large values are scattered by many threads), not the pair count.
		threads := out.VirtLen()
		if minT := vb / 64; threads < minT {
			threads = minT
		}
		spec := gpu.KernelSpec{
			Name:             "gpmr.partition",
			Threads:          threads,
			FlopsPerThread:   4,
			BytesRead:        float64(vb),
			BytesWritten:     float64(vb) / 2,
			UncoalescedBytes: float64(vb) / 2, // bucket scatter
		}
		// Explicit input/output: the closure reads only the moved-out pair
		// buffer (this proc owns it; the context's emit buffer was already
		// replaced) and writes only the local buckets slice read after the
		// kernel joins. Partitioner.Rank is pure by contract.
		st.dev.Launch(p, spec, func() {
			buckets = out.Bucket(n, func(k uint32) int { return part.Rank(k, n) })
		})
	}
	st.emitSlots.Acquire(p, 1)
	buf := st.dev.MustAlloc("emit", vb, nil)
	st.binQ.Put(binMsg[V]{kind: binBuckets, buckets: buckets, buf: buf, virtBytes: vb, chunk: chunkIdx, spec: spec})
}

// combineTail streams the host-staged pairs back through the GPU in
// in-core pieces, sorts and groups each piece, runs the Combiner, and
// partitions the combined output (executed once, after all maps — the
// GPMR Combine semantics).
func (st *rankState[V]) combineTail(p *des.Proc) {
	rt := st.rt
	all := st.hostCombine
	st.hostCombine = keyval.Pairs[V]{}
	if all.Len() == 0 {
		return
	}
	valBytes := rt.cfg.ValBytes
	totalVirt := all.VirtLen()
	// Piece size: a quarter of free memory, so a piece plus its
	// equal-sized sort scratch stays within half of free memory even
	// after integer rounding — the same sizing sortStage uses for its
	// external-sort runs.
	pieceVirtBytes := st.dev.MemFree() / 4
	pairVirtBytes := 4 + valBytes
	pieceVirtPairs := pieceVirtBytes / pairVirtBytes
	if pieceVirtPairs < 1 {
		pieceVirtPairs = 1
	}
	pieces := int((totalVirt + pieceVirtPairs - 1) / pieceVirtPairs)
	if pieces < 1 {
		pieces = 1
	}
	physPer := (all.Len() + pieces - 1) / pieces
	if physPer < 1 {
		physPer = 1
	}
	for start := 0; start < all.Len(); start += physPer {
		end := start + physPer
		if end > all.Len() {
			end = all.Len()
		}
		piece := keyval.Pairs[V]{
			Keys: all.Keys[start:end],
			Vals: all.Vals[start:end],
			Virt: totalVirt * int64(end-start) / int64(all.Len()),
		}
		vb := piece.VirtBytes(valBytes)
		buf := st.dev.MustAlloc("combine", vb*2, nil) // data + sort scratch
		st.dev.CopyToDevice(p, vb, nil)
		st.dev.LaunchForNamed(p, "gpmr.combine.sort", rt.sorter.SortCost(st.dev.Props, piece.VirtLen(), valBytes), func() {
			cudpp.SortPairs(piece.Keys, piece.Vals)
		})
		var segs []cudpp.Segment
		st.dev.LaunchForNamed(p, "gpmr.combine.segments", cudpp.SegmentsCost(st.dev.Props, piece.VirtLen()), func() {
			segs = cudpp.Segments(piece.Keys)
		})
		st.mctx.out.Reset()
		rt.job.Combiner.Combine(st.mctx, piece.Keys, segs, piece.Vals)
		out := st.takeEmitted()
		buf.Free()
		st.partitionAndBin(p, out, -1, false)
	}
}

// binProc is the CPU-side Bin substage: it drains device emit buffers over
// PCIe, stages them with a CPU core, and transmits each reducer's bucket
// with one send — all overlapped with the map process unless the job uses
// Accumulation or a Combiner.
//
// In resilient mode, dequeuing a binBuckets message is a chunk's commit
// point: from here the host process owns the staged data and delivers
// every bucket exactly once (to the partition owners current at each
// send), even if the GPU dies mid-drain. Messages still queued when the
// GPU fails represent emit buffers lost in device memory — they are
// discarded and the scheduler's requeue covers their re-execution.
func (st *rankState[V]) binProc(p *des.Proc) {
	rt := st.rt
	node := rt.g.node(st.rank)
	valBytes := rt.cfg.ValBytes
	for {
		msg := st.binQ.Get(p).(binMsg[V])
		switch msg.kind {
		case binToHost:
			st.dev.CopyToHost(p, msg.virtBytes, nil)
			msg.buf.Free()
			st.emitSlots.Release(1)
			st.hostCombine.AppendPairs(msg.pairs)
		case binBuckets:
			if st.dead() {
				if msg.buf != nil {
					msg.buf.Free()
					st.emitSlots.Release(1)
				}
				break
			}
			if msg.buf != nil {
				if !rt.cfg.GPUDirect {
					st.dev.CopyToHost(p, msg.virtBytes, nil)
				}
				msg.buf.Free()
				st.emitSlots.Release(1)
			}
			if rt.resilient() && msg.chunk >= 0 {
				if !rt.sched.complete(msg.chunk, st.rank) {
					// A twin copy delivered first: discard this output.
					st.tr.ChunksWasted++
					break
				}
				if msg.spec {
					st.tr.SpecWon++
				}
			}
			for dst := range msg.buckets {
				b := &msg.buckets[dst]
				if b.Len() == 0 && b.VirtLen() == 0 {
					continue
				}
				bb := b.VirtBytes(valBytes)
				if !rt.cfg.GPUDirect {
					node.CPUTime(p, 1, des.FromSeconds(float64(bb)/node.Props.MemcpyPerCore))
				}
				payload := *b
				st.send(p, rt.ownerOf(dst), tagPairs, bb, &shufMsg[V]{chunk: msg.chunk, part: dst, pairs: &payload})
			}
		case binEndMaps:
			if st.combineReady != nil {
				st.combineReady.Fire()
			}
		case binFinalEnd:
			for dst := 0; dst < rt.cfg.GPUs; dst++ {
				st.send(p, dst, tagEnd, endMsgBytes, nil)
			}
			return
		}
	}
}

// acceptShuffle records one delivery, dropping duplicates from
// speculative twins (the (chunk, partition) key is unique per delivery).
func (st *rankState[V]) acceptShuffle(sm *shufMsg[V]) {
	if st.rt.resilient() && sm.chunk >= 0 {
		k := [2]int{sm.chunk, sm.part}
		if st.seen[k] {
			st.tr.DupDropped++
			return
		}
		st.seen[k] = true
	}
	st.recvd = append(st.recvd, *sm)
}

// relay forwards one shuffle delivery to its partition's current owner —
// the failed rank's host process acting as a proxy for in-flight and
// handed-off traffic.
func (st *rankState[V]) relay(p *des.Proc, sm *shufMsg[V]) {
	bytes := sm.pairs.VirtBytes(st.rt.cfg.ValBytes)
	st.tr.RelayBytes += bytes
	st.send(p, st.rt.ft.owner[sm.part], tagPairs, bytes, sm)
}

// handoff ships everything this now-failed rank had accepted for its
// partitions to their new owner. The GPU is gone but received shuffle
// pairs live in host memory until Sort, so they move over the fabric once
// instead of being re-executed.
func (st *rankState[V]) handoff(p *des.Proc) {
	for i := range st.recvd {
		st.relay(p, &st.recvd[i])
	}
	st.recvd = nil
}

// reduceProc receives this rank's shuffle partitions, runs Sort (in-core
// on the GPU when it fits, external with host merge when it does not),
// then the chunked Reduce, and finally participates in the output gather.
// A rank whose GPU failed keeps the loop alive as a host-side proxy:
// deliveries for reassigned partitions are relayed to their new owner,
// and the loop still terminates on the usual end markers (every host
// process sends them, dead GPU or not).
func (st *rankState[V]) reduceProc(p *des.Proc) {
	defer st.drainStaleControl()
	rt := st.rt
	n := rt.cfg.GPUs
	ends := 0
	for ends < n || rt.ft.relayDone[st.rank] < rt.ft.pendingRelay[st.rank] {
		msg := rt.g.recv(p, st.rank)
		st.countRecv(msg.From, msg.VirtBytes)
		switch msg.Tag {
		case tagPairs:
			sm := msg.Payload.(*shufMsg[V])
			if st.dead() && rt.ft.owner[sm.part] != st.rank {
				st.relay(p, sm)
				break
			}
			st.acceptShuffle(sm)
		case tagEnd:
			ends++
		case tagOut:
			om := msg.Payload.(*outMsg[V])
			rt.gather[om.part] = om.pairs
		case tagFault:
			st.handoff(p)
		case tagRelayDone:
			// Addressed to this rank as a failure's direct successor;
			// counts even if this rank died later — its own exit marker
			// summarizes everything its proxy loop forwarded meanwhile.
			rt.ft.relayDone[st.rank]++
		}
	}
	rt.ft.closed[st.rank] = true
	st.tr.ShuffleDone = p.Now() - rt.start

	if st.dead() && len(rt.partitionsOf(st.rank)) == 0 {
		// Ensure the handoff ran: when the failure fired with the final
		// end marker already queued ahead of the tagFault notification,
		// the loop drained the ends and exited without ever dequeuing it
		// — the accepted pairs must still reach the successor. (No-op if
		// tagFault was processed normally; recvd is already nil then.)
		st.handoff(p)
		// Every sender has ended and every relay stream owed to this
		// rank has terminated, so nothing more can arrive to forward:
		// close this rank's own relay stream for its direct successor.
		st.tr.RelayBytes += endMsgBytes
		st.send(p, rt.ft.relayTo[st.rank], tagRelayDone, endMsgBytes, nil)
		st.tr.SortDone = p.Now() - rt.start
		st.tr.ReduceDone = p.Now() - rt.start
		st.emitPhases()
		st.gatherPhase(p)
		return
	}

	if rt.cfg.DisableSort {
		for _, part := range rt.partitionsOf(st.rank) {
			rt.outs[part] = st.mergedPartition(part)
		}
		st.tr.SortDone = p.Now() - rt.start
		st.tr.ReduceDone = p.Now() - rt.start
		st.emitPhases()
		st.gatherPhase(p)
		return
	}

	for _, part := range rt.partitionsOf(st.rank) {
		st.shuffle = st.mergedPartition(part)
		segs := st.sortStage(p)
		st.tr.SortDone = p.Now() - rt.start
		st.reduceStage(p, segs, part)
		st.tr.ReduceDone = p.Now() - rt.start
		if st.devPairs != nil {
			st.devPairs.Free()
			st.devPairs = nil
		}
	}
	st.recvd = nil
	st.emitPhases()
	st.gatherPhase(p)
}

// emitPhases records the rank's four pipeline phases as flight-recorder
// spans, reconstructed from the RankTrace's cumulative phase stamps. It
// runs once per rank, at the end of reduceProc — MapDone is guaranteed
// set by then (the rank's own end marker is sent after the assignment),
// and emitting all spans from one point keeps the per-stream order
// trivially deterministic.
func (st *rankState[V]) emitPhases() {
	r := st.rt.obs
	if !r.Enabled() {
		return
	}
	base := int64(st.rt.start)
	r.Span(base, base+int64(st.tr.MapDone), obs.CatSim, st.stream, "phase.map",
		obs.Int("chunks", int64(st.tr.ChunksMapped)))
	r.Span(base+int64(st.tr.MapDone), base+int64(st.tr.ShuffleDone), obs.CatSim, st.stream, "phase.shuffle")
	r.Span(base+int64(st.tr.ShuffleDone), base+int64(st.tr.SortDone), obs.CatSim, st.stream, "phase.sort")
	r.Span(base+int64(st.tr.SortDone), base+int64(st.tr.ReduceDone), obs.CatSim, st.stream, "phase.reduce")
}

// drainStaleControl empties leftover fault-control messages from this
// rank's inbox as its receive loop ends. A time-triggered fail-stop can
// land after the rank's final end markers were already queued, leaving
// its tagFault undequeued (the post-loop handoff compensates for the
// missed processing). On a shared cluster the inbox belongs to the
// *global* rank and outlives the job — a leftover control message must
// not leak into the next tenant's shuffle. Anything other than control
// traffic still pending here is a protocol violation and panics.
func (st *rankState[V]) drainStaleControl() {
	for st.rt.g.pending(st.rank) > 0 {
		msg, _ := st.rt.g.tryRecv(st.rank)
		switch msg.Tag {
		case tagFault, tagRelayDone:
			st.countRecv(msg.From, msg.VirtBytes)
		default:
			panic("core: non-control message left in inbox at job end: " + msg.Tag)
		}
	}
}

// mergedPartition concatenates this rank's accepted deliveries for one
// partition in arrival order — exactly what the pipeline built by
// appending on receipt before partitions could be reassigned.
func (st *rankState[V]) mergedPartition(part int) keyval.Pairs[V] {
	var out keyval.Pairs[V]
	for i := range st.recvd {
		if st.recvd[i].part == part {
			out.AppendPairs(st.recvd[i].pairs)
		}
	}
	return out
}

// sortStage sorts the received pairs. In-core: one H2D, device radix sort,
// segment extraction — the data stays resident for Reduce. Out-of-core:
// device-sorted runs are staged back to the host and merged there with a
// CPU core, and Reduce later re-uploads each chunk (this extra PCIe
// traffic is what the paper's in-core crossover buys back).
func (st *rankState[V]) sortStage(p *des.Proc) []cudpp.Segment {
	rt := st.rt
	valBytes := rt.cfg.ValBytes
	virtN := st.shuffle.VirtLen()
	if st.shuffle.Len() == 0 {
		return nil
	}
	bytes := st.shuffle.VirtBytes(valBytes)
	node := rt.g.node(st.rank)
	if 2*bytes <= st.dev.MemFree() {
		st.devPairs = st.dev.MustAlloc("sorted", 2*bytes, nil)
		st.dev.CopyToDevice(p, bytes, nil)
		// Kernel closures take explicit inputs (locals bound here) rather
		// than reaching through st: on a pooled backend they run
		// concurrently with every other simulated process, and the
		// explicit binding makes the ownership handoff auditable — these
		// slices are this partition's private merge buffer until the
		// closure joins.
		keys, vals := st.shuffle.Keys, st.shuffle.Vals
		st.dev.LaunchForNamed(p, "gpmr.sort", rt.sorter.SortCost(st.dev.Props, virtN, valBytes), func() {
			cudpp.SortPairs(keys, vals)
		})
		var segs []cudpp.Segment
		st.dev.LaunchForNamed(p, "gpmr.segments", cudpp.SegmentsCost(st.dev.Props, virtN), func() {
			segs = cudpp.Segments(keys)
		})
		st.sortedIn = true
		return segs
	}

	// External sort: split into in-core runs. Runs target a quarter of
	// free memory so that a run plus its sort scratch always fits even
	// after the integer rounding of the physical/virtual split.
	st.tr.OutOfCore = true
	runBytes := st.dev.MemFree() / 4
	if runBytes < 1 {
		runBytes = 1
	}
	runs := int((bytes + runBytes - 1) / runBytes)
	if runs < 2 {
		runs = 2
	}
	physPer := (st.shuffle.Len() + runs - 1) / runs
	for start := 0; start < st.shuffle.Len(); start += physPer {
		end := start + physPer
		if end > st.shuffle.Len() {
			end = st.shuffle.Len()
		}
		runVirt := virtN * int64(end-start) / int64(st.shuffle.Len())
		rb := runVirt * (4 + valBytes)
		buf := st.dev.MustAlloc("sortrun", rb*2, nil)
		st.dev.CopyToDevice(p, rb, nil)
		st.dev.LaunchFor(p, rt.sorter.SortCost(st.dev.Props, runVirt, valBytes), nil)
		st.dev.CopyToHost(p, rb, nil)
		buf.Free()
	}
	// Host k-way merge: one CPU core streams all pairs in and out once.
	node.CPUTime(p, 1, des.FromSeconds(2*float64(bytes)/node.Props.HostMemBW))
	var segs []cudpp.Segment
	cudpp.SortPairs(st.shuffle.Keys, st.shuffle.Vals) // functional equivalent of run-merge
	segs = cudpp.Segments(st.shuffle.Keys)
	st.sortedIn = false
	return segs
}

// reduceStage runs the user's Reducer over the sorted pairs in value-set
// chunks sized by the ChunkValueSets callback, writing the output under
// the partition's identity (stable across owner reassignment).
func (st *rankState[V]) reduceStage(p *des.Proc, segs []cudpp.Segment, part int) {
	rt := st.rt
	if rt.job.Reducer == nil {
		rt.outs[part] = st.shuffle
		return
	}
	if len(segs) == 0 {
		return
	}
	valBytes := rt.cfg.ValBytes
	virtN := st.shuffle.VirtLen()
	totalPhys := st.shuffle.Len()
	rctx := &ReduceContext[V]{
		Rank:       st.rank,
		NumRanks:   rt.cfg.GPUs,
		Dev:        st.dev,
		Proc:       p,
		VirtFactor: rt.cfg.VirtFactor,
	}
	idx := 0
	for idx < len(segs) {
		rem := segs[idx:]
		physRem := totalPhys - segs[idx].Start
		virtRem := virtN * int64(physRem) / int64(totalPhys)
		take := rt.job.Reducer.ChunkValueSets(len(rem), virtRem, st.dev.MemFree())
		if take < 1 {
			take = 1
		}
		if take > len(rem) {
			take = len(rem)
		}
		chunkSegs := rem[:take]
		last := chunkSegs[take-1]
		physPairs := last.Start + last.Count - chunkSegs[0].Start
		virtShare := virtN * int64(physPairs) / int64(totalPhys)
		if !st.sortedIn {
			// Out-of-core: stage this chunk's value sets onto the GPU.
			st.dev.CopyToDevice(p, virtShare*(4+valBytes), nil)
		}
		rctx.out.Reset()
		rt.job.Reducer.Reduce(rctx, st.shuffle.Keys, chunkSegs, st.shuffle.Vals)
		out := rctx.out
		rctx.out = keyval.Pairs[V]{}
		st.tr.PairsReduced += virtShare
		if out.Len() > 0 || out.VirtLen() > 0 {
			st.dev.CopyToHost(p, out.VirtBytes(valBytes), nil)
			rt.outs[part].AppendPairs(&out)
		}
		idx += take
	}
}

// gatherPhase ships every partition's output to rank 0 when configured.
// Each rank sends one message per partition it owns, so a reassigned
// partition still arrives under its own identity and the gathered output
// concatenates in partition order regardless of failures.
func (st *rankState[V]) gatherPhase(p *des.Proc) {
	rt := st.rt
	if !rt.cfg.GatherOutput || rt.cfg.GPUs == 1 {
		return
	}
	if st.rank != 0 {
		for _, part := range rt.partitionsOf(st.rank) {
			out := &rt.outs[part]
			st.send(p, 0, tagOut, out.VirtBytes(rt.cfg.ValBytes), &outMsg[V]{part: part, pairs: out})
		}
		return
	}
	expect := 0
	for part := 0; part < rt.cfg.GPUs; part++ {
		if rt.ft.owner[part] != 0 {
			expect++
		}
	}
	have := 0
	for _, g := range rt.gather {
		if g != nil {
			have++
		}
	}
	for have < expect {
		msg := rt.g.recv(p, 0)
		st.countRecv(msg.From, msg.VirtBytes)
		switch msg.Tag {
		case tagOut:
			om := msg.Payload.(*outMsg[V])
			rt.gather[om.part] = om.pairs
			have++
		case tagFault, tagRelayDone:
			// Stale control traffic from a post-shuffle injection; ignore.
		default:
			panic("core: unexpected message during gather: " + msg.Tag)
		}
	}
}
