// Command gpmrfleet is the fleet front door: a router that federates
// many gpmrd shards behind one HTTP API. Tenants are consistent-hashed
// onto shards (bounded-load variant); shards are health-checked and a
// lost shard's unfinished jobs are re-admitted onto survivors; queued
// jobs are stolen away from skewed shards.
//
// Live mode fronts running gpmrd daemons:
//
//	gpmrd -addr :8401 -trace s0.jsonl &
//	gpmrd -addr :8402 -trace s1.jsonl &
//	gpmrfleet -addr :8400 -shard s0=http://127.0.0.1:8401 -shard s1=http://127.0.0.1:8402
//
// Endpoints (see fleet.NewHandler): the gpmrd job API, plus GET /shards
// for ring membership and POST /drain, which drains every shard and
// answers with the merged fleet report. On SIGINT/SIGTERM or /drain the
// router shuts down gracefully and prints that merged report to stdout.
//
// Replay mode reproduces it offline from the shards' arrival traces:
//
//	gpmrfleet -replay tracedir/
//
// replays every *.jsonl shard trace through the offline path and prints
// a byte-identical merged report — the fleet smoke test diffs the two.
//
// Causal tracing: every submission is stamped with a trace ID (the
// fleet tag, unless the submitter set one), the router records its own
// decisions (route, retry, reroute, failover, steal, shard state
// transitions) into a flight recorder saved via -obs, and GET /timeline
// serves the live stitched fleet timeline — router lanes plus every
// shard's flight recording. Offline,
//
//	gpmrfleet -replay tracedir/ -timeline
//
// rebuilds the identical timeline from the shard traces plus the saved
// router.obs — byte for byte, the smoke test diffs that too.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/serve"
)

// shardFlags collects repeated -shard id=url flags.
type shardFlags []fleet.Shard

func (s *shardFlags) String() string {
	parts := make([]string, len(*s))
	for i, sh := range *s {
		parts[i] = sh.ID + "=" + sh.URL
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*s = append(*s, fleet.Shard{ID: id, URL: url})
	return nil
}

func main() {
	var shards shardFlags
	flag.Var(&shards, "shard", "shard as id=url (repeatable)")
	addr := flag.String("addr", "127.0.0.1:8400", "HTTP listen address")
	replicas := flag.Int("replicas", 0, "ring virtual nodes per shard (0 = default)")
	loadFactor := flag.Float64("load-factor", 0, "bounded-load factor c (0 = default 1.25, negative = plain hashing)")
	probe := flag.Duration("probe", 500*time.Millisecond, "shard health-check interval")
	failAfter := flag.Int("fail-after", 3, "consecutive probe failures before a shard is down")
	skew := flag.Int("skew", 0, "queue-depth skew that triggers a rebalance steal (0 = default 4, negative = off)")
	replayDir := flag.String("replay", "", "replay every shard trace (*.jsonl) in this directory and print the merged report")
	workers := flag.Int("workers", 0, "replay kernel-execution workers (see gpmrbench -workers)")
	engineShards := flag.Int("engine-shards", 0, "replay DES engine shards (see gpmrbench -shards)")
	obsPath := flag.String("obs", "", "write the router's own flight recording (JSONL) here at exit")
	timeline := flag.String("timeline", "", "with -replay: write the stitched fleet timeline (Chrome trace JSON) here instead of the report ('-' = stdout)")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "graceful HTTP shutdown window for in-flight requests")
	flag.Parse()

	if *replayDir != "" {
		opt := serve.ReplayOptions{Workers: *workers, Shards: *engineShards}
		if *timeline != "" {
			if err := stitchTo(*timeline, *replayDir, opt); err != nil {
				log.Fatalf("gpmrfleet: %v", err)
			}
			return
		}
		rep, err := fleet.ReplayDir(*replayDir, opt)
		if err != nil {
			log.Fatalf("gpmrfleet: %v", err)
		}
		fmt.Print(rep)
		return
	}
	if *timeline != "" {
		log.Fatal("gpmrfleet: -timeline needs -replay (live mode serves GET /timeline instead)")
	}
	if len(shards) == 0 {
		log.Fatal("gpmrfleet: need at least one -shard id=url (or -replay dir)")
	}
	if err := live(shards, *addr, *replicas, *loadFactor, *probe, *failAfter, *skew, *grace, *obsPath); err != nil {
		log.Fatalf("gpmrfleet: %v", err)
	}
}

// stitchTo writes the offline stitched fleet timeline to path ('-' for
// stdout).
func stitchTo(path, dir string, opt serve.ReplayOptions) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return fleet.WriteStitchedDir(w, dir, opt)
}

func live(shards []fleet.Shard, addr string, replicas int, loadFactor float64,
	probe time.Duration, failAfter, skew int, grace time.Duration, obsPath string) error {
	rt, err := fleet.New(fleet.Config{
		Shards:        shards,
		Replicas:      replicas,
		LoadFactor:    loadFactor,
		ProbeInterval: probe,
		FailAfter:     failAfter,
		SkewThreshold: skew,
		Obs:           obs.New(),
	})
	if err != nil {
		return err
	}
	rt.Start()

	// The drain endpoint and POSIX signals converge on one stop channel;
	// either way the listener shuts down gracefully so in-flight
	// submissions get terminal answers.
	stop := make(chan struct{})
	h := fleet.NewHandler(rt, fleet.HandlerConfig{OnDrain: func() { close(stop) }})
	srv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gpmrfleet: routing %d shards on %s", len(shards), addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("gpmrfleet: %v — draining the fleet", s)
	case <-stop:
		log.Printf("gpmrfleet: drain requested — shutting down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("gpmrfleet: http shutdown: %v", err)
	}
	// Idempotent: after a POST /drain this returns the handshake's cached
	// responses; on a signal it performs the drain now.
	resps, err := rt.Drain()
	if err != nil {
		log.Printf("gpmrfleet: drain: %v", err)
	}
	// The router's own recording, saved beside the shard traces, lets
	// -replay -timeline rebuild the stitched fleet timeline offline.
	if obsPath != "" {
		f, err := os.Create(obsPath)
		if err != nil {
			log.Printf("gpmrfleet: obs: %v", err)
		} else {
			if err := rt.WriteObs(f); err != nil {
				log.Printf("gpmrfleet: obs: %v", err)
			}
			f.Close()
		}
	}
	// The merged report is the only thing on stdout: a replay of the
	// shard traces must print byte-identical text.
	fmt.Print(fleet.Merge(resps))
	return nil
}
