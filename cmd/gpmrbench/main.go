// Command gpmrbench regenerates the paper's evaluation: every table and
// figure of Section 6, plus weak scaling, the ablations argued in prose,
// and a chunk-imbalance scenario comparing steal policies.
//
// Usage:
//
//	gpmrbench -exp all                  # everything (default)
//	gpmrbench -exp fig3 -bench sio      # one figure, one benchmark
//	gpmrbench -exp table2 -phys 1048576 # higher functional fidelity
//
// Larger -phys materializes more physical data per run (slower, more
// faithful functionally); simulated costs always use paper-scale sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|table3|table4|fig2|fig3|weak|ablation|imbalance|all")
	benchName := flag.String("bench", "", "benchmark for fig3/weak (mm|sio|wo|kmc|lr; empty = all)")
	phys := flag.Int("phys", 1<<16, "physical element budget per run")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	o := bench.Options{PhysBudget: *phys, Seed: *seed}
	out := os.Stdout
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}

	benches := bench.Benchmarks
	if *benchName != "" {
		benches = []string{*benchName}
	}

	run("table1", func() error { bench.Table1(out); return nil })
	run("fig3", func() error {
		for _, b := range benches {
			res, err := bench.Fig3(b, o)
			if err != nil {
				return err
			}
			res.Render(out)
			fmt.Fprintln(out)
		}
		return nil
	})
	run("fig2", func() error {
		rows, err := bench.Fig2(o)
		if err != nil {
			return err
		}
		bench.RenderFig2(out, rows)
		return nil
	})
	run("table2", func() error {
		rows, err := bench.Table2(o)
		if err != nil {
			return err
		}
		bench.RenderSpeedups(out, "Table 2 — GPMR speedup over Phoenix (4-core CPU)", rows)
		return nil
	})
	run("table3", func() error {
		rows, err := bench.Table3(o)
		if err != nil {
			return err
		}
		bench.RenderSpeedups(out, "Table 3 — GPMR speedup over Mars (single GPU)", rows)
		return nil
	})
	run("table4", func() error {
		rows, err := bench.Table4(".")
		if err != nil {
			return err
		}
		bench.RenderTable4(out, rows)
		return nil
	})
	run("weak", func() error {
		for _, b := range benches {
			if b == "mm" {
				continue // no weak set for MM in Table 1
			}
			pts, err := bench.Weak(b, o)
			if err != nil {
				return err
			}
			bench.RenderWeak(out, b, pts)
			fmt.Fprintln(out)
		}
		return nil
	})
	run("ablation", func() error {
		rows, err := bench.Ablation(o)
		if err != nil {
			return err
		}
		bench.RenderAblation(out, rows)
		return nil
	})
	run("imbalance", func() error {
		rows, err := bench.Imbalance(o)
		if err != nil {
			return err
		}
		bench.RenderImbalance(out, rows)
		return nil
	})
}
