package cluster

import (
	"testing"

	"repro/internal/des"
)

func TestDefaultConfigPacking(t *testing.T) {
	cases := []struct {
		gpus, perNode, nodes int
	}{
		{1, 1, 1}, {2, 2, 1}, {4, 4, 1}, {8, 4, 2}, {64, 4, 16},
	}
	for _, c := range cases {
		cfg := DefaultConfig(c.gpus)
		if cfg.GPUsPerNode != c.perNode {
			t.Errorf("GPUs=%d: perNode=%d, want %d", c.gpus, cfg.GPUsPerNode, c.perNode)
		}
		cl := New(des.NewEngine(), cfg)
		if len(cl.Nodes) != c.nodes {
			t.Errorf("GPUs=%d: %d nodes, want %d", c.gpus, len(cl.Nodes), c.nodes)
		}
		if cl.Ranks() != c.gpus {
			t.Errorf("GPUs=%d: ranks=%d", c.gpus, cl.Ranks())
		}
	}
}

func TestPCIeSharing(t *testing.T) {
	// On a 4-GPU node, GPUs 0,1 share link 0 and GPUs 2,3 share link 1.
	cl := New(des.NewEngine(), DefaultConfig(4))
	n := cl.Nodes[0]
	if len(n.PCIe) != 2 {
		t.Fatalf("%d PCIe links, want 2", len(n.PCIe))
	}
	if len(n.GPUs) != 4 {
		t.Fatalf("%d GPUs on node", len(n.GPUs))
	}
}

func TestNodeOfRank(t *testing.T) {
	cl := New(des.NewEngine(), DefaultConfig(8))
	if cl.NodeOfRank(0).ID != 0 || cl.NodeOfRank(3).ID != 0 {
		t.Error("ranks 0-3 should be node 0")
	}
	if cl.NodeOfRank(4).ID != 1 || cl.NodeOfRank(7).ID != 1 {
		t.Error("ranks 4-7 should be node 1")
	}
}

func TestCPUResourceCapacity(t *testing.T) {
	cl := New(des.NewEngine(), DefaultConfig(1))
	if got := cl.Nodes[0].CPU.Cap(); got != 4 {
		t.Errorf("CPU capacity %d, want 4 (2x dual-core Opteron)", got)
	}
}

func TestCPUTimeOccupies(t *testing.T) {
	eng := des.NewEngine()
	cl := New(eng, DefaultConfig(1))
	node := cl.Nodes[0]
	var ends []des.Time
	// Two 4-core jobs on a 4-core node must serialize.
	for i := 0; i < 2; i++ {
		eng.Spawn("job", func(p *des.Proc) {
			node.CPUTime(p, 4, 10*des.Microsecond)
			ends = append(ends, p.Now())
		})
	}
	eng.Run()
	if ends[1] != 20*des.Microsecond {
		t.Errorf("second job finished at %v, want 20us", ends[1])
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cfg := DefaultConfig(4)
	cfg.GPUsPerNode = 9
	New(des.NewEngine(), cfg)
}
