package bench

import (
	"strings"
	"testing"
)

func TestImbalancePolicyComparison(t *testing.T) {
	rows, err := Imbalance(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want one per policy", len(rows))
	}
	byPolicy := map[string]ImbalanceRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	gl, ok := byPolicy["global"]
	if !ok {
		t.Fatal("missing global row")
	}
	lf, ok := byPolicy["localfirst"]
	if !ok {
		t.Fatal("missing localfirst row")
	}
	// The headline claim: on a skewed placement, local-first stealing
	// moves less traffic across the node boundary.
	if gl.RemoteSteals == 0 {
		t.Error("skewed placement induced no cross-node steals under global")
	}
	if lf.RemoteSteals >= gl.RemoteSteals {
		t.Errorf("localfirst remote steals %d >= global %d", lf.RemoteSteals, gl.RemoteSteals)
	}
	if lf.WireBytes >= gl.WireBytes {
		t.Errorf("localfirst wire bytes %d >= global %d", lf.WireBytes, gl.WireBytes)
	}
	// Sparing the NICs must not cost meaningful makespan.
	if float64(lf.Wall) > float64(gl.Wall)*1.05 {
		t.Errorf("localfirst makespan %v much worse than global %v", lf.Wall, gl.Wall)
	}
}

func TestRenderImbalance(t *testing.T) {
	rows, err := Imbalance(fast)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderImbalance(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Chunk imbalance", "global", "localfirst", "makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table lacks %q:\n%s", want, out)
		}
	}
}
