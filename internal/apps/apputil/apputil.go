// Package apputil holds helpers shared by the five benchmark applications:
// physical/virtual dataset splitting and chunk-count planning.
//
// Every benchmark accepts its dataset size in *virtual* (paper-scale)
// elements and materializes at most PhysMax physical elements, setting the
// job's VirtFactor to the ratio; kernels compute on the physical data while
// all costs are charged at paper scale (DESIGN.md, "virtual replication").
package apputil

// Scale plans the physical materialization of a virtual dataset.
type Scale struct {
	VirtElems int64 // paper-scale element count
	PhysElems int   // materialized elements
	Factor    int64 // VirtElems / PhysElems (exact)
}

// PlanScale picks the smallest integer factor that keeps the physical
// element count at or below physMax, then rounds the virtual count down to
// an exact multiple (at most factor-1 elements, < 0.01% at any real size).
func PlanScale(virtElems int64, physMax int) Scale {
	if virtElems <= 0 {
		panic("apputil: non-positive dataset size")
	}
	if physMax <= 0 {
		physMax = 1 << 20
	}
	factor := (virtElems + int64(physMax) - 1) / int64(physMax)
	if factor < 1 {
		factor = 1
	}
	phys := virtElems / factor
	if phys < 1 {
		phys = 1
	}
	return Scale{VirtElems: phys * factor, PhysElems: int(phys), Factor: factor}
}

// NumChunks returns how many chunks to cut a dataset into: enough that no
// chunk exceeds maxVirtPerChunk (GPU memory planning) and at least two per
// GPU so the loader/mapper pipeline has work to overlap.
func NumChunks(virtElems, maxVirtPerChunk int64, gpus int) int {
	if maxVirtPerChunk <= 0 {
		panic("apputil: non-positive chunk cap")
	}
	n := (virtElems + maxVirtPerChunk - 1) / maxVirtPerChunk
	if min := int64(2 * gpus); n < min {
		n = min
	}
	return int(n)
}
