package bench

import (
	"reflect"
	"strings"
	"testing"
)

func onlineOpts() Options { return Options{PhysBudget: 2048, Seed: 1} }

// TestOnlineDeterminism: the sweep is a pure function of the options —
// two runs produce identical rows (times, digests, counts).
func TestOnlineDeterminism(t *testing.T) {
	a, err := Online(onlineOpts())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	b, err := Online(onlineOpts())
	if err != nil {
		t.Fatalf("Online (second run): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("online sweep not deterministic:\n%v\nvs\n%v", a, b)
	}
}

// TestOnlineScenario sanity-checks the open-system shape: accounting adds
// up per cell, percentiles are ordered, and admission control actually
// bites — every policy sheds under the tightest load, and no policy
// rejects more when load is lightest than when it is heaviest.
func TestOnlineScenario(t *testing.T) {
	rows, err := Online(onlineOpts())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	if len(rows) != len(onlineGapsMs)*3 {
		t.Fatalf("got %d rows, want %d", len(rows), len(onlineGapsMs)*3)
	}
	rejectsAt := map[string]map[float64]int64{}
	for _, r := range rows {
		if r.Admitted+r.Shed+r.Quota != int64(r.Jobs) {
			t.Errorf("%s@%vms: admit %d + shed %d + quota %d != %d offered",
				r.Policy, r.GapMs, r.Admitted, r.Shed, r.Quota, r.Jobs)
		}
		if r.P95 < r.P50 {
			t.Errorf("%s@%vms: p95 %v < p50 %v", r.Policy, r.GapMs, r.P95, r.P50)
		}
		if rejectsAt[r.Policy] == nil {
			rejectsAt[r.Policy] = map[float64]int64{}
		}
		rejectsAt[r.Policy][r.GapMs] = r.Shed + r.Quota
	}
	loosest, tightest := onlineGapsMs[0], onlineGapsMs[len(onlineGapsMs)-1]
	for pol, byGap := range rejectsAt {
		if byGap[tightest] == 0 {
			t.Errorf("%s: no rejects at the tightest load — admission control never engaged", pol)
		}
		if byGap[loosest] > byGap[tightest] {
			t.Errorf("%s: more rejects at light load (%d) than heavy (%d)", pol, byGap[loosest], byGap[tightest])
		}
	}
}

// TestRenderOnline smoke-checks the table renderer.
func TestRenderOnline(t *testing.T) {
	rows, err := Online(onlineOpts())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	var sb strings.Builder
	RenderOnline(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Open-system serving", "fifo-exclusive", "fixed-share", "weighted-fair", "p95 lat"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
