package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Config controls one GPMR job's pipeline shape and the cluster it runs on.
type Config struct {
	// Name labels the job in traces.
	Name string

	// GPUs is the number of GPU processes (one per GPU, as in the paper).
	GPUs int

	// Cluster optionally overrides the machine; nil uses the paper's
	// testbed shape via cluster.DefaultConfig(GPUs).
	Cluster *cluster.Config

	// VirtFactor is the virtual replication factor: each physical input
	// element stands for VirtFactor elements at paper scale. 1 disables
	// replication. See DESIGN.md.
	VirtFactor int64

	// ValBytes is the virtual size of one value in bytes (keys are 4).
	ValBytes int64

	// PipelineDepth is how many chunks may be in flight per GPU between
	// the loader and the mapper (default 2: double buffering).
	PipelineDepth int

	// Accumulate keeps map output resident on the GPU across chunks; the
	// mapper folds each chunk's emissions into ctx.Resident(). Mutually
	// exclusive with a Combiner and a PartialReducer (the paper: "at most
	// one can be used" of Accumulation and Partial Reduction).
	Accumulate bool

	// DisableSort skips the Sort stage (MM bypasses Sort and Reduce).
	DisableSort bool

	// GatherOutput sends every rank's final pairs to rank 0 and
	// concatenates them into Result.Output (charged network time).
	GatherOutput bool

	// GPUDirect models the paper's future-work NIC-to-GPU path: Bin's
	// device-to-host staging copies are skipped. Off by default.
	GPUDirect bool

	// Startup is the fixed per-job spin-up charged before any rank begins
	// pulling chunks: CUDA context creation, MPI wire-up, and GPMR
	// scheduler initialization. It is what erodes efficiency for small
	// inputs at high GPU counts (the collapsing 1M-element curves of
	// Figure 3). Zero means none; the benchmark apps use DefaultStartup.
	Startup des.Time

	// StealPolicy selects how the dynamic work queues pick a victim when
	// a starved rank shifts a chunk. The zero value, StealGlobal, is the
	// paper's topology-blind behaviour; StealLocalFirst keeps shifts
	// on-node when possible to spare the NICs. See DESIGN.md.
	StealPolicy StealPolicy

	// Faults optionally schedules deterministic fail-stop GPU failures and
	// straggler derating (see internal/fault). A plan with fail-stops
	// switches the scheduler into resilient mode: lost chunks are
	// re-executed by survivors, a failed rank's reduce partition moves to
	// a successor, and the job's functional output matches the
	// failure-free run. Fail-stops require the streaming pipeline (no
	// Accumulate, no Combiner); straggler-only plans work everywhere.
	Faults *fault.Plan

	// Speculate lets a rank that finds every queue empty launch a backup
	// copy of a chunk still running elsewhere (the classic MapReduce
	// answer to stragglers). The first copy to deliver its shuffle output
	// wins; the loser's output is discarded and the loser abandons copies
	// it has not yet mapped. Implies resilient scheduling, with the same
	// streaming-pipeline requirement as Faults.
	Speculate bool

	// Workers selects the kernel-execution backend for exclusive runs:
	// 0 executes every kernel's functional closure inline on its
	// simulated process (Serial, today's default), n >= 1 dispatches
	// closures to a pool of n real worker goroutines, negative means
	// pool(GOMAXPROCS). The simulated schedule, every trace, and every
	// output byte are identical across backends — the pool only lets
	// map/sort/reduce work from different simulated GPUs occupy real
	// host cores concurrently, cutting simulator wall-clock. Scheduled
	// (multi-tenant) runs take the backend from the shared
	// cluster.Config.Workers instead; see sched.Run. See DESIGN.md,
	// "Execution backends".
	Workers int

	// Shards selects how many DES engine shards drive an exclusive run:
	// 0 keeps the legacy single-engine loop, n >= 1 runs a des.ShardSet
	// of n engines, negative means one per cluster node plus a hub. An
	// exclusive job is one gang, so it always executes on a single shard
	// regardless of n — the knob exists so exclusive runs exercise the
	// same dispatch path as scheduled runs and can be diffed against the
	// legacy loop byte for byte. Scheduled runs take the shard count from
	// the shared cluster.Config.Shards instead; see sched.Run.
	Shards int

	// StealMinQueue is the minimum number of queued chunks a victim
	// should hold to justify a shift (default 2: don't rob a queue of
	// its only chunk — its owner will finish it sooner locally). For
	// StealLocalFirst it defines when a node counts as dry: a thief
	// crosses the node boundary once no same-node queue meets the
	// threshold. Below-threshold queues are robbed (fullest first) only
	// when no queue anywhere meets it — better one shift than an idle
	// GPU.
	StealMinQueue int

	// Obs attaches a flight recorder to an exclusive run (nil = tracing
	// off). It flows into the cluster the run builds; an explicit
	// Cluster.Obs wins. Scheduled runs record through the shared
	// cluster's recorder instead.
	Obs *obs.Recorder
}

// resilient reports whether the job needs the fault-tolerant scheduler:
// chunk-completion tracking, re-queues on failure, and (optionally)
// speculative backups. It costs a later end-of-map declaration — a rank
// cannot announce "no more output" until every chunk is delivered, since
// a failure might still assign it re-execution work — so it is on only
// when fail-stops or speculation are in play; straggler-only plans just
// derate devices and need none of it.
func (c Config) resilient() bool {
	return c.Speculate || c.Faults.HasFailStop()
}

// DefaultStartup is the per-job spin-up the benchmark applications charge,
// calibrated to 2011-era CUDA context + MVAPICH2 job launch costs.
const DefaultStartup = 15 * des.Millisecond

// normalize validates and defaults everything except the Cluster field —
// the part shared between exclusive runs (which build their own cluster
// from Config.Cluster) and scheduled runs (which execute on a rank subset
// of a shared cluster and ignore Config.Cluster entirely).
func (c Config) normalize() (Config, error) {
	if c.GPUs <= 0 {
		return c, fmt.Errorf("core: config needs GPUs >= 1, got %d", c.GPUs)
	}
	if c.VirtFactor <= 0 {
		c.VirtFactor = 1
	}
	if c.ValBytes <= 0 {
		c.ValBytes = 4
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 2
	}
	if c.StealPolicy != StealGlobal && c.StealPolicy != StealLocalFirst {
		return c, fmt.Errorf("core: unknown StealPolicy %d", c.StealPolicy)
	}
	if c.StealMinQueue <= 0 {
		c.StealMinQueue = 2
	}
	if err := c.Faults.Validate(c.GPUs); err != nil {
		return c, fmt.Errorf("core: %w", err)
	}
	return c, nil
}

// withDefaults validates and normalizes the configuration for an exclusive
// run, including the cluster shape.
func (c Config) withDefaults() (Config, error) {
	c, err := c.normalize()
	if err != nil {
		return c, err
	}
	if c.Cluster == nil {
		cc := cluster.DefaultConfig(c.GPUs)
		c.Cluster = &cc
	} else {
		cc := *c.Cluster // never mutate the caller's cluster config
		c.Cluster = &cc
	}
	if c.Cluster.Workers == 0 {
		// The job-level knob flows into the machine it builds; an explicit
		// cluster-level setting wins.
		c.Cluster.Workers = c.Workers
	}
	if c.Cluster.Shards == 0 {
		c.Cluster.Shards = c.Shards
	}
	if c.Cluster.Obs == nil {
		c.Cluster.Obs = c.Obs
	}
	if c.Cluster.GPUs != c.GPUs {
		return c, fmt.Errorf("core: cluster config has %d GPUs, job wants %d", c.Cluster.GPUs, c.GPUs)
	}
	return c, nil
}
