package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteMetrics renders the service's counters in Prometheus text
// exposition format: lifecycle counters, admission rejects by reason,
// queue/running gauges, queue-wait and service-time histograms,
// per-tenant admission stats, and the cluster-trace aggregates (wire
// bytes, queue-wait and service-time integrals). Safe from any goroutine.
func (sv *Server) WriteMetrics(w io.Writer) {
	sv.ses.writeMetrics(w)
}

// writeMetrics is the exposition body, on the mode-independent session so
// deterministic replays can snapshot the exact text a live scrape would
// have produced.
func (ses *session) writeMetrics(w io.Writer) {
	ses.mu.Lock()
	s := ses.stats.clone()
	vnow := ses.vnow
	ses.mu.Unlock()

	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	histogram := func(name, help string, h *Histogram) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, fmtBound(b), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}

	counter("gpmr_serve_submitted_total", "Submissions crossing the service boundary.", s.Submitted)
	counter("gpmr_serve_done_total", "Jobs completed successfully.", s.Done)
	counter("gpmr_serve_failed_total", "Admitted jobs that failed to launch.", s.Failed)
	counter("gpmr_serve_cancelled_total", "Jobs withdrawn from the queue.", s.Cancelled)

	fmt.Fprintf(w, "# HELP gpmr_serve_rejected_total Submissions turned away by admission control.\n")
	fmt.Fprintf(w, "# TYPE gpmr_serve_rejected_total counter\n")
	fmt.Fprintf(w, "gpmr_serve_rejected_total{reason=\"shed\"} %d\n", s.RejectedShed)
	fmt.Fprintf(w, "gpmr_serve_rejected_total{reason=\"quota\"} %d\n", s.RejectedQuota)
	fmt.Fprintf(w, "gpmr_serve_rejected_total{reason=\"invalid\"} %d\n", s.RejectedInvalid)
	fmt.Fprintf(w, "gpmr_serve_rejected_total{reason=\"slo\"} %d\n", s.RejectedSLO)

	gauge("gpmr_serve_queue_depth", "Jobs admitted and waiting for a gang.", s.Queued)
	gauge("gpmr_serve_running", "Jobs currently holding gangs.", s.Running)
	gauge("gpmr_serve_ranks", "Total GPU ranks in the shared cluster.", ses.cl.Ranks())
	gauge("gpmr_serve_virtual_time_seconds", "Virtual time of the last state change.", vnow.Seconds())

	counter("gpmr_serve_wire_bytes_total", "Cross-node bytes moved by completed jobs.", s.WireBytes)
	counter("gpmr_serve_wait_seconds_total", "Queue wait integral over placed jobs.", s.WaitTotal.Seconds())
	counter("gpmr_serve_service_seconds_total", "Service time integral over placed jobs.", s.ServiceTotal.Seconds())

	histogram("gpmr_serve_wait_seconds", "Queue wait (admit - arrival) of placed jobs, virtual seconds.", s.WaitHist)
	histogram("gpmr_serve_service_seconds", "Service time (finish - admit) of placed jobs, virtual seconds.", s.ServiceHist)

	tenants := make([]string, 0, len(s.Tenants))
	for t := range s.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(w, "# HELP gpmr_serve_tenant_submitted_total Per-tenant submissions.\n")
	fmt.Fprintf(w, "# TYPE gpmr_serve_tenant_submitted_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "gpmr_serve_tenant_submitted_total{tenant=%q} %d\n", t, s.Tenants[t].Submitted)
	}
	fmt.Fprintf(w, "# HELP gpmr_serve_tenant_rejected_total Per-tenant admission rejects.\n")
	fmt.Fprintf(w, "# TYPE gpmr_serve_tenant_rejected_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "gpmr_serve_tenant_rejected_total{tenant=%q} %d\n", t, s.Tenants[t].Rejected)
	}
	fmt.Fprintf(w, "# HELP gpmr_serve_tenant_done_total Per-tenant completed jobs.\n")
	fmt.Fprintf(w, "# TYPE gpmr_serve_tenant_done_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "gpmr_serve_tenant_done_total{tenant=%q} %d\n", t, s.Tenants[t].Done)
	}

	// Per-class SLO families appear only once a submission has used SLO
	// features, so pre-SLO scrapes are unchanged.
	if len(s.Classes) > 0 {
		classes := make([]string, 0, len(s.Classes))
		for c := range s.Classes {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		classCounter := func(name, help string, val func(*ClassStats) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, c := range classes {
				fmt.Fprintf(w, "%s{class=%q} %d\n", name, c, val(s.Classes[c]))
			}
		}
		classCounter("gpmr_serve_class_submitted_total", "Per-class submissions using SLO features.",
			func(cs *ClassStats) int64 { return cs.Submitted })
		classCounter("gpmr_serve_class_done_total", "Per-class completed jobs.",
			func(cs *ClassStats) int64 { return cs.Done })
		classCounter("gpmr_serve_class_deadline_met_total", "Per-class completions inside their deadline.",
			func(cs *ClassStats) int64 { return cs.Met })
		classCounter("gpmr_serve_class_deadline_missed_total", "Per-class completions past their deadline.",
			func(cs *ClassStats) int64 { return cs.Missed })
		classCounter("gpmr_serve_class_rejected_total", "Per-class SLO admission rejects.",
			func(cs *ClassStats) int64 { return cs.Rejected })
	}
}
