// Command gpmrbench regenerates the paper's evaluation: every table and
// figure of Section 6, plus weak scaling, the ablations argued in prose,
// a chunk-imbalance scenario comparing steal policies, and the
// fault-injection scenarios (GPU fail-stop recovery and straggler
// speculation).
//
// Usage:
//
//	gpmrbench -exp all                  # everything (default)
//	gpmrbench -exp fig3 -bench sio      # one figure, one benchmark
//	gpmrbench -exp table2 -phys 1048576 # higher functional fidelity
//	gpmrbench -exp faults               # fault recovery & speculation
//	gpmrbench -exp multijob             # multi-tenant scheduling policies
//	gpmrbench -exp online               # open-system offered-load sweep
//	gpmrbench -exp multijob -workers 4  # kernel work on 4 host cores
//	gpmrbench -list                     # the registry, with descriptions
//
// Larger -phys materializes more physical data per run (slower, more
// faithful functionally); simulated costs always use paper-scale sizes.
//
// -workers selects the kernel-execution backend: 0 (default) runs every
// kernel's functional closure inline on its simulated GPU process, N >= 1
// dispatches closures to a pool of N real worker goroutines, and -1 uses
// one worker per host core. Results and traces are byte-identical across
// backends — the pool only cuts the harness's wall-clock by running
// map/sort/reduce work from different simulated GPUs concurrently.
//
// -shards selects the DES engine sharding: 0 (default) runs the legacy
// single event loop, N >= 1 runs the simulation as N coordinated engine
// shards under conservative lookahead, and -1 uses one shard per simulated
// node plus a scheduler hub. All shard counts >= 1 produce byte-identical
// traces; `-exp engine` sweeps the knob and writes BENCH_engine.json.
//
// -trace records every run on the virtual-time flight recorder and writes
// the recording as Chrome trace-event JSON — open it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Recording never changes
// results: output with -trace is byte-identical to output without.
// -cpuprofile / -memprofile write host pprof profiles of the harness.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

// experiment is one named entry in the driver registry.
type experiment struct {
	name string
	desc string
	run  func() error
}

func main() {
	exp := flag.String("exp", "all", "experiment to run, or \"all\" (see -list)")
	list := flag.Bool("list", false, "print the experiment registry with descriptions and exit")
	benchName := flag.String("bench", "", "benchmark for fig3/weak (mm|sio|wo|kmc|lr; empty = all)")
	phys := flag.Int("phys", 1<<16, "physical element budget per run")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "kernel-execution workers: 0 = serial, N = pool(N), -1 = pool(all cores)")
	shards := flag.Int("shards", 0, "DES engine shards: 0 = legacy single engine, N = N shards, -1 = one per node")
	tracePath := flag.String("trace", "", "write the runs' flight recording as Chrome trace-event JSON (load in Perfetto)")
	explain := flag.String("explain", "", "print phase breakdowns after the runs: a job name, or \"all\" (implies recording)")
	cpuProf := flag.String("cpuprofile", "", "write a host CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a host heap profile to this file")
	flag.Parse()

	o := bench.Options{PhysBudget: *phys, Seed: *seed, Workers: *workers, Shards: *shards}
	if *tracePath != "" || *explain != "" {
		o.Obs = obs.New()
	}
	out := os.Stdout

	benches := bench.Benchmarks
	if *benchName != "" {
		benches = []string{*benchName}
	}

	experiments := []experiment{
		{"table1", "the dataset matrix (virtual sizes, chunk counts)", func() error { bench.Table1(out); return nil }},
		{"fig3", "parallel-efficiency curves per benchmark (1..64 GPUs)", func() error {
			for _, b := range benches {
				res, err := bench.Fig3(b, o)
				if err != nil {
					return err
				}
				res.Render(out)
				fmt.Fprintln(out)
			}
			return nil
		}},
		{"fig2", "runtime breakdowns by pipeline stage", func() error {
			rows, err := bench.Fig2(o)
			if err != nil {
				return err
			}
			bench.RenderFig2(out, rows)
			return nil
		}},
		{"table2", "GPMR speedup over Phoenix (4-core CPU)", func() error {
			rows, err := bench.Table2(o)
			if err != nil {
				return err
			}
			bench.RenderSpeedups(out, "Table 2 — GPMR speedup over Phoenix (4-core CPU)", rows)
			return nil
		}},
		{"table3", "GPMR speedup over Mars (single GPU)", func() error {
			rows, err := bench.Table3(o)
			if err != nil {
				return err
			}
			bench.RenderSpeedups(out, "Table 3 — GPMR speedup over Mars (single GPU)", rows)
			return nil
		}},
		{"table4", "lines-of-code comparison", func() error {
			rows, err := bench.Table4(".")
			if err != nil {
				return err
			}
			bench.RenderTable4(out, rows)
			return nil
		}},
		{"weak", "weak-scaling runs (fixed size per GPU)", func() error {
			for _, b := range benches {
				if b == "mm" {
					continue // no weak set for MM in Table 1
				}
				pts, err := bench.Weak(b, o)
				if err != nil {
					return err
				}
				bench.RenderWeak(out, b, pts)
				fmt.Fprintln(out)
			}
			return nil
		}},
		{"ablation", "substage ablations the paper argues in prose", func() error {
			rows, err := bench.Ablation(o)
			if err != nil {
				return err
			}
			bench.RenderAblation(out, rows)
			return nil
		}},
		{"imbalance", "skewed chunk placement vs steal policies", func() error {
			rows, err := bench.Imbalance(o)
			if err != nil {
				return err
			}
			bench.RenderImbalance(out, rows)
			return nil
		}},
		{"faults", "GPU fail-stop recovery and straggler speculation", func() error {
			rows, err := bench.Faults(o)
			if err != nil {
				return err
			}
			bench.RenderFaults(out, rows)
			return nil
		}},
		{"multijob", "multi-tenant policies over one shared batch stream", func() error {
			rows, traces, err := bench.Multijob(o)
			if err != nil {
				return err
			}
			bench.RenderMultijob(out, rows, traces)
			return nil
		}},
		{"engine", "sharded-engine wall-clock sweep (writes BENCH_engine.json)", func() error {
			rows, err := bench.Engine(o)
			if err != nil {
				return err
			}
			bench.RenderEngine(out, rows)
			return bench.WriteEngineJSON("BENCH_engine.json", rows)
		}},
		{"online", "open-system offered-load sweep: latency vs reject rate", func() error {
			rows, err := bench.Online(o)
			if err != nil {
				return err
			}
			bench.RenderOnline(out, rows)
			return nil
		}},
		{"slo", "SLO scheduling sweep: per-class deadline attainment and shed rate", func() error {
			rows, err := bench.SLO(o)
			if err != nil {
				return err
			}
			bench.RenderSLO(out, rows)
			return nil
		}},
		{"fleet", "consistent-hash fleet routing: plain vs bounded-load", func() error {
			rows, err := bench.Fleet(o)
			if err != nil {
				return err
			}
			bench.RenderFleet(out, rows)
			return nil
		}},
	}

	names := make([]string, 0, len(experiments))
	for _, e := range experiments {
		names = append(names, e.name)
	}

	// -list prints the registry with descriptions and exits clean.
	if *list {
		fmt.Fprintf(out, "%-10s %s\n", "all", "every experiment below, in order")
		for _, e := range experiments {
			fmt.Fprintf(out, "%-10s %s\n", e.name, e.desc)
		}
		return
	}

	// `-exp help` lists the registry and exits clean (the flag usage
	// points here).
	if *exp == "help" {
		fmt.Fprintf(out, "experiments: all %s\n", strings.Join(names, " "))
		return
	}

	// Validate -exp against the registry: a typo must fail loudly, not
	// match nothing and exit clean.
	if *exp != "all" {
		known := false
		for _, e := range experiments {
			if e.name == *exp {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "gpmrbench: unknown experiment %q; valid: all %s\n",
				*exp, strings.Join(names, " "))
			os.Exit(2)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpmrbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrbench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		if err := e.run(); err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "gpmrbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}

	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpmrbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrbench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *explain != "" {
		evs := o.Obs.Canonical()
		for _, k := range obs.Jobs(evs) {
			if *explain != "all" && k.String() != *explain && k.Name != *explain {
				continue
			}
			fmt.Fprint(out, obs.Explain(evs, k).String())
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpmrbench: %v\n", err)
			os.Exit(1)
		}
		if err := o.Obs.WriteChrome(f); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gpmrbench: flight recording (%d events) written to %s\n", o.Obs.Len(), *tracePath)
	}
}
