package keyval

import (
	"testing"
	"testing/quick"
)

func TestAppendAndLen(t *testing.T) {
	var p Pairs[int]
	p.Append(3, 30)
	p.Append(1, 10)
	if p.Len() != 2 || p.Keys[1] != 1 || p.Vals[0] != 30 {
		t.Errorf("pairs %+v", p)
	}
}

func TestVirtLenDefaultsToPhysical(t *testing.T) {
	var p Pairs[int]
	p.Append(1, 1)
	p.Append(2, 2)
	if p.VirtLen() != 2 {
		t.Errorf("VirtLen=%d", p.VirtLen())
	}
	p.Virt = 100
	if p.VirtLen() != 100 {
		t.Errorf("VirtLen=%d after override", p.VirtLen())
	}
	if p.VirtBytes(4) != 800 {
		t.Errorf("VirtBytes=%d", p.VirtBytes(4))
	}
}

func TestAppendPairsFoldsVirt(t *testing.T) {
	a := Pairs[int]{Keys: []uint32{1}, Vals: []int{1}, Virt: 10}
	b := Pairs[int]{Keys: []uint32{2, 3}, Vals: []int{2, 3}, Virt: 20}
	a.AppendPairs(&b)
	if a.Len() != 3 || a.VirtLen() != 30 {
		t.Errorf("len=%d virt=%d", a.Len(), a.VirtLen())
	}
}

func TestReset(t *testing.T) {
	p := Pairs[int]{Keys: []uint32{1}, Vals: []int{1}, Virt: 5}
	p.Reset()
	if p.Len() != 0 || p.VirtLen() != 0 {
		t.Errorf("after reset: %+v", p)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Pairs[int]{Keys: []uint32{1, 2}, Vals: []int{10, 20}, Virt: 7}
	q := p.Clone()
	q.Keys[0] = 99
	if p.Keys[0] != 1 {
		t.Error("clone aliases original")
	}
	if q.Virt != 7 {
		t.Error("clone lost virt")
	}
}

func TestBucketStableAndComplete(t *testing.T) {
	var p Pairs[int]
	for i := 0; i < 10; i++ {
		p.Append(uint32(i), i*100)
	}
	buckets := p.Bucket(3, func(k uint32) int { return int(k % 3) })
	if len(buckets) != 3 {
		t.Fatalf("%d buckets", len(buckets))
	}
	total := 0
	for bi, b := range buckets {
		total += b.Len()
		var prev uint32
		for i, k := range b.Keys {
			if int(k%3) != bi {
				t.Errorf("key %d in bucket %d", k, bi)
			}
			if i > 0 && k < prev {
				t.Errorf("bucket %d not order-preserving", bi)
			}
			if b.Vals[i] != int(k)*100 {
				t.Errorf("value misaligned: key %d val %d", k, b.Vals[i])
			}
			prev = k
		}
	}
	if total != p.Len() {
		t.Errorf("buckets hold %d pairs, want %d", total, p.Len())
	}
}

func TestBucketOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := Pairs[int]{Keys: []uint32{1}, Vals: []int{1}}
	p.Bucket(2, func(uint32) int { return 5 })
}

func TestPropertyBucketVirtConserved(t *testing.T) {
	f := func(keys []uint32, virtRaw uint16, nRaw uint8) bool {
		n := int(nRaw%7) + 1
		var p Pairs[uint32]
		for _, k := range keys {
			p.Append(k, k)
		}
		virt := int64(virtRaw)
		if virt < int64(p.Len()) {
			virt = int64(p.Len()) // virtual count never below physical
		}
		if p.Len() > 0 {
			p.Virt = virt
		}
		buckets := p.Bucket(n, func(k uint32) int { return int(k) % n })
		var gotVirt int64
		gotPhys := 0
		for _, b := range buckets {
			gotVirt += b.VirtLen()
			gotPhys += b.Len()
		}
		return gotPhys == p.Len() && gotVirt == p.VirtLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
