package keyval

import (
	"encoding/binary"
	"testing"
)

// FuzzBucketConservation feeds Bucket arbitrary key streams and partition
// counts and checks the shuffle's bedrock invariant: partitioning never
// loses or duplicates a pair. Physical counts across buckets sum to the
// input count, virtual counts likewise, every pair lands in the bucket its
// partition function names, and relative order within a bucket is
// preserved (the stable scatter the GPU partitioner guarantees).
func FuzzBucketConservation(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 255, 0, 0, 0}, uint8(4), int64(0))
	f.Add([]byte{}, uint8(1), int64(9))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 9, 9, 9, 9}, uint8(3), int64(1000))
	f.Fuzz(func(t *testing.T, raw []byte, nBuckets uint8, virt int64) {
		n := int(nBuckets%16) + 1
		var p Pairs[uint32]
		for len(raw) >= 4 {
			k := binary.LittleEndian.Uint32(raw[:4])
			p.Append(k, k^0xdeadbeef)
			raw = raw[4:]
		}
		if virt > 0 && p.Len() > 0 {
			p.Virt = int64(p.Len()) + virt%(1<<40)
		}
		rankOf := func(k uint32) int { return int(k) % n }
		buckets := p.Bucket(n, rankOf)
		if len(buckets) != n {
			t.Fatalf("Bucket returned %d buckets, want %d", len(buckets), n)
		}
		phys, virtSum := 0, int64(0)
		for d, b := range buckets {
			phys += b.Len()
			virtSum += b.VirtLen()
			last := -1
			for i, k := range b.Keys {
				if rankOf(k) != d {
					t.Fatalf("key %d landed in bucket %d, want %d", k, d, rankOf(k))
				}
				if b.Vals[i] != k^0xdeadbeef {
					t.Fatalf("key %d lost its value in bucket %d", k, d)
				}
				// Stability: this pair must appear in the input after the
				// bucket's previous pair.
				found := -1
				for j := last + 1; j < p.Len(); j++ {
					if p.Keys[j] == k {
						found = j
						break
					}
				}
				if found < 0 {
					t.Fatalf("bucket %d pair %d not found in input order", d, i)
				}
				last = found
			}
		}
		if phys != p.Len() {
			t.Fatalf("buckets hold %d pairs, input had %d", phys, p.Len())
		}
		if p.Len() > 0 && virtSum != p.VirtLen() {
			t.Fatalf("buckets hold %d virtual pairs, input had %d", virtSum, p.VirtLen())
		}
	})
}
