package serve

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/des"
)

func TestTraceRoundTrip(t *testing.T) {
	h := Header{Version: TraceVersion, Policy: "weighted-fair", GPUs: 8, GPUsPerNode: 4,
		MaxQueue: 16, Quota: 4, Quotas: map[string]int{"vip": 8}, PhysBudget: 4096}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, h)
	w.Arrive(Arrival{Seq: 0, At: 5, Tenant: "a", Kind: "wo", Params: Params{"bytes": 1024}, Weight: 2})
	w.Arrive(Arrival{Seq: 1, At: 9, Tenant: "b", Kind: "sio", MinGang: 2})
	w.Cancel(Cancel{Seq: 0, At: 12})
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.Header.Policy != "weighted-fair" || tr.Header.Quotas["vip"] != 8 || tr.Header.PhysBudget != 4096 {
		t.Fatalf("header mangled: %+v", tr.Header)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(tr.Events))
	}
	a := tr.Events[0].Arrive
	if a == nil || a.Tenant != "a" || a.Params["bytes"] != 1024 || a.Weight != 2 {
		t.Fatalf("arrival 0 mangled: %+v", a)
	}
	if c := tr.Events[2].Cancel; c == nil || c.Seq != 0 || c.At != 12 {
		t.Fatalf("cancel mangled: %+v", tr.Events[2])
	}
}

func TestTraceReadRejects(t *testing.T) {
	head := `{"version":1,"policy":"weighted-fair","gpus":4,"gpusPerNode":4,"maxQueue":8,"physBudget":64}` + "\n"
	cases := map[string]string{
		"bad version":    strings.Replace(head, `"version":1`, `"version":99`, 1),
		"backwards time": head + `{"arrive":{"seq":0,"at":10,"tenant":"a","kind":"wo"}}` + "\n" + `{"arrive":{"seq":1,"at":5,"tenant":"a","kind":"wo"}}` + "\n",
		"seq gap":        head + `{"arrive":{"seq":1,"at":0,"tenant":"a","kind":"wo"}}` + "\n",
		"unknown cancel": head + `{"cancel":{"seq":3,"at":1}}` + "\n",
		"empty event":    head + `{}` + "\n",
		"double event":   head + `{"arrive":{"seq":0,"at":1,"tenant":"a","kind":"wo"},"cancel":{"seq":0,"at":1}}` + "\n",
		"garbage":        head + `not json` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace accepted bad input", name)
		}
	}
	if _, err := ReadTrace(strings.NewReader(head)); err != nil {
		t.Errorf("event-free trace rejected: %v", err)
	}
}

// TestReplayRejectsUnknownPolicy pins the header policy check.
func TestReplayRejectsUnknownPolicy(t *testing.T) {
	tr := &Trace{Header: Header{Version: TraceVersion, Policy: "round-robin", GPUs: 4, GPUsPerNode: 4, PhysBudget: 64}}
	if _, err := Replay(tr, ReplayOptions{}); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("err = %v, want unknown policy", err)
	}
}

// TestHeaderTimes sanity-checks des.Time JSON round-tripping (int64 ns).
func TestHeaderTimes(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, Header{Version: TraceVersion, Policy: "weighted-fair", GPUs: 1, GPUsPerNode: 1, PhysBudget: 1})
	at := 3*des.Second + 141*des.Millisecond
	w.Arrive(Arrival{Seq: 0, At: at, Tenant: "x", Kind: "wo"})
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got := tr.Events[0].Arrive.At; got != at {
		t.Fatalf("time round-trip: %v != %v", got, at)
	}
}
