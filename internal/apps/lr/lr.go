// Package lr implements the paper's Linear Regression benchmark on GPMR:
// fit y = a + b·x over a large sample set.
//
// Following §5.3.5: chunks pack (x, y) pairs tightly; the map stage uses
// persistent threads with internal Accumulation and emits only six keys on
// completion (n, Σx, Σy, Σx², Σxy, Σy²); no Partitioner is used (network
// overhead is minimal either way); the default sort is used and reductions
// are key-per-thread with virtually nil reduce time. Per-element map work
// is tiny, so communication limits scaling past a few GPUs — LR is the
// paper's light-compute stress case.
package lr

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/cudpp"
	"repro/internal/gpu"
	"repro/internal/workload"
)

// The six statistic keys.
const (
	KeyN uint32 = iota
	KeySumX
	KeySumY
	KeySumXX
	KeySumXY
	KeySumYY
	NumKeys
)

// Params configures one LR job.
type Params struct {
	Points   int64 // virtual sample count (paper: 1M–512M, 8 B/point)
	GPUs     int
	Seed     uint64
	PhysMax  int   // physical cap (default 1<<19)
	ChunkCap int64 // virtual points per chunk (default 16M = 128 MB)

	// Ground-truth model for the synthetic data.
	A, B, Noise float64

	// NoAccumulation is the paper's ablation: the direct port emits six
	// pairs per point instead of accumulating sums on the GPU.
	NoAccumulation bool
}

func (p Params) withDefaults() Params {
	if p.PhysMax <= 0 {
		p.PhysMax = 1 << 19
	}
	if p.ChunkCap <= 0 {
		p.ChunkCap = 16 << 20
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.A == 0 && p.B == 0 {
		p.A, p.B = 2, 3
	}
	if p.Noise == 0 {
		p.Noise = 0.5
	}
	return p
}

type chunk struct {
	xy   []float64 // x0 y0 x1 y1 ...
	virt int64     // virtual point count
}

func (c *chunk) Elems() int       { return len(c.xy) / 2 }
func (c *chunk) VirtBytes() int64 { return c.virt * 8 } // 8-byte elements (Table 1)

// mapper accumulates the six sums with persistent threads.
type mapper struct{}

func (mapper) Map(ctx *core.MapContext[float64], c core.Chunk) {
	ch := c.(*chunk)
	res := ctx.Resident()
	if res.Len() == 0 {
		init := gpu.KernelSpec{Name: "lr.init", Threads: int64(NumKeys)}
		ctx.Launch(init, func() {
			for k := uint32(0); k < NumKeys; k++ {
				res.Append(k, 0)
			}
			res.Virt = int64(NumKeys)
		})
	}
	virtN := ch.virt
	const blockSize = 256
	blocks := (virtN + blockSize - 1) / blockSize
	spec := gpu.KernelSpec{
		Name:           "lr.map",
		Threads:        virtN,
		FlopsPerThread: 10,
		BytesRead:      float64(virtN * 8),
		BytesWritten:   float64(blocks * int64(NumKeys) * 4 / 8),
	}
	ctx.Launch(spec, func() {
		scale := float64(ctx.VirtFactor)
		for i := 0; i < ch.Elems(); i++ {
			x, y := ch.xy[2*i], ch.xy[2*i+1]
			res.Vals[KeyN] += scale
			res.Vals[KeySumX] += x * scale
			res.Vals[KeySumY] += y * scale
			res.Vals[KeySumXX] += x * x * scale
			res.Vals[KeySumXY] += x * y * scale
			res.Vals[KeySumYY] += y * y * scale
		}
	})
	// Block-pool fold, as in KMC (no float atomics on GT200).
	ctx.Launch(gpu.KernelSpec{
		Name:      "lr.poolreduce",
		Threads:   int64(NumKeys),
		BytesRead: float64(blocks * int64(NumKeys) * 4 / 8),
	}, nil)
}

// reducer sums each of the six keys, one per thread.
type reducer struct{}

func (reducer) ChunkValueSets(sets int, virtVals, free int64) int {
	return core.FitAllChunking(sets, virtVals, free, 8)
}

func (reducer) Reduce(ctx *core.ReduceContext[float64], keys []uint32, segs []cudpp.Segment, vals []float64) {
	var phys int64
	for _, s := range segs {
		phys += int64(s.Count)
	}
	spec := gpu.KernelSpec{
		Name:           "lr.reduce",
		Threads:        int64(len(segs)),
		FlopsPerThread: float64(phys) / float64(len(segs)),
		BytesRead:      float64(phys * 8),
		BytesWritten:   float64(len(segs) * 12),
	}
	ctx.Launch(spec, func() {
		for _, s := range segs {
			var sum float64
			for i := 0; i < s.Count; i++ {
				sum += vals[s.Start+i]
			}
			ctx.Emit(s.Key, sum)
		}
	})
	ctx.SetEmittedVirt(int64(len(segs)))
}

// Built bundles an LR job with its inputs.
type Built struct {
	Job *core.Job[float64]
	XY  []float64
}

// NewJob builds the GPMR job.
func NewJob(p Params) *Built {
	p = p.withDefaults()
	sc := apputil.PlanScale(p.Points, p.PhysMax)
	xy := workload.XYPairs(p.Seed, sc.PhysElems, p.A, p.B, p.Noise)
	nChunks := apputil.NumChunks(sc.VirtElems, p.ChunkCap, p.GPUs)
	offs := workload.SplitEven(sc.PhysElems, nChunks)
	chunks := make([]core.Chunk, nChunks)
	for i := range chunks {
		chunks[i] = &chunk{
			xy:   xy[offs[i]*2 : offs[i+1]*2],
			virt: int64(offs[i+1]-offs[i]) * sc.Factor,
		}
	}
	job := &core.Job[float64]{
		Config: core.Config{
			Name:         "lr",
			GPUs:         p.GPUs,
			VirtFactor:   sc.Factor,
			ValBytes:     8,
			Accumulate:   true,
			GatherOutput: true,
			Startup:      core.DefaultStartup,
			// No Partitioner: six keys all go to rank 0, as the paper.
		},
		Chunks:  chunks,
		Mapper:  mapper{},
		Reducer: reducer{},
	}
	if p.NoAccumulation {
		job.Config.Accumulate = false
		job.Config.Name = "lr-noaccum"
		job.Mapper = emitMapper{}
	}
	return &Built{Job: job, XY: xy}
}

// emitMapper is the ablation mapper: the direct CPU port emitting all six
// statistics as pairs for every point.
type emitMapper struct{}

func (emitMapper) Map(ctx *core.MapContext[float64], c core.Chunk) {
	ch := c.(*chunk)
	virtN := ch.virt
	spec := gpu.KernelSpec{
		Name:             "lr.map.emit",
		Threads:          virtN,
		FlopsPerThread:   10,
		BytesRead:        float64(virtN * 8),
		UncoalescedBytes: float64(virtN * 6 * 12), // six scattered pair writes
	}
	ctx.Launch(spec, func() {
		scale := float64(ctx.VirtFactor)
		for i := 0; i < ch.Elems(); i++ {
			x, y := ch.xy[2*i], ch.xy[2*i+1]
			ctx.Emit(KeyN, scale)
			ctx.Emit(KeySumX, x*scale)
			ctx.Emit(KeySumY, y*scale)
			ctx.Emit(KeySumXX, x*x*scale)
			ctx.Emit(KeySumXY, x*y*scale)
			ctx.Emit(KeySumYY, y*y*scale)
		}
	})
	ctx.SetEmittedVirt(virtN * 6)
}

// Fit converts gathered sums into the model (a, b).
func Fit(sums map[uint32]float64) (a, b float64) {
	n := sums[KeyN]
	if n == 0 {
		return 0, 0
	}
	sx, sy := sums[KeySumX], sums[KeySumY]
	sxx, sxy := sums[KeySumXX], sums[KeySumXY]
	b = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a = (sy - b*sx) / n
	return a, b
}

// Reference computes the six sums sequentially (virtFactor-scaled).
func (bu *Built) Reference(virtFactor int64) map[uint32]float64 {
	ref := make(map[uint32]float64, NumKeys)
	scale := float64(virtFactor)
	for i := 0; i+1 < len(bu.XY); i += 2 {
		x, y := bu.XY[i], bu.XY[i+1]
		ref[KeyN] += scale
		ref[KeySumX] += x * scale
		ref[KeySumY] += y * scale
		ref[KeySumXX] += x * x * scale
		ref[KeySumXY] += x * y * scale
		ref[KeySumYY] += y * y * scale
	}
	return ref
}
