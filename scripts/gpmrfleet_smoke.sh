#!/usr/bin/env bash
# End-to-end smoke for the gpmrfleet router tier:
#   1. start three gpmrd shards (each recording its arrival trace) and a
#      gpmrfleet router fronting them with plain consistent hashing,
#   2. submit jobs across tenants through the router,
#   3. SIGKILL the shard owning the "hot" tenant while it still holds
#      unfinished work, and verify the router marks it down, re-admits
#      the orphans onto survivors, and rides every job to completion,
#   4. fetch a job's /explain breakdown (JSON + text) and the live
#      stitched fleet /timeline,
#   5. drain the fleet via POST /drain and capture the merged report,
#   6. remove the dead shard's partial trace and replay the survivors'
#      traces with gpmrfleet -replay,
#   7. diff the live merged report against the replay, and the live
#      stitched timeline against the offline -timeline stitch, byte for
#      byte.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pids=""
trap 'kill $pids 2>/dev/null || true; rm -rf "$workdir"' EXIT

mkdir -p "$workdir/traces"
go build -o "$workdir/gpmrd" ./cmd/gpmrd
go build -o "$workdir/gpmrfleet" ./cmd/gpmrfleet

declare -A shard_addr shard_pid
for i in 0 1 2; do
  addr="127.0.0.1:84$((61 + i))"
  shard_addr[s$i]="$addr"
  "$workdir/gpmrd" -addr "$addr" -gpus 8 -policy weighted-fair -queue -1 \
    -phys 1048576 -trace "$workdir/traces/s$i.jsonl" \
    >"$workdir/s$i.out" 2>"$workdir/s$i.log" &
  shard_pid[s$i]=$!
  pids="$pids $!"
done

raddr="127.0.0.1:8460"
rbase="http://$raddr"
"$workdir/gpmrfleet" -addr "$raddr" \
  -shard "s0=http://${shard_addr[s0]}" \
  -shard "s1=http://${shard_addr[s1]}" \
  -shard "s2=http://${shard_addr[s2]}" \
  -load-factor -1 -probe 100ms -fail-after 2 -skew -1 \
  -obs "$workdir/traces/router.obs" \
  >"$workdir/router.out" 2>"$workdir/router.log" &
rpid=$!
pids="$pids $rpid"

for i in $(seq 1 50); do
  curl -fsS "$rbase/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "gpmrfleet never became healthy"; cat "$workdir/router.log"; exit 1; }
  sleep 0.1
done

submit() { # tenant seed -> http code
  curl -sS -X POST "$rbase/jobs" \
    -d "{\"tenant\":\"$1\",\"kind\":\"wo\",\"params\":{\"bytes\":1048576,\"gpus\":2,\"seed\":$2}}" \
    -o /dev/null -w '%{http_code}'
}

# One job per tenant: plain hashing spreads them deterministically.
n=0
for t in ana bo cy dan eve hot; do
  n=$((n + 1))
  [ "$(submit "$t" "$n")" = 202 ] || { echo "submit $t failed"; exit 1; }
done

# Find the shard that owns the hot tenant — the designated victim.
victim="$(curl -fsS "$rbase/jobs" | python3 -c '
import json, sys
jobs = json.load(sys.stdin)
print(next(j["shard"] for j in jobs if j["tenant"] == "hot"))')"
vbase="http://${shard_addr[$victim]}"
echo "gpmrfleet smoke: victim shard is $victim"

# Keep feeding the hot tenant bursts of big sort jobs (~1.5s of wall
# time each at this phys budget; 4 GPUs each, so an 8-GPU shard runs
# two at a time and queues the rest) until the victim provably holds
# unfinished work, then fail-stop it — forcing a real failover.
submit_big() { # seed -> http code
  curl -sS -X POST "$rbase/jobs" \
    -d "{\"tenant\":\"hot\",\"kind\":\"sio\",\"params\":{\"elements\":33554432,\"gpus\":4,\"seed\":$1}}" \
    -o /dev/null -w '%{http_code}'
}
killed=""
for i in $(seq 1 50); do
  for b in 1 2 3; do
    n=$((n + 1))
    [ "$(submit_big "$((100 + 3*i + b))")" = 202 ] || { echo "hot submit failed"; exit 1; }
  done
  live="$(curl -fsS "$vbase/jobs" | python3 -c '
import json, sys
jobs = json.load(sys.stdin)
print(sum(1 for j in jobs if j["state"] in ("queued", "running")))')"
  if [ "$live" -gt 0 ]; then
    kill -9 "${shard_pid[$victim]}"
    killed=1
    break
  fi
done
[ -n "$killed" ] || { echo "victim never held unfinished work"; exit 1; }

# The router must mark the victim down and ride every fleet job to done.
for i in $(seq 1 300); do
  down="$(curl -fsS "$rbase/shards" | python3 -c "
import json, sys
st = json.load(sys.stdin)
print(sum(1 for s in st['shards'] if s['id'] == '$victim' and s['state'] == 'down'))")"
  notdone="$(curl -fsS "$rbase/jobs" | python3 -c '
import json, sys
jobs = json.load(sys.stdin)
print(sum(1 for j in jobs if j["state"] != "done"))')"
  [ "$down" = 1 ] && [ "$notdone" = 0 ] && break
  [ "$i" = 300 ] && { echo "fleet never settled (down=$down notdone=$notdone)"; curl -fsS "$rbase/jobs"; exit 1; }
  sleep 0.1
done

# Failover must actually have happened, and be visible in the metrics.
curl -fsS "$rbase/metrics" >"$workdir/metrics.txt"
grep -q "gpmr_fleet_shard_up{shard=\"$victim\"} 0" "$workdir/metrics.txt"
grep -q "gpmr_fleet_shard_state{shard=\"$victim\",state=\"down\"} 1" "$workdir/metrics.txt"
failovers="$(awk '/^gpmr_fleet_failovers_total /{print $2}' "$workdir/metrics.txt")"
[ "$failovers" -ge 1 ] || { echo "no failovers recorded"; cat "$workdir/metrics.txt"; exit 1; }
probefails="$(awk '/^gpmr_fleet_probe_failures_total /{print $2}' "$workdir/metrics.txt")"
[ "$probefails" -ge 1 ] || { echo "dead shard produced no probe failures"; cat "$workdir/metrics.txt"; exit 1; }

# Explain: the router wraps the owning shard's phase breakdown with its
# own hop record; the phases must partition the job's latency exactly.
curl -fsS "$rbase/jobs/0/explain" >"$workdir/explain.json"
python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
ex = d["explain"]
assert d["fleet"]["id"] == 0 and d["fleet"]["traceId"], d["fleet"]
assert d["fleet"]["traceId"] == ex.get("traceId"), (d["fleet"], ex)
phases = ex["phases"]
assert phases, ex
assert sum(p["durNs"] for p in phases) == ex["latencyNs"], ex
print("explain: job 0 state %s, %d phases, bottleneck %s %.1f%%"
      % (ex["state"], len(phases), ex.get("bottleneck"), ex.get("bottleneckPct", 0)))' \
  "$workdir/explain.json"
curl -fsS "$rbase/jobs/0/explain?format=text" >"$workdir/explain.txt"
head -1 "$workdir/explain.txt" | grep -q '^fleet: job 0 ' || {
  echo "text explain missing the fleet hop line"; cat "$workdir/explain.txt"; exit 1; }
grep -q 'bottleneck' "$workdir/explain.txt"

# The live stitched fleet timeline: router lanes + every live shard's
# flight recording, as one Chrome trace.
curl -fsS "$rbase/timeline" >"$workdir/live_timeline.json"
python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["traceEvents"], "empty stitched timeline"' "$workdir/live_timeline.json"

# Drain the fleet: the handshake answers with the merged report, the
# router prints the same report to stdout on exit, and each surviving
# shard exits after its own drain.
curl -fsS -X POST "$rbase/drain" >"$workdir/drain.json"
python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert len(d["shards"]) == 2, d["shards"]
open(sys.argv[2], "w").write(d["report"])' "$workdir/drain.json" "$workdir/live_merged.txt"
wait "$rpid"
for s in s0 s1 s2; do
  [ "$s" = "$victim" ] && continue
  wait "${shard_pid[$s]}"
done
diff -u "$workdir/live_merged.txt" "$workdir/router.out"

# Replay the survivors' traces offline: the dead shard's partial trace
# died with it (its jobs live on in the survivors' traces).
rm -f "$workdir/traces/$victim.jsonl"
"$workdir/gpmrfleet" -replay "$workdir/traces" >"$workdir/replay.out"
if ! diff -u "$workdir/live_merged.txt" "$workdir/replay.out"; then
  echo "live and replayed fleet reports differ"
  exit 1
fi

# Stitch the same directory (survivor traces + the router's saved
# recording) into the fleet timeline offline: it must be byte-identical
# to the live /timeline captured before the drain.
"$workdir/gpmrfleet" -replay "$workdir/traces" -timeline - >"$workdir/offline_timeline.json"
if ! diff -q "$workdir/live_timeline.json" "$workdir/offline_timeline.json"; then
  echo "live and offline stitched timelines differ"
  exit 1
fi

echo "gpmrfleet smoke: $n jobs, $failovers failed over past dead $victim; merged report and stitched timeline match replay ($(wc -l <"$workdir/replay.out") lines)"
