package sched

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/workload"
)

// TestMD1Calibration cross-checks the open queueing system against
// textbook theory. Under FIFOExclusive the cluster is exactly one server:
// jobs run one at a time, and identical jobs have a deterministic service
// time S. Feed it seeded-Poisson arrivals at offered load ρ and the
// system is M/D/1, whose mean queueing delay is
//
//	Wq = ρ·S / (2·(1−ρ))
//
// — an independent distributional prediction, not an identity over the
// measured counters (Little's law on our own averages would be). The
// measured mean wait must land near it, and the measured utilisation
// near the offered load. Tolerances are wide because one finite seeded
// run of n jobs carries O(1/√n) sampling noise — this is a calibration
// test for the simulator's queueing behaviour, not a statistics exam.
func TestMD1Calibration(t *testing.T) {
	// Deterministic service time of the fixture job, measured solo.
	solo, err := Run(cc16(), Policy{Kind: FIFOExclusive},
		[]JobSpec{{At: 0, Job: makeJob("solo", 4, 4, 128)}})
	if err != nil {
		t.Fatal(err)
	}
	S := solo.Jobs[0].Service()
	if S <= 0 {
		t.Fatalf("fixture service time %v", S)
	}

	const (
		n   = 120
		rho = 0.6
	)
	meanGap := S.Seconds() / rho
	rng := workload.NewRNG(0x9e3779b9)
	var at des.Time
	specs := make([]JobSpec, 0, n)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		at += des.FromSeconds(-math.Log(1-u) * meanGap)
		specs = append(specs, JobSpec{At: at, Job: makeJob(fmt.Sprintf("j%03d", i), 4, 4, 128)})
	}
	ct, err := Run(cc16(), Policy{Kind: FIFOExclusive}, specs)
	if err != nil {
		t.Fatal(err)
	}

	// Every job's service must be the deterministic S — that is what makes
	// the system M/D/1 rather than M/G/1.
	for i := range ct.Jobs {
		if ct.Jobs[i].Service() != S {
			t.Fatalf("job %d service %v, want deterministic %v", i, ct.Jobs[i].Service(), S)
		}
	}

	wq := ct.MeanWait().Seconds()
	pred := rho * S.Seconds() / (2 * (1 - rho))
	t.Logf("S=%v  measured Wq=%.4gs  M/D/1 Wq=%.4gs  util=%.3f (offered %.2f)",
		S, wq, pred, float64(n)*S.Seconds()/ct.Makespan.Seconds(), rho)
	if wq < 0.5*pred || wq > 2.0*pred {
		t.Errorf("mean wait %.3gs outside [0.5, 2.0]x the M/D/1 prediction %.3gs (rho=%.2f, S=%v)",
			wq, pred, rho, S)
	}

	// Utilisation: the server is busy n·S out of the makespan; the offered
	// load is rho. A finite Poisson run's arrival span wobbles by ~1/√n.
	util := float64(n) * S.Seconds() / ct.Makespan.Seconds()
	if util < rho*0.8 || util > rho*1.2 {
		t.Errorf("utilisation %.3f outside 20%% of offered load %.2f", util, rho)
	}
}
