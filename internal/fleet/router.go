package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Shard names one gpmrd backend.
type Shard struct {
	ID  string `json:"id"`
	URL string `json:"url"` // base URL, e.g. http://127.0.0.1:8373
}

// Config shapes one router.
type Config struct {
	Shards []Shard

	// Replicas is the virtual-node count per shard on the hash ring
	// (default DefaultReplicas).
	Replicas int
	// LoadFactor is the bounded-load factor c: a shard's in-flight load
	// may exceed its fair share by at most c×. 0 defaults to 1.25;
	// negative disables the bound (plain consistent hashing).
	LoadFactor float64

	// ProbeInterval is the health-check cadence (default 500ms); each
	// probe times out after ProbeTimeout (default 2s). FailAfter
	// consecutive failures mark a shard down (default 3).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailAfter     int

	// SubmitRetries is how many times one proxied submission is retried
	// against the same shard on transport errors or transient 5xx before
	// the router fails over to the next ring candidate (default 2), with
	// RetryBackoff between tries, doubling (default 25ms). SubmitTimeout
	// bounds each try (default 15s).
	SubmitRetries int
	RetryBackoff  time.Duration
	SubmitTimeout time.Duration
	// RetryAfterCap bounds how long the router honors a shard's
	// Retry-After header (429 backpressure and retried 5xx): the shard
	// predicts its own queue drain, but the router will not stall a
	// submission longer than this per try (default 2s).
	RetryAfterCap time.Duration

	// SkewThreshold triggers queue rebalancing: when the deepest shard
	// queue exceeds the shallowest by at least this many jobs, one queued
	// job is stolen per probe cycle. 0 defaults to 4; negative disables.
	SkewThreshold int

	// DrainTimeout bounds each shard's drain handshake (default 120s).
	DrainTimeout time.Duration

	// Client overrides the HTTP client (timeouts come from per-request
	// contexts, not the client).
	Client *http.Client
	// Logf receives router diagnostics. Defaults to log.Printf.
	Logf func(format string, args ...any)

	// Obs, when set, records the router's own decisions — routes, retries,
	// reroutes, failovers, steals, and shard state transitions — as obs
	// events (streams "fleet/job/<tag>" and "fleet/shard/<id>", wall-clock
	// nanoseconds since router start). The timeline stitcher merges them
	// with the shards' virtual-time flight recordings into one causal
	// chain. Nil disables recording.
	Obs *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.SubmitRetries <= 0 {
		c.SubmitRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.SubmitTimeout <= 0 {
		c.SubmitTimeout = 15 * time.Second
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 2 * time.Second
	}
	if c.SkewThreshold == 0 {
		c.SkewThreshold = 4
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 120 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Shard states as the router sees them.
const (
	shardUp       = "up"
	shardDraining = "draining"
	shardDown     = "down"
)

// shardRT is the router's live view of one shard.
type shardRT struct {
	Shard
	state   string
	fails   int // consecutive probe failures
	lastErr string
	routed  int64 // accepted submissions ever routed here
}

// FleetJob is the router's record of one fleet-level submission: where
// it currently lives and the router's last known state for it.
type FleetJob struct {
	ID      int          `json:"id"`  // fleet job id
	Tag     string       `json:"tag"` // correlation key, echoed by shards
	Tenant  string       `json:"tenant"`
	Kind    string       `json:"kind"`
	Params  serve.Params `json:"params,omitempty"`
	Weight  int          `json:"weight,omitempty"`
	MinGang int          `json:"minGang,omitempty"`

	// TraceID is the causal correlation ID stamped on the submission
	// (defaults to the fleet tag) and echoed by the shard into its job
	// record, arrival trace, and obs streams.
	TraceID string `json:"traceId,omitempty"`

	Shard    string `json:"shard,omitempty"`  // owning shard
	ShardJob int    `json:"shardJob"`         // id on the owning shard
	State    string `json:"state"`            // router's last known state
	Reason   string `json:"reason,omitempty"` // terminal reason, if any
	Attempts int    `json:"attempts"`         // submissions incl. failovers and steals
	Digest   string `json:"digest,omitempty"` // canonical output digest once done
}

// terminal reports whether a fleet job needs no further routing.
func (j *FleetJob) terminal() bool {
	switch j.State {
	case "done", "failed", "cancelled", "rejected":
		return true
	}
	return false
}

// stateSubmitted marks a job whose submission is in flight; the
// submitting goroutine owns it until a shard answers, so failover skips
// it (the submitter's own retry path reroutes).
const stateSubmitted = "submitted"

type routerStats struct {
	submitted   int64 // fleet-level submissions
	accepted    int64 // routed to a shard, 202
	rejected    int64 // shard said 429/400
	unrouted    int64 // no live shard could take it, 503
	retries     int64 // same-shard submission retries
	reroutes    int64 // submissions moved to another ring candidate
	failovers   int64 // jobs re-admitted after a shard loss
	lost        int64 // jobs that could not be re-admitted anywhere
	steals      int64 // queued jobs rebalanced away from a deep shard
	transitions int64 // ring membership changes (epoch bumps)
	probeFails  int64 // failed interactions with non-down shards
}

// Router is the fleet front door.
type Router struct {
	cfg  Config
	ring *Ring
	obs  *obs.Recorder // cfg.Obs; nil-safe
	base time.Time     // router start, the zero of its obs clock

	mu      sync.Mutex
	shards  map[string]*shardRT
	order   []string // shard ids, sorted — deterministic iteration
	jobs    []*FleetJob
	byTag   map[string]*FleetJob
	epoch   int
	nextTag int
	stats   routerStats

	draining atomic.Bool
	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	drainOnce  sync.Once
	drainResps []serve.DrainResponse
	drainErr   error
}

// New builds a router over the configured shards.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ids := make([]string, 0, len(cfg.Shards))
	for _, s := range cfg.Shards {
		if s.URL == "" {
			return nil, fmt.Errorf("fleet: shard %q has no URL", s.ID)
		}
		ids = append(ids, s.ID)
	}
	ring, err := NewRing(ids, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		obs:    cfg.Obs,
		base:   time.Now(),
		shards: make(map[string]*shardRT, len(cfg.Shards)),
		byTag:  make(map[string]*FleetJob),
		stopc:  make(chan struct{}),
	}
	for _, s := range cfg.Shards {
		rt.shards[s.ID] = &shardRT{Shard: s, state: shardUp}
		rt.order = append(rt.order, s.ID)
	}
	sort.Strings(rt.order)
	return rt, nil
}

// Start registers the router with every shard (stamping the fleet trace
// headers), adopts any tagged jobs the shards already hold (router
// restart), and begins health probing.
func (rt *Router) Start() {
	for _, id := range rt.order {
		rt.register(id)
	}
	rt.recover()
	rt.wg.Add(1)
	go rt.probeLoop()
}

// Stop halts the probe loop without draining the shards (tests).
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stopc) })
	rt.wg.Wait()
}

// clockNs is the router's obs timebase: wall-clock nanoseconds since the
// router started. The shards' recordings run on virtual time; the
// stitched timeline keeps the two domains apart by lane group, and the
// router events travel as recorded data (never recomputed), so live and
// offline stitches of the same run agree byte for byte.
func (rt *Router) clockNs() int64 {
	return time.Since(rt.base).Nanoseconds()
}

// jobStream / shardStream name the router's obs timelines.
func jobStream(tag string) string  { return "fleet/job/" + tag }
func shardStream(id string) string { return "fleet/shard/" + id }

// WriteObs dumps the router's own recording as canonical JSONL — the
// offline stitcher's router-side input (conventionally RouterObsName in
// the shard trace directory).
func (rt *Router) WriteObs(w io.Writer) error {
	return rt.obs.WriteJSONL(w)
}

// Epoch returns the current ring epoch.
func (rt *Router) Epoch() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.epoch
}

// register performs the registration handshake with one shard.
func (rt *Router) register(id string) {
	rt.mu.Lock()
	s := rt.shards[id]
	url := s.URL
	epoch := rt.epoch
	rt.mu.Unlock()
	body, _ := json.Marshal(serve.FleetRegistration{Shard: id, Epoch: epoch})
	resp, err := rt.do(http.MethodPost, url+"/fleet/register", body, rt.cfg.ProbeTimeout)
	if err != nil {
		rt.cfg.Logf("fleet: registering shard %s: %v", id, err)
		return
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		rt.cfg.Logf("fleet: registering shard %s: status %d", id, resp.StatusCode)
	}
}

// recover rebuilds the fleet job table from the shards' own job tables,
// matching on tags — the restartable-router seam.
func (rt *Router) recover() {
	for _, id := range rt.order {
		rt.mu.Lock()
		url := rt.shards[id].URL
		rt.mu.Unlock()
		infos, err := rt.listJobs(url)
		if err != nil {
			continue
		}
		rt.mu.Lock()
		for _, info := range infos {
			if info.Tag == "" || rt.byTag[info.Tag] != nil {
				continue
			}
			job := &FleetJob{
				ID: len(rt.jobs), Tag: info.Tag, Tenant: info.Tenant, Kind: info.Kind,
				Params: info.Params, TraceID: info.TraceID, Shard: id, ShardJob: info.ID,
				State: info.Status, Reason: info.Reason, Attempts: 1,
			}
			rt.jobs = append(rt.jobs, job)
			rt.byTag[info.Tag] = job
			// Keep fresh tags clear of adopted ones ("f<n>").
			if n, ok := strings.CutPrefix(info.Tag, "f"); ok {
				if v, err := strconv.Atoi(n); err == nil && v >= rt.nextTag {
					rt.nextTag = v + 1
				}
			}
		}
		rt.mu.Unlock()
	}
}

// SubmitStatus is a routed submission's outcome, mirroring the HTTP
// status the front door surfaces.
type SubmitStatus struct {
	Code  int           // 202, 400, 429, or 503
	Job   FleetJob      // the fleet record (zero Job.Tag when nothing was recorded)
	Shard serve.JobInfo // the owning shard's record, when a shard answered
	Err   string        // router-level error, when Code is 503
}

// Submit routes one submission onto the fleet: bounded-load consistent
// hash on the tenant, retry with backoff against the picked shard, and
// failover to the next ring candidate when a shard cannot answer.
func (rt *Router) Submit(req serve.Request) SubmitStatus {
	if rt.draining.Load() {
		return SubmitStatus{Code: http.StatusServiceUnavailable, Err: "fleet: router is draining"}
	}
	rt.mu.Lock()
	rt.stats.submitted++
	if req.Tag == "" {
		req.Tag = fmt.Sprintf("f%d", rt.nextTag)
		rt.nextTag++
	}
	// Stamp the causal trace ID: submitter-chosen if present, else the
	// fleet tag — every shard this job touches echoes it back.
	if req.TraceID == "" {
		req.TraceID = req.Tag
	}
	job := &FleetJob{
		ID: len(rt.jobs), Tag: req.Tag, Tenant: req.Tenant, Kind: req.Kind,
		Params: req.Params, Weight: req.Weight, MinGang: req.MinGang,
		TraceID: req.TraceID, State: stateSubmitted,
	}
	rt.jobs = append(rt.jobs, job)
	rt.byTag[req.Tag] = job
	rt.mu.Unlock()

	info, code, shardID, err := rt.route(req, nil)

	rt.mu.Lock()
	defer rt.mu.Unlock()
	switch {
	case err != nil:
		job.State = "rejected"
		job.Reason = err.Error()
		rt.stats.unrouted++
		return SubmitStatus{Code: http.StatusServiceUnavailable, Job: *job, Err: err.Error()}
	case code == http.StatusAccepted:
		job.Shard = shardID
		job.ShardJob = info.ID
		job.State = info.Status
		job.Attempts++
		rt.stats.accepted++
		rt.shards[shardID].routed++
		return SubmitStatus{Code: code, Job: *job, Shard: info}
	default: // 429 or 400 from the shard: an explicit, terminal answer
		job.Shard = shardID
		job.ShardJob = info.ID
		job.State = "rejected"
		job.Reason = info.Reason
		job.Attempts++
		rt.stats.rejected++
		return SubmitStatus{Code: code, Job: *job, Shard: info}
	}
}

// route picks shards along the ring until one gives a terminal answer.
// exclude lists shards already tried (or known dead) this routing.
func (rt *Router) route(req serve.Request, exclude map[string]bool) (serve.JobInfo, int, string, error) {
	if exclude == nil {
		exclude = make(map[string]bool)
	}
	for hop := 0; ; hop++ {
		rt.mu.Lock()
		eligible := make(map[string]int)
		for id, s := range rt.shards {
			if s.state == shardUp && !exclude[id] {
				eligible[id] = 0
			}
		}
		for _, j := range rt.jobs {
			if _, ok := eligible[j.Shard]; ok && !j.terminal() {
				eligible[j.Shard]++
			}
		}
		rt.mu.Unlock()
		shard, ok := rt.ring.Pick(req.Tenant, eligible, rt.cfg.LoadFactor)
		if !ok {
			rt.obs.Emit(rt.clockNs(), obs.CatSim, jobStream(req.Tag), "unrouted",
				obs.Int("hops", int64(hop)))
			return serve.JobInfo{}, 0, "", errors.New("fleet: no live shard can take the job")
		}
		if hop > 0 {
			rt.mu.Lock()
			rt.stats.reroutes++
			rt.mu.Unlock()
			rt.obs.Emit(rt.clockNs(), obs.CatSim, jobStream(req.Tag), "reroute",
				obs.A("to", shard), obs.Int("hop", int64(hop)))
		}
		info, code, err := rt.postJob(shard, req)
		if err != nil {
			// Transport failure after retries: let the prober see it too,
			// and move to the next ring candidate.
			rt.noteFailure(shard, err)
			exclude[shard] = true
			continue
		}
		if code == http.StatusServiceUnavailable {
			// The shard answered but is draining: reroute, don't retry it.
			rt.markDraining(shard)
			exclude[shard] = true
			continue
		}
		rt.obs.Emit(rt.clockNs(), obs.CatSim, jobStream(req.Tag), "route",
			obs.A("shard", shard), obs.Int("code", int64(code)), obs.Int("hops", int64(hop)))
		return info, code, shard, nil
	}
}

// postJob posts one submission to one shard with retry/backoff on
// transport errors and transient 5xx. A Retry-After header on a 429 or
// retried 5xx overrides the exponential backoff (capped at
// RetryAfterCap): the shard predicts its own queue drain, so its hint
// beats a blind schedule.
func (rt *Router) postJob(shardID string, req serve.Request) (serve.JobInfo, int, error) {
	rt.mu.Lock()
	url := rt.shards[shardID].URL
	rt.mu.Unlock()
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobInfo{}, 0, err
	}
	backoff := rt.cfg.RetryBackoff
	var wait time.Duration // next try's delay, when a Retry-After hint overrides backoff
	var lastErr error
	for try := 0; try <= rt.cfg.SubmitRetries; try++ {
		if try > 0 {
			d := backoff
			backoff *= 2
			if wait > 0 {
				d = wait
				wait = 0
			}
			time.Sleep(d)
			rt.mu.Lock()
			rt.stats.retries++
			rt.mu.Unlock()
			rt.obs.Emit(rt.clockNs(), obs.CatSim, jobStream(req.Tag), "retry",
				obs.A("shard", shardID), obs.Int("try", int64(try)))
		}
		resp, err := rt.do(http.MethodPost, url+"/jobs", body, rt.cfg.SubmitTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if code >= 500 && code != http.StatusServiceUnavailable {
			wait = rt.retryAfterHint(resp)
			drainBody(resp)
			lastErr = fmt.Errorf("fleet: shard %s answered %d", shardID, code)
			continue
		}
		var info serve.JobInfo
		if code != http.StatusServiceUnavailable {
			if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
				drainBody(resp)
				lastErr = fmt.Errorf("fleet: decoding shard %s answer: %w", shardID, err)
				continue
			}
		}
		if code == http.StatusTooManyRequests && try < rt.cfg.SubmitRetries {
			if d := rt.retryAfterHint(resp); d > 0 {
				// Backpressure with a drain prediction: wait it out and
				// retry the same shard instead of surfacing the reject.
				wait = d
				drainBody(resp)
				lastErr = fmt.Errorf("fleet: shard %s shedding (retry after %v)", shardID, d)
				continue
			}
		}
		drainBody(resp)
		return info, code, nil
	}
	return serve.JobInfo{}, 0, lastErr
}

// retryAfterHint parses a response's Retry-After seconds, capped at
// RetryAfterCap; 0 when absent or unparseable.
func (rt *Router) retryAfterHint(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > rt.cfg.RetryAfterCap {
		d = rt.cfg.RetryAfterCap
	}
	return d
}

// probeLoop is the router's heartbeat: health-check every shard, scrape
// job states, fail over lost shards, rebalance skewed queues.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stopc:
			return
		case <-ticker.C:
			dead := rt.probeAll()
			rt.refresh()
			for _, id := range dead {
				rt.failover(id)
			}
			rt.rebalance()
		}
	}
}

// probeAll health-checks every shard, returning shards that just died.
func (rt *Router) probeAll() (newlyDead []string) {
	rt.mu.Lock()
	ids := append([]string(nil), rt.order...)
	rt.mu.Unlock()
	for _, id := range ids {
		rt.mu.Lock()
		s := rt.shards[id]
		url := s.URL
		rt.mu.Unlock()
		resp, err := rt.do(http.MethodGet, url+"/healthz", nil, rt.cfg.ProbeTimeout)
		switch {
		case err == nil && resp.StatusCode == http.StatusOK:
			drainBody(resp)
			rt.mu.Lock()
			s.fails = 0
			s.lastErr = ""
			if s.state != shardUp {
				// Rejoin: a restarted shard comes back empty; its lost jobs
				// were already re-admitted elsewhere.
				s.state = shardUp
				rt.epoch++
				epoch := rt.epoch
				rt.stats.transitions++
				rt.mu.Unlock()
				rt.obs.Emit(rt.clockNs(), obs.CatSim, shardStream(id), "up", obs.Int("epoch", int64(epoch)))
				rt.cfg.Logf("fleet: shard %s rejoined (epoch %d)", id, epoch)
				rt.register(id)
				continue
			}
			rt.mu.Unlock()
		case err == nil && resp.StatusCode == http.StatusServiceUnavailable:
			drainBody(resp)
			rt.markDraining(id)
		default:
			if resp != nil {
				drainBody(resp)
				err = fmt.Errorf("healthz status %d", resp.StatusCode)
			}
			if died := rt.noteFailure(id, err); died {
				newlyDead = append(newlyDead, id)
			}
		}
	}
	return newlyDead
}

// noteFailure records one failed interaction with a shard; FailAfter
// consecutive failures take it out of the ring. Reports whether this
// call killed it.
func (rt *Router) noteFailure(id string, err error) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := rt.shards[id]
	if s == nil || s.state == shardDown {
		return false
	}
	rt.stats.probeFails++
	s.fails++
	if err != nil {
		s.lastErr = err.Error()
	}
	if s.fails < rt.cfg.FailAfter {
		return false
	}
	s.state = shardDown
	rt.epoch++
	rt.stats.transitions++
	rt.obs.Emit(rt.clockNs(), obs.CatSim, shardStream(id), "down",
		obs.Int("epoch", int64(rt.epoch)), obs.A("err", s.lastErr))
	rt.cfg.Logf("fleet: shard %s down after %d failed probes (epoch %d): %s", id, s.fails, rt.epoch, s.lastErr)
	return true
}

// markDraining flips a shard out of the routing set without failover:
// a draining shard finishes its admitted jobs.
func (rt *Router) markDraining(id string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := rt.shards[id]
	if s == nil || s.state != shardUp {
		return
	}
	s.state = shardDraining
	rt.epoch++
	rt.stats.transitions++
	rt.obs.Emit(rt.clockNs(), obs.CatSim, shardStream(id), "draining", obs.Int("epoch", int64(rt.epoch)))
	rt.cfg.Logf("fleet: shard %s draining (epoch %d)", id, rt.epoch)
}

// listJobs fetches one shard's job table.
func (rt *Router) listJobs(url string) ([]serve.JobInfo, error) {
	resp, err := rt.do(http.MethodGet, url+"/jobs", nil, rt.cfg.ProbeTimeout)
	if err != nil {
		return nil, err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: listing jobs: status %d", resp.StatusCode)
	}
	var infos []serve.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// refresh pulls job states from every reachable shard into the fleet
// table (matching on tags), so failover and rebalancing act on fresh
// knowledge of what is queued where.
func (rt *Router) refresh() {
	rt.mu.Lock()
	targets := make(map[string]string)
	for id, s := range rt.shards {
		if s.state != shardDown {
			targets[id] = s.URL
		}
	}
	rt.mu.Unlock()
	for _, id := range rt.order {
		url, ok := targets[id]
		if !ok {
			continue
		}
		infos, err := rt.listJobs(url)
		if err != nil {
			continue
		}
		rt.mu.Lock()
		for _, info := range infos {
			job := rt.byTag[info.Tag]
			if job == nil || job.Shard != id || job.ShardJob != info.ID {
				continue
			}
			job.State = info.Status
			job.Reason = info.Reason
			if info.HasDigest {
				job.Digest = fmt.Sprintf("%016x", info.Digest)
			}
		}
		rt.mu.Unlock()
	}
}

// failover re-admits a dead shard's unfinished jobs onto the survivors:
// queued-but-unstarted jobs lost their place in line, running jobs lost
// their simulated cluster — both are deterministic MapReduce jobs, so
// restart-from-scratch on a survivor is safe and byte-equivalent.
func (rt *Router) failover(dead string) {
	rt.mu.Lock()
	var orphans []*FleetJob
	for _, j := range rt.jobs {
		if j.Shard == dead && !j.terminal() && j.State != stateSubmitted {
			orphans = append(orphans, j)
		}
	}
	rt.mu.Unlock()
	if len(orphans) == 0 {
		return
	}
	rt.cfg.Logf("fleet: shard %s lost with %d unfinished jobs — re-admitting", dead, len(orphans))
	for _, j := range orphans {
		req := serve.Request{Tenant: j.Tenant, Kind: j.Kind, Params: j.Params,
			Weight: j.Weight, MinGang: j.MinGang, Tag: j.Tag, TraceID: j.TraceID}
		info, code, shardID, err := rt.route(req, map[string]bool{dead: true})
		rt.mu.Lock()
		switch {
		case err != nil:
			j.State = "failed"
			j.Reason = "shard " + dead + " lost; re-admission failed: " + err.Error()
			rt.stats.lost++
			rt.obs.Emit(rt.clockNs(), obs.CatSim, jobStream(j.Tag), "lost", obs.A("from", dead))
		case code == http.StatusAccepted:
			j.Shard = shardID
			j.ShardJob = info.ID
			j.State = info.Status
			j.Reason = ""
			j.Attempts++
			rt.stats.failovers++
			rt.shards[shardID].routed++
			rt.obs.Emit(rt.clockNs(), obs.CatSim, jobStream(j.Tag), "failover",
				obs.A("from", dead), obs.A("to", shardID))
		default:
			// The survivor shed it: an explicit terminal answer.
			j.State = "failed"
			j.Reason = "shard " + dead + " lost; re-admission rejected: " + info.Reason
			rt.stats.lost++
			rt.obs.Emit(rt.clockNs(), obs.CatSim, jobStream(j.Tag), "lost", obs.A("from", dead))
		}
		rt.mu.Unlock()
	}
}

// rebalance steals one queued job per cycle from the deepest shard
// queue to the shallowest when the skew crosses the threshold — the
// scheduler's chunk stealing, promoted to the cluster-of-clusters.
func (rt *Router) rebalance() {
	if rt.cfg.SkewThreshold < 0 {
		return
	}
	rt.mu.Lock()
	depth := make(map[string]int)
	for id, s := range rt.shards {
		if s.state == shardUp {
			depth[id] = 0
		}
	}
	if len(depth) < 2 {
		rt.mu.Unlock()
		return
	}
	for _, j := range rt.jobs {
		if _, ok := depth[j.Shard]; ok && j.State == "queued" {
			depth[j.Shard]++
		}
	}
	deep, shallow := deepest(depth), shallowest(depth)
	if deep == "" || shallow == "" || depth[deep]-depth[shallow] < rt.cfg.SkewThreshold {
		rt.mu.Unlock()
		return
	}
	var victim *FleetJob
	// Steal the newest queued job on the deep shard: it has waited the
	// least, so moving it is the cheapest fairness-wise.
	for i := len(rt.jobs) - 1; i >= 0; i-- {
		if j := rt.jobs[i]; j.Shard == deep && j.State == "queued" {
			victim = j
			break
		}
	}
	if victim == nil {
		rt.mu.Unlock()
		return
	}
	deepURL := rt.shards[deep].URL
	shardJob := victim.ShardJob
	tag := victim.Tag
	rt.mu.Unlock()

	// Cancel on the deep shard; a 409 means it started running — no steal.
	resp, err := rt.do(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", deepURL, shardJob), nil, rt.cfg.ProbeTimeout)
	if err != nil {
		rt.noteFailure(deep, err)
		return
	}
	code := resp.StatusCode
	drainBody(resp)
	if code != http.StatusOK {
		return
	}
	req := serve.Request{Tenant: victim.Tenant, Kind: victim.Kind, Params: victim.Params,
		Weight: victim.Weight, MinGang: victim.MinGang, Tag: tag, TraceID: victim.TraceID}
	info, code, err := rt.postJob(shallow, req)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err != nil || code != http.StatusAccepted {
		// The steal target flinched; the job is cancelled on the deep
		// shard, so put it back through normal routing next cycle by
		// marking it failed-over territory.
		victim.State = "failed"
		victim.Reason = fmt.Sprintf("rebalance lost the job (target %s: %v, status %d)", shallow, err, code)
		rt.stats.lost++
		return
	}
	victim.Shard = shallow
	victim.ShardJob = info.ID
	victim.State = info.Status
	victim.Attempts++
	rt.stats.steals++
	rt.shards[shallow].routed++
	rt.obs.Emit(rt.clockNs(), obs.CatSim, jobStream(tag), "steal",
		obs.A("from", deep), obs.A("to", shallow))
	rt.cfg.Logf("fleet: stole job %s from %s (depth %d) to %s (depth %d)",
		tag, deep, depth[deep], shallow, depth[shallow])
}

// deepest / shallowest pick map extremes deterministically (ties by id).
func deepest(depth map[string]int) string {
	best, bestN := "", -1
	for id, n := range depth {
		if n > bestN || (n == bestN && (best == "" || id < best)) {
			best, bestN = id, n
		}
	}
	return best
}

func shallowest(depth map[string]int) string {
	best, bestN := "", -1
	for id, n := range depth {
		if bestN < 0 || n < bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	return best
}

// Jobs snapshots the fleet job table.
func (rt *Router) Jobs() []FleetJob {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]FleetJob, len(rt.jobs))
	for i, j := range rt.jobs {
		out[i] = *j
	}
	return out
}

// Job snapshots one fleet job.
func (rt *Router) Job(id int) (FleetJob, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if id < 0 || id >= len(rt.jobs) {
		return FleetJob{}, false
	}
	return *rt.jobs[id], true
}

// Stats is the router's counter snapshot.
type Stats struct {
	Submitted   int64 `json:"submitted"`   // fleet-level submissions
	Accepted    int64 `json:"accepted"`    // routed to a shard, 202
	Rejected    int64 `json:"rejected"`    // shard answered 429/400
	Unrouted    int64 `json:"unrouted"`    // no live shard could take it, 503
	Retries     int64 `json:"retries"`     // same-shard submission retries
	Reroutes    int64 `json:"reroutes"`    // submissions moved to another ring candidate
	Failovers   int64 `json:"failovers"`   // jobs re-admitted after a shard loss
	Lost        int64 `json:"lost"`        // jobs no survivor would take
	Steals      int64 `json:"steals"`      // queued jobs rebalanced off a deep shard
	Transitions int64 `json:"transitions"` // ring membership changes
	ProbeFails  int64 `json:"probeFails"`  // failed interactions with non-down shards
}

// Stats snapshots the router's counters.
func (rt *Router) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := rt.stats
	return Stats{
		Submitted: s.submitted, Accepted: s.accepted, Rejected: s.rejected,
		Unrouted: s.unrouted, Retries: s.retries, Reroutes: s.reroutes,
		Failovers: s.failovers, Lost: s.lost, Steals: s.steals,
		Transitions: s.transitions, ProbeFails: s.probeFails,
	}
}

// ShardStatus is one shard's health snapshot.
type ShardStatus struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	State   string `json:"state"`
	Fails   int    `json:"fails,omitempty"`
	LastErr string `json:"lastErr,omitempty"`
	Queued  int    `json:"queued"`  // router-view queued jobs
	Running int    `json:"running"` // router-view running jobs
	Routed  int64  `json:"routed"`  // accepted submissions ever routed here
}

// RingStatus is the fleet health snapshot.
type RingStatus struct {
	Epoch    int           `json:"epoch"`
	Draining bool          `json:"draining"`
	Shards   []ShardStatus `json:"shards"`
}

// Status snapshots ring membership and per-shard health.
func (rt *Router) Status() RingStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := RingStatus{Epoch: rt.epoch, Draining: rt.draining.Load()}
	for _, id := range rt.order {
		s := rt.shards[id]
		ss := ShardStatus{ID: s.ID, URL: s.URL, State: s.state, Fails: s.fails, LastErr: s.lastErr, Routed: s.routed}
		for _, j := range rt.jobs {
			if j.Shard != id || j.terminal() {
				continue
			}
			switch j.State {
			case "queued":
				ss.Queued++
			case "running":
				ss.Running++
			}
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}

// Proxy forwards a GET to the shard owning a fleet job (output,
// timeline, raw record), streaming the shard's answer through.
func (rt *Router) Proxy(w io.Writer, fleetID int, suffix string) (int, string, error) {
	rt.mu.Lock()
	if fleetID < 0 || fleetID >= len(rt.jobs) {
		rt.mu.Unlock()
		return http.StatusNotFound, "", fmt.Errorf("fleet: no job %d", fleetID)
	}
	j := rt.jobs[fleetID]
	s := rt.shards[j.Shard]
	if s == nil || s.state == shardDown {
		rt.mu.Unlock()
		return http.StatusBadGateway, "", fmt.Errorf("fleet: job %d's shard %s is down", fleetID, j.Shard)
	}
	url := fmt.Sprintf("%s/jobs/%d%s", s.URL, j.ShardJob, suffix)
	rt.mu.Unlock()
	resp, err := rt.do(http.MethodGet, url, nil, rt.cfg.SubmitTimeout)
	if err != nil {
		return http.StatusBadGateway, "", err
	}
	defer drainBody(resp)
	if _, err := io.Copy(w, resp.Body); err != nil {
		return resp.StatusCode, resp.Header.Get("Content-Type"), err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), nil
}

// Cancel withdraws a queued fleet job from its shard.
func (rt *Router) Cancel(fleetID int) (int, error) {
	rt.mu.Lock()
	if fleetID < 0 || fleetID >= len(rt.jobs) {
		rt.mu.Unlock()
		return http.StatusNotFound, fmt.Errorf("fleet: no job %d", fleetID)
	}
	j := rt.jobs[fleetID]
	s := rt.shards[j.Shard]
	if s == nil || s.state == shardDown {
		rt.mu.Unlock()
		return http.StatusBadGateway, fmt.Errorf("fleet: job %d's shard %s is down", fleetID, j.Shard)
	}
	url := fmt.Sprintf("%s/jobs/%d", s.URL, j.ShardJob)
	rt.mu.Unlock()
	resp, err := rt.do(http.MethodDelete, url, nil, rt.cfg.ProbeTimeout)
	if err != nil {
		return http.StatusBadGateway, err
	}
	code := resp.StatusCode
	drainBody(resp)
	if code == http.StatusOK {
		rt.mu.Lock()
		j.State = "cancelled"
		rt.mu.Unlock()
	}
	return code, nil
}

// Drain shuts the fleet down: stop probing, stop admitting, then walk
// every reachable shard through the drain handshake and collect its
// final report. Responses come back sorted by shard ID — the
// deterministic merge order. Idempotent: every caller after the first
// gets the cached responses.
func (rt *Router) Drain() ([]serve.DrainResponse, error) {
	rt.drainOnce.Do(func() { rt.drainResps, rt.drainErr = rt.drain() })
	return rt.drainResps, rt.drainErr
}

func (rt *Router) drain() ([]serve.DrainResponse, error) {
	rt.draining.Store(true)
	rt.Stop()
	rt.mu.Lock()
	type target struct{ id, url string }
	var targets []target
	for _, id := range rt.order {
		if s := rt.shards[id]; s.state != shardDown {
			targets = append(targets, target{id, s.URL})
		}
	}
	rt.mu.Unlock()
	var resps []serve.DrainResponse
	var firstErr error
	for _, t := range targets {
		resp, err := rt.do(http.MethodPost, t.url+"/drain", nil, rt.cfg.DrainTimeout)
		if err != nil {
			rt.cfg.Logf("fleet: draining shard %s: %v", t.id, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var dr serve.DrainResponse
		err = json.NewDecoder(resp.Body).Decode(&dr)
		drainBody(resp)
		if err != nil {
			rt.cfg.Logf("fleet: decoding drain response from %s: %v", t.id, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if dr.Shard == "" {
			dr.Shard = t.id // unregistered standalone shard
		}
		resps = append(resps, dr)
	}
	sort.Slice(resps, func(i, j int) bool { return resps[i].Shard < resps[j].Shard })
	return resps, firstErr
}

// do issues one HTTP request with a per-request timeout.
func (rt *Router) do(method, url string, body []byte, timeout time.Duration) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases the request context when the body is closed.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// drainBody discards and closes a response body so connections recycle.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
