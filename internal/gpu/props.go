// Package gpu models a CUDA-class GPU for the GPMR simulation.
//
// The model is functional + costed: kernels execute real Go code over
// host-resident "device buffers" so every result can be checked for
// correctness, while the time they consume on the simulated device comes
// from a roofline cost model (max of compute time and memory time, plus
// launch overhead, uncoalesced-access penalties, and global-atomic
// throughput limits). Device memory capacity is accounted so out-of-core
// effects — the heart of GPMR's chunking design — appear exactly where they
// would on real hardware.
//
// The default property set (GT200) matches the NVIDIA Tesla S1070 GPUs of
// the paper's NCSA Accelerator cluster, with RAM limited to 1 GB as in the
// paper's test configuration.
package gpu

import "repro/internal/des"

// Props describes a GPU's performance-relevant characteristics.
type Props struct {
	Name       string
	SMs        int     // streaming multiprocessors
	CoresPerSM int     // scalar cores per SM
	ClockHz    float64 // shader clock

	// SustainedFlops is the achievable arithmetic throughput (flops/s) for
	// well-tuned kernels; it already folds in issue-efficiency losses, so
	// kernel specs should report true algorithmic flop counts.
	SustainedFlops float64

	// MemBandwidth is the achievable global-memory bandwidth (bytes/s) for
	// fully coalesced access (≈75% of the theoretical pin bandwidth).
	MemBandwidth float64

	// UncoalescedPenalty divides MemBandwidth for scattered access; GT200
	// serviced a worst-case scattered warp access as up to 32 transactions,
	// but typical MapReduce scatter patterns see ~8×.
	UncoalescedPenalty float64

	// AtomicThroughput is global-atomic operations per second on distinct
	// addresses; conflicts divide it further (see KernelSpec).
	AtomicThroughput float64

	// MemBytes is usable device memory. The paper limits the S1070's 4 GB
	// parts to 1 GB for testing; we do the same.
	MemBytes int64

	// LaunchOverhead is the fixed cost of a kernel launch (driver +
	// hardware), ~5 µs on the CUDA 3.0 / GT200 stack.
	LaunchOverhead des.Time

	// MaxResidentThreads is the device-wide thread count needed to fully
	// hide latency; smaller launches see proportionally lower throughput.
	MaxResidentThreads int64

	// CopyEngines is the number of independent DMA engines (1 on GT200, so
	// H2D and D2H copies serialize against each other but overlap compute).
	CopyEngines int
}

// GT200 returns the properties of a Tesla S1070-class GT200 GPU as
// configured in the paper (1 GB usable RAM).
func GT200() Props {
	return Props{
		Name:               "GT200 (Tesla S1070, 1 GB limit)",
		SMs:                30,
		CoresPerSM:         8,
		ClockHz:            1.296e9,
		SustainedFlops:     400e9, // of 622 GFLOPS peak MAD
		MemBandwidth:       77e9,  // of 102 GB/s theoretical
		UncoalescedPenalty: 8,
		AtomicThroughput:   600e6,
		MemBytes:           1 << 30,
		LaunchOverhead:     5 * des.Microsecond,
		MaxResidentThreads: 30 * 1024,
		CopyEngines:        1,
	}
}

// PCIeProps describes one PCIe link between host and GPU(s).
type PCIeProps struct {
	Bandwidth float64  // effective bytes/s per direction
	Latency   des.Time // per-transfer setup cost
}

// PCIeGen1x16 returns the effective characteristics of a generation-1
// PCIe x16 link (4 GB/s theoretical, ~3.2 GB/s achieved, ~10 µs
// per-transfer overhead through the 2011 CUDA stack). The paper's cluster
// attaches its InfiniBand HCAs through gen-1 PCIe.
func PCIeGen1x16() PCIeProps {
	return PCIeProps{Bandwidth: 3.2e9, Latency: 10 * des.Microsecond}
}

// PCIeGen2x16 returns the effective characteristics of a generation-2
// PCIe x16 link (8 GB/s theoretical, ~5.2 GB/s achieved with pinned
// buffers). The Tesla S1070's host interface cards are gen-2 parts, each
// shared by two of the unit's four GPUs.
func PCIeGen2x16() PCIeProps {
	return PCIeProps{Bandwidth: 5.2e9, Latency: 8 * des.Microsecond}
}
