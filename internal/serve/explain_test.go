package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestExplainAcrossShardsAndBackends is the acceptance gate for the
// explain endpoint: every job's breakdown must (a) partition the job's
// end-to-end latency exactly — contiguous phases whose durations sum to
// it — and (b) be byte-identical, in both JSON and text renderings,
// across engine shard counts {1, 2, per-node} and kernel backends
// {serial, pool}.
func TestExplainAcrossShardsAndBackends(t *testing.T) {
	tr := metricsTrace()
	tr.Events[0].Arrive.TraceID = "f7"

	configs := []struct {
		name            string
		shards, workers int
	}{
		{"shard1-serial", 1, 0},
		{"shard2-pool", 2, 4},
		{"pernode-pool", -1, 4},
	}
	var golden string
	for _, c := range configs {
		ses, _, err := replaySession(tr, ReplayOptions{Obs: obs.New(), Shards: c.shards, Workers: c.workers})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var b strings.Builder
		for _, info := range ses.jobs {
			ex, err := ses.explain(info.Name)
			if err != nil {
				t.Fatalf("%s: explain %s: %v", c.name, info.Name, err)
			}
			var sum int64
			cur := ex.ArrivalNs
			for _, p := range ex.Phases {
				if p.StartNs != cur {
					t.Errorf("%s: %s: phase %q starts at %d, previous ended at %d",
						c.name, info.Name, p.Name, p.StartNs, cur)
				}
				cur = p.EndNs
				sum += p.DurNs
			}
			if sum != ex.LatencyNs {
				t.Errorf("%s: %s: phases sum to %d, latency %d", c.name, info.Name, sum, ex.LatencyNs)
			}
			if cur != ex.FinishNs {
				t.Errorf("%s: %s: phases end at %d, finish %d", c.name, info.Name, cur, ex.FinishNs)
			}
			j, err := json.Marshal(ex)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(j)
			b.WriteByte('\n')
			b.WriteString(ex.String())
		}
		if golden == "" {
			golden = b.String()
		} else if b.String() != golden {
			t.Errorf("%s: explanations differ from %s:\n--- golden\n%s\n--- got\n%s",
				c.name, configs[0].name, golden, b.String())
		}
	}

	// The trace ID threads through: job record and explanation both echo
	// the submission's stamp.
	ses, _, err := replaySession(tr, ReplayOptions{Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if got := ses.jobs[0].TraceID; got != "f7" {
		t.Errorf("job TraceID = %q, want f7", got)
	}
	ex, err := ses.explain(ses.jobs[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if ex.TraceID != "f7" {
		t.Errorf("explanation TraceID = %q, want f7", ex.TraceID)
	}
	if ex.State != "done" || len(ex.Phases) != 7 {
		t.Errorf("placed job explanation: %+v", ex)
	}

	// Without a recorder, explain refuses cleanly.
	plain, _, err := replaySession(metricsTrace(), ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.explain(plain.jobs[0].Name); err != ErrNoRecorder {
		t.Errorf("explain without recorder: err = %v, want ErrNoRecorder", err)
	}
}
