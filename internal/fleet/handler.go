package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/serve"
)

// HandlerConfig tunes the router's HTTP surface.
type HandlerConfig struct {
	// OnDrain, when set, is invoked once (on its own goroutine) after a
	// POST /drain has drained every shard and written the merged report —
	// the host process's cue to shut the listener down and exit.
	OnDrain func()
	// Logf receives handler-level diagnostics. Defaults to log.Printf.
	Logf func(format string, args ...any)
}

// DrainSummary is the fleet drain handshake's answer: every shard's
// drain response plus the merged report (see Merge) that a
// gpmrfleet -replay of the shard traces must reproduce byte for byte.
type DrainSummary struct {
	Shards []serve.DrainResponse `json:"shards"`
	Report string                `json:"report"`
}

// handler is the fleet front door: the same job API a single gpmrd
// shard serves, backed by the router instead of one cluster.
type handler struct {
	rt  *Router
	cfg HandlerConfig

	drainOnce sync.Once
	drainDone chan struct{}
	drainResp DrainSummary
	drainErr  error
}

// NewHandler builds the router's HTTP API.
//
//	POST   /jobs                 submit → routed to a shard → 202 fleet job record
//	GET    /jobs                 the fleet job table
//	GET    /jobs/{id}            one fleet job record
//	GET    /jobs/{id}/output     proxied to the owning shard
//	GET    /jobs/{id}/timeline   proxied to the owning shard
//	GET    /jobs/{id}/explain    shard's phase breakdown wrapped with the
//	                             router hop record (?format=text for prose)
//	DELETE /jobs/{id}            cancel, proxied to the owning shard
//	GET    /timeline             live stitched fleet timeline (router +
//	                             every shard, per-shard lane groups)
//	GET    /shards               ring membership + per-shard health
//	GET    /metrics              Prometheus text exposition (router counters)
//	GET    /healthz              liveness: 200 "ok", or 503 "draining"
//	POST   /drain                drain every shard, answer with the merged report
func NewHandler(rt *Router, cfg HandlerConfig) http.Handler {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	h := &handler{rt: rt, cfg: cfg, drainDone: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", h.submit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, rt.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", h.job)
	mux.HandleFunc("DELETE /jobs/{id}", h.cancel)
	mux.HandleFunc("GET /jobs/{id}/output", h.proxy("/output"))
	mux.HandleFunc("GET /jobs/{id}/timeline", h.proxy("/timeline"))
	mux.HandleFunc("GET /jobs/{id}/explain", h.explain)
	mux.HandleFunc("GET /timeline", h.timeline)
	mux.HandleFunc("GET /shards", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, rt.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, rt)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if rt.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /drain", h.drain)
	return mux
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	var req serve.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	st := h.rt.Submit(req)
	if st.Err != "" && st.Code == http.StatusServiceUnavailable {
		h.writeJSON(w, st.Code, map[string]string{"error": st.Err})
		return
	}
	if st.Code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	h.writeJSON(w, st.Code, st.Job)
}

func (h *handler) jobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		h.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id"})
		return 0, false
	}
	return id, true
}

func (h *handler) job(w http.ResponseWriter, r *http.Request) {
	id, ok := h.jobID(w, r)
	if !ok {
		return
	}
	job, ok := h.rt.Job(id)
	if !ok {
		h.writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	h.writeJSON(w, http.StatusOK, job)
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	id, ok := h.jobID(w, r)
	if !ok {
		return
	}
	code, err := h.rt.Cancel(id)
	if err != nil {
		h.writeJSON(w, code, map[string]string{"error": err.Error()})
		return
	}
	if code != http.StatusOK {
		h.writeJSON(w, code, map[string]string{"error": "shard refused the cancel"})
		return
	}
	h.writeJSON(w, http.StatusOK, map[string]bool{"cancelled": true})
}

// proxy forwards a per-job GET to the owning shard, preserving the
// shard's status and content type.
func (h *handler) proxy(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, ok := h.jobID(w, r)
		if !ok {
			return
		}
		var buf bytes.Buffer
		code, ctype, err := h.rt.Proxy(&buf, id, suffix)
		if err != nil {
			h.writeJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		if ctype != "" {
			w.Header().Set("Content-Type", ctype)
		}
		w.WriteHeader(code)
		if _, err := w.Write(buf.Bytes()); err != nil {
			h.cfg.Logf("fleet: writing proxied response: %v", err)
		}
	}
}

// explain proxies a job's phase breakdown from its owning shard and
// prepends the router's hop record — the fleet half of the causal
// chain — so the answer covers router → shard → sched → core.
func (h *handler) explain(w http.ResponseWriter, r *http.Request) {
	id, ok := h.jobID(w, r)
	if !ok {
		return
	}
	job, ok := h.rt.Job(id)
	if !ok {
		h.writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	text := r.URL.Query().Get("format") == "text"
	suffix := "/explain"
	if text {
		suffix += "?format=text"
	}
	var buf bytes.Buffer
	code, ctype, err := h.rt.Proxy(&buf, id, suffix)
	if err != nil {
		h.writeJSON(w, code, map[string]string{"error": err.Error()})
		return
	}
	if code != http.StatusOK {
		// The shard's own error answer passes through untouched.
		if ctype != "" {
			w.Header().Set("Content-Type", ctype)
		}
		w.WriteHeader(code)
		w.Write(buf.Bytes())
		return
	}
	if text {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "fleet: job %d  tag %s  trace %s  shard %s  attempts %d  state %s\n",
			job.ID, job.Tag, job.TraceID, job.Shard, job.Attempts, job.State)
		if _, err := w.Write(buf.Bytes()); err != nil {
			h.cfg.Logf("fleet: writing explain response: %v", err)
		}
		return
	}
	h.writeJSON(w, http.StatusOK, struct {
		Fleet   FleetJob        `json:"fleet"`
		Explain json.RawMessage `json:"explain"`
	}{job, json.RawMessage(bytes.TrimSpace(buf.Bytes()))})
}

// timeline serves the live stitched fleet timeline.
func (h *handler) timeline(w http.ResponseWriter, r *http.Request) {
	// Buffered: a shard fetch failure must still become a clean status.
	var buf bytes.Buffer
	if err := h.rt.WriteTimeline(&buf); err != nil {
		h.writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		h.cfg.Logf("fleet: writing timeline response: %v", err)
	}
}

func (h *handler) drain(w http.ResponseWriter, r *http.Request) {
	h.drainOnce.Do(func() {
		defer close(h.drainDone)
		resps, err := h.rt.Drain()
		if err != nil && len(resps) == 0 {
			h.drainErr = err
			return
		}
		h.drainResp = DrainSummary{Shards: resps, Report: Merge(resps)}
		if h.cfg.OnDrain != nil {
			// On a fresh goroutine: the host's shutdown path may wait for
			// this very handler to return.
			go h.cfg.OnDrain()
		}
	})
	<-h.drainDone
	if h.drainErr != nil {
		h.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": h.drainErr.Error()})
		return
	}
	h.writeJSON(w, http.StatusOK, h.drainResp)
}

func (h *handler) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		h.cfg.Logf("fleet: encoding %d response: %v", code, err)
	}
}

// writeMetrics renders the router's Prometheus text exposition.
func writeMetrics(w io.Writer, rt *Router) {
	s := rt.Stats()
	st := rt.Status()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("gpmr_fleet_submissions_total", "Fleet-level submissions.", s.Submitted)
	counter("gpmr_fleet_accepted_total", "Submissions routed onto a shard.", s.Accepted)
	counter("gpmr_fleet_rejected_total", "Submissions a shard explicitly shed.", s.Rejected)
	counter("gpmr_fleet_unrouted_total", "Submissions no live shard could take.", s.Unrouted)
	counter("gpmr_fleet_retries_total", "Same-shard submission retries.", s.Retries)
	counter("gpmr_fleet_reroutes_total", "Submissions moved to another ring candidate.", s.Reroutes)
	counter("gpmr_fleet_failovers_total", "Jobs re-admitted after a shard loss.", s.Failovers)
	counter("gpmr_fleet_lost_total", "Jobs no survivor would take.", s.Lost)
	counter("gpmr_fleet_steals_total", "Queued jobs rebalanced off a deep shard.", s.Steals)
	counter("gpmr_fleet_transitions_total", "Ring membership changes.", s.Transitions)
	counter("gpmr_fleet_probe_failures_total", "Failed interactions (probes or submissions) with non-down shards.", s.ProbeFails)
	fmt.Fprintf(w, "# HELP gpmr_fleet_ring_epoch Current ring epoch.\n# TYPE gpmr_fleet_ring_epoch gauge\ngpmr_fleet_ring_epoch %d\n", st.Epoch)
	fmt.Fprintln(w, "# HELP gpmr_fleet_shard_up Shard liveness (1 up, 0 draining or down).")
	fmt.Fprintln(w, "# TYPE gpmr_fleet_shard_up gauge")
	for _, sh := range st.Shards {
		up := 0
		if sh.State == shardUp {
			up = 1
		}
		fmt.Fprintf(w, "gpmr_fleet_shard_up{shard=%q} %d\n", sh.ID, up)
	}
	// One-hot state gauge: dashboards see the current state directly, not
	// just liveness — a draining shard is healthy but leaving.
	fmt.Fprintln(w, "# HELP gpmr_fleet_shard_state Shard state one-hot (exactly one of up/draining/down is 1).")
	fmt.Fprintln(w, "# TYPE gpmr_fleet_shard_state gauge")
	for _, sh := range st.Shards {
		for _, state := range []string{shardUp, shardDraining, shardDown} {
			v := 0
			if sh.State == state {
				v = 1
			}
			fmt.Fprintf(w, "gpmr_fleet_shard_state{shard=%q,state=%q} %d\n", sh.ID, state, v)
		}
	}
	fmt.Fprintln(w, "# HELP gpmr_fleet_routed_total Accepted submissions per shard.")
	fmt.Fprintln(w, "# TYPE gpmr_fleet_routed_total counter")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "gpmr_fleet_routed_total{shard=%q} %d\n", sh.ID, sh.Routed)
	}
	fmt.Fprintln(w, "# HELP gpmr_fleet_shard_queued Router-view queued jobs per shard.")
	fmt.Fprintln(w, "# TYPE gpmr_fleet_shard_queued gauge")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "gpmr_fleet_shard_queued{shard=%q} %d\n", sh.ID, sh.Queued)
	}
}
