package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/des"
	"repro/internal/serve"
	"repro/internal/workload"
)

// The open-system experiment: where multijob replays one fixed batch,
// this sweeps OFFERED LOAD against the online serving layer — the same
// seeded job mix arriving faster and faster, with a bounded admission
// queue and per-tenant quotas — and reports what an open system actually
// trades: tail latency against reject/shed rate, per policy. Every run
// goes through serve's deterministic replay path (no wall clock), so the
// table is bit-identical across runs and hosts.

// OnlineGPUs is the shared cluster for the open-system sweep.
const OnlineGPUs = 16

// OnlineJobs is the arrival-stream length per load point.
const OnlineJobs = 16

// OnlineMaxQueue bounds the admission queue: load beyond what the
// cluster absorbs turns into sheds, not unbounded queueing.
const OnlineMaxQueue = 4

// OnlineQuota caps any one tenant's in-flight jobs.
const OnlineQuota = 3

// onlineGapsMs are the mean inter-arrival gaps swept, loosest to
// tightest (offered load rises left to right in the report).
var onlineGapsMs = []float64{16, 8, 4}

// onlineTenants cycle through the stream's submissions.
var onlineTenants = []string{"ana", "bo", "cy"}

// onlineStream builds the seeded arrival stream for one load point as a
// recorded trace body: exponential inter-arrival gaps, the multijob-style
// kind mix (small WO/KMC queries, medium and large SIO scans), tenants
// round-robin. A pure function of (options, gap), so every policy at a
// given load sees byte-identical arrivals.
func onlineStream(o Options, gapMs float64) []serve.Event {
	rng := workload.NewRNG(o.Seed + 0x517cc1b7)
	var evs []serve.Event
	var at des.Time
	for i := 0; i < OnlineJobs; i++ {
		u := rng.Float64()
		at += des.FromSeconds(gapMs / 1e3 * -math.Log(1-u))
		seed := int64(o.Seed) + int64(i)*1000
		var kind string
		var params serve.Params
		switch rng.Intn(4) {
		case 0:
			kind, params = "wo", serve.Params{"bytes": 4 << 20, "gpus": 2, "seed": seed}
		case 1:
			kind, params = "kmc", serve.Params{"points": 4 << 20, "gpus": 2, "seed": seed}
		case 2:
			kind, params = "sio", serve.Params{"elements": 8 << 20, "gpus": 4, "seed": seed, "chunkcap": 1 << 20}
		default:
			kind, params = "sio", serve.Params{"elements": 32 << 20, "gpus": 12, "seed": seed, "chunkcap": 1 << 20}
		}
		evs = append(evs, serve.Event{Arrive: &serve.Arrival{
			Seq: i, At: at, Tenant: onlineTenants[i%len(onlineTenants)], Kind: kind, Params: params,
		}})
	}
	return evs
}

// OnlineRow is one (load, policy) cell of the sweep.
type OnlineRow struct {
	GapMs    float64
	Policy   string
	Jobs     int
	Admitted int64
	Shed     int64
	Quota    int64
	Rejected float64 // reject fraction of offered jobs
	P50      des.Time
	P95      des.Time
	MeanWait des.Time
	Makespan des.Time
}

// Online sweeps offered load × admission policy through the online
// serving layer's replay path and reports per-cell latency percentiles
// (over admitted jobs) and reject rates.
func Online(o Options) ([]OnlineRow, error) {
	o = o.withDefaults()
	var rows []OnlineRow
	for _, gap := range onlineGapsMs {
		evs := onlineStream(o, gap)
		for _, pol := range multijobPolicies() {
			h := serve.Header{
				Version:     serve.TraceVersion,
				Policy:      pol.Kind.String(),
				Share:       pol.Share,
				GPUs:        OnlineGPUs,
				GPUsPerNode: 4,
				MaxQueue:    OnlineMaxQueue,
				Quota:       OnlineQuota,
				PhysBudget:  o.PhysBudget,
			}
			// Prefix this cell's flight-recorder streams so all nine
			// (load, policy) replays stay distinct in one trace file.
			o.Obs.SetPrefix(fmt.Sprintf("%.0fms/%s/", gap, pol.Kind))
			rep, err := serve.Replay(&serve.Trace{Header: h, Events: evs},
				serve.ReplayOptions{Workers: o.Workers, Shards: o.Shards, Obs: o.Obs})
			if err != nil {
				o.Obs.SetPrefix("")
				return nil, fmt.Errorf("online: gap %.0fms policy %s: %w", gap, pol.Kind, err)
			}
			s := rep.Stats
			rows = append(rows, OnlineRow{
				GapMs:    gap,
				Policy:   pol.Kind.String(),
				Jobs:     OnlineJobs,
				Admitted: s.Admitted,
				Shed:     s.RejectedShed,
				Quota:    s.RejectedQuota,
				Rejected: float64(s.RejectedShed+s.RejectedQuota+s.RejectedInvalid) / float64(OnlineJobs),
				P50:      rep.Cluster.LatencyPercentile(50, nil),
				P95:      rep.Cluster.LatencyPercentile(95, nil),
				MeanWait: rep.Cluster.MeanWait(),
				Makespan: rep.Cluster.Makespan,
			})
		}
	}
	o.Obs.SetPrefix("")
	return rows, nil
}

// RenderOnline writes the offered-load sweep.
func RenderOnline(w io.Writer, rows []OnlineRow) {
	fmt.Fprintf(w, "Open-system serving — %d-job streams on %d shared GPUs, queue bound %d, tenant quota %d\n",
		OnlineJobs, OnlineGPUs, OnlineMaxQueue, OnlineQuota)
	fmt.Fprintf(w, "%8s %-15s %5s %5s %6s %7s %12s %12s %12s\n",
		"gap", "policy", "admit", "shed", "quota", "rej%", "p50 lat", "p95 lat", "mean wait")
	lastGap := -1.0
	for _, r := range rows {
		if r.GapMs != lastGap && lastGap >= 0 {
			fmt.Fprintln(w)
		}
		lastGap = r.GapMs
		fmt.Fprintf(w, "%6.0fms %-15s %5d %5d %6d %6.1f%% %12v %12v %12v\n",
			r.GapMs, r.Policy, r.Admitted, r.Shed, r.Quota, 100*r.Rejected, r.P50, r.P95, r.MeanWait)
	}
}
