package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/obs"
)

// faultState is the runtime's fault bookkeeping. The model (see
// internal/fault): the *GPU* fail-stops while the host-side rank process
// survives, so input chunks queued to the rank and shuffle pairs it has
// received remain reachable and move over the fabric during recovery;
// only device-resident state (in-flight maps, undrained emit buffers) is
// lost and re-executed.
type faultState struct {
	failed []bool
	// owner maps each reduce partition to the rank currently owning it
	// (identity until a failure reassigns a partition to a successor).
	owner  []int
	closed []bool // rank's shuffle receive loop has exited
	// relayTo records each failed rank's direct successor at failure
	// time (-1 while alive). The failed rank's relay-done marker is
	// addressed there — NOT to the partitions' current owner — so that
	// in a chain of failures each dead proxy stays in its receive loop
	// until the streams it is owed terminate, and its own exit marker
	// then summarizes everything it ever forwarded. Markers and data
	// share FIFO fabric paths, so a successor that has its marker has
	// all the data.
	relayTo []int
	// pendingRelay counts the relay-done markers a rank must await
	// before closing its shuffle (one per failure it directly
	// succeeded); relayDone counts those received. They live here (not
	// in rankState) so the failure handler can update them atomically
	// with the ownership move.
	pendingRelay []int
	relayDone    []int
	chunkTrig    []fault.Event // events with chunk-count triggers
}

func newFaultState(n int) faultState {
	fs := faultState{
		failed:       make([]bool, n),
		owner:        make([]int, n),
		closed:       make([]bool, n),
		relayTo:      make([]int, n),
		pendingRelay: make([]int, n),
		relayDone:    make([]int, n),
	}
	for i := range fs.owner {
		fs.owner[i] = i
		fs.relayTo[i] = -1
	}
	return fs
}

// resilient reports whether fault tolerance is active for this run.
func (rt *runtime[V]) resilient() bool { return rt.cfg.resilient() }

// ownerOf returns the rank currently owning a reduce partition.
func (rt *runtime[V]) ownerOf(part int) int { return rt.ft.owner[part] }

// partitionsOf lists the partitions a rank currently owns, ascending, so
// per-partition sort/reduce and gather run in a deterministic order.
func (rt *runtime[V]) partitionsOf(rank int) []int {
	var parts []int
	for part, o := range rt.ft.owner {
		if o == rank {
			parts = append(parts, part)
		}
	}
	return parts
}

// successor picks the rank that inherits a failed rank's partitions: the
// next live rank (wrapping) whose shuffle is still open, or -1 when every
// other shuffle has closed (by then all map output is delivered and no
// handoff is needed).
func (rt *runtime[V]) successor(f int) int {
	n := rt.cfg.GPUs
	for i := 1; i < n; i++ {
		r := (f + i) % n
		if !rt.ft.failed[r] && !rt.ft.closed[r] {
			return r
		}
	}
	return -1
}

// failRank applies a fail-stop to rank f at the current simulated time:
//
//  1. The scheduler requeues f's queued and running (undelivered) chunks
//     to the survivors, which re-execute them (charging input re-fetch
//     from f's node over the fabric, like a steal).
//  2. f's reduce partitions are reassigned to a successor; the
//     partitioner's output is redirected at every sender from now on.
//  3. f's reduce loop is told (via a control message) to relay its
//     host-resident shuffle state — and any still-in-flight deliveries —
//     to the successor, closing with a relay-done marker the successor
//     waits for before declaring its shuffle complete.
//
// Together with the bin process's commit-on-dequeue rule this delivers
// every (chunk, partition) bucket exactly once, so the job's functional
// output is identical to a failure-free run.
func (rt *runtime[V]) failRank(p *des.Proc, f int) {
	if rt.ft.failed[f] {
		return
	}
	rt.ft.failed[f] = true
	rt.traces[f].Failed = true
	rt.traces[f].FailedAt = p.Now() - rt.start
	if rt.obs.Enabled() {
		rt.obs.Emit(int64(p.Now()), obs.CatSim, fmt.Sprintf("%s/r%d", rt.cfg.Name, f), "fail")
	}
	rt.sched.fail(f)
	if rt.ft.closed[f] {
		// Post-shuffle injection: f's map output is fully delivered and
		// its partition already staged host-side; recorded, no recovery.
		return
	}
	s := rt.successor(f)
	if s < 0 {
		// Every other shuffle closed, so nothing can still be in flight;
		// f keeps its partitions and its host-staged data is processed
		// as if the failure hit after the rank's work.
		return
	}
	for part, o := range rt.ft.owner {
		if o == f {
			rt.ft.owner[part] = s
		}
	}
	// The successor must wait for f's relay-done marker before closing
	// its shuffle. f itself keeps waiting for any markers it is still
	// owed from failures it succeeded earlier — its proxy loop forwards
	// that traffic and its own marker then covers all of it.
	rt.ft.relayTo[f] = s
	rt.ft.pendingRelay[s]++
	// Count the control message in f's sent-byte provenance (same-rank,
	// so always local) — the receive side counts it on dequeue, and the
	// per-rank sent/recv totals must balance.
	rt.traces[f].SentLocalBytes += endMsgBytes
	rt.g.send(p, f, f, tagFault, endMsgBytes, nil)
}

// applyFault executes one injection-plan event.
func (rt *runtime[V]) applyFault(p *des.Proc, ev fault.Event) {
	switch ev.Kind {
	case fault.FailStop:
		rt.failRank(p, ev.Rank)
	case fault.Straggler:
		rt.g.setDerate(ev.Rank, ev.Factor)
		if ev.Factor > rt.traces[ev.Rank].Derated {
			rt.traces[ev.Rank].Derated = ev.Factor
		}
		if rt.obs.Enabled() {
			rt.obs.Emit(int64(p.Now()), obs.CatSim,
				fmt.Sprintf("%s/r%d", rt.cfg.Name, ev.Rank), "derate",
				obs.Float("factor", ev.Factor))
		}
	}
}

// afterChunk fires chunk-count triggers: rank just finished mapping its
// nth chunk. Called from the rank's own map process, so a fail-stop takes
// effect before the chunk's output leaves the GPU.
func (rt *runtime[V]) afterChunk(p *des.Proc, rank, n int) {
	for _, ev := range rt.ft.chunkTrig {
		if ev.Rank == rank && ev.AfterChunks == n {
			rt.applyFault(p, ev)
		}
	}
}

// spawnInjectors schedules the plan's time-triggered events as simulated
// processes and registers the chunk-count triggers. Injector processes
// are part of the job's lifetime: a time-triggered event beyond the
// job's natural completion extends it (and, on a shared cluster, holds
// the gang) until the event fires — injectors must not outlive the job,
// or a straggler event could derate a rank already leased to the next
// tenant. Prefer chunk-count triggers in tests and scheduled jobs.
func (rt *runtime[V]) spawnInjectors(eng *des.Engine) {
	if rt.cfg.Faults.Empty() {
		return
	}
	for _, ev := range rt.cfg.Faults.Events {
		if ev.AfterChunks > 0 {
			rt.ft.chunkTrig = append(rt.ft.chunkTrig, ev)
			continue
		}
		ev := ev
		rt.spawn(eng, rt.procName(fmt.Sprintf("fault.inject.r%d", ev.Rank)), func(p *des.Proc) {
			p.Sleep(ev.At)
			rt.applyFault(p, ev)
		})
	}
}
