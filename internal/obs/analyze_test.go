package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// jobRecording builds a synthetic but shape-faithful recording of one
// served job: arrive, placement, two ranks' phase spans, and the serve
// lifecycle spans, exactly as serve/sched/core emit them.
func jobRecording() *Recorder {
	r := New()
	r.Emit(100, CatSim, "serve/t0-mm-1", "arrive", A("tenant", "t0"), A("kind", "mm"), A("trace", "f1"))
	r.Span(100, 300, CatSim, "sched/t0-mm-1", "queue.wait")
	r.Emit(300, CatSim, "sched/t0-mm-1", "place", Int("gang", 2), Int("want", 2), Bool("backfill", false))
	// Rank 0 is the straggler: its reduce ends last.
	r.Span(400, 900, CatSim, "t0-mm-1/r0", "phase.map", Int("chunks", 4))
	r.Span(900, 1000, CatSim, "t0-mm-1/r0", "phase.shuffle")
	r.Span(1000, 1100, CatSim, "t0-mm-1/r0", "phase.sort")
	r.Span(1100, 1500, CatSim, "t0-mm-1/r0", "phase.reduce")
	r.Span(400, 800, CatSim, "t0-mm-1/r1", "phase.map", Int("chunks", 4))
	r.Span(800, 900, CatSim, "t0-mm-1/r1", "phase.shuffle")
	r.Span(900, 1000, CatSim, "t0-mm-1/r1", "phase.sort")
	r.Span(1000, 1400, CatSim, "t0-mm-1/r1", "phase.reduce")
	r.Span(100, 300, CatSim, "serve/t0-mm-1", "job.wait")
	r.Span(300, 1600, CatSim, "serve/t0-mm-1", "job.run", A("state", "done"), Int("gang", 2))
	return r
}

func TestJobsDiscovery(t *testing.T) {
	r := New()
	r.Emit(0, CatSim, "serve/t0-mm-1", "arrive")
	r.Emit(0, CatSim, "sched/t0-mm-1", "place")
	r.Span(0, 5, CatSim, "t0-mm-1/r0", "phase.map")
	// A prefixed run (SetPrefix seam) and a bare core run.
	r.Emit(1, CatSim, "fifo/sched/t1-sio-2", "place")
	r.Span(0, 9, CatSim, "mm/r0", "phase.map")
	r.Span(0, 9, CatSim, "mm/r1", "phase.map")

	got := Jobs(r.Canonical())
	want := []JobKey{
		{Prefix: "fifo/", Name: "t1-sio-2"},
		{Name: "mm"},
		{Name: "t0-mm-1"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Jobs = %+v, want %+v", got, want)
	}
}

func TestExplainPhasesSumToLatency(t *testing.T) {
	ex := ExplainJob(jobRecording().Canonical(), "t0-mm-1")
	if ex.State != "done" || ex.TraceID != "f1" || ex.Gang != 2 || ex.Ranks != 2 {
		t.Fatalf("header: %+v", ex)
	}
	if ex.ArrivalNs != 100 || ex.FinishNs != 1600 || ex.LatencyNs != 1500 {
		t.Fatalf("stamps: %+v", ex)
	}
	if ex.CriticalRank != "t0-mm-1/r0" {
		t.Fatalf("critical rank = %q", ex.CriticalRank)
	}
	wantNames := []string{"wait", "launch", "map", "shuffle", "sort", "reduce", "commit"}
	if len(ex.Phases) != len(wantNames) {
		t.Fatalf("phases: %+v", ex.Phases)
	}
	var sum int64
	cur := ex.ArrivalNs
	for i, p := range ex.Phases {
		if p.Name != wantNames[i] {
			t.Fatalf("phase %d = %q, want %q", i, p.Name, wantNames[i])
		}
		if p.StartNs != cur {
			t.Fatalf("phase %q starts at %d, previous ended at %d", p.Name, p.StartNs, cur)
		}
		cur = p.EndNs
		sum += p.DurNs
	}
	if sum != ex.LatencyNs {
		t.Fatalf("phase durations sum to %d, latency %d", sum, ex.LatencyNs)
	}
	if cur != ex.FinishNs {
		t.Fatalf("last phase ends at %d, finish %d", cur, ex.FinishNs)
	}
	if ex.Bottleneck != "map" || ex.BottleneckNs != 500 {
		t.Fatalf("bottleneck: %+v", ex)
	}
	// The text rendering is deterministic.
	if a, b := ex.String(), ExplainJob(jobRecording().Canonical(), "t0-mm-1").String(); a != b {
		t.Fatalf("String not deterministic:\n%s\n%s", a, b)
	}
}

func TestExplainCriticalRankTie(t *testing.T) {
	r := New()
	for _, rank := range []string{"j/r1", "j/r0"} { // emission order must not matter
		r.Span(0, 10, CatSim, rank, "phase.map")
		r.Span(10, 20, CatSim, rank, "phase.shuffle")
		r.Span(20, 30, CatSim, rank, "phase.sort")
		r.Span(30, 40, CatSim, rank, "phase.reduce")
	}
	ex := ExplainJob(r.Canonical(), "j")
	if ex.CriticalRank != "j/r0" {
		t.Fatalf("tie should pick smallest stream, got %q", ex.CriticalRank)
	}
	if ex.State != "done" || ex.ArrivalNs != 0 || ex.FinishNs != 40 {
		t.Fatalf("bare run stamps: %+v", ex)
	}
}

func TestExplainNeverRan(t *testing.T) {
	r := New()
	r.Emit(50, CatSim, "serve/t0-mm-1", "arrive", A("tenant", "t0"), A("kind", "mm"))
	r.Emit(70, CatSim, "serve/t0-mm-1", "reject", A("reason", "shed"))
	ex := ExplainJob(r.Canonical(), "t0-mm-1")
	if ex.State != "rejected" || ex.LatencyNs != 20 {
		t.Fatalf("rejected: %+v", ex)
	}
	if len(ex.Phases) != 1 || ex.Phases[0].Name != "wait" || ex.Phases[0].DurNs != 20 {
		t.Fatalf("phases: %+v", ex.Phases)
	}
	if ex.Bottleneck != "wait" || ex.BottleneckPct != 100 {
		t.Fatalf("bottleneck: %+v", ex)
	}
}

func TestExplainUnknownJob(t *testing.T) {
	ex := ExplainJob(jobRecording().Canonical(), "nope")
	if ex.State != "" || ex.LatencyNs != 0 || len(ex.Phases) != 0 {
		t.Fatalf("unknown job should be empty: %+v", ex)
	}
}

func TestExplainCounters(t *testing.T) {
	r := jobRecording()
	r.Emit(500, CatSim, "t0-mm-1/r0", "recover", Int("from", 1), Int("bytes", 64))
	r.Emit(600, CatSim, "t0-mm-1/r1", "spec.launch", Int("chunk", 3))
	r.Emit(700, CatSim, "t0-mm-1/r1", "steal", Int("from", 0), Int("bytes", 32))
	r.Emit(800, CatSim, "sched/t0-mm-1", "preempt", A("why", "class"))
	r.Emit(900, CatSim, "sched/t0-mm-1", "place", Int("gang", 2), Int("want", 2), Bool("backfill", false))
	ex := ExplainJob(r.Canonical(), "t0-mm-1")
	if ex.Recoveries != 1 || ex.Speculations != 1 || ex.Steals != 1 || ex.Preemptions != 1 || ex.Restarts != 1 {
		t.Fatalf("counters: %+v", ex)
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	r := jobRecording()
	var orig bytes.Buffer
	if err := r.WriteJSONL(&orig); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(r.Canonical()) {
		t.Fatalf("read %d events, want %d", len(evs), len(r.Canonical()))
	}
	// Re-sorting the parsed events must not change their order (the file
	// is canonical, and ReadJSONL's reassigned seqs preserve it), and
	// writing them back must reproduce the file byte for byte.
	Sort(evs)
	var round bytes.Buffer
	if err := WriteJSONL(&round, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), round.Bytes()) {
		t.Fatalf("round trip differs:\n%s\nvs\n%s", orig.String(), round.String())
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":1,"dur":"x","stream":"s","kind":"k"}`)); err == nil {
		t.Fatal("malformed dur should error")
	}
}

func TestWriteChromeGrouped(t *testing.T) {
	r := jobRecording()
	evs := r.Canonical()

	// nil groupOf must be byte-identical to the single-group writer.
	var plain, nilGrouped bytes.Buffer
	if err := WriteChrome(&plain, evs, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeGrouped(&nilGrouped, evs, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), nilGrouped.Bytes()) {
		t.Fatal("nil groupOf differs from WriteChrome")
	}

	// Grouping by shard prefix yields one pid per group, sorted.
	pre := append([]Event(nil), evs...)
	for i := range pre {
		if i%2 == 0 {
			pre[i].Stream = "s1/" + pre[i].Stream
		} else {
			pre[i].Stream = "s0/" + pre[i].Stream
		}
	}
	var grouped bytes.Buffer
	err := WriteChromeGrouped(&grouped, pre, func(stream string) string {
		return stream[:strings.Index(stream, "/")]
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(grouped.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome JSON: %v", err)
	}
	var procs []string
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				t.Fatal(err)
			}
			procs = append(procs, args.Name)
			if want := len(procs); e.Pid != want {
				t.Fatalf("process %q pid %d, want %d", args.Name, e.Pid, want)
			}
		}
	}
	if !reflect.DeepEqual(procs, []string{"s0", "s1"}) {
		t.Fatalf("process groups = %v", procs)
	}
}
