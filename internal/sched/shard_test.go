package sched

import (
	"testing"

	"repro/internal/cluster"
)

// shardSpecs is a mixed stream: staggered arrivals, different gang sizes,
// enough jobs that several run concurrently under the sharing policies.
func shardSpecs() []JobSpec {
	return []JobSpec{
		{At: 0, Job: makeJob("a", 4, 8, 256)},
		{At: 0, Job: makeJob("b", 2, 4, 256)},
		{At: 1 << 20, Job: makeJob("c", 8, 8, 256)},
		{At: 1 << 21, Job: makeJob("d", 4, 6, 256)},
		{At: 1 << 21, Job: makeJob("e", 2, 4, 256), Weight: 2},
		{At: 1 << 22, Job: makeJob("f", 12, 8, 256), MinGang: 4},
	}
}

// TestShardedTraceInvariantAcrossShardCounts is the heart of the sharded
// engine's determinism claim at this layer: the identical submission
// stream, run at 1, 2, 3, and per-node shards, produces byte-identical
// cluster traces — same admissions, same gangs, same per-rank timings,
// same makespan.
func TestShardedTraceInvariantAcrossShardCounts(t *testing.T) {
	for _, pol := range []Policy{
		{Kind: FixedShare, Share: 4},
		{Kind: WeightedFair},
	} {
		var base string
		for _, shards := range []int{1, 2, 3, -1} {
			cc := cc16()
			cc.Shards = shards
			ct, err := Run(cc, pol, shardSpecs())
			if err != nil {
				t.Fatalf("%v shards=%d: %v", pol, shards, err)
			}
			got := ct.String()
			if shards == 1 {
				base = got
				continue
			}
			if got != base {
				t.Errorf("%v: shards=%d trace diverges from shards=1:\n--- shards=1\n%s\n--- shards=%d\n%s",
					pol, shards, base, shards, got)
			}
		}
	}
}

// TestShardedRunIsReproducible reruns the same sharded configuration and
// demands bit-identical traces: real host parallelism must not leak into
// the simulation.
func TestShardedRunIsReproducible(t *testing.T) {
	cc := cc16()
	cc.Shards = -1
	var base string
	for rep := 0; rep < 3; rep++ {
		ct, err := Run(cc, Policy{Kind: WeightedFair}, shardSpecs())
		if err != nil {
			t.Fatal(err)
		}
		if got := ct.String(); rep == 0 {
			base = got
		} else if got != base {
			t.Fatalf("rep %d diverged:\n%s\n---\n%s", rep, base, got)
		}
	}
}

// TestShardedLeasesWholeNodes checks the isolation rule that makes sharded
// runs race-free: two concurrent gangs never split a node, even when their
// sizes would pack onto one.
func TestShardedLeasesWholeNodes(t *testing.T) {
	cc := cluster.DefaultConfig(8) // two nodes of four
	cc.Shards = 2
	specs := []JobSpec{
		{At: 0, Job: makeJob("a", 2, 6, 256)},
		{At: 0, Job: makeJob("b", 2, 6, 256)},
	}
	ct, err := Run(cc, Policy{Kind: FixedShare, Share: 2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := jobByID(ct, 0), jobByID(ct, 1)
	if b.Admit >= a.Finish {
		t.Fatalf("expected overlap on two nodes: b admitted %v, a finished %v", b.Admit, a.Finish)
	}
	nodeOf := func(r int) int { return r / 4 }
	for _, ra := range a.Gang {
		for _, rb := range b.Gang {
			if nodeOf(ra) == nodeOf(rb) {
				t.Fatalf("concurrent sharded gangs share node %d: %v vs %v", nodeOf(ra), a.Gang, b.Gang)
			}
		}
	}
}
