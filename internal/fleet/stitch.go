package fleet

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/serve"
)

// The fleet timeline stitcher: one Chrome trace combining the router's
// own decision record with every shard's virtual-time flight recording,
// each shard (and the router) rendered as its own lane group. The same
// timeline is producible two ways — live, by pulling GET /flight from
// every reachable shard, and offline, by replaying the shards' recorded
// arrival traces — and the two must agree byte for byte: shard flight
// recordings are pure functions of the arrival traces, and the router's
// wall-clock events travel as recorded data (RouterObsName), never
// recomputed. The two time domains (router wall clock, shard virtual
// time) share the axis but never share a stream, so canonical ordering
// is well defined and stable.

// RouterObsName is the file name for the router's own recording inside
// a fleet trace directory — deliberately not *.jsonl, so the shard
// arrival-trace glob (ReplayDir, StitchDir) never mistakes it for a
// shard.
const RouterObsName = "router.obs"

// StitchGroup maps a stitched stream to its timeline lane group: the
// segment before the first slash — the shard prefix for replayed or
// fetched shard streams ("s0/serve/…" → "s0"), "fleet" for the router's
// own ("fleet/job/…", "fleet/shard/…").
func StitchGroup(stream string) string {
	if i := strings.Index(stream, "/"); i >= 0 {
		return stream[:i]
	}
	return stream
}

// liveOnly reports whether a shard stream exists only in live runs and
// must be excluded from the stitch: des injection events record the
// wall-clock→virtual-time handoff, which a replay — spawning arrivals
// as ordinary processes — never performs (see des.applyInjection).
func liveOnly(stream string) bool { return stream == "injector" }

// StitchedEvents assembles the live fleet timeline: the router's
// recording plus every reachable shard's flight recording fetched over
// GET /flight, shard streams prefixed "<shard>/", merged in canonical
// order. Down shards contribute nothing — exactly like the offline
// stitch of a directory their trace was lost from.
func (rt *Router) StitchedEvents() ([]obs.Event, error) {
	evs := rt.obs.Canonical()
	rt.mu.Lock()
	type target struct{ id, url string }
	var targets []target
	for _, id := range rt.order {
		if s := rt.shards[id]; s.state != shardDown {
			targets = append(targets, target{id, s.URL})
		}
	}
	rt.mu.Unlock()
	for _, t := range targets {
		resp, err := rt.do(http.MethodGet, t.url+"/flight", nil, rt.cfg.SubmitTimeout)
		if err != nil {
			return nil, fmt.Errorf("fleet: fetching flight recording from %s: %w", t.id, err)
		}
		if resp.StatusCode != http.StatusOK {
			drainBody(resp)
			return nil, fmt.Errorf("fleet: shard %s /flight: status %d", t.id, resp.StatusCode)
		}
		shardEvs, err := obs.ReadJSONL(resp.Body)
		drainBody(resp)
		if err != nil {
			return nil, fmt.Errorf("fleet: parsing shard %s flight recording: %w", t.id, err)
		}
		for _, e := range shardEvs {
			if liveOnly(e.Stream) {
				continue
			}
			e.Stream = t.id + "/" + e.Stream
			evs = append(evs, e)
		}
	}
	obs.Sort(evs)
	return evs, nil
}

// WriteTimeline renders the live stitched fleet timeline as Chrome
// trace-event JSON with per-shard lane groups (GET /timeline).
func (rt *Router) WriteTimeline(w io.Writer) error {
	evs, err := rt.StitchedEvents()
	if err != nil {
		return err
	}
	return obs.WriteChromeGrouped(w, evs, StitchGroup)
}

// StitchDir assembles the same timeline offline from a trace directory:
// every shard arrival trace (*.jsonl) is replayed into one shared flight
// recorder under the prefix "<shard>/" (the obs.SetPrefix multi-run
// seam), the router's recording is read back from RouterObsName when
// present, and the merge is canonical.
func StitchDir(dir string, opt serve.ReplayOptions) ([]obs.Event, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("fleet: no shard traces (*.jsonl) in %s", dir)
	}
	sort.Strings(paths)
	rec := obs.New()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		tr, err := serve.ReadTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("fleet: reading %s: %w", p, err)
		}
		shard := tr.Header.Shard
		if shard == "" {
			shard = strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		}
		rec.SetPrefix(shard + "/")
		ropt := opt
		ropt.Obs = rec
		if _, err := serve.Replay(tr, ropt); err != nil {
			return nil, fmt.Errorf("fleet: replaying %s: %w", p, err)
		}
	}
	evs := rec.Canonical()
	rp := filepath.Join(dir, RouterObsName)
	if f, err := os.Open(rp); err == nil {
		revs, rerr := obs.ReadJSONL(f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("fleet: reading %s: %w", rp, rerr)
		}
		evs = append(evs, revs...)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	obs.Sort(evs)
	return evs, nil
}

// WriteStitchedDir renders StitchDir's merge as Chrome trace-event JSON
// with per-shard lane groups — byte-identical to the live /timeline of
// the run that recorded the directory.
func WriteStitchedDir(w io.Writer, dir string, opt serve.ReplayOptions) error {
	evs, err := StitchDir(dir, opt)
	if err != nil {
		return err
	}
	return obs.WriteChromeGrouped(w, evs, StitchGroup)
}
