package des

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// event is a scheduled wake-up for a process.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all interaction happens from simulated processes while the
// engine is running, or from the owning goroutine before Run.
//
// An Engine can run standalone (Run) or as one shard of a ShardSet (see
// shard.go), where a coordinator advances it window by window under
// conservative-lookahead synchronization. Either way, every piece of engine
// state is engine-confined: it is touched only by the goroutine currently
// driving this engine (the owner before Run, then exactly one process or
// the dispatch loop at a time).
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	yield   chan yieldMsg
	procs   []*Proc
	live    int // spawned but not finished
	blocked int // parked with no pending wake event
	running bool
	// Sharded-mode state (see shard.go): cross-shard messages buffered for
	// delivery, ordered by (at, srcKey, seq) so the merged dispatch order
	// is identical at every shard count, and the set this engine belongs
	// to (nil for a standalone engine).
	posts postHeap
	set   *ShardSet
	shard int // index within set
	// openFutures tracks join obligations for host work dispatched outside
	// the simulation (see future.go). Mutated only from the engine's
	// serialized goroutines; Run refuses to shut down while any remain.
	openFutures map[*Future]struct{}
	// Open-system state (see inject.go): while openInj > 0, Run parks on
	// injc instead of exiting when the event queue drains. stopped is
	// closed when Run returns for good, failing later injections fast.
	openInj     int
	injc        chan injMsg
	stopped     chan struct{}
	everStopped bool
	// Flight recorder (nil = disabled). The engine itself only reports
	// bookkeeping (dispatch counts, injector arrivals); simulation-level
	// events come from the layers above through the same recorder.
	rec        *obs.Recorder
	dispatched uint64
}

type yieldMsg struct {
	proc *Proc
	done bool
	pnc  any // panic value propagated from the process, if any
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	// injc is deliberately unbuffered: a successful send means the engine
	// goroutine received the message inside Run, so it is guaranteed to be
	// applied — a buffered channel would let a send race the engine's
	// final drain and strand an accepted injection forever.
	return &Engine{
		yield:       make(chan yieldMsg),
		openFutures: make(map[*Future]struct{}),
		injc:        make(chan injMsg),
		stopped:     make(chan struct{}),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// SetRecorder attaches a flight recorder (nil disables recording). Must
// be called before Run.
func (e *Engine) SetRecorder(r *obs.Recorder) {
	if e.running {
		panic("des: SetRecorder while the engine is running")
	}
	e.rec = r
}

// Recorder returns the attached flight recorder (nil when disabled).
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Proc is the handle a simulated process uses to interact with the engine.
// Each Proc is bound to exactly one goroutine (the one running its body).
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked bool // parked without a scheduled wake (waiting on resource/queue)
	ended  bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn registers a new process whose body starts at the current simulated
// time. It may be called before Run or from a running process.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.spawnAt(e.now, name, body)
}

// spawnAt registers a new process whose body starts at time at (>= now).
// It is how buffered cross-shard posts materialize: the post's delivery
// time is in this engine's future, and the spawned process's first event
// must carry that time, not the current frontier.
func (e *Engine) spawnAt(at Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		<-p.resume // wait for first schedule
		var pnc any
		func() {
			defer func() {
				if r := recover(); r != nil {
					pnc = r
				}
			}()
			body(p)
		}()
		p.ended = true
		e.yield <- yieldMsg{proc: p, done: true, pnc: pnc}
	}()
	e.schedule(at, p)
	return p
}

// schedule queues a wake-up for p at time at.
func (e *Engine) schedule(at Time, p *Proc) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.queue.pushEvent(event{at: at, seq: e.seq, proc: p})
}

// Park suspends the calling process indefinitely; another process must call
// Engine.Wake to resume it. It is the building block for synchronization
// primitives defined outside this package (e.g. fabric barriers).
func (p *Proc) Park() { p.park() }

// Wake resumes a process suspended with Park (or any parked waiter) at the
// current simulated time. The wake is delivered on the process's own
// engine: synchronization primitives migrate between shards (see
// Resource), so the engine that created a primitive is not necessarily
// the one whose clock governs its waiters.
func (e *Engine) Wake(p *Proc) { p.eng.wake(p) }

// wake reschedules a parked process to run at the current time. It is used
// by resources and queues when a waiter becomes runnable.
func (e *Engine) wake(p *Proc) {
	if !p.parked {
		panic("des: waking a process that is not parked")
	}
	p.parked = false
	e.blocked--
	e.schedule(e.now, p)
}

// park suspends the calling process with no scheduled wake-up; some other
// process must call wake (via a resource release or queue put) to resume it.
func (p *Proc) park() {
	p.parked = true
	p.eng.blocked++
	p.eng.yield <- yieldMsg{proc: p}
	<-p.resume
}

// Sleep suspends the calling process for d of simulated time. Negative
// durations are treated as zero.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p)
	p.eng.yield <- yieldMsg{proc: p}
	<-p.resume
}

// Yield gives other runnable processes scheduled at the current time a
// chance to run before the caller continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes the simulation until every spawned process has finished.
// It returns the final simulated time. If all remaining processes are
// blocked with no pending events, Run panics with a deadlock report.
//
// While the engine has open injectors (see inject.go), an empty event
// queue parks the engine instead: Run blocks, holding virtual time still,
// until the outside world injects more work or closes the last injector.
// Deadlock detection is necessarily suspended in open mode — a blocked
// process may be waiting on work that has not been injected yet.
func (e *Engine) Run() Time {
	if e.running {
		panic("des: Run called re-entrantly")
	}
	e.running = true
	defer func() {
		e.running = false
		if !e.everStopped {
			e.everStopped = true
			close(e.stopped)
		}
	}()
	for {
		// Injections are applied between event dispatches, so an injected
		// process lands at the frontier without interleaving with a
		// running one.
		e.drainInjections()
		if _, ok := e.nextTime(); !ok {
			if e.openInj > 0 {
				e.applyInjection(<-e.injc) // park: wait for the outside world
				continue
			}
			if e.live > 0 {
				panic(fmt.Sprintf("des: deadlock at t=%v: %d process(es) blocked: %v",
					e.now, e.blocked, e.blockedNames()))
			}
			break
		}
		e.step()
	}
	e.checkFutures()
	if e.rec.Enabled() {
		e.rec.Emit(int64(e.now), obs.CatEngine, "engine", "engine.stats",
			obs.Int("dispatched", int64(e.dispatched)))
	}
	return e.now
}

// checkFutures panics if host work dispatched through this engine was never
// joined — effects the simulation never ordered.
func (e *Engine) checkFutures() {
	if len(e.openFutures) == 0 {
		return
	}
	names := make([]string, 0, len(e.openFutures))
	for f := range e.openFutures {
		names = append(names, f.name)
	}
	sort.Strings(names)
	panic(fmt.Sprintf("des: engine shut down with %d unjoined future(s): %v", len(names), names))
}

// pruneQueue discards queued wake-ups for processes that already finished,
// so peeking at the head sees real work.
func (e *Engine) pruneQueue() {
	for e.queue.Len() > 0 && e.queue[0].proc.ended {
		e.queue.popEvent()
	}
}

// nextTime reports the earliest pending activity — a queued event or a
// buffered cross-shard post — or ok=false when the engine has nothing
// scheduled. In a ShardSet this is the shard's next-event time (NET), the
// input to the coordinator's safe-horizon computation.
func (e *Engine) nextTime() (Time, bool) {
	e.pruneQueue()
	var t Time
	ok := false
	if e.queue.Len() > 0 {
		t, ok = e.queue[0].at, true
	}
	if len(e.posts) > 0 && (!ok || e.posts[0].at < t) {
		t, ok = e.posts[0].at, true
	}
	return t, ok
}

// step dispatches the single earliest pending activity. Buffered posts win
// time ties with local events: a post due at T is applied (its process
// spawned, allocating the next sequence number) before anything at T runs.
// Because the rule consults only this engine's own state, and posts carry a
// shard-count-invariant (at, srcKey, seq) order, the merged dispatch order
// is identical whether the logical sender shares this engine or lives on
// another shard.
func (e *Engine) step() {
	e.pruneQueue()
	if len(e.posts) > 0 && (e.queue.Len() == 0 || e.posts[0].at <= e.queue[0].at) {
		po := e.posts.pop()
		if po.at < e.now {
			panic(fmt.Sprintf("des: post %q for t=%v applied behind the frontier t=%v (lookahead violation)",
				po.name, po.at, e.now))
		}
		e.spawnAt(po.at, po.name, po.body)
		return
	}
	ev := e.queue.popEvent()
	e.now = ev.at
	e.dispatched++
	ev.proc.resume <- struct{}{}
	msg := <-e.yield
	if msg.pnc != nil {
		panic(fmt.Sprintf("des: process %q panicked at t=%v: %v", msg.proc.name, e.now, msg.pnc))
	}
	if msg.done {
		e.live--
	}
}

// runWindow advances the shard through every pending activity strictly
// before horizon, then returns. Unlike Run it never declares deadlock: a
// shard whose processes are all blocked may be waiting on a cross-shard
// post a later round delivers, so global liveness belongs to the ShardSet
// coordinator. The strict bound is what keeps delivery deterministic — a
// neighbour may still post an event at exactly horizon, and it must arrive
// before anything local at that time runs.
func (e *Engine) runWindow(horizon Time) {
	for {
		t, ok := e.nextTime()
		if !ok || t >= horizon {
			return
		}
		e.step()
	}
}

func (e *Engine) blockedNames() []string {
	var names []string
	for _, p := range e.procs {
		if p.parked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}
