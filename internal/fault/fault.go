// Package fault defines deterministic fault-injection plans for GPMR
// simulations: fail-stop GPU failures and slow-rank (straggler) derating,
// scheduled at exact simulated times or at per-rank chunk-count triggers.
//
// The failure model is the one a production GPU cluster actually faces:
// the *GPU* dies or degrades, while the host-side MPI process survives.
// A failed rank therefore stops consuming chunks and loses everything
// resident only in device memory (in-flight maps, undrained emit
// buffers), but its host process still holds the input chunks queued to
// it and the shuffle pairs it has received, and participates in recovery
// by shipping that host-resident state to a successor. Recovery itself
// lives in internal/core; this package only describes *what* goes wrong
// and *when*, so that a failure is a reproducible, benchmarkable event —
// something a real cluster can never give you.
//
// Injection windows: fail-stop recovery covers the map/shuffle phase. An
// event that takes effect after a rank has closed its shuffle (all end
// markers received) is recorded in the trace but triggers no recovery —
// by then the rank's map output is fully delivered and its partition is
// staged host-side. Straggler derating applies to all subsequent kernel
// and PCIe costs of the rank, whenever it fires. A time-triggered event
// whose At lies beyond the job's natural makespan extends the simulated
// wall clock to At (the injector is a simulated process); prefer
// chunk-count triggers when the makespan is not known in advance.
package fault

import (
	"fmt"

	"repro/internal/des"
)

// Kind discriminates the failure modes a Plan can inject.
type Kind int

const (
	// FailStop kills the rank's GPU permanently. The rank stops consuming
	// chunks; its lost work is re-executed by survivors and its reduce
	// partition is reassigned (see core's recovery protocol).
	FailStop Kind = iota
	// Straggler derates the rank: all subsequent kernel and PCIe
	// durations scale by Factor, modeling a thermally throttled or
	// otherwise heterogeneous-slow GPU.
	Straggler
)

// String names the kind for traces and reports.
func (k Kind) String() string {
	switch k {
	case FailStop:
		return "failstop"
	case Straggler:
		return "straggler"
	}
	return "unknown"
}

// Event schedules one fault. The trigger is AfterChunks when positive
// (fires right after the rank finishes mapping its Nth chunk — robust to
// makespan changes), otherwise the exact simulated time At.
type Event struct {
	// Rank is the GPU process the fault strikes.
	Rank int
	// Kind selects fail-stop or straggler derating.
	Kind Kind
	// At is the trigger time, measured from the moment the job's
	// processes start, used when AfterChunks is zero. For an exclusive
	// Run that is absolute simulated time (the job starts at t=0); for a
	// job admitted by the job-level scheduler it is relative to
	// admission. An At beyond the job's natural makespan extends the job
	// (and, on a shared cluster, its gang lease) until the event fires —
	// prefer AfterChunks triggers where that matters.
	At des.Time
	// AfterChunks, when positive, triggers the event right after the rank
	// finishes mapping its Nth chunk (1 = after its first chunk).
	AfterChunks int
	// Factor is the straggler derating multiplier (>1 = slower). Ignored
	// for FailStop.
	Factor float64
}

// String renders the event for reports.
func (e Event) String() string {
	trig := fmt.Sprintf("@%v", e.At)
	if e.AfterChunks > 0 {
		trig = fmt.Sprintf("after %d chunks", e.AfterChunks)
	}
	if e.Kind == Straggler {
		return fmt.Sprintf("r%d %sx%.3g %s", e.Rank, e.Kind, e.Factor, trig)
	}
	return fmt.Sprintf("r%d %s %s", e.Rank, e.Kind, trig)
}

// FailAt schedules a fail-stop of rank at time at (measured from the
// job's start; see Event.At).
func FailAt(rank int, at des.Time) Event {
	return Event{Rank: rank, Kind: FailStop, At: at}
}

// FailAfterChunks schedules a fail-stop of rank right after it maps its
// nth chunk.
func FailAfterChunks(rank, n int) Event {
	return Event{Rank: rank, Kind: FailStop, AfterChunks: n}
}

// SlowdownAt derates rank by factor from time at onward (measured from
// the job's start; see Event.At).
func SlowdownAt(rank int, at des.Time, factor float64) Event {
	return Event{Rank: rank, Kind: Straggler, At: at, Factor: factor}
}

// SlowdownAfterChunks derates rank by factor right after it maps its nth
// chunk.
func SlowdownAfterChunks(rank, n int, factor float64) Event {
	return Event{Rank: rank, Kind: Straggler, AfterChunks: n, Factor: factor}
}

// Plan is a deterministic injection schedule for one job. The zero value
// (or nil) injects nothing.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// HasFailStop reports whether the plan kills any GPU. Only fail-stops
// (and speculation) need the resilient scheduler's chunk tracking and
// exactly-once delivery; a straggler-only plan merely derates devices.
func (p *Plan) HasFailStop() bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == FailStop {
			return true
		}
	}
	return false
}

// Validate checks the plan against a job with nRanks GPU processes.
func (p *Plan) Validate(nRanks int) error {
	if p.Empty() {
		return nil
	}
	failed := make(map[int]bool)
	for _, e := range p.Events {
		if e.Rank < 0 || e.Rank >= nRanks {
			return fmt.Errorf("fault: event %v targets rank outside 0..%d", e, nRanks-1)
		}
		if e.At < 0 {
			return fmt.Errorf("fault: event %v has negative trigger time", e)
		}
		if e.AfterChunks < 0 {
			return fmt.Errorf("fault: event %v has negative chunk trigger", e)
		}
		switch e.Kind {
		case FailStop:
			if failed[e.Rank] {
				return fmt.Errorf("fault: rank %d fail-stops twice", e.Rank)
			}
			failed[e.Rank] = true
		case Straggler:
			if e.Factor < 1 {
				return fmt.Errorf("fault: event %v derating factor must be >= 1", e)
			}
		default:
			return fmt.Errorf("fault: event %v has unknown kind %d", e, e.Kind)
		}
	}
	if len(failed) >= nRanks {
		return fmt.Errorf("fault: plan fail-stops all %d ranks; recovery needs a survivor", nRanks)
	}
	return nil
}
