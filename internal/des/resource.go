package des

import "fmt"

// Resource models a capacity-limited facility (a bus, a compute engine, a
// pool of CPU cores). Acquire requests are granted FIFO; a request never
// overtakes an earlier one even if the earlier request needs more units than
// are currently free. This models real hardware queues (PCIe, NIC DMA rings)
// and keeps simulations deterministic and starvation-free.
type Resource struct {
	eng     *Engine
	name    string
	cap     int
	held    int
	busy    Time // cumulative units·time integral, for utilization reporting
	lastTs  Time
	waiters []resWaiter
}

type resWaiter struct {
	proc *Proc
	n    int
	ok   *bool // set true when granted, read by the waiter after wake
}

// NewResource creates a resource with the given capacity (units).
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("des: resource capacity must be positive")
	}
	return &Resource{eng: eng, name: name, cap: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Cap returns the resource's capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.held }

func (r *Resource) accountTo(now Time) {
	r.busy += Time(r.held) * (now - r.lastTs)
	r.lastTs = now
}

// BusyIntegral returns the integral of held units over time, used to compute
// average utilization as BusyIntegral / (capacity × elapsed).
func (r *Resource) BusyIntegral() Time {
	r.accountTo(r.eng.now)
	return r.busy
}

// Acquire blocks p until n units are available and then holds them.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("des: Acquire of non-positive unit count")
	}
	if n > r.cap {
		panic(fmt.Sprintf("des: Acquire(%d) exceeds capacity %d of %s", n, r.cap, r.name))
	}
	if r.held == 0 && len(r.waiters) == 0 && r.eng != p.eng {
		// An idle facility adopts its next user's engine. Hardware modeled
		// by a resource (a NIC, a PCIe link, a GPU engine) is leased to one
		// shard's tenant at a time in sharded runs; re-homing on the idle
		// boundary keeps Release's busy accounting and wake-ups in the time
		// domain of the shard that actually holds it.
		// Zero units were held since lastTs, so the busy integral carries
		// over unchanged; only the timestamp moves into the new domain.
		r.eng = p.eng
		r.lastTs = p.Now()
	}
	if len(r.waiters) == 0 && r.held+n <= r.cap {
		r.accountTo(p.Now())
		r.held += n
		return
	}
	granted := false
	r.waiters = append(r.waiters, resWaiter{proc: p, n: n, ok: &granted})
	p.park()
	if !granted {
		panic("des: resource waiter woken without grant")
	}
}

// Release returns n units and grants queued waiters FIFO.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.held {
		panic(fmt.Sprintf("des: Release(%d) with %d held on %s", n, r.held, r.name))
	}
	r.accountTo(r.eng.now)
	r.held -= n
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.held+w.n > r.cap {
			break // strict FIFO: head blocks the line
		}
		r.waiters = r.waiters[1:]
		r.held += w.n
		*w.ok = true
		w.proc.eng.wake(w.proc)
	}
}

// Use acquires n units, sleeps for d, and releases: the common pattern of
// occupying a facility for a fixed service time.
func (r *Resource) Use(p *Proc, n int, d Time) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// Queue is an unbounded FIFO message queue between processes. Put never
// blocks; Get blocks until an item is available. Multiple getters are served
// in arrival order.
type Queue struct {
	eng     *Engine
	name    string
	items   []any
	waiters []queueWaiter
}

type queueWaiter struct {
	proc *Proc
	slot *any
}

// NewQueue creates an empty queue.
func NewQueue(eng *Engine, name string) *Queue {
	return &Queue{eng: eng, name: name}
}

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends v and wakes the first waiting getter, if any.
func (q *Queue) Put(v any) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		*w.slot = v
		w.proc.eng.wake(w.proc)
		return
	}
	q.items = append(q.items, v)
}

// Get removes and returns the oldest item, blocking p while the queue is
// empty.
func (q *Queue) Get(p *Proc) any {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v
	}
	var slot any
	q.waiters = append(q.waiters, queueWaiter{proc: p, slot: &slot})
	p.park()
	return slot
}

// TryGet returns the oldest item without blocking; ok is false if empty.
func (q *Queue) TryGet() (v any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Signal is a one-shot broadcast: processes that Wait before Fire are all
// woken when Fire is called; Waits after Fire return immediately.
type Signal struct {
	eng     *Engine
	fired   bool
	waiters []*Proc
}

// NewSignal creates an unfired signal.
func NewSignal(eng *Engine) *Signal { return &Signal{eng: eng} }

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire wakes all current waiters; later Waits return immediately.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, p := range s.waiters {
		p.eng.wake(p)
	}
	s.waiters = nil
}

// Wait blocks p until the signal fires.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// WaitGroup counts outstanding work items, like sync.WaitGroup but in
// simulated time.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup creates a WaitGroup with zero count.
func NewWaitGroup(eng *Engine) *WaitGroup { return &WaitGroup{eng: eng} }

// Add increments the count by n (n may be negative, like sync.WaitGroup).
func (w *WaitGroup) Add(n int) {
	w.count += n
	if w.count < 0 {
		panic("des: negative WaitGroup counter")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			p.eng.wake(p)
		}
		w.waiters = nil
	}
}

// Done decrements the count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park()
}
