package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/serve"
)

// Merge renders the fleet-level report from per-shard drain responses:
// one banner-framed shard report per shard, ordered by shard ID, then a
// fleet summary line over the summed admission counters. A live drain
// and a replay of the same shard traces must produce byte-identical
// text — that equality is the fleet's correctness proof.
func Merge(resps []serve.DrainResponse) string {
	sorted := append([]serve.DrainResponse(nil), resps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	var b strings.Builder
	var submitted, done, failed, cancelled, rejected int64
	for _, r := range sorted {
		fmt.Fprintf(&b, "=== shard %s epoch %d ===\n", r.Shard, r.Epoch)
		b.WriteString(r.Report)
		if !strings.HasSuffix(r.Report, "\n") {
			b.WriteByte('\n')
		}
		submitted += r.Submitted
		done += r.Done
		failed += r.Failed
		cancelled += r.Cancelled
		rejected += r.Rejected
	}
	fmt.Fprintf(&b, "fleet: %d shards  %d submitted  %d done  %d failed  %d cancelled  %d rejected\n",
		len(sorted), submitted, done, failed, cancelled, rejected)
	return b.String()
}

// ReplayDir replays every shard arrival trace in dir (*.jsonl, one per
// shard) through the offline path and merges the reports exactly as a
// live drain would: the output must match the live fleet's merged
// report byte for byte.
func ReplayDir(dir string, opt serve.ReplayOptions) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("fleet: no shard traces (*.jsonl) in %s", dir)
	}
	sort.Strings(paths)
	var resps []serve.DrainResponse
	for _, p := range paths {
		dr, err := replayTrace(p, opt)
		if err != nil {
			return "", fmt.Errorf("fleet: replaying %s: %w", p, err)
		}
		resps = append(resps, dr)
	}
	return Merge(resps), nil
}

// replayTrace replays one shard trace into the drain-response shape.
func replayTrace(path string, opt serve.ReplayOptions) (serve.DrainResponse, error) {
	f, err := os.Open(path)
	if err != nil {
		return serve.DrainResponse{}, err
	}
	defer f.Close()
	tr, err := serve.ReadTrace(f)
	if err != nil {
		return serve.DrainResponse{}, err
	}
	rep, err := serve.Replay(tr, opt)
	if err != nil {
		return serve.DrainResponse{}, err
	}
	shard := tr.Header.Shard
	if shard == "" {
		// An unregistered shard's trace: fall back to the file name so the
		// merge order is still deterministic.
		shard = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	s := rep.Stats
	return serve.DrainResponse{
		Shard: shard, Epoch: tr.Header.Epoch,
		Submitted: s.Submitted, Done: s.Done, Failed: s.Failed,
		Cancelled: s.Cancelled,
		// Every reject class, matching the live handler's s.rejected() —
		// SLO rejects included, or an SLO-shedding fleet's replay would
		// drift from its live drain.
		Rejected: s.RejectedShed + s.RejectedQuota + s.RejectedInvalid + s.RejectedSLO,
		Report:   rep.String(),
	}, nil
}
