package des

// Cond is a reusable broadcast wait-point: processes park with Wait until
// some other process calls Broadcast, which wakes every current waiter at
// the present simulated time. Unlike Signal it carries no fired state and
// can be waited on again after each broadcast — the building block for
// "re-check a shared condition whenever it may have changed" loops (the
// resilient chunk scheduler parks starved ranks on one while chunks may
// still be requeued by a failure or completed elsewhere).
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond creates a condition on the engine.
func NewCond(eng *Engine) *Cond { return &Cond{eng: eng} }

// Wait parks p until the next Broadcast. Callers must re-check their
// condition after waking and wait again if it still does not hold.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes every process currently waiting. Waiters that park
// after the call wait for the next broadcast. Wakes are delivered on each
// waiter's own engine, so a primitive created on one shard serves
// whichever shard's processes wait on it.
func (c *Cond) Broadcast() {
	waiters := c.waiters
	c.waiters = nil
	for _, p := range waiters {
		p.eng.wake(p)
	}
}
