package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fast keeps harness tests quick: small physical budgets, fewer GPU counts.
var fast = Options{PhysBudget: 1 << 12, GPUCounts: []int{1, 4, 8}}

func TestRunAllBenchmarks(t *testing.T) {
	for _, b := range Benchmarks {
		size := Fig3Sizes[b][0]
		wall, tr, err := Run(b, size, 4, fast)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if wall <= 0 || tr == nil || tr.GPUs != 4 {
			t.Errorf("%s: wall=%v trace=%v", b, wall, tr)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, _, err := Run("nope", 1, 1, fast); err == nil {
		t.Error("expected error")
	}
}

func TestFig3ShapeSIO(t *testing.T) {
	res, err := Fig3("sio", fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(Fig3Sizes["sio"]) {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 3 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		if s.Points[0].Efficiency < 0.999 || s.Points[0].Efficiency > 1.001 {
			t.Errorf("baseline efficiency %f != 1", s.Points[0].Efficiency)
		}
	}
	// Bigger inputs hold efficiency better at scale (Figure 3's ordering).
	small := res.Series[0].Points[2].Efficiency
	big := res.Series[len(res.Series)-1].Points[2].Efficiency
	if big <= small {
		t.Errorf("8-GPU efficiency: big input %.3f <= small input %.3f", big, small)
	}
}

func TestFig3MMScalesWell(t *testing.T) {
	res, err := Fig3("mm", Options{PhysBudget: 1 << 12, GPUCounts: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Series[len(res.Series)-1] // 16384²
	if eff := last.Points[1].Efficiency; eff < 0.7 {
		t.Errorf("MM 16384² 4-GPU efficiency %.3f — expected near-perfect", eff)
	}
}

func TestFig2RowsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 at largest datasets in -short mode")
	}
	rows, err := Fig2(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Benchmarks)*len(Fig2GPUCounts) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		b := r.Breakdown
		sum := b.Map + b.CompleteBinning + b.Sort + b.Reduce + b.Internal
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s@%d: breakdown sums to %.3f", r.Bench, r.GPUs, sum)
		}
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	rows, err := Table2(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Who wins: GPMR beats Phoenix on every benchmark at 1 GPU, and
		// 4 GPUs beat 1 GPU (the paper's headline qualitative results).
		if r.Speedup1 <= 1 {
			t.Errorf("%s: GPMR 1-GPU speedup %.2f <= 1 over Phoenix", r.Bench, r.Speedup1)
		}
		if r.Speedup4 <= r.Speedup1 {
			t.Errorf("%s: 4-GPU speedup %.2f <= 1-GPU %.2f", r.Bench, r.Speedup4, r.Speedup1)
		}
	}
	// Ordering: MM's speedup dwarfs the others; LR and SIO are the smallest.
	sp := map[string]float64{}
	for _, r := range rows {
		sp[r.Bench] = r.Speedup1
	}
	if sp["mm"] < sp["kmc"] || sp["mm"] < sp["wo"] {
		t.Errorf("MM should dominate Table 2: %+v", sp)
	}
	if sp["lr"] > sp["wo"] || sp["sio"] > sp["wo"] {
		t.Errorf("LR/SIO should trail WO: %+v", sp)
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	rows, err := Table3(fast)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[string]float64{}
	for _, r := range rows {
		if r.Speedup1 <= 1 {
			t.Errorf("%s: GPMR 1-GPU speedup %.2f <= 1 over Mars", r.Bench, r.Speedup1)
		}
		if r.Speedup4 <= r.Speedup1 {
			t.Errorf("%s: no 4-GPU gain over Mars", r.Bench)
		}
		sp[r.Bench] = r.Speedup1
	}
	// KMC's accumulation-vs-monolithic-sort gap dominates Table 3.
	if sp["kmc"] < sp["mm"] || sp["kmc"] < sp["wo"] {
		t.Errorf("KMC should dominate Table 3: %+v", sp)
	}
}

func TestWeakScaling(t *testing.T) {
	pts, err := Weak("kmc", fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].Efficiency != 1 {
		t.Fatalf("points %+v", pts)
	}
	if pts[2].Efficiency < 0.3 {
		t.Errorf("KMC weak efficiency collapsed to %.3f at 8 GPUs", pts[2].Efficiency)
	}
}

func TestAblationDirections(t *testing.T) {
	rows, err := Ablation(fast)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The paper's choices must win where it says they win.
	for _, name := range []string{"wo: no accumulation", "kmc: no accumulation", "lr: no accumulation", "sio: combine", "wo@64GPU: partitioner off"} {
		if r, ok := byName[name]; !ok || r.Slowdown <= 1.0 {
			t.Errorf("%s: slowdown %.2f, expected > 1 (paper's configuration should win)", name, r.Slowdown)
		}
	}
	// Partial reduction for SIO: "no speedup" — allow noise either way,
	// but it must not be a big win.
	if r := byName["sio: partial reduce"]; r.Slowdown < 0.9 {
		t.Errorf("sio partial reduce won big (%.2f), paper says no speedup", r.Slowdown)
	}
	// GPUDirect must help, not hurt.
	if r := byName["sio@64GPU: gpudirect"]; r.Slowdown > 1.0 {
		t.Errorf("gpudirect slower: %.2f", r.Slowdown)
	}
}

func TestTable4Counts(t *testing.T) {
	root := repoRoot(t)
	rows, err := Table4(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GPMR <= 0 || r.Phoenix <= 0 || r.Mars <= 0 {
			t.Errorf("%s: zero counts %+v", r.Bench, r)
		}
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	res, err := Fig3("lr", Options{PhysBudget: 1 << 12, GPUCounts: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 3") || !strings.Contains(sb.String(), "Table 1") {
		t.Error("renderers produced no headings")
	}
}
