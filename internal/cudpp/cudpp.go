// Package cudpp provides the data-parallel primitives GPMR relies on —
// scan, reduce, compact, radix sort, and segment extraction — standing in
// for the CUDA Data-Parallel Primitives library the paper uses.
//
// Each primitive has a pure functional core (exact results, testable
// against naive references) and a device wrapper that charges the simulated
// GPU a cost derived from the primitive's real memory-traffic structure.
// The radix sort is costed as CUDPP's 4-bit-digit LSD sort (8 passes of
// histogram + scan + scatter over 32-bit keys), which lands near the
// ~100–140 M pairs/s measured on GT200 by Satish et al. — the throughput
// regime that makes Sort the single-GPU bottleneck for the paper's
// SparseIntegerOccurrence benchmark.
package cudpp

import (
	"repro/internal/des"
	"repro/internal/gpu"
)

// ScanExclusive computes the exclusive prefix sum of src into a new slice
// and returns it together with the total.
func ScanExclusive(src []int64) (out []int64, total int64) {
	out = make([]int64, len(src))
	var run int64
	for i, v := range src {
		out[i] = run
		run += v
	}
	return out, run
}

// ScanInclusive computes the inclusive prefix sum of src into a new slice.
func ScanInclusive(src []int64) []int64 {
	out := make([]int64, len(src))
	var run int64
	for i, v := range src {
		run += v
		out[i] = run
	}
	return out
}

// Reduce sums src.
func Reduce(src []int64) int64 {
	var s int64
	for _, v := range src {
		s += v
	}
	return s
}

// Compact keeps src[i] where flags[i] is true, preserving order.
func Compact[T any](src []T, flags []bool) []T {
	out := make([]T, 0, len(src))
	for i, v := range src {
		if flags[i] {
			out = append(out, v)
		}
	}
	return out
}

// scanSpec models a work-efficient GPU scan over n virtual elements of
// elemBytes each: ~2 reads + 1 write per element across the up/down sweeps.
func scanSpec(name string, n int64, elemBytes int64) gpu.KernelSpec {
	return gpu.KernelSpec{
		Name:           name,
		Threads:        n,
		FlopsPerThread: 2,
		BytesRead:      float64(2 * n * elemBytes),
		BytesWritten:   float64(n * elemBytes),
	}
}

// DeviceScan charges the device for a scan of virtN elements and runs fn as
// the functional payload. It returns the simulated duration.
func DeviceScan(p *des.Proc, d *gpu.Device, virtN int64, fn func()) des.Time {
	return d.Launch(p, scanSpec("cudpp.scan", virtN, 4), fn)
}

// DeviceReduce charges the device for a tree reduction of virtN elements.
func DeviceReduce(p *des.Proc, d *gpu.Device, virtN int64, elemBytes int64, fn func()) des.Time {
	spec := gpu.KernelSpec{
		Name:           "cudpp.reduce",
		Threads:        virtN,
		FlopsPerThread: 1,
		BytesRead:      float64(virtN * elemBytes),
		BytesWritten:   64, // one partial per block; negligible
	}
	return d.Launch(p, spec, fn)
}

// DeviceCompact charges the device for a flag-scan-scatter compaction of
// virtN elements of elemBytes each.
func DeviceCompact(p *des.Proc, d *gpu.Device, virtN, elemBytes int64, fn func()) des.Time {
	t := DeviceScan(p, d, virtN, nil)
	spec := gpu.KernelSpec{
		Name:             "cudpp.compact.scatter",
		Threads:          virtN,
		FlopsPerThread:   1,
		BytesRead:        float64(virtN * elemBytes),
		UncoalescedBytes: float64(virtN*elemBytes) / 4, // scatter locality
	}
	return t + d.Launch(p, spec, fn)
}

const (
	radixDigitBits = 4 // CUDPP's digit width on GT200
	radixPasses    = 32 / radixDigitBits
)

// SortPairs sorts keys ascending, permuting vals identically, using an LSD
// radix sort. It is stable. The functional implementation uses 8-bit digits
// for host speed; the device cost is charged for the 4-bit CUDPP structure.
func SortPairs[V any](keys []uint32, vals []V) {
	if len(keys) != len(vals) {
		panic("cudpp: keys/vals length mismatch")
	}
	n := len(keys)
	if n < 2 {
		return
	}
	tmpK := make([]uint32, n)
	tmpV := make([]V, n)
	var count [256]int
	for shift := 0; shift < 32; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range keys {
			count[(k>>shift)&0xff]++
		}
		sum := 0
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for i, k := range keys {
			d := (k >> shift) & 0xff
			tmpK[count[d]] = k
			tmpV[count[d]] = vals[i]
			count[d]++
		}
		copy(keys, tmpK)
		copy(vals, tmpV)
	}
}

// SortKeys sorts keys ascending with the same radix structure.
func SortKeys(keys []uint32) {
	vals := make([]struct{}, len(keys))
	SortPairs(keys, vals)
}

// SortPairsCost returns the modeled device time to radix-sort virtN pairs
// whose values occupy valBytes each (keys are 4 bytes).
func SortPairsCost(pr gpu.Props, virtN int64, valBytes int64) des.Time {
	var total des.Time
	for pass := 0; pass < radixPasses; pass++ {
		hist := gpu.KernelSpec{
			Name:           "cudpp.sort.hist",
			Threads:        virtN,
			FlopsPerThread: 2,
			BytesRead:      float64(virtN * 4),
		}
		scan := scanSpec("cudpp.sort.scan", 1<<radixDigitBits*512, 4) // per-block digit counts
		scatter := gpu.KernelSpec{
			Name:             "cudpp.sort.scatter",
			Threads:          virtN,
			FlopsPerThread:   4,
			BytesRead:        float64(virtN * (4 + valBytes)),
			UncoalescedBytes: float64(virtN*(4+valBytes)) / 2, // scattered writes, partial locality
		}
		total += hist.Cost(pr) + scan.Cost(pr) + scatter.Cost(pr)
	}
	return total
}

// DeviceSortPairs sorts the pairs functionally and charges the device the
// modeled radix-sort time for virtN virtual pairs.
func DeviceSortPairs[V any](p *des.Proc, d *gpu.Device, keys []uint32, vals []V, virtN int64, valBytes int64) des.Time {
	cost := SortPairsCost(d.Props, virtN, valBytes)
	return d.LaunchForNamed(p, "cudpp.sortpairs", cost, func() {
		SortPairs(keys, vals)
	})
}

// Segment describes one run of equal keys in a sorted pair buffer: values
// vals[Start:Start+Count] all carry Key.
type Segment struct {
	Key   uint32
	Start int
	Count int
}

// Segments extracts the unique-key runs from sorted keys. It panics if keys
// are not sorted (a cheap invariant check that has caught pipeline bugs).
func Segments(keys []uint32) []Segment {
	if len(keys) == 0 {
		return nil
	}
	segs := make([]Segment, 0, 64)
	start := 0
	for i := 1; i <= len(keys); i++ {
		if i == len(keys) || keys[i] != keys[start] {
			if i < len(keys) && keys[i] < keys[start] {
				panic("cudpp: Segments called on unsorted keys")
			}
			segs = append(segs, Segment{Key: keys[start], Start: start, Count: i - start})
			start = i
		}
	}
	return segs
}

// SegmentsCost is the device cost of the flag + scan + compact sequence
// that builds segment descriptors for virtN sorted pairs.
func SegmentsCost(pr gpu.Props, virtN int64) des.Time {
	flag := gpu.KernelSpec{
		Name:           "cudpp.segflag",
		Threads:        virtN,
		FlopsPerThread: 2,
		BytesRead:      float64(virtN * 4),
		BytesWritten:   float64(virtN),
	}
	return flag.Cost(pr) + scanSpec("cudpp.segscan", virtN, 4).Cost(pr)
}

// DeviceSegments extracts segments functionally and charges the modeled
// cost for virtN virtual pairs.
func DeviceSegments(p *des.Proc, d *gpu.Device, keys []uint32, virtN int64) ([]Segment, des.Time) {
	var segs []Segment
	cost := SegmentsCost(d.Props, virtN)
	d.LaunchForNamed(p, "cudpp.segments", cost, func() {
		segs = Segments(keys)
	})
	return segs, cost
}
