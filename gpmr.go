// Package gpmr is a Go reproduction of GPMR, the stand-alone MapReduce
// library for GPU clusters of Stuart & Owens, "Multi-GPU MapReduce on GPU
// Clusters" (IPDPS 2011).
//
// GPMR modifies the MapReduce model for GPUs: map and reduce items are
// batched into Chunks to keep the GPU full and to support out-of-core
// datasets; an Accumulation substage keeps map output resident on the GPU
// across chunks; a Partial Reduction substage folds like-keyed pairs before
// they cross PCIe; a Combine substage (executed once, after all maps)
// minimizes network traffic; Partition and Sort are user-replaceable with
// sensible defaults; and a CPU-side Bin substage overlaps network
// communication with GPU compute. One process drives each GPU, with
// dynamic work queues that shift chunks for load balance.
//
// Because Go has no CUDA bindings, the hardware substrate is a
// deterministic discrete-event simulation of the paper's testbed (Tesla
// S1070 GPUs, shared PCIe host interface cards, QDR InfiniBand). Kernels
// run real Go code over real data — every result is exact and testable —
// while their simulated cost comes from a calibrated roofline model. See
// DESIGN.md for the substitution argument and EXPERIMENTS.md for
// paper-vs-measured results.
//
// Kernels' functional work can execute on a pool of real host cores
// (Config.Workers; DESIGN.md, "Execution backends"): the simulated
// schedule and every output byte are identical to the serial default —
// proven by a differential test matrix — while work from different
// simulated GPUs runs concurrently, cutting the simulator's wall-clock.
//
// # Quick start
//
// Implement a Mapper (and usually a Reducer), wrap your input as Chunks,
// and run a Job:
//
//	job := &gpmr.Job[uint32]{
//	    Config:      gpmr.Config{GPUs: 4, GatherOutput: true},
//	    Chunks:      chunks,
//	    Mapper:      myMapper{},
//	    Partitioner: gpmr.RoundRobin{},
//	    Reducer:     myReducer{},
//	}
//	res, err := job.Run()
//
// See examples/ for runnable programs and internal/apps for the paper's
// five benchmarks built on this API.
package gpmr

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/serve"
)

// Core pipeline types, re-exported from the implementation package.
type (
	// Config controls a job's pipeline shape and cluster.
	Config = core.Config
	// Chunk is one indivisible unit of map work.
	Chunk = core.Chunk
	// Job describes one GPMR run.
	Job[V any] = core.Job[V]
	// Result is a completed job's output.
	Result[V any] = core.Result[V]
	// Trace is a job's timing record.
	Trace = core.Trace
	// RankTrace is one GPU process's timestamps and counters.
	RankTrace = core.RankTrace
	// RecoveryStats aggregates fault recovery and speculation counters.
	RecoveryStats = core.RecoveryStats
	// Breakdown is a Figure-2-style runtime decomposition.
	Breakdown = core.Breakdown
	// StealPolicy selects the dynamic work queues' victim policy.
	StealPolicy = core.StealPolicy
	// StealStats aggregates chunk-shift provenance across ranks.
	StealStats = core.StealStats

	// Mapper is the user's map stage.
	Mapper[V any] = core.Mapper[V]
	// Reducer is the user's reduce stage.
	Reducer[V any] = core.Reducer[V]
	// Partitioner assigns keys to reduce ranks.
	Partitioner = core.Partitioner
	// Combiner merges all values of a key once after all maps.
	Combiner[V any] = core.Combiner[V]
	// PartialReducer folds like-keyed pairs before PCIe transfer.
	PartialReducer[V any] = core.PartialReducer[V]
	// Sorter customizes the Sort stage's cost model.
	Sorter = core.Sorter

	// MapContext is the mapper's window onto the device and pipeline.
	MapContext[V any] = core.MapContext[V]
	// ReduceContext is the reducer's window onto the device.
	ReduceContext[V any] = core.ReduceContext[V]

	// RoundRobin is the default integer-key partitioner.
	RoundRobin = core.RoundRobin
	// BlockPartitioner assigns consecutive key blocks to ranks.
	BlockPartitioner = core.BlockPartitioner
	// RadixSorter is the default CUDPP-radix Sorter.
	RadixSorter = core.RadixSorter

	// FaultPlan deterministically schedules GPU failures and straggler
	// derating for a job (Config.Faults). See DESIGN.md, "Fault
	// tolerance".
	FaultPlan = fault.Plan
	// FaultEvent is one scheduled fail-stop or straggler event.
	FaultEvent = fault.Event

	// Time is simulated time in nanoseconds.
	Time = des.Time

	// Multi-tenant job scheduling (internal/sched): many jobs
	// space-sharing one simulated cluster. See DESIGN.md,
	// "Multi-tenancy".

	// Scheduled wraps a Job for the job-level scheduler and captures its
	// Result on completion.
	Scheduled[V any] = core.Scheduled[V]
	// Runnable is the non-generic job interface the scheduler admits.
	Runnable = core.Runnable
	// SchedPolicy configures gang sizing and admission for RunJobs.
	SchedPolicy = sched.Policy
	// SchedPolicyKind selects FIFO-exclusive, fixed-share, or
	// weighted-fair scheduling.
	SchedPolicyKind = sched.PolicyKind
	// JobSpec is one submission (arrival time, job, weight, MinGang).
	JobSpec = sched.JobSpec
	// ClusterTrace aggregates a scheduler run: per-job latency and queue
	// wait, throughput, and Jain's fairness index.
	ClusterTrace = sched.ClusterTrace
	// JobTrace records one job's passage through the shared cluster.
	JobTrace = sched.JobTrace
	// ClusterConfig selects the shared machine's shape for RunJobs.
	ClusterConfig = cluster.Config
)

// Job-level scheduling policies selectable via SchedPolicy.Kind.
const (
	// FIFOExclusive runs jobs one at a time on the whole cluster.
	FIFOExclusive = sched.FIFOExclusive
	// FixedShare caps every gang at a fixed rank count.
	FixedShare = sched.FixedShare
	// WeightedFair sizes gangs by weight and molds them onto idle ranks.
	WeightedFair = sched.WeightedFair
)

// RunJobs simulates a stream of jobs space-sharing one cluster under the
// policy and returns the cluster-level trace.
func RunJobs(cc ClusterConfig, pol SchedPolicy, specs []JobSpec) (*ClusterTrace, error) {
	return sched.Run(cc, pol, specs)
}

// DefaultClusterConfig is the paper's testbed shape scaled to nGPUs ranks
// (four per node), for use with RunJobs.
func DefaultClusterConfig(nGPUs int) ClusterConfig { return cluster.DefaultConfig(nGPUs) }

// Fault injection helpers, re-exported from internal/fault.
var (
	// FailAt schedules a fail-stop of rank at a simulated time.
	FailAt = fault.FailAt
	// FailAfterChunks schedules a fail-stop after the rank's nth chunk.
	FailAfterChunks = fault.FailAfterChunks
	// SlowdownAt derates rank by factor from a simulated time onward.
	SlowdownAt = fault.SlowdownAt
	// SlowdownAfterChunks derates rank after its nth chunk.
	SlowdownAfterChunks = fault.SlowdownAfterChunks
)

// DefaultStartup is the per-job spin-up the benchmark apps charge.
const DefaultStartup = core.DefaultStartup

// Steal policies selectable via Config.StealPolicy.
const (
	// StealGlobal shifts chunks from the globally fullest queue.
	StealGlobal = core.StealGlobal
	// StealLocalFirst prefers same-node victims, sparing the NICs.
	StealLocalFirst = core.StealLocalFirst
)

// FitAllChunking is a helper for Reducer.ChunkValueSets implementations.
func FitAllChunking(sets int, virtVals, freeBytes, valBytes int64) int {
	return core.FitAllChunking(sets, virtVals, freeBytes, valBytes)
}

// Online serving (internal/serve): an open system where jobs arrive at a
// RUNNING cluster over a wall-clock boundary, with admission control and
// deterministic arrival-trace record/replay. See DESIGN.md, "Online
// serving", and cmd/gpmrd for the HTTP daemon.
type (
	// ServeConfig shapes one online service instance (cluster, policy,
	// catalog, queue bound, quotas, time scale, trace recording).
	ServeConfig = serve.Config
	// Server is the live service handle: Submit/Cancel/Jobs/Drain.
	Server = serve.Server
	// ServeRequest is one submission crossing the service boundary.
	ServeRequest = serve.Request
	// ServeJobInfo is the service's record of one submission.
	ServeJobInfo = serve.JobInfo
	// ServeReport is a drained run: cluster trace, job table, stats.
	ServeReport = serve.Report
	// ServeCatalog maps submission kinds to deterministic job builders.
	ServeCatalog = serve.Catalog
	// ArrivalTrace is a recorded boundary-event stream for replay.
	ArrivalTrace = serve.Trace
)

// StartServer begins serving jobs on a live simulated cluster.
func StartServer(cfg ServeConfig) (*Server, error) { return serve.Start(cfg) }

// ReplayTrace feeds a recorded arrival trace through the offline path,
// reproducing the live run byte for byte.
func ReplayTrace(tr *ArrivalTrace, opt serve.ReplayOptions) (*ServeReport, error) {
	return serve.Replay(tr, opt)
}

// DefaultServeCatalog returns the standard submission kinds (wo, kmc,
// sio) with the given physical element budget per job.
func DefaultServeCatalog(phys int) *ServeCatalog { return serve.DefaultCatalog(phys) }
