// Package cluster assembles the simulated machine: nodes with multicore
// CPUs and host memory, GPUs attached through (possibly shared) PCIe links,
// and a fabric connecting the nodes. The default configuration reproduces
// the paper's NCSA Accelerator cluster: 32 nodes, each with two dual-core
// 2.4 GHz AMD Opterons, 8 GB of RAM, and an NVIDIA Tesla S1070 — four GT200
// GPUs reached through two gen-1 PCIe x16 host interface cards (two GPUs
// per card) — on QDR InfiniBand.
package cluster

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/obs"
)

// NodeProps describes one cluster node's host side.
type NodeProps struct {
	Cores         int     // CPU cores (paper: 2 × dual-core Opteron = 4)
	CoreFlops     float64 // sustained flops/s per core with SSE
	HostMemBW     float64 // host memory bandwidth, bytes/s
	HostMemBytes  int64   // host RAM
	GPUsPerNode   int     // GPUs installed (paper: 4, the S1070)
	GPUsPerPCIe   int     // GPUs sharing one PCIe link (paper: 2)
	MemcpyPerCore float64 // host memcpy bandwidth one core can drive
}

// Accelerator returns the paper's node configuration.
func Accelerator() NodeProps {
	return NodeProps{
		Cores:         4,
		CoreFlops:     4.8e9, // 2.4 GHz × 2 flops/cycle (SSE2 double)
		HostMemBW:     6.4e9, // DDR2-800 dual channel
		HostMemBytes:  8 << 30,
		GPUsPerNode:   4,
		GPUsPerPCIe:   2,
		MemcpyPerCore: 2.5e9,
	}
}

// Node is one host in the cluster.
type Node struct {
	ID    int
	Props NodeProps
	CPU   *des.Resource // capacity = Cores
	PCIe  []*des.Resource
	GPUs  []*gpu.Device
}

// CPUTime occupies n cores for d. It is the building block for Bin-thread
// and serialization costs.
func (n *Node) CPUTime(p *des.Proc, cores int, d des.Time) {
	n.CPU.Use(p, cores, d)
}

// Config selects the cluster shape for one simulation.
type Config struct {
	GPUs        int // total GPU processes (ranks)
	GPUsPerNode int // how many of each node's GPUs this job uses
	Node        NodeProps
	GPU         gpu.Props
	PCIe        gpu.PCIeProps
	Fabric      fabric.Props

	// Workers selects the kernel-execution backend every device of this
	// cluster shares: 0 runs closures inline on the simulated process
	// (Serial, the default), n >= 1 dispatches them to a pool of n real
	// worker goroutines, and negative means pool(GOMAXPROCS). The DES
	// schedule and all outputs are identical either way; only host
	// wall-clock changes. Callers that set Workers != 0 must Close the
	// cluster after the engine finishes.
	Workers int

	// Shards selects how many DES engine shards drive the simulation:
	// 0 keeps the legacy single-engine path, n >= 1 runs a ShardSet of n
	// engines (engine 0 is the scheduler hub; job gangs are homed on
	// engines 1..n-1 when n >= 2), and negative means one engine per
	// cluster node plus the hub. All shard counts >= 1 produce
	// byte-identical traces and results; only host wall-clock changes.
	Shards int

	// LaunchOverhead is the simulated delay between the scheduler
	// deciding to start a job and its gang processes beginning on their
	// nodes — MPI wireup plus CUDA context dispatch. It doubles as the
	// hub->shard lookahead that lets shards run concurrently. Zero means
	// DefaultLaunchOverhead. Only sharded runs (Shards != 0) charge it.
	LaunchOverhead des.Time

	// Obs is the flight recorder shared by every layer of the simulation
	// (nil = tracing disabled). Recording never perturbs the schedule, so
	// results are byte-identical with or without it.
	Obs *obs.Recorder
}

// DefaultLaunchOverhead is the job-launch dispatch cost charged by sharded
// runs: roughly mpirun wireup + CUDA context creation on the paper's
// cluster.
const DefaultLaunchOverhead = 2 * des.Millisecond

// ShardCount decodes the Shards knob against the cluster shape: the number
// of engines a ShardSet should hold, or 0 for the legacy single-engine
// path. Negative Shards means one engine per node plus the hub.
func (c Config) ShardCount() int {
	if c.Shards == 0 {
		return 0
	}
	if c.Shards < 0 {
		nNodes := (c.GPUs + c.GPUsPerNode - 1) / c.GPUsPerNode
		return nNodes + 1
	}
	return c.Shards
}

// Launch returns the effective launch overhead.
func (c Config) Launch() des.Time {
	if c.LaunchOverhead == 0 {
		return DefaultLaunchOverhead
	}
	return c.LaunchOverhead
}

// Validate checks the cluster shape without building it, so services can
// reject a bad configuration as an error where New would panic.
func (c Config) Validate() error {
	if c.GPUs <= 0 {
		return fmt.Errorf("cluster: %d GPUs, need at least one", c.GPUs)
	}
	if c.GPUsPerNode <= 0 || c.GPUsPerNode > c.Node.GPUsPerNode {
		return fmt.Errorf("cluster: GPUsPerNode %d outside 1..%d", c.GPUsPerNode, c.Node.GPUsPerNode)
	}
	return nil
}

// DefaultConfig returns the paper's testbed scaled to nGPUs ranks, packing
// four ranks per node as the paper's MPI launch did.
func DefaultConfig(nGPUs int) Config {
	per := nGPUs
	if per > 4 {
		per = 4
	}
	return Config{
		GPUs:        nGPUs,
		GPUsPerNode: per,
		Node:        Accelerator(),
		GPU:         gpu.GT200(),
		PCIe:        gpu.PCIeGen2x16(), // the S1070's host interface cards
		Fabric:      fabric.QDRInfiniBand(),
	}
}

// Cluster is the assembled machine for one job.
type Cluster struct {
	Eng     *des.Engine
	Cfg     Config
	Nodes   []*Node
	GPUs    []*gpu.Device // indexed by rank
	Fabric  *fabric.Fabric
	Obs     *obs.Recorder // flight recorder (nil = disabled)
	nodeOf  []int
	backend gpu.Backend
}

// New builds a cluster per cfg on the given engine.
func New(eng *des.Engine, cfg Config) *Cluster {
	if cfg.GPUs <= 0 {
		panic("cluster: need at least one GPU")
	}
	if cfg.GPUsPerNode <= 0 || cfg.GPUsPerNode > cfg.Node.GPUsPerNode {
		panic(fmt.Sprintf("cluster: GPUsPerNode %d outside 1..%d", cfg.GPUsPerNode, cfg.Node.GPUsPerNode))
	}
	nNodes := (cfg.GPUs + cfg.GPUsPerNode - 1) / cfg.GPUsPerNode
	c := &Cluster{Eng: eng, Cfg: cfg}
	nodeOf := make([]int, 0, cfg.GPUs)
	for ni := 0; ni < nNodes; ni++ {
		node := &Node{
			ID:    ni,
			Props: cfg.Node,
			CPU:   des.NewResource(eng, fmt.Sprintf("node%d.cpu", ni), cfg.Node.Cores),
		}
		nLinks := (cfg.Node.GPUsPerNode + cfg.Node.GPUsPerPCIe - 1) / cfg.Node.GPUsPerPCIe
		for li := 0; li < nLinks; li++ {
			node.PCIe = append(node.PCIe, des.NewResource(eng, fmt.Sprintf("node%d.pcie%d", ni, li), 1))
		}
		for gi := 0; gi < cfg.GPUsPerNode && len(c.GPUs) < cfg.GPUs; gi++ {
			link := node.PCIe[gi/cfg.Node.GPUsPerPCIe]
			dev := gpu.NewDevice(eng, len(c.GPUs), cfg.GPU, link, cfg.PCIe)
			node.GPUs = append(node.GPUs, dev)
			c.GPUs = append(c.GPUs, dev)
			nodeOf = append(nodeOf, ni)
		}
		c.Nodes = append(c.Nodes, node)
	}
	c.nodeOf = nodeOf
	c.Fabric = fabric.New(eng, cfg.Fabric, nodeOf)
	c.backend = gpu.NewBackend(cfg.Workers)
	for _, dev := range c.GPUs {
		dev.SetBackend(c.backend)
	}
	c.Obs = cfg.Obs
	if c.Obs.Enabled() {
		for _, dev := range c.GPUs {
			dev.SetObs(c.Obs)
		}
		// Host-configuration attribution stays in CatEngine: backend and
		// worker choice change wall-clock only, and the canonical trace
		// must not vary with them.
		c.Obs.Emit(int64(eng.Now()), obs.CatEngine, "cluster", "cluster.build",
			obs.Int("gpus", int64(cfg.GPUs)), obs.Int("nodes", int64(nNodes)),
			obs.A("backend", fmt.Sprintf("%T", c.backend)), obs.Int("workers", int64(cfg.Workers)))
	}
	return c
}

// Backend returns the kernel-execution backend shared by the cluster's
// devices.
func (c *Cluster) Backend() gpu.Backend { return c.backend }

// Close releases the execution backend's workers. Call after the engine
// has run to completion; idempotent, and a no-op for the Serial backend.
func (c *Cluster) Close() { c.backend.Close() }

// NodeOfRank returns the node hosting the given rank.
func (c *Cluster) NodeOfRank(r int) *Node { return c.Nodes[c.nodeOf[r]] }

// Derate stretches rank r's GPU kernel and PCIe durations by factor
// (>1 = slower) from now on — the straggler half of fault injection.
func (c *Cluster) Derate(r int, factor float64) { c.GPUs[r].SetDerate(factor) }

// DerateFactor returns rank r's current straggler factor (1 = nominal).
func (c *Cluster) DerateFactor(r int) float64 { return c.GPUs[r].DerateFactor() }

// Ranks returns the number of GPU processes.
func (c *Cluster) Ranks() int { return len(c.GPUs) }
