package bench

import (
	"os/exec"
	"runtime"
	"strings"
)

// BenchSchema versions the BENCH_*.json artifact layout. Bump it when a
// field changes meaning so cross-PR tooling can refuse to compare
// incompatible artifacts.
const BenchSchema = 2

// Stamp is the provenance header embedded in every BENCH artifact, so a
// bench trajectory is machine-comparable across PRs: which schema, which
// commit, and how many host cores the rows ran under.
type Stamp struct {
	Schema     int    `json:"schema"`
	Commit     string `json:"commit"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// NewStamp captures the current provenance. The commit is git's short
// hash of HEAD, or "unknown" outside a checkout.
func NewStamp() Stamp {
	return Stamp{Schema: BenchSchema, Commit: gitCommit(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
