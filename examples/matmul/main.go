// Command matmul runs the paper's two-job Matrix Multiplication pipeline
// (tile multiply → partial-sum addition, bypassing Sort and Reduce) across
// a range of GPU counts, printing the near-perfect compute-bound scaling
// that Figure 3 shows, and verifies the product against a sequential
// multiply.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/apps/mm"
	"repro/internal/des"
)

func main() {
	dim := flag.Int64("dim", 4096, "virtual matrix edge (multiple of 256)")
	flag.Parse()

	var base des.Time
	fmt.Printf("C = A x B at %d x %d (virtual), verified on the physical tiles\n\n", *dim, *dim)
	fmt.Printf("%6s %14s %14s %10s %12s\n", "GPUs", "multiply job", "add-sums job", "speedup", "efficiency")
	for _, gpus := range []int{1, 2, 4, 8, 16} {
		b, err := mm.New(mm.Params{Dim: *dim, GPUs: gpus})
		if err != nil {
			log.Fatal(err)
		}
		perRank, tr1, tr2, err := b.Run()
		if err != nil {
			log.Fatal(err)
		}
		got := b.Reassemble(perRank)
		ref := b.Reference()
		for i := range ref {
			if math.Abs(float64(got[i]-ref[i])) > 1e-3*(math.Abs(float64(ref[i]))+1) {
				log.Fatalf("gpus=%d: C[%d] = %f, want %f", gpus, i, got[i], ref[i])
			}
		}
		wall := tr1.Wall + tr2.Wall
		if gpus == 1 {
			base = wall
		}
		sp := float64(base) / float64(wall)
		fmt.Printf("%6d %14v %14v %9.2fx %11.1f%%\n", gpus, tr1.Wall, tr2.Wall, sp, sp/float64(gpus)*100)
	}
	fmt.Println("\nall products verified against the sequential reference")
}
