// Package fleet federates many gpmrd cluster shards behind one front
// door: a router tier that consistent-hashes tenants onto shards
// (bounded-load variant, so a hot tenant cannot melt one shard),
// health-checks each shard, retries and fails over proxied submissions,
// re-admits a lost shard's unfinished jobs onto survivors, and steals
// queued jobs away from a shard whose queue depth is skewed — chunk
// stealing promoted to the cluster-of-clusters level. Each shard keeps
// its own byte-replayable arrival trace, stamped with a fleet header
// (shard id, ring epoch) by the registration handshake, so a whole
// multi-shard run replays deterministically: gpmrfleet -replay replays
// every shard trace and merges the reports. See DESIGN.md, "Fleet".
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over shard IDs with the bounded-load
// refinement (Mirrokni et al.): a lookup walks clockwise from the key's
// point and takes the first eligible shard whose load is under the
// bound c·(total+1)/n, so keys spill deterministically to the next
// shard instead of melting a hot one. The ring is immutable; liveness
// and load are the caller's per-lookup inputs, which keeps membership
// changes (a dead shard) a matter of eligibility, not rehashing.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard string
}

// DefaultReplicas is the vnode count per shard when Config leaves it 0.
const DefaultReplicas = 64

// NewRing builds a ring with the given virtual nodes per shard.
func NewRing(shards []string, replicas int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(shards))
	r := &Ring{replicas: replicas}
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("fleet: empty shard id")
		}
		if seen[s] {
			return nil, fmt.Errorf("fleet: duplicate shard id %q", s)
		}
		seen[s] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", s, i)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard // total order even on hash collisions
	})
	return r, nil
}

// hash64 is the ring's point hash: fnv-1a (stable across processes)
// run through a 64-bit finalizer. The finalizer matters: raw fnv-1a of
// short keys like "s0#17" barely avalanches into the high bits, which
// the ring's sort order lives on — without it a shard's vnodes clump
// into one arc and some shards own almost no keyspace.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Pick routes a key. eligible maps live shard IDs to their current load
// (in-flight jobs, in whatever unit the caller tracks); shards absent
// from the map are skipped. With c > 0, the walk takes the first
// eligible shard whose load stays under ceil(c·(total+1)/n); if every
// eligible shard is at the bound — or c <= 0 disables bounding — the
// first eligible shard in ring order wins (plain consistent hashing
// when c <= 0, least-loaded fallback otherwise). Deterministic: same
// ring, key, loads, and factor always pick the same shard.
func (r *Ring) Pick(key string, eligible map[string]int, c float64) (string, bool) {
	if len(eligible) == 0 {
		return "", false
	}
	var bound int
	if c > 0 {
		total := 0
		for _, l := range eligible {
			total += l
		}
		// ceil(c·(total+1)/n): every shard may hold its fair share of the
		// load including the key being placed, scaled by c.
		bound = int(ceilDiv(c * float64(total+1) / float64(len(eligible))))
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var walk []string // distinct eligible shards in ring order
	seen := make(map[string]bool, len(eligible))
	for i := 0; i < len(r.points) && len(walk) < len(eligible); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		if _, ok := eligible[p.shard]; !ok {
			continue
		}
		walk = append(walk, p.shard)
	}
	if len(walk) == 0 {
		return "", false
	}
	if c <= 0 {
		return walk[0], true
	}
	for _, s := range walk {
		if eligible[s] < bound {
			return s, true
		}
	}
	// Every shard is at the bound: fall back to the least-loaded one,
	// ties broken by ring order.
	best := walk[0]
	for _, s := range walk[1:] {
		if eligible[s] < eligible[best] {
			best = s
		}
	}
	return best, true
}

// ceilDiv rounds a positive float up to the next integer (at least 1).
func ceilDiv(f float64) float64 {
	n := float64(int(f))
	if n < f {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
