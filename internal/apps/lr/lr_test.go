package lr

import (
	"math"
	"testing"
)

func gatherSums(t *testing.T, p Params) (map[uint32]float64, *Built) {
	t.Helper()
	b := NewJob(p)
	res := b.Job.MustRun()
	got := make(map[uint32]float64)
	for i, k := range res.Output.Keys {
		got[k] += res.Output.Vals[i]
	}
	return got, b
}

func TestCorrectnessSingleGPU(t *testing.T) {
	got, b := gatherSums(t, Params{Points: 1 << 12, GPUs: 1, PhysMax: 1 << 12})
	ref := b.Reference(1)
	if len(got) != int(NumKeys) {
		t.Fatalf("%d keys, want %d", len(got), NumKeys)
	}
	for k, want := range ref {
		if math.Abs(got[k]-want) > 1e-6*(math.Abs(want)+1) {
			t.Fatalf("key %d: %g, want %g", k, got[k], want)
		}
	}
}

func TestCorrectnessMultiGPU(t *testing.T) {
	p := Params{Points: 1 << 14, GPUs: 8, PhysMax: 1 << 12}
	got, b := gatherSums(t, p)
	ref := b.Reference(b.Job.Config.VirtFactor)
	for k, want := range ref {
		if math.Abs(got[k]-want) > 1e-6*(math.Abs(want)+1) {
			t.Fatalf("key %d: %g, want %g", k, got[k], want)
		}
	}
}

func TestFitRecoversModel(t *testing.T) {
	got, _ := gatherSums(t, Params{Points: 1 << 16, GPUs: 4, PhysMax: 1 << 16, A: 2, B: 3, Noise: 0.5})
	a, b := Fit(got)
	if math.Abs(a-2) > 0.1 || math.Abs(b-3) > 0.02 {
		t.Errorf("fit a=%.3f b=%.3f, want 2,3", a, b)
	}
}

func TestFitEmptyInput(t *testing.T) {
	a, b := Fit(map[uint32]float64{})
	if a != 0 || b != 0 {
		t.Errorf("empty fit = %f,%f", a, b)
	}
}

func TestSixKeysOnly(t *testing.T) {
	got, _ := gatherSums(t, Params{Points: 1 << 12, GPUs: 4, PhysMax: 1 << 12})
	if len(got) != int(NumKeys) {
		t.Errorf("emitted %d keys, paper says exactly %d", len(got), NumKeys)
	}
}

func TestNoPartitionerMeansRankZeroReduces(t *testing.T) {
	b := NewJob(Params{Points: 1 << 12, GPUs: 4, PhysMax: 1 << 12})
	res := b.Job.MustRun()
	for r := 1; r < 4; r++ {
		if res.PerRank[r].Len() != 0 {
			t.Errorf("rank %d produced output despite nil partitioner", r)
		}
	}
}

func TestLightMapCommunicationSensitive(t *testing.T) {
	// The paper: per-element map time is tiny, so multi-node communication
	// hurts LR's efficiency disproportionately past one node.
	mk := func(gpus int) float64 {
		b := NewJob(Params{Points: 64 << 20, GPUs: gpus, PhysMax: 1 << 12})
		return b.Job.MustRun().Trace.Wall.Seconds()
	}
	t4, t8 := mk(4), mk(8)
	eff8 := t4 * 4 / (t8 * 8)
	if eff8 > 0.95 {
		t.Errorf("LR 8-GPU relative efficiency %.2f — expected communication-limited scaling", eff8)
	}
}
