package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Emit(1, CatSim, "s", "k")
	r.Span(1, 2, CatSim, "s", "k", Int("n", 3))
	r.SetPrefix("p/")
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
	if evs := r.Events(); evs != nil {
		t.Fatalf("Events = %v, want nil", evs)
	}
	if evs := r.Canonical(); evs != nil {
		t.Fatalf("Canonical = %v, want nil", evs)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalOrderAndSeq(t *testing.T) {
	r := New()
	// Emit out of time order across two streams; ties on T break by
	// stream, then by per-stream seq.
	r.Emit(30, CatSim, "b", "late")
	r.Emit(10, CatSim, "a", "first")
	r.Emit(10, CatSim, "b", "tie")
	r.Emit(10, CatSim, "a", "second")
	r.Emit(20, CatEngine, "a", "internal")

	evs := r.Canonical()
	got := make([]string, len(evs))
	for i, e := range evs {
		got[i] = e.Stream + ":" + e.Kind
	}
	want := []string{"a:first", "a:second", "b:tie", "b:late"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("canonical order = %v, want %v", got, want)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("stream a seqs = %d,%d, want 0,1", evs[0].Seq, evs[1].Seq)
	}
	// Events() includes CatEngine; Canonical() excluded it.
	if r.Len() != 5 || len(r.Events()) != 5 || len(evs) != 4 {
		t.Fatalf("Len=%d Events=%d Canonical=%d, want 5/5/4", r.Len(), len(r.Events()), len(evs))
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	r := New()
	r.Span(10, 5, CatSim, "s", "k")
	evs := r.Events()
	if evs[0].Dur != 0 {
		t.Fatalf("Dur = %d, want 0", evs[0].Dur)
	}
}

func TestSetPrefixSeparatesRuns(t *testing.T) {
	r := New()
	r.SetPrefix("fifo/")
	r.Emit(1, CatSim, "job", "a")
	r.SetPrefix("sjf/")
	r.Emit(1, CatSim, "job", "b")
	evs := r.Canonical()
	if evs[0].Stream != "fifo/job" || evs[1].Stream != "sjf/job" {
		t.Fatalf("streams = %q,%q", evs[0].Stream, evs[1].Stream)
	}
	// Independent seq counters per prefixed stream.
	if evs[0].Seq != 0 || evs[1].Seq != 0 {
		t.Fatalf("seqs = %d,%d, want 0,0", evs[0].Seq, evs[1].Seq)
	}
}

func TestAttrAccessors(t *testing.T) {
	r := New()
	r.Emit(1, CatSim, "s", "k", A("x", "y"), Int("n", -7), Float("f", 0.5), Bool("b", true))
	e := r.Events()[0]
	if e.Attr("x") != "y" || e.Attr("n") != "-7" || e.Attr("f") != "0.5" || e.Attr("b") != "true" {
		t.Fatalf("attrs = %v", e.Attrs)
	}
	if e.Attr("missing") != "" {
		t.Fatal("missing attr not empty")
	}
}

func TestWriteJSONLGolden(t *testing.T) {
	r := New()
	r.Span(1000, 3000, CatSim, "gpu0.compute", "kernel", A("name", "map"))
	r.Emit(1500, CatSim, "wc/r0", "steal", Int("from", 2))
	r.Emit(1500, CatEngine, "shardset", "round")
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":1000,"dur":2000,"stream":"gpu0.compute","kind":"kernel","attrs":{"name":"map"}}
{"t":1500,"dur":0,"stream":"wc/r0","kind":"steal","attrs":{"from":"2"}}
`
	if buf.String() != want {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", buf.String(), want)
	}
	// Every line is valid JSON.
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
	}
}

func TestWriteChromeValidAndFiltered(t *testing.T) {
	r := New()
	r.Span(1000, 3000, CatSim, "gpu0.compute", "kernel", A("name", "map"))
	r.Emit(2500, CatSim, "wc/r0", "steal")
	r.Span(500, 4000, CatSim, "wc/r0", "phase.map")
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Name string          `json:"name"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 1 process_name + 2 thread_name metadata + 3 events.
	var meta, spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
		case "i":
			instants++
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	if meta != 3 || spans != 2 || instants != 1 {
		t.Fatalf("meta/spans/instants = %d/%d/%d, want 3/2/1", meta, spans, instants)
	}

	// Filtered export keeps only the selected stream.
	buf.Reset()
	if err := r.WriteChromeFiltered(&buf, func(s string) bool { return s == "wc/r0" }); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "gpu0.compute") {
		t.Fatal("filtered export leaked other stream")
	}
	if !strings.Contains(buf.String(), "phase.map") {
		t.Fatal("filtered export dropped selected stream")
	}
}

func TestSummarize(t *testing.T) {
	r := New()
	// Stream a: two overlapping spans [0,10] and [5,20] -> busy 20.
	r.Span(0, 10, CatSim, "a", "phase.map")
	r.Span(5, 20, CatSim, "a", "phase.reduce")
	// Stream b: one span [0,40] -> busy 40; finishes last.
	r.Span(0, 40, CatSim, "b", "phase.map")
	r.Emit(41, CatSim, "c", "done") // instant sets makespan to 41

	s := Summarize(r.Canonical())
	if s.MakespanNs != 41 {
		t.Fatalf("makespan = %d, want 41", s.MakespanNs)
	}
	if len(s.Streams) != 2 {
		t.Fatalf("streams = %d, want 2 (instant-only streams excluded)", len(s.Streams))
	}
	if s.Streams[0].Stream != "a" || s.Streams[0].BusyNs != 20 {
		t.Fatalf("stream a busy = %d, want 20", s.Streams[0].BusyNs)
	}
	if s.Streams[1].Stream != "b" || s.Streams[1].BusyNs != 40 {
		t.Fatalf("stream b busy = %d, want 40", s.Streams[1].BusyNs)
	}

	var mapStats *PhaseStats
	for i := range s.Phases {
		if s.Phases[i].Kind == "phase.map" {
			mapStats = &s.Phases[i]
		}
	}
	if mapStats == nil || mapStats.Count != 2 || mapStats.TotalNs != 50 {
		t.Fatalf("phase.map stats = %+v", mapStats)
	}
	if mapStats.P50Ns != 10 || mapStats.P95Ns != 40 || mapStats.P99Ns != 40 {
		t.Fatalf("phase.map percentiles = %d/%d/%d", mapStats.P50Ns, mapStats.P95Ns, mapStats.P99Ns)
	}

	// Critical path: last event end is the instant on c at 41.
	if s.Critical.Stream != "c" || s.Critical.EndNs != 41 {
		t.Fatalf("critical = %+v", s.Critical)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	durs := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(durs, 50); p != 5 {
		t.Fatalf("p50 = %d, want 5", p)
	}
	if p := percentile(durs, 95); p != 10 {
		t.Fatalf("p95 = %d, want 10", p)
	}
	if p := percentile(durs, 100); p != 10 {
		t.Fatalf("p100 = %d, want 10", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("empty p50 = %d, want 0", p)
	}
}
