package core

import (
	"repro/internal/des"
	"repro/internal/fabric"
)

// StealPolicy selects how a starved rank picks the victim queue when the
// dynamic work queues shift a chunk for load balance.
type StealPolicy int

const (
	// StealGlobal shifts from the globally fullest queue, ignoring node
	// topology (the paper's behaviour).
	StealGlobal StealPolicy = iota
	// StealLocalFirst prefers the fullest queue on the thief's own node —
	// an intra-node shift is a host-memory copy that leaves both NICs
	// free — and crosses the node boundary only when the whole node is
	// dry. See DESIGN.md, "Locality-aware chunk stealing".
	StealLocalFirst
)

// String names the policy for traces and benchmark reports.
func (p StealPolicy) String() string {
	switch p {
	case StealGlobal:
		return "global"
	case StealLocalFirst:
		return "localfirst"
	}
	return "unknown"
}

// nodeScope restricts victim selection relative to the thief's node.
type nodeScope int

const (
	anyNode nodeScope = iota
	sameNodeOnly
	otherNodeOnly
)

// scheduler implements GPMR's dynamic work queues: each GPU pulls chunks
// from its local queue, and when a queue runs dry while others still have
// work, a chunk is shifted from a victim queue — charging the chunk's
// serialized transfer over the fabric, which is why chunks must be
// serializable in GPMR. Victim selection is policy-driven: the fabric's
// node topology tells the scheduler which shifts stay on-node (cheap
// host-memory copies) and which occupy NICs.
type scheduler struct {
	chunks   []Chunk
	queues   [][]int // chunk indices per rank
	fab      *fabric.Fabric
	policy   StealPolicy
	minQueue int // victims should hold at least this many chunks
}

// newScheduler distributes chunks round-robin across ranks; assign may
// override the initial placement (used by tests and benchmarks to create
// imbalance and by apps with locality preferences). The fabric supplies
// the node topology that StealLocalFirst consults.
func newScheduler(chunks []Chunk, cfg Config, fab *fabric.Fabric, assign func(chunk int) int) *scheduler {
	s := &scheduler{
		chunks:   chunks,
		queues:   make([][]int, cfg.GPUs),
		fab:      fab,
		policy:   cfg.StealPolicy,
		minQueue: cfg.StealMinQueue,
	}
	for i := range chunks {
		r := i % cfg.GPUs
		if assign != nil {
			r = assign(i)
		}
		s.queues[r] = append(s.queues[r], i)
	}
	return s
}

// next returns the rank's next chunk, shifting one from a victim queue
// when the local queue is empty. The second result reports whether the
// chunk was stolen (and from where); ok=false means global exhaustion.
func (s *scheduler) next(p *des.Proc, rank int) (c Chunk, stolenFrom int, ok bool) {
	if q := s.queues[rank]; len(q) > 0 {
		idx := q[0]
		s.queues[rank] = q[1:]
		return s.chunks[idx], -1, true
	}
	victim := -1
	switch s.policy {
	case StealLocalFirst:
		// The threshold defines "dry": a node whose queues are all below
		// minQueue is crossed away from rather than robbed of stragglers
		// its owners will finish on their own. Only when no queue
		// anywhere meets the threshold does the final tier take the
		// fullest non-empty queue, local before remote — better one
		// shift than an idle GPU.
		if victim = s.pickVictim(rank, sameNodeOnly, s.minQueue); victim < 0 {
			victim = s.pickVictim(rank, otherNodeOnly, s.minQueue)
		}
		if victim < 0 {
			if victim = s.pickVictim(rank, sameNodeOnly, 1); victim < 0 {
				victim = s.pickVictim(rank, otherNodeOnly, 1)
			}
		}
	default:
		if victim = s.pickVictim(rank, anyNode, s.minQueue); victim < 0 {
			victim = s.pickVictim(rank, anyNode, 1)
		}
	}
	if victim < 0 {
		return nil, -1, false
	}
	q := s.queues[victim]
	idx := q[len(q)-1] // steal from the tail: the victim keeps its prefix
	s.queues[victim] = q[:len(q)-1]
	c = s.chunks[idx]
	s.fab.Transfer(p, victim, rank, c.VirtBytes())
	return c, victim, true
}

// pickVictim returns the in-scope rank with the fullest queue holding at
// least minLen chunks, or -1 when none does.
func (s *scheduler) pickVictim(thief int, scope nodeScope, minLen int) int {
	victim, best := -1, minLen-1
	for r, q := range s.queues {
		if s.inScope(thief, r, scope) && len(q) > best {
			victim, best = r, len(q)
		}
	}
	return victim
}

// inScope reports whether rank r is an eligible victim for the thief under
// the given node scope.
func (s *scheduler) inScope(thief, r int, scope nodeScope) bool {
	switch scope {
	case sameNodeOnly:
		return s.fab.SameNode(thief, r)
	case otherNodeOnly:
		return !s.fab.SameNode(thief, r)
	}
	return true
}

// remaining reports how many chunks are still queued anywhere.
func (s *scheduler) remaining() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}
