package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/keyval"
)

// OutputDigester is the optional face of a Runnable whose completed output
// can be summarized as one canonical 64-bit digest. The online serving
// layer records digests in its arrival trace so a replayed run can prove
// byte-identical job outputs without shipping the outputs themselves.
type OutputDigester interface {
	// OutputDigest returns the canonical digest of the job's final
	// output, and false while the job has not completed.
	OutputDigest() (uint64, bool)
}

// Digest canonically hashes a completed job's output: the gathered pairs
// (when GatherOutput was set) followed by every reduce partition's final
// pairs, in partition order. Keys hash as little-endian uint32; values
// hash through fmt's %v — deterministic for every value type the apps use
// (integers verbatim, floats via strconv's shortest round-trip form).
// Two Results digest equal iff keyval.Equal holds slot for slot.
func (r *Result[V]) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(r.PerRank)))
	h.Write(buf[:4])
	digestPairs(h.Write, &r.Output)
	for i := range r.PerRank {
		digestPairs(h.Write, &r.PerRank[i])
	}
	return h.Sum64()
}

// digestPairs feeds one pair list into the hash with length framing, so
// pair boundaries cannot alias across lists.
func digestPairs[V any](write func([]byte) (int, error), p *keyval.Pairs[V]) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Len()))
	write(buf[:])
	for i, k := range p.Keys {
		binary.LittleEndian.PutUint32(buf[:4], k)
		write(buf[:4])
		v := fmt.Sprintf("%v", p.Vals[i])
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(v)))
		write(buf[:4])
		write([]byte(v))
	}
}

// OutputDigest implements OutputDigester for a scheduled job.
func (s *Scheduled[V]) OutputDigest() (uint64, bool) {
	if s.Result == nil {
		return 0, false
	}
	return s.Result.Digest(), true
}
