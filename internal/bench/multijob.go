package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/apps/kmc"
	"repro/internal/apps/sio"
	"repro/internal/apps/wo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/sched"
	"repro/internal/workload"
)

// MultijobGPUs is the shared cluster for the multi-tenant scenario: 16
// ranks packed four per node — four S1070 nodes serving a stream of jobs.
const MultijobGPUs = 16

// MultijobSmallWant is the gang-size threshold below or at which a job
// counts as "small" for the tail-latency comparison.
const MultijobSmallWant = 4

// MultijobJobs is the length of the arrival stream.
const MultijobJobs = 12

// multijobPolicies are the admission policies the experiment compares.
func multijobPolicies() []sched.Policy {
	return []sched.Policy{
		{Kind: sched.FIFOExclusive},
		{Kind: sched.FixedShare, Share: 4},
		{Kind: sched.WeightedFair},
	}
}

// multijobStream builds the seeded Poisson-ish arrival stream: exponential
// inter-arrival gaps and a deterministic job-kind draw per slot, mixing
// small WO and KMC queries with medium and large SIO scans. The stream is
// a pure function of the options, so every policy sees byte-identical
// submissions and two runs of the experiment are bit-identical.
func multijobStream(o Options) []sched.JobSpec {
	rng := workload.NewRNG(o.Seed + 0x9e3779b9)
	// Mean inter-arrival: a fraction of a typical small job's service
	// time, so the queue actually builds and policies differ.
	const meanGapMs = 8.0
	var specs []sched.JobSpec
	var at des.Time
	for i := 0; i < MultijobJobs; i++ {
		u := rng.Float64()
		gap := des.FromSeconds(meanGapMs / 1e3 * -math.Log(1-u))
		at += gap
		specs = append(specs, multijobJob(i, rng.Intn(4), at, o))
	}
	return specs
}

// multijobJob builds one submission. kind picks from the mix; the job
// seed varies per slot so inputs differ across the stream.
func multijobJob(i, kind int, at des.Time, o Options) sched.JobSpec {
	seed := o.Seed + uint64(i)*1000
	switch kind {
	case 0: // small word-occurrence query
		b := wo.NewJob(wo.Params{Bytes: 4 << 20, GPUs: 2, Seed: seed, PhysMax: o.PhysBudget, DictSize: woDict(o)})
		b.Job.Config.Name = fmt.Sprintf("wo-s%d", i)
		return sched.JobSpec{At: at, Job: &core.Scheduled[uint32]{Job: b.Job}}
	case 1: // small k-means iteration
		b := kmc.NewJob(kmc.Params{Points: 4 << 20, GPUs: 2, Seed: seed, PhysMax: o.PhysBudget})
		b.Job.Config.Name = fmt.Sprintf("kmc-s%d", i)
		return sched.JobSpec{At: at, Job: &core.Scheduled[float64]{Job: b.Job}}
	case 2: // medium sparse-integer scan
		job, _ := sio.NewJob(sio.Params{Elements: 8 << 20, GPUs: 4, Seed: seed, PhysMax: o.PhysBudget, ChunkCap: 1 << 20})
		job.Config.Name = fmt.Sprintf("sio-m%d", i)
		return sched.JobSpec{At: at, Job: &core.Scheduled[uint32]{Job: job}}
	default: // large sparse-integer scan — the gang that makes others queue
		job, _ := sio.NewJob(sio.Params{Elements: 32 << 20, GPUs: 12, Seed: seed, PhysMax: o.PhysBudget, ChunkCap: 1 << 20})
		job.Config.Name = fmt.Sprintf("sio-l%d", i)
		return sched.JobSpec{At: at, Job: &core.Scheduled[uint32]{Job: job}}
	}
}

// MultijobRow summarizes one policy's run over the shared stream.
type MultijobRow struct {
	Policy     string
	Jobs       int
	Makespan   des.Time
	Throughput float64 // jobs per simulated second
	P50        des.Time
	P95        des.Time
	P95Small   des.Time // tail latency of jobs wanting <= MultijobSmallWant ranks
	MeanWait   des.Time
	Jain       float64
	WireBytes  int64
}

// Multijob runs the same seeded arrival stream under each admission policy
// on one shared 16-rank cluster and reports per-policy throughput, latency
// percentiles, queue wait, and Jain's fairness index. The returned traces
// parallel the rows (for golden-trace diffing and deeper inspection).
func Multijob(o Options) ([]MultijobRow, []*sched.ClusterTrace, error) {
	o = o.withDefaults()
	cc := cluster.DefaultConfig(MultijobGPUs)
	// The shared machine's kernel-execution backend: with a pool, kernels
	// from co-resident tenants occupy real host cores concurrently. The
	// Shards knob additionally spreads co-resident tenants' event loops
	// over engine shards.
	cc.Workers = o.Workers
	cc.Shards = o.Shards
	cc.Obs = o.Obs
	var rows []MultijobRow
	var traces []*sched.ClusterTrace
	for _, pol := range multijobPolicies() {
		// Each policy replays the same stream on a fresh cluster; prefix
		// its flight-recorder streams so the three runs stay distinct in
		// one trace file.
		o.Obs.SetPrefix(pol.Kind.String() + "/")
		ct, err := sched.Run(cc, pol, multijobStream(o))
		if err != nil {
			o.Obs.SetPrefix("")
			return nil, nil, err
		}
		small := func(j *sched.JobTrace) bool { return j.Want <= MultijobSmallWant }
		rows = append(rows, MultijobRow{
			Policy:     pol.Kind.String(),
			Jobs:       len(ct.Jobs),
			Makespan:   ct.Makespan,
			Throughput: ct.Throughput(),
			P50:        ct.LatencyPercentile(50, nil),
			P95:        ct.LatencyPercentile(95, nil),
			P95Small:   ct.LatencyPercentile(95, small),
			MeanWait:   ct.MeanWait(),
			Jain:       ct.Jain(),
			WireBytes:  ct.WireBytes(),
		})
		traces = append(traces, ct)
	}
	o.Obs.SetPrefix("")
	return rows, traces, nil
}

// RenderMultijob writes the policy comparison and each run's job table.
func RenderMultijob(w io.Writer, rows []MultijobRow, traces []*sched.ClusterTrace) {
	fmt.Fprintf(w, "Multi-tenant scheduling — %d-job mixed stream on %d shared GPUs (4 per node)\n",
		MultijobJobs, MultijobGPUs)
	fmt.Fprintf(w, "%-15s %12s %9s %12s %12s %12s %12s %6s %9s\n",
		"policy", "makespan", "jobs/s", "p50 lat", "p95 lat", "p95 small", "mean wait", "jain", "wire MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %12v %9.2f %12v %12v %12v %12v %6.3f %9.1f\n",
			r.Policy, r.Makespan, r.Throughput, r.P50, r.P95, r.P95Small, r.MeanWait,
			r.Jain, float64(r.WireBytes)/1e6)
	}
	for _, ct := range traces {
		fmt.Fprintln(w)
		fmt.Fprint(w, ct.String())
	}
}
