package bench

import (
	"bytes"
	"reflect"
	"testing"
)

// TestFleetDeterminism pins the fleet-routing sweep: same options, same
// rows and same rendered table, run to run — and every cell accounts
// for the whole stream.
func TestFleetDeterminism(t *testing.T) {
	o := Options{PhysBudget: 1 << 10, Seed: 1}
	rows1, err := Fleet(o)
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	rows2, err := Fleet(o)
	if err != nil {
		t.Fatalf("Fleet (second run): %v", err)
	}
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatalf("fleet sweep is not deterministic:\n%+v\nvs\n%+v", rows1, rows2)
	}
	if len(rows1) != 2*len(fleetShardCounts) {
		t.Fatalf("got %d rows, want %d", len(rows1), 2*len(fleetShardCounts))
	}
	for _, r := range rows1 {
		if r.Done+r.Rejected != FleetJobs {
			t.Fatalf("row %+v: done+rejected = %d, want %d", r, r.Done+r.Rejected, FleetJobs)
		}
		if r.MaxJobs < r.MinJobs {
			t.Fatalf("row %+v: max < min", r)
		}
	}
	// The bounded-load walk must never be more skewed than plain hashing
	// at the same width — leveling is the point.
	for i := 0; i+1 < len(rows1); i += 2 {
		plain, bounded := rows1[i], rows1[i+1]
		if plain.Bounded || !bounded.Bounded || plain.Shards != bounded.Shards {
			t.Fatalf("row order changed: %+v then %+v", plain, bounded)
		}
		if spread(bounded) > spread(plain) {
			t.Fatalf("bounded hashing more skewed than plain at %d shards: %+v vs %+v",
				plain.Shards, bounded, plain)
		}
	}
	var b1, b2 bytes.Buffer
	RenderFleet(&b1, rows1)
	RenderFleet(&b2, rows2)
	if b1.String() != b2.String() {
		t.Fatal("rendered fleet tables differ across runs")
	}
}

func spread(r FleetRow) int { return r.MaxJobs - r.MinJobs }
