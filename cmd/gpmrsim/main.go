// Command gpmrsim runs a single GPMR job on the simulated cluster and
// prints its full timing story: wall time, the Figure-2-style stage
// breakdown, per-rank traces, and data-movement totals. It is the tool for
// exploring one configuration in depth (the per-job analogue of
// gpmrbench's sweeps).
//
// Usage:
//
//	gpmrsim -bench sio -size $((32<<20)) -gpus 8
//	gpmrsim -bench mm -size 4096 -gpus 16 -ranks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	benchName := flag.String("bench", "sio", "benchmark: mm|sio|wo|kmc|lr")
	size := flag.Int64("size", 32<<20, "virtual input size (MM: matrix edge; WO: bytes; others: elements)")
	gpus := flag.Int("gpus", 4, "GPU count")
	phys := flag.Int("phys", 1<<16, "physical element budget")
	seed := flag.Uint64("seed", 1, "workload seed")
	ranks := flag.Bool("ranks", false, "print per-rank traces")
	tracePath := flag.String("trace", "", "write the job's flight recording as Chrome trace-event JSON (load in Perfetto)")
	summary := flag.Bool("summary", false, "print the flight recording's utilization and critical-path summary (implies recording)")
	explain := flag.Bool("explain", false, "print the job's phase breakdown and bottleneck attribution (implies recording)")
	flag.Parse()

	opts := bench.Options{PhysBudget: *phys, Seed: *seed}
	if *tracePath != "" || *summary || *explain {
		opts.Obs = obs.New()
	}
	wall, tr, err := bench.Run(*benchName, *size, *gpus, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmrsim: %v\n", err)
		os.Exit(1)
	}
	b := tr.Breakdown()
	fmt.Printf("%s: size %d on %d GPUs\n", *benchName, *size, *gpus)
	fmt.Printf("wall %v\n", wall)
	fmt.Printf("map %.1f%%  complete-binning %.1f%%  sort %.1f%%  reduce %.1f%%  internal %.1f%%\n",
		b.Map*100, b.CompleteBinning*100, b.Sort*100, b.Reduce*100, b.Internal*100)
	fmt.Printf("wire %.2f MB, intra-node %.2f MB\n", float64(tr.WireBytes)/1e6, float64(tr.LocalBytes)/1e6)
	if *ranks {
		fmt.Printf("%5s %12s %12s %12s %12s %8s %7s %9s\n",
			"rank", "mapDone", "shuffleDone", "sortDone", "reduceDone", "chunks", "stolen", "outOfCore")
		for r, rt := range tr.Ranks {
			fmt.Printf("%5d %12v %12v %12v %12v %8d %7d %9v\n",
				r, rt.MapDone, rt.ShuffleDone, rt.SortDone, rt.ReduceDone,
				rt.ChunksMapped, rt.ChunksStolen, rt.OutOfCore)
		}
	}
	if *summary {
		fmt.Print(obs.Summarize(opts.Obs.Canonical()).String())
	}
	if *explain {
		evs := opts.Obs.Canonical()
		for _, k := range obs.Jobs(evs) {
			fmt.Print(obs.Explain(evs, k).String())
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpmrsim: %v\n", err)
			os.Exit(1)
		}
		if err := opts.Obs.WriteChrome(f); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrsim: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gpmrsim: flight recording (%d events) written to %s\n", opts.Obs.Len(), *tracePath)
	}
}
