package sio

import (
	"testing"

	"repro/internal/keyval"
)

func collect(perRank []keyval.Pairs[uint32]) map[uint32]uint32 {
	got := make(map[uint32]uint32)
	for _, pr := range perRank {
		for i, k := range pr.Keys {
			got[k] += pr.Vals[i]
		}
	}
	return got
}

func TestCorrectnessSingleGPU(t *testing.T) {
	job, data := NewJob(Params{Elements: 1 << 14, GPUs: 1, PhysMax: 1 << 14})
	res := job.MustRun()
	got := collect(res.PerRank)
	ref := Reference(data)
	if len(got) != len(ref) {
		t.Fatalf("%d distinct keys, want %d", len(got), len(ref))
	}
	for k, want := range ref {
		if got[k] != want {
			t.Fatalf("key %d: %d, want %d", k, got[k], want)
		}
	}
}

func TestCorrectnessMultiGPU(t *testing.T) {
	for _, gpus := range []int{2, 4, 8} {
		job, data := NewJob(Params{Elements: 1 << 14, GPUs: gpus, PhysMax: 1 << 14})
		res := job.MustRun()
		got := collect(res.PerRank)
		ref := Reference(data)
		for k, want := range ref {
			if got[k] != want {
				t.Fatalf("gpus=%d key %d: %d, want %d", gpus, k, got[k], want)
			}
		}
		// Round-robin partitioning: every reducer should hold some keys.
		for r, pr := range res.PerRank {
			if pr.Len() == 0 {
				t.Errorf("gpus=%d rank %d reduced nothing", gpus, r)
			}
		}
	}
}

func TestVirtualScalingPreservesCounts(t *testing.T) {
	job, data := NewJob(Params{Elements: 1 << 22, GPUs: 2, PhysMax: 1 << 12})
	if job.Config.VirtFactor != 1<<10 {
		t.Fatalf("virt factor %d, want 1024", job.Config.VirtFactor)
	}
	res := job.MustRun()
	got := collect(res.PerRank)
	ref := Reference(data)
	for k, want := range ref {
		if got[k] != want {
			t.Fatalf("key %d: %d, want %d", k, got[k], want)
		}
	}
}

func TestSortDominatesSingleGPU(t *testing.T) {
	// Paper Figure 2: SIO on 1 GPU is bottlenecked by Sort.
	job, _ := NewJob(Params{Elements: 32 << 20, GPUs: 1, PhysMax: 1 << 14})
	res := job.MustRun()
	b := res.Trace.Breakdown()
	if b.Sort < b.Map {
		t.Errorf("1-GPU SIO: sort %.2f < map %.2f — paper says sort-bound", b.Sort, b.Map)
	}
}

func TestInCoreSuperLinearRegime(t *testing.T) {
	// 128M elements: 1 GPU must spill, 4 GPUs must not (Figure 3).
	j1, _ := NewJob(Params{Elements: 128 << 20, GPUs: 1, PhysMax: 1 << 14})
	r1 := j1.MustRun()
	if !r1.Trace.Ranks[0].OutOfCore {
		t.Error("128M on 1 GPU should sort out-of-core")
	}
	j4, _ := NewJob(Params{Elements: 128 << 20, GPUs: 4, PhysMax: 1 << 14})
	r4 := j4.MustRun()
	for r, tr := range r4.Trace.Ranks {
		if tr.OutOfCore {
			t.Errorf("rank %d spilled with 4 GPUs", r)
		}
	}
	speedup := float64(r1.Trace.Wall) / float64(r4.Trace.Wall)
	if speedup <= 4.0 {
		t.Errorf("4-GPU speedup %.2f not super-linear despite in-core transition", speedup)
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := NewJob(Params{Elements: 1 << 16, GPUs: 4, PhysMax: 1 << 12})
	b, _ := NewJob(Params{Elements: 1 << 16, GPUs: 4, PhysMax: 1 << 12})
	if a.MustRun().Trace.Wall != b.MustRun().Trace.Wall {
		t.Error("SIO run not deterministic")
	}
}
