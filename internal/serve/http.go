package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// HandlerConfig tunes the HTTP surface around a Server.
type HandlerConfig struct {
	// OnDrain, when set, is invoked once (on its own goroutine) after a
	// POST /drain has drained the server and written its response — the
	// host process's cue to shut the listener down and exit.
	OnDrain func()
	// Logf receives handler-level diagnostics (encode failures, render
	// errors). Defaults to log.Printf.
	Logf func(format string, args ...any)
}

// handler is the shard's HTTP API: the job endpoints the gpmrd daemon
// has always served, plus the fleet seam — registration, drain
// handshake, and output retrieval — that lets a gpmrfleet router treat
// this server as one shard of many.
type handler struct {
	sv  *Server
	cfg HandlerConfig

	drainOnce sync.Once
	drainDone chan struct{}
	drainResp DrainResponse
	drainErr  error
}

// DrainResponse is the drain handshake's answer: the shard's fleet
// identity, its final admission counters, and the full report text. The
// report is what gpmrfleet merges — a replay of the shard's recorded
// arrival trace reproduces it byte for byte.
type DrainResponse struct {
	Shard     string `json:"shard,omitempty"`
	Epoch     int    `json:"epoch,omitempty"`
	Submitted int64  `json:"submitted"`
	Done      int64  `json:"done"`
	Failed    int64  `json:"failed"`
	Cancelled int64  `json:"cancelled"`
	Rejected  int64  `json:"rejected"`
	Report    string `json:"report"`
}

// FleetRegistration is the router→shard registration handshake body.
type FleetRegistration struct {
	Shard string `json:"shard"`
	Epoch int    `json:"epoch"`
}

// NewHandler builds the HTTP API for a running Server.
//
//	POST   /jobs                 submit {"tenant","kind","params",...} → 202 JobInfo
//	GET    /jobs                 list all job records
//	GET    /jobs/{id}            one job record
//	GET    /jobs/{id}/timeline   the job's flight-recorder timeline (Chrome trace JSON)
//	GET    /jobs/{id}/explain    phase breakdown + bottleneck attribution
//	                             (JSON; ?format=text for the fixed-format report)
//	GET    /jobs/{id}/output     a completed job's canonical output text
//	DELETE /jobs/{id}            cancel a queued job
//	GET    /flight               the full flight recording as canonical JSONL
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness: 200 "ok", or 503 "draining"
//	POST   /fleet/register       router handshake: stamp shard id + ring epoch
//	POST   /drain                drain handshake: stop admissions, wait for
//	                             admitted jobs, answer with the final report
func NewHandler(sv *Server, cfg HandlerConfig) http.Handler {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	h := &handler{sv: sv, cfg: cfg, drainDone: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", h.submit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, sv.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", h.job)
	mux.HandleFunc("DELETE /jobs/{id}", h.cancel)
	mux.HandleFunc("GET /jobs/{id}/timeline", h.timeline)
	mux.HandleFunc("GET /jobs/{id}/explain", h.explain)
	mux.HandleFunc("GET /jobs/{id}/output", h.output)
	mux.HandleFunc("GET /flight", h.flight)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		sv.WriteMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if sv.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /fleet/register", h.register)
	mux.HandleFunc("POST /drain", h.drain)
	return mux
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	info, err := h.sv.Submit(req)
	if err != nil {
		// ErrDraining (or a closed injector): the shard is shutting down.
		// 503 is a terminal, retryable answer — the router reroutes.
		h.httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	switch {
	case info.State != Rejected:
		h.writeJSON(w, http.StatusAccepted, info)
	case strings.HasPrefix(info.Reason, "shed:") || strings.HasPrefix(info.Reason, "quota:"):
		// Backpressure: the client should retry once the backlog has
		// plausibly drained — the admission path predicts that from the
		// queued jobs' cost-model estimates (JobInfo.RetryAfter, wall
		// seconds), so a deep backlog pushes retries further out than a
		// shallow one.
		retry := info.RetryAfter
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		h.writeJSON(w, http.StatusTooManyRequests, info)
	default:
		h.writeJSON(w, http.StatusBadRequest, info)
	}
}

// jobID parses the {id} path value, answering 400 itself on failure.
func (h *handler) jobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		h.httpError(w, http.StatusBadRequest, "bad job id")
		return 0, false
	}
	return id, true
}

func (h *handler) job(w http.ResponseWriter, r *http.Request) {
	id, ok := h.jobID(w, r)
	if !ok {
		return
	}
	info, ok := h.sv.Job(id)
	if !ok {
		h.httpError(w, http.StatusNotFound, "no such job")
		return
	}
	h.writeJSON(w, http.StatusOK, info)
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	id, ok := h.jobID(w, r)
	if !ok {
		return
	}
	if _, known := h.sv.Job(id); !known {
		h.httpError(w, http.StatusNotFound, "no such job")
		return
	}
	ok, err := h.sv.Cancel(id)
	if err != nil {
		h.httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if !ok {
		// Both failures are 409s, but they are different conflicts: a
		// running job could be cancellable under a preempting policy,
		// while a finished one never is again.
		info, _ := h.sv.Job(id)
		switch info.State {
		case Running:
			h.httpError(w, http.StatusConflict, "job is running (policy does not preempt)")
		default:
			h.httpError(w, http.StatusConflict, fmt.Sprintf("job already finished (state %s)", info.State))
		}
		return
	}
	h.writeJSON(w, http.StatusOK, map[string]bool{"cancelled": true})
}

func (h *handler) timeline(w http.ResponseWriter, r *http.Request) {
	id, ok := h.jobID(w, r)
	if !ok {
		return
	}
	// Buffer so an error can still become a clean status: 404 only for a
	// job the service has never heard of; render/IO failures are 500s.
	var buf bytes.Buffer
	if err := h.sv.WriteTimeline(&buf, id); err != nil {
		if errors.Is(err, ErrUnknownJob) {
			h.httpError(w, http.StatusNotFound, err.Error())
			return
		}
		h.cfg.Logf("serve: timeline for job %d: %v", id, err)
		h.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		h.cfg.Logf("serve: writing timeline response: %v", err)
	}
}

func (h *handler) explain(w http.ResponseWriter, r *http.Request) {
	id, ok := h.jobID(w, r)
	if !ok {
		return
	}
	ex, err := h.sv.Explain(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		h.httpError(w, http.StatusNotFound, err.Error())
		return
	case err != nil:
		// ErrNoRecorder: the daemon was started without a flight recorder.
		h.httpError(w, http.StatusConflict, err.Error())
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(w, ex.String()); err != nil {
			h.cfg.Logf("serve: writing explain response: %v", err)
		}
		return
	}
	h.writeJSON(w, http.StatusOK, ex)
}

func (h *handler) flight(w http.ResponseWriter, r *http.Request) {
	// Buffered like timeline: render errors become clean statuses.
	var buf bytes.Buffer
	if err := h.sv.WriteFlight(&buf); err != nil {
		h.httpError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	if _, err := w.Write(buf.Bytes()); err != nil {
		h.cfg.Logf("serve: writing flight response: %v", err)
	}
}

func (h *handler) output(w http.ResponseWriter, r *http.Request) {
	id, ok := h.jobID(w, r)
	if !ok {
		return
	}
	out, err := h.sv.Output(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		h.httpError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, ErrNoOutput):
		h.httpError(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		h.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := io.WriteString(w, out); err != nil {
		h.cfg.Logf("serve: writing output response: %v", err)
	}
}

func (h *handler) register(w http.ResponseWriter, r *http.Request) {
	var reg FleetRegistration
	if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
		h.httpError(w, http.StatusBadRequest, "bad registration body: "+err.Error())
		return
	}
	if err := h.sv.SetFleet(reg.Shard, reg.Epoch); err != nil {
		// Registration races a trace whose header is already on disk:
		// the identity cannot change any more.
		h.httpError(w, http.StatusConflict, err.Error())
		return
	}
	h.writeJSON(w, http.StatusOK, reg)
}

func (h *handler) drain(w http.ResponseWriter, r *http.Request) {
	h.drainOnce.Do(func() {
		defer close(h.drainDone)
		rep, err := h.sv.Drain()
		if err != nil {
			h.drainErr = err
			return
		}
		shard, epoch := h.sv.FleetID()
		s := rep.Stats
		h.drainResp = DrainResponse{
			Shard: shard, Epoch: epoch,
			Submitted: s.Submitted, Done: s.Done, Failed: s.Failed,
			Cancelled: s.Cancelled, Rejected: s.rejected(),
			Report: rep.String(),
		}
		if h.cfg.OnDrain != nil {
			// On a fresh goroutine: the host's shutdown path may wait for
			// this very handler to return.
			go h.cfg.OnDrain()
		}
	})
	<-h.drainDone
	if h.drainErr != nil {
		h.httpError(w, http.StatusInternalServerError, h.drainErr.Error())
		return
	}
	h.writeJSON(w, http.StatusOK, h.drainResp)
}

func (h *handler) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is gone; all that's left is to say so.
		h.cfg.Logf("serve: encoding %d response: %v", code, err)
	}
}

func (h *handler) httpError(w http.ResponseWriter, code int, msg string) {
	h.writeJSON(w, code, map[string]string{"error": msg})
}
