package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a = NewRNG(7)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSparseIntsSparse(t *testing.T) {
	ints := SparseInts(1, 100000)
	if len(ints) != 100000 {
		t.Fatalf("len=%d", len(ints))
	}
	seen := make(map[uint32]bool, len(ints))
	for _, v := range ints {
		seen[v] = true
	}
	// Uniform over 2^32: expect almost all distinct.
	if len(seen) < 99000 {
		t.Errorf("only %d distinct of 100000 — not sparse", len(seen))
	}
}

func TestDictionaryDistinct(t *testing.T) {
	words := Dictionary(3, 5000)
	if len(words) != 5000 {
		t.Fatalf("len=%d", len(words))
	}
	seen := make(map[string]bool)
	for _, w := range words {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if len(w) < 3 || len(w) > 12 {
			t.Fatalf("word %q has out-of-band length", w)
		}
	}
}

func TestTextDrawsFromDictionary(t *testing.T) {
	dict := Dictionary(3, 200)
	inDict := make(map[string]bool)
	for _, w := range dict {
		inDict[w] = true
	}
	lines := Text(5, dict, 10000)
	total := 0
	for _, ln := range lines {
		for _, w := range strings.Fields(ln) {
			if !inDict[w] {
				t.Fatalf("word %q not in dictionary", w)
			}
			total += len(w) + 1
		}
	}
	if total < 10000 || total > 11000 {
		t.Errorf("generated ~%d bytes, want ~10000", total)
	}
}

func TestPointsRangeAndShape(t *testing.T) {
	pts := Points(2, 1000, 3)
	if len(pts) != 3000 {
		t.Fatalf("len=%d", len(pts))
	}
	for _, v := range pts {
		if v < 0 || v >= 100 {
			t.Fatalf("coordinate %f out of range", v)
		}
	}
}

func TestXYPairsFollowModel(t *testing.T) {
	xy := XYPairs(11, 50000, 2.0, 3.0, 0.5)
	// Least-squares fit should recover a≈2, b≈3.
	var n, sx, sy, sxx, sxy float64
	for i := 0; i < len(xy); i += 2 {
		x, y := xy[i], xy[i+1]
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	b := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a := (sy - b*sx) / n
	if a < 1.9 || a > 2.1 || b < 2.99 || b > 3.01 {
		t.Errorf("recovered a=%.3f b=%.4f, want 2,3", a, b)
	}
}

func TestMatrixShape(t *testing.T) {
	m := Matrix(4, 16)
	if len(m) != 256 {
		t.Fatalf("len=%d", len(m))
	}
	for _, v := range m {
		if v < -1 || v >= 1 {
			t.Fatalf("entry %f out of range", v)
		}
	}
}

func TestSplitEven(t *testing.T) {
	offs := SplitEven(10, 3)
	want := []int{0, 3, 6, 10}
	for i := range want {
		if offs[i] != want[i] {
			t.Errorf("offs[%d]=%d, want %d", i, offs[i], want[i])
		}
	}
}

func TestPropertySplitEvenCoversExactly(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n, p := int(nRaw), int(pRaw%32)+1
		offs := SplitEven(n, p)
		if offs[0] != 0 || offs[p] != n {
			return false
		}
		for i := 1; i <= p; i++ {
			if offs[i] < offs[i-1] {
				return false
			}
			// Balanced: no part differs from ideal by more than 1.
			size := offs[i] - offs[i-1]
			ideal := n / p
			if size < ideal || size > ideal+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFloat32InUnitRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float32()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
