package core

import (
	"testing"

	"repro/internal/cudpp"
	"repro/internal/gpu"
	"repro/internal/keyval"
	"repro/internal/workload"
)

// --- A miniature integer-count application exercising every pipeline path ---

type intChunk struct {
	data []uint32
	virt int64 // virtual bytes
}

func (c *intChunk) Elems() int       { return len(c.data) }
func (c *intChunk) VirtBytes() int64 { return c.virt }

func makeChunks(data []uint32, nChunks int, virtFactor int64) []Chunk {
	offs := workload.SplitEven(len(data), nChunks)
	chunks := make([]Chunk, nChunks)
	for i := 0; i < nChunks; i++ {
		part := data[offs[i]:offs[i+1]]
		chunks[i] = &intChunk{data: part, virt: int64(len(part)) * 4 * virtFactor}
	}
	return chunks
}

// countMapper emits (k, 1) for every element.
type countMapper struct{}

func (countMapper) Map(ctx *MapContext[uint32], c Chunk) {
	ic := c.(*intChunk)
	virtN := int64(ic.Elems()) * ctx.VirtFactor
	spec := gpu.KernelSpec{
		Name:           "count.map",
		Threads:        virtN / 2, // two elements per thread, as SIO does
		FlopsPerThread: 4,
		BytesRead:      float64(virtN * 4),
		BytesWritten:   float64(virtN * 8),
	}
	ctx.Launch(spec, func() {
		for _, k := range ic.data {
			ctx.Emit(k, 1)
		}
	})
	ctx.SetEmittedVirt(virtN)
}

// accumMapper folds counts into a GPU-resident dense table (Accumulation).
type accumMapper struct{ keySpace int }

func (m accumMapper) Map(ctx *MapContext[uint32], c Chunk) {
	ic := c.(*intChunk)
	res := ctx.Resident()
	virtN := int64(ic.Elems()) * ctx.VirtFactor
	spec := gpu.KernelSpec{
		Name:           "count.accum",
		Threads:        virtN,
		FlopsPerThread: 2,
		BytesRead:      float64(virtN * 4),
		Atomics:        float64(virtN),
		AtomicConflict: float64(virtN) / float64(m.keySpace),
	}
	ctx.Launch(spec, func() {
		if res.Len() == 0 {
			for k := 0; k < m.keySpace; k++ {
				res.Append(uint32(k), 0)
			}
		}
		for _, k := range ic.data {
			res.Vals[int(k)%m.keySpace]++
		}
		res.Virt = int64(m.keySpace)
	})
}

// localCombine is a PartialReducer merging like keys within one chunk.
type localCombine struct{}

func (localCombine) PartialReduce(ctx *MapContext[uint32], pairs *keyval.Pairs[uint32]) {
	virtN := pairs.VirtLen()
	spec := gpu.KernelSpec{
		Name:           "count.partialreduce",
		Threads:        virtN,
		FlopsPerThread: 3,
		BytesRead:      float64(virtN * 8),
		BytesWritten:   float64(virtN * 2),
	}
	ctx.LaunchFor(spec.Cost(ctx.Dev.Props), func() {
		sums := make(map[uint32]uint32, 64)
		order := make([]uint32, 0, 64)
		for i, k := range pairs.Keys {
			if _, ok := sums[k]; !ok {
				order = append(order, k)
			}
			sums[k] += pairs.Vals[i]
		}
		before := pairs.VirtLen()
		frac := float64(len(order)) / float64(pairs.Len())
		pairs.Reset()
		for _, k := range order {
			pairs.Append(k, sums[k])
		}
		pairs.Virt = int64(float64(before) * frac)
	})
}

// sumCombiner merges all values per unique key once after all maps.
type sumCombiner struct{}

func (sumCombiner) Combine(ctx *MapContext[uint32], keys []uint32, segs []cudpp.Segment, vals []uint32) {
	spec := gpu.KernelSpec{
		Name:           "count.combine",
		Threads:        int64(len(segs)),
		FlopsPerThread: 4,
		BytesRead:      float64(len(vals) * 4),
		BytesWritten:   float64(len(segs) * 8),
	}
	ctx.Launch(spec, func() {
		for _, s := range segs {
			var sum uint32
			for i := 0; i < s.Count; i++ {
				sum += vals[s.Start+i]
			}
			ctx.Emit(s.Key, sum)
		}
	})
	ctx.SetEmittedVirt(int64(len(segs)))
}

// sumReducer sums each key's values, one key per thread (the SIO reduce).
type sumReducer struct{}

func (sumReducer) ChunkValueSets(sets int, virtVals, free int64) int {
	return FitAllChunking(sets, virtVals, free, 4)
}

func (sumReducer) Reduce(ctx *ReduceContext[uint32], keys []uint32, segs []cudpp.Segment, vals []uint32) {
	var virtIn int64
	for _, s := range segs {
		virtIn += int64(s.Count)
	}
	spec := gpu.KernelSpec{
		Name:             "count.reduce",
		Threads:          int64(len(segs)),
		FlopsPerThread:   float64(virtIn) / float64(len(segs)),
		UncoalescedBytes: float64(virtIn * 4),
		BytesWritten:     float64(len(segs) * 8),
	}
	ctx.Launch(spec, func() {
		for _, s := range segs {
			var sum uint32
			for i := 0; i < s.Count; i++ {
				sum += vals[s.Start+i]
			}
			ctx.Emit(s.Key, sum)
		}
	})
	ctx.SetEmittedVirt(int64(len(segs)) * ctx.VirtFactor)
}

// referenceCounts is the sequential ground truth.
func referenceCounts(data []uint32, keySpace int) map[uint32]uint32 {
	ref := make(map[uint32]uint32)
	for _, k := range data {
		key := k
		if keySpace > 0 {
			key = k % uint32(keySpace)
		}
		ref[key]++
	}
	return ref
}

func checkCounts(t *testing.T, out *keyval.Pairs[uint32], ref map[uint32]uint32) {
	t.Helper()
	got := make(map[uint32]uint32, out.Len())
	for i, k := range out.Keys {
		got[k] += out.Vals[i]
	}
	if len(got) != len(ref) {
		t.Errorf("output has %d distinct keys, want %d", len(got), len(ref))
	}
	for k, want := range ref {
		if got[k] != want {
			t.Errorf("key %d: count %d, want %d", k, got[k], want)
			return
		}
	}
}

func smallData(n int, keySpace int) []uint32 {
	rng := workload.NewRNG(99)
	data := make([]uint32, n)
	for i := range data {
		data[i] = uint32(rng.Intn(keySpace))
	}
	return data
}

func countJob(data []uint32, gpus, nChunks int) *Job[uint32] {
	return &Job[uint32]{
		Config: Config{
			Name:         "count",
			GPUs:         gpus,
			ValBytes:     4,
			GatherOutput: true,
		},
		Chunks:      makeChunks(data, nChunks, 1),
		Mapper:      countMapper{},
		Partitioner: RoundRobin{},
		Reducer:     sumReducer{},
	}
}

func TestSingleGPUCorrectness(t *testing.T) {
	data := smallData(10000, 500)
	res := countJob(data, 1, 4).MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, 0))
	if res.Trace.Wall <= 0 {
		t.Error("zero wall time")
	}
}

func TestMultiGPUCorrectness(t *testing.T) {
	data := smallData(20000, 700)
	for _, gpus := range []int{2, 4, 8} {
		res := countJob(data, gpus, 16).MustRun()
		checkCounts(t, &res.Output, referenceCounts(data, 0))
	}
}

func TestMultiGPUSpeedsUp(t *testing.T) {
	data := smallData(40000, 1000)
	virt := int64(4096) // paper-scale virtual load so compute dominates
	mk := func(gpus int) *Job[uint32] {
		j := countJob(data, gpus, 32)
		j.Config.VirtFactor = virt
		for i, c := range j.Chunks {
			ic := c.(*intChunk)
			j.Chunks[i] = &intChunk{data: ic.data, virt: int64(len(ic.data)) * 4 * virt}
		}
		return j
	}
	t1 := mk(1).MustRun().Trace.Wall
	t4 := mk(4).MustRun().Trace.Wall
	if t4 >= t1 {
		t.Errorf("4 GPUs (%v) not faster than 1 (%v)", t4, t1)
	}
	speedup := float64(t1) / float64(t4)
	if speedup < 1.5 {
		t.Errorf("4-GPU speedup %.2f too low", speedup)
	}
}

func TestDeterminism(t *testing.T) {
	data := smallData(5000, 300)
	a := countJob(data, 4, 8).MustRun()
	b := countJob(data, 4, 8).MustRun()
	if a.Trace.Wall != b.Trace.Wall {
		t.Errorf("wall time differs: %v vs %v", a.Trace.Wall, b.Trace.Wall)
	}
	if a.Output.Len() != b.Output.Len() {
		t.Fatalf("output size differs")
	}
	for i := range a.Output.Keys {
		if a.Output.Keys[i] != b.Output.Keys[i] || a.Output.Vals[i] != b.Output.Vals[i] {
			t.Fatalf("output diverges at %d", i)
		}
	}
}

func TestAccumulationPath(t *testing.T) {
	const keySpace = 256
	data := smallData(30000, keySpace)
	j := &Job[uint32]{
		Config: Config{
			Name:         "count-accum",
			GPUs:         4,
			ValBytes:     4,
			Accumulate:   true,
			GatherOutput: true,
		},
		Chunks:      makeChunks(data, 8, 1),
		Mapper:      accumMapper{keySpace: keySpace},
		Partitioner: RoundRobin{},
		Reducer:     sumReducer{},
	}
	res := j.MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, keySpace))
}

func TestAccumulationReducesTraffic(t *testing.T) {
	const keySpace = 64
	data := smallData(40000, keySpace)
	plain := countJob(data, 4, 8).MustRun()
	j := &Job[uint32]{
		Config: Config{Name: "accum", GPUs: 4, ValBytes: 4, Accumulate: true, GatherOutput: true},
		Chunks: makeChunks(data, 8, 1), Mapper: accumMapper{keySpace: keySpace},
		Partitioner: RoundRobin{}, Reducer: sumReducer{},
	}
	accum := j.MustRun()
	plainBytes := plain.Trace.WireBytes + plain.Trace.LocalBytes
	accumBytes := accum.Trace.WireBytes + accum.Trace.LocalBytes
	if accumBytes*4 > plainBytes {
		t.Errorf("accumulation moved %d bytes, plain %d — expected >=4x reduction", accumBytes, plainBytes)
	}
}

func TestPartialReducePath(t *testing.T) {
	data := smallData(30000, 200) // many repeats per chunk
	j := countJob(data, 4, 8)
	j.PartialReducer = localCombine{}
	res := j.MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, 0))

	plain := countJob(data, 4, 8).MustRun()
	if res.Trace.WireBytes+res.Trace.LocalBytes >= plain.Trace.WireBytes+plain.Trace.LocalBytes {
		t.Error("partial reduction did not reduce transfer volume")
	}
}

func TestCombinerPath(t *testing.T) {
	data := smallData(20000, 300)
	j := countJob(data, 4, 8)
	j.Combiner = sumCombiner{}
	res := j.MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, 0))
}

func TestCombinerReducesNetworkTraffic(t *testing.T) {
	data := smallData(40000, 50) // tiny key space: combine collapses hard
	plain := countJob(data, 8, 16).MustRun()
	j := countJob(data, 8, 16)
	j.Combiner = sumCombiner{}
	comb := j.MustRun()
	if comb.Trace.WireBytes >= plain.Trace.WireBytes {
		t.Errorf("combine wire bytes %d >= plain %d", comb.Trace.WireBytes, plain.Trace.WireBytes)
	}
}

func TestNilPartitionerSingleReducer(t *testing.T) {
	data := smallData(8000, 100)
	j := countJob(data, 4, 8)
	j.Partitioner = nil
	res := j.MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, 0))
	// All reduction happened on rank 0.
	for r := 1; r < 4; r++ {
		if res.PerRank[r].Len() != 0 {
			t.Errorf("rank %d produced %d pairs with nil partitioner", r, res.PerRank[r].Len())
		}
	}
}

func TestNoReducerPassthrough(t *testing.T) {
	data := smallData(1000, 50)
	j := countJob(data, 2, 4)
	j.Reducer = nil
	j.Config.GatherOutput = false
	res := j.MustRun()
	total := 0
	for _, pr := range res.PerRank {
		total += pr.Len()
	}
	if total != len(data) {
		t.Errorf("passthrough kept %d pairs, want %d", total, len(data))
	}
}

func TestDisableSortMMStyle(t *testing.T) {
	data := smallData(1000, 50)
	j := countJob(data, 2, 4)
	j.Reducer = nil
	j.Config.DisableSort = true
	j.Config.GatherOutput = false
	res := j.MustRun()
	total := 0
	for _, pr := range res.PerRank {
		total += pr.Len()
	}
	if total != len(data) {
		t.Errorf("got %d pairs, want %d", total, len(data))
	}
	b := res.Trace.Breakdown()
	if b.Sort != 0 || b.Reduce != 0 {
		t.Errorf("sort/reduce fractions nonzero with DisableSort: %+v", b)
	}
}

func TestOutOfCoreSortSpills(t *testing.T) {
	data := smallData(20000, 500)
	j := countJob(data, 1, 8)
	// Paper scale: 128M virtual elements on one GPU → 1 GB of pairs; with
	// sort scratch that exceeds the 1 GB device and must spill.
	virt := int64(128<<20) / int64(len(data))
	j.Config.VirtFactor = virt
	for i, c := range j.Chunks {
		ic := c.(*intChunk)
		j.Chunks[i] = &intChunk{data: ic.data, virt: int64(len(ic.data)) * 4 * virt}
	}
	res := j.MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, 0))
	if !res.Trace.Ranks[0].OutOfCore {
		t.Error("expected out-of-core sort at this scale")
	}

	// The same virtual data on 8 GPUs fits per-GPU memory: no spill.
	j8 := countJob(data, 8, 8)
	j8.Config.VirtFactor = virt
	for i, c := range j8.Chunks {
		ic := c.(*intChunk)
		j8.Chunks[i] = &intChunk{data: ic.data, virt: int64(len(ic.data)) * 4 * virt}
	}
	res8 := j8.MustRun()
	for r, tr := range res8.Trace.Ranks {
		if tr.OutOfCore {
			t.Errorf("rank %d spilled on 8 GPUs", r)
		}
	}
}

func TestLoadBalancingShiftsChunks(t *testing.T) {
	data := smallData(20000, 500)
	j := countJob(data, 4, 16)
	j.Assign = func(int) int { return 0 } // all chunks start on rank 0
	res := j.MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, 0))
	stolen := 0
	for r := 1; r < 4; r++ {
		stolen += res.Trace.Ranks[r].ChunksStolen
	}
	if stolen == 0 {
		t.Error("no chunks shifted despite fully imbalanced initial queues")
	}
	mapped := 0
	for _, tr := range res.Trace.Ranks {
		mapped += tr.ChunksMapped
	}
	if mapped != 16 {
		t.Errorf("mapped %d chunks, want 16", mapped)
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	data := smallData(10000, 300)
	res := countJob(data, 4, 8).MustRun()
	b := res.Trace.Breakdown()
	sum := b.Map + b.CompleteBinning + b.Sort + b.Reduce + b.Internal
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %f: %+v", sum, b)
	}
	if b.Map <= 0 {
		t.Error("map fraction should be positive")
	}
}

func TestValidateErrors(t *testing.T) {
	data := smallData(100, 10)
	cases := []struct {
		name string
		mut  func(*Job[uint32])
	}{
		{"no mapper", func(j *Job[uint32]) { j.Mapper = nil }},
		{"no chunks", func(j *Job[uint32]) { j.Chunks = nil }},
		{"accumulate+combiner", func(j *Job[uint32]) { j.Config.Accumulate = true; j.Combiner = sumCombiner{} }},
		{"disablesort+reducer", func(j *Job[uint32]) { j.Config.DisableSort = true }},
	}
	for _, c := range cases {
		j := countJob(data, 1, 2)
		c.mut(j)
		if _, err := j.Run(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	j := countJob(data, 0, 2)
	if _, err := j.Run(); err == nil {
		t.Error("zero GPUs: expected error")
	}
}

func TestVirtFactorScalesTime(t *testing.T) {
	data := smallData(5000, 200)
	mk := func(virt int64) *Job[uint32] {
		j := countJob(data, 1, 4)
		j.Config.VirtFactor = virt
		for i, c := range j.Chunks {
			ic := c.(*intChunk)
			j.Chunks[i] = &intChunk{data: ic.data, virt: int64(len(ic.data)) * 4 * virt}
		}
		return j
	}
	t1 := mk(1).MustRun().Trace.Wall
	t1k := mk(1024).MustRun().Trace.Wall
	// At factor 1 fixed overheads dominate; at 1024 the virtual work must.
	if t1k < t1*20 {
		t.Errorf("1024x virtual load only scaled time %v -> %v", t1, t1k)
	}
}

func TestGPUDirectReducesWall(t *testing.T) {
	data := smallData(30000, 1000)
	j := countJob(data, 4, 8)
	base := j.MustRun().Trace.Wall
	jd := countJob(data, 4, 8)
	jd.Config.GPUDirect = true
	direct := jd.MustRun().Trace.Wall
	if direct > base {
		t.Errorf("GPUDirect slower (%v) than baseline (%v)", direct, base)
	}
}
