package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// quietLogf swallows handler diagnostics (the tests provoke errors on
// purpose).
func quietLogf(string, ...any) {}

func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Cluster.GPUs == 0 {
		cfg.Cluster = cluster.DefaultConfig(8)
	}
	if cfg.Policy.Kind == 0 {
		cfg.Policy = sched.Policy{Kind: sched.WeightedFair}
	}
	if cfg.Catalog == nil {
		cfg.Catalog = testCatalog()
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 20
	}
	sv, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return sv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, out
}

// TestHandlerLifecycle walks the full HTTP surface: submit, poll to
// done, retrieve the output, hit the error paths the timeline fix
// distinguishes (unknown job → 404, render failure → 500), then drain
// and verify the handshake's answers.
func TestHandlerLifecycle(t *testing.T) {
	sv := startTestServer(t, Config{KeepOutputs: 4})
	drained := make(chan struct{})
	hs := httptest.NewServer(NewHandler(sv, HandlerConfig{
		OnDrain: func() { close(drained) },
		Logf:    quietLogf,
	}))
	defer hs.Close()

	resp, body := postJSON(t, hs.URL+"/jobs", Request{
		Tenant: "ana", Kind: "wo", Params: Params{"bytes": 1 << 20, "gpus": 2, "seed": 1}, Tag: "f0",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("submit answer: %v", err)
	}
	if info.ID != 0 || info.Tag != "f0" {
		t.Fatalf("submit answer: %+v", info)
	}

	waitDrained(t, sv, 1)

	if resp, _ := get(t, fmt.Sprintf("%s/jobs/%d", hs.URL, info.ID)); resp.StatusCode != http.StatusOK {
		t.Fatalf("job record: status %d", resp.StatusCode)
	}
	resp, out := get(t, fmt.Sprintf("%s/jobs/%d/output", hs.URL, info.ID))
	if resp.StatusCode != http.StatusOK || len(out) == 0 {
		t.Fatalf("output: status %d, %d bytes", resp.StatusCode, len(out))
	}
	if resp, _ := get(t, hs.URL+"/jobs/99/output"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job output: status %d, want 404", resp.StatusCode)
	}

	// The timeline distinction: 404 is reserved for a job the service has
	// never heard of; a known job whose render fails (no recorder here)
	// is a 500, not a 404.
	if resp, _ := get(t, hs.URL+"/jobs/99/timeline"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job timeline: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, fmt.Sprintf("%s/jobs/%d/timeline", hs.URL, info.ID)); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("render-failure timeline: status %d, want 500", resp.StatusCode)
	}

	if resp, _ := get(t, hs.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	resp, body = postJSON(t, hs.URL+"/drain", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	var dr DrainResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("drain answer: %v", err)
	}
	if dr.Done != 1 || dr.Submitted != 1 || dr.Report == "" {
		t.Fatalf("drain answer: %+v", dr)
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("OnDrain never fired")
	}

	// Drained service: healthz flips, submissions bounce, a second drain
	// returns the identical cached answer.
	if resp, _ := get(t, hs.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained healthz: status %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, hs.URL+"/jobs", Request{Tenant: "bo", Kind: "wo",
		Params: Params{"bytes": 1 << 20, "gpus": 2, "seed": 2}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained submit: status %d, want 503", resp.StatusCode)
	}
	_, body2 := postJSON(t, hs.URL+"/drain", nil)
	if !bytes.Equal(body, body2) {
		t.Fatal("second drain answer differs from the first")
	}
}

// TestHandlerFleetRegister: the registration handshake stamps the trace
// header before any event is recorded, and refuses to re-stamp a
// different identity once the header is on disk.
func TestHandlerFleetRegister(t *testing.T) {
	var trace bytes.Buffer
	sv := startTestServer(t, Config{TraceW: &trace})
	hs := httptest.NewServer(NewHandler(sv, HandlerConfig{Logf: quietLogf}))
	defer hs.Close()

	if resp, body := postJSON(t, hs.URL+"/fleet/register", FleetRegistration{Shard: "s7", Epoch: 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, hs.URL+"/jobs", Request{Tenant: "ana", Kind: "wo",
		Params: Params{"bytes": 1 << 20, "gpus": 2, "seed": 1}}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitDrained(t, sv, 1)
	// The first arrival flushed the header; a conflicting identity must
	// now be refused.
	if resp, _ := postJSON(t, hs.URL+"/fleet/register", FleetRegistration{Shard: "s8", Epoch: 4}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting register: status %d, want 409", resp.StatusCode)
	}
	if _, err := sv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	tr, err := ReadTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.Header.Shard != "s7" || tr.Header.Epoch != 3 {
		t.Fatalf("trace header fleet identity = %q/%d, want s7/3", tr.Header.Shard, tr.Header.Epoch)
	}
}

// TestOutputRetentionEviction: KeepOutputs bounds the side table FIFO;
// an evicted output answers 409 (known job, output gone), not 404.
func TestOutputRetentionEviction(t *testing.T) {
	sv := startTestServer(t, Config{KeepOutputs: 1})
	hs := httptest.NewServer(NewHandler(sv, HandlerConfig{Logf: quietLogf}))
	defer hs.Close()

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, hs.URL+"/jobs", Request{Tenant: "ana", Kind: "wo",
			Params: Params{"bytes": 1 << 20, "gpus": 2, "seed": int64(i + 1)}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		waitDrained(t, sv, int64(i+1))
	}
	if resp, _ := get(t, hs.URL+"/jobs/0/output"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("evicted output: status %d, want 409", resp.StatusCode)
	}
	resp, out := get(t, hs.URL+"/jobs/1/output")
	if resp.StatusCode != http.StatusOK || len(out) == 0 {
		t.Fatalf("retained output: status %d, %d bytes", resp.StatusCode, len(out))
	}
	sv.Drain()
}

// TestGracefulShutdownRace is the drain-correctness proof for the
// daemon's signal path: submissions racing a graceful shutdown either
// get a terminal HTTP answer (202/429/503) or fail at dial time
// (listener already closed) — never a connection reset mid-request.
func TestGracefulShutdownRace(t *testing.T) {
	sv := startTestServer(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: NewHandler(sv, HandlerConfig{Logf: quietLogf})}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Fresh connection per request: an error can then only be a dial
	// error, never a torn keep-alive.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	stopSubmitting := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var submitted int64
	var badStatus []int
	var badErrs []error
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopSubmitting:
					return
				default:
				}
				b, _ := json.Marshal(Request{Tenant: fmt.Sprintf("t%d", g), Kind: "wo",
					Params: Params{"bytes": 1 << 20, "gpus": 2, "seed": int64(g*1000 + i + 1)}})
				resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(b))
				if err != nil {
					// Only a refused dial is acceptable: the listener is gone.
					var opErr *net.OpError
					if !errors.As(err, &opErr) || opErr.Op != "dial" {
						mu.Lock()
						badErrs = append(badErrs, err)
						mu.Unlock()
					}
					return
				}
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch {
				case rerr != nil:
					badErrs = append(badErrs, rerr)
				case resp.StatusCode == http.StatusAccepted:
					submitted++
				case resp.StatusCode == http.StatusTooManyRequests,
					resp.StatusCode == http.StatusServiceUnavailable:
					// Terminal backpressure answers: fine.
				default:
					badStatus = append(badStatus, resp.StatusCode)
				}
				mu.Unlock()
			}
		}(g)
	}

	time.Sleep(50 * time.Millisecond) // let submissions overlap the shutdown
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stopSubmitting)
	wg.Wait()

	if len(badErrs) > 0 {
		t.Fatalf("requests torn mid-flight: %v", badErrs)
	}
	if len(badStatus) > 0 {
		t.Fatalf("non-terminal statuses: %v", badStatus)
	}
	// Every accepted submission must still reach a terminal state through
	// the drain — acceptance is a promise.
	waitDrained(t, sv, submitted)
	rep, err := sv.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := rep.Stats.Done + rep.Stats.Failed + rep.Stats.Cancelled; got != submitted {
		t.Fatalf("%d accepted but %d terminal:\n%s", submitted, got, rep.String())
	}
	if submitted == 0 {
		t.Skip("no submission completed before shutdown; nothing proven this run")
	}
}

// TestCancelStatusCodes pins the cancel endpoint's 404/409 distinction:
// unknown job vs known-but-not-queued.
func TestCancelStatusCodes(t *testing.T) {
	sv := startTestServer(t, Config{})
	hs := httptest.NewServer(NewHandler(sv, HandlerConfig{Logf: quietLogf}))
	defer hs.Close()

	if resp, _ := postJSON(t, hs.URL+"/jobs", Request{Tenant: "ana", Kind: "wo",
		Params: Params{"bytes": 1 << 20, "gpus": 2, "seed": 1}}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitDrained(t, sv, 1)

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/jobs/42", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: status %d, want 404", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, hs.URL+"/jobs/0", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel finished job: status %d, want 409", resp.StatusCode)
	}
	sv.Drain()
}
