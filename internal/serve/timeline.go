package serve

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// ErrNoRecorder reports a timeline request against a server started
// without a flight recorder (Config.Cluster.Obs unset).
var ErrNoRecorder = fmt.Errorf("serve: no flight recorder configured")

// WriteTimeline renders one job's slice of the flight-recorder trace as
// Chrome trace-event JSON (load in Perfetto or chrome://tracing): its
// serve lifecycle stream, its scheduler stream, and its per-rank phase
// streams. Safe from any goroutine; the recorder snapshots events
// emitted so far, so a running job yields a partial timeline.
func (sv *Server) WriteTimeline(w io.Writer, id int) error {
	info, ok := sv.Job(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return sv.ses.writeTimeline(w, info.Name)
}

// writeTimeline is the session half, shared with replay-driven tests.
func (ses *session) writeTimeline(w io.Writer, name string) error {
	r := ses.cl.Obs
	if !r.Enabled() {
		return ErrNoRecorder
	}
	return r.WriteChromeFiltered(w, obs.JobStreams(name))
}

// WriteFlight dumps the flight recorder's canonical event set as JSONL —
// the raw material the fleet timeline stitcher pulls from each shard.
func (sv *Server) WriteFlight(w io.Writer) error {
	r := sv.ses.cl.Obs
	if !r.Enabled() {
		return ErrNoRecorder
	}
	return r.WriteJSONL(w)
}

// Explain decomposes one job's end-to-end latency from the flight
// recorder: a gap-free phase breakdown (wait, launch, map, shuffle,
// sort, reduce, commit) along the critical rank, dominant-bottleneck
// attribution, and disturbance counters. Deterministic: the recording is
// a pure function of the arrival stream, so the same jobs explain
// byte-identically at any shard count and kernel backend.
func (sv *Server) Explain(id int) (obs.Explanation, error) {
	info, ok := sv.Job(id)
	if !ok {
		return obs.Explanation{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return sv.ses.explain(info.Name)
}

// explain is the session half, shared with replay-driven tests.
func (ses *session) explain(name string) (obs.Explanation, error) {
	r := ses.cl.Obs
	if !r.Enabled() {
		return obs.Explanation{}, ErrNoRecorder
	}
	return obs.ExplainJob(r.Canonical(), name), nil
}

// WriteTrace renders the full flight-recorder trace: every stream, as
// Chrome trace-event JSON.
func (sv *Server) WriteTrace(w io.Writer) error {
	r := sv.ses.cl.Obs
	if !r.Enabled() {
		return ErrNoRecorder
	}
	return r.WriteChrome(w)
}

// Recorder exposes the server's flight recorder (nil when not
// configured), for exports beyond the built-in endpoints.
func (sv *Server) Recorder() *obs.Recorder { return sv.ses.cl.Obs }
