package des

import (
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// Injection errors. Inject and Close report them instead of panicking
// because they are the engine's only concurrency boundary: callers live on
// foreign goroutines and races with shutdown are expected, not bugs.
var (
	// ErrEngineStopped reports an injection into an engine whose Run has
	// already returned.
	ErrEngineStopped = errors.New("des: engine stopped")
	// ErrInjectorClosed reports an injection through a closed injector.
	ErrInjectorClosed = errors.New("des: injector closed")
)

// injMsg is one message on the engine's injection channel.
type injMsg struct {
	name  string
	body  func(p *Proc)
	close bool
}

// Injector is the engine's open-system primitive: a thread-safe handle that
// lets code OUTSIDE the simulation — an HTTP handler, a test driver, any
// foreign goroutine — add work to a running engine at its current
// virtual-time frontier. While at least one injector is open, Run treats an
// empty event queue as "parked", not "finished": the engine blocks waiting
// for the next injection instead of exiting (or declaring deadlock), which
// is what turns a batch simulation into a long-running service.
//
// Each injection spawns a fresh process at the frontier (the time of the
// most recently dispatched event); the body runs with full engine access,
// exactly as if it had been part of the simulation all along. Injections
// are applied in submission order, between event dispatches, so they never
// interleave with a running process.
//
// Close releases the park: once every injector is closed and all processes
// have finished, Run returns. Inject and Close are safe to call from any
// goroutine, but an open-mode engine must be driven by exactly one Run
// call; after Run returns, both report ErrEngineStopped.
type Injector struct {
	eng    *Engine
	closed atomic.Bool
}

// NewInjector opens an injection handle on the engine. It must be called
// before Run starts (injector accounting is engine state); open injectors
// keep Run from returning until each is closed.
func (e *Engine) NewInjector() *Injector {
	if e.running {
		panic("des: NewInjector while the engine is running")
	}
	e.openInj++
	return &Injector{eng: e}
}

// Inject schedules body to run as a new process named name at the engine's
// current virtual-time frontier. The handoff is synchronous: Inject blocks
// until the running engine accepts the message (that backpressure is the
// point of open-system mode), so a nil return means the body WILL run —
// the engine never exits with accepted-but-unapplied injections. Must not
// be called from a simulated process: processes spawn work directly with
// Engine.Spawn.
func (i *Injector) Inject(name string, body func(p *Proc)) error {
	if i.closed.Load() {
		return ErrInjectorClosed
	}
	return i.eng.inject(injMsg{name: name, body: body})
}

// Close ends this injector's hold on the engine. Idempotent; after the
// last injector closes and every process finishes, Run returns.
func (i *Injector) Close() error {
	if !i.closed.CompareAndSwap(false, true) {
		return nil
	}
	return i.eng.inject(injMsg{close: true})
}

// inject hands a message to the running engine, failing once Run has
// returned rather than blocking forever.
func (e *Engine) inject(m injMsg) error {
	select {
	case <-e.stopped:
		return ErrEngineStopped
	default:
	}
	select {
	case e.injc <- m:
		return nil
	case <-e.stopped:
		return ErrEngineStopped
	}
}

// applyInjection executes one injection on the engine's goroutine at the
// current frontier.
func (e *Engine) applyInjection(m injMsg) {
	if m.close {
		e.openInj--
		if e.openInj < 0 {
			panic("des: injector closed twice")
		}
		return
	}
	if e.rec.Enabled() {
		// Injections exist only in live (wall-clock-driven) runs; replayed
		// and batch simulations spawn their arrivals as ordinary processes,
		// so these events never appear on a determinism-checked path.
		e.rec.Emit(int64(e.now), obs.CatSim, "injector", "inject", obs.A("name", m.name))
	}
	e.Spawn(m.name, m.body)
}

// drainInjections applies every injection already queued, without blocking.
func (e *Engine) drainInjections() {
	for {
		select {
		case m := <-e.injc:
			e.applyInjection(m)
		default:
			return
		}
	}
}
