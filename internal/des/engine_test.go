package des

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		woke = p.Now()
	})
	end := e.Run()
	if woke != 5*Millisecond {
		t.Errorf("woke at %v, want 5ms", woke)
	}
	if end != 5*Millisecond {
		t.Errorf("simulation ended at %v, want 5ms", end)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-3)
		if p.Now() != 0 {
			t.Errorf("time moved on zero sleep: %v", p.Now())
		}
	})
	e.Run()
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		var order []string
		e := NewEngine()
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Spawn(name, func(p *Proc) {
				p.Sleep(Time(10-i) * Microsecond) // reverse wake order
				order = append(order, p.Name())
				p.Sleep(Microsecond) // everyone collides at later times too
				order = append(order, p.Name())
			})
		}
		e.Run()
		return order
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("trial %d: length %d != %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: order diverged at %d: %q vs %q", trial, i, got[i], first[i])
			}
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Millisecond)
		e.Spawn("child", func(c *Proc) {
			if c.Now() != Millisecond {
				t.Errorf("child started at %v, want 1ms", c.Now())
			}
			childRan = true
		})
		p.Sleep(Millisecond)
	})
	e.Run()
	if !childRan {
		t.Error("child never ran")
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 1, 10*Microsecond)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond}
	for i, w := range want {
		if ends[i] != w {
			t.Errorf("user %d finished at %v, want %v", i, ends[i], w)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dual", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 1, 10*Microsecond)
			ends = append(ends, p.Now())
		})
	}
	end := e.Run()
	if end != 20*Microsecond {
		t.Errorf("4 jobs on 2 servers ended at %v, want 20us", end)
	}
	if len(ends) != 4 {
		t.Fatalf("got %d completions", len(ends))
	}
}

func TestResourceFIFONoOvertake(t *testing.T) {
	// A big request at the head of the line must not be overtaken by a
	// small one that would fit.
	e := NewEngine()
	r := NewResource(e, "pool", 2)
	var order []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(10 * Microsecond)
		r.Release(2)
	})
	e.Spawn("big", func(p *Proc) {
		p.Sleep(Microsecond)
		r.Acquire(p, 2)
		order = append(order, "big")
		p.Sleep(10 * Microsecond)
		r.Release(2)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	e.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Errorf("grant order %v, want [big small]", order)
	}
}

func TestResourceUtilizationIntegral(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "eng", 1)
	e.Spawn("u", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		r.Use(p, 1, 10*Microsecond)
		p.Sleep(5 * Microsecond)
	})
	e.Run()
	if got := r.BusyIntegral(); got != 10*Microsecond {
		t.Errorf("busy integral %v, want 10us", got)
	}
}

func TestQueueBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, "ch")
	var got any
	var when Time
	e.Spawn("consumer", func(p *Proc) {
		got = q.Get(p)
		when = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		q.Put(42)
	})
	e.Run()
	if got != 42 {
		t.Errorf("got %v, want 42", got)
	}
	if when != 7*Microsecond {
		t.Errorf("received at %v, want 7us", when)
	}
}

func TestQueueFIFOOrderAndMultipleWaiters(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, "ch")
	var recv []int
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			recv = append(recv, q.Get(p).(int))
		})
	}
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(Microsecond)
		for i := 1; i <= 3; i++ {
			q.Put(i * 100)
		}
	})
	e.Run()
	for i, v := range recv {
		if v != (i+1)*100 {
			t.Errorf("recv[%d]=%d, want %d", i, v, (i+1)*100)
		}
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, "ch")
	if _, ok := q.TryGet(); ok {
		t.Error("TryGet on empty queue returned ok")
	}
	q.Put("x")
	if v, ok := q.TryGet(); !ok || v != "x" {
		t.Errorf("TryGet = %v,%v", v, ok)
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var woken []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Wait(p)
			woken = append(woken, p.Now())
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		s.Fire()
	})
	e.Spawn("late", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		s.Wait(p) // already fired: returns immediately
		woken = append(woken, p.Now())
	})
	e.Run()
	if len(woken) != 4 {
		t.Fatalf("woken %d times, want 4", len(woken))
	}
	for i, w := range woken[:3] {
		if w != 3*Microsecond {
			t.Errorf("waiter %d woke at %v, want 3us", i, w)
		}
	}
	if woken[3] != 5*Microsecond {
		t.Errorf("late waiter woke at %v, want 5us", woken[3])
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt Time
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Time(i) * Microsecond
		e.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Run()
	if doneAt != 3*Microsecond {
		t.Errorf("waitgroup released at %v, want 3us", doneAt)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected deadlock panic")
		}
	}()
	e := NewEngine()
	q := NewQueue(e, "never")
	e.Spawn("stuck", func(p *Proc) { q.Get(p) })
	e.Run()
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected panic propagation")
		}
	}()
	e := NewEngine()
	e.Spawn("bomb", func(p *Proc) { panic("boom") })
	e.Run()
}

func TestAcquireOverCapacityPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected panic")
		}
	}()
	e := NewEngine()
	r := NewResource(e, "r", 1)
	e.Spawn("p", func(p *Proc) { r.Acquire(p, 2) })
	e.Run()
}

// Property: for an M/D/1-style queue on a unit resource, total completion
// time equals the sum of service times when all arrivals happen at t=0.
func TestPropertyResourceWorkConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		e := NewEngine()
		r := NewResource(e, "r", 1)
		var total Time
		for i, d := range raw {
			svc := Time(d%1000) * Nanosecond
			total += svc
			e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) { r.Use(p, 1, svc) })
		}
		return e.Run() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: simulated time is monotone from any process's perspective.
func TestPropertyTimeMonotone(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) > 40 {
			delays = delays[:40]
		}
		e := NewEngine()
		ok := true
		q := NewQueue(e, "relay")
		e.Spawn("producer", func(p *Proc) {
			last := p.Now()
			for _, d := range delays {
				p.Sleep(Time(d))
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
				q.Put(int(d))
			}
			q.Put(-1)
		})
		e.Spawn("consumer", func(p *Proc) {
			last := p.Now()
			for {
				v := q.Get(p)
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
				if v == -1 {
					return
				}
				p.Sleep(Time(v.(int)) / 2)
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineSleepLoop(b *testing.B) {
	e := NewEngine()
	e.Spawn("looper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkEnginePingPong(b *testing.B) {
	e := NewEngine()
	a2b := NewQueue(e, "a2b")
	b2a := NewQueue(e, "b2a")
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			a2b.Put(i)
			b2a.Get(p)
		}
		a2b.Put(-1)
	})
	e.Spawn("b", func(p *Proc) {
		for {
			if a2b.Get(p) == -1 {
				return
			}
			b2a.Put(0)
		}
	})
	b.ResetTimer()
	e.Run()
}
