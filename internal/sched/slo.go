package sched

import (
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
)

// This file is the SLO side of the scheduler: cost-model admission
// (predict-and-reject at arrival), the EASY backfill reservation for a
// blocked queue head, checkpoint-preemption of running gangs for higher
// classes, and elastic grow-back of molded gangs. Everything here is
// opt-in — with zero-valued Policy and JobSpec SLO fields none of these
// paths run, and the scheduler behaves byte-for-byte as before.

// estimate asks the cost model for rec's service time on a gang of the
// given size. ok is false when the job cannot predict itself (it does
// not implement core.CostEstimator).
func (s *Scheduler) estimate(rec *jobRec, gang int) (des.Time, bool) {
	ce, ok := rec.spec.Job.(core.CostEstimator)
	if !ok {
		return 0, false
	}
	return ce.EstimateCost(s.cl, gang), true
}

// nominalSize is the gang a job is priced at for admission prediction:
// the size it would receive on an otherwise idle cluster.
func (s *Scheduler) nominalSize(rec *jobRec) int {
	if s.pol.Kind == FixedShare && rec.want > s.pol.Share {
		return s.pol.Share
	}
	return rec.want
}

// needFor is the idle-rank count rec needs before it can start: the
// whole machine under FIFOExclusive, the capped request under
// FixedShare, and the moldable floor under WeightedFair.
func (s *Scheduler) needFor(rec *jobRec) int {
	switch s.pol.Kind {
	case FIFOExclusive:
		return s.cl.Ranks()
	case FixedShare:
		if rec.want > s.pol.Share {
			return s.pol.Share
		}
		return rec.want
	case WeightedFair:
		floor := rec.minGang
		if rec.floorGang > floor {
			floor = rec.floorGang
		}
		if floor > rec.want {
			floor = rec.want
		}
		if floor < 1 {
			floor = 1
		}
		return floor
	}
	return rec.want
}

// reserveStart predicts when `need` ranks will be idle, by walking the
// running jobs' predicted completions (admit + cached estimate, clamped
// to now when a job overruns its estimate) in end order and accumulating
// their leases onto the current idle set. ok is false when any running
// job is unpredictable — no reservation can then be made, and callers
// fall back to plain (pre-Reserve) behaviour.
func (s *Scheduler) reserveStart(need int) (des.Time, bool) {
	now := s.eng.Now()
	avail := s.nFree
	if avail >= need {
		return now, true
	}
	type release struct {
		at    des.Time
		ranks int
	}
	var ends []release
	for _, r := range s.recs {
		if !r.running {
			continue
		}
		if !r.estOK {
			return 0, false
		}
		at := r.admit + r.est
		if at < now {
			// Overdue estimate: the job could finish at any moment, so the
			// reservation is "now" — conservative for backfill, which then
			// cannot slip anything ahead of the head.
			at = now
		}
		ends = append(ends, release{at, len(r.leased)})
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i].at < ends[j].at })
	for _, e := range ends {
		avail += e.ranks
		if avail >= need {
			return e.at, true
		}
	}
	return 0, false
}

// predictLatency is the admission-time SLO check: predicted start (the
// reservation walk over running gangs, plus the machine share of every
// queued job that will be served first) plus the cost-model service time
// at nominal gang size. Queued jobs at or above rec's class precede it
// in the class-ordered queue; charging each est·need/ranks is exact
// serialization under FIFOExclusive and a work-conserving approximation
// under the sharing policies. It still ignores future arrivals — it is
// an advisory admission filter, not a simulation; the serve layer
// reports actual attainment.
func (s *Scheduler) predictLatency(rec *jobRec) (des.Time, bool) {
	est, ok := s.estimate(rec, s.nominalSize(rec))
	if !ok {
		return 0, false
	}
	var wait des.Time
	blocked := len(s.queue) > 0 || s.nFree < s.needFor(rec) ||
		(s.pol.Kind == FIFOExclusive && s.nRun > 0)
	if blocked {
		at, ok := s.reserveStart(s.needFor(rec))
		if !ok {
			return 0, false
		}
		wait = at - s.eng.Now()
		ranks := des.Time(s.cl.Ranks())
		for _, q := range s.queue {
			if q.class < rec.class {
				continue
			}
			qe, ok := s.estimate(q, s.nominalSize(q))
			if !ok {
				return 0, false
			}
			wait += qe * des.Time(s.needFor(q)) / ranks
		}
	}
	return wait + est, true
}

// preemptFor checkpoints enough running lower-class gangs to fit the
// blocked head, returning true when victims are (or already were)
// draining — the caller must then hold all admission until their requeue
// re-runs it. Victims are chosen lowest class first, then the most
// recently started (least work lost), then highest ID; only jobs whose
// launch supports quiescing (core.Preemptible) qualify. Returns false
// when the head's class outranks nothing useful, or when even preempting
// every candidate would not free enough ranks.
func (s *Scheduler) preemptFor(head *jobRec) bool {
	need := s.needFor(head)
	avail := s.nFree
	draining := false
	for _, r := range s.recs {
		if r.running && r.quiescing {
			avail += len(r.leased)
			draining = true
		}
	}
	if avail >= need {
		return draining
	}
	var cands []*jobRec
	for _, r := range s.recs {
		if !r.running || r.quiescing || r.class >= head.class {
			continue
		}
		if _, ok := r.spec.Job.(core.Preemptible); !ok {
			continue
		}
		cands = append(cands, r)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.class != b.class {
			return a.class < b.class
		}
		if a.admit != b.admit {
			return a.admit > b.admit
		}
		return a.id > b.id
	})
	var victims []*jobRec
	for _, v := range cands {
		if avail >= need {
			break
		}
		victims = append(victims, v)
		avail += len(v.leased)
	}
	if avail < need {
		return false
	}
	for _, v := range victims {
		s.quiesce(v, false)
	}
	return true
}

// growBack finds one running WeightedFair gang worth re-expanding: the
// job opted in (JobSpec.Elastic), was molded below its request, and the
// now-idle ranks plus its own would at least double it (capped at its
// fair share). It is checkpointed like a preemption victim; floorGang
// forces the relaunch strictly wider. One grow per admission pass keeps
// the churn bounded. Only called with an empty queue — growing must
// never starve waiting jobs.
func (s *Scheduler) growBack() {
	if s.pol.Kind != WeightedFair {
		return
	}
	for _, r := range s.recs {
		if !r.running || r.quiescing || !r.elastic {
			continue
		}
		if _, ok := r.spec.Job.(core.Preemptible); !ok {
			continue
		}
		cur := len(r.gang)
		if cur >= r.want {
			continue
		}
		target := s.fairShare(r)
		if avail := s.nFree + len(r.leased); target > avail {
			target = avail
		}
		if target < 2*cur {
			continue
		}
		r.growPending = true
		s.quiesce(r, false)
		return
	}
}

// quiesce asks rec's running launch to checkpoint-preempt: stop issuing
// chunks and drain at the next chunk boundary. The launch then completes
// with a Preempted trace and finish routes it to requeue. In sharded
// mode the stop must execute on the gang's home engine — the launch's
// core scheduler is engine-confined — so it travels the same hub->home
// post edge as the launch itself.
func (s *Scheduler) quiesce(rec *jobRec, cancel bool) bool {
	p, ok := rec.spec.Job.(core.Preemptible)
	if !ok || !rec.running || rec.quiescing {
		return false
	}
	rec.quiescing = true
	rec.qCancel = cancel
	if r := s.cl.Obs; r.Enabled() {
		why := "class"
		switch {
		case cancel:
			why = "cancel"
		case rec.growPending:
			why = "grow"
		}
		r.Emit(int64(s.eng.Now()), obs.CatSim, "sched/"+rec.spec.Job.RunName(), "preempt", obs.A("why", why))
	}
	if s.ss != nil {
		home := s.homeOf(rec.gang)
		s.ss.Post(s.eng, home, hubKey, s.launchLat, rec.spec.Job.RunName()+".preempt", func(q *des.Proc) {
			p.PreemptLaunch()
		})
	} else {
		p.PreemptLaunch()
	}
	return true
}

// requeue handles a launch that drained early because quiesce asked it
// to: the partial output is discarded, the lease is released, and the
// job either re-enters the queue for a deterministic restart from
// scratch (preemption and grow-back — the original arrival time is
// kept, so waiting-time stats charge the preemption honestly) or is
// torn down (PreemptCancel).
func (s *Scheduler) requeue(rec *jobRec) {
	cancel, grow, oldSize := rec.qCancel, rec.growPending, len(rec.gang)
	rec.quiescing, rec.qCancel, rec.growPending = false, false, false
	rec.running = false
	s.nRun--
	s.releaseRanks(rec)
	rec.gang, rec.leased = nil, nil
	rec.est, rec.estOK = 0, false
	if r := s.cl.Obs; r.Enabled() {
		kind := "requeue"
		if cancel {
			kind = "preempt.cancel"
		}
		r.Emit(int64(s.eng.Now()), obs.CatSim, "sched/"+rec.spec.Job.RunName(), kind)
	}
	if cancel {
		rec.cancelled = true
		rec.finish = s.eng.Now()
		if s.OnRequeue != nil {
			s.OnRequeue(rec.id, true)
		}
		return
	}
	if grow {
		rec.floorGang = oldSize + 1
	}
	rec.preempts++
	rec.waiting = true
	if s.OnRequeue != nil {
		s.OnRequeue(rec.id, false)
	}
	s.enqueue(rec)
}

// PreemptCancel withdraws a RUNNING job by checkpoint-preempting it and
// discarding the drained launch — the counterpart of Cancel (which only
// reaches queued jobs). The gang frees at the job's next chunk boundary,
// not instantly; OnRequeue(id, true) fires when it does, and no OnDone
// follows. Reports false when the job is not running, is already
// quiescing, or its launch cannot quiesce. Must be called at engine
// time.
func (s *Scheduler) PreemptCancel(id int) bool {
	if id < 0 || id >= len(s.recs) {
		return false
	}
	rec := s.recs[id]
	if !rec.running || rec.quiescing {
		return false
	}
	return s.quiesce(rec, true)
}

// Rejected reports whether the SLO admission check turned the job away
// at arrival.
func (s *Scheduler) Rejected(id int) bool {
	return id >= 0 && id < len(s.recs) && s.recs[id].rejected
}

// Downgraded reports whether the SLO admission check demoted the job to
// Batch (JobSpec.DowngradeOnMiss) instead of rejecting it.
func (s *Scheduler) Downgraded(id int) bool {
	return id >= 0 && id < len(s.recs) && s.recs[id].downgraded
}

// QueuedCost sums the cost-model estimates of every queued job at its
// nominal gang size — the serve layer's Retry-After drain hint. Jobs
// that cannot predict themselves contribute nothing. Must be called at
// engine time.
func (s *Scheduler) QueuedCost() des.Time {
	var t des.Time
	for _, rec := range s.queue {
		if est, ok := s.estimate(rec, s.nominalSize(rec)); ok {
			t += est
		}
	}
	return t
}
