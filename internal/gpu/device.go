package gpu

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/obs"
)

// Device is one simulated GPU. Its compute engine and copy engine are
// separate des.Resources, so kernels overlap PCIe transfers exactly as on
// hardware with one DMA engine. The PCIe link resource is supplied by the
// node model and may be shared between devices (as on the Tesla S1070,
// where GPU pairs share a host interface card).
type Device struct {
	Props
	ID int

	eng     *des.Engine
	compute *des.Resource
	copyEng *des.Resource

	pcie    *des.Resource
	pcieBW  float64
	pcieLat des.Time
	memUsed int64
	memPeak int64
	buffers int
	derate  float64 // heterogeneity factor: >1 stretches kernel & PCIe durations
	exec    Backend // runs kernels' functional closures (default Serial)
	// Accumulated busy times for utilization reporting.
	KernelTime des.Time
	CopyTime   des.Time
	// Flight recorder (nil = disabled) and this device's precomputed
	// stream keys, so the hot path never formats strings.
	rec      *obs.Recorder
	csStream string
	cpStream string
}

// NewDevice creates a device attached to the given PCIe link resource.
func NewDevice(eng *des.Engine, id int, pr Props, pcieLink *des.Resource, pcieProps PCIeProps) *Device {
	return &Device{
		Props:   pr,
		ID:      id,
		eng:     eng,
		compute: des.NewResource(eng, fmt.Sprintf("gpu%d.compute", id), 1),
		copyEng: des.NewResource(eng, fmt.Sprintf("gpu%d.copy", id), pr.CopyEngines),
		pcie:    pcieLink,
		pcieBW:  pcieProps.Bandwidth,
		pcieLat: pcieProps.Latency,
		exec:    Serial{},

		csStream: fmt.Sprintf("gpu%d.compute", id),
		cpStream: fmt.Sprintf("gpu%d.copy", id),
	}
}

// SetObs attaches a flight recorder; kernel launches become spans on the
// "gpuN.compute" stream and DMA transfers on "gpuN.copy". Span boundaries
// are resource-grant and completion times, which the backend-invariance
// and shard-invariance guarantees make identical under any host
// configuration — recorded traces diff byte-for-byte across backends.
func (d *Device) SetObs(r *obs.Recorder) { d.rec = r }

// SetBackend selects the execution backend for this device's kernel
// closures; nil restores the Serial default. Devices of one cluster share
// a backend so host cores are pooled across all simulated GPUs.
func (d *Device) SetBackend(b Backend) {
	if b == nil {
		b = Serial{}
	}
	d.exec = b
}

// Backend returns the device's current execution backend.
func (d *Device) Backend() Backend { return d.exec }

// SetDerate stretches all subsequent kernel and PCIe durations on this
// device by factor (>1 = slower; values below 1 clamp to nominal). It
// models heterogeneous-slow or throttled GPUs — the straggler half of the
// fault-injection machinery. Operations already in progress finish at
// their original speed.
func (d *Device) SetDerate(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.derate = factor
}

// DerateFactor returns the current derating multiplier (1 = nominal).
func (d *Device) DerateFactor() float64 {
	if d.derate < 1 {
		return 1
	}
	return d.derate
}

// scaled applies the device's derating factor to a duration.
func (d *Device) scaled(t des.Time) des.Time {
	if d.derate > 1 {
		return des.Time(float64(t) * d.derate)
	}
	return t
}

// MemUsed returns the currently allocated device memory in virtual bytes.
func (d *Device) MemUsed() int64 { return d.memUsed }

// MemPeak returns the high-water mark of device memory use.
func (d *Device) MemPeak() int64 { return d.memPeak }

// MemFree returns the remaining device memory in virtual bytes.
func (d *Device) MemFree() int64 { return d.MemBytes - d.memUsed }

// Buffer is an allocation in simulated device memory. Data holds the
// host-side payload that stands in for device contents; VirtBytes is the
// size the allocation would have at paper scale and is what capacity
// accounting and transfer costs use.
type Buffer struct {
	dev       *Device
	name      string
	virtBytes int64
	freed     bool
	Data      any
}

// ErrOutOfMemory is returned by Alloc when the device cannot hold the
// requested buffer; GPMR's out-of-core machinery reacts to it by spilling.
type ErrOutOfMemory struct {
	Device    int
	Requested int64
	Free      int64
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("gpu%d: out of memory: requested %d bytes, %d free", e.Device, e.Requested, e.Free)
}

// Alloc reserves virtBytes of device memory and attaches data as the
// functional payload.
func (d *Device) Alloc(name string, virtBytes int64, data any) (*Buffer, error) {
	if virtBytes < 0 {
		panic("gpu: negative allocation")
	}
	if d.memUsed+virtBytes > d.MemBytes {
		return nil, &ErrOutOfMemory{Device: d.ID, Requested: virtBytes, Free: d.MemFree()}
	}
	d.memUsed += virtBytes
	if d.memUsed > d.memPeak {
		d.memPeak = d.memUsed
	}
	d.buffers++
	return &Buffer{dev: d, name: name, virtBytes: virtBytes, Data: data}, nil
}

// MustAlloc is Alloc for callers that have already sized their request to
// fit (chunk planners); it panics on exhaustion to surface planner bugs.
func (d *Device) MustAlloc(name string, virtBytes int64, data any) *Buffer {
	b, err := d.Alloc(name, virtBytes, data)
	if err != nil {
		panic(err)
	}
	return b
}

// VirtBytes returns the buffer's size at paper scale.
func (b *Buffer) VirtBytes() int64 { return b.virtBytes }

// Resize adjusts the buffer's accounted size (emit buffers shrink after
// compaction, grow after accumulation).
func (b *Buffer) Resize(virtBytes int64) error {
	if b.freed {
		panic("gpu: resize of freed buffer " + b.name)
	}
	delta := virtBytes - b.virtBytes
	if delta > 0 && b.dev.memUsed+delta > b.dev.MemBytes {
		return &ErrOutOfMemory{Device: b.dev.ID, Requested: delta, Free: b.dev.MemFree()}
	}
	b.dev.memUsed += delta
	if b.dev.memUsed > b.dev.memPeak {
		b.dev.memPeak = b.dev.memUsed
	}
	b.virtBytes = virtBytes
	return nil
}

// Free releases the buffer's device memory. Freeing twice is a bug.
func (b *Buffer) Free() {
	if b.freed {
		panic("gpu: double free of buffer " + b.name)
	}
	b.freed = true
	b.dev.memUsed -= b.virtBytes
	b.dev.buffers--
	b.Data = nil
}

// Launch runs a kernel: fn performs the functional work in host code —
// inline on the Serial backend, concurrently on a Pool worker — while the
// calling process occupies the compute engine for the kernel's modeled
// duration. The closure is joined no later than the kernel's simulated
// completion, so its effects are always visible when Launch returns and
// the DES schedule is backend-independent. It returns the duration.
func (d *Device) Launch(p *des.Proc, spec KernelSpec, fn func()) des.Time {
	cost := d.scaled(spec.Cost(d.Props))
	d.compute.Acquire(p, 1)
	t0 := p.Now()
	fut := d.exec.Start(p.Engine(), spec.Name, fn)
	p.Sleep(cost)
	if fut != nil {
		fut.Join()
	}
	if d.rec.Enabled() {
		d.rec.Span(int64(t0), int64(p.Now()), obs.CatSim, d.csStream, "kernel",
			obs.A("name", spec.Name))
	}
	d.compute.Release(1)
	d.KernelTime += cost
	return cost
}

// LaunchFor runs a kernel sequence with a precomputed aggregate cost
// (multi-pass primitives like radix sort), holding the compute engine for
// the whole duration. The closure joins at simulated completion, as in
// Launch. Prefer LaunchForNamed where a kernel name is known — it is what
// leak and panic diagnostics print.
func (d *Device) LaunchFor(p *des.Proc, cost des.Time, fn func()) des.Time {
	return d.LaunchForNamed(p, "kernelseq", cost, fn)
}

// LaunchForNamed is LaunchFor with an explicit kernel-sequence name for
// diagnostics (future leak reports and pooled-closure panics).
func (d *Device) LaunchForNamed(p *des.Proc, name string, cost des.Time, fn func()) des.Time {
	cost = d.scaled(cost)
	d.compute.Acquire(p, 1)
	t0 := p.Now()
	fut := d.exec.Start(p.Engine(), name, fn)
	p.Sleep(cost)
	if fut != nil {
		fut.Join()
	}
	if d.rec.Enabled() {
		d.rec.Span(int64(t0), int64(p.Now()), obs.CatSim, d.csStream, "kernel",
			obs.A("name", name))
	}
	d.compute.Release(1)
	d.KernelTime += cost
	return cost
}

// transfer models one PCIe DMA: the copy engine and the (possibly shared)
// link are held for the transfer duration. dir is the recorded direction
// attribute ("h2d" or "d2h").
func (d *Device) transfer(p *des.Proc, dir string, virtBytes int64, fn func()) des.Time {
	dur := d.scaled(d.pcieLat + des.FromSeconds(float64(virtBytes)/d.pcieBW))
	d.copyEng.Acquire(p, 1)
	d.pcie.Acquire(p, 1)
	t0 := p.Now()
	if fn != nil {
		fn()
	}
	p.Sleep(dur)
	if d.rec.Enabled() {
		d.rec.Span(int64(t0), int64(p.Now()), obs.CatSim, d.cpStream, "copy",
			obs.A("dir", dir), obs.Int("bytes", virtBytes))
	}
	d.pcie.Release(1)
	d.copyEng.Release(1)
	d.CopyTime += dur
	return dur
}

// CopyToDevice models a host→device transfer of virtBytes; fn (optional)
// installs the functional payload.
func (d *Device) CopyToDevice(p *des.Proc, virtBytes int64, fn func()) des.Time {
	return d.transfer(p, "h2d", virtBytes, fn)
}

// CopyToHost models a device→host transfer of virtBytes.
func (d *Device) CopyToHost(p *des.Proc, virtBytes int64, fn func()) des.Time {
	return d.transfer(p, "d2h", virtBytes, fn)
}

// ComputeBusy returns the compute engine's busy-time integral.
func (d *Device) ComputeBusy() des.Time { return d.compute.BusyIntegral() }
