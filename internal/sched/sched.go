package sched

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
)

// JobSpec is one submission to the scheduler.
type JobSpec struct {
	// At is the job's arrival time in the simulation.
	At des.Time
	// Job is the work itself; wrap a core.Job in a core.Scheduled.
	Job core.Runnable
	// Weight biases WeightedFair gang sizing (default 1; ignored by the
	// other policies).
	Weight int
	// MinGang is the smallest gang the job accepts when WeightedFair
	// molds it onto idle ranks (default 1; ignored by the other
	// policies).
	MinGang int
}

// jobRec tracks one submission through the scheduler.
type jobRec struct {
	spec    JobSpec
	id      int
	want    int
	weight  int
	minGang int

	arrival des.Time
	admit   des.Time
	finish  des.Time
	gang    []int
	trace   *core.Trace
	waiting bool // in the queue
	running bool
}

// scheduler is the admission engine for one Run.
type scheduler struct {
	eng   *des.Engine
	cl    *cluster.Cluster
	pol   Policy
	free  []bool // by global rank
	nFree int

	queue   []*jobRec // pending, arrival order
	recs    []*jobRec // all, submission order
	nRun    int
	launchE error // first LaunchOn failure, reported after the run
}

// validateSpecs checks every submission up front with named errors, so a
// bad queue never reaches the simulation.
func validateSpecs(specs []JobSpec, totalRanks int) error {
	if len(specs) == 0 {
		return ErrNoJobs
	}
	for i, sp := range specs {
		if sp.Job == nil {
			return fmt.Errorf("%w (submission %d)", ErrNilJob, i)
		}
		name := sp.Job.RunName()
		if sp.At < 0 {
			return fmt.Errorf("%w: job %q arrives at %v", ErrBadArrival, name, sp.At)
		}
		if sp.Weight < 0 {
			return fmt.Errorf("%w: job %q has weight %d", ErrBadWeight, name, sp.Weight)
		}
		want := sp.Job.GangWant()
		if want > totalRanks {
			return fmt.Errorf("%w: job %q wants %d of %d ranks", ErrGangTooBig, name, want, totalRanks)
		}
		if sp.MinGang < 0 || sp.MinGang > want {
			return fmt.Errorf("%w: job %q MinGang %d, want %d", ErrBadMinGang, name, sp.MinGang, want)
		}
		if err := sp.Job.ValidateJob(); err != nil {
			return fmt.Errorf("sched: job %q: %w", name, err)
		}
	}
	return nil
}

// Run simulates the submitted jobs on one shared cluster under the policy
// and returns the cluster-level trace. Everything is deterministic: the
// same cluster, policy, and submissions produce a bit-identical trace.
func Run(cc cluster.Config, pol Policy, specs []JobSpec) (*ClusterTrace, error) {
	if cc.GPUs <= 0 || cc.GPUsPerNode <= 0 || cc.GPUsPerNode > cc.Node.GPUsPerNode {
		return nil, fmt.Errorf("%w: %d GPUs, %d per node", ErrBadCluster, cc.GPUs, cc.GPUsPerNode)
	}
	if err := pol.Validate(cc.GPUs); err != nil {
		return nil, err
	}
	if err := validateSpecs(specs, cc.GPUs); err != nil {
		return nil, err
	}

	eng := des.NewEngine()
	cl := cluster.New(eng, cc)
	defer cl.Close()
	s := &scheduler{
		eng:   eng,
		cl:    cl,
		pol:   pol,
		free:  make([]bool, cl.Ranks()),
		nFree: cl.Ranks(),
	}
	for r := range s.free {
		s.free[r] = true
	}
	for i, sp := range specs {
		rec := &jobRec{spec: sp, id: i, want: sp.Job.GangWant(), weight: sp.Weight, minGang: sp.MinGang, arrival: sp.At}
		if rec.weight == 0 {
			rec.weight = 1
		}
		if rec.minGang == 0 {
			rec.minGang = 1
		}
		s.recs = append(s.recs, rec)
	}
	// Arrivals enter the queue in time order; submission order breaks
	// ties, so the stream is reproducible.
	arrivals := append([]*jobRec(nil), s.recs...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].arrival < arrivals[j].arrival })
	eng.Spawn("sched.arrivals", func(p *des.Proc) {
		for _, rec := range arrivals {
			if d := rec.arrival - p.Now(); d > 0 {
				p.Sleep(d)
			}
			rec.waiting = true
			s.queue = append(s.queue, rec)
			s.admit()
		}
	})
	makespan := eng.Run()
	if s.launchE != nil {
		return nil, s.launchE
	}

	ct := &ClusterTrace{Policy: pol, Ranks: cl.Ranks(), Makespan: makespan}
	for _, rec := range s.recs {
		ct.Jobs = append(ct.Jobs, JobTrace{
			ID:      rec.id,
			Name:    rec.spec.Job.RunName(),
			Want:    rec.want,
			Granted: len(rec.gang),
			Weight:  rec.weight,
			Gang:    rec.gang,
			Arrival: rec.arrival,
			Admit:   rec.admit,
			Finish:  rec.finish,
			Trace:   rec.trace,
		})
	}
	return ct, nil
}

// admit scans the queue in order, starting every job the policy lets onto
// the idle ranks. Called on each arrival and each completion.
func (s *scheduler) admit() {
	i := 0
	for i < len(s.queue) {
		rec := s.queue[i]
		size, ok := s.gangFor(rec)
		if !ok {
			if !s.pol.backfills() {
				return
			}
			i++
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.start(rec, size)
	}
}

// gangFor decides whether rec can start now and with how many ranks.
func (s *scheduler) gangFor(rec *jobRec) (int, bool) {
	switch s.pol.Kind {
	case FIFOExclusive:
		// One tenant at a time holding the whole machine; the gang itself
		// is the requested size (idle remainder ranks stay reserved).
		if s.nRun > 0 {
			return 0, false
		}
		return rec.want, true
	case FixedShare:
		size := rec.want
		if size > s.pol.Share {
			size = s.pol.Share
		}
		return size, s.nFree >= size
	case WeightedFair:
		// Fair share against every job currently in the system.
		demand := 0
		for _, r := range s.recs {
			if r.running || r.waiting {
				demand += r.weight
			}
		}
		if demand == 0 {
			demand = rec.weight
		}
		size := s.cl.Ranks() * rec.weight / demand
		if size > rec.want {
			size = rec.want
		}
		if size < rec.minGang {
			size = rec.minGang
		}
		if size < 1 {
			size = 1
		}
		if s.nFree >= size {
			return size, true
		}
		// Moldable shrink-to-fit: start on the idle ranks rather than
		// wait, never below the job's floor.
		if s.nFree >= rec.minGang {
			size = s.nFree
			if size > rec.want {
				size = rec.want
			}
			return size, true
		}
		return 0, false
	}
	return 0, false
}

// start places a gang of size ranks and launches the job on it.
func (s *scheduler) start(rec *jobRec, size int) {
	rec.gang = s.place(size)
	rec.admit = s.eng.Now()
	rec.waiting = false
	rec.running = true
	s.nRun++
	err := rec.spec.Job.LaunchOn(s.eng, s.cl, rec.gang, func(tr *core.Trace) {
		s.finish(rec, tr)
		s.admit()
	})
	if err != nil {
		// Pre-validated jobs should not fail to launch; record the first
		// failure and release the gang so the run can drain. No recursive
		// admit() here — start is called from inside admit's queue scan,
		// and the outer loop picks the freed ranks up itself.
		if s.launchE == nil {
			s.launchE = fmt.Errorf("sched: launching job %q: %w", rec.spec.Job.RunName(), err)
		}
		s.finish(rec, nil)
	}
}

// finish releases a completed job's gang. Completion callbacks re-run
// admission afterwards; the synchronous launch-error path must not.
func (s *scheduler) finish(rec *jobRec, tr *core.Trace) {
	rec.finish = s.eng.Now()
	rec.trace = tr
	rec.running = false
	s.nRun--
	for _, r := range rec.gang {
		s.free[r] = true
		// Straggler derating injected by the tenant's fault plan is
		// scoped to its lease: the next tenant gets nominal hardware.
		s.cl.Derate(r, 1)
	}
	s.nFree += len(rec.gang)
}

// place claims size free global ranks (marking them busy), topology-aware:
// fully-idle nodes first (a gang that owns whole nodes never splits a NIC
// pair with a neighbour), then the tightest-fitting partial node for the
// remainder so large idle nodes stay whole for the next big gang.
// Deterministic: ties break toward the lowest node ID, ranks ascend within
// a node.
func (s *scheduler) place(size int) []int {
	gang := make([]int, 0, size)
	for len(gang) < size {
		need := size - len(gang)
		best := -1
		bestFree := 0
		// Tier 1: the largest fully-idle node that fits entirely.
		for ni, node := range s.cl.Nodes {
			free := s.freeOn(ni)
			if free == len(node.GPUs) && free <= need && free > bestFree {
				best, bestFree = ni, free
			}
		}
		if best < 0 {
			// Tier 2: best fit — the node with the fewest free ranks that
			// still covers the remainder.
			for ni := range s.cl.Nodes {
				free := s.freeOn(ni)
				if free >= need && (best < 0 || free < bestFree) {
					best, bestFree = ni, free
				}
			}
		}
		if best < 0 {
			// Tier 3: no single node covers the remainder — take the
			// fullest idle node and keep going.
			for ni := range s.cl.Nodes {
				free := s.freeOn(ni)
				if free > bestFree {
					best, bestFree = ni, free
				}
			}
		}
		if best < 0 {
			panic(fmt.Sprintf("sched: placing %d ranks with %d free", size, s.nFree))
		}
		take := bestFree
		if take > need {
			take = need
		}
		for _, dev := range s.cl.Nodes[best].GPUs {
			if take == 0 {
				break
			}
			if s.free[dev.ID] {
				s.free[dev.ID] = false
				s.nFree--
				gang = append(gang, dev.ID)
				take--
			}
		}
	}
	sort.Ints(gang)
	return gang
}

// freeOn counts a node's idle ranks.
func (s *scheduler) freeOn(node int) int {
	n := 0
	for _, dev := range s.cl.Nodes[node].GPUs {
		if s.free[dev.ID] {
			n++
		}
	}
	return n
}
