package sched

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
)

// JobSpec is one submission to the scheduler.
type JobSpec struct {
	// At is the job's arrival time in the simulation.
	At des.Time
	// Job is the work itself; wrap a core.Job in a core.Scheduled.
	Job core.Runnable
	// Weight biases WeightedFair gang sizing (default 1; ignored by the
	// other policies).
	Weight int
	// MinGang is the smallest gang the job accepts when WeightedFair
	// molds it onto idle ranks (default 1; ignored by the other
	// policies).
	MinGang int
	// Class is the job's service class (default Batch). Higher classes
	// queue ahead of lower ones and, under Policy.Preempt, may
	// checkpoint-preempt running lower-class gangs.
	Class Class
	// Deadline is the job's completion SLO relative to arrival (0 =
	// none). At arrival the cost model predicts queue wait plus service;
	// a job predicted to miss is rejected — or demoted to Batch when
	// DowngradeOnMiss is set. The prediction needs the job to implement
	// core.CostEstimator (core.Scheduled does); otherwise the job is
	// admitted unchecked.
	Deadline des.Time
	// DowngradeOnMiss demotes a predicted-miss job to Batch instead of
	// rejecting it. The deadline is kept for attainment reporting.
	DowngradeOnMiss bool
	// Elastic opts the job into Policy.Elastic grow-back: when it was
	// molded below its fair share and ranks later idle, it may be
	// checkpointed and relaunched on a wider gang.
	Elastic bool
}

// jobRec tracks one submission through the scheduler.
type jobRec struct {
	spec    JobSpec
	id      int
	want    int
	weight  int
	minGang int

	class     Class
	deadline  des.Time
	downgrade bool // JobSpec.DowngradeOnMiss
	elastic   bool // JobSpec.Elastic

	arrival   des.Time
	admit     des.Time
	finish    des.Time
	gang      []int
	leased    []int // gang plus surplus ranks held idle (sharded whole-node leases)
	trace     *core.Trace
	waiting   bool // in the queue
	running   bool
	cancelled bool  // pulled from the queue before admission, or preempt-cancelled
	rejected  bool  // turned away at arrival by the SLO admission check
	err       error // LaunchOn failure, job never ran

	// SLO machinery. est caches the cost-model estimate for the granted
	// gang (set at start, consumed by the EASY reservation walk).
	// quiescing marks a launch asked to checkpoint-preempt; qCancel and
	// growPending record why, so requeue knows whether the job is being
	// cancelled, grown (floorGang forces the relaunch wider), or
	// restarted behind a higher class.
	est         des.Time
	estOK       bool
	quiescing   bool
	qCancel     bool
	growPending bool
	floorGang   int
	preempts    int
	downgraded  bool
}

// Scheduler is the incremental admission engine: jobs are submitted to a
// live engine one at a time, at the moment they arrive, rather than as a
// closed batch known up front. Run is the batch wrapper; the online
// serving layer (internal/serve) drives this API directly through the
// engine's injection primitive. All methods must be called at engine time
// (from a simulated process or an injected closure) — the Scheduler is
// engine-confined state, not a thread-safe object.
type Scheduler struct {
	eng   *des.Engine
	cl    *cluster.Cluster
	pol   Policy
	free  []bool // by global rank
	nFree int

	queue   []*jobRec // pending, arrival order
	recs    []*jobRec // all, submission order
	nRun    int
	launchE error // first LaunchOn failure, reported after a batch run

	// Sharded dispatch (nil ss = legacy same-engine launches). See
	// EnableSharding.
	ss        *des.ShardSet
	launchLat des.Time // hub -> gang shard: job launch overhead
	doneLat   des.Time // gang shard -> hub: completion notification

	// OnStart, if set, fires when a job is placed on its gang; OnDone
	// fires after its gang is released — with the job's trace, or with a
	// non-nil error if the launch itself failed (the job never ran).
	// Cancelled jobs fire neither. OnRequeue fires when a running job is
	// checkpoint-preempted: cancelled=false means it re-entered the queue
	// (preemption or elastic grow-back), true means PreemptCancel tore it
	// down. All run at engine time.
	OnStart   func(id int, gang []int)
	OnDone    func(id int, tr *core.Trace, err error)
	OnRequeue func(id int, cancelled bool)
}

// NewScheduler prepares an incremental scheduler for a shared engine and
// cluster. The policy is validated here; submissions are validated one by
// one as they arrive.
func NewScheduler(eng *des.Engine, cl *cluster.Cluster, pol Policy) (*Scheduler, error) {
	if err := pol.Validate(cl.Ranks()); err != nil {
		return nil, err
	}
	s := &Scheduler{
		eng:   eng,
		cl:    cl,
		pol:   pol,
		free:  make([]bool, cl.Ranks()),
		nFree: cl.Ranks(),
	}
	for r := range s.free {
		s.free[r] = true
	}
	return s, nil
}

// hubKey is the stable post-ordering identity of the scheduler hub itself;
// gangs use their lowest node ID, which is always >= 0.
const hubKey = -1

// EnableSharding switches the scheduler to sharded dispatch over ss, whose
// hub engine (shard 0) must be the engine the scheduler was built on. Jobs
// are then homed on engines 1..N-1 by their gang's lowest node ID (all on
// the hub when N = 1), launched through a hub->home post carrying `launch`
// (the job dispatch overhead — MPI wireup plus context creation — which
// doubles as the outbound lookahead) and completed through a home->hub post
// carrying `done` (one fabric latency). Sharded placement leases whole
// nodes, so concurrent gangs never share a NIC, a PCIe link, or a host CPU:
// surplus ranks on a gang's last node stay idle until the job finishes.
// Must be called before any submission.
func (s *Scheduler) EnableSharding(ss *des.ShardSet, launch, done des.Time) {
	if ss.Engine(0) != s.eng {
		panic("sched: EnableSharding needs the scheduler on the shard set's hub engine")
	}
	if len(s.recs) > 0 {
		panic("sched: EnableSharding after submissions")
	}
	if launch <= 0 || done <= 0 {
		panic("sched: sharded dispatch needs positive launch and done latencies")
	}
	s.ss = ss
	s.launchLat, s.doneLat = launch, done
	for k := 1; k < ss.Shards(); k++ {
		ss.DeclareEdge(0, k, launch)
		ss.DeclareEdge(k, 0, done)
	}
}

// homeOf picks the engine a gang runs on: a stable function of the gang's
// lowest node ID, so the assignment — and with it every post stamp — does
// not depend on admission interleaving.
func (s *Scheduler) homeOf(gang []int) int {
	n := s.ss.Shards()
	if n == 1 {
		return 0
	}
	return 1 + s.cl.NodeOfRank(gang[0]).ID%(n-1)
}

// validateSpec checks one submission with named errors.
func validateSpec(sp JobSpec, totalRanks int) error {
	if sp.Job == nil {
		return ErrNilJob
	}
	name := sp.Job.RunName()
	if sp.At < 0 {
		return fmt.Errorf("%w: job %q arrives at %v", ErrBadArrival, name, sp.At)
	}
	if sp.Weight < 0 {
		return fmt.Errorf("%w: job %q has weight %d", ErrBadWeight, name, sp.Weight)
	}
	if sp.Class < Batch || sp.Class > Interactive {
		return fmt.Errorf("%w: job %q has class %d", ErrBadClass, name, int(sp.Class))
	}
	if sp.Deadline < 0 {
		return fmt.Errorf("%w: job %q has deadline %v", ErrBadDeadline, name, sp.Deadline)
	}
	want := sp.Job.GangWant()
	if want > totalRanks {
		return fmt.Errorf("%w: job %q wants %d of %d ranks", ErrGangTooBig, name, want, totalRanks)
	}
	if sp.MinGang < 0 || sp.MinGang > want {
		return fmt.Errorf("%w: job %q MinGang %d, want %d", ErrBadMinGang, name, sp.MinGang, want)
	}
	if err := sp.Job.ValidateJob(); err != nil {
		return fmt.Errorf("sched: job %q: %w", name, err)
	}
	return nil
}

// validateSpecs checks every submission up front with named errors, so a
// bad queue never reaches the simulation.
func validateSpecs(specs []JobSpec, totalRanks int) error {
	if len(specs) == 0 {
		return ErrNoJobs
	}
	for i, sp := range specs {
		if err := validateSpec(sp, totalRanks); err != nil {
			if sp.Job == nil {
				return fmt.Errorf("%w (submission %d)", err, i)
			}
			return err
		}
	}
	return nil
}

// register creates the record for one submission; arrival is provisional
// until arrive runs (Run registers whole batches up front so job IDs follow
// submission order even when arrivals are out of order).
func (s *Scheduler) register(sp JobSpec) *jobRec {
	rec := &jobRec{spec: sp, id: len(s.recs), want: sp.Job.GangWant(), weight: sp.Weight, minGang: sp.MinGang, arrival: sp.At,
		class: sp.Class, deadline: sp.Deadline, downgrade: sp.DowngradeOnMiss, elastic: sp.Elastic}
	if rec.weight == 0 {
		rec.weight = 1
	}
	if rec.minGang == 0 {
		rec.minGang = 1
	}
	s.recs = append(s.recs, rec)
	return rec
}

// arrive enters a registered job into the admission queue at the current
// simulated time, running the SLO admission check first when the job
// carries a deadline.
func (s *Scheduler) arrive(rec *jobRec) {
	rec.arrival = s.eng.Now()
	if rec.deadline > 0 {
		if lat, ok := s.predictLatency(rec); ok && lat > rec.deadline {
			if !rec.downgrade {
				rec.rejected = true
				if r := s.cl.Obs; r.Enabled() {
					r.Emit(int64(rec.arrival), obs.CatSim, "sched/"+rec.spec.Job.RunName(), "slo.reject",
						obs.A("class", rec.class.String()))
				}
				return
			}
			rec.downgraded = true
			rec.class = Batch
		}
	}
	rec.waiting = true
	s.enqueue(rec)
	s.admit()
}

// enqueue inserts rec by service class — ahead of every strictly lower
// class, behind its own (stable within a class, so an all-Batch stream
// keeps exact arrival order and the pre-class queue behaviour).
func (s *Scheduler) enqueue(rec *jobRec) {
	i := len(s.queue)
	for i > 0 && s.queue[i-1].class < rec.class {
		i--
	}
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = rec
}

// Register validates and records one job arriving now, returning its ID,
// WITHOUT entering it into the admission queue — Arrive does that. The
// split lets a caller index its own bookkeeping by the ID before
// admission hooks (OnStart can fire synchronously from Arrive) need it.
// Must be called at engine time.
func (s *Scheduler) Register(sp JobSpec) (int, error) {
	sp.At = s.eng.Now()
	if err := validateSpec(sp, s.cl.Ranks()); err != nil {
		return 0, err
	}
	return s.register(sp).id, nil
}

// Arrive enters a registered job into the admission queue at the current
// simulated time. Must be called at engine time, exactly once per
// registered ID.
func (s *Scheduler) Arrive(id int) {
	rec := s.recs[id]
	if rec.waiting || rec.running || rec.cancelled || rec.rejected || rec.trace != nil || rec.err != nil {
		panic(fmt.Sprintf("sched: Arrive(%d) on a job that already arrived", id))
	}
	s.arrive(rec)
}

// Submit is Register followed by Arrive: validate and admit one job
// arriving now. Must be called at engine time.
func (s *Scheduler) Submit(sp JobSpec) (int, error) {
	id, err := s.Register(sp)
	if err != nil {
		return 0, err
	}
	s.Arrive(id)
	return id, nil
}

// Cancel withdraws a queued job. It reports false when the job is already
// running, finished, cancelled, or unknown — admission is the point of no
// return; a gang once placed runs to completion. Cancelled jobs are
// excluded from the ClusterTrace (they consumed no cluster time) and fire
// no OnDone.
func (s *Scheduler) Cancel(id int) bool {
	if id < 0 || id >= len(s.recs) {
		return false
	}
	rec := s.recs[id]
	if !rec.waiting || rec.cancelled {
		return false
	}
	for i, q := range s.queue {
		if q == rec {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	rec.waiting = false
	rec.cancelled = true
	if r := s.cl.Obs; r.Enabled() {
		r.Emit(int64(s.eng.Now()), obs.CatSim, "sched/"+rec.spec.Job.RunName(), "cancel")
	}
	return true
}

// QueueLen is the number of jobs waiting for admission.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Running is the number of jobs currently holding gangs.
func (s *Scheduler) Running() int { return s.nRun }

// FreeRanks is the number of idle GPU ranks.
func (s *Scheduler) FreeRanks() int { return s.nFree }

// Err returns the first launch failure of a batch run, if any.
func (s *Scheduler) Err() error { return s.launchE }

// Trace assembles the cluster-level record of everything admitted so far.
// Cancelled jobs are skipped: they never touched the cluster, and a
// replayed stream that re-cancels them produces the identical trace.
func (s *Scheduler) Trace(makespan des.Time) *ClusterTrace {
	ct := &ClusterTrace{Policy: s.pol, Ranks: s.cl.Ranks(), Makespan: makespan}
	for _, rec := range s.recs {
		if rec.cancelled {
			continue
		}
		jt := JobTrace{
			ID:         rec.id,
			Name:       rec.spec.Job.RunName(),
			Want:       rec.want,
			Granted:    len(rec.gang),
			Weight:     rec.weight,
			Gang:       rec.gang,
			Class:      rec.class,
			Deadline:   rec.deadline,
			Downgraded: rec.downgraded,
			Preempts:   rec.preempts,
			Arrival:    rec.arrival,
			Admit:      rec.admit,
			Finish:     rec.finish,
			Trace:      rec.trace,
		}
		if rec.rejected {
			ct.Rejected = append(ct.Rejected, jt)
			continue
		}
		ct.Jobs = append(ct.Jobs, jt)
	}
	return ct
}

// Run simulates the submitted jobs on one shared cluster under the policy
// and returns the cluster-level trace. Everything is deterministic: the
// same cluster, policy, and submissions produce a bit-identical trace.
func Run(cc cluster.Config, pol Policy, specs []JobSpec) (*ClusterTrace, error) {
	if err := cc.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCluster, err)
	}
	if err := pol.Validate(cc.GPUs); err != nil {
		return nil, err
	}
	if err := validateSpecs(specs, cc.GPUs); err != nil {
		return nil, err
	}

	var eng *des.Engine
	var ss *des.ShardSet
	if n := cc.ShardCount(); n > 0 {
		ss = des.NewShardSet(n)
		eng = ss.Engine(0)
	} else {
		eng = des.NewEngine()
	}
	if cc.Obs.Enabled() {
		if ss != nil {
			ss.SetRecorder(cc.Obs)
		} else {
			eng.SetRecorder(cc.Obs)
		}
	}
	cl := cluster.New(eng, cc)
	defer cl.Close()
	s, err := NewScheduler(eng, cl, pol)
	if err != nil {
		return nil, err
	}
	if ss != nil {
		s.EnableSharding(ss, cc.Launch(), cc.Fabric.Latency)
	}
	for _, sp := range specs {
		s.register(sp)
	}
	// Arrivals enter the queue in time order; submission order breaks
	// ties, so the stream is reproducible.
	arrivals := append([]*jobRec(nil), s.recs...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].arrival < arrivals[j].arrival })
	eng.Spawn("sched.arrivals", func(p *des.Proc) {
		for _, rec := range arrivals {
			if d := rec.arrival - p.Now(); d > 0 {
				p.Sleep(d)
			}
			s.arrive(rec)
		}
	})
	var makespan des.Time
	if ss != nil {
		makespan = ss.Run()
	} else {
		makespan = eng.Run()
	}
	if s.launchE != nil {
		return nil, s.launchE
	}
	return s.Trace(makespan), nil
}

// admit scans the queue in order, starting every job the policy lets onto
// the idle ranks. Called on each arrival and each completion (including
// preemption requeues). A blocked head may trigger class preemption
// (Policy.Preempt) or take an EASY reservation (Policy.Reserve) that
// gates backfill behind its predicted start; with the queue drained,
// Policy.Elastic looks for a molded gang worth growing back.
func (s *Scheduler) admit() {
	var resAt des.Time
	reserved := false
	i := 0
	for i < len(s.queue) {
		rec := s.queue[i]
		size, ok := s.gangFor(rec)
		if !ok {
			if !s.pol.backfills() {
				return
			}
			if i == 0 {
				if s.pol.Preempt && s.preemptFor(rec) {
					// Victims are draining; hold every admission until
					// their requeue re-runs admit, so backfill cannot
					// steal the ranks being freed for the head.
					return
				}
				if s.pol.Reserve {
					if at, ok := s.reserveStart(s.needFor(rec)); ok {
						resAt, reserved = at, true
					}
				}
			}
			i++
			continue
		}
		if reserved && i > 0 {
			// EASY gate: a later job may only jump the blocked head if it
			// provably (by the same cost model) finishes before the head's
			// reserved start. Unpredictable jobs don't get to gamble.
			est, ok := s.estimate(rec, size)
			if !ok || s.eng.Now()+est > resAt {
				i++
				continue
			}
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.start(rec, size, i > 0)
	}
	if s.pol.Elastic && len(s.queue) == 0 {
		s.growBack()
	}
}

// gangFor decides whether rec can start now and with how many ranks.
func (s *Scheduler) gangFor(rec *jobRec) (int, bool) {
	switch s.pol.Kind {
	case FIFOExclusive:
		// One tenant at a time holding the whole machine; the gang itself
		// is the requested size (idle remainder ranks stay reserved).
		if s.nRun > 0 {
			return 0, false
		}
		return rec.want, true
	case FixedShare:
		size := rec.want
		if size > s.pol.Share {
			size = s.pol.Share
		}
		return size, s.nFree >= size
	case WeightedFair:
		// Fair share against every job currently in the system.
		size := s.fairShare(rec)
		floor := rec.minGang
		if rec.floorGang > floor {
			// A grow-back relaunch must come back strictly wider than the
			// gang it gave up, or the checkpoint was wasted motion.
			floor = rec.floorGang
		}
		if floor > rec.want {
			floor = rec.want
		}
		if size < floor {
			size = floor
		}
		if size < 1 {
			size = 1
		}
		if s.nFree >= size {
			return size, true
		}
		// Moldable shrink-to-fit: start on the idle ranks rather than
		// wait, never below the job's floor.
		if s.nFree >= floor {
			size = s.nFree
			if size > rec.want {
				size = rec.want
			}
			return size, true
		}
		return 0, false
	}
	return 0, false
}

// fairShare is rec's WeightedFair allocation against every job currently
// in the system (running or waiting), capped at its request.
func (s *Scheduler) fairShare(rec *jobRec) int {
	demand := 0
	for _, r := range s.recs {
		if r.running || r.waiting {
			demand += r.weight
		}
	}
	if demand == 0 {
		demand = rec.weight
	}
	size := s.cl.Ranks() * rec.weight / demand
	if size > rec.want {
		size = rec.want
	}
	return size
}

// start places a gang of size ranks and launches the job on it. backfill
// marks a start from deeper in the queue scan — the policy let this job
// jump jobs still waiting ahead of it.
func (s *Scheduler) start(rec *jobRec, size int, backfill bool) {
	if s.ss != nil {
		rec.gang, rec.leased = s.placeNodes(size)
	} else {
		rec.gang = s.place(size)
		rec.leased = rec.gang
	}
	rec.admit = s.eng.Now()
	rec.waiting = false
	rec.running = true
	s.nRun++
	if ce, ok := rec.spec.Job.(core.CostEstimator); ok {
		// Cached for the EASY reservation walk: this launch's predicted
		// end is admit + est.
		rec.est, rec.estOK = ce.EstimateCost(s.cl, len(rec.gang)), true
	}
	if r := s.cl.Obs; r.Enabled() {
		stream := "sched/" + rec.spec.Job.RunName()
		if rec.class != Batch || rec.deadline > 0 {
			// Class tag only when the submission used SLO features, so
			// pre-class recordings stay byte-identical.
			r.Span(int64(rec.arrival), int64(rec.admit), obs.CatSim, stream, "queue.wait",
				obs.A("class", rec.class.String()))
		} else {
			r.Span(int64(rec.arrival), int64(rec.admit), obs.CatSim, stream, "queue.wait")
		}
		r.Emit(int64(rec.admit), obs.CatSim, stream, "place",
			obs.Int("gang", int64(len(rec.gang))), obs.Int("want", int64(rec.want)),
			obs.Bool("backfill", backfill))
	}
	if s.OnStart != nil {
		s.OnStart(rec.id, rec.gang)
	}
	if s.ss != nil {
		s.dispatch(rec)
		return
	}
	err := rec.spec.Job.LaunchOn(s.eng, s.cl, rec.gang, func(tr *core.Trace) {
		s.finish(rec, tr)
		s.admit()
	})
	if err != nil {
		// Pre-validated jobs should not fail to launch; record the first
		// failure and release the gang so the run can drain. No recursive
		// admit() here — start is called from inside admit's queue scan,
		// and the outer loop picks the freed ranks up itself. In online
		// mode one tenant's bad job must not take the service down: the
		// failure is scoped to the job (rec.err, OnDone) and the batch-run
		// abort stays the Run wrapper's business via launchE.
		rec.err = fmt.Errorf("sched: launching job %q: %w", rec.spec.Job.RunName(), err)
		if s.launchE == nil {
			s.launchE = rec.err
		}
		s.finish(rec, nil)
	}
}

// dispatch launches rec's job on its gang's home shard. The hub->home post
// carries the launch overhead; the home->hub completion post carries one
// fabric latency. Both stamps are pure functions of the simulation — hub
// decision time, gang node IDs, per-key sequence — so the merged event
// order is identical at every shard count, including 1. All scheduler
// state stays hub-confined: the home shard only reads the immutable spec
// and posts results back.
func (s *Scheduler) dispatch(rec *jobRec) {
	name := rec.spec.Job.RunName()
	home := s.homeOf(rec.gang)
	key := s.cl.NodeOfRank(rec.gang[0]).ID
	gang := rec.gang
	s.ss.Post(s.eng, home, hubKey, s.launchLat, name+".launch", func(p *des.Proc) {
		homeEng := p.Engine()
		err := rec.spec.Job.LaunchOn(homeEng, s.cl, gang, func(tr *core.Trace) {
			s.ss.Post(homeEng, 0, key, s.doneLat, name+".done", func(q *des.Proc) {
				s.finish(rec, tr)
				s.admit()
			})
		})
		if err != nil {
			err = fmt.Errorf("sched: launching job %q: %w", name, err)
			s.ss.Post(homeEng, 0, key, s.doneLat, name+".done", func(q *des.Proc) {
				// Written on the hub, like every other rec mutation.
				rec.err = err
				if s.launchE == nil {
					s.launchE = rec.err
				}
				s.finish(rec, nil)
				s.admit()
			})
		}
	})
}

// finish releases a completed job's gang. Completion callbacks re-run
// admission afterwards; the synchronous launch-error path must not. A
// launch that drained early because we asked it to quiesce is not done —
// its partial output is discarded and the job requeues for a restart
// (or tears down, for PreemptCancel). A quiesce that lost the race with
// natural completion (tr.Preempted false) is a normal finish.
func (s *Scheduler) finish(rec *jobRec, tr *core.Trace) {
	if rec.quiescing && tr != nil && tr.Preempted && rec.err == nil {
		s.requeue(rec)
		return
	}
	rec.quiescing, rec.qCancel, rec.growPending = false, false, false
	rec.finish = s.eng.Now()
	rec.trace = tr
	rec.running = false
	s.nRun--
	if s.OnDone != nil {
		s.OnDone(rec.id, tr, rec.err)
	}
	s.releaseRanks(rec)
}

// releaseRanks frees rec's whole lease.
func (s *Scheduler) releaseRanks(rec *jobRec) {
	for _, r := range rec.leased {
		s.free[r] = true
		// Straggler derating injected by the tenant's fault plan is
		// scoped to its lease: the next tenant gets nominal hardware.
		s.cl.Derate(r, 1)
	}
	s.nFree += len(rec.leased)
}

// place claims size free global ranks (marking them busy), topology-aware:
// fully-idle nodes first (a gang that owns whole nodes never splits a NIC
// pair with a neighbour), then the tightest-fitting partial node for the
// remainder so large idle nodes stay whole for the next big gang.
// Deterministic: ties break toward the lowest node ID, ranks ascend within
// a node.
func (s *Scheduler) place(size int) []int {
	gang := make([]int, 0, size)
	for len(gang) < size {
		need := size - len(gang)
		best := -1
		bestFree := 0
		// Tier 1: the largest fully-idle node that fits entirely.
		for ni, node := range s.cl.Nodes {
			free := s.freeOn(ni)
			if free == len(node.GPUs) && free <= need && free > bestFree {
				best, bestFree = ni, free
			}
		}
		if best < 0 {
			// Tier 2: best fit — the node with the fewest free ranks that
			// still covers the remainder.
			for ni := range s.cl.Nodes {
				free := s.freeOn(ni)
				if free >= need && (best < 0 || free < bestFree) {
					best, bestFree = ni, free
				}
			}
		}
		if best < 0 {
			// Tier 3: no single node covers the remainder — take the
			// fullest idle node and keep going.
			for ni := range s.cl.Nodes {
				free := s.freeOn(ni)
				if free > bestFree {
					best, bestFree = ni, free
				}
			}
		}
		if best < 0 {
			panic(fmt.Sprintf("sched: placing %d ranks with %d free", size, s.nFree))
		}
		take := bestFree
		if take > need {
			take = need
		}
		for _, dev := range s.cl.Nodes[best].GPUs {
			if take == 0 {
				break
			}
			if s.free[dev.ID] {
				s.free[dev.ID] = false
				s.nFree--
				gang = append(gang, dev.ID)
				take--
			}
		}
	}
	sort.Ints(gang)
	return gang
}

// placeNodes claims whole idle nodes, lowest ID first, until they cover
// size ranks; the gang is the first size leased ranks and the remainder
// stay leased-idle until finish. Whole-node leases keep every shared
// hardware primitive — NICs, PCIe links, the host CPU resource — owned by
// exactly one gang (one shard) at a time, and they preserve the invariant
// that every node is either fully free or fully leased, so nFree remains an
// exact feasibility test for gangFor.
func (s *Scheduler) placeNodes(size int) (gang, leased []int) {
	for ni, node := range s.cl.Nodes {
		if len(leased) >= size {
			break
		}
		if s.freeOn(ni) != len(node.GPUs) {
			continue
		}
		for _, dev := range node.GPUs {
			s.free[dev.ID] = false
			s.nFree--
			leased = append(leased, dev.ID)
		}
	}
	if len(leased) < size {
		panic(fmt.Sprintf("sched: leasing %d ranks with %d free (node lease invariant broken)", size, s.nFree+len(leased)))
	}
	return leased[:size], leased
}

// freeOn counts a node's idle ranks.
func (s *Scheduler) freeOn(node int) int {
	n := 0
	for _, dev := range s.cl.Nodes[node].GPUs {
		if s.free[dev.ID] {
			n++
		}
	}
	return n
}
