package sched

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
)

// TestWeightContract pins the validation boundary ErrBadWeight describes:
// zero is accepted and defaults to 1, negatives are rejected, and the
// error text names the actual contract (a regression guard — the message
// used to claim ">= 1" while zero was silently accepted).
func TestWeightContract(t *testing.T) {
	if !strings.Contains(ErrBadWeight.Error(), ">= 0") {
		t.Errorf("ErrBadWeight text %q does not state the >= 0 contract", ErrBadWeight)
	}
	cases := []struct {
		name    string
		weight  int
		wantErr error
	}{
		{"zero defaults to one", 0, nil},
		{"negative rejected", -1, ErrBadWeight},
		{"one accepted", 1, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ct, err := Run(cc16(), Policy{Kind: WeightedFair},
				[]JobSpec{{At: 0, Job: makeJob("w", 4, 4, 64), Weight: tc.weight}})
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("weight %d: err=%v, want %v", tc.weight, err, tc.wantErr)
			}
			if err != nil {
				return
			}
			if w := ct.Jobs[0].Weight; w != 1 && tc.weight == 0 {
				t.Errorf("weight 0 recorded as %d, want default 1", w)
			}
		})
	}
}

// TestClassOrdering: a later-arriving Interactive submission overtakes a
// queued Batch one — classes order the queue, arrival order breaks ties
// within a class.
func TestClassOrdering(t *testing.T) {
	specs := []JobSpec{
		{At: 0, Job: makeJob("runner", 4, 8, 512)},
		{At: des.Millisecond, Job: makeJob("batch", 4, 4, 128)},
		{At: 2 * des.Millisecond, Job: makeJob("inter", 4, 4, 128), Class: Interactive},
	}
	ct, err := Run(cc16(), Policy{Kind: FIFOExclusive}, specs)
	if err != nil {
		t.Fatal(err)
	}
	batch, inter := jobByID(ct, 1), jobByID(ct, 2)
	if inter.Admit >= batch.Admit {
		t.Errorf("interactive admitted %v, after batch at %v — class ordering ignored", inter.Admit, batch.Admit)
	}
	if inter.Class != Interactive || batch.Class != Batch {
		t.Errorf("classes not recorded: inter=%v batch=%v", inter.Class, batch.Class)
	}
}

// TestDeadlineAdmission: an impossible deadline is rejected at arrival;
// with DowngradeOnMiss it is demoted to Batch and still runs; a generous
// deadline is admitted untouched and met.
func TestDeadlineAdmission(t *testing.T) {
	t.Run("reject", func(t *testing.T) {
		ct, err := Run(cc16(), Policy{Kind: WeightedFair}, []JobSpec{
			{At: 0, Job: makeJob("tight", 4, 4, 256), Class: Interactive, Deadline: des.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(ct.Jobs) != 0 || len(ct.Rejected) != 1 {
			t.Fatalf("jobs %d rejected %d, want 0/1", len(ct.Jobs), len(ct.Rejected))
		}
		rej := &ct.Rejected[0]
		if rej.Class != Interactive || rej.Deadline != des.Microsecond {
			t.Errorf("rejected record lost identity: %+v", rej)
		}
		if !strings.Contains(ct.String(), "rej") {
			t.Errorf("trace does not render the rejection:\n%s", ct)
		}
	})
	t.Run("downgrade", func(t *testing.T) {
		ct, err := Run(cc16(), Policy{Kind: WeightedFair}, []JobSpec{
			{At: 0, Job: makeJob("soft", 4, 4, 256), Class: Interactive, Deadline: des.Microsecond, DowngradeOnMiss: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(ct.Jobs) != 1 || len(ct.Rejected) != 0 {
			t.Fatalf("jobs %d rejected %d, want 1/0", len(ct.Jobs), len(ct.Rejected))
		}
		j := &ct.Jobs[0]
		if !j.Downgraded || j.Class != Batch {
			t.Errorf("predicted-miss not demoted: downgraded=%v class=%v", j.Downgraded, j.Class)
		}
	})
	t.Run("feasible", func(t *testing.T) {
		ct, err := Run(cc16(), Policy{Kind: WeightedFair}, []JobSpec{
			{At: 0, Job: makeJob("easy", 4, 4, 256), Class: Interactive, Deadline: des.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		j := &ct.Jobs[0]
		if j.Downgraded || j.Class != Interactive {
			t.Errorf("feasible job demoted: downgraded=%v class=%v", j.Downgraded, j.Class)
		}
		if !j.Met() {
			t.Errorf("feasible deadline missed: lat %v, ddl %v", j.Latency(), j.Deadline)
		}
		stats := ct.SLOByClass()[Interactive]
		if stats == nil || stats.Met != 1 || stats.Jobs != 1 {
			t.Errorf("SLOByClass: %+v, want 1/1 met", stats)
		}
	})
	t.Run("validation", func(t *testing.T) {
		_, err := Run(cc16(), Policy{Kind: WeightedFair}, []JobSpec{
			{At: 0, Job: makeJob("bad", 4, 4, 64), Deadline: -des.Second},
		})
		if !errors.Is(err, ErrBadDeadline) {
			t.Errorf("negative deadline: err=%v, want ErrBadDeadline", err)
		}
		_, err = Run(cc16(), Policy{Kind: WeightedFair}, []JobSpec{
			{At: 0, Job: makeJob("bad", 4, 4, 64), Class: Class(9)},
		})
		if !errors.Is(err, ErrBadClass) {
			t.Errorf("unknown class: err=%v, want ErrBadClass", err)
		}
		_, err = Run(cc16(), Policy{Kind: FIFOExclusive, Preempt: true},
			[]JobSpec{{At: 0, Job: makeJob("p", 4, 4, 64)}})
		if !errors.Is(err, ErrBadPreempt) {
			t.Errorf("FIFO+Preempt: err=%v, want ErrBadPreempt", err)
		}
	})
}

// starvationStream is the backfill-starvation fixture: a long job holds
// half the cluster, an unfittable head needs the whole machine, and a
// steady stream of 4-rank jobs keeps arriving. Plain backfill lets the
// stream relay-hold the ranks so the head starves until the stream runs
// dry; the EASY reservation gates stream jobs that would overrun the
// head's reserved start.
func starvationStream() []JobSpec {
	specs := []JobSpec{
		{At: 0, Job: makeJob("long", 8, 16, 512), MinGang: 8},
		{At: des.Millisecond, Job: makeJob("head", 16, 4, 256), MinGang: 16},
	}
	for i := 0; i < 10; i++ {
		at := des.Millisecond/2 + des.Time(i)*des.Millisecond/2
		specs = append(specs, JobSpec{At: at, Job: makeJob("small", 4, 4, 256), MinGang: 4})
	}
	return specs
}

// TestReservationPreventsBackfillStarvation is the regression pair: the
// control run (old skip-ahead backfill, no reservation) starves the head
// behind the small-job stream; Policy.Reserve bounds the head's wait by
// its reserved start, admitting it strictly earlier and pushing at least
// part of the stream behind it.
func TestReservationPreventsBackfillStarvation(t *testing.T) {
	ctrl, err := Run(cc16(), Policy{Kind: WeightedFair}, starvationStream())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cc16(), Policy{Kind: WeightedFair, Reserve: true}, starvationStream())
	if err != nil {
		t.Fatal(err)
	}
	headCtrl, headRes := jobByID(ctrl, 1), jobByID(res, 1)
	// The control demonstrates the starvation the reservation exists to
	// fix: the head cannot start until the whole stream has drained past
	// it (every small admitted before the head).
	for _, j := range ctrl.Jobs {
		if j.Name == "small" && j.Admit > headCtrl.Admit {
			t.Errorf("control fixture broken: small (id %d) admitted %v after head %v — no starvation to fix",
				j.ID, j.Admit, headCtrl.Admit)
		}
	}
	if headRes.Admit >= headCtrl.Admit {
		t.Errorf("reservation did not help the head: admit %v with Reserve, %v without", headRes.Admit, headCtrl.Admit)
	}
	// With the reservation, the tail of the stream is gated behind the
	// head instead of overtaking it.
	gated := 0
	for _, j := range res.Jobs {
		if j.Name == "small" && j.Admit > headRes.Admit {
			gated++
		}
	}
	if gated == 0 {
		t.Error("Reserve run admitted every stream job ahead of the head — nothing was gated")
	}
}

// TestClassPreemption: an Interactive arrival checkpoint-preempts the
// Batch gang holding the whole cluster; the victim drains at a chunk
// boundary, requeues, restarts from scratch, and still produces the
// complete (uncorrupted) result.
func TestClassPreemption(t *testing.T) {
	mk := func() (batch *core.Scheduled[uint32], specs []JobSpec) {
		// 4 chunks per rank: the quiesce lands at a real chunk boundary
		// well before the job's natural end.
		batch = makeJob("batch", 16, 64, 512)
		specs = []JobSpec{
			{At: 0, Job: batch},
			{At: des.Millisecond, Job: makeJob("inter", 8, 8, 256), MinGang: 8, Class: Interactive},
		}
		return
	}
	_, ctrlSpecs := mk()
	ctrl, err := Run(cc16(), Policy{Kind: WeightedFair}, ctrlSpecs)
	if err != nil {
		t.Fatal(err)
	}
	ctrlInter := jobByID(ctrl, 1)
	batchJob, specs := mk()
	ct, err := Run(cc16(), Policy{Kind: WeightedFair, Preempt: true}, specs)
	if err != nil {
		t.Fatal(err)
	}
	batch, inter := jobByID(ct, 0), jobByID(ct, 1)
	if batch.Preempts != 1 {
		t.Errorf("batch preempted %d times, want 1", batch.Preempts)
	}
	if inter.Admit >= batch.Finish {
		t.Errorf("interactive never overlapped the preempted batch: admit %v, batch finish %v", inter.Admit, batch.Finish)
	}
	if inter.Admit >= ctrlInter.Admit {
		t.Errorf("preemption did not admit interactive earlier: %v with Preempt, %v without", inter.Admit, ctrlInter.Admit)
	}
	// Restart-from-scratch correctness: the final launch's result is the
	// complete job, as if never interrupted.
	if batchJob.Result == nil {
		t.Fatal("preempted batch job has no result")
	}
	total := 0
	for _, pr := range batchJob.Result.PerRank {
		total += pr.Len()
	}
	if total != 64*512 {
		t.Errorf("preempted+restarted job produced %d pairs, want %d", total, 64*512)
	}
	if batch.Trace == nil || batch.Trace.Preempted {
		t.Errorf("final trace should be a completed (non-preempted) launch: %+v", batch.Trace)
	}
}

// TestElasticGrowBack: a WeightedFair job molded onto 2 idle ranks is
// checkpointed and relaunched on a wider gang once the big job frees the
// cluster — only when it opted in via JobSpec.Elastic.
func TestElasticGrowBack(t *testing.T) {
	mk := func(elastic bool) (b *core.Scheduled[uint32], specs []JobSpec) {
		b = makeJob("b", 8, 8, 512)
		specs = []JobSpec{
			{At: 0, Job: makeJob("a", 14, 28, 512), MinGang: 14},
			{At: des.Millisecond, Job: b, Elastic: elastic},
		}
		return
	}
	_, ctrlSpecs := mk(false)
	ctrl, err := Run(cc16(), Policy{Kind: WeightedFair, Elastic: true}, ctrlSpecs)
	if err != nil {
		t.Fatal(err)
	}
	if bc := jobByID(ctrl, 1); bc.Granted != 2 || bc.Preempts != 0 {
		t.Fatalf("control: non-elastic job got %d ranks with %d preempts, want molded 2/0", bc.Granted, bc.Preempts)
	}
	bJob, specs := mk(true)
	ct, err := Run(cc16(), Policy{Kind: WeightedFair, Elastic: true}, specs)
	if err != nil {
		t.Fatal(err)
	}
	b := jobByID(ct, 1)
	if b.Preempts != 1 {
		t.Fatalf("elastic job checkpointed %d times, want 1", b.Preempts)
	}
	if b.Granted <= 2 {
		t.Errorf("grow-back relaunched on %d ranks, want wider than the molded 2", b.Granted)
	}
	if bJob.Result == nil {
		t.Fatal("grown job has no result")
	}
	total := 0
	for _, pr := range bJob.Result.PerRank {
		total += pr.Len()
	}
	if total != 8*512 {
		t.Errorf("grown job produced %d pairs, want %d", total, 8*512)
	}
}

// TestPreemptCancelRunningJob drives the incremental API: PreemptCancel
// reaches a RUNNING job (Cancel never does), the gang frees at the next
// chunk boundary, OnRequeue(id, true) fires instead of OnDone, and the
// job is excluded from the trace like any cancelled submission.
func TestPreemptCancelRunningJob(t *testing.T) {
	eng := des.NewEngine()
	cl := cluster.New(eng, cc16())
	defer cl.Close()
	s, err := NewScheduler(eng, cl, Policy{Kind: WeightedFair, Preempt: true})
	if err != nil {
		t.Fatal(err)
	}
	var requeued []int
	var requeueCancelled []bool
	var done []int
	s.OnRequeue = func(id int, cancelled bool) {
		requeued = append(requeued, id)
		requeueCancelled = append(requeueCancelled, cancelled)
	}
	s.OnDone = func(id int, tr *core.Trace, err error) { done = append(done, id) }
	eng.Spawn("driver", func(p *des.Proc) {
		id, err := s.Submit(JobSpec{Job: makeJob("victim", 8, 16, 512)})
		if err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		if s.Cancel(id) {
			t.Error("Cancel reached a running job")
		}
		p.Sleep(des.Millisecond)
		if !s.PreemptCancel(id) {
			t.Error("PreemptCancel refused a running job")
		}
		if s.PreemptCancel(id) {
			t.Error("double PreemptCancel succeeded while quiescing")
		}
		if s.PreemptCancel(42) {
			t.Error("PreemptCancel accepted an unknown id")
		}
	})
	makespan := eng.Run()
	if len(requeued) != 1 || requeued[0] != 0 || !requeueCancelled[0] {
		t.Fatalf("OnRequeue: ids %v cancelled %v, want [0]/[true]", requeued, requeueCancelled)
	}
	if len(done) != 0 {
		t.Errorf("OnDone fired for a preempt-cancelled job: %v", done)
	}
	if s.FreeRanks() != cl.Ranks() {
		t.Errorf("gang not released: %d free of %d", s.FreeRanks(), cl.Ranks())
	}
	if ct := s.Trace(makespan); len(ct.Jobs) != 0 {
		t.Errorf("preempt-cancelled job still in trace: %v", ct.String())
	}
}

// TestSLOShardInvariance: the SLO machinery must keep the sharded DES
// backend bit-identical to the single-engine run — preemption and
// grow-back route through the same hub->home post edges as launches.
func TestSLOShardInvariance(t *testing.T) {
	mk := func() []JobSpec {
		return []JobSpec{
			{At: 0, Job: makeJob("batch", 16, 64, 512)},
			{At: des.Millisecond, Job: makeJob("inter", 8, 8, 256), MinGang: 8, Class: Interactive,
				Deadline: des.Second},
		}
	}
	runWith := func(shards int) string {
		cc := cc16()
		cc.Shards = shards
		ct, err := Run(cc, Policy{Kind: WeightedFair, Preempt: true, Reserve: true}, mk())
		if err != nil {
			t.Fatal(err)
		}
		return ct.String()
	}
	one, four := runWith(1), runWith(4)
	if one != four {
		t.Errorf("SLO run not shard-invariant:\n--- 1 shard\n%s--- 4 shards\n%s", one, four)
	}
}
