package des

import (
	"fmt"
	"strings"
	"testing"
)

// TestFutureJoinOrderings is the table-driven contract test for the
// engine's join primitive: a future completed before the join returns
// immediately; a future still running at the join blocks the joining
// process's host goroutine (never the simulated clock) until the worker
// fires Complete.
func TestFutureJoinOrderings(t *testing.T) {
	cases := []struct {
		name string
		// fire arranges for Complete to be called: before returns only
		// after the future completed; at fires it from a worker goroutine
		// released by the join reaching its blocking point.
		joinBeforeFire bool
	}{
		{name: "join-before-fire", joinBeforeFire: false},
		{name: "join-at-fire", joinBeforeFire: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine()
			var result int
			var joinedAt Time
			e.Spawn("launcher", func(p *Proc) {
				f := e.NewFuture("k")
				if tc.joinBeforeFire {
					// Worker still running when Join is reached: release
					// it only once this goroutine is committed to joining.
					release := make(chan struct{})
					go func() {
						<-release
						result = 42
						f.Complete()
					}()
					p.Sleep(3 * Microsecond)
					close(release)
				} else {
					// Worker already done before the simulated completion.
					done := make(chan struct{})
					go func() {
						result = 42
						f.Complete()
						close(done)
					}()
					<-done
					p.Sleep(3 * Microsecond)
				}
				f.Join()
				joinedAt = p.Now()
				if result != 42 {
					t.Errorf("worker effects not visible after Join: %d", result)
				}
			})
			end := e.Run()
			if joinedAt != 3*Microsecond || end != 3*Microsecond {
				t.Errorf("join moved the simulated clock: joined at %v, end %v, want 3µs",
					joinedAt, end)
			}
			if n := e.OpenFutures(); n != 0 {
				t.Errorf("%d future(s) still open after join", n)
			}
		})
	}
}

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = toString(r)
			} else {
				t.Fatal("expected a panic")
			}
		}()
		fn()
	}()
	return msg
}

func toString(v any) string { return fmt.Sprintf("%v", v) }

// TestFuturePanicPropagation: a Fail from a pooled closure re-panics in
// the joining process, and the engine's normal panic report names that
// process — the same diagnostics path as an inline panic.
func TestFuturePanicPropagation(t *testing.T) {
	e := NewEngine()
	e.Spawn("victim", func(p *Proc) {
		f := e.NewFuture("exploding-kernel")
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() {
				if r := recover(); r != nil {
					f.Fail(r)
				}
			}()
			panic("boom in worker")
		}()
		<-done
		p.Sleep(Microsecond)
		f.Join()
		t.Error("join returned past a failed future")
	})
	msg := mustPanic(t, func() { e.Run() })
	for _, want := range []string{"victim", "exploding-kernel", "boom in worker"} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic %q does not mention %q", msg, want)
		}
	}
}

// TestFuturePanicPreservesValue: the re-panic wraps rather than flattens,
// so upstream recovery can still match the worker's original panic value —
// backend choice must not change observable failure behavior beyond the
// added kernel label.
func TestFuturePanicPreservesValue(t *testing.T) {
	type sentinel struct{ code int }
	e := NewEngine()
	var recovered any
	e.Spawn("catcher", func(p *Proc) {
		f := e.NewFuture("k")
		done := make(chan struct{})
		go func() {
			f.Fail(sentinel{code: 7})
			close(done)
		}()
		<-done
		func() {
			defer func() { recovered = recover() }()
			f.Join()
		}()
	})
	e.Run()
	fp, ok := recovered.(FuturePanic)
	if !ok {
		t.Fatalf("recovered %T, want FuturePanic", recovered)
	}
	if fp.Future != "k" || fp.Value != (sentinel{code: 7}) {
		t.Errorf("FuturePanic = %+v, want future k with original sentinel", fp)
	}
}

// TestEngineShutdownWithOutstandingFutures: Run refuses to shut down while
// join obligations remain, naming the leaked futures. An unjoined future
// is host work whose effects the simulation never ordered.
func TestEngineShutdownWithOutstandingFutures(t *testing.T) {
	e := NewEngine()
	e.Spawn("leaker", func(p *Proc) {
		e.NewFuture("orphan-b")
		e.NewFuture("orphan-a")
		p.Sleep(Microsecond)
		// Exits without joining either.
	})
	msg := mustPanic(t, func() { e.Run() })
	for _, want := range []string{"2 unjoined", "orphan-a", "orphan-b"} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic %q does not mention %q", msg, want)
		}
	}
	if n := e.OpenFutures(); n != 2 {
		t.Errorf("OpenFutures = %d, want 2", n)
	}
}
