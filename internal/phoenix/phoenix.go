// Package phoenix models the Phoenix shared-memory MapReduce runtime
// (Ranger et al., HPCA'07) that the paper uses as its CPU baseline for
// Table 2. It executes the same benchmarks functionally on the simulated
// node's CPU cores: a worker pool maps task splits in parallel, workers
// keep per-worker intermediate stores (so no cross-worker locking, as in
// Phoenix), and a merge + reduce phase produces the final pairs.
//
// Costs are charged from first principles against the paper's node (two
// dual-core 2.4 GHz Opterons): arithmetic at the cores' sustained flops,
// data passes at host memory bandwidth, and per-emission bookkeeping at
// Phoenix's measured per-pair overheads. Table 2's GPMR-vs-Phoenix ratios
// then *emerge* from the two simulations rather than being dialed in; see
// EXPERIMENTS.md for the calibration discussion.
package phoenix

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
)

// Costs describes one application's per-item CPU work.
type Costs struct {
	// MapFlops is arithmetic per input element (charged at CoreFlops).
	MapFlops float64
	// MapBytes is streaming traffic per element (charged at the node's
	// memory bandwidth, shared across cores).
	MapBytes float64
	// PerElement is Phoenix's per-item dispatch cost (the map function
	// pointer call and splitter bookkeeping per element).
	PerElement des.Time
	// EmitOverhead is Phoenix's per-emitted-pair bookkeeping time per core
	// (hash insert, buffer growth); ~60 ns on the Opterons.
	EmitOverhead des.Time
	// EmitsPerElement is the average pairs emitted per input element.
	EmitsPerElement float64
	// SortCompare enables a sort/group phase charged n·log₂n comparisons
	// at this per-comparison time (zero uses Phoenix's default hash
	// grouping, whose per-pair cost is inside EmitOverhead).
	SortCompare des.Time
	// MergePerPair is the final parallel tree-merge cost per pair
	// (~25 cycles).
	MergePerPair des.Time
	// ReducePerValue is the reduce phase's per-value time per core.
	ReducePerValue des.Time
}

// App is one Phoenix job: functional pieces plus the cost descriptor.
type App[V any] struct {
	Name     string
	Tasks    int // map task splits
	Elements int64
	Costs    Costs

	// MapTask runs task t functionally, emitting pairs.
	MapTask func(t int, emit func(k uint32, v V))
	// Reduce folds one key's values.
	Reduce func(k uint32, vals []V) V
}

// Result carries the output and the simulated wall time.
type Result[V any] struct {
	Output map[uint32]V
	Wall   des.Time
	Pairs  int64
}

// Run executes the app on a simulated node with the given core count
// (0 = all four Opteron cores, as Phoenix would use).
func Run[V any](app App[V], cores int) (*Result[V], error) {
	if app.Tasks <= 0 || app.MapTask == nil {
		return nil, fmt.Errorf("phoenix: app %q needs tasks and a map function", app.Name)
	}
	node := cluster.Accelerator()
	if cores <= 0 || cores > node.Cores {
		cores = node.Cores
	}
	eng := des.NewEngine()
	cpu := des.NewResource(eng, "cpu", node.Cores)

	perWorker := make([]map[uint32][]V, cores)
	elemsPerTask := float64(app.Elements) / float64(app.Tasks)
	taskCost := des.FromSeconds(elemsPerTask*app.Costs.MapFlops/node.CoreFlops) +
		des.FromSeconds(elemsPerTask*app.Costs.MapBytes/(node.HostMemBW/float64(cores))) +
		des.Time(elemsPerTask)*app.Costs.PerElement +
		des.Time(elemsPerTask*app.Costs.EmitsPerElement)*app.Costs.EmitOverhead

	var pairs int64
	next := 0
	for w := 0; w < cores; w++ {
		worker := w
		store := make(map[uint32][]V)
		perWorker[w] = store
		eng.Spawn(fmt.Sprintf("worker%d", worker), func(p *des.Proc) {
			for {
				if next >= app.Tasks {
					return
				}
				t := next
				next++
				cpu.Acquire(p, 1)
				app.MapTask(t, func(k uint32, v V) {
					store[k] = append(store[k], v)
					pairs++
				})
				p.Sleep(taskCost)
				cpu.Release(1)
			}
		})
	}
	mapEnd := eng.Run()

	// Post-map phases are charged on the *virtual* pair count (costs stay
	// at paper scale even when only a physical sample is materialized).
	virtPairs := int64(float64(app.Elements) * app.Costs.EmitsPerElement)
	if virtPairs < pairs {
		virtPairs = pairs
	}

	// Merge phase: parallel tree merge over all intermediate pairs.
	merged := make(map[uint32][]V)
	for _, store := range perWorker {
		for k, vs := range store {
			merged[k] = append(merged[k], vs...)
		}
	}
	mergePer := app.Costs.MergePerPair
	if mergePer == 0 {
		mergePer = 10 * des.Nanosecond
	}
	wall := mapEnd + des.Time(virtPairs)*mergePer/des.Time(cores)
	if app.Costs.SortCompare > 0 && virtPairs > 1 {
		logN := 0
		for n := virtPairs; n > 1; n >>= 1 {
			logN++
		}
		wall += des.Time(virtPairs) * des.Time(logN) * app.Costs.SortCompare / des.Time(cores)
	}

	// Reduce phase: keys split across workers.
	out := make(map[uint32]V, len(merged))
	for k, vs := range merged {
		if app.Reduce != nil {
			out[k] = app.Reduce(k, vs)
		} else if len(vs) > 0 {
			out[k] = vs[len(vs)-1]
		}
	}
	wall += des.Time(virtPairs) * app.Costs.ReducePerValue / des.Time(cores)
	return &Result[V]{Output: out, Wall: wall, Pairs: pairs}, nil
}
