package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/des"
	"repro/internal/sched"
)

// The arrival trace is the service's flight recorder: one JSON line per
// boundary event, written in the deterministic order the engine applied
// them. It records INPUTS only — arrivals and cancellations with their
// virtual times — never decisions or outputs, because every decision
// (admit, shed, quota-reject) is a pure function of the virtual state at
// the event's time. Feeding the trace back through Replay therefore
// reproduces the live run event for event: same admissions, same gangs,
// same outputs, byte for byte. See DESIGN.md, "Online serving".

// TraceVersion is the current trace format version.
const TraceVersion = 1

// Header opens a trace: everything admission depends on besides the
// events themselves, so a trace is self-contained.
type Header struct {
	Version     int            `json:"version"`
	Policy      string         `json:"policy"`
	Share       int            `json:"share,omitempty"`
	NoBackfill  bool           `json:"noBackfill,omitempty"`
	GPUs        int            `json:"gpus"`
	GPUsPerNode int            `json:"gpusPerNode"`
	MaxQueue    int            `json:"maxQueue"`
	Quota       int            `json:"quota,omitempty"`
	Quotas      map[string]int `json:"quotas,omitempty"`
	PhysBudget  int            `json:"physBudget"`
}

// Arrival is one submission crossing the service boundary, stamped with
// the virtual time the service admitted it for consideration.
type Arrival struct {
	Seq     int      `json:"seq"`
	At      des.Time `json:"at"` // virtual arrival time, ns
	Tenant  string   `json:"tenant"`
	Kind    string   `json:"kind"`
	Params  Params   `json:"params,omitempty"`
	Weight  int      `json:"weight,omitempty"`
	MinGang int      `json:"minGang,omitempty"`
}

// Cancel is one cancellation request, aimed at a previously recorded
// submission's Seq.
type Cancel struct {
	Seq int      `json:"seq"`
	At  des.Time `json:"at"`
}

// Event is one recorded boundary event; exactly one field is set.
type Event struct {
	Arrive *Arrival `json:"arrive,omitempty"`
	Cancel *Cancel  `json:"cancel,omitempty"`
}

// at returns the event's virtual time.
func (e Event) at() des.Time {
	if e.Arrive != nil {
		return e.Arrive.At
	}
	return e.Cancel.At
}

// Trace is a fully read arrival trace.
type Trace struct {
	Header Header
	Events []Event
}

// policy reconstructs the recorded admission policy.
func (h Header) policy() (sched.Policy, error) {
	k, err := sched.ParsePolicyKind(h.Policy)
	if err != nil {
		return sched.Policy{}, fmt.Errorf("serve: trace has unknown policy %q", h.Policy)
	}
	return sched.Policy{Kind: k, Share: h.Share, NoBackfill: h.NoBackfill}, nil
}

// TraceWriter streams a live run's boundary events. Write ordering is the
// engine's application ordering; the writer is engine-confined (never
// called concurrently).
type TraceWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewTraceWriter starts a trace with its header line.
func NewTraceWriter(w io.Writer, h Header) *TraceWriter {
	bw := bufio.NewWriter(w)
	tw := &TraceWriter{w: bw, enc: json.NewEncoder(bw)}
	tw.write(h)
	return tw
}

func (t *TraceWriter) write(v any) {
	if t.err == nil {
		t.err = t.enc.Encode(v)
	}
}

// Arrive records one submission.
func (t *TraceWriter) Arrive(a Arrival) { t.write(Event{Arrive: &a}) }

// Cancel records one cancellation.
func (t *TraceWriter) Cancel(c Cancel) { t.write(Event{Cancel: &c}) }

// Flush drains the buffer and returns the first error seen.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// ReadTrace parses a recorded trace, validating version, event ordering
// (times must be non-decreasing — the engine applied them that way), and
// sequence numbering.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var tr Trace
	if err := dec.Decode(&tr.Header); err != nil {
		return nil, fmt.Errorf("serve: reading trace header: %w", err)
	}
	if tr.Header.Version != TraceVersion {
		return nil, fmt.Errorf("serve: trace version %d, want %d", tr.Header.Version, TraceVersion)
	}
	var last des.Time
	nextSeq := 0
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("serve: reading trace event %d: %w", len(tr.Events), err)
		}
		switch {
		case ev.Arrive != nil && ev.Cancel != nil:
			return nil, fmt.Errorf("serve: trace event %d is both arrival and cancel", len(tr.Events))
		case ev.Arrive == nil && ev.Cancel == nil:
			return nil, fmt.Errorf("serve: trace event %d is empty", len(tr.Events))
		case ev.Arrive != nil:
			if ev.Arrive.Seq != nextSeq {
				return nil, fmt.Errorf("serve: trace arrival out of sequence: seq %d, want %d", ev.Arrive.Seq, nextSeq)
			}
			nextSeq++
		case ev.Cancel != nil:
			if ev.Cancel.Seq < 0 || ev.Cancel.Seq >= nextSeq {
				return nil, fmt.Errorf("serve: trace cancel aims at unknown seq %d", ev.Cancel.Seq)
			}
		}
		if at := ev.at(); at < last {
			return nil, fmt.Errorf("serve: trace time went backwards: %v after %v", at, last)
		} else {
			last = at
		}
		tr.Events = append(tr.Events, ev)
	}
	return &tr, nil
}
