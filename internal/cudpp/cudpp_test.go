package cudpp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/gpu"
)

func TestScanExclusive(t *testing.T) {
	src := []int64{3, 1, 4, 1, 5}
	out, total := ScanExclusive(src)
	want := []int64{0, 3, 4, 8, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d]=%d, want %d", i, out[i], want[i])
		}
	}
	if total != 14 {
		t.Errorf("total=%d", total)
	}
}

func TestScanExclusiveEmpty(t *testing.T) {
	out, total := ScanExclusive(nil)
	if len(out) != 0 || total != 0 {
		t.Errorf("empty scan: %v %d", out, total)
	}
}

func TestScanInclusive(t *testing.T) {
	out := ScanInclusive([]int64{1, 2, 3})
	want := []int64{1, 3, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d]=%d", i, out[i])
		}
	}
}

func TestPropertyScansConsistent(t *testing.T) {
	f := func(src []int64) bool {
		ex, total := ScanExclusive(src)
		in := ScanInclusive(src)
		for i := range src {
			if in[i] != ex[i]+src[i] {
				return false
			}
		}
		if len(src) > 0 && total != in[len(in)-1] {
			return false
		}
		return total == Reduce(src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompact(t *testing.T) {
	got := Compact([]string{"a", "b", "c", "d"}, []bool{true, false, false, true})
	if len(got) != 2 || got[0] != "a" || got[1] != "d" {
		t.Errorf("compact = %v", got)
	}
}

func TestSortPairsBasic(t *testing.T) {
	keys := []uint32{5, 3, 5, 1, 0xffffffff, 0}
	vals := []string{"a", "b", "c", "d", "e", "f"}
	SortPairs(keys, vals)
	wantK := []uint32{0, 1, 3, 5, 5, 0xffffffff}
	wantV := []string{"f", "d", "b", "a", "c", "e"}
	for i := range wantK {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Errorf("pos %d: (%d,%q), want (%d,%q)", i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
}

func TestSortPairsStability(t *testing.T) {
	// Equal keys must keep their original relative order.
	keys := make([]uint32, 1000)
	vals := make([]int, 1000)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = uint32(rng.Intn(10))
		vals[i] = i
	}
	SortPairs(keys, vals)
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] && vals[i] < vals[i-1] {
			t.Fatalf("instability at %d: key %d, vals %d then %d", i, keys[i], vals[i-1], vals[i])
		}
	}
}

func TestSortPairsMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SortPairs([]uint32{1, 2}, []int{1})
}

func TestPropertySortMatchesStdlib(t *testing.T) {
	f := func(raw []uint32) bool {
		keys := append([]uint32(nil), raw...)
		vals := make([]uint32, len(keys))
		copy(vals, keys)
		SortPairs(keys, vals)
		ref := append([]uint32(nil), raw...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range keys {
			if keys[i] != ref[i] || vals[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSegments(t *testing.T) {
	segs := Segments([]uint32{1, 1, 2, 5, 5, 5})
	want := []Segment{{1, 0, 2}, {2, 2, 1}, {5, 3, 3}}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments", len(segs))
	}
	for i, s := range want {
		if segs[i] != s {
			t.Errorf("seg[%d]=%+v, want %+v", i, segs[i], s)
		}
	}
}

func TestSegmentsEmpty(t *testing.T) {
	if segs := Segments(nil); segs != nil {
		t.Errorf("got %v", segs)
	}
}

func TestSegmentsUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Segments([]uint32{2, 1})
}

func TestPropertySegmentsPartition(t *testing.T) {
	// Segments must tile [0,n) exactly, with strictly increasing keys.
	f := func(raw []uint32) bool {
		keys := append([]uint32(nil), raw...)
		SortKeys(keys)
		segs := Segments(keys)
		pos := 0
		var prev uint32
		for i, s := range segs {
			if s.Start != pos || s.Count <= 0 {
				return false
			}
			if i > 0 && s.Key <= prev {
				return false
			}
			for j := s.Start; j < s.Start+s.Count; j++ {
				if keys[j] != s.Key {
					return false
				}
			}
			prev = s.Key
			pos += s.Count
		}
		return pos == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortCostCalibration(t *testing.T) {
	// GT200 radix sort of 32M 8-byte pairs should land in the 100–350 ms
	// band (Satish et al. measured ~110–240 ms depending on value size).
	pr := gpu.GT200()
	cost := SortPairsCost(pr, 32<<20, 4)
	if cost < 100*des.Millisecond || cost > 350*des.Millisecond {
		t.Errorf("32M-pair sort cost %v outside calibration band", cost)
	}
	// Cost must scale roughly linearly.
	double := SortPairsCost(pr, 64<<20, 4)
	ratio := float64(double) / float64(cost)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("sort cost scaling %.2f, want ~2", ratio)
	}
}

func TestDeviceSortOccupiesCompute(t *testing.T) {
	eng := des.NewEngine()
	link := des.NewResource(eng, "pcie", 1)
	d := gpu.NewDevice(eng, 0, gpu.GT200(), link, gpu.PCIeGen1x16())
	keys := []uint32{3, 1, 2}
	vals := []int{30, 10, 20}
	var dur des.Time
	eng.Spawn("sorter", func(p *des.Proc) {
		dur = DeviceSortPairs(p, d, keys, vals, 1<<20, 4)
	})
	end := eng.Run()
	if end != dur {
		t.Errorf("end %v != sort duration %v", end, dur)
	}
	if keys[0] != 1 || vals[0] != 10 || keys[2] != 3 || vals[2] != 30 {
		t.Errorf("sorted: %v %v", keys, vals)
	}
	if d.KernelTime != dur {
		t.Errorf("kernel time %v, want %v", d.KernelTime, dur)
	}
}

func TestDeviceSegmentsFunctional(t *testing.T) {
	eng := des.NewEngine()
	link := des.NewResource(eng, "pcie", 1)
	d := gpu.NewDevice(eng, 0, gpu.GT200(), link, gpu.PCIeGen1x16())
	var segs []Segment
	eng.Spawn("seg", func(p *des.Proc) {
		segs, _ = DeviceSegments(p, d, []uint32{7, 7, 9}, 3)
	})
	eng.Run()
	if len(segs) != 2 || segs[0].Count != 2 || segs[1].Key != 9 {
		t.Errorf("segments %v", segs)
	}
}

func BenchmarkSortPairs1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]uint32, 1<<20)
	for i := range base {
		base[i] = rng.Uint32()
	}
	keys := make([]uint32, len(base))
	vals := make([]uint32, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		copy(vals, base)
		SortPairs(keys, vals)
	}
	b.SetBytes(int64(len(base) * 8))
}
