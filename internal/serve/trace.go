package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/des"
	"repro/internal/sched"
)

// The arrival trace is the service's flight recorder: one JSON line per
// boundary event, written in the deterministic order the engine applied
// them. It records INPUTS only — arrivals and cancellations with their
// virtual times — never decisions or outputs, because every decision
// (admit, shed, quota-reject) is a pure function of the virtual state at
// the event's time. Feeding the trace back through Replay therefore
// reproduces the live run event for event: same admissions, same gangs,
// same outputs, byte for byte. See DESIGN.md, "Online serving".

// TraceVersion is the current trace format version.
const TraceVersion = 1

// Header opens a trace: everything admission depends on besides the
// events themselves, so a trace is self-contained.
type Header struct {
	Version     int            `json:"version"`
	Policy      string         `json:"policy"`
	Share       int            `json:"share,omitempty"`
	NoBackfill  bool           `json:"noBackfill,omitempty"`
	GPUs        int            `json:"gpus"`
	GPUsPerNode int            `json:"gpusPerNode"`
	MaxQueue    int            `json:"maxQueue"`
	Quota       int            `json:"quota,omitempty"`
	Quotas      map[string]int `json:"quotas,omitempty"`
	PhysBudget  int            `json:"physBudget"`

	// SLO scheduling switches (sched.Policy); omitted when off so pre-SLO
	// traces are byte-unchanged.
	Reserve bool `json:"reserve,omitempty"`
	Preempt bool `json:"preempt,omitempty"`
	Elastic bool `json:"elastic,omitempty"`

	// Shard and Epoch are the fleet header: when this daemon serves as one
	// shard of a gpmrfleet, the router's registration handshake stamps the
	// shard's identity and the ring epoch it joined at, so a directory of
	// shard traces remains a complete, deterministically mergeable record
	// of the whole multi-shard run (gpmrfleet -replay).
	Shard string `json:"shard,omitempty"`
	Epoch int    `json:"epoch,omitempty"`
}

// Arrival is one submission crossing the service boundary, stamped with
// the virtual time the service admitted it for consideration.
type Arrival struct {
	Seq     int      `json:"seq"`
	At      des.Time `json:"at"` // virtual arrival time, ns
	Tenant  string   `json:"tenant"`
	Kind    string   `json:"kind"`
	Params  Params   `json:"params,omitempty"`
	Weight  int      `json:"weight,omitempty"`
	MinGang int      `json:"minGang,omitempty"`
	// SLO fields: service class, relative deadline (ns), downgrade-on-miss
	// and elastic opt-ins. All omitted for plain submissions, keeping
	// pre-SLO traces byte-identical.
	Class     string   `json:"class,omitempty"`
	Deadline  des.Time `json:"deadline,omitempty"`
	Downgrade bool     `json:"downgrade,omitempty"`
	Elastic   bool     `json:"elastic,omitempty"`
	// Tag is the submitter's correlation handle (the fleet router keys its
	// job table on it); it passes through admission untouched.
	Tag string `json:"tag,omitempty"`
	// TraceID is the fleet-level causal correlation ID (see
	// Request.TraceID). Omitted for direct submissions, keeping pre-fleet
	// traces byte-identical.
	TraceID string `json:"traceId,omitempty"`
}

// Cancel is one cancellation request, aimed at a previously recorded
// submission's Seq.
type Cancel struct {
	Seq int      `json:"seq"`
	At  des.Time `json:"at"`
}

// Event is one recorded boundary event; exactly one field is set.
type Event struct {
	Arrive *Arrival `json:"arrive,omitempty"`
	Cancel *Cancel  `json:"cancel,omitempty"`
}

// at returns the event's virtual time.
func (e Event) at() des.Time {
	if e.Arrive != nil {
		return e.Arrive.At
	}
	return e.Cancel.At
}

// Trace is a fully read arrival trace.
type Trace struct {
	Header Header
	Events []Event
}

// policy reconstructs the recorded admission policy.
func (h Header) policy() (sched.Policy, error) {
	k, err := sched.ParsePolicyKind(h.Policy)
	if err != nil {
		return sched.Policy{}, fmt.Errorf("serve: trace has unknown policy %q", h.Policy)
	}
	return sched.Policy{Kind: k, Share: h.Share, NoBackfill: h.NoBackfill,
		Reserve: h.Reserve, Preempt: h.Preempt, Elastic: h.Elastic}, nil
}

// TraceWriter streams a live run's boundary events. Event ordering is the
// engine's application ordering (events are engine-confined); the header
// is written lazily — before the first event, or at Flush — so the fleet
// registration handshake can stamp the shard identity after the server
// has started but before any job arrives. The mutex covers that one
// cross-goroutine seam (SetFleet arrives on an HTTP goroutine).
type TraceWriter struct {
	mu       sync.Mutex
	w        *bufio.Writer
	enc      *json.Encoder
	hdr      Header
	wroteHdr bool
	err      error
}

// NewTraceWriter starts a trace; the header line is emitted before the
// first event (or at Flush, so an event-free trace is still replayable).
func NewTraceWriter(w io.Writer, h Header) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{w: bw, enc: json.NewEncoder(bw), hdr: h}
}

// SetFleet stamps the fleet header (shard identity, ring epoch at join).
// It fails once the header has been written — fleet identity must be
// settled before the first recorded event.
func (t *TraceWriter) SetFleet(shard string, epoch int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wroteHdr {
		if t.hdr.Shard == shard && t.hdr.Epoch == epoch {
			return nil
		}
		return fmt.Errorf("serve: trace header already written (shard %q epoch %d)", t.hdr.Shard, t.hdr.Epoch)
	}
	t.hdr.Shard, t.hdr.Epoch = shard, epoch
	return nil
}

// write encodes one value, emitting the header first if still pending.
// Callers hold t.mu.
func (t *TraceWriter) write(v any) {
	if !t.wroteHdr {
		t.wroteHdr = true
		if t.err == nil {
			t.err = t.enc.Encode(t.hdr)
		}
	}
	if t.err == nil {
		t.err = t.enc.Encode(v)
	}
}

// Arrive records one submission.
func (t *TraceWriter) Arrive(a Arrival) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.write(Event{Arrive: &a})
}

// Cancel records one cancellation.
func (t *TraceWriter) Cancel(c Cancel) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.write(Event{Cancel: &c})
}

// Flush writes the header if no event has, drains the buffer, and
// returns the first error seen.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wroteHdr {
		t.wroteHdr = true
		if t.err == nil {
			t.err = t.enc.Encode(t.hdr)
		}
	}
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// ReadTrace parses a recorded trace, validating version, event ordering
// (times must be non-decreasing — the engine applied them that way), and
// sequence numbering.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var tr Trace
	if err := dec.Decode(&tr.Header); err != nil {
		return nil, fmt.Errorf("serve: reading trace header: %w", err)
	}
	if tr.Header.Version != TraceVersion {
		return nil, fmt.Errorf("serve: trace version %d, want %d", tr.Header.Version, TraceVersion)
	}
	var last des.Time
	nextSeq := 0
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("serve: reading trace event %d: %w", len(tr.Events), err)
		}
		switch {
		case ev.Arrive != nil && ev.Cancel != nil:
			return nil, fmt.Errorf("serve: trace event %d is both arrival and cancel", len(tr.Events))
		case ev.Arrive == nil && ev.Cancel == nil:
			return nil, fmt.Errorf("serve: trace event %d is empty", len(tr.Events))
		case ev.Arrive != nil:
			if ev.Arrive.Seq != nextSeq {
				return nil, fmt.Errorf("serve: trace arrival out of sequence: seq %d, want %d", ev.Arrive.Seq, nextSeq)
			}
			nextSeq++
		case ev.Cancel != nil:
			if ev.Cancel.Seq < 0 || ev.Cancel.Seq >= nextSeq {
				return nil, fmt.Errorf("serve: trace cancel aims at unknown seq %d", ev.Cancel.Seq)
			}
		}
		if at := ev.at(); at < last {
			return nil, fmt.Errorf("serve: trace time went backwards: %v after %v", at, last)
		} else {
			last = at
		}
		tr.Events = append(tr.Events, ev)
	}
	return &tr, nil
}
