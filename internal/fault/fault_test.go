package fault

import (
	"strings"
	"testing"

	"repro/internal/des"
)

func TestValidateAcceptsSanePlan(t *testing.T) {
	p := &Plan{Events: []Event{
		FailAfterChunks(2, 1),
		SlowdownAt(5, 3*des.Millisecond, 8),
		FailAt(1, des.Millisecond),
	}}
	if err := p.Validate(8); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"rank out of range", Plan{Events: []Event{FailAt(8, 0)}}, "outside"},
		{"negative rank", Plan{Events: []Event{FailAt(-1, 0)}}, "outside"},
		{"double failstop", Plan{Events: []Event{FailAt(1, 0), FailAfterChunks(1, 3)}}, "twice"},
		{"factor below one", Plan{Events: []Event{SlowdownAt(0, 0, 0.5)}}, ">= 1"},
		{"negative time", Plan{Events: []Event{{Rank: 0, Kind: FailStop, At: -1}}}, "negative"},
		{"negative chunks", Plan{Events: []Event{{Rank: 0, Kind: FailStop, AfterChunks: -2}}}, "negative"},
		{"unknown kind", Plan{Events: []Event{{Rank: 0, Kind: Kind(9)}}}, "unknown kind"},
		{"all ranks fail", Plan{Events: []Event{FailAt(0, 0), FailAt(1, 0)}}, "survivor"},
	}
	for _, c := range cases {
		err := c.plan.Validate(2)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
	if !(&Plan{}).Empty() {
		t.Error("zero plan not empty")
	}
	if (&Plan{Events: []Event{FailAt(0, 0)}}).Empty() {
		t.Error("populated plan reported empty")
	}
	if err := nilPlan.Validate(4); err != nil {
		t.Errorf("nil plan failed validation: %v", err)
	}
}

func TestEventString(t *testing.T) {
	if s := FailAfterChunks(3, 2).String(); !strings.Contains(s, "r3") || !strings.Contains(s, "after 2 chunks") {
		t.Errorf("event string %q", s)
	}
	if s := SlowdownAt(1, des.Millisecond, 4).String(); !strings.Contains(s, "x4") {
		t.Errorf("straggler string %q lacks factor", s)
	}
}
