package phoenix

import (
	"strings"

	"repro/internal/apps/apputil"
	"repro/internal/des"
	"repro/internal/mph"
	"repro/internal/workload"
)

// Per-pair and per-value constants for the 2.4 GHz Opterons, from
// Phoenix's published per-operation overheads (hash insert + buffer
// management ≈ 140 cycles; value visits ≈ 35 cycles).
const (
	emitOverhead   = 60 * des.Nanosecond
	reducePerValue = 15 * des.Nanosecond
)

// SIO is the Phoenix Sparse Integer Occurrence app over virtual `elements`
// integers (physical data capped at physMax).
func SIO(elements int64, physMax int, seed uint64) (App[uint32], []uint32) {
	sc := apputil.PlanScale(elements, physMax)
	data := workload.SparseInts(seed, sc.PhysElems)
	tasks := 64
	offs := workload.SplitEven(len(data), tasks)
	app := App[uint32]{
		Name:     "sio",
		Tasks:    tasks,
		Elements: sc.VirtElems,
		Costs: Costs{
			MapFlops:        4,
			MapBytes:        4,
			EmitOverhead:    emitOverhead, // hash-table insert per integer
			EmitsPerElement: 1,
			ReducePerValue:  reducePerValue,
		},
		MapTask: func(t int, emit func(uint32, uint32)) {
			for _, v := range data[offs[t]:offs[t+1]] {
				emit(v, 1)
			}
		},
		Reduce: func(_ uint32, vals []uint32) uint32 {
			var s uint32
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
	return app, data
}

// WO is the Phoenix Word Occurrence app over a virtual `bytes`-sized corpus.
// Unlike GPMR, Phoenix hashes raw string keys and keeps per-worker hash
// tables; words emit one pair each.
func WO(bytes int64, physMax int, dictSize int, seed uint64) (App[uint32], []string, *mph.Table) {
	if dictSize <= 0 {
		dictSize = workload.DictionarySize
	}
	dict := workload.Dictionary(seed, dictSize)
	table, err := mph.Build(dict)
	if err != nil {
		panic("phoenix: " + err.Error())
	}
	sc := apputil.PlanScale(bytes, physMax)
	lines := workload.Text(seed+1, dict, sc.PhysElems)
	tasks := 64
	offs := workload.SplitEven(len(lines), tasks)
	app := App[uint32]{
		Name:     "wo",
		Tasks:    tasks,
		Elements: sc.VirtElems, // element = one corpus byte
		Costs: Costs{
			MapFlops:        12, // scan + hash per byte
			MapBytes:        1,
			EmitOverhead:    150 * des.Nanosecond, // string key: strtok+hash+compare+copy
			EmitsPerElement: 1.0 / 7.8,            // mean word+separator length
			ReducePerValue:  reducePerValue,
		},
		MapTask: func(t int, emit func(uint32, uint32)) {
			for _, ln := range lines[offs[t]:offs[t+1]] {
				for _, w := range strings.Fields(ln) {
					emit(table.Lookup(w), 1)
				}
			}
		},
		Reduce: func(_ uint32, vals []uint32) uint32 {
			var s uint32
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
	return app, lines, table
}

// KMC is the Phoenix K-Means app: the classic CPU formulation emits
// ⟨closest-center, point⟩ for every point, so the intermediate state is
// the whole dataset.
func KMC(points int64, physMax, centers, dim int, seed uint64) (App[float64], []float32, [][]float32) {
	sc := apputil.PlanScale(points, physMax)
	pts := workload.Points(seed, sc.PhysElems, dim)
	ctrs := make([][]float32, centers)
	crng := workload.NewRNG(seed + 7)
	for i := range ctrs {
		c := make([]float32, dim)
		for d := range c {
			c[d] = crng.Float32() * 100
		}
		ctrs[i] = c
	}
	tasks := 64
	offs := workload.SplitEven(sc.PhysElems, tasks)
	scale := float64(sc.Factor)
	app := App[float64]{
		Name:     "kmc",
		Tasks:    tasks,
		Elements: sc.VirtElems,
		Costs: Costs{
			// The distance loop vectorizes cleanly with SSE (4-wide singles).
			MapFlops:        float64(3*dim*centers+dim) / 4,
			MapBytes:        float64(dim * 4),
			EmitOverhead:    30*des.Nanosecond + des.FromSeconds(float64(dim*4)/2.5e9), // array slot + point copy
			EmitsPerElement: 1,                                                         // one <center, point> pair per point
			ReducePerValue:  reducePerValue,
		},
		MapTask: func(t int, emit func(uint32, float64)) {
			for i := offs[t]; i < offs[t+1]; i++ {
				pt := pts[i*dim : (i+1)*dim]
				best, bestD := 0, float32(0)
				for ci, ctr := range ctrs {
					var d float32
					for d2 := 0; d2 < dim; d2++ {
						diff := pt[d2] - ctr[d2]
						d += diff * diff
					}
					if ci == 0 || d < bestD {
						best, bestD = ci, d
					}
				}
				for d2 := 0; d2 < dim; d2++ {
					emit(uint32(best*(dim+1)+d2), float64(pt[d2])*scale)
				}
				emit(uint32(best*(dim+1)+dim), scale)
			}
		},
		Reduce: func(_ uint32, vals []float64) float64 {
			var s float64
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
	return app, pts, ctrs
}

// LR is the Phoenix Linear Regression app: maps compute per-task partial
// sums (Phoenix's distributed implementation) and emit six keys per task.
func LR(points int64, physMax int, seed uint64, a, b, noise float64) (App[float64], []float64) {
	sc := apputil.PlanScale(points, physMax)
	xy := workload.XYPairs(seed, sc.PhysElems, a, b, noise)
	tasks := 64
	offs := workload.SplitEven(sc.PhysElems, tasks)
	scale := float64(sc.Factor)
	app := App[float64]{
		Name:     "lr",
		Tasks:    tasks,
		Elements: sc.VirtElems,
		Costs: Costs{
			MapFlops:        10,
			MapBytes:        8,
			PerElement:      2 * des.Nanosecond, // map fn-pointer call per point
			EmitOverhead:    emitOverhead,
			EmitsPerElement: 6.0 / (float64(sc.VirtElems) / float64(tasks)),
			ReducePerValue:  reducePerValue,
		},
		MapTask: func(t int, emit func(uint32, float64)) {
			var n, sx, sy, sxx, sxy, syy float64
			for i := offs[t]; i < offs[t+1]; i++ {
				x, y := xy[2*i], xy[2*i+1]
				n++
				sx += x
				sy += y
				sxx += x * x
				sxy += x * y
				syy += y * y
			}
			emit(0, n*scale)
			emit(1, sx*scale)
			emit(2, sy*scale)
			emit(3, sxx*scale)
			emit(4, sxy*scale)
			emit(5, syy*scale)
		},
		Reduce: func(_ uint32, vals []float64) float64 {
			var s float64
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
	return app, xy
}

// MM is the Phoenix Matrix Multiplication app: the common CPU MapReduce
// formulation with one vector–vector product per output element. Column
// accesses stride through B, costing ~8× effective bandwidth — the reason
// the paper measured almost twenty seconds for a 1024² multiply.
func MM(dim int64, physDim int, seed uint64) (App[float64], []float32, []float32, int) {
	if physDim <= 0 || int64(physDim) > dim {
		physDim = 64
	}
	a := workload.Matrix(seed, physDim)
	b := workload.Matrix(seed+1, physDim)
	tasks := 64
	rows := workload.SplitEven(physDim, tasks)
	app := App[float64]{
		Name:     "mm",
		Tasks:    tasks,
		Elements: dim * dim, // element = one output cell
		Costs: Costs{
			MapFlops:        float64(2 * dim),
			MapBytes:        float64(dim * 4 * 8), // strided column reads
			EmitOverhead:    emitOverhead,
			EmitsPerElement: 1,
			ReducePerValue:  reducePerValue,
		},
		MapTask: func(t int, emit func(uint32, float64)) {
			for i := rows[t]; i < rows[t+1]; i++ {
				for j := 0; j < physDim; j++ {
					var s float64
					for k := 0; k < physDim; k++ {
						s += float64(a[i*physDim+k]) * float64(b[k*physDim+j])
					}
					emit(uint32(i*physDim+j), s)
				}
			}
		},
		Reduce: nil, // identity: one value per key
	}
	return app, a, b, physDim
}
