package serve

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
)

// ErrNoRecorder reports a timeline request against a server started
// without a flight recorder (Config.Cluster.Obs unset).
var ErrNoRecorder = fmt.Errorf("serve: no flight recorder configured")

// WriteTimeline renders one job's slice of the flight-recorder trace as
// Chrome trace-event JSON (load in Perfetto or chrome://tracing): its
// serve lifecycle stream, its scheduler stream, and its per-rank phase
// streams. Safe from any goroutine; the recorder snapshots events
// emitted so far, so a running job yields a partial timeline.
func (sv *Server) WriteTimeline(w io.Writer, id int) error {
	info, ok := sv.Job(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return sv.ses.writeTimeline(w, info.Name)
}

// writeTimeline is the session half, shared with replay-driven tests.
func (ses *session) writeTimeline(w io.Writer, name string) error {
	r := ses.cl.Obs
	if !r.Enabled() {
		return ErrNoRecorder
	}
	return r.WriteChromeFiltered(w, func(stream string) bool {
		return stream == "serve/"+name || stream == "sched/"+name ||
			strings.HasPrefix(stream, name+"/r")
	})
}

// WriteTrace renders the full flight-recorder trace: every stream, as
// Chrome trace-event JSON.
func (sv *Server) WriteTrace(w io.Writer) error {
	r := sv.ses.cl.Obs
	if !r.Enabled() {
		return ErrNoRecorder
	}
	return r.WriteChrome(w)
}

// Recorder exposes the server's flight recorder (nil when not
// configured), for exports beyond the built-in endpoints.
func (sv *Server) Recorder() *obs.Recorder { return sv.ses.cl.Obs }
