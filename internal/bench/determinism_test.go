package bench

import (
	"testing"

	"repro/internal/apps/kmc"
	"repro/internal/apps/sio"
	"repro/internal/apps/wo"
	"repro/internal/core"
)

// TestGoldenTraceDeterminism runs the same seeded job twice in one process
// and diffs the rendered traces exactly: the simulation is a pure function
// of its inputs, so timings, byte counts, steal provenance — every line of
// Trace.String() — must match bit for bit. (The multijob analogue lives in
// multijob_test.go: two runs of the arrival stream must render identical
// cluster traces.)
func TestGoldenTraceDeterminism(t *testing.T) {
	builders := []struct {
		name string
		run  func() *core.Trace
	}{
		{"wo", func() *core.Trace {
			b := wo.NewJob(wo.Params{Bytes: 4 << 20, GPUs: 4, Seed: 2, PhysMax: 1 << 14, DictSize: 1000, ChunkCap: 1 << 18})
			return b.Job.MustRun().Trace
		}},
		{"sio", func() *core.Trace {
			job, _ := sio.NewJob(sio.Params{Elements: 4 << 20, GPUs: 4, Seed: 2, PhysMax: 1 << 14, ChunkCap: 1 << 19})
			// Skewed placement so the steal paths are inside the diff too.
			job.Assign = func(int) int { return 0 }
			return job.MustRun().Trace
		}},
		{"kmc", func() *core.Trace {
			b := kmc.NewJob(kmc.Params{Points: 4 << 20, GPUs: 4, Seed: 2, PhysMax: 1 << 12})
			return b.Job.MustRun().Trace
		}},
	}
	for _, tc := range builders {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.run().String(), tc.run().String()
			if a != b {
				t.Errorf("two runs of the same seeded job rendered different traces:\n--- run 1\n%s\n--- run 2\n%s", a, b)
			}
		})
	}
}
