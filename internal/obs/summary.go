package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Summary is the post-processed view of a canonical event set: how long
// the run took, how busy each timeline was, the latency distribution of
// each span kind, and the chain of spans on the critical path.
type Summary struct {
	MakespanNs int64
	Streams    []StreamUtil
	Phases     []PhaseStats
	Critical   CriticalPath
}

// StreamUtil is one timeline's busy time (union of its spans) and its
// utilization over the makespan.
type StreamUtil struct {
	Stream string
	BusyNs int64
	Util   float64
}

// PhaseStats aggregates all spans of one kind.
type PhaseStats struct {
	Kind    string
	Count   int
	TotalNs int64
	P50Ns   int64
	P95Ns   int64
	P99Ns   int64
}

// CriticalPath is the span chain of the stream that finishes last — the
// timeline an end-to-end speedup must shorten.
type CriticalPath struct {
	Stream string
	EndNs  int64
	Steps  []CPStep
}

// CPStep is one span on the critical path.
type CPStep struct {
	Kind    string
	StartNs int64
	DurNs   int64
}

// Summarize computes utilization, per-kind span latency percentiles
// (nearest-rank), and the critical path for a canonical event set.
func Summarize(evs []Event) Summary {
	var s Summary
	perStream := make(map[string][]Event)
	perKind := make(map[string][]int64)
	var lastEnd int64
	lastStream := ""
	for _, e := range evs {
		if end := e.End(); end > lastEnd || (end == lastEnd && lastStream == "") {
			lastEnd = end
			lastStream = e.Stream
		}
		if e.Dur > 0 {
			perStream[e.Stream] = append(perStream[e.Stream], e)
			perKind[e.Kind] = append(perKind[e.Kind], e.Dur)
		}
	}
	s.MakespanNs = lastEnd

	streams := make([]string, 0, len(perStream))
	for st := range perStream {
		streams = append(streams, st)
	}
	sort.Strings(streams)
	for _, st := range streams {
		busy := busyTime(perStream[st])
		u := StreamUtil{Stream: st, BusyNs: busy}
		if s.MakespanNs > 0 {
			u.Util = float64(busy) / float64(s.MakespanNs)
		}
		s.Streams = append(s.Streams, u)
	}

	kinds := make([]string, 0, len(perKind))
	for k := range perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		durs := perKind[k]
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		var total int64
		for _, d := range durs {
			total += d
		}
		s.Phases = append(s.Phases, PhaseStats{
			Kind:    k,
			Count:   len(durs),
			TotalNs: total,
			P50Ns:   percentile(durs, 50),
			P95Ns:   percentile(durs, 95),
			P99Ns:   percentile(durs, 99),
		})
	}

	if lastStream != "" {
		s.Critical.Stream = lastStream
		s.Critical.EndNs = lastEnd
		for _, e := range perStream[lastStream] {
			s.Critical.Steps = append(s.Critical.Steps, CPStep{Kind: e.Kind, StartNs: e.T, DurNs: e.Dur})
		}
	}
	return s
}

// busyTime returns the total length of the union of the spans' intervals
// (overlaps counted once). evs is in canonical order, so starts ascend.
func busyTime(evs []Event) int64 {
	var busy int64
	var curStart, curEnd int64
	open := false
	for _, e := range evs {
		if !open {
			curStart, curEnd, open = e.T, e.End(), true
			continue
		}
		if e.T > curEnd {
			busy += curEnd - curStart
			curStart, curEnd = e.T, e.End()
		} else if e.End() > curEnd {
			curEnd = e.End()
		}
	}
	if open {
		busy += curEnd - curStart
	}
	return busy
}

// percentile returns the nearest-rank p-th percentile of sorted durations.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders the summary as a fixed-format human-readable report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.3fms\n", float64(s.MakespanNs)/1e6)
	for _, u := range s.Streams {
		fmt.Fprintf(&b, "stream %-24s busy %.3fms util %.1f%%\n", u.Stream, float64(u.BusyNs)/1e6, u.Util*100)
	}
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "phase %-16s n=%d total %.3fms p50 %.3fms p95 %.3fms p99 %.3fms\n",
			p.Kind, p.Count, float64(p.TotalNs)/1e6, float64(p.P50Ns)/1e6, float64(p.P95Ns)/1e6, float64(p.P99Ns)/1e6)
	}
	fmt.Fprintf(&b, "critical path: %s ends %.3fms (%d steps)\n", s.Critical.Stream, float64(s.Critical.EndNs)/1e6, len(s.Critical.Steps))
	return b.String()
}
