package gpu

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/des"
)

// launchSchedule runs a fixed two-process kernel workload on the given
// backend and returns the observable outcome: each kernel's completion
// time and the closures' computed values.
func launchSchedule(t *testing.T, b Backend) string {
	t.Helper()
	defer b.Close()
	eng := des.NewEngine()
	link := des.NewResource(eng, "pcie", 1)
	var log []string
	for gi := 0; gi < 2; gi++ {
		dev := NewDevice(eng, gi, GT200(), link, PCIeGen2x16())
		dev.SetBackend(b)
		eng.Spawn(fmt.Sprintf("g%d", gi), func(p *des.Proc) {
			sum := 0
			for k := 0; k < 3; k++ {
				n := (gi + 1) * (k + 1) * 1000
				dev.Launch(p, KernelSpec{Name: "t", Threads: int64(n), FlopsPerThread: 2}, func() {
					for i := 0; i < n; i++ {
						sum += i
					}
				})
				log = append(log, fmt.Sprintf("g%d k%d t=%v sum=%d", gi, k, p.Now(), sum))
			}
		})
	}
	eng.Run()
	return strings.Join(log, "\n")
}

// TestBackendScheduleInvariance: the DES schedule and every closure
// effect are identical whether kernels run inline or on a pool — the
// backend contract the differential matrix holds the full pipeline to.
func TestBackendScheduleInvariance(t *testing.T) {
	want := launchSchedule(t, Serial{})
	for _, workers := range []int{1, 4} {
		if got := launchSchedule(t, NewPool(workers)); got != want {
			t.Errorf("pool(%d) schedule diverged from serial:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestPoolLaunchPanicPropagates: a panic inside a pooled kernel closure
// surfaces through the engine's normal process-panic report, naming the
// kernel.
func TestPoolLaunchPanicPropagates(t *testing.T) {
	b := NewPool(2)
	defer b.Close()
	eng := des.NewEngine()
	link := des.NewResource(eng, "pcie", 1)
	dev := NewDevice(eng, 0, GT200(), link, PCIeGen2x16())
	dev.SetBackend(b)
	eng.Spawn("g0", func(p *des.Proc) {
		dev.Launch(p, KernelSpec{Name: "bad.kernel", Threads: 64}, func() {
			panic("kernel exploded")
		})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected engine panic")
		}
		msg := fmt.Sprintf("%v", r)
		for _, want := range []string{"g0", "bad.kernel", "kernel exploded"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q does not mention %q", msg, want)
			}
		}
	}()
	eng.Run()
}

// TestNewBackendMapping pins the worker-count knob decoding shared by
// core.Config.Workers, cluster.Config.Workers, and gpmrbench -workers.
func TestNewBackendMapping(t *testing.T) {
	if got := NewBackend(0).String(); got != "serial" {
		t.Errorf("NewBackend(0) = %s, want serial", got)
	}
	b3 := NewBackend(3)
	defer b3.Close()
	if got := b3.String(); got != "pool(3)" {
		t.Errorf("NewBackend(3) = %s, want pool(3)", got)
	}
	ball := NewBackend(-1)
	defer ball.Close()
	if got, want := ball.String(), fmt.Sprintf("pool(%d)", runtime.GOMAXPROCS(0)); got != want {
		t.Errorf("NewBackend(-1) = %s, want %s", got, want)
	}
}

// TestPoolCloseIdempotent: Close twice is safe (cluster teardown paths may
// overlap with deferred closes).
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}
