package core

import (
	"repro/internal/des"
)

// StealPolicy selects how a starved rank picks the victim queue when the
// dynamic work queues shift a chunk for load balance.
type StealPolicy int

const (
	// StealGlobal shifts from the globally fullest queue, ignoring node
	// topology (the paper's behaviour).
	StealGlobal StealPolicy = iota
	// StealLocalFirst prefers the fullest queue on the thief's own node —
	// an intra-node shift is a host-memory copy that leaves both NICs
	// free — and crosses the node boundary only when the whole node is
	// dry. See DESIGN.md, "Locality-aware chunk stealing".
	StealLocalFirst
)

// String names the policy for traces and benchmark reports.
func (p StealPolicy) String() string {
	switch p {
	case StealGlobal:
		return "global"
	case StealLocalFirst:
		return "localfirst"
	}
	return "unknown"
}

// nodeScope restricts victim selection relative to the thief's node.
type nodeScope int

const (
	anyNode nodeScope = iota
	sameNodeOnly
	otherNodeOnly
)

// chunkState tracks one chunk through the resilient scheduler.
type chunkState int8

const (
	chunkQueued  chunkState = iota
	chunkRunning            // assigned to a rank, shuffle output not yet delivered
	chunkDone               // some copy's output fully handed to the fabric
)

// assignment is one chunk handed to a rank by next().
type assignment struct {
	chunk Chunk
	idx   int
	// stolenFrom is the victim rank when the chunk was shifted from
	// another queue for load balance, else -1.
	stolenFrom int
	// recoveredFrom is the failed rank whose loss requeued this chunk,
	// else -1. The re-fetch of the chunk's input was charged against the
	// failed rank's node (host memory survives a GPU failure).
	recoveredFrom int
	// speculative marks a backup copy of a chunk still running elsewhere.
	speculative bool
}

// scheduler implements GPMR's dynamic work queues: each GPU pulls chunks
// from its local queue, and when a queue runs dry while others still have
// work, a chunk is shifted from a victim queue — charging the chunk's
// serialized transfer over the fabric, which is why chunks must be
// serializable in GPMR. Victim selection is policy-driven: the fabric's
// node topology tells the scheduler which shifts stay on-node (cheap
// host-memory copies) and which occupy NICs.
//
// In resilient mode (fault injection or speculation enabled) the
// scheduler additionally tracks each chunk to delivery: a rank that finds
// every queue empty parks until all chunks are delivered — because a
// failure may yet requeue lost chunks to it — or, with speculation on,
// launches a backup copy of a chunk still running elsewhere. The first
// copy of a chunk to deliver its shuffle output wins (complete); the
// scheduler tells later copies they lost so their output is discarded.
type scheduler struct {
	chunks   []Chunk
	queues   [][]int // chunk indices per rank
	g        *gang
	policy   StealPolicy
	minQueue int // victims should hold at least this many chunks

	resilient bool
	speculate bool
	// derateOf exposes each rank's current straggler factor (1 =
	// nominal), standing in for the progress-based straggler detector a
	// real speculation policy runs: backups launch only where they can
	// actually overtake the primary.
	derateOf  func(rank int) float64
	state     []chunkState
	runner    []int  // current primary executor per chunk (-1 = none)
	backup    []int  // speculative backup rank per chunk (-1 = none)
	recovered []int  // failed rank whose loss requeued the chunk (-1 = none)
	failed    []bool // per-rank fail-stop flags
	done      int
	cond      *des.Cond // starved ranks park here awaiting requeue/completion

	// stopped quiesces the queues for checkpoint-preemption: next hands
	// out no more chunks, so every rank finishes its in-flight chunk and
	// drains the normal end-of-map → shuffle → reduce tail.
	stopped bool
}

// newScheduler distributes chunks round-robin across ranks; assign may
// override the initial placement (used by tests and benchmarks to create
// imbalance and by apps with locality preferences). The gang supplies
// the node topology that StealLocalFirst consults; eng hosts the
// condition starved ranks park on in resilient mode.
func newScheduler(eng *des.Engine, chunks []Chunk, cfg Config, g *gang, assign func(chunk int) int) *scheduler {
	s := &scheduler{
		chunks:    chunks,
		queues:    make([][]int, cfg.GPUs),
		g:         g,
		policy:    cfg.StealPolicy,
		minQueue:  cfg.StealMinQueue,
		resilient: cfg.resilient(),
		speculate: cfg.Speculate,
		state:     make([]chunkState, len(chunks)),
		runner:    make([]int, len(chunks)),
		backup:    make([]int, len(chunks)),
		recovered: make([]int, len(chunks)),
		failed:    make([]bool, cfg.GPUs),
		cond:      des.NewCond(eng),
	}
	for i := range chunks {
		s.runner[i] = -1
		s.backup[i] = -1
		s.recovered[i] = -1
		r := i % cfg.GPUs
		if assign != nil {
			// Wrap placements written for the requested GPU count into the
			// granted gang (a scheduler may shrink the gang below request).
			r = assign(i) % cfg.GPUs
		}
		s.queues[r] = append(s.queues[r], i)
	}
	return s
}

// next returns the rank's next assignment, shifting one from a victim
// queue when the local queue is empty. ok=false means the rank will never
// receive more work (global exhaustion, or the rank itself has failed).
// In resilient mode the call may park until the outcome is decided.
func (s *scheduler) next(p *des.Proc, rank int) (assignment, bool) {
	for {
		if s.stopped || s.failed[rank] {
			return assignment{}, false
		}
		if idx, ok := s.popHead(rank); ok {
			// Mark before the (blocking) re-fetch so a failure of this
			// rank mid-transfer still sees the chunk as its work and
			// requeues it.
			s.markRunning(idx, rank)
			if from := s.recovered[idx]; from >= 0 {
				// Lost-chunk re-fetch: the input lives in the failed
				// rank's host memory; charge the same transfer a steal
				// would.
				s.g.transfer(p, from, rank, s.chunks[idx].VirtBytes())
			}
			return assignment{chunk: s.chunks[idx], idx: idx, stolenFrom: -1, recoveredFrom: s.recovered[idx]}, true
		}
		if victim := s.pickVictimByPolicy(rank); victim >= 0 {
			if idx, ok := s.popTail(victim); ok {
				src := victim
				if s.recovered[idx] >= 0 {
					src = s.recovered[idx] // data still sits on the failed node
				}
				s.markRunning(idx, rank)
				s.g.transfer(p, src, rank, s.chunks[idx].VirtBytes())
				return assignment{chunk: s.chunks[idx], idx: idx, stolenFrom: victim, recoveredFrom: s.recovered[idx]}, true
			}
			continue // victim queue held only delivered chunks; re-scan
		}
		if !s.resilient || s.done == len(s.chunks) {
			return assignment{}, false
		}
		if s.speculate {
			if idx := s.pickBackup(rank); idx >= 0 {
				s.backup[idx] = rank
				s.g.transfer(p, s.runner[idx], rank, s.chunks[idx].VirtBytes())
				return assignment{chunk: s.chunks[idx], idx: idx, stolenFrom: -1, recoveredFrom: -1, speculative: true}, true
			}
		}
		// Work may yet appear (a failure requeues lost chunks) or the
		// last running chunks may complete: park until the state moves.
		s.cond.Wait(p)
	}
}

// popHead takes the rank's next queued, undelivered chunk.
func (s *scheduler) popHead(rank int) (int, bool) {
	q := s.queues[rank]
	for len(q) > 0 {
		idx := q[0]
		q = q[1:]
		if s.state[idx] == chunkDone {
			continue // delivered while requeued; nothing left to run
		}
		s.queues[rank] = q
		return idx, true
	}
	s.queues[rank] = q
	return -1, false
}

// popTail takes the victim's last queued, undelivered chunk (the victim
// keeps the prefix it will pull next).
func (s *scheduler) popTail(victim int) (int, bool) {
	q := s.queues[victim]
	for len(q) > 0 {
		idx := q[len(q)-1]
		q = q[:len(q)-1]
		if s.state[idx] == chunkDone {
			continue
		}
		s.queues[victim] = q
		return idx, true
	}
	s.queues[victim] = q
	return -1, false
}

func (s *scheduler) markRunning(idx, rank int) {
	s.state[idx] = chunkRunning
	s.runner[idx] = rank
}

// pickVictimByPolicy applies the steal policy's tiers to choose a victim
// queue, or -1 when every queue is empty.
func (s *scheduler) pickVictimByPolicy(rank int) int {
	victim := -1
	switch s.policy {
	case StealLocalFirst:
		// The threshold defines "dry": a node whose queues are all below
		// minQueue is crossed away from rather than robbed of stragglers
		// its owners will finish on their own. Only when no queue
		// anywhere meets the threshold does the final tier take the
		// fullest non-empty queue, local before remote — better one
		// shift than an idle GPU.
		if victim = s.pickVictim(rank, sameNodeOnly, s.minQueue); victim < 0 {
			victim = s.pickVictim(rank, otherNodeOnly, s.minQueue)
		}
		if victim < 0 {
			if victim = s.pickVictim(rank, sameNodeOnly, 1); victim < 0 {
				victim = s.pickVictim(rank, otherNodeOnly, 1)
			}
		}
	default:
		if victim = s.pickVictim(rank, anyNode, s.minQueue); victim < 0 {
			victim = s.pickVictim(rank, anyNode, 1)
		}
	}
	return victim
}

// pickBackup selects the lowest-indexed chunk still running on a rank
// strictly slower than the thief, with no backup yet — the tail chunk a
// straggler is sitting on once every queue is empty. The strictness
// matters twice: a slow rank must not burn its (and the job's) time
// backing up healthy peers, and equal-speed backups would lose the race
// to the earlier-started primary while delaying the thief's own
// end-of-map declaration.
func (s *scheduler) pickBackup(rank int) int {
	mine := s.rankDerate(rank)
	for idx := range s.chunks {
		if s.state[idx] == chunkRunning && s.runner[idx] != rank && s.backup[idx] < 0 &&
			s.rankDerate(s.runner[idx]) > mine {
			return idx
		}
	}
	return -1
}

func (s *scheduler) rankDerate(rank int) float64 {
	if s.derateOf == nil {
		return 1
	}
	return s.derateOf(rank)
}

// complete records that rank finished delivering chunk idx's shuffle
// output. It reports whether this copy won — false when a speculative
// twin (or the pre-failure original) delivered first, in which case the
// caller must discard its output.
func (s *scheduler) complete(idx, rank int) bool {
	if !s.resilient {
		return true
	}
	if s.state[idx] == chunkDone {
		return false
	}
	s.state[idx] = chunkDone
	s.runner[idx] = rank
	s.done++
	s.cond.Broadcast()
	return true
}

// isDone reports whether some copy of the chunk already delivered; a rank
// holding another copy abandons it without mapping.
func (s *scheduler) isDone(idx int) bool { return s.state[idx] == chunkDone }

// quiesce stops the dynamic queues at the next chunk boundary: ranks
// already mapping a chunk finish it (its shuffle output is delivered and
// reduced as usual), everyone else gets no more work, and the job drains
// through its normal end-of-map tail. Parked resilient ranks are woken so
// they can observe the stop.
func (s *scheduler) quiesce() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.cond.Broadcast()
}

// fail marks rank f dead and requeues its lost work: everything still
// queued to it plus every undelivered chunk it was running (device-
// resident state died with the GPU). Requeued chunks spread round-robin
// over the survivors and are tagged with their recovery source so pulls
// charge the re-fetch. A chunk whose speculative backup is still alive is
// not requeued — the backup carries on as primary.
func (s *scheduler) fail(f int) {
	if s.failed[f] {
		return
	}
	s.failed[f] = true
	var lost []int
	for _, idx := range s.queues[f] {
		if s.state[idx] != chunkDone {
			lost = append(lost, idx)
		}
	}
	s.queues[f] = nil
	for idx := range s.chunks {
		if s.backup[idx] == f {
			s.backup[idx] = -1
		}
		if s.state[idx] == chunkRunning && s.runner[idx] == f {
			if b := s.backup[idx]; b >= 0 {
				s.runner[idx] = b
				s.backup[idx] = -1
				continue
			}
			lost = append(lost, idx)
		}
	}
	var live []int
	for r := range s.failed {
		if !s.failed[r] {
			live = append(live, r)
		}
	}
	for i, idx := range lost {
		s.state[idx] = chunkQueued
		s.runner[idx] = -1
		s.recovered[idx] = f
		r := live[i%len(live)]
		s.queues[r] = append(s.queues[r], idx)
	}
	s.cond.Broadcast()
}

// pickVictim returns the in-scope rank with the fullest queue holding at
// least minLen chunks, or -1 when none does.
func (s *scheduler) pickVictim(thief int, scope nodeScope, minLen int) int {
	victim, best := -1, minLen-1
	for r, q := range s.queues {
		if s.inScope(thief, r, scope) && len(q) > best {
			victim, best = r, len(q)
		}
	}
	return victim
}

// inScope reports whether rank r is an eligible victim for the thief under
// the given node scope.
func (s *scheduler) inScope(thief, r int, scope nodeScope) bool {
	switch scope {
	case sameNodeOnly:
		return s.g.sameNode(thief, r)
	case otherNodeOnly:
		return !s.g.sameNode(thief, r)
	}
	return true
}

// remaining reports how many chunks are still queued anywhere.
func (s *scheduler) remaining() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}
