// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6): Figure 2's runtime breakdowns, Figure 3's
// parallel-efficiency curves, Table 1's dataset matrix, Table 2's
// GPMR-vs-Phoenix speedups, Table 3's GPMR-vs-Mars speedups, and Table 4's
// lines-of-code comparison — plus the weak-scaling runs the paper mentions
// and the ablations it argues qualitatively (Accumulation on/off, SIO's
// rejected Combine/Partial-Reduce, the WO partitioner crossover, and the
// GPUDirect future-work wish).
//
// All results come from the same simulated-time domain; see DESIGN.md for
// the calibration argument and EXPERIMENTS.md for paper-vs-measured.
package bench

import (
	"fmt"

	"repro/internal/apps/kmc"
	"repro/internal/apps/lr"
	"repro/internal/apps/mm"
	"repro/internal/apps/sio"
	"repro/internal/apps/wo"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
)

// Options tunes harness fidelity against host wall-clock time.
type Options struct {
	// PhysBudget caps materialized elements per run. Larger is more
	// faithful functionally but slower; costs are unaffected (virtual
	// counts stay at paper scale). Default 1<<16.
	PhysBudget int
	// GPUCounts for scaling curves. Default {1, 4, 8, 16, 32, 64}, the
	// x-axis of Figure 3.
	GPUCounts []int
	// Seed for workload generation.
	Seed uint64
	// Workers selects the kernel-execution backend for every experiment's
	// jobs (see core.Config.Workers): 0 = serial, n >= 1 = pool(n),
	// negative = pool(GOMAXPROCS). Results are byte-identical across
	// backends; only harness wall-clock changes.
	Workers int
	// Shards selects the DES engine sharding for every experiment's runs
	// (see cluster.Config.Shards): 0 = legacy single engine, n >= 1 = a
	// ShardSet of n engines, negative = one per node plus the hub.
	Shards int
	// Obs, when set, records every run's flight-recorder trace (see
	// internal/obs). Recording does not perturb results: all rendered
	// output is byte-identical with and without it.
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.PhysBudget <= 0 {
		o.PhysBudget = 1 << 16
	}
	if len(o.GPUCounts) == 0 {
		o.GPUCounts = []int{1, 4, 8, 16, 32, 64}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Benchmarks lists the five apps in the paper's order.
var Benchmarks = []string{"mm", "sio", "wo", "kmc", "lr"}

// Run executes one GPMR benchmark at the given virtual size and GPU count,
// returning the wall time and (for the two-job MM, the combined) trace.
// Size units: MM matrix edge; WO corpus bytes; others element counts.
func Run(benchName string, size int64, gpus int, o Options) (des.Time, *core.Trace, error) {
	o = o.withDefaults()
	switch benchName {
	case "mm":
		b, err := mm.New(mm.Params{Dim: size, GPUs: gpus, Seed: o.Seed})
		if err != nil {
			return 0, nil, err
		}
		b.Job1.Config.Workers = o.Workers
		b.Job1.Config.Shards = o.Shards
		b.Job1.Config.Obs = o.Obs
		_, tr1, tr2, err := b.Run()
		if err != nil {
			return 0, nil, err
		}
		// Combine the two jobs into one trace for reporting.
		tr := &core.Trace{Name: "mm", GPUs: gpus, Wall: tr1.Wall + tr2.Wall,
			WireBytes: tr1.WireBytes + tr2.WireBytes, LocalBytes: tr1.LocalBytes + tr2.LocalBytes}
		for i := range tr1.Ranks {
			r := tr1.Ranks[i]
			r.Add(tr2.Ranks[i])
			tr.Ranks = append(tr.Ranks, r)
		}
		return tr.Wall, tr, nil
	case "sio":
		job, _ := sio.NewJob(sio.Params{Elements: size, GPUs: gpus, Seed: o.Seed, PhysMax: o.PhysBudget})
		job.Config.Workers = o.Workers
		job.Config.Shards = o.Shards
		job.Config.Obs = o.Obs
		res, err := job.Run()
		if err != nil {
			return 0, nil, err
		}
		return res.Trace.Wall, res.Trace, nil
	case "wo":
		b := wo.NewJob(wo.Params{Bytes: size, GPUs: gpus, Seed: o.Seed, PhysMax: o.PhysBudget, DictSize: woDict(o)})
		b.Job.Config.Workers = o.Workers
		b.Job.Config.Shards = o.Shards
		b.Job.Config.Obs = o.Obs
		res, err := b.Job.Run()
		if err != nil {
			return 0, nil, err
		}
		return res.Trace.Wall, res.Trace, nil
	case "kmc":
		b := kmc.NewJob(kmc.Params{Points: size, GPUs: gpus, Seed: o.Seed, PhysMax: o.PhysBudget})
		b.Job.Config.Workers = o.Workers
		b.Job.Config.Shards = o.Shards
		b.Job.Config.Obs = o.Obs
		res, err := b.Job.Run()
		if err != nil {
			return 0, nil, err
		}
		return res.Trace.Wall, res.Trace, nil
	case "lr":
		b := lr.NewJob(lr.Params{Points: size, GPUs: gpus, Seed: o.Seed, PhysMax: o.PhysBudget})
		b.Job.Config.Workers = o.Workers
		b.Job.Config.Shards = o.Shards
		b.Job.Config.Obs = o.Obs
		res, err := b.Job.Run()
		if err != nil {
			return 0, nil, err
		}
		return res.Trace.Wall, res.Trace, nil
	}
	return 0, nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
}

// woDict keeps the MPH build fast for small physical budgets: the harness
// uses a dictionary no larger than the materialized corpus could cover.
func woDict(o Options) int {
	if o.PhysBudget < 1<<20 {
		return 4300 // 1/10th-scale dictionary for quick runs
	}
	return 0 // full 43,000 words
}
