// Command kmeans iterates the paper's K-Means Clustering benchmark to
// convergence: each iteration is one GPMR job (as in the paper, which
// benchmarks a single iteration), with GPU-side Accumulation and a
// per-center Partitioner. The gathered sums become the next iteration's
// centers, demonstrating the i-MapReduce-style iterative pattern on GPMR.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/apps/kmc"
	"repro/internal/des"
)

func main() {
	gpus := flag.Int("gpus", 4, "simulated GPU count")
	points := flag.Int64("points", 8<<20, "virtual point count")
	iters := flag.Int("iters", 8, "max iterations")
	flag.Parse()

	var centers [][]float32
	var total des.Time
	for it := 0; it < *iters; it++ {
		b := kmc.NewJob(kmc.Params{
			Points:  *points,
			GPUs:    *gpus,
			PhysMax: 1 << 16,
			Centers: 16,
			Dim:     4,
		})
		if centers != nil {
			copyCenters(b.Centers, centers)
		}
		res, err := b.Job.Run()
		if err != nil {
			log.Fatal(err)
		}
		total += res.Trace.Wall

		sums := make(map[uint32]float64)
		for i, k := range res.Output.Keys {
			sums[k] += res.Output.Vals[i]
		}
		next := kmc.NewCenters(sums, 16, 4, b.Job.Config.VirtFactor)
		moved := movement(centers, next)
		centers = next
		fmt.Printf("iteration %d: wall %v, center movement %.4f\n", it+1, res.Trace.Wall, moved)
		if it > 0 && moved < 1e-3 {
			fmt.Println("converged")
			break
		}
	}
	fmt.Printf("total simulated time: %v\n", total)
	fmt.Println("final centers:")
	for i, c := range centers {
		fmt.Printf("  c%-2d (%7.3f, %7.3f, %7.3f, %7.3f)\n", i, c[0], c[1], c[2], c[3])
	}
}

func copyCenters(dst, src [][]float32) {
	for i := range dst {
		copy(dst[i], src[i])
	}
}

func movement(prev, next [][]float32) float64 {
	if prev == nil {
		return math.Inf(1)
	}
	var worst float64
	for i := range prev {
		var d float64
		for j := range prev[i] {
			diff := float64(prev[i][j] - next[i][j])
			d += diff * diff
		}
		if d > worst {
			worst = d
		}
	}
	return math.Sqrt(worst)
}
