package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the per-job analysis layer on top of the flight recorder:
// given a recording, find the jobs inside it and decompose one job's
// end-to-end latency into an ordered, gap-free phase breakdown with
// dominant-bottleneck attribution. The input events are a pure function
// of the simulation (see the package comment), so every number here is
// byte-identical across shard counts and kernel backends.
//
// A job owns up to three kinds of timelines, all derived from its run
// name (serve names jobs "<tenant>-<kind>-<id>"; bare core runs use the
// benchmark name):
//
//	serve/<name>   lifecycle: arrive, reject, cancel, job.wait, job.run
//	sched/<name>   scheduler: queue.wait, place, preempt, slo.reject
//	<name>/r<k>    per-rank pipeline phases, recovery, speculation
//
// Recordings that hold several runs separate them with SetPrefix, so a
// job is identified by (prefix, name) — a JobKey.

// JobKey identifies one job's timelines inside a recording: the run
// prefix installed with SetPrefix (often empty) plus the job's run name.
type JobKey struct {
	Prefix string `json:"prefix,omitempty"`
	Name   string `json:"name"`
}

// String returns the fully prefixed job name.
func (k JobKey) String() string { return k.Prefix + k.Name }

// JobStreams returns a stream predicate selecting every timeline of the
// named job (empty prefix): its serve lifecycle, scheduler decisions,
// and per-rank phases. The per-job timeline endpoint filters with it.
func JobStreams(name string) func(stream string) bool {
	k := JobKey{Name: name}
	return func(stream string) bool { return k.owns(stream) }
}

// owns reports whether stream is one of k's timelines.
func (k JobKey) owns(stream string) bool {
	return stream == k.Prefix+"serve/"+k.Name ||
		stream == k.Prefix+"sched/"+k.Name ||
		strings.HasPrefix(stream, k.Prefix+k.Name+"/r")
}

// rankName extracts the job name from a per-rank stream "<name>/r<k>",
// reporting whether s has that shape.
func rankName(s string) (string, bool) {
	i := strings.LastIndex(s, "/r")
	if i <= 0 || i+2 >= len(s) {
		return "", false
	}
	for _, c := range s[i+2:] {
		if c < '0' || c > '9' {
			return "", false
		}
	}
	return s[:i], true
}

// Jobs lists every job in a recording, sorted by prefixed name. A job is
// keyed by its serve or sched stream when it has one; rank streams that
// no serve/sched job claims (bare core runs, e.g. gpmrsim's) contribute
// their own keys with the rank suffix stripped.
func Jobs(evs []Event) []JobKey {
	seen := make(map[JobKey]bool)
	var keys []JobKey
	add := func(k JobKey) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for i := range evs {
		s := evs[i].Stream
		if j := strings.Index(s, "serve/"); j >= 0 {
			add(JobKey{Prefix: s[:j], Name: s[j+len("serve/"):]})
		} else if j := strings.Index(s, "sched/"); j >= 0 {
			add(JobKey{Prefix: s[:j], Name: s[j+len("sched/"):]})
		}
	}
	for i := range evs {
		name, ok := rankName(evs[i].Stream)
		if !ok {
			continue
		}
		claimed := false
		for k := range seen {
			if name == k.Prefix+k.Name {
				claimed = true
				break
			}
		}
		if !claimed {
			add(JobKey{Name: name})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if a, b := keys[i].String(), keys[j].String(); a != b {
			return a < b
		}
		return keys[i].Prefix < keys[j].Prefix
	})
	return keys
}

// ExplainPhase is one segment of a job's end-to-end latency. Segments
// are contiguous — each starts where the previous ended — so durations
// sum exactly to the job's latency.
type ExplainPhase struct {
	Name    string  `json:"name"`
	StartNs int64   `json:"startNs"`
	EndNs   int64   `json:"endNs"`
	DurNs   int64   `json:"durNs"`
	Pct     float64 `json:"pct"`
}

// Explanation is a deterministic decomposition of one job's end-to-end
// latency: a gap-free phase breakdown along the critical path, the
// dominant bottleneck as a share of latency, and counters for the
// disturbance events (restarts, preemptions, recoveries, speculative
// launches, steals) that shaped it.
type Explanation struct {
	Job     string `json:"job"`
	TraceID string `json:"traceId,omitempty"`
	State   string `json:"state"`

	ArrivalNs int64 `json:"arrivalNs"`
	FinishNs  int64 `json:"finishNs"`
	LatencyNs int64 `json:"latencyNs"`

	Gang         int    `json:"gang,omitempty"`
	Ranks        int    `json:"ranks,omitempty"`
	CriticalRank string `json:"criticalRank,omitempty"`

	Phases        []ExplainPhase `json:"phases"`
	Bottleneck    string         `json:"bottleneck,omitempty"`
	BottleneckNs  int64          `json:"bottleneckNs,omitempty"`
	BottleneckPct float64        `json:"bottleneckPct,omitempty"`

	Restarts     int `json:"restarts,omitempty"`
	Preemptions  int `json:"preemptions,omitempty"`
	Recoveries   int `json:"recoveries,omitempty"`
	Speculations int `json:"speculations,omitempty"`
	Steals       int `json:"steals,omitempty"`
}

// ExplainJob decomposes the named job (empty prefix). See Explain.
func ExplainJob(evs []Event, name string) Explanation {
	return Explain(evs, JobKey{Name: name})
}

// Explain decomposes one job's latency from a recording. The phase walk
// follows the critical path: wait (arrival to last placement), launch
// (placement to the critical rank's map start), then the critical rank's
// map/shuffle/sort/reduce spans, then commit (reduce end to the serve
// finish stamp). The critical rank is the one whose reduce phase ends
// last (ties: lexicographically smallest stream). Jobs that never ran
// collapse to a single wait phase; a restarted job's phases come from
// its final (successful) placement, with earlier attempts counted in
// Restarts and left inside wait. Phase segments are clamped monotone, so
// their durations always sum exactly to FinishNs - ArrivalNs.
func Explain(evs []Event, k JobKey) Explanation {
	serveS := k.Prefix + "serve/" + k.Name
	schedS := k.Prefix + "sched/" + k.Name
	rankPre := k.Prefix + k.Name + "/r"

	ex := Explanation{Job: k.String()}

	// One pass: job lifecycle stamps, last placement, per-rank last
	// phase spans (a restarted rank re-emits its phases; the final
	// attempt is the one that reached the finish line), and the
	// disturbance counters.
	type rankSet struct{ m, sh, so, re Event }
	type rankHave struct{ m, sh, so, re bool }
	phases := make(map[string]*rankSet)
	have := make(map[string]*rankHave)
	var (
		arriveE, runE, rejectE, cancelE, placeE                Event
		haveArrive, haveRun, haveReject, haveCancel, havePlace bool
		places                                                 int
		minT, maxEnd                                           int64
		any                                                    bool
	)
	for i := range evs {
		e := &evs[i]
		s := e.Stream
		var isRank bool
		if strings.HasPrefix(s, rankPre) {
			isRank = true
			for _, c := range s[len(rankPre):] {
				if c < '0' || c > '9' {
					isRank = false
					break
				}
			}
		}
		if s != serveS && s != schedS && !isRank {
			continue
		}
		if !any || e.T < minT {
			minT = e.T
		}
		if end := e.End(); !any || end > maxEnd {
			maxEnd = end
		}
		any = true
		switch {
		case s == serveS:
			switch e.Kind {
			case "arrive":
				arriveE, haveArrive = *e, true
				if ex.TraceID == "" {
					ex.TraceID = e.Attr("trace")
				}
			case "job.run":
				runE, haveRun = *e, true
			case "reject":
				rejectE, haveReject = *e, true
			case "cancel":
				cancelE, haveCancel = *e, true
			}
		case s == schedS:
			switch e.Kind {
			case "place":
				placeE, havePlace = *e, true
				places++
			case "preempt":
				ex.Preemptions++
			}
		default: // rank stream
			ps, h := phases[s], have[s]
			if ps == nil {
				ps, h = &rankSet{}, &rankHave{}
				phases[s], have[s] = ps, h
			}
			switch e.Kind {
			case "phase.map":
				ps.m, h.m = *e, true
			case "phase.shuffle":
				ps.sh, h.sh = *e, true
			case "phase.sort":
				ps.so, h.so = *e, true
			case "phase.reduce":
				ps.re, h.re = *e, true
			case "recover":
				ex.Recoveries++
			case "spec.launch":
				ex.Speculations++
			case "steal":
				ex.Steals++
			}
		}
	}
	ex.Ranks = len(phases)
	if places > 1 {
		ex.Restarts = places - 1
	}

	// Arrival: the serve arrive stamp; bare core runs (no serve stream)
	// start at their earliest event.
	switch {
	case haveArrive:
		ex.ArrivalNs = arriveE.T
	case haveRun:
		ex.ArrivalNs = runE.T
	default:
		ex.ArrivalNs = minT
	}

	// Critical rank: latest reduce end, ties to the smallest stream.
	rankStreams := make([]string, 0, len(phases))
	for s := range phases {
		rankStreams = append(rankStreams, s)
	}
	sort.Strings(rankStreams)
	var crit *rankSet
	for _, s := range rankStreams {
		ps, h := phases[s], have[s]
		if !h.re {
			continue
		}
		if crit == nil || ps.re.End() > crit.re.End() {
			crit = ps
			ex.CriticalRank = s
		}
	}

	// Terminal state and finish stamp.
	switch {
	case haveRun:
		ex.State = runE.Attr("state")
		if ex.State == "" {
			ex.State = "done"
		}
		ex.FinishNs = runE.End()
		if g, err := strconv.Atoi(runE.Attr("gang")); err == nil {
			ex.Gang = g
		}
	case haveCancel:
		ex.State = "cancelled"
		ex.FinishNs = cancelE.T
	case haveReject:
		ex.State = "rejected"
		ex.FinishNs = rejectE.T
	case crit != nil:
		ex.State = "done"
		ex.FinishNs = maxEnd
	case any:
		ex.State = "incomplete"
		ex.FinishNs = maxEnd
	}
	if ex.FinishNs < ex.ArrivalNs {
		ex.FinishNs = ex.ArrivalNs
	}
	ex.LatencyNs = ex.FinishNs - ex.ArrivalNs

	if !any {
		return ex
	}

	// Phase walk: contiguous segments over [arrival, finish], each
	// boundary clamped monotone so durations sum exactly to latency.
	cur := ex.ArrivalNs
	cut := func(name string, to int64) {
		if to < cur {
			to = cur
		}
		if to > ex.FinishNs {
			to = ex.FinishNs
		}
		ex.Phases = append(ex.Phases, ExplainPhase{Name: name, StartNs: cur, EndNs: to, DurNs: to - cur})
		cur = to
	}
	placed := ex.ArrivalNs
	if havePlace {
		placed = placeE.T
	} else if haveRun {
		placed = runE.T
	}
	switch {
	case crit != nil:
		cut("wait", placed)
		cut("launch", crit.m.T)
		cut("map", crit.m.End())
		cut("shuffle", crit.sh.End())
		cut("sort", crit.so.End())
		cut("reduce", crit.re.End())
		cut("commit", ex.FinishNs)
	case haveRun:
		// Ran, but without rank phase spans in this recording.
		cut("wait", placed)
		cut("run", ex.FinishNs)
	default:
		cut("wait", ex.FinishNs)
	}
	for i := range ex.Phases {
		if ex.LatencyNs > 0 {
			ex.Phases[i].Pct = 100 * float64(ex.Phases[i].DurNs) / float64(ex.LatencyNs)
		}
		if ex.Bottleneck == "" || ex.Phases[i].DurNs > ex.BottleneckNs {
			ex.Bottleneck = ex.Phases[i].Name
			ex.BottleneckNs = ex.Phases[i].DurNs
		}
	}
	if ex.LatencyNs > 0 {
		ex.BottleneckPct = 100 * float64(ex.BottleneckNs) / float64(ex.LatencyNs)
	}
	return ex
}

// ms renders nanoseconds as fixed-precision milliseconds.
func ms(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e6, 'f', 3, 64)
}

// String renders the explanation as the fixed-format text report served
// by `GET /jobs/{id}/explain?format=text`.
func (ex Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s  state %s  latency %sms  (arrival %sms -> finish %sms)\n",
		ex.Job, ex.State, ms(ex.LatencyNs), ms(ex.ArrivalNs), ms(ex.FinishNs))
	if ex.TraceID != "" {
		fmt.Fprintf(&b, "trace %s\n", ex.TraceID)
	}
	if ex.Ranks > 0 {
		fmt.Fprintf(&b, "gang %d  ranks %d  critical rank %s\n", ex.Gang, ex.Ranks, ex.CriticalRank)
	}
	for _, p := range ex.Phases {
		fmt.Fprintf(&b, "  %-8s %12sms -> %12sms  %12sms  %5.1f%%\n",
			p.Name, ms(p.StartNs), ms(p.EndNs), ms(p.DurNs), p.Pct)
	}
	if ex.Bottleneck != "" {
		fmt.Fprintf(&b, "bottleneck %s  %sms  %.1f%% of latency\n",
			ex.Bottleneck, ms(ex.BottleneckNs), ex.BottleneckPct)
	}
	fmt.Fprintf(&b, "restarts %d  preemptions %d  recoveries %d  speculations %d  steals %d\n",
		ex.Restarts, ex.Preemptions, ex.Recoveries, ex.Speculations, ex.Steals)
	return b.String()
}
