package sched

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/workload"
)

// --- a miniature count job, enough pipeline to exercise the scheduler ---

// virtFactor inflates the fixture jobs to paper scale so they take
// milliseconds of simulated time — long enough for arrivals to overlap.
const virtFactor = 1 << 12

type intChunk struct{ data []uint32 }

func (c *intChunk) Elems() int       { return len(c.data) }
func (c *intChunk) VirtBytes() int64 { return int64(len(c.data)) * 4 * virtFactor }

type countMapper struct{}

func (countMapper) Map(ctx *core.MapContext[uint32], c core.Chunk) {
	ic := c.(*intChunk)
	virtN := int64(len(ic.data)) * ctx.VirtFactor
	spec := gpu.KernelSpec{Name: "count.map", Threads: virtN, BytesRead: float64(virtN * 4), BytesWritten: float64(virtN * 8)}
	ctx.Launch(spec, func() {
		for _, k := range ic.data {
			ctx.Emit(k, 1)
		}
	})
	ctx.SetEmittedVirt(virtN)
}

// makeJob builds a reducer-less count job (the post-shuffle pairs are the
// output) with nChunks chunks of elems keys each, requesting gpus ranks.
func makeJob(name string, gpus, nChunks, elems int) *core.Scheduled[uint32] {
	data := workload.SparseInts(7, nChunks*elems)
	chunks := make([]core.Chunk, nChunks)
	for i := range chunks {
		chunks[i] = &intChunk{data: data[i*elems : (i+1)*elems]}
	}
	return &core.Scheduled[uint32]{Job: &core.Job[uint32]{
		Config:      core.Config{Name: name, GPUs: gpus, VirtFactor: virtFactor},
		Chunks:      chunks,
		Mapper:      countMapper{},
		Partitioner: core.RoundRobin{},
	}}
}

// cc16 is a 16-rank, 4-per-node cluster (the paper's packing).
func cc16() cluster.Config { return cluster.DefaultConfig(16) }

func jobByID(t *ClusterTrace, id int) *JobTrace {
	for i := range t.Jobs {
		if t.Jobs[i].ID == id {
			return &t.Jobs[i]
		}
	}
	return nil
}

func TestFIFOExclusiveSerializes(t *testing.T) {
	specs := []JobSpec{
		{At: 0, Job: makeJob("a", 8, 8, 256)},
		{At: 0, Job: makeJob("b", 4, 4, 256)},
	}
	ct, err := Run(cc16(), Policy{Kind: FIFOExclusive}, specs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := jobByID(ct, 0), jobByID(ct, 1)
	if b.Admit < a.Finish {
		t.Errorf("FIFO-exclusive overlapped jobs: b admitted %v, a finished %v", b.Admit, a.Finish)
	}
	if a.Granted != 8 || b.Granted != 4 {
		t.Errorf("granted %d/%d, want requested 8/4", a.Granted, b.Granted)
	}
}

func TestFixedShareRunsConcurrently(t *testing.T) {
	specs := []JobSpec{
		{At: 0, Job: makeJob("a", 4, 8, 256)},
		{At: 0, Job: makeJob("b", 4, 8, 256)},
	}
	ct, err := Run(cc16(), Policy{Kind: FixedShare, Share: 4}, specs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := jobByID(ct, 0), jobByID(ct, 1)
	if b.Admit >= a.Finish {
		t.Errorf("fixed-share did not overlap: b admitted %v, a finished %v", b.Admit, a.Finish)
	}
	// Disjoint gangs.
	seen := map[int]bool{}
	for _, r := range append(append([]int{}, a.Gang...), b.Gang...) {
		if seen[r] {
			t.Fatalf("rank %d appears in two concurrent gangs", r)
		}
		seen[r] = true
	}
}

func TestWholeNodePlacement(t *testing.T) {
	// Job a takes a 2-rank bite out of one node; job b's 4-rank gang must
	// land on a still-whole node, not straddle the bitten one.
	specs := []JobSpec{
		{At: 0, Job: makeJob("a", 2, 2, 256)},
		{At: 0, Job: makeJob("b", 4, 4, 256)},
	}
	ct, err := Run(cc16(), Policy{Kind: FixedShare, Share: 8}, specs)
	if err != nil {
		t.Fatal(err)
	}
	b := jobByID(ct, 1)
	if len(b.Gang) != 4 {
		t.Fatalf("b granted %d ranks, want 4", len(b.Gang))
	}
	node := b.Gang[0] / 4
	for _, r := range b.Gang {
		if r/4 != node {
			t.Errorf("4-rank gang split across nodes: %v", b.Gang)
		}
	}
}

func TestBackfillStartsSmallJobEarly(t *testing.T) {
	// a holds 12 of 16 ranks; the 8-rank b blocks at the head; the 2-rank
	// c backfills onto the idle ranks while a drains.
	specs := []JobSpec{
		{At: 0, Job: makeJob("a", 12, 24, 512)},
		{At: des.Millisecond, Job: makeJob("b", 8, 8, 256)},
		{At: 2 * des.Millisecond, Job: makeJob("c", 2, 2, 64)},
	}
	ct, err := Run(cc16(), Policy{Kind: FixedShare, Share: 12}, specs)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := jobByID(ct, 0), jobByID(ct, 1), jobByID(ct, 2)
	if c.Admit >= a.Finish {
		t.Errorf("backfill failed: c admitted %v, a finished %v", c.Admit, a.Finish)
	}
	if c.Admit >= b.Admit {
		t.Errorf("c (backfilled) admitted %v, not before blocked b at %v", c.Admit, b.Admit)
	}

	// With backfill disabled, c waits behind b.
	ct2, err := Run(cc16(), Policy{Kind: FixedShare, Share: 12, NoBackfill: true}, specs)
	if err != nil {
		t.Fatal(err)
	}
	b2, c2 := jobByID(ct2, 1), jobByID(ct2, 2)
	if c2.Admit < b2.Admit {
		t.Errorf("NoBackfill: c admitted %v before b at %v", c2.Admit, b2.Admit)
	}
}

func TestWeightedFairMoldsOntoIdleRanks(t *testing.T) {
	// a occupies 14 ranks; b (want 8, MinGang 1) arrives and should mold
	// onto the 2 idle ranks instead of waiting for a to finish.
	specs := []JobSpec{
		{At: 0, Job: makeJob("a", 14, 28, 512)},
		{At: des.Millisecond, Job: makeJob("b", 8, 8, 256)},
	}
	ct, err := Run(cc16(), Policy{Kind: WeightedFair}, specs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := jobByID(ct, 0), jobByID(ct, 1)
	if b.Admit >= a.Finish {
		t.Errorf("weighted-fair did not mold: b admitted %v, a finished %v", b.Admit, a.Finish)
	}
	if b.Granted != 2 {
		t.Errorf("b granted %d ranks, want the 2 idle ones", b.Granted)
	}
	if b.Granted > 0 && b.Trace == nil {
		t.Error("scheduled job finished without a trace")
	}
}

func TestWeightedFairRespectsMinGang(t *testing.T) {
	// Same shape, but b refuses gangs under 4: it must wait for a.
	specs := []JobSpec{
		{At: 0, Job: makeJob("a", 14, 28, 512)},
		{At: des.Millisecond, Job: makeJob("b", 8, 8, 256), MinGang: 4},
	}
	ct, err := Run(cc16(), Policy{Kind: WeightedFair}, specs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := jobByID(ct, 0), jobByID(ct, 1)
	if b.Admit < a.Finish {
		t.Errorf("b admitted %v before a finished %v despite MinGang 4", b.Admit, a.Finish)
	}
}

func TestScheduledCapturesResult(t *testing.T) {
	job := makeJob("solo", 4, 4, 128)
	_, err := Run(cc16(), Policy{Kind: WeightedFair}, []JobSpec{{At: 0, Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if job.Result == nil {
		t.Fatal("Scheduled.Result not populated")
	}
	total := 0
	for _, pr := range job.Result.PerRank {
		total += pr.Len()
	}
	if total != 4*128 {
		t.Errorf("scheduled job produced %d pairs, want %d", total, 4*128)
	}
}

func TestRunDeterminism(t *testing.T) {
	mk := func() []JobSpec {
		return []JobSpec{
			{At: 0, Job: makeJob("a", 8, 16, 512)},
			{At: des.Millisecond, Job: makeJob("b", 4, 8, 256)},
			{At: 3 * des.Millisecond, Job: makeJob("c", 2, 4, 128)},
		}
	}
	x, err := Run(cc16(), Policy{Kind: WeightedFair}, mk())
	if err != nil {
		t.Fatal(err)
	}
	y, err := Run(cc16(), Policy{Kind: WeightedFair}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Errorf("same submissions, different cluster traces:\n--- run 1\n%s--- run 2\n%s", x, y)
	}
}

func TestValidationErrors(t *testing.T) {
	good := func() JobSpec { return JobSpec{At: 0, Job: makeJob("ok", 4, 4, 64)} }
	cases := []struct {
		name  string
		cc    cluster.Config
		pol   Policy
		specs []JobSpec
		want  error
	}{
		{"unknown policy", cc16(), Policy{Kind: PolicyKind(42)}, []JobSpec{good()}, ErrUnknownPolicy},
		{"zero share", cc16(), Policy{Kind: FixedShare}, []JobSpec{good()}, ErrBadShare},
		{"share over cluster", cc16(), Policy{Kind: FixedShare, Share: 99}, []JobSpec{good()}, ErrBadShare},
		{"no jobs", cc16(), Policy{Kind: WeightedFair}, nil, ErrNoJobs},
		{"nil job", cc16(), Policy{Kind: WeightedFair}, []JobSpec{{At: 0}}, ErrNilJob},
		{"negative weight", cc16(), Policy{Kind: WeightedFair},
			[]JobSpec{{At: 0, Job: makeJob("w", 4, 4, 64), Weight: -1}}, ErrBadWeight},
		{"gang over cluster", cc16(), Policy{Kind: WeightedFair},
			[]JobSpec{{At: 0, Job: makeJob("big", 17, 4, 64)}}, ErrGangTooBig},
		{"min gang over want", cc16(), Policy{Kind: WeightedFair},
			[]JobSpec{{At: 0, Job: makeJob("m", 4, 4, 64), MinGang: 8}}, ErrBadMinGang},
		{"negative arrival", cc16(), Policy{Kind: WeightedFair},
			[]JobSpec{{At: -des.Millisecond, Job: makeJob("t", 4, 4, 64)}}, ErrBadArrival},
		{"bad cluster", cluster.Config{}, Policy{Kind: WeightedFair}, []JobSpec{good()}, ErrBadCluster},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cc, tc.pol, tc.specs)
			if !errors.Is(err, tc.want) {
				t.Errorf("got error %v, want %v", err, tc.want)
			}
		})
	}
}

func TestInvalidJobConfigRejectedUpFront(t *testing.T) {
	bad := makeJob("bad", 4, 4, 64)
	bad.Job.Config.StealPolicy = core.StealPolicy(99)
	_, err := Run(cc16(), Policy{Kind: WeightedFair}, []JobSpec{{At: 0, Job: bad}})
	if err == nil {
		t.Fatal("invalid job config admitted")
	}
}

func TestJainIndex(t *testing.T) {
	even := &ClusterTrace{Jobs: []JobTrace{
		{Arrival: 0, Admit: 0, Finish: 10},
		{Arrival: 0, Admit: 0, Finish: 20},
	}}
	if j := even.Jain(); j < 0.999 {
		t.Errorf("equal slowdowns give Jain %f, want 1", j)
	}
	skewed := &ClusterTrace{Jobs: []JobTrace{
		{Arrival: 0, Admit: 0, Finish: 10},   // slowdown 1
		{Arrival: 0, Admit: 90, Finish: 100}, // slowdown 10
	}}
	if j := skewed.Jain(); j >= 0.99 {
		t.Errorf("skewed slowdowns give Jain %f, want < 1", j)
	}
}

func TestDerateScopedToTenantLease(t *testing.T) {
	// Job a's fault plan derates its rank 0 by 8x. When c later reuses
	// the same ranks, it must see nominal hardware: its service time has
	// to match a run of the identical stream where a had no fault plan.
	mk := func(withStraggler bool) []JobSpec {
		a := makeJob("a", 2, 4, 256)
		if withStraggler {
			a.Job.Config.Faults = &fault.Plan{Events: []fault.Event{fault.SlowdownAfterChunks(0, 1, 8)}}
		}
		return []JobSpec{
			{At: 0, Job: a},
			// c arrives long after either variant of a finishes, so its
			// admission time is its arrival time in both streams.
			{At: des.Second, Job: makeJob("c", 2, 4, 256)},
		}
	}
	cc := cluster.DefaultConfig(4)
	slow, err := Run(cc, Policy{Kind: FixedShare, Share: 2}, mk(true))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(cc, Policy{Kind: FixedShare, Share: 2}, mk(false))
	if err != nil {
		t.Fatal(err)
	}
	if a := jobByID(slow, 0); a.Trace.Ranks[0].Derated <= 1 {
		t.Fatalf("fixture failed: job a not derated (%v)", a.Trace.Ranks[0].Derated)
	}
	cSlow, cClean := jobByID(slow, 1), jobByID(clean, 1)
	if cSlow.Gang[0] != 0 || cClean.Gang[0] != 0 {
		t.Fatalf("fixture failed: c not placed on a's ranks (%v / %v)", cSlow.Gang, cClean.Gang)
	}
	if cSlow.Service() != cClean.Service() {
		t.Errorf("a's straggler derating leaked into c's lease: service %v after straggler vs %v after clean run",
			cSlow.Service(), cClean.Service())
	}
}

func TestMoldedGangDropsOutOfRangeFaultEvents(t *testing.T) {
	// The faulty job requests 8 ranks with a straggler event on rank 6;
	// weighted-fair molds it onto the 2 idle ranks. The event aims at a
	// rank the job no longer has — it must be dropped, not abort the run.
	faulty := makeJob("faulty", 8, 8, 256)
	faulty.Job.Config.Faults = &fault.Plan{Events: []fault.Event{fault.SlowdownAfterChunks(6, 1, 8)}}
	specs := []JobSpec{
		{At: 0, Job: makeJob("big", 14, 28, 512)},
		{At: des.Millisecond, Job: faulty},
	}
	ct, err := Run(cc16(), Policy{Kind: WeightedFair}, specs)
	if err != nil {
		t.Fatal(err)
	}
	f := jobByID(ct, 1)
	if f.Granted >= 8 {
		t.Fatalf("fixture failed: faulty job granted %d ranks, wanted a molded gang", f.Granted)
	}
	for r, tr := range f.Trace.Ranks {
		if tr.Derated > 1 {
			t.Errorf("dropped fault event still derated rank %d (%v)", r, tr.Derated)
		}
	}
	if faulty.Result == nil {
		t.Fatal("molded faulty job produced no result")
	}
}

// --- online/edge-case coverage (PR 5) ---

// TestBackfillSkipsUnfittableHead: a head-of-line job whose MinGang
// exceeds everything that can come free while a long job runs must not
// block the queue — backfill admits later small jobs ahead of it, and
// NoBackfill (the control) makes them wait.
func TestBackfillSkipsUnfittableHead(t *testing.T) {
	specs := func() []JobSpec {
		return []JobSpec{
			// Holds 8 ranks for a long time.
			{At: 0, Job: makeJob("long", 8, 16, 512), MinGang: 8},
			// The unfittable head: needs all 16 ranks at once, refuses to
			// mold below 16 — it cannot start until "long" finishes.
			{At: des.Millisecond, Job: makeJob("head", 16, 4, 256), MinGang: 16},
			// Small enough for the 8 idle ranks.
			{At: 2 * des.Millisecond, Job: makeJob("little", 2, 2, 256)},
		}
	}
	ct, err := Run(cc16(), Policy{Kind: WeightedFair}, specs())
	if err != nil {
		t.Fatal(err)
	}
	long, head, little := jobByID(ct, 0), jobByID(ct, 1), jobByID(ct, 2)
	if head.Admit < long.Finish {
		t.Errorf("unfittable head admitted at %v before long finished at %v", head.Admit, long.Finish)
	}
	if little.Admit >= head.Admit {
		t.Errorf("backfill failed: little admitted %v, after head %v", little.Admit, head.Admit)
	}

	noBF, err := Run(cc16(), Policy{Kind: WeightedFair, NoBackfill: true}, specs())
	if err != nil {
		t.Fatal(err)
	}
	head2, little2 := jobByID(noBF, 1), jobByID(noBF, 2)
	if little2.Admit < head2.Admit {
		t.Errorf("NoBackfill still overtook the head: little %v, head %v", little2.Admit, head2.Admit)
	}
}

// TestFixedShareAtBoundary: gangs sized exactly at the share cap pack the
// cluster with no slack — want == Share admits while ranks last, the
// next job waits for a completion, and want > Share is capped to Share.
func TestFixedShareAtBoundary(t *testing.T) {
	specs := []JobSpec{
		{At: 0, Job: makeJob("a", 4, 4, 256)},
		{At: 0, Job: makeJob("b", 4, 4, 256)},
		{At: 0, Job: makeJob("c", 4, 4, 256)},
		{At: 0, Job: makeJob("d", 16, 4, 256)}, // capped to Share
		{At: 0, Job: makeJob("e", 4, 4, 256)},  // must wait: 0 ranks free
	}
	ct, err := Run(cc16(), Policy{Kind: FixedShare, Share: 4}, specs)
	if err != nil {
		t.Fatal(err)
	}
	var minFinish des.Time
	for id := 0; id < 4; id++ {
		j := jobByID(ct, id)
		if j.Admit != 0 {
			t.Errorf("job %d admitted at %v, want 0 (16 ranks / share 4 = 4 concurrent)", id, j.Admit)
		}
		if j.Granted != 4 {
			t.Errorf("job %d granted %d ranks, want share cap 4", id, j.Granted)
		}
		if minFinish == 0 || j.Finish < minFinish {
			minFinish = j.Finish
		}
	}
	e := jobByID(ct, 4)
	if e.Admit < minFinish {
		t.Errorf("fifth gang admitted at %v with zero free ranks (first finish %v)", e.Admit, minFinish)
	}
	if e.Admit != minFinish {
		t.Errorf("fifth gang admitted at %v, want exactly the first completion %v", e.Admit, minFinish)
	}
}

// TestMinGangValidation covers the named-error paths for gangs that can
// never exist: MinGang above the request, and requests (or floors) above
// the whole cluster.
func TestMinGangValidation(t *testing.T) {
	// MinGang larger than the request.
	_, err := Run(cc16(), Policy{Kind: WeightedFair},
		[]JobSpec{{At: 0, Job: makeJob("m", 8, 4, 64), MinGang: 9}})
	if !errors.Is(err, ErrBadMinGang) {
		t.Errorf("MinGang 9 of want 8: err=%v, want ErrBadMinGang", err)
	}
	// MinGang larger than the cluster — the request must be at least as
	// large, so the gang-too-big check fires first.
	_, err = Run(cc16(), Policy{Kind: WeightedFair},
		[]JobSpec{{At: 0, Job: makeJob("g", 20, 4, 64), MinGang: 20}})
	if !errors.Is(err, ErrGangTooBig) {
		t.Errorf("MinGang 20 on 16 ranks: err=%v, want ErrGangTooBig", err)
	}
	// Same paths through the incremental API.
	eng := des.NewEngine()
	cl := cluster.New(eng, cc16())
	defer cl.Close()
	s, err := NewScheduler(eng, cl, Policy{Kind: WeightedFair})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(JobSpec{Job: makeJob("m", 8, 4, 64), MinGang: 9}); !errors.Is(err, ErrBadMinGang) {
		t.Errorf("incremental MinGang 9 of 8: err=%v, want ErrBadMinGang", err)
	}
	if _, err := s.Register(JobSpec{Job: makeJob("g", 20, 4, 64), MinGang: 20}); !errors.Is(err, ErrGangTooBig) {
		t.Errorf("incremental MinGang 20 on 16 ranks: err=%v, want ErrGangTooBig", err)
	}
}

// TestIncrementalSubmitCancel drives the online API directly: submissions
// at engine time, lifecycle hooks, cancellation of a queued job, and the
// cancelled job's absence from the trace.
func TestIncrementalSubmitCancel(t *testing.T) {
	eng := des.NewEngine()
	cl := cluster.New(eng, cc16())
	defer cl.Close()
	s, err := NewScheduler(eng, cl, Policy{Kind: FIFOExclusive})
	if err != nil {
		t.Fatal(err)
	}
	var started, done []int
	s.OnStart = func(id int, gang []int) { started = append(started, id) }
	s.OnDone = func(id int, tr *core.Trace, err error) {
		if err != nil {
			t.Errorf("job %d failed: %v", id, err)
		}
		done = append(done, id)
	}
	eng.Spawn("driver", func(p *des.Proc) {
		id0, err := s.Submit(JobSpec{Job: makeJob("first", 8, 8, 256)})
		if err != nil {
			t.Errorf("submit first: %v", err)
		}
		if s.Running() != 1 || s.QueueLen() != 0 {
			t.Errorf("after first: running %d queue %d, want 1/0", s.Running(), s.QueueLen())
		}
		p.Sleep(des.Millisecond)
		id1, err := s.Submit(JobSpec{Job: makeJob("second", 4, 4, 256)})
		if err != nil {
			t.Errorf("submit second: %v", err)
		}
		if s.QueueLen() != 1 {
			t.Errorf("second not queued under fifo-exclusive: queue %d", s.QueueLen())
		}
		if s.Cancel(id0) {
			t.Error("cancelled a running job")
		}
		if !s.Cancel(id1) {
			t.Error("could not cancel a queued job")
		}
		if s.Cancel(id1) {
			t.Error("double-cancel succeeded")
		}
		if s.Cancel(42) {
			t.Error("cancelled an unknown id")
		}
	})
	makespan := eng.Run()
	ct := s.Trace(makespan)
	if len(ct.Jobs) != 1 || ct.Jobs[0].Name != "first" {
		t.Fatalf("trace should hold only the uncancelled job: %v", ct.String())
	}
	if len(started) != 1 || started[0] != 0 || len(done) != 1 || done[0] != 0 {
		t.Fatalf("hooks: started %v done %v, want [0]/[0]", started, done)
	}
}
