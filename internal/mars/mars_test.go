package mars

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/gpu"
)

func TestMMCorrectness(t *testing.T) {
	app, a, b, phys := MM(1024, 32, 1)
	res, err := Run(app, gpu.GT200())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < phys; i++ {
		for j := 0; j < phys; j++ {
			var want float64
			for k := 0; k < phys; k++ {
				want += float64(a[i*phys+k]) * float64(b[k*phys+j])
			}
			got := res.Output[uint32(i*phys+j)]
			if math.Abs(got-want) > 1e-6*(math.Abs(want)+1) {
				t.Fatalf("C[%d,%d]=%g want %g", i, j, got, want)
			}
		}
	}
}

func TestKMCCorrectness(t *testing.T) {
	app, pts, ctrs, factor := KMC(1<<12, 1<<12, 8, 4, 1)
	res, err := Run(app, gpu.GT200())
	if err != nil {
		t.Fatal(err)
	}
	dim := 4
	ref := make(map[uint32]float64)
	n := len(pts) / dim
	for i := 0; i < n; i++ {
		pt := pts[i*dim : (i+1)*dim]
		best, bestD := 0, float32(0)
		for ci, ctr := range ctrs {
			var d float32
			for d2 := 0; d2 < dim; d2++ {
				diff := pt[d2] - ctr[d2]
				d += diff * diff
			}
			if ci == 0 || d < bestD {
				best, bestD = ci, d
			}
		}
		for d2 := 0; d2 < dim; d2++ {
			ref[uint32(best*(dim+1)+d2)] += float64(pt[d2]) * float64(factor)
		}
		ref[uint32(best*(dim+1)+dim)] += float64(factor)
	}
	for k, want := range ref {
		if math.Abs(res.Output[k]-want) > 1e-6*(math.Abs(want)+1) {
			t.Fatalf("key %d: %g want %g", k, res.Output[k], want)
		}
	}
}

func TestWOCorrectness(t *testing.T) {
	app, lines, table := WO(1<<14, 1<<14, 300, 1)
	res, err := Run(app, gpu.GT200())
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint32]uint32)
	for _, ln := range lines {
		for _, w := range strings.Fields(ln) {
			ref[table.Lookup(w)]++
		}
	}
	for k, want := range ref {
		if res.Output[k] != want {
			t.Fatalf("slot %d: %d want %d", k, res.Output[k], want)
		}
	}
}

func TestInCoreLimitEnforced(t *testing.T) {
	// 512M-point KMC: pairs alone exceed 1 GB — Mars must refuse.
	app, _, _, _ := KMC(512<<20, 1<<10, 8, 4, 1)
	_, err := Run(app, gpu.GT200())
	if !errors.Is(err, ErrNotInCore) {
		t.Errorf("expected ErrNotInCore, got %v", err)
	}
}

func TestStagesAccounted(t *testing.T) {
	app, _, _, _ := KMC(1<<20, 1<<10, 8, 4, 1)
	res, err := Run(app, gpu.GT200())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.H2D + res.MapCount + res.Scan + res.Map + res.Sort + res.Group + res.Reduce + res.D2H
	if sum > res.Wall || sum < res.Wall*95/100 {
		t.Errorf("stage sum %v vs wall %v", sum, res.Wall)
	}
	// Mars's monolithic sort must dominate KMC (what Accumulation removes).
	if res.Sort < res.Map {
		t.Errorf("KMC: sort %v < map %v — sort should dominate", res.Sort, res.Map)
	}
	// Two-pass emission: MapCount within ~2x of Map (same reads, fewer writes).
	if res.MapCount <= 0 || res.MapCount > 2*res.Map {
		t.Errorf("two-pass structure broken: count %v map %v", res.MapCount, res.Map)
	}
}

func TestInvalidApp(t *testing.T) {
	if _, err := Run(App[int]{Name: "bad"}, gpu.GT200()); err == nil {
		t.Error("expected error")
	}
}
