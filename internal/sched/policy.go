// Package sched is GPMR's job-level scheduler: it admits a queue of
// heterogeneous MapReduce jobs onto ONE shared simulated cluster, where
// the paper's system dedicates the whole machine to a single job.
//
// The sharing model is space-sharing: each admitted job receives a gang —
// a disjoint subset of the cluster's GPU ranks — and runs the unmodified
// GPMR pipeline against it (see core's gang seam). Co-resident gangs
// contend for the hardware the fabric model already prices: jobs placed on
// the same node share its NIC pair, CPU cores, and (when packed onto the
// same PCIe host interface card) the PCIe link, so a neighbour's shuffle
// slows yours exactly the way the paper's Figure-2 communication wall
// predicts. Gang placement is therefore topology-aware: whole nodes first,
// so a job's shuffle stays on its own NICs whenever the cluster allows.
//
// Three admission policies size the gangs; backfill lets small jobs start
// on idle ranks while a large one drains. See DESIGN.md, "Multi-tenancy".
package sched

import (
	"errors"
	"fmt"
)

// PolicyKind selects how the scheduler sizes and admits gangs.
type PolicyKind int

const (
	// FIFOExclusive is the paper's implicit policy: jobs run strictly in
	// arrival order, one at a time, each holding the whole cluster even
	// when its gang is smaller. The baseline every sharing policy is
	// measured against.
	FIFOExclusive PolicyKind = iota
	// FixedShare caps every gang at a fixed rank count (Policy.Share) and
	// runs jobs concurrently while free ranks last — static partitioning,
	// simple and predictable, wasteful when the mix is heterogeneous.
	FixedShare
	// WeightedFair sizes each gang by the job's weight relative to every
	// job currently in the system (running or queued): gang =
	// clamp(total·w/Σw, MinGang..requested). Jobs are moldable — when
	// fewer ranks are idle than the fair share, the gang shrinks to the
	// idle set (never below MinGang) rather than wait, which is what lets
	// small jobs slip in while a big one drains.
	WeightedFair
)

// String names the policy for traces and reports.
func (k PolicyKind) String() string {
	switch k {
	case FIFOExclusive:
		return "fifo-exclusive"
	case FixedShare:
		return "fixed-share"
	case WeightedFair:
		return "weighted-fair"
	}
	return "unknown"
}

// ParsePolicyKind resolves a policy name as printed by PolicyKind.String
// — the single lookup shared by the daemon's flags and the arrival-trace
// header, so a new kind cannot exist in one and not the other.
func ParsePolicyKind(name string) (PolicyKind, error) {
	for _, k := range []PolicyKind{FIFOExclusive, FixedShare, WeightedFair} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
}

// Class is a job's service class. Higher classes are queued ahead of
// lower ones; under Policy.Preempt they may also checkpoint-preempt
// running lower-class gangs. The zero value, Batch, reproduces the
// pre-class scheduler exactly.
type Class int

const (
	// Batch is best-effort work with no ordering privilege (the default).
	Batch Class = iota
	// Standard sits between batch and interactive traffic.
	Standard
	// Interactive is the highest class: tight deadlines, first in queue.
	Interactive
)

// String names the class for traces, reports, and the HTTP boundary.
func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Standard:
		return "standard"
	case Interactive:
		return "interactive"
	}
	return "unknown"
}

// ParseClass resolves a class name as printed by Class.String; the empty
// string is Batch, so callers that never mention classes are untouched.
func ParseClass(name string) (Class, error) {
	if name == "" {
		return Batch, nil
	}
	for _, c := range []Class{Batch, Standard, Interactive} {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrBadClass, name)
}

// Policy configures admission for one scheduler run.
type Policy struct {
	Kind PolicyKind

	// Share is the per-gang rank cap for FixedShare (required there,
	// ignored elsewhere).
	Share int

	// NoBackfill disables skip-ahead admission for the sharing policies:
	// by default, when the queue head does not fit on the idle ranks, the
	// scheduler scans past it and admits any later job that does. The
	// head is always tried first, so a head that fits is never overtaken;
	// without Reserve, a head demanding more ranks than are ever
	// simultaneously idle can still be delayed by a continuous stream of
	// small jobs. FIFOExclusive never backfills regardless.
	NoBackfill bool

	// Reserve makes an EASY-style reservation for a blocked queue head:
	// the cost model predicts when the running gangs will have freed
	// enough ranks for the head, and a later job may only backfill if its
	// own predicted completion lands before that reserved start — so
	// backfill can no longer starve the head.
	Reserve bool

	// Preempt lets a blocked higher-class queue head checkpoint-preempt
	// running lower-class gangs: victims quiesce at their next chunk
	// boundary, release their ranks, and requeue for a deterministic
	// restart from scratch (partial output is discarded — jobs are
	// deterministic, so a restart reproduces the uninterrupted result).
	Preempt bool

	// Elastic enables grow-back for jobs that opted in (JobSpec.Elastic):
	// when the queue is empty and a WeightedFair gang that was molded
	// below its fair share could at least double by relaunching on the
	// now-idle ranks, it is checkpointed and re-expanded.
	Elastic bool
}

// Named validation errors. Policy and submission mistakes must surface as
// errors before the simulation starts, never as panics inside it.
var (
	// ErrUnknownPolicy reports a PolicyKind outside the defined set.
	ErrUnknownPolicy = errors.New("sched: unknown policy kind")
	// ErrBadShare reports a FixedShare cap of zero, negative, or larger
	// than the cluster.
	ErrBadShare = errors.New("sched: fixed-share cap outside 1..cluster ranks")
	// ErrBadWeight reports a negative job weight. Zero is accepted and
	// defaults to 1, so the error names the actual contract: >= 0.
	ErrBadWeight = errors.New("sched: job weight must be >= 0 (0 defaults to 1)")
	// ErrGangTooBig reports a job requesting more ranks than the cluster
	// has.
	ErrGangTooBig = errors.New("sched: requested gang larger than cluster")
	// ErrBadMinGang reports a MinGang that is negative or exceeds the
	// job's requested gang.
	ErrBadMinGang = errors.New("sched: MinGang outside 0..requested gang")
	// ErrBadArrival reports a negative arrival time.
	ErrBadArrival = errors.New("sched: negative arrival time")
	// ErrNilJob reports a submission without a job.
	ErrNilJob = errors.New("sched: submission has no job")
	// ErrNoJobs reports an empty submission list.
	ErrNoJobs = errors.New("sched: no jobs submitted")
	// ErrBadCluster reports an unusable cluster shape.
	ErrBadCluster = errors.New("sched: invalid cluster configuration")
	// ErrBadClass reports a service class outside the defined set.
	ErrBadClass = errors.New("sched: unknown service class")
	// ErrBadDeadline reports a negative deadline.
	ErrBadDeadline = errors.New("sched: negative deadline")
	// ErrBadPreempt reports Preempt or Elastic on FIFOExclusive, which
	// never shares the machine and so has nothing to preempt or grow.
	ErrBadPreempt = errors.New("sched: Preempt/Elastic require a sharing policy")
)

// Validate checks the policy against a cluster of totalRanks.
func (p Policy) Validate(totalRanks int) error {
	switch p.Kind {
	case FIFOExclusive, WeightedFair:
	case FixedShare:
		if p.Share < 1 || p.Share > totalRanks {
			return fmt.Errorf("%w: Share=%d, cluster has %d", ErrBadShare, p.Share, totalRanks)
		}
	default:
		return fmt.Errorf("%w: %d", ErrUnknownPolicy, int(p.Kind))
	}
	if p.Kind == FIFOExclusive && (p.Preempt || p.Elastic) {
		return ErrBadPreempt
	}
	return nil
}

// backfills reports whether the policy skips past a blocked queue head.
func (p Policy) backfills() bool {
	return p.Kind != FIFOExclusive && !p.NoBackfill
}
