// Package sio implements the paper's Sparse Integer Occurrence benchmark
// on GPMR: count how often each integer appears in a sequence drawn
// uniformly from the whole 32-bit space.
//
// Following §5.3.2 of the paper: the mapper reads two integers per thread
// (for efficient memory access) and emits ⟨I,1⟩ for each; Partial
// Reduction and Accumulation are foregone (sparse keys make them useless),
// Combine causes slowdown and is skipped; the default radix Sort is used;
// and the reducer processes one key per thread, summing its values. SIO's
// huge intermediate state (one pair per input element) makes it the
// communication- and sort-bound stress test of the suite.
package sio

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/cudpp"
	"repro/internal/gpu"
	"repro/internal/keyval"
	"repro/internal/workload"
)

// Params configures one SIO job.
type Params struct {
	Elements int64 // virtual element count (paper: 1M–128M and beyond)
	GPUs     int
	Seed     uint64
	PhysMax  int   // physical element cap (default 1<<20)
	ChunkCap int64 // virtual elements per chunk (default 16M = 64 MB)

	// Ablation knobs. The paper rejects both for SIO: Partial Reduction
	// "yield[s] no speedup with our intermediate data" (sparse keys rarely
	// collide within a chunk) and Combine "causes slowdown" (staging all
	// pairs through CPU memory and back). They exist to regenerate that
	// comparison.
	UsePartialReduce bool
	UseCombiner      bool
}

func (p Params) withDefaults() Params {
	if p.PhysMax <= 0 {
		p.PhysMax = 1 << 20
	}
	if p.ChunkCap <= 0 {
		p.ChunkCap = 16 << 20
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

type chunk struct {
	data []uint32
	virt int64
}

func (c *chunk) Elems() int       { return len(c.data) }
func (c *chunk) VirtBytes() int64 { return c.virt * 4 }

// mapper reads two integers per thread and emits ⟨I,1⟩ twice.
type mapper struct{}

func (mapper) Map(ctx *core.MapContext[uint32], c core.Chunk) {
	ch := c.(*chunk)
	virtN := int64(len(ch.data)) * ctx.VirtFactor
	spec := gpu.KernelSpec{
		Name:           "sio.map",
		Threads:        virtN / 2,
		FlopsPerThread: 4,
		BytesRead:      float64(virtN * 4),
		BytesWritten:   float64(virtN * 8), // key+value per element
	}
	ctx.Launch(spec, func() {
		for _, v := range ch.data {
			ctx.Emit(v, 1)
		}
	})
	ctx.SetEmittedVirt(virtN)
}

// reducer sums one key's values per thread (the paper's final design; the
// block-per-key variant lost because sparse keys average <5 values).
type reducer struct{}

func (reducer) ChunkValueSets(sets int, virtVals, free int64) int {
	return core.FitAllChunking(sets, virtVals, free, 4)
}

func (reducer) Reduce(ctx *core.ReduceContext[uint32], keys []uint32, segs []cudpp.Segment, vals []uint32) {
	var phys int64
	for _, s := range segs {
		phys += int64(s.Count)
	}
	virtIn := phys * ctx.VirtFactor
	spec := gpu.KernelSpec{
		Name:             "sio.reduce",
		Threads:          int64(len(segs)) * ctx.VirtFactor,
		FlopsPerThread:   float64(virtIn) / float64(int64(len(segs))*ctx.VirtFactor),
		UncoalescedBytes: float64(virtIn) * 4 / 2, // per-thread strided segment reads
		BytesRead:        float64(virtIn) * 4 / 2,
		BytesWritten:     float64(int64(len(segs)) * ctx.VirtFactor * 8),
	}
	ctx.Launch(spec, func() {
		for _, s := range segs {
			var sum uint32
			for i := 0; i < s.Count; i++ {
				sum += vals[s.Start+i]
			}
			ctx.Emit(s.Key, sum)
		}
	})
	ctx.SetEmittedVirt(int64(len(segs)) * ctx.VirtFactor)
}

// NewJob builds the GPMR job for the given parameters. The returned
// physical dataset is also provided for reference checking.
func NewJob(p Params) (*core.Job[uint32], []uint32) {
	p = p.withDefaults()
	sc := apputil.PlanScale(p.Elements, p.PhysMax)
	data := workload.SparseInts(p.Seed, sc.PhysElems)
	n := apputil.NumChunks(sc.VirtElems, p.ChunkCap, p.GPUs)
	offs := workload.SplitEven(len(data), n)
	chunks := make([]core.Chunk, n)
	for i := range chunks {
		part := data[offs[i]:offs[i+1]]
		chunks[i] = &chunk{data: part, virt: int64(len(part)) * sc.Factor}
	}
	job := &core.Job[uint32]{
		Config: core.Config{
			Name:         "sio",
			GPUs:         p.GPUs,
			VirtFactor:   sc.Factor,
			ValBytes:     4,
			GatherOutput: false, // counts stay distributed, as in the paper
			Startup:      core.DefaultStartup,
		},
		Chunks:      chunks,
		Mapper:      mapper{},
		Partitioner: core.RoundRobin{},
		Reducer:     reducer{},
	}
	if p.UsePartialReduce {
		job.PartialReducer = partialReducer{}
	}
	if p.UseCombiner {
		job.Combiner = combiner{}
	}
	return job, data
}

// partialReducer folds like-keyed pairs within one chunk's emissions. With
// sparse keys almost every key is unique, so the fold buys nothing — the
// paper's reason for rejecting it.
type partialReducer struct{}

func (partialReducer) PartialReduce(ctx *core.MapContext[uint32], pairs *keyval.Pairs[uint32]) {
	virtN := pairs.VirtLen()
	spec := gpu.KernelSpec{
		Name:           "sio.partialreduce",
		Threads:        virtN,
		FlopsPerThread: 6, // hash probe per pair
		BytesRead:      float64(virtN * 8),
		BytesWritten:   float64(virtN * 8), // ~no compaction on sparse keys
	}
	ctx.LaunchForNamed(spec.Name, spec.Cost(ctx.Dev.Props), func() {
		sums := make(map[uint32]uint32, pairs.Len())
		order := make([]uint32, 0, pairs.Len())
		for i, k := range pairs.Keys {
			if _, ok := sums[k]; !ok {
				order = append(order, k)
			}
			sums[k] += pairs.Vals[i]
		}
		frac := float64(len(order)) / float64(pairs.Len())
		before := pairs.VirtLen()
		pairs.Reset()
		for _, k := range order {
			pairs.Append(k, sums[k])
		}
		pairs.Virt = int64(float64(before) * frac)
	})
}

// combiner merges like-keyed pairs once after all maps; for SIO this stages
// every pair through CPU memory and back over PCIe, which the paper found
// to be a net slowdown.
type combiner struct{}

func (combiner) Combine(ctx *core.MapContext[uint32], keys []uint32, segs []cudpp.Segment, vals []uint32) {
	var phys int64
	for _, s := range segs {
		phys += int64(s.Count)
	}
	virtIn := phys * ctx.VirtFactor
	spec := gpu.KernelSpec{
		Name:           "sio.combine",
		Threads:        int64(len(segs)) * ctx.VirtFactor,
		FlopsPerThread: float64(virtIn) / float64(int64(len(segs))*ctx.VirtFactor),
		BytesRead:      float64(virtIn * 8),
		BytesWritten:   float64(int64(len(segs)) * ctx.VirtFactor * 8),
	}
	ctx.Launch(spec, func() {
		for _, s := range segs {
			var sum uint32
			for i := 0; i < s.Count; i++ {
				sum += vals[s.Start+i]
			}
			ctx.Emit(s.Key, sum)
		}
	})
	ctx.SetEmittedVirt(int64(len(segs)) * ctx.VirtFactor)
}

// Reference computes ground-truth counts sequentially.
func Reference(data []uint32) map[uint32]uint32 {
	ref := make(map[uint32]uint32, len(data))
	for _, v := range data {
		ref[v]++
	}
	return ref
}
