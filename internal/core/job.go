package core

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/keyval"
)

// Job describes one GPMR run: input chunks plus the user's pipeline pieces.
// Mapper is required; everything else is optional with the paper's
// defaults (RoundRobin partitioning is NOT default — a nil Partitioner
// routes all pairs to rank 0, matching GPMR's "omit Partition" behaviour).
type Job[V any] struct {
	Config Config
	Chunks []Chunk

	// Assign optionally overrides the initial round-robin chunk placement
	// (chunk index → rank).
	Assign func(chunk int) int

	Mapper         Mapper[V]
	PartialReducer PartialReducer[V]
	Combiner       Combiner[V]
	Partitioner    Partitioner
	Sorter         Sorter
	Reducer        Reducer[V]
}

// Result is a completed job's output.
type Result[V any] struct {
	// Output is the gathered final pairs at rank 0 (rank order), when
	// Config.GatherOutput is set.
	Output keyval.Pairs[V]
	// PerRank holds each reduce partition's final pairs (reduce output,
	// or the post-shuffle pairs when the job has no Reducer). Partition r
	// is reduced by rank r unless a failure reassigned it to a successor;
	// the slot is indexed by partition either way.
	PerRank []keyval.Pairs[V]
	Trace   *Trace
}

// Validate checks the job's pipeline configuration without running it.
func (j *Job[V]) Validate() error {
	if j.Mapper == nil {
		return errors.New("core: job needs a Mapper")
	}
	if len(j.Chunks) == 0 {
		return errors.New("core: job needs at least one chunk")
	}
	if j.Config.Accumulate && (j.Combiner != nil || j.PartialReducer != nil) {
		return errors.New("core: Accumulation excludes Combiner and PartialReducer")
	}
	if j.Config.DisableSort && (j.Reducer != nil || j.Combiner != nil) {
		return errors.New("core: DisableSort requires no Reducer and no Combiner")
	}
	if j.Config.resilient() && (j.Config.Accumulate || j.Combiner != nil) {
		// Accumulation and Combine emit whole-rank (not per-chunk) output,
		// so chunk-granular re-execution and exactly-once delivery do not
		// apply to them. Straggler-only plans are fine: derating needs no
		// recovery machinery.
		return errors.New("core: fail-stop injection and speculation require the streaming pipeline (no Accumulation, no Combiner)")
	}
	return nil
}

// Run executes the job on a freshly built simulated cluster and returns the
// result with its timing trace.
func (j *Job[V]) Run() (*Result[V], error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	cfg, err := j.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	eng := des.NewEngine()
	cl := cluster.New(eng, *cfg.Cluster)
	rt := &runtime[V]{
		job:    j,
		cfg:    cfg,
		cl:     cl,
		sched:  newScheduler(eng, j.Chunks, cfg, cl.Fabric, j.Assign),
		traces: make([]RankTrace, cfg.GPUs),
		outs:   make([]keyval.Pairs[V], cfg.GPUs),
		gather: make([]*keyval.Pairs[V], cfg.GPUs),
		ft:     newFaultState(cfg.GPUs),
	}
	rt.sched.derateOf = cl.DerateFactor
	if j.Sorter == nil {
		rt.sorter = RadixSorter{}
	} else {
		rt.sorter = j.Sorter
	}
	for r := 0; r < cfg.GPUs; r++ {
		rt.spawnRank(eng, r)
	}
	rt.spawnInjectors(eng)
	wall := eng.Run()

	res := &Result[V]{
		PerRank: rt.outs,
		Trace: &Trace{
			Name:       cfg.Name,
			GPUs:       cfg.GPUs,
			Wall:       wall,
			Ranks:      rt.traces,
			WireBytes:  cl.Fabric.BytesSent,
			LocalBytes: cl.Fabric.LocalBytes,
		},
	}
	if cfg.GatherOutput {
		// Concatenate in partition order; a partition reduced by a
		// successor rank after a failure still lands in its own slot, so
		// the gathered output is identical to a failure-free run.
		for part := 0; part < cfg.GPUs; part++ {
			var pr *keyval.Pairs[V]
			if rt.ft.owner[part] == 0 {
				pr = &rt.outs[part]
			} else {
				pr = rt.gather[part]
			}
			if pr != nil {
				res.Output.AppendPairs(pr)
			}
		}
	}
	return res, nil
}

// MustRun is Run for tests and examples where errors are fatal bugs.
func (j *Job[V]) MustRun() *Result[V] {
	res, err := j.Run()
	if err != nil {
		panic(fmt.Sprintf("core: job %q: %v", j.Config.Name, err))
	}
	return res
}

// runtime holds one execution's shared state.
type runtime[V any] struct {
	job    *Job[V]
	cfg    Config
	cl     *cluster.Cluster
	sched  *scheduler
	sorter Sorter
	traces []RankTrace
	outs   []keyval.Pairs[V]  // final pairs by reduce partition
	gather []*keyval.Pairs[V] // rank 0's gathered outputs, by partition
	ft     faultState
}
