#!/usr/bin/env bash
# Regression gate for the sharded-engine benchmark artifact: re-run
# `gpmrbench -exp engine` fresh and compare it against the committed
# BENCH_engine.json. The shape is the gate — same schema, same ordered
# (shards, engines, workers) rows, positive wall times and speedups.
# Absolute wall-clock times are only compared (within BENCH_TOL,
# default 50%) when the fresh run's GOMAXPROCS matches the committed
# artifact's and is > 1; the committed numbers may come from a
# different machine, so cross-machine times are advisory.
set -euo pipefail
cd "$(dirname "$0")/.."

committed=BENCH_engine.json
[ -f "$committed" ] || { echo "bench_check: no committed $committed"; exit 1; }

workdir="$(mktemp -d)"
cp "$committed" "$workdir/committed.json"
restore() { cp "$workdir/committed.json" "$committed"; rm -rf "$workdir"; }
trap restore EXIT

# -exp engine writes BENCH_engine.json into the working directory: let
# it, then move the fresh artifact aside (the trap restores the
# committed one).
go run ./cmd/gpmrbench -exp engine >"$workdir/engine.out"
mv "$committed" "$workdir/fresh.json"

python3 - "$workdir/committed.json" "$workdir/fresh.json" <<'EOF'
import json, os, sys

c = json.load(open(sys.argv[1]))
f = json.load(open(sys.argv[2]))
assert c["schema"] == f["schema"], ("schema drift", c["schema"], f["schema"])
for key in ("experiment", "jobs", "gpus"):
    assert c[key] == f[key], (key, c[key], f[key])
ck = [(r["shards"], r["engines"], r["workers"]) for r in c["rows"]]
fk = [(r["shards"], r["engines"], r["workers"]) for r in f["rows"]]
assert ck == fk, ("row shape drift", ck, fk)
for r in f["rows"]:
    assert r["ns"] > 0 and r["speedup"] > 0, ("degenerate row", r)
if c["gomaxprocs"] == f["gomaxprocs"] and f["gomaxprocs"] > 1:
    tol = float(os.environ.get("BENCH_TOL", "0.5"))
    for rc, rf in zip(c["rows"], f["rows"]):
        lo, hi = rc["ns"] * (1 - tol), rc["ns"] * (1 + tol)
        assert lo <= rf["ns"] <= hi, ("wall-clock regression", rc, rf)
    checked = "times within %d%%" % (tol * 100)
else:
    checked = "times advisory (gomaxprocs %d vs %d)" % (c["gomaxprocs"], f["gomaxprocs"])
print("bench_check: %d rows match the committed shape; %s" % (len(fk), checked))
EOF
