package wo

import (
	"testing"
)

func testParams(bytes int64, gpus int) Params {
	return Params{
		Bytes:    bytes,
		GPUs:     gpus,
		PhysMax:  1 << 14,
		DictSize: 500, // small dictionary keeps MPH build fast in tests
	}
}

func runAndCheck(t *testing.T, p Params) *Built {
	t.Helper()
	b := NewJob(p)
	res := b.Job.MustRun()
	ref := b.Reference()
	got := make(map[uint32]uint32)
	for i, k := range res.Output.Keys {
		got[k] += res.Output.Vals[i]
	}
	for k, want := range ref {
		if got[k] != want {
			t.Fatalf("slot %d: count %d, want %d", k, got[k], want)
		}
	}
	// Every dictionary slot must be present — the initial map emits all
	// keys with value 0, so zero-count words survive to the output.
	if len(got) != p.DictSize {
		t.Fatalf("output has %d slots, want the full dictionary (%d)", len(got), p.DictSize)
	}
	return b
}

func TestCorrectnessSingleGPU(t *testing.T) {
	runAndCheck(t, testParams(1<<14, 1))
}

func TestCorrectnessMultiGPU(t *testing.T) {
	runAndCheck(t, testParams(1<<15, 4))
}

func TestCorrectnessAboveCrossover(t *testing.T) {
	runAndCheck(t, testParams(1<<15, 16))
}

func TestPartitionerCrossover(t *testing.T) {
	below := NewJob(testParams(1<<14, PartitionerCrossover))
	if below.Job.Partitioner != nil {
		t.Error("partitioner enabled at crossover count")
	}
	above := NewJob(testParams(1<<14, PartitionerCrossover+1))
	if above.Job.Partitioner == nil {
		t.Error("partitioner not enabled above crossover")
	}
}

func TestForcePartitioner(t *testing.T) {
	p := testParams(1<<14, 2)
	p.ForcePartitioner = 1
	if NewJob(p).Job.Partitioner == nil {
		t.Error("ForcePartitioner=1 ignored")
	}
	p.ForcePartitioner = -1
	if NewJob(p).Job.Partitioner != nil {
		t.Error("ForcePartitioner=-1 ignored")
	}
}

func TestAccumulationCapsTraffic(t *testing.T) {
	// With accumulation, per-GPU traffic is one dictionary-sized table, no
	// matter how much text was mapped.
	small := NewJob(testParams(1<<14, 4)).Job.MustRun()
	big := NewJob(testParams(1<<20, 4)).Job.MustRun()
	if big.Trace.WireBytes+big.Trace.LocalBytes > 2*(small.Trace.WireBytes+small.Trace.LocalBytes) {
		t.Errorf("traffic grew with input size despite accumulation: %d vs %d",
			big.Trace.WireBytes+big.Trace.LocalBytes, small.Trace.WireBytes+small.Trace.LocalBytes)
	}
}

func TestVirtualFactorScalesCounts(t *testing.T) {
	p := testParams(1<<20, 2) // 1 MB virtual, 16 KB physical -> factor 64
	b := NewJob(p)
	if b.Job.Config.VirtFactor < 2 {
		t.Fatalf("expected virtual scaling, factor=%d", b.Job.Config.VirtFactor)
	}
	res := b.Job.MustRun()
	ref := b.Reference()
	got := make(map[uint32]uint32)
	for i, k := range res.Output.Keys {
		got[k] += res.Output.Vals[i]
	}
	for k, want := range ref {
		if got[k] != want {
			t.Fatalf("slot %d: %d, want %d (physical counts must be exact)", k, got[k], want)
		}
	}
}
