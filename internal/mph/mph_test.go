package mph

import (
	"testing"

	"repro/internal/workload"
)

func TestBuildSmall(t *testing.T) {
	words := []string{"the", "quick", "brown", "fox", "jumps"}
	tab, err := Build(words)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]string)
	for _, w := range words {
		slot := tab.Lookup(w)
		if slot >= uint32(len(words)) {
			t.Errorf("%q -> %d out of range", w, slot)
		}
		if prev, dup := seen[slot]; dup {
			t.Errorf("collision: %q and %q both -> %d", prev, w, slot)
		}
		seen[slot] = w
	}
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("expected error for empty dictionary")
	}
}

func TestBuildSingleWord(t *testing.T) {
	tab, err := Build([]string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Lookup("solo") != 0 {
		t.Errorf("single word -> %d, want 0", tab.Lookup("solo"))
	}
}

func TestBuildDuplicateFails(t *testing.T) {
	if _, err := Build([]string{"dup", "dup"}); err == nil {
		t.Error("expected error for duplicate words")
	}
}

func TestMinimalPerfectOnPaperDictionary(t *testing.T) {
	// The paper's WO uses a 43k-word dictionary; the hash must be a
	// bijection onto [0, 43000).
	if testing.Short() {
		t.Skip("full dictionary build in -short mode")
	}
	words := workload.Dictionary(42, workload.DictionarySize)
	tab, err := Build(words)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != len(words) {
		t.Fatalf("table size %d, want %d", tab.Len(), len(words))
	}
	hit := make([]bool, len(words))
	for _, w := range words {
		slot := tab.Lookup(w)
		if slot >= uint32(len(words)) {
			t.Fatalf("%q -> %d out of range", w, slot)
		}
		if hit[slot] {
			t.Fatalf("slot %d assigned twice", slot)
		}
		hit[slot] = true
	}
}

func TestLookupDeterministic(t *testing.T) {
	words := workload.Dictionary(1, 100)
	tab, err := Build(words)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		if tab.Lookup(w) != tab.Lookup(w) {
			t.Fatalf("nondeterministic lookup for %q", w)
		}
	}
}

func TestLookupCostGrowsWithLength(t *testing.T) {
	if LookupCostFlops(10) <= LookupCostFlops(3) {
		t.Error("lookup cost should grow with word length")
	}
}

func BenchmarkBuild1k(b *testing.B) {
	words := workload.Dictionary(9, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(words); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	words := workload.Dictionary(9, 1000)
	tab, err := Build(words)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(words[i%len(words)])
	}
}
