package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
)

// Fig3Sizes are the strong-scaling input sets of Table 1 (first sets),
// largest last. MM sizes are matrix edges; WO sizes are bytes; the rest
// are element counts.
var Fig3Sizes = map[string][]int64{
	"mm":  {2048, 4096, 16384},
	"sio": {1 << 20, 8 << 20, 32 << 20, 128 << 20},
	"wo":  {1 << 20, 16 << 20, 64 << 20, 512 << 20},
	"kmc": {1 << 20, 8 << 20, 32 << 20, 512 << 20},
	"lr":  {1 << 20, 16 << 20, 64 << 20, 512 << 20},
}

// EffPoint is one point on a Figure 3 curve.
type EffPoint struct {
	GPUs       int
	Wall       des.Time
	Speedup    float64 // vs 1 GPU on the same input
	Efficiency float64 // Speedup / GPUs, the paper's definition
}

// Fig3Series is one input-size curve.
type Fig3Series struct {
	Size   int64
	Label  string
	Points []EffPoint
}

// Fig3Result holds one benchmark's efficiency curves.
type Fig3Result struct {
	Bench  string
	Series []Fig3Series
}

// Fig3 regenerates the parallel-efficiency curves of Figure 3 for one
// benchmark.
func Fig3(benchName string, o Options) (*Fig3Result, error) {
	o = o.withDefaults()
	sizes, ok := Fig3Sizes[benchName]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	res := &Fig3Result{Bench: benchName}
	for _, size := range sizes {
		s := Fig3Series{Size: size, Label: sizeLabel(benchName, size)}
		var base des.Time
		for _, g := range o.GPUCounts {
			wall, _, err := Run(benchName, size, g, o)
			if err != nil {
				return nil, err
			}
			if g == o.GPUCounts[0] {
				base = wall * des.Time(o.GPUCounts[0])
			}
			sp := float64(base) / float64(wall)
			s.Points = append(s.Points, EffPoint{
				GPUs:       g,
				Wall:       wall,
				Speedup:    sp,
				Efficiency: sp / float64(g),
			})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

func sizeLabel(benchName string, size int64) string {
	switch benchName {
	case "mm":
		return fmt.Sprintf("%d x %d", size, size)
	case "wo":
		return fmt.Sprintf("%dM bytes", size>>20)
	default:
		return fmt.Sprintf("%dM elements", size>>20)
	}
}

// Render writes the curves as an aligned text table.
func (r *Fig3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 3 — %s parallel efficiency (Efficiency = Speedup/#GPUs)\n", strings.ToUpper(r.Bench))
	fmt.Fprintf(w, "%-18s", "input")
	for _, p := range r.Series[0].Points {
		fmt.Fprintf(w, "%8dG", p.GPUs)
	}
	fmt.Fprintln(w)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-18s", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%9.3f", p.Efficiency)
		}
		fmt.Fprintln(w)
	}
}

// Fig2Sizes are the largest datasets, which Figure 2 uses.
var Fig2Sizes = map[string]int64{
	"mm": 16384, "sio": 128 << 20, "wo": 512 << 20, "kmc": 512 << 20, "lr": 512 << 20,
}

// Fig2GPUCounts are the cluster sizes shown in Figure 2.
var Fig2GPUCounts = []int{1, 8, 64}

// Fig2Row is one stacked bar of Figure 2.
type Fig2Row struct {
	Bench     string
	GPUs      int
	Breakdown core.Breakdown
	Wall      des.Time
}

// Fig2 regenerates the runtime-percentage breakdowns of Figure 2.
func Fig2(o Options) ([]Fig2Row, error) {
	o = o.withDefaults()
	var rows []Fig2Row
	for _, b := range Benchmarks {
		for _, g := range Fig2GPUCounts {
			wall, tr, err := Run(b, Fig2Sizes[b], g, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig2Row{Bench: b, GPUs: g, Breakdown: tr.Breakdown(), Wall: wall})
		}
	}
	return rows, nil
}

// RenderFig2 writes the breakdown table.
func RenderFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "Figure 2 — runtime breakdown (% of wall), largest datasets")
	fmt.Fprintf(w, "%-6s %5s %8s %8s %8s %8s %10s %12s\n",
		"bench", "GPUs", "Map", "Bin", "Sort", "Reduce", "Internal", "wall")
	for _, r := range rows {
		b := r.Breakdown
		fmt.Fprintf(w, "%-6s %5d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %9.1f%% %12v\n",
			r.Bench, r.GPUs, b.Map*100, b.CompleteBinning*100, b.Sort*100, b.Reduce*100, b.Internal*100, r.Wall)
	}
}
