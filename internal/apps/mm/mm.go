// Package mm implements the paper's Matrix Multiplication benchmark on
// GPMR: C = A × B for large square matrices.
//
// Following §5.3.1: the naive vector-vector CPU formulation is abandoned
// for a hierarchical, cache-oblivious tiling — the matrices are cut into
// uniform tiles, each map chunk computes full inner products of tile pairs
// with shared-memory blocking, and the per-(i,j) partial product tiles are
// summed by a *second* MapReduce whose map adds partial sums (Sort and
// Reduce are bypassed; a single-key reduction would have to be in-core,
// which large matrices cannot satisfy). Chunks are assigned so a result
// tile's partial products are produced on the tile's owner GPU, making MM
// compute-bound and nearly perfectly scalable.
//
// Scaling note: the simulation uses the paper's virtual tile edge of 1024
// for cost accounting, while computing on small physical tiles so results
// remain exactly checkable against a sequential multiply.
package mm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/workload"
)

// MaxVirtTile and MinVirtTile bound the virtual tile edge: the paper
// transforms the multiplication into N³ uniform tile multiplications of at
// least 1024² (subdividing into 256³ pieces and 16² shared-memory blocks),
// shrinking the tile edge for small matrices so enough map chunks exist to
// cover the GPUs. Even at the 256 floor the kernel retains ~64 flops/byte,
// keeping MM compute-bound.
const (
	MaxVirtTile = 1024
	MinVirtTile = 256
)

// Params configures one MM run.
type Params struct {
	Dim      int64 // virtual matrix edge (paper: 1024, 2048, 4096, 16384)
	GPUs     int
	Seed     uint64
	PhysTile int // physical tile edge (default 8)
}

func (p Params) withDefaults() (Params, error) {
	if p.PhysTile <= 0 {
		p.PhysTile = 8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Dim < MinVirtTile || p.Dim%MinVirtTile != 0 {
		return p, fmt.Errorf("mm: Dim must be a positive multiple of %d, got %d", MinVirtTile, p.Dim)
	}
	return p, nil
}

// tile is one physical tile payload.
type tile []float32

// multChunk is one map chunk: inner-product terms p ∈ [p0, p0+pn) for
// result tile (i,j). When the whole strip's tiles fit in core, one chunk
// covers the full inner product and accumulates in GPU memory, emitting a
// single tile; strips are split when they would not fit — the reason the
// paper runs a second MapReduce to add partial sums — or to expose enough
// chunks for the GPU count.
type multChunk struct {
	i, j   int
	p0, pn int
	t      int   // tiles per side
	tv     int64 // virtual tile edge
	dp     int   // physical tile edge
	a, b   []float32
	phys   int // physical matrix edge
}

func (c *multChunk) Elems() int { return c.pn }

// VirtBytes charges streaming the strip's A and B tiles.
func (c *multChunk) VirtBytes() int64 { return int64(2*c.pn) * c.tv * c.tv * 4 }

// mapper computes one partial product tile per chunk (terms accumulate in
// GPU memory within the chunk); job 2 adds partial products across chunks.
type mapper struct{}

func (mapper) Map(ctx *core.MapContext[tile], c core.Chunk) {
	ch := c.(*multChunk)
	dp, phys := ch.dp, ch.phys
	tv := ch.tv
	spec := gpu.KernelSpec{
		Name:           "mm.map",
		Threads:        tv * tv,
		FlopsPerThread: 2 * float64(tv) * float64(ch.pn),
		// Shared-memory blocking: each element is re-read Dv/32 times.
		BytesRead:    float64(int64(ch.pn) * tv * tv * tv / 32 * 4 * 2),
		BytesWritten: float64(tv * tv * 4),
	}
	ctx.Launch(spec, func() {
		out := make(tile, dp*dp)
		for p := ch.p0; p < ch.p0+ch.pn; p++ {
			for r := 0; r < dp; r++ {
				for k := 0; k < dp; k++ {
					av := ch.a[(ch.i*dp+r)*phys+p*dp+k]
					brow := ch.b[(p*dp+k)*phys+ch.j*dp : (p*dp+k)*phys+ch.j*dp+dp]
					for cc := 0; cc < dp; cc++ {
						out[r*dp+cc] += av * brow[cc]
					}
				}
			}
		}
		ctx.Emit(uint32(ch.i*ch.t+ch.j), out)
	})
	ctx.SetEmittedVirt(1)
}

// owner assigns result tile keys to ranks; job-1 chunk placement uses the
// same function so partition sends stay local.
type owner struct{}

func (owner) Rank(key uint32, nRanks int) int { return int(key) % nRanks }

// sumChunk is a job-2 chunk: the partial tiles received for one result tile.
type sumChunk struct {
	key   uint32
	parts []tile
	tv    int64
	dp    int
}

func (c *sumChunk) Elems() int       { return len(c.parts) }
func (c *sumChunk) VirtBytes() int64 { return int64(len(c.parts)) * c.tv * c.tv * 4 }

// sumMapper adds partial tiles element-wise — the second MapReduce's map.
type sumMapper struct{}

func (sumMapper) Map(ctx *core.MapContext[tile], c core.Chunk) {
	ch := c.(*sumChunk)
	tv := ch.tv
	spec := gpu.KernelSpec{
		Name:           "mm.sum",
		Threads:        tv * tv,
		FlopsPerThread: float64(len(ch.parts)),
		BytesRead:      float64(int64(len(ch.parts)) * tv * tv * 4),
		BytesWritten:   float64(tv * tv * 4),
	}
	ctx.Launch(spec, func() {
		out := make(tile, len(ch.parts[0]))
		for _, p := range ch.parts {
			for i, v := range p {
				out[i] += v
			}
		}
		ctx.Emit(ch.key, out)
	})
	ctx.SetEmittedVirt(1)
}

// Built bundles the two-job MM pipeline.
type Built struct {
	Params Params
	T      int   // tiles per side
	Tv     int64 // virtual tile edge
	Phys   int   // physical matrix edge
	A, B   []float32
	Job1   *core.Job[tile]
}

// New prepares the MM run (job 1; job 2 is built from job 1's outputs).
func New(p Params) (*Built, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	// Tile-edge planning: start at the 1024 maximum and halve (down to the
	// 256 floor) until the T² result tiles can cover the GPU count.
	tv := int64(MaxVirtTile)
	if tv > p.Dim {
		tv = p.Dim
	}
	for tv > MinVirtTile && (p.Dim/tv)*(p.Dim/tv) < 2*int64(p.GPUs) {
		tv /= 2
	}
	t := int(p.Dim / tv)
	phys := t * p.PhysTile
	a := workload.Matrix(p.Seed, phys)
	b := workload.Matrix(p.Seed+1, phys)
	// Strip planning: full inner products when they fit in a quarter of
	// device memory (2·pn+1 tiles resident) and T² chunks already cover the
	// GPUs; otherwise split strips for memory or parallelism.
	maxStripMem := int(gpu.GT200().MemBytes / 4 / (2 * tv * tv * 4))
	if maxStripMem < 1 {
		maxStripMem = 1
	}
	strips := (2*p.GPUs + t*t - 1) / (t * t) // enough chunks for the GPUs
	if minStrips := (t + maxStripMem - 1) / maxStripMem; strips < minStrips {
		strips = minStrips
	}
	if strips > t {
		strips = t
	}
	stripLen := (t + strips - 1) / strips
	chunks := make([]core.Chunk, 0, t*t*strips)
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			for p0 := 0; p0 < t; p0 += stripLen {
				pn := stripLen
				if p0+pn > t {
					pn = t - p0
				}
				chunks = append(chunks, &multChunk{
					i: i, j: j, p0: p0, pn: pn,
					t: t, tv: tv, dp: p.PhysTile, a: a, b: b, phys: phys,
				})
			}
		}
	}
	ow := owner{}
	job1 := &core.Job[tile]{
		Config: core.Config{
			Name:        "mm.multiply",
			GPUs:        p.GPUs,
			VirtFactor:  1,
			ValBytes:    tv * tv * 4,
			DisableSort: true,
			Startup:     core.DefaultStartup,
		},
		Chunks: chunks,
		Assign: func(ci int) int {
			c := chunks[ci].(*multChunk)
			return ow.Rank(uint32(c.i*t+c.j), p.GPUs)
		},
		Mapper:      mapper{},
		Partitioner: ow,
	}
	return &Built{Params: p, T: t, Tv: tv, Phys: phys, A: a, B: b, Job1: job1}, nil
}

// Run executes both MapReduce jobs and returns the result tiles per rank
// plus the two traces.
func (b *Built) Run() (perRank []map[uint32]tile, tr1, tr2 *core.Trace, err error) {
	res1, err := b.Job1.Run()
	if err != nil {
		return nil, nil, nil, err
	}
	// Build job 2: group each rank's received partial tiles by result key.
	var chunks []core.Chunk
	var assign []int
	for r := range res1.PerRank {
		groups := make(map[uint32]*sumChunk)
		var order []uint32
		pr := &res1.PerRank[r]
		for i, k := range pr.Keys {
			g, ok := groups[k]
			if !ok {
				g = &sumChunk{key: k, tv: b.Tv, dp: b.Params.PhysTile}
				groups[k] = g
				order = append(order, k)
			}
			g.parts = append(g.parts, pr.Vals[i])
		}
		for _, k := range order {
			chunks = append(chunks, groups[k])
			assign = append(assign, r)
		}
	}
	if len(chunks) == 0 {
		return nil, nil, nil, fmt.Errorf("mm: job 1 produced no tiles")
	}
	assignCopy := assign
	job2 := &core.Job[tile]{
		Config: core.Config{
			Name:        "mm.addsums",
			GPUs:        b.Params.GPUs,
			VirtFactor:  1,
			ValBytes:    b.Tv * b.Tv * 4,
			DisableSort: true,
			// The second pass runs on whatever execution backend, engine
			// sharding, and flight recorder the first was configured with.
			Workers: b.Job1.Config.Workers,
			Shards:  b.Job1.Config.Shards,
			Obs:     b.Job1.Config.Obs,
		},
		Chunks:      chunks,
		Assign:      func(ci int) int { return assignCopy[ci] },
		Mapper:      sumMapper{},
		Partitioner: owner{},
	}
	res2, err := job2.Run()
	if err != nil {
		return nil, nil, nil, err
	}
	perRank = make([]map[uint32]tile, len(res2.PerRank))
	for r := range res2.PerRank {
		m := make(map[uint32]tile)
		pr := &res2.PerRank[r]
		for i, k := range pr.Keys {
			if have, ok := m[k]; ok {
				// Partial tiles that crossed job-2 chunks: add.
				for e, v := range pr.Vals[i] {
					have[e] += v
				}
			} else {
				m[k] = pr.Vals[i]
			}
		}
		perRank[r] = m
	}
	return perRank, res1.Trace, res2.Trace, nil
}

// Reassemble stitches per-rank result tiles into the full physical C.
func (b *Built) Reassemble(perRank []map[uint32]tile) []float32 {
	dp, t := b.Params.PhysTile, b.T
	c := make([]float32, b.Phys*b.Phys)
	for _, m := range perRank {
		for key, tl := range m {
			i, j := int(key)/t, int(key)%t
			for r := 0; r < dp; r++ {
				copy(c[(i*dp+r)*b.Phys+j*dp:(i*dp+r)*b.Phys+j*dp+dp], tl[r*dp:(r+1)*dp])
			}
		}
	}
	return c
}

// Reference multiplies the physical matrices sequentially.
func (b *Built) Reference() []float32 {
	n := b.Phys
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := b.A[i*n+k]
			if av == 0 {
				continue
			}
			brow := b.B[k*n : k*n+n]
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}
