package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/gpu"
)

// comparisonSorter models the paper's fallback for non-integer-like keys
// ("when not, we implemented our own"): an n·log₂n comparison sort that is
// slower than the CUDPP radix default.
type comparisonSorter struct{}

func (comparisonSorter) SortCost(pr gpu.Props, virtN, valBytes int64) des.Time {
	if virtN < 2 {
		return 0
	}
	logN := int64(0)
	for n := virtN - 1; n > 0; n >>= 1 {
		logN++
	}
	spec := gpu.KernelSpec{
		Name:           "compare-sort-pass",
		Threads:        virtN,
		FlopsPerThread: 4,
		BytesRead:      float64(virtN * (4 + valBytes)),
		BytesWritten:   float64(virtN * (4 + valBytes)),
	}
	return des.Time(logN) * spec.Cost(pr)
}

func TestCustomSorterFunctionalAndSlower(t *testing.T) {
	data := smallData(20000, 600)
	virt := int64(2048) // enough virtual pairs that sort cost matters
	mk := func(s Sorter) *Job[uint32] {
		j := countJob(data, 2, 8)
		j.Sorter = s
		j.Config.VirtFactor = virt
		for i, c := range j.Chunks {
			ic := c.(*intChunk)
			j.Chunks[i] = &intChunk{data: ic.data, virt: int64(len(ic.data)) * 4 * virt}
		}
		return j
	}
	radix := mk(nil).MustRun() // nil selects the RadixSorter default
	comp := mk(comparisonSorter{}).MustRun()

	// Same functional output either way.
	ref := referenceCounts(data, 0)
	checkCounts(t, &radix.Output, ref)
	checkCounts(t, &comp.Output, ref)

	// The comparison sort must cost more wall time at this scale.
	if comp.Trace.Wall <= radix.Trace.Wall {
		t.Errorf("comparison sorter (%v) not slower than radix (%v)", comp.Trace.Wall, radix.Trace.Wall)
	}
}

func TestRadixSorterCostMatchesCUDPP(t *testing.T) {
	pr := gpu.GT200()
	if got, want := (RadixSorter{}).SortCost(pr, 1<<20, 4), (RadixSorter{}).SortCost(pr, 1<<20, 4); got != want {
		t.Errorf("sorter cost not deterministic: %v vs %v", got, want)
	}
	small := (RadixSorter{}).SortCost(pr, 1<<10, 4)
	big := (RadixSorter{}).SortCost(pr, 1<<24, 4)
	if big <= small {
		t.Error("radix sort cost must grow with input")
	}
}
