package des

import "testing"

func TestCondBroadcastWakesAllWaiters(t *testing.T) {
	eng := NewEngine()
	c := NewCond(eng)
	woken := 0
	for i := 0; i < 3; i++ {
		eng.Spawn("waiter", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	eng.Spawn("caster", func(p *Proc) {
		p.Sleep(5)
		c.Broadcast()
	})
	if end := eng.Run(); end != 5 {
		t.Errorf("finished at t=%v, want 5", end)
	}
	if woken != 3 {
		t.Errorf("woke %d waiters, want 3", woken)
	}
}

func TestCondIsReusable(t *testing.T) {
	eng := NewEngine()
	c := NewCond(eng)
	rounds := 0
	eng.Spawn("waiter", func(p *Proc) {
		for rounds < 2 {
			c.Wait(p)
			rounds++
		}
	})
	eng.Spawn("caster", func(p *Proc) {
		p.Sleep(1)
		c.Broadcast()
		p.Sleep(1)
		c.Broadcast()
	})
	eng.Run()
	if rounds != 2 {
		t.Errorf("waiter saw %d broadcasts, want 2", rounds)
	}
}
