package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// The engine-sharding experiment: where the backend sweep (BENCH_backend)
// parallelizes kernel closures under one event loop, this sweeps the event
// loop itself — the multijob stream re-run at 1, 2, 4, and per-node engine
// shards, against both kernel backends — and reports host wall-clock per
// cell. Every cell is also a determinism check: the sweep fails unless all
// shard counts produce byte-identical cluster traces.

// engineShardCounts is the swept Shards knob (per ISSUE: 1, 2, 4,
// per-node). -1 decodes to one engine per node plus the hub.
var engineShardCounts = []int{1, 2, 4, -1}

// engineWorkers are the kernel backends crossed with the shard counts:
// serial (closures inline on the shard's goroutine) and pool(all cores).
var engineWorkers = []int{0, -1}

// engineReps is how many times each cell runs; the fastest run is kept
// (wall-clock minima are far more stable than means under CI noise).
const engineReps = 3

// EngineRow is one (shards, workers) cell of the sweep.
type EngineRow struct {
	Shards  int     `json:"shards"`  // the knob as passed
	Engines int     `json:"engines"` // decoded engine count
	Workers int     `json:"workers"`
	Ns      int64   `json:"ns"`
	Speedup float64 `json:"speedup"` // vs the shards=1 serial baseline
}

// engineCell times one configuration over the concurrent multijob policies
// (FixedShare and WeightedFair; FIFOExclusive serializes tenants, so a
// sharded engine has nothing to overlap) and returns the fastest of
// engineReps host times plus the run's rendered traces for the
// cross-shard-count identity check.
func engineCell(o Options, shards, workers int) (int64, []string, error) {
	cc := cluster.DefaultConfig(MultijobGPUs)
	cc.Workers = workers
	cc.Shards = shards
	pols := []sched.Policy{
		{Kind: sched.FixedShare, Share: 4},
		{Kind: sched.WeightedFair},
	}
	best := int64(1<<63 - 1)
	var traces []string
	for rep := 0; rep < engineReps; rep++ {
		cur := make([]string, 0, len(pols))
		start := time.Now()
		for _, pol := range pols {
			ct, err := sched.Run(cc, pol, multijobStream(o))
			if err != nil {
				return 0, nil, fmt.Errorf("engine: shards=%d workers=%d %s: %w", shards, workers, pol.Kind, err)
			}
			cur = append(cur, ct.String())
		}
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
		if traces == nil {
			traces = cur
		} else {
			for i := range cur {
				if cur[i] != traces[i] {
					return 0, nil, fmt.Errorf("engine: shards=%d workers=%d: rep %d diverged from rep 0", shards, workers, rep)
				}
			}
		}
	}
	return best, traces, nil
}

// Engine sweeps shard count x kernel backend over the multijob stream.
// Every cell's cluster traces must be byte-identical to the shards=1
// serial cell's — the sweep doubles as the engine's end-to-end determinism
// proof — and each row's speedup is measured against that same baseline.
func Engine(o Options) ([]EngineRow, error) {
	o = o.withDefaults()
	var rows []EngineRow
	var baseNs int64
	var baseTraces []string
	for _, workers := range engineWorkers {
		for _, shards := range engineShardCounts {
			ns, traces, err := engineCell(o, shards, workers)
			if err != nil {
				return nil, err
			}
			if baseTraces == nil {
				baseNs, baseTraces = ns, traces
			} else {
				for i := range traces {
					if traces[i] != baseTraces[i] {
						return nil, fmt.Errorf(
							"engine: shards=%d workers=%d produced a different cluster trace than shards=1 workers=0 (determinism violation)",
							shards, workers)
					}
				}
			}
			engines := shards
			if shards < 0 {
				cc := cluster.DefaultConfig(MultijobGPUs)
				cc.Shards = shards
				engines = cc.ShardCount()
			}
			rows = append(rows, EngineRow{
				Shards:  shards,
				Engines: engines,
				Workers: workers,
				Ns:      ns,
				Speedup: float64(baseNs) / float64(ns),
			})
		}
	}
	return rows, nil
}

// RenderEngine writes the sweep as a table.
func RenderEngine(w io.Writer, rows []EngineRow) {
	fmt.Fprintf(w, "Sharded-engine wall clock — multijob stream (%d jobs, %d GPUs), GOMAXPROCS %d\n",
		MultijobJobs, MultijobGPUs, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "traces byte-identical across all cells (verified in-run)\n")
	fmt.Fprintf(w, "%8s %8s %8s %12s %8s\n", "shards", "engines", "workers", "host ms", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %8d %12.1f %7.2fx\n",
			r.Shards, r.Engines, r.Workers, float64(r.Ns)/1e6, r.Speedup)
	}
}

// WriteEngineJSON emits the BENCH_engine.json artifact.
func WriteEngineJSON(path string, rows []EngineRow) error {
	art := struct {
		Stamp
		Experiment string      `json:"experiment"`
		Jobs       int         `json:"jobs"`
		GPUs       int         `json:"gpus"`
		Rows       []EngineRow `json:"rows"`
	}{
		Stamp:      NewStamp(),
		Experiment: "multijob stream, FixedShare(4) + WeightedFair",
		Jobs:       MultijobJobs,
		GPUs:       MultijobGPUs,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
