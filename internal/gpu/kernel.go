package gpu

import "repro/internal/des"

// KernelSpec describes the work a kernel performs, in *virtual* units: when
// the simulation replicates data (see Buffer), specs must be given for the
// virtual (paper-scale) workload so timing matches paper-scale runs.
type KernelSpec struct {
	Name string

	// Threads is the total number of logical threads launched. Launches too
	// small to fill the device are charged reduced throughput.
	Threads int64

	// FlopsPerThread is the arithmetic work per thread (fused ops count 1).
	FlopsPerThread float64

	// BytesRead / BytesWritten are coalesced global-memory traffic totals.
	BytesRead    float64
	BytesWritten float64

	// UncoalescedBytes is global traffic issued in scattered patterns,
	// charged at MemBandwidth / UncoalescedPenalty.
	UncoalescedBytes float64

	// Atomics is the number of global atomic operations; AtomicConflict is
	// the average number of colliding threads per operation (1 = conflict
	// free; k means k threads serialize on the same address).
	Atomics        float64
	AtomicConflict float64
}

// Cost returns the simulated execution time of the kernel on a device with
// properties pr, excluding queueing for the compute engine.
func (s KernelSpec) Cost(pr Props) des.Time {
	if s.Threads <= 0 {
		return pr.LaunchOverhead
	}
	util := 1.0
	if s.Threads < pr.MaxResidentThreads {
		util = float64(s.Threads) / float64(pr.MaxResidentThreads)
		// Even a single warp gets a sliver of the machine.
		if util < 1.0/float64(pr.MaxResidentThreads) {
			util = 1.0 / float64(pr.MaxResidentThreads)
		}
	}
	compute := float64(s.Threads) * s.FlopsPerThread / (pr.SustainedFlops * util)
	mem := (s.BytesRead + s.BytesWritten) / (pr.MemBandwidth * util)
	if s.UncoalescedBytes > 0 {
		mem += s.UncoalescedBytes * pr.UncoalescedPenalty / (pr.MemBandwidth * util)
	}
	t := compute
	if mem > t {
		t = mem
	}
	if s.Atomics > 0 {
		conflict := s.AtomicConflict
		if conflict < 1 {
			conflict = 1
		}
		t += s.Atomics * conflict / pr.AtomicThroughput
	}
	return pr.LaunchOverhead + des.FromSeconds(t)
}
