// Package wo implements the paper's Word Occurrence benchmark on GPMR:
// count word occurrences in a corpus of random text over a 43,000-word
// dictionary.
//
// Following §5.3.3: string keys are replaced by a minimal perfect hash to
// unique 4-byte integers; the job uses Accumulation (an initial map emits
// all 43k keys with value 0, then every emission is a fire-and-forget
// atomic increment into the resident emit space), which nearly removes the
// communication that bottlenecks CPU implementations. No Partitioner is
// used below a GPU-count threshold (all pairs to one node); past the
// crossover the default round-robin Partitioner is enabled. The reducer
// assigns each key to a warp, reading and summing coalesced — the redesign
// that cut reduce times by an order of magnitude.
package wo

import (
	"strings"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/cudpp"
	"repro/internal/gpu"
	"repro/internal/mph"
	"repro/internal/workload"
)

// PartitionerCrossover is the GPU count above which the round-robin
// Partitioner is enabled; at or below it all pairs go to a single reducer
// (the paper enables partitioning "once the number of GPUs crosses a
// certain threshold").
const PartitionerCrossover = 8

// Params configures one WO job.
type Params struct {
	Bytes    int64 // virtual corpus size in bytes (paper: 1M–512M)
	GPUs     int
	Seed     uint64
	PhysMax  int   // physical corpus cap in bytes (default 1<<20)
	ChunkCap int64 // virtual bytes per chunk (default 32M, "millions of bytes")
	DictSize int   // dictionary words (default 43,000)

	// ForcePartitioner overrides the crossover: <0 never, >0 always, 0 auto.
	ForcePartitioner int

	// NoAccumulation is the paper's ablation: emit one pair per word as SIO
	// does instead of accumulating on the GPU. The paper saw "dramatically
	// worse performance" in this mode — WO behaved like SIO.
	NoAccumulation bool
}

func (p Params) withDefaults() Params {
	if p.PhysMax <= 0 {
		p.PhysMax = 1 << 20
	}
	if p.ChunkCap <= 0 {
		p.ChunkCap = 32 << 20
	}
	if p.DictSize <= 0 {
		p.DictSize = workload.DictionarySize
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

type chunk struct {
	lines     []string
	words     int
	virtBytes int64
}

func (c *chunk) Elems() int       { return c.words }
func (c *chunk) VirtBytes() int64 { return c.virtBytes }

// mapper scans one line per thread, hashes each word with the minimal
// perfect hash, and accumulates counts with atomic increments into the
// GPU-resident emit space.
type mapper struct {
	table    *mph.Table
	dictSize int
	avgWord  float64
}

func (m *mapper) Map(ctx *core.MapContext[uint32], c core.Chunk) {
	ch := c.(*chunk)
	res := ctx.Resident()
	virtWords := int64(ch.words) * ctx.VirtFactor
	virtLines := int64(len(ch.lines)) * ctx.VirtFactor
	if res.Len() == 0 {
		// Initial map task: emit all dictionary keys with value 0.
		init := gpu.KernelSpec{
			Name:         "wo.init",
			Threads:      int64(m.dictSize),
			BytesWritten: float64(m.dictSize * 8),
		}
		ctx.Launch(init, func() {
			for k := 0; k < m.dictSize; k++ {
				res.Append(uint32(k), 0)
			}
			res.Virt = int64(m.dictSize)
		})
	}
	spec := gpu.KernelSpec{
		Name:           "wo.map",
		Threads:        virtLines,
		FlopsPerThread: float64(ch.virtBytes) / float64(virtLines) * 4, // scan+hash per byte
		BytesRead:      float64(ch.virtBytes),
		Atomics:        float64(virtWords),
		AtomicConflict: 1 + float64(virtWords)/float64(m.dictSize)/1024,
	}
	ctx.Launch(spec, func() {
		for _, line := range ch.lines {
			for _, w := range strings.Fields(line) {
				res.Vals[m.table.Lookup(w)]++
			}
		}
	})
}

// reducer sums each key's values with one warp per key, fully coalesced.
type reducer struct{ dictSize int }

func (reducer) ChunkValueSets(sets int, virtVals, free int64) int {
	return core.FitAllChunking(sets, virtVals, free, 4)
}

func (r reducer) Reduce(ctx *core.ReduceContext[uint32], keys []uint32, segs []cudpp.Segment, vals []uint32) {
	var phys int64
	for _, s := range segs {
		phys += int64(s.Count)
	}
	spec := gpu.KernelSpec{
		Name:           "wo.reduce",
		Threads:        int64(len(segs)) * 32, // warp per key
		FlopsPerThread: float64(phys)/float64(len(segs))/32 + 5,
		BytesRead:      float64(phys * 4), // coalesced warp-wide reads
		BytesWritten:   float64(len(segs) * 8),
	}
	ctx.Launch(spec, func() {
		for _, s := range segs {
			var sum uint32
			for i := 0; i < s.Count; i++ {
				sum += vals[s.Start+i]
			}
			ctx.Emit(s.Key, sum)
		}
	})
	ctx.SetEmittedVirt(int64(len(segs)))
}

// Built bundles a WO job with the lookup structures tests need.
type Built struct {
	Job   *core.Job[uint32]
	Dict  []string
	Table *mph.Table
	Lines []string // physical corpus
}

// NewJob builds the GPMR job for the given parameters.
func NewJob(p Params) *Built {
	p = p.withDefaults()
	dict := workload.Dictionary(p.Seed, p.DictSize)
	table, err := mph.Build(dict)
	if err != nil {
		panic("wo: mph build failed: " + err.Error())
	}
	sc := apputil.PlanScale(p.Bytes, p.PhysMax)
	lines := workload.Text(p.Seed+1, dict, sc.PhysElems)
	nChunks := apputil.NumChunks(sc.VirtElems, p.ChunkCap, p.GPUs)
	offs := workload.SplitEven(len(lines), nChunks)
	chunks := make([]core.Chunk, nChunks)
	var physBytes int64
	for _, ln := range lines {
		physBytes += int64(len(ln)) + 1
	}
	for i := range chunks {
		part := lines[offs[i]:offs[i+1]]
		words := 0
		var bytes int64
		for _, ln := range part {
			words += len(strings.Fields(ln))
			bytes += int64(len(ln)) + 1
		}
		chunks[i] = &chunk{lines: part, words: words, virtBytes: bytes * sc.Factor}
	}
	usePart := p.GPUs > PartitionerCrossover
	if p.ForcePartitioner > 0 {
		usePart = true
	} else if p.ForcePartitioner < 0 {
		usePart = false
	}
	var part core.Partitioner
	if usePart {
		part = core.RoundRobin{}
	}
	job := &core.Job[uint32]{
		Config: core.Config{
			Name:         "wo",
			GPUs:         p.GPUs,
			VirtFactor:   sc.Factor,
			ValBytes:     4,
			Accumulate:   true,
			GatherOutput: true,
			Startup:      core.DefaultStartup,
		},
		Chunks:      chunks,
		Mapper:      &mapper{table: table, dictSize: p.DictSize},
		Partitioner: part,
		Reducer:     reducer{dictSize: p.DictSize},
	}
	if p.NoAccumulation {
		job.Config.Accumulate = false
		job.Config.Name = "wo-noaccum"
		job.Mapper = &emitMapper{table: table}
	}
	return &Built{Job: job, Dict: dict, Table: table, Lines: lines}
}

// emitMapper is the ablation mapper: one ⟨hash(word),1⟩ pair per word,
// exactly the SIO-like traffic pattern the paper measured before adding
// Accumulation.
type emitMapper struct{ table *mph.Table }

func (m *emitMapper) Map(ctx *core.MapContext[uint32], c core.Chunk) {
	ch := c.(*chunk)
	virtWords := int64(ch.words) * ctx.VirtFactor
	virtLines := int64(len(ch.lines)) * ctx.VirtFactor
	spec := gpu.KernelSpec{
		Name:           "wo.map.emit",
		Threads:        virtLines,
		FlopsPerThread: float64(ch.virtBytes) / float64(virtLines) * 4,
		BytesRead:      float64(ch.virtBytes),
		BytesWritten:   float64(virtWords * 8),
	}
	ctx.Launch(spec, func() {
		for _, line := range ch.lines {
			for _, w := range strings.Fields(line) {
				ctx.Emit(m.table.Lookup(w), 1)
			}
		}
	})
	ctx.SetEmittedVirt(virtWords)
}

// Reference counts word occurrences sequentially, keyed by hash slot.
func (b *Built) Reference() map[uint32]uint32 {
	ref := make(map[uint32]uint32)
	for _, ln := range b.Lines {
		for _, w := range strings.Fields(ln) {
			ref[b.Table.Lookup(w)]++
		}
	}
	return ref
}
