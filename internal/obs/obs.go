// Package obs is the simulator's virtual-time flight recorder: a
// structured event log threaded through every layer of the stack — DES
// engine internals, GPU kernel and copy spans, pipeline phase spans,
// scheduler decisions, and serve-level job lifecycles — with exports to
// canonical JSONL and Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) and a post-processing summary (utilization, phase
// percentiles, critical path).
//
// Design constraints, in order:
//
//  1. Zero perturbation. Recording only reads the current virtual time
//     and appends to memory; it never touches engine state, so every
//     simulated output is byte-identical with recording on or off. A nil
//     *Recorder is the disabled state and every method is nil-safe, so
//     call sites need no conditionals.
//
//  2. Determinism. Events are stamped (time, stream, per-stream sequence)
//     at emission and exported in that order. A stream is one logical
//     timeline (a GPU engine, a job's rank, a scheduler decision track)
//     confined to a single DES engine, so its emission order is the
//     engine's serialized execution order — which the sharded-engine
//     invariant (see des.ShardSet) makes independent of the shard count.
//     The canonical export therefore produces byte-identical files at any
//     shard count >= 1 and under any kernel-execution backend.
//
//  3. Separation of the engine's own bookkeeping. Events in CatEngine
//     (shard rounds, dispatch counters, backend attribution) legitimately
//     vary with the host configuration; they are recorded for inspection
//     but excluded from the canonical export and the Chrome timeline.
//
// The package deliberately imports only the standard library: times are
// int64 nanoseconds (des.Time converts via a plain int64 cast), which
// lets the des package itself carry a recorder without an import cycle.
package obs

import (
	"sort"
	"strconv"
	"sync"
)

// Cat classifies an event for export filtering.
type Cat uint8

const (
	// CatSim marks simulation-level events: part of the canonical export
	// and byte-identical across shard counts and kernel backends.
	CatSim Cat = iota
	// CatEngine marks engine internals (shard rounds, dispatch stats,
	// backend attribution). Recorded, but excluded from the canonical
	// export because they legitimately depend on the host configuration.
	CatEngine
)

// Attr is one ordered key/value attribute on an event.
type Attr struct {
	K, V string
}

// A builds a string attribute.
func A(k, v string) Attr { return Attr{K: k, V: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{K: k, V: strconv.FormatInt(v, 10)} }

// Float builds a float attribute with the shortest exact representation.
func Float(k string, v float64) Attr { return Attr{K: k, V: strconv.FormatFloat(v, 'g', -1, 64)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{K: k, V: strconv.FormatBool(v)} }

// Event is one recorded occurrence: an instant (Dur == 0) or a span.
// Times are virtual nanoseconds.
type Event struct {
	T      int64  // start time
	Dur    int64  // span duration; 0 = instant
	Cat    Cat    // export category
	Stream string // logical timeline (one engine-confined entity)
	Kind   string // event kind, e.g. "kernel", "phase.map", "steal"
	Attrs  []Attr // ordered attributes
	Seq    uint64 // per-stream emission index, stamped by the Recorder
}

// End returns the event's end time (T for instants).
func (e *Event) End() int64 { return e.T + e.Dur }

// Attr returns the value of the named attribute, or "".
func (e *Event) Attr(k string) string {
	for _, a := range e.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// Recorder collects events from every layer of one simulation. The
// zero-cost disabled state is a nil *Recorder: all methods are nil-safe
// no-ops. The mutex serializes emissions from concurrently running engine
// shards; determinism comes from the per-stream sequence numbers, not
// from global arrival order (which shard interleaving scrambles).
type Recorder struct {
	mu     sync.Mutex
	prefix string
	events []Event
	seqs   map[string]uint64
}

// New returns an empty, enabled recorder.
func New() *Recorder {
	return &Recorder{seqs: make(map[string]uint64)}
}

// Enabled reports whether the recorder records (i.e. is non-nil). Call
// sites use it to skip attribute construction when disabled.
func (r *Recorder) Enabled() bool { return r != nil }

// SetPrefix prepends p to every subsequently emitted stream key. Drivers
// that run several independent simulations into one recorder (e.g. the
// multijob experiment's per-policy runs) use it to keep their timelines
// apart. Must not be called while a simulation is emitting.
func (r *Recorder) SetPrefix(p string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.prefix = p
	r.mu.Unlock()
}

// Emit records an instant event at virtual time t (nanoseconds).
func (r *Recorder) Emit(t int64, cat Cat, stream, kind string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.record(Event{T: t, Cat: cat, Stream: stream, Kind: kind, Attrs: attrs})
}

// Span records a span from start to end (virtual nanoseconds). A span
// whose end precedes its start is clamped to an instant at start.
func (r *Recorder) Span(start, end int64, cat Cat, stream, kind string, attrs ...Attr) {
	if r == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	r.record(Event{T: start, Dur: dur, Cat: cat, Stream: stream, Kind: kind, Attrs: attrs})
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	e.Stream = r.prefix + e.Stream
	e.Seq = r.seqs[e.Stream]
	r.seqs[e.Stream] = e.Seq + 1
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Len returns the number of recorded events (all categories).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of every recorded event in canonical order:
// sorted by (time, stream, per-stream sequence). The sort key is a pure
// function of the simulation, so the order — like the events themselves —
// is independent of shard count and backend.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sortCanonical(out)
	return out
}

// Canonical returns the canonical event set: CatSim only, canonical
// order. This is what the JSONL and Chrome exports serialize.
func (r *Recorder) Canonical() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Event
	for _, e := range r.events {
		if e.Cat == CatSim {
			out = append(out, e)
		}
	}
	r.mu.Unlock()
	sortCanonical(out)
	return out
}

// Sort orders an event slice canonically, by (time, stream, per-stream
// seq) — the same order Events and Canonical return. Mergers that combine
// events from several recorders (e.g. the fleet timeline stitcher) use it
// to restore canonical order after concatenation.
func Sort(evs []Event) { sortCanonical(evs) }

// sortCanonical orders events by (time, stream, per-stream seq). Distinct
// streams never share a (stream, seq) pair, so the order is total.
func sortCanonical(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		return a.Seq < b.Seq
	})
}
