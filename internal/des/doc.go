// Package des implements a deterministic discrete-event simulation engine
// that can run single-threaded or as N coordinated shards.
//
// The engine advances a virtual clock and runs simulated processes
// cooperatively: exactly one process of an engine executes at a time, and
// all ties in wake-up time are broken by scheduling sequence number, so a
// simulation is bit-reproducible across runs regardless of host
// scheduling. Processes are ordinary goroutines that hand control back to
// the engine whenever they perform a blocking simulation primitive (Sleep,
// resource Acquire, queue Get). The package provides FIFO resources with
// integer capacity, unbounded message queues, one-shot signals, condition
// broadcasts, and waitgroups — enough to model compute engines, buses,
// NICs, and MPI-style message passing.
//
// # Concurrency contract
//
// Everything in this package is governed by three ownership rules.
//
// Engine-confined state. An Engine's clock, event heap, post buffer,
// process table, and open-future set are touched only by the goroutine
// currently driving that engine: the owning goroutine before Run, then
// exactly one of {the dispatch loop, the single running process} at a
// time. Primitives (Resource, Queue, Signal, Cond, WaitGroup) are engine-
// confined too, with one twist: an idle Resource re-homes to the engine of
// its next acquirer, and every primitive delivers wake-ups on the parked
// process's OWN engine — which is what lets hardware models (NICs, PCIe
// links, GPU engines) be leased to tenants on different shards over time
// without any locking. A primitive must never be touched concurrently from
// two shards; callers guarantee that by confining each cooperating process
// group (a job's gang) to one shard and leasing shared hardware
// whole-node, so at any instant each primitive has exactly one owning
// shard.
//
// Shard ownership. A ShardSet runs N engines in rounds under conservative
// lookahead: each round the coordinator computes, from every shard's
// next-event time and the declared cross-shard edge latencies, a safe
// horizon per shard, and shards run concurrently strictly below their
// horizons. Cross-shard effects travel ONLY through ShardSet.Post, which
// stamps each message with (deliver-at, srcKey, seq) — srcKey names the
// logical sender, stably across shard layouts — and buffers it at the
// destination. A buffered post is applied before any local event at the
// same or later time, so the merged dispatch order of every engine is a
// pure function of the simulation, not of the shard count: 1, 2, and N
// shards produce byte-identical event orders, traces, and outputs. Posts
// must carry at least their edge's declared delay; both Post and delivery
// assert the lookahead invariant (a post can never land behind its
// destination's frontier).
//
// Injector and Future rules. Injectors are the ONLY thread-safe boundary:
// Inject and Close may be called from any foreign goroutine, and the
// running engine (or ShardSet coordinator) applies injections between
// event dispatches (between rounds, at the global frontier, for a
// ShardSet). Futures are the join handles for host work dispatched outside
// the simulation: NewFuture and Join must run on a process of the owning
// engine, Complete/Fail on the worker; every future must be joined before
// shutdown, and both Engine.Run and ShardSet.Run panic on leaks. See
// DESIGN.md, "Sharded engine".
package des
