package gpmr_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its artifact through internal/bench and
// reports the headline simulated metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation. Host
// ns/op measures simulator throughput, not GPMR performance; the paper's
// quantities are the custom metrics (sim-ms, speedup, efficiency, pct).

import (
	"testing"

	"repro/internal/bench"
)

// benchOpts keeps bench runs quick; raise PhysBudget (or use cmd/gpmrbench
// -phys) for higher functional fidelity.
var benchOpts = bench.Options{PhysBudget: 1 << 14, GPUCounts: []int{1, 4, 8, 16, 32, 64}}

func BenchmarkTable1Datasets(b *testing.B) {
	// Table 1 is configuration, not measurement: validate that every
	// strong-scaling input builds and runs at 1 GPU.
	for i := 0; i < b.N; i++ {
		for _, name := range bench.Benchmarks {
			size := bench.Fig3Sizes[name][0]
			if _, _, err := bench.Run(name, size, 1, benchOpts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchmarkFig3(b *testing.B, name string) {
	var res *bench.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Fig3(name, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Series[len(res.Series)-1] // the largest input's curve
	for _, p := range last.Points {
		if p.GPUs == 64 {
			b.ReportMetric(p.Efficiency, "eff@64gpu")
			b.ReportMetric(p.Speedup, "speedup@64gpu")
		}
	}
	b.ReportMetric(last.Points[0].Wall.Seconds()*1e3, "sim-ms@1gpu")
}

func BenchmarkFig3MM(b *testing.B)  { benchmarkFig3(b, "mm") }
func BenchmarkFig3SIO(b *testing.B) { benchmarkFig3(b, "sio") }
func BenchmarkFig3WO(b *testing.B)  { benchmarkFig3(b, "wo") }
func BenchmarkFig3KMC(b *testing.B) { benchmarkFig3(b, "kmc") }
func BenchmarkFig3LR(b *testing.B)  { benchmarkFig3(b, "lr") }

func BenchmarkFig2Breakdown(b *testing.B) {
	var rows []bench.Fig2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Bench == "sio" && r.GPUs == 1 {
			b.ReportMetric(r.Breakdown.Sort*100, "sio-sort-pct@1gpu")
		}
		if r.Bench == "sio" && r.GPUs == 64 {
			b.ReportMetric(r.Breakdown.CompleteBinning*100, "sio-bin-pct@64gpu")
		}
		if r.Bench == "mm" && r.GPUs == 64 {
			b.ReportMetric(r.Breakdown.Map*100, "mm-map-pct@64gpu")
		}
	}
}

func BenchmarkTable2VsPhoenix(b *testing.B) {
	var rows []bench.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup1, r.Bench+"-x1gpu")
	}
}

func BenchmarkTable3VsMars(b *testing.B) {
	var rows []bench.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup1, r.Bench+"-x1gpu")
	}
}

func BenchmarkTable4LoC(b *testing.B) {
	var rows []bench.LoCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table4(".")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.GPMR), r.Bench+"-gpmr-loc")
	}
}

func BenchmarkWeakScaling(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		pts, err := bench.Weak("kmc", benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1].Efficiency
	}
	b.ReportMetric(last, "kmc-weak-eff@64gpu")
}

func BenchmarkAblations(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Ablation(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Name == "wo: no accumulation" {
			b.ReportMetric(r.Slowdown, "wo-noaccum-slowdown")
		}
		if r.Name == "sio@64GPU: gpudirect" {
			b.ReportMetric(r.Slowdown, "gpudirect-ratio")
		}
	}
}
