// Command quickstart is the smallest complete GPMR program: count integer
// occurrences across a 4-GPU simulated cluster, in the style of the
// paper's Sparse Integer Occurrence benchmark, and verify the result
// against a sequential count.
package main

import (
	"fmt"
	"log"

	gpmr "repro"
	"repro/internal/cudpp"
	"repro/internal/gpu"
	"repro/internal/workload"
)

// intChunk wraps a slice of integers as a GPMR chunk.
type intChunk struct{ data []uint32 }

func (c *intChunk) Elems() int       { return len(c.data) }
func (c *intChunk) VirtBytes() int64 { return int64(len(c.data)) * 4 }

// countMapper emits ⟨value, 1⟩ for every integer, two integers per GPU
// thread as the paper's SIO mapper does.
type countMapper struct{}

func (countMapper) Map(ctx *gpmr.MapContext[uint32], c gpmr.Chunk) {
	ch := c.(*intChunk)
	n := int64(ch.Elems())
	ctx.Launch(gpu.KernelSpec{
		Name:         "quickstart.map",
		Threads:      n / 2,
		BytesRead:    float64(n * 4),
		BytesWritten: float64(n * 8),
	}, func() {
		for _, v := range ch.data {
			ctx.Emit(v, 1)
		}
	})
}

// sumReducer sums each key's values, one key per thread.
type sumReducer struct{}

func (sumReducer) ChunkValueSets(sets int, virtVals, free int64) int {
	return gpmr.FitAllChunking(sets, virtVals, free, 4)
}

func (sumReducer) Reduce(ctx *gpmr.ReduceContext[uint32], keys []uint32, segs []cudpp.Segment, vals []uint32) {
	ctx.Launch(gpu.KernelSpec{
		Name:      "quickstart.reduce",
		Threads:   int64(len(segs)),
		BytesRead: float64(len(vals) * 4),
	}, func() {
		for _, s := range segs {
			var sum uint32
			for i := 0; i < s.Count; i++ {
				sum += vals[s.Start+i]
			}
			ctx.Emit(s.Key, sum)
		}
	})
}

func main() {
	// One million integers over a small key space, split into 16 chunks.
	const n, keySpace = 1 << 20, 4096
	rng := workload.NewRNG(42)
	data := make([]uint32, n)
	for i := range data {
		data[i] = uint32(rng.Intn(keySpace))
	}
	var chunks []gpmr.Chunk
	offs := workload.SplitEven(n, 16)
	for i := 0; i < 16; i++ {
		chunks = append(chunks, &intChunk{data: data[offs[i]:offs[i+1]]})
	}

	job := &gpmr.Job[uint32]{
		Config:      gpmr.Config{Name: "quickstart", GPUs: 4, ValBytes: 4, GatherOutput: true},
		Chunks:      chunks,
		Mapper:      countMapper{},
		Partitioner: gpmr.RoundRobin{},
		Reducer:     sumReducer{},
	}
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Verify against a sequential count.
	ref := make(map[uint32]uint32)
	for _, v := range data {
		ref[v]++
	}
	for i, k := range res.Output.Keys {
		if res.Output.Vals[i] != ref[k] {
			log.Fatalf("key %d: got %d, want %d", k, res.Output.Vals[i], ref[k])
		}
	}

	b := res.Trace.Breakdown()
	fmt.Printf("counted %d integers into %d keys on %d simulated GPUs\n", n, res.Output.Len(), job.Config.GPUs)
	fmt.Printf("simulated wall time: %v\n", res.Trace.Wall)
	fmt.Printf("breakdown: map %.1f%%  bin %.1f%%  sort %.1f%%  reduce %.1f%%  internal %.1f%%\n",
		b.Map*100, b.CompleteBinning*100, b.Sort*100, b.Reduce*100, b.Internal*100)
	fmt.Println("all counts verified against the sequential reference")
}
