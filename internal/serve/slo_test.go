package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/sched"
)

// TestSLOTraceRoundTrip: the SLO header switches and per-arrival SLO
// fields survive the JSONL round trip — and stay entirely absent from
// the encoding when unused, so pre-SLO traces are byte-unchanged.
func TestSLOTraceRoundTrip(t *testing.T) {
	h := Header{Version: TraceVersion, Policy: "weighted-fair", GPUs: 8, GPUsPerNode: 4,
		PhysBudget: 4096, Reserve: true, Preempt: true, Elastic: true}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, h)
	w.Arrive(Arrival{Seq: 0, At: 5, Tenant: "a", Kind: "wo", Params: Params{"bytes": 1024},
		Class: "interactive", Deadline: 20 * des.Millisecond})
	w.Arrive(Arrival{Seq: 1, At: 9, Tenant: "b", Kind: "kmc",
		Class: "standard", Deadline: 60 * des.Millisecond, Downgrade: true})
	w.Arrive(Arrival{Seq: 2, At: 12, Tenant: "c", Kind: "sio", Elastic: true})
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !tr.Header.Reserve || !tr.Header.Preempt || !tr.Header.Elastic {
		t.Fatalf("header SLO switches mangled: %+v", tr.Header)
	}
	pol, err := tr.Header.policy()
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	if !pol.Reserve || !pol.Preempt || !pol.Elastic {
		t.Fatalf("policy drops SLO switches: %+v", pol)
	}
	a := tr.Events[0].Arrive
	if a.Class != "interactive" || a.Deadline != 20*des.Millisecond {
		t.Fatalf("arrival 0 SLO fields mangled: %+v", a)
	}
	if b := tr.Events[1].Arrive; !b.Downgrade {
		t.Fatalf("arrival 1 lost Downgrade: %+v", b)
	}
	if c := tr.Events[2].Arrive; !c.Elastic {
		t.Fatalf("arrival 2 lost Elastic: %+v", c)
	}

	// Byte compatibility: an SLO-free trace must not mention any of the
	// new fields at all.
	var plain bytes.Buffer
	pw := NewTraceWriter(&plain, Header{Version: TraceVersion, Policy: "weighted-fair", GPUs: 8})
	pw.Arrive(Arrival{Seq: 0, At: 5, Tenant: "a", Kind: "wo"})
	if err := pw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for _, frag := range []string{"reserve", "preempt", "elastic", "class", "deadline", "downgrade"} {
		if strings.Contains(plain.String(), frag) {
			t.Errorf("SLO-free trace encodes %q:\n%s", frag, plain.String())
		}
	}
}

// TestRetryAfterGrowsWithBacklog: a shed submission's Retry-After hint
// is the cost-model drain time of the queue it bounced off, so a deeper
// backlog must advertise a longer back-off — not the old hardcoded 1s.
func TestRetryAfterGrowsWithBacklog(t *testing.T) {
	ms := des.Millisecond
	sp := Params{"elements": 1 << 30, "gpus": 4, "seed": int64(1), "chunkcap": 16 << 20}
	shedRetry := func(maxQueue int) int {
		h := Header{Version: TraceVersion, Policy: "fifo-exclusive", GPUs: 4, GPUsPerNode: 4,
			MaxQueue: maxQueue, PhysBudget: testPhys}
		var evs []Event
		for i := 0; i <= maxQueue+1; i++ {
			evs = append(evs, arr(i, des.Time(i)*ms, "t", "sio", sp))
		}
		rep, err := Replay(buildTrace(h, evs), ReplayOptions{})
		if err != nil {
			t.Fatalf("Replay(queue %d): %v", maxQueue, err)
		}
		shed := rep.Jobs[maxQueue+1]
		if shed.State != Rejected || !strings.Contains(shed.Reason, "shed") {
			t.Fatalf("job %d not shed: %+v", maxQueue+1, shed)
		}
		return shed.RetryAfter
	}
	r1 := shedRetry(1)
	r3 := shedRetry(3)
	if r1 < 2 {
		t.Errorf("1-deep backlog hint %ds — floor value, drain prediction never engaged", r1)
	}
	if r3 <= r1 {
		t.Errorf("3-deep backlog hint %ds not above 1-deep hint %ds", r3, r1)
	}
}

// TestPreemptCancelReplay: under a preempting policy a DELETE reaches a
// RUNNING job — it checkpoint-quiesces at the next chunk boundary and
// ends Cancelled; under the same schedule without Preempt the cancel is
// a no-op and the job runs to Done. Both replays are deterministic.
func TestPreemptCancelReplay(t *testing.T) {
	ms := des.Millisecond
	mk := func(preempt bool) *Trace {
		h := Header{Version: TraceVersion, Policy: "weighted-fair", GPUs: 4, GPUsPerNode: 4,
			Preempt: preempt, PhysBudget: testPhys}
		return buildTrace(h, []Event{
			arr(0, 0, "t", "sio", Params{"elements": 16 << 20, "gpus": 4, "seed": int64(1), "chunkcap": 1 << 20}),
			{Cancel: &Cancel{Seq: 0, At: 5 * ms}},
		})
	}
	rep, err := Replay(mk(true), ReplayOptions{})
	if err != nil {
		t.Fatalf("Replay(preempt): %v", err)
	}
	if got := rep.Jobs[0].State; got != Cancelled {
		t.Fatalf("preempt-cancelled job ended %v, want %v (%s)", got, Cancelled, rep.Jobs[0].Reason)
	}
	if rep.Stats.Cancelled != 1 || rep.Stats.Done != 0 {
		t.Fatalf("stats after preempt-cancel: %+v", rep.Stats)
	}
	// The gang freed at a chunk boundary, not at the job's natural end.
	if rep.Jobs[0].Finish <= 5*ms {
		t.Fatalf("cancel applied at %v, before the cancel event", rep.Jobs[0].Finish)
	}
	rep2, err := Replay(mk(true), ReplayOptions{})
	if err != nil {
		t.Fatalf("second Replay(preempt): %v", err)
	}
	if rep.String() != rep2.String() {
		t.Fatalf("preempt-cancel replay not deterministic:\n%s\nvs\n%s", rep.String(), rep2.String())
	}

	ctrl, err := Replay(mk(false), ReplayOptions{})
	if err != nil {
		t.Fatalf("Replay(no preempt): %v", err)
	}
	if got := ctrl.Jobs[0].State; got != Done {
		t.Fatalf("without Preempt the cancel reached a running job: state %v, want %v", got, Done)
	}
}

// TestCancelHTTPDistinction: the DELETE endpoint's 409s distinguish a
// running job under a non-preempting policy (retryable under a different
// policy) from a finished one (never cancellable again), and a
// preempting policy turns the former into a successful cancel.
func TestCancelHTTPDistinction(t *testing.T) {
	// Big chunk count so the engine is still crunching the job's events
	// when the DELETE lands — in live mode the engine free-runs, so only
	// real event-processing work keeps a job observably Running.
	params := Params{"elements": 1 << 36, "gpus": 4, "seed": 1, "chunkcap": 1 << 20}
	submitAndAwaitRunning := func(sv *Server, url string) bool {
		t.Helper()
		resp, body := postJSON(t, url+"/jobs", Request{Tenant: "t", Kind: "sio", Params: params})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
		}
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			info, ok := sv.Job(0)
			if !ok {
				t.Fatal("job 0 vanished")
			}
			switch info.State {
			case Running:
				return true
			case Done, Failed, Cancelled, Rejected:
				return false
			}
			time.Sleep(50 * time.Microsecond)
		}
		t.Fatal("job 0 never left Queued")
		return false
	}
	del := func(url string, id int) (int, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", url, id), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE: %v", err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 512)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	// Non-preempting policy: a running job's DELETE is a 409 that names
	// the policy, not the generic "finished" conflict.
	sv := startTestServer(t, Config{Cluster: cluster.DefaultConfig(4),
		Policy: sched.Policy{Kind: sched.WeightedFair}})
	hs := httptest.NewServer(NewHandler(sv, HandlerConfig{Logf: quietLogf}))
	if submitAndAwaitRunning(sv, hs.URL) {
		code, body := del(hs.URL, 0)
		if code != http.StatusConflict || !strings.Contains(body, "does not preempt") {
			t.Errorf("DELETE running w/o preempt: status %d body %q, want 409 naming the policy", code, body)
		}
	} else {
		t.Log("job finished before the DELETE; running-state 409 not exercised this run")
	}
	waitDrained(t, sv, 1)
	if code, body := del(hs.URL, 0); code != http.StatusConflict || !strings.Contains(body, "already finished") {
		t.Errorf("DELETE finished job: status %d body %q, want 409 'already finished'", code, body)
	}
	sv.Drain()
	hs.Close()

	// Preempting policy: the same DELETE succeeds and the job ends
	// Cancelled.
	svp := startTestServer(t, Config{Cluster: cluster.DefaultConfig(4),
		Policy: sched.Policy{Kind: sched.WeightedFair, Preempt: true}})
	hsp := httptest.NewServer(NewHandler(svp, HandlerConfig{Logf: quietLogf}))
	defer hsp.Close()
	if submitAndAwaitRunning(svp, hsp.URL) {
		code, body := del(hsp.URL, 0)
		if code != http.StatusOK || !strings.Contains(body, "cancelled") {
			t.Fatalf("DELETE running w/ preempt: status %d body %q, want 200", code, body)
		}
		waitDrained(t, svp, 1)
		if info, _ := svp.Job(0); info.State != Cancelled {
			t.Errorf("preempt-cancelled job ended %v, want %v", info.State, Cancelled)
		}
	} else {
		t.Log("job finished before the DELETE; preempt-cancel not exercised this run")
	}
	svp.Drain()
}

// TestSLOLiveReplayIdentity extends the live/replay identity promise to
// the SLO surface: a live run whose submissions carry classes,
// deadlines, downgrade and elastic opt-ins — under a policy with
// reservation, preemption, and grow-back all on — records a trace whose
// offline replay reproduces the report byte for byte, per-class
// attainment lines included.
func TestSLOLiveReplayIdentity(t *testing.T) {
	var rec bytes.Buffer
	sv := startTestServer(t, Config{
		Cluster: cluster.DefaultConfig(8),
		Policy:  sched.Policy{Kind: sched.WeightedFair, Reserve: true, Preempt: true, Elastic: true},
		TraceW:  &rec,
	})
	reqs := []Request{
		{Tenant: "a", Kind: "sio", Params: Params{"elements": 32 << 20, "gpus": 8, "seed": int64(1), "chunkcap": 1 << 20},
			Class: "batch", Elastic: true},
		{Tenant: "b", Kind: "wo", Params: Params{"bytes": 4 << 20, "gpus": 2, "seed": int64(2)},
			Class: "interactive", Deadline: 20 * des.Millisecond, MinGang: 2},
		{Tenant: "c", Kind: "kmc", Params: Params{"points": 4 << 20, "gpus": 4, "seed": int64(3)},
			Class: "standard", Deadline: 60 * des.Millisecond, Downgrade: true},
		{Tenant: "a", Kind: "wo", Params: Params{"bytes": 4 << 20, "gpus": 2, "seed": int64(4)},
			Class: "interactive", Deadline: 20 * des.Millisecond, MinGang: 2},
	}
	var accepted int64
	for i, r := range reqs {
		info, err := sv.Submit(r)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if info.State != Rejected {
			accepted++
		}
		if r.Class != "" && info.State != Rejected && info.Class != r.Class {
			t.Fatalf("submit %d: class %q not recorded: %+v", i, r.Class, info)
		}
	}
	waitDrained(t, sv, int64(len(reqs)))
	live, err := sv.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if cs := live.Stats.Classes["interactive"]; cs == nil || cs.Submitted == 0 {
		t.Fatalf("no interactive class stats: %+v", live.Stats.Classes)
	}
	if !strings.Contains(live.String(), "class interactive") {
		t.Fatalf("report has no per-class lines:\n%s", live.String())
	}

	tr, err := ReadTrace(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !tr.Header.Reserve || !tr.Header.Preempt || !tr.Header.Elastic {
		t.Fatalf("recorded header lost SLO switches: %+v", tr.Header)
	}
	replay, err := Replay(tr, ReplayOptions{Catalog: testCatalog()})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if live.String() != replay.String() {
		t.Fatalf("live and replay reports differ:\n--- live ---\n%s--- replay ---\n%s", live.String(), replay.String())
	}
}
