package des

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// --- scenario machinery -------------------------------------------------
//
// A scenario is pure data: logical actors ("gangs") with launch times and
// work scripts, plus the two edge latencies of the hub-and-spokes topology
// the scheduler uses. Running the same scenario at different shard counts
// must produce byte-identical hub logs — every log append happens on the
// hub engine, so the log order IS the merged event order.

type scnGang struct {
	launchAt Time
	sleeps   []Time
}

type scenario struct {
	outLat Time // hub -> gang edge latency (launch lookahead)
	inLat  Time // gang -> hub edge latency (reply lookahead)
	gangs  []scnGang
}

// randomScenario derives a scenario from a seed: small integer latencies
// and sleeps so time collisions (the tie-break paths) actually happen.
func randomScenario(seed int64) scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := scenario{
		outLat: Time(2 + rng.Intn(5)),
		inLat:  Time(1 + rng.Intn(4)),
	}
	nGangs := 2 + rng.Intn(4)
	for g := 0; g < nGangs; g++ {
		gang := scnGang{launchAt: Time(rng.Intn(6))}
		for s, n := 0, 1+rng.Intn(5); s < n; s++ {
			gang.sleeps = append(gang.sleeps, Time(1+rng.Intn(4)))
		}
		sc.gangs = append(sc.gangs, gang)
	}
	return sc
}

// runScenario executes sc on a ShardSet of the given size and returns the
// hub log. Gang g is homed like the scheduler homes jobs: on engine
// 1 + g%(shards-1), or on the hub when there is only one shard. Replies
// carry their send time so delivery can assert the exact edge latency —
// the lookahead property in its strongest form.
func runScenario(t testing.TB, sc scenario, shards int) []string {
	t.Helper()
	ss := NewShardSet(shards)
	hub := ss.Engine(0)
	for k := 1; k < shards; k++ {
		ss.DeclareEdge(0, k, sc.outLat)
		ss.DeclareEdge(k, 0, sc.inLat)
	}
	var log []string
	note := func(p *Proc, msg string) {
		log = append(log, fmt.Sprintf("%v %s", p.Now(), msg))
	}
	hub.Spawn("driver", func(p *Proc) {
		for g := range sc.gangs {
			gang := sc.gangs[g]
			home := 0
			if shards > 1 {
				home = 1 + g%(shards-1)
			}
			if d := gang.launchAt - p.Now(); d > 0 {
				p.Sleep(d)
			}
			g := g
			sent := p.Now()
			ss.Post(hub, home, -1, sc.outLat, fmt.Sprintf("gang%d.launch", g), func(q *Proc) {
				if q.Now() != sent+sc.outLat {
					t.Errorf("gang %d launched at %v, want %v", g, q.Now(), sent+sc.outLat)
				}
				gangEng := q.Engine()
				for s, d := range gang.sleeps {
					q.Sleep(d)
					s, sentBack := s, q.Now()
					ss.Post(gangEng, 0, g, sc.inLat, fmt.Sprintf("gang%d.step%d", g, s), func(r *Proc) {
						if r.Now() != sentBack+sc.inLat {
							t.Errorf("gang %d step %d delivered at %v, want send %v + lat %v",
								g, s, r.Now(), sentBack, sc.inLat)
						}
						note(r, fmt.Sprintf("gang%d.step%d", g, s))
					})
				}
			})
		}
	})
	ss.Run()
	return log
}

// TestShardScenarioInvariantAcrossCounts is the determinism property at
// the engine layer: the same scenario at 1, 2, 3, and 5 shards produces
// the identical hub log.
func TestShardScenarioInvariantAcrossCounts(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		sc := randomScenario(seed)
		base := runScenario(t, sc, 1)
		for _, shards := range []int{2, 3, 5} {
			got := runScenario(t, sc, shards)
			if strings.Join(got, "\n") != strings.Join(base, "\n") {
				t.Fatalf("seed %d: %d-shard log differs from 1-shard:\n1: %v\n%d: %v",
					seed, shards, base, shards, got)
			}
		}
	}
}

// FuzzShardDeterminism extends the property test to fuzzed seeds: any
// scenario the generator can express must be shard-count invariant and
// must satisfy the delivery-latency assertions embedded in runScenario.
func FuzzShardDeterminism(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		sc := randomScenario(seed)
		base := runScenario(t, sc, 1)
		for _, shards := range []int{2, 4} {
			got := runScenario(t, sc, shards)
			if strings.Join(got, "\n") != strings.Join(base, "\n") {
				t.Fatalf("seed %d: %d-shard log differs from 1-shard", seed, shards)
			}
		}
	})
}

// expectPanic runs f and demands a panic containing want.
func expectPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q, want one containing %q", msg, want)
		}
	}()
	f()
}

// TestPostValidation: the lookahead contract is enforced at the Post call.
func TestPostValidation(t *testing.T) {
	t.Run("undeclared edge", func(t *testing.T) {
		ss := NewShardSet(2)
		expectPanic(t, "undeclared edge", func() {
			ss.Post(ss.Engine(0), 1, -1, 5, "x", func(p *Proc) {})
		})
	})
	t.Run("delay below lookahead", func(t *testing.T) {
		ss := NewShardSet(2)
		ss.DeclareEdge(0, 1, 10)
		expectPanic(t, "below edge", func() {
			ss.Post(ss.Engine(0), 1, -1, 5, "x", func(p *Proc) {})
		})
	})
	t.Run("non-positive delay", func(t *testing.T) {
		ss := NewShardSet(1)
		expectPanic(t, "positive delay", func() {
			ss.Post(ss.Engine(0), 0, -1, 0, "x", func(p *Proc) {})
		})
	})
	t.Run("self edge declaration", func(t *testing.T) {
		ss := NewShardSet(2)
		expectPanic(t, "self-edges", func() { ss.DeclareEdge(1, 1, 5) })
	})
	t.Run("zero lookahead edge", func(t *testing.T) {
		ss := NewShardSet(2)
		expectPanic(t, "positive lookahead", func() { ss.DeclareEdge(0, 1, 0) })
	})
	t.Run("foreign engine", func(t *testing.T) {
		ss := NewShardSet(1)
		expectPanic(t, "outside this shard set", func() {
			ss.Post(NewEngine(), 0, -1, 5, "x", func(p *Proc) {})
		})
	})
}

// TestShardSetDeadlockAggregates: a process parked forever on one shard
// deadlocks the whole set, and the panic names it.
func TestShardSetDeadlockAggregates(t *testing.T) {
	ss := NewShardSet(2)
	ss.DeclareEdge(0, 1, 3)
	sig := NewSignal(ss.Engine(1))
	ss.Post(ss.Engine(0), 1, -1, 3, "waiter.launch", func(p *Proc) {
		p.Engine().Spawn("stuck", func(q *Proc) { sig.Wait(q) })
	})
	expectPanic(t, "deadlock", func() { ss.Run() })
}

// TestShardSetRunTwicePanics mirrors the single-engine re-entry guard.
func TestShardSetRunTwicePanics(t *testing.T) {
	ss := NewShardSet(1)
	ss.Engine(0).Spawn("noop", func(p *Proc) {})
	ss.Run()
	expectPanic(t, "Run called twice", func() { ss.Run() })
}

// TestShardSetInjectorParksAndResumes: the coordinator serves the
// injection boundary exactly like a parked single engine — injections land
// at the global frontier, Close releases Run.
func TestShardSetInjectorParksAndResumes(t *testing.T) {
	ss := NewShardSet(2)
	ss.DeclareEdge(0, 1, 4)
	inj := ss.NewInjector()
	hub := ss.Engine(0)

	done := make(chan Time, 1)
	go func() { done <- ss.Run() }()

	if err := inj.Inject("a", func(p *Proc) {
		if p.Now() != 0 {
			t.Errorf("first injection at t=%v, want 0", p.Now())
		}
		// Fan work out to the other shard; its clock becomes the frontier.
		ss.Post(p.Engine(), 1, -1, 4, "a.work", func(q *Proc) { q.Sleep(6) })
	}); err != nil {
		t.Fatalf("Inject a: %v", err)
	}
	waitParked(t, hub, 10) // probe until shard 1's sleep has moved the frontier
	if err := inj.Inject("b", func(p *Proc) {
		// Lands at the global frontier: shard 1 reached t=10.
		if p.Now() != 10 {
			t.Errorf("second injection at t=%v, want the global frontier 10", p.Now())
		}
	}); err != nil {
		t.Fatalf("Inject b: %v", err)
	}
	if err := inj.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if end := <-done; end != 10 {
		t.Fatalf("Run returned t=%v, want 10", end)
	}
}

// TestShardSetInjectorConcurrentSubmitters is the sharded rerun of
// TestInjectorConcurrentSubmitters: many foreign goroutines inject into a
// running shard set whose spoke shards are busy ticking, under -race.
// Every injection lands exactly once at a non-decreasing frontier.
func TestShardSetInjectorConcurrentSubmitters(t *testing.T) {
	ss := NewShardSet(3)
	hub := ss.Engine(0)
	for k := 1; k < 3; k++ {
		ss.DeclareEdge(0, k, 3)
		ss.DeclareEdge(k, 0, 2)
	}
	inj := ss.NewInjector()
	// Busy spokes: tickers that keep their shards' clocks moving and post
	// progress back to the hub, so injections interleave with real rounds.
	for k := 1; k < 3; k++ {
		k := k
		ss.Post(hub, k, -1, 3, fmt.Sprintf("ticker%d.launch", k), func(p *Proc) {
			gangEng := p.Engine()
			for i := 0; i < 50; i++ {
				p.Sleep(2)
				ss.Post(gangEng, 0, k, 2, "tick", func(q *Proc) {})
			}
		})
	}

	const submitters, each = 8, 25
	var mu sync.Mutex
	seen := 0
	var last Time

	done := make(chan Time, 1)
	go func() { done <- ss.Run() }()

	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < each; k++ {
				err := inj.Inject("job", func(p *Proc) {
					at := p.Now()
					mu.Lock()
					if at < last {
						t.Errorf("frontier went backwards: %v after %v", at, last)
					}
					last = at
					seen++
					mu.Unlock()
					p.Sleep(3)
				})
				if err != nil {
					t.Errorf("Inject: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := inj.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	if seen != submitters*each {
		t.Fatalf("saw %d injections, want %d", seen, submitters*each)
	}
}

// TestShardSetUnjoinedFuturePanics: the leak check covers every shard.
func TestShardSetUnjoinedFuturePanics(t *testing.T) {
	ss := NewShardSet(2)
	ss.DeclareEdge(0, 1, 3)
	ss.Post(ss.Engine(0), 1, -1, 3, "leaker", func(p *Proc) {
		f := p.Engine().NewFuture("orphan")
		f.Complete()
	})
	expectPanic(t, "unjoined future", func() { ss.Run() })
}
