package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/cudpp"
	"repro/internal/fault"
	"repro/internal/keyval"
)

// nopCombiner satisfies Combiner for validation tests.
type nopCombiner struct{}

func (nopCombiner) Combine(ctx *MapContext[uint32], keys []uint32, segs []cudpp.Segment, vals []uint32) {
}

// nopPartial satisfies PartialReducer for validation tests.
type nopPartial struct{}

func (nopPartial) PartialReduce(ctx *MapContext[uint32], pairs *keyval.Pairs[uint32]) {}

// TestJobValidationTable drives every invalid job/config combination
// through Run and demands a descriptive error — never a panic, never a
// silent fallback.
func TestJobValidationTable(t *testing.T) {
	valid := func() *Job[uint32] { return countJob(smallData(100, 10), 2, 2) }
	cases := []struct {
		name string
		mut  func(j *Job[uint32])
	}{
		{"zero GPUs", func(j *Job[uint32]) { j.Config.GPUs = 0 }},
		{"negative GPUs", func(j *Job[uint32]) { j.Config.GPUs = -3 }},
		{"nil Mapper", func(j *Job[uint32]) { j.Mapper = nil }},
		{"no chunks", func(j *Job[uint32]) { j.Chunks = nil }},
		{"Accumulate+Combiner", func(j *Job[uint32]) {
			j.Config.Accumulate = true
			j.Combiner = nopCombiner{}
		}},
		{"Accumulate+PartialReducer", func(j *Job[uint32]) {
			j.Config.Accumulate = true
			j.PartialReducer = nopPartial{}
		}},
		{"DisableSort+Reducer", func(j *Job[uint32]) { j.Config.DisableSort = true }},
		{"DisableSort+Combiner", func(j *Job[uint32]) {
			j.Config.DisableSort = true
			j.Reducer = nil
			j.Combiner = nopCombiner{}
		}},
		{"unknown StealPolicy", func(j *Job[uint32]) { j.Config.StealPolicy = StealPolicy(7) }},
		{"fault rank out of range", func(j *Job[uint32]) {
			j.Config.Faults = &fault.Plan{Events: []fault.Event{fault.FailAt(9, 0)}}
		}},
		{"fail-stop with Accumulate", func(j *Job[uint32]) {
			j.Config.Accumulate = true
			j.Combiner = nil
			j.PartialReducer = nil
			j.Mapper = accumMapper{keySpace: 10}
			j.Config.Faults = &fault.Plan{Events: []fault.Event{fault.FailAt(0, 0)}}
		}},
		{"speculation with Combiner", func(j *Job[uint32]) {
			j.Config.Speculate = true
			j.Combiner = nopCombiner{}
		}},
		{"cluster GPU mismatch", func(j *Job[uint32]) {
			cc := cluster.DefaultConfig(4)
			j.Config.Cluster = &cc // job wants 2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := valid()
			tc.mut(j)
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Run panicked instead of returning an error: %v", r)
				}
			}()
			if _, err := j.Run(); err == nil {
				t.Error("invalid job ran without error")
			}
		})
	}
	// The unmutated fixture must of course still run.
	if _, err := valid().Run(); err != nil {
		t.Fatalf("valid fixture rejected: %v", err)
	}
}
