// Package mars models the Mars GPU MapReduce framework (He et al.,
// PACT'08), the paper's single-GPU baseline for Table 3. Mars's structural
// costs are reproduced explicitly:
//
//   - strictly in-core: the input, all intermediate pairs, and sort
//     scratch must fit in device memory, or Run returns ErrNotInCore
//     (the paper sized Table 3's inputs to Mars's in-core limits);
//   - two-pass emission: because Mars cannot dynamically allocate, every
//     map runs twice — MapCount to size the output, a prefix sum, then the
//     real Map writing to exact offsets;
//   - a monolithic bitonic sort of *all* intermediate pairs — no combiner,
//     no accumulation, which is what GPMR's Accumulation beats by 37× on
//     KMC (bitonic moves every pair through ~log²n/2 compare-exchange
//     passes, so large values are catastrophic);
//   - no copy/compute overlap: stages run strictly one after another, with
//     one H2D of the whole input and one D2H of the whole output;
//   - framework-owned scheduling (one thread per item, no user kernels).
package mars

import (
	"errors"
	"fmt"

	"repro/internal/cudpp"
	"repro/internal/des"
	"repro/internal/gpu"
	"repro/internal/keyval"
)

// ErrNotInCore is returned when the dataset exceeds Mars's in-core limit.
var ErrNotInCore = errors.New("mars: dataset exceeds in-core device memory")

// App describes one Mars job. Costs are expressed at paper (virtual)
// scale; functional work runs on the physical data inside MapTask/Reduce.
type App[V any] struct {
	Name string

	InputBytes int64 // virtual input size
	Elements   int64 // virtual map items
	Pairs      int64 // virtual intermediate pairs emitted
	ValBytes   int64 // virtual bytes per value

	// MapFlopsPerElem and MapBytesPerElem describe one map pass; Mars runs
	// the kernel twice (count + emit). UncoalescedFrac is the fraction of
	// the map traffic that is scattered (one-thread-per-item layouts).
	MapFlopsPerElem   float64
	MapBytesPerElem   float64
	UncoalescedFrac   float64
	ReduceFlopsPerVal float64

	// NoSort skips the sort/group machinery for apps whose keys are
	// already unique (Mars lets applications disable the sort stage;
	// its MM uses that).
	NoSort bool

	// MapTask emits all pairs functionally.
	MapTask func(emit func(k uint32, v V))
	// Reduce folds one key's values; nil copies the last value.
	Reduce func(k uint32, vals []V) V
}

// Result carries the output, the wall time, and the per-stage times that
// make Mars's cost structure visible in reports.
type Result[V any] struct {
	Output map[uint32]V
	Wall   des.Time

	H2D, MapCount, Scan, Map, Sort, Group, Reduce, D2H des.Time
}

// sortCost models Mars's bitonic sort: ~log₂²n/2 compare-exchange passes,
// each streaming every pair through global memory.
func sortCost(pr gpu.Props, virtN, valBytes int64) des.Time {
	if virtN < 2 {
		return 0
	}
	logN := 0
	for n := virtN - 1; n > 0; n >>= 1 {
		logN++
	}
	passes := logN * (logN + 1) / 2
	spec := gpu.KernelSpec{
		Name:           "mars.bitonic.pass",
		Threads:        virtN / 2,
		FlopsPerThread: 4,
		BytesRead:      float64(virtN * (4 + valBytes)),
		BytesWritten:   float64(virtN * (4 + valBytes)),
	}
	return des.Time(passes) * spec.Cost(pr)
}

// Run executes the app on one simulated GT200.
func Run[V any](app App[V], pr gpu.Props) (*Result[V], error) {
	if app.MapTask == nil || app.Elements <= 0 {
		return nil, fmt.Errorf("mars: app %q needs elements and a map function", app.Name)
	}
	pairBytes := app.Pairs * (4 + app.ValBytes)
	// In-core requirement: input + pairs + sort scratch.
	if app.InputBytes+2*pairBytes > pr.MemBytes {
		return nil, fmt.Errorf("%w: need %d bytes of %d", ErrNotInCore, app.InputBytes+2*pairBytes, pr.MemBytes)
	}
	eng := des.NewEngine()
	link := des.NewResource(eng, "pcie", 1)
	dev := gpu.NewDevice(eng, 0, pr, link, gpu.PCIeGen2x16())

	res := &Result[V]{}
	var pairs keyval.Pairs[V]
	eng.Spawn("mars", func(p *des.Proc) {
		t0 := p.Now()
		dev.CopyToDevice(p, app.InputBytes, nil)
		res.H2D = p.Now() - t0

		mapSpec := gpu.KernelSpec{
			Name:             app.Name + ".mapcount",
			Threads:          app.Elements,
			FlopsPerThread:   app.MapFlopsPerElem,
			BytesRead:        float64(app.Elements) * app.MapBytesPerElem * (1 - app.UncoalescedFrac),
			UncoalescedBytes: float64(app.Elements) * app.MapBytesPerElem * app.UncoalescedFrac,
			BytesWritten:     float64(app.Elements * 4), // per-thread counts
		}
		t := p.Now()
		dev.Launch(p, mapSpec, nil)
		res.MapCount = p.Now() - t

		t = p.Now()
		cudpp.DeviceScan(p, dev, app.Elements, nil)
		res.Scan = p.Now() - t

		emitSpec := mapSpec
		emitSpec.Name = app.Name + ".map"
		emitSpec.BytesWritten = float64(pairBytes)
		t = p.Now()
		dev.Launch(p, emitSpec, func() {
			app.MapTask(func(k uint32, v V) { pairs.Append(k, v) })
		})
		res.Map = p.Now() - t

		var segs []cudpp.Segment
		if app.NoSort {
			// Keys are unique: group trivially without sorting.
			dev.Launch(p, gpu.KernelSpec{Name: app.Name + ".nosort"}, func() {
				cudpp.SortPairs(pairs.Keys, pairs.Vals) // functional grouping only
				segs = cudpp.Segments(pairs.Keys)
			})
		} else {
			t = p.Now()
			dev.LaunchFor(p, sortCost(pr, app.Pairs, app.ValBytes), func() {
				cudpp.SortPairs(pairs.Keys, pairs.Vals)
			})
			res.Sort = p.Now() - t

			t = p.Now()
			segs, _ = cudpp.DeviceSegments(p, dev, pairs.Keys, app.Pairs)
			res.Group = p.Now() - t
		}

		// Reduce: count pass + scan + reduce pass, Mars-style.
		nSegs := int64(len(segs))
		if nSegs == 0 {
			nSegs = 1
		}
		virtVals := app.Pairs
		redSpec := gpu.KernelSpec{
			Name:             app.Name + ".reduce",
			Threads:          nSegs,
			FlopsPerThread:   app.ReduceFlopsPerVal * float64(virtVals) / float64(nSegs),
			UncoalescedBytes: float64(virtVals * (4 + app.ValBytes)),
			BytesWritten:     float64(nSegs * (4 + app.ValBytes)),
		}
		t = p.Now()
		cudpp.DeviceScan(p, dev, nSegs, nil)
		dev.Launch(p, redSpec, func() {
			res.Output = make(map[uint32]V, len(segs))
			for _, s := range segs {
				if app.Reduce != nil {
					res.Output[s.Key] = app.Reduce(s.Key, pairs.Vals[s.Start:s.Start+s.Count])
				} else {
					res.Output[s.Key] = pairs.Vals[s.Start+s.Count-1]
				}
			}
		})
		res.Reduce = p.Now() - t

		t = p.Now()
		dev.CopyToHost(p, nSegs*(4+app.ValBytes), nil)
		res.D2H = p.Now() - t
	})
	res.Wall = eng.Run()
	return res, nil
}
