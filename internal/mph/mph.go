// Package mph builds a minimal perfect hash over a fixed word dictionary,
// standing in for the paper's use of Cichelli-style minimal perfect hashing
// to turn WordOccurrence's string keys into unique 4-byte integers. The
// construction is the "hash, displace" scheme (CHD without compression):
// words are bucketed by a first-level hash, buckets are seeded largest
// first, and each bucket searches for a displacement seed that maps all its
// words to free slots. Lookup is two hash evaluations — cheap enough for a
// GPU map kernel, which is the property the paper exploits.
package mph

import (
	"errors"
	"fmt"
)

// Table is an immutable minimal perfect hash over the dictionary it was
// built from: Lookup maps each dictionary word to a distinct value in
// [0, Len()).
type Table struct {
	seeds []int32
	slots int
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hash(seed uint64, s string) uint64 {
	h := uint64(fnvOffset) ^ (seed * 0x9e3779b97f4a7c15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Build constructs a Table for words, which must be non-empty and free of
// duplicates.
func Build(words []string) (*Table, error) {
	n := len(words)
	if n == 0 {
		return nil, errors.New("mph: empty dictionary")
	}
	nBuckets := (n + 3) / 4
	buckets := make([][]string, nBuckets)
	for _, w := range words {
		b := int(hash(0, w) % uint64(nBuckets))
		buckets[b] = append(buckets[b], w)
	}
	// Largest buckets first: they have the fewest seed choices.
	order := make([]int, nBuckets)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(buckets[order[j]]) > len(buckets[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	taken := make([]bool, n)
	seeds := make([]int32, nBuckets)
	for _, bi := range order {
		bucket := buckets[bi]
		if len(bucket) == 0 {
			continue
		}
	seedSearch:
		for seed := int32(1); ; seed++ {
			if seed > 1<<22 {
				return nil, fmt.Errorf("mph: no displacement found for bucket of %d words (duplicate words?)", len(bucket))
			}
			marks := make([]int, 0, len(bucket))
			for _, w := range bucket {
				slot := int(hash(uint64(seed), w) % uint64(n))
				if taken[slot] {
					for _, m := range marks {
						taken[m] = false
					}
					continue seedSearch
				}
				// Reject intra-bucket collisions too.
				taken[slot] = true
				marks = append(marks, slot)
			}
			seeds[bi] = seed
			break
		}
	}
	return &Table{seeds: seeds, slots: n}, nil
}

// Len returns the dictionary size (and the size of the hash's range).
func (t *Table) Len() int { return t.slots }

// Lookup returns the word's slot in [0, Len()). Words outside the build
// dictionary return an arbitrary slot; the paper's benchmark draws all
// input from the dictionary, so no membership test is needed.
func (t *Table) Lookup(w string) uint32 {
	b := hash(0, w) % uint64(len(t.seeds))
	return uint32(hash(uint64(t.seeds[b]), w) % uint64(t.slots))
}

// LookupCostFlops is the modeled arithmetic cost of one GPU-side lookup
// (two short hash loops over the word bytes plus a modular reduction).
func LookupCostFlops(wordLen int) float64 { return float64(4*wordLen + 8) }
