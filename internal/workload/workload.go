// Package workload generates the paper's benchmark datasets
// deterministically: sparse integer streams (SIO), random text over a
// 43,000-word dictionary (WO), point sets (KMC, LR), and dense matrices
// (MM). All generators are seeded splitmix64, so every experiment is
// reproducible bit-for-bit.
package workload

import "fmt"

// RNG is a splitmix64 generator: tiny, fast, and deterministic across
// platforms (unlike math/rand's source it is stable by construction).
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Next() >> 32) }

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with n <= 0")
	}
	return int(r.Next() % uint64(n))
}

// Float32 returns a value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Next()>>40) / float32(1<<24)
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// SparseInts generates n integers uniform over the full uint32 space — the
// SIO input: keys are sparse, so partitioning and sorting cannot exploit a
// compact range.
func SparseInts(seed uint64, n int) []uint32 {
	r := NewRNG(seed)
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.Uint32()
	}
	return out
}

// DictionarySize is the paper's forty-three-thousand-word corpus size.
const DictionarySize = 43000

// Dictionary synthesizes nWords distinct lowercase words with a natural
// length distribution (3–12 letters). Deterministic in seed.
func Dictionary(seed uint64, nWords int) []string {
	r := NewRNG(seed)
	seen := make(map[string]bool, nWords)
	words := make([]string, 0, nWords)
	for len(words) < nWords {
		n := 3 + r.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		w := string(b)
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	return words
}

// Text generates lines of space-separated dictionary words totalling
// approximately nBytes, words drawn uniformly; lines break near 80 columns
// as in the paper's line-separated corpus.
func Text(seed uint64, dict []string, nBytes int) []string {
	r := NewRNG(seed)
	var lines []string
	line := make([]byte, 0, 96)
	total := 0
	for total < nBytes {
		w := dict[r.Intn(len(dict))]
		if len(line) > 0 {
			line = append(line, ' ')
		}
		line = append(line, w...)
		total += len(w) + 1
		if len(line) >= 80 {
			lines = append(lines, string(line))
			line = line[:0]
		}
	}
	if len(line) > 0 {
		lines = append(lines, string(line))
	}
	return lines
}

// Points generates n points of dim float32 coordinates in [0, 100), laid
// out AoS (x0 y0 z0 x1 ...) as the KMC chunks pack them.
func Points(seed uint64, n, dim int) []float32 {
	r := NewRNG(seed)
	out := make([]float32, n*dim)
	for i := range out {
		out[i] = r.Float32() * 100
	}
	return out
}

// XYPairs generates n (x, y) samples around the line y = a + b·x with
// uniform noise — the LR input with a known ground-truth model.
func XYPairs(seed uint64, n int, a, b, noise float64) []float64 {
	r := NewRNG(seed)
	out := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		x := r.Float64() * 10
		y := a + b*x + (r.Float64()-0.5)*2*noise
		out[2*i] = x
		out[2*i+1] = y
	}
	return out
}

// Matrix generates an m×m row-major matrix with entries in [-1, 1).
func Matrix(seed uint64, m int) []float32 {
	r := NewRNG(seed)
	out := make([]float32, m*m)
	for i := range out {
		out[i] = r.Float32()*2 - 1
	}
	return out
}

// SplitEven partitions n items into parts of near-equal contiguous ranges;
// it returns the start offsets (len parts+1). Used to cut datasets into
// chunks.
func SplitEven(n, parts int) []int {
	if parts <= 0 {
		panic(fmt.Sprintf("workload: SplitEven with parts=%d", parts))
	}
	offs := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		offs[i] = n * i / parts
	}
	return offs
}
