package bench

import (
	"fmt"
	"io"

	"repro/internal/apps/kmc"
	"repro/internal/apps/lr"
	"repro/internal/apps/sio"
	"repro/internal/apps/wo"
	"repro/internal/des"
)

// AblationRow compares one pipeline variant against the paper's chosen
// configuration.
type AblationRow struct {
	Name     string
	Chosen   des.Time // the paper's configuration
	Variant  des.Time
	Slowdown float64 // Variant / Chosen (>1 means the paper chose right)
}

// Ablation regenerates the design-choice comparisons the paper argues in
// prose: Accumulation for WO/KMC/LR ("dramatically worse" without),
// Partial Reduction and Combine for SIO (rejected: no speedup / slowdown),
// the WO partitioner crossover, and GPUDirect (the future-work wish).
func Ablation(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	var rows []AblationRow

	add := func(name string, chosen, variant des.Time) {
		rows = append(rows, AblationRow{Name: name, Chosen: chosen, Variant: variant,
			Slowdown: float64(variant) / float64(chosen)})
	}

	// Accumulation ablations at mid-size inputs on 8 GPUs.
	{
		base := wo.NewJob(wo.Params{Bytes: 64 << 20, GPUs: 8, PhysMax: o.PhysBudget, DictSize: woDict(o), Seed: o.Seed})
		base.Job.Config.Workers = o.Workers
		rb, err := base.Job.Run()
		if err != nil {
			return nil, err
		}
		noacc := wo.NewJob(wo.Params{Bytes: 64 << 20, GPUs: 8, PhysMax: o.PhysBudget, DictSize: woDict(o), Seed: o.Seed, NoAccumulation: true})
		noacc.Job.Config.Workers = o.Workers
		rn, err := noacc.Job.Run()
		if err != nil {
			return nil, err
		}
		add("wo: no accumulation", rb.Trace.Wall, rn.Trace.Wall)
	}
	{
		base := kmc.NewJob(kmc.Params{Points: 32 << 20, GPUs: 8, PhysMax: o.PhysBudget, Seed: o.Seed})
		base.Job.Config.Workers = o.Workers
		rb, err := base.Job.Run()
		if err != nil {
			return nil, err
		}
		noacc := kmc.NewJob(kmc.Params{Points: 32 << 20, GPUs: 8, PhysMax: o.PhysBudget, Seed: o.Seed, NoAccumulation: true})
		noacc.Job.Config.Workers = o.Workers
		rn, err := noacc.Job.Run()
		if err != nil {
			return nil, err
		}
		add("kmc: no accumulation", rb.Trace.Wall, rn.Trace.Wall)
	}
	{
		base := lr.NewJob(lr.Params{Points: 64 << 20, GPUs: 8, PhysMax: o.PhysBudget, Seed: o.Seed})
		base.Job.Config.Workers = o.Workers
		rb, err := base.Job.Run()
		if err != nil {
			return nil, err
		}
		noacc := lr.NewJob(lr.Params{Points: 64 << 20, GPUs: 8, PhysMax: o.PhysBudget, Seed: o.Seed, NoAccumulation: true})
		noacc.Job.Config.Workers = o.Workers
		rn, err := noacc.Job.Run()
		if err != nil {
			return nil, err
		}
		add("lr: no accumulation", rb.Trace.Wall, rn.Trace.Wall)
	}

	// SIO's rejected substages.
	{
		base, _ := sio.NewJob(sio.Params{Elements: 32 << 20, GPUs: 8, PhysMax: o.PhysBudget, Seed: o.Seed})
		base.Config.Workers = o.Workers
		rb, err := base.Run()
		if err != nil {
			return nil, err
		}
		pr, _ := sio.NewJob(sio.Params{Elements: 32 << 20, GPUs: 8, PhysMax: o.PhysBudget, Seed: o.Seed, UsePartialReduce: true})
		pr.Config.Workers = o.Workers
		rp, err := pr.Run()
		if err != nil {
			return nil, err
		}
		add("sio: partial reduce", rb.Trace.Wall, rp.Trace.Wall)
		cb, _ := sio.NewJob(sio.Params{Elements: 32 << 20, GPUs: 8, PhysMax: o.PhysBudget, Seed: o.Seed, UseCombiner: true})
		cb.Config.Workers = o.Workers
		rc, err := cb.Run()
		if err != nil {
			return nil, err
		}
		add("sio: combine", rb.Trace.Wall, rc.Trace.Wall)
	}

	// WO partitioner crossover: at 64 GPUs the partitioner must win; at 4
	// GPUs the single-reducer configuration must win.
	{
		on := wo.NewJob(wo.Params{Bytes: 512 << 20, GPUs: 64, PhysMax: o.PhysBudget, DictSize: woDict(o), Seed: o.Seed, ForcePartitioner: 1})
		on.Job.Config.Workers = o.Workers
		ron, err := on.Job.Run()
		if err != nil {
			return nil, err
		}
		off := wo.NewJob(wo.Params{Bytes: 512 << 20, GPUs: 64, PhysMax: o.PhysBudget, DictSize: woDict(o), Seed: o.Seed, ForcePartitioner: -1})
		off.Job.Config.Workers = o.Workers
		roff, err := off.Job.Run()
		if err != nil {
			return nil, err
		}
		add("wo@64GPU: partitioner off", ron.Trace.Wall, roff.Trace.Wall)
	}

	// GPUDirect: the paper's closing hardware wish, as a what-if.
	{
		base, _ := sio.NewJob(sio.Params{Elements: 128 << 20, GPUs: 64, PhysMax: o.PhysBudget, Seed: o.Seed})
		base.Config.Workers = o.Workers
		rb, err := base.Run()
		if err != nil {
			return nil, err
		}
		direct, _ := sio.NewJob(sio.Params{Elements: 128 << 20, GPUs: 64, PhysMax: o.PhysBudget, Seed: o.Seed})
		direct.Config.Workers = o.Workers
		direct.Config.GPUDirect = true
		rd, err := direct.Run()
		if err != nil {
			return nil, err
		}
		add("sio@64GPU: gpudirect", rb.Trace.Wall, rd.Trace.Wall)
	}
	return rows, nil
}

// RenderAblation writes the comparison table.
func RenderAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablations — paper's configuration vs variant")
	fmt.Fprintf(w, "%-28s %14s %14s %10s\n", "variant", "chosen", "variant", "x slower")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %14v %14v %10.2f\n", r.Name, r.Chosen, r.Variant, r.Slowdown)
	}
}
