package core

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestPipelineConfigurationMatrix exercises every pipeline shape the paper
// describes across GPU counts, checking functional correctness, trace
// invariants, and determinism for each combination.
func TestPipelineConfigurationMatrix(t *testing.T) {
	data := smallData(12000, 400)
	ref := referenceCounts(data, 0)
	variants := []struct {
		name string
		mut  func(*Job[uint32])
	}{
		{"plain", func(j *Job[uint32]) {}},
		{"partialreduce", func(j *Job[uint32]) { j.PartialReducer = localCombine{} }},
		{"combiner", func(j *Job[uint32]) { j.Combiner = sumCombiner{} }},
		{"nil-partitioner", func(j *Job[uint32]) { j.Partitioner = nil }},
		{"deep-pipeline", func(j *Job[uint32]) { j.Config.PipelineDepth = 4 }},
		{"block-partitioner", func(j *Job[uint32]) { j.Partitioner = BlockPartitioner{Span: 400} }},
		{"with-startup", func(j *Job[uint32]) { j.Config.Startup = DefaultStartup }},
	}
	for _, v := range variants {
		for _, gpus := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%s/%dgpu", v.name, gpus)
			t.Run(name, func(t *testing.T) {
				mk := func() *Result[uint32] {
					j := countJob(data, gpus, 8)
					v.mut(j)
					return j.MustRun()
				}
				res := mk()
				checkCounts(t, &res.Output, ref)
				// Trace invariants: stage timestamps are ordered per rank
				// and the breakdown tiles the wall exactly.
				for r, tr := range res.Trace.Ranks {
					if tr.ShuffleDone < tr.MapDone || tr.SortDone < tr.ShuffleDone || tr.ReduceDone < tr.SortDone {
						t.Errorf("rank %d: stage timestamps out of order: %+v", r, tr)
					}
					if tr.ReduceDone > res.Trace.Wall {
						t.Errorf("rank %d: reduce done after wall: %v > %v", r, tr.ReduceDone, res.Trace.Wall)
					}
				}
				b := res.Trace.Breakdown()
				if sum := b.Map + b.CompleteBinning + b.Sort + b.Reduce + b.Internal; sum < 0.999 || sum > 1.001 {
					t.Errorf("breakdown sums to %f", sum)
				}
				// Determinism: an identical rerun must produce the same
				// wall time and output.
				again := mk()
				if again.Trace.Wall != res.Trace.Wall {
					t.Errorf("nondeterministic wall: %v vs %v", res.Trace.Wall, again.Trace.Wall)
				}
			})
		}
	}
}

// TestAccumulateMatrix covers the accumulation path across GPU counts and
// key spaces (the WO/KMC/LR family).
func TestAccumulateMatrix(t *testing.T) {
	for _, keySpace := range []int{16, 256, 2048} {
		data := smallData(15000, keySpace)
		ref := referenceCounts(data, keySpace)
		// The accumulating mapper emits every key (zeros included), as
		// WO's initial map does.
		for k := 0; k < keySpace; k++ {
			ref[uint32(k)] += 0
		}
		for _, gpus := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("keys%d/%dgpu", keySpace, gpus), func(t *testing.T) {
				j := &Job[uint32]{
					Config: Config{
						Name: "accum", GPUs: gpus, ValBytes: 4,
						Accumulate: true, GatherOutput: true,
					},
					Chunks:      makeChunks(data, 6, 1),
					Mapper:      accumMapper{keySpace: keySpace},
					Partitioner: RoundRobin{},
					Reducer:     sumReducer{},
				}
				res := j.MustRun()
				checkCounts(t, &res.Output, ref)
			})
		}
	}
}

// TestPropertyOutputInvariantUnderChunking: the job's output must not
// depend on how the input is cut into chunks.
func TestPropertyOutputInvariantUnderChunking(t *testing.T) {
	data := smallData(4000, 100)
	ref := referenceCounts(data, 0)
	f := func(nChunksRaw uint8) bool {
		nChunks := int(nChunksRaw%12) + 1
		res := countJob(data, 4, nChunks).MustRun()
		got := make(map[uint32]uint32)
		for i, k := range res.Output.Keys {
			got[k] += res.Output.Vals[i]
		}
		if len(got) != len(ref) {
			return false
		}
		for k, want := range ref {
			if got[k] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWallMonotoneInStartup: adding fixed startup can only push
// the wall time out, never shrink it.
func TestPropertyWallMonotoneInStartup(t *testing.T) {
	data := smallData(3000, 64)
	base := countJob(data, 2, 4).MustRun().Trace.Wall
	withStartup := countJob(data, 2, 4)
	withStartup.Config.Startup = DefaultStartup
	got := withStartup.MustRun().Trace.Wall
	if got < base+DefaultStartup/2 {
		t.Errorf("startup not reflected: %v vs base %v", got, base)
	}
}

// TestFitAllChunkingProperties pins the reduce-chunking helper's contract.
func TestFitAllChunkingProperties(t *testing.T) {
	f := func(setsRaw uint16, vals uint32, free uint32) bool {
		sets := int(setsRaw)
		got := FitAllChunking(sets, int64(vals), int64(free), 4)
		if got < 1 {
			return false
		}
		if sets > 0 && got > sets {
			return false
		}
		// If everything fits with scratch, take everything.
		if sets > 0 && int64(vals)*8*2 <= int64(free) && got != sets {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestBlockPartitionerRanges pins the consecutive-blocks partitioner.
func TestBlockPartitionerRanges(t *testing.T) {
	p := BlockPartitioner{Span: 1000}
	if p.Rank(0, 4) != 0 || p.Rank(999, 4) != 3 {
		t.Error("block partitioner endpoints wrong")
	}
	prev := 0
	for k := uint32(0); k < 1000; k += 10 {
		r := p.Rank(k, 4)
		if r < prev {
			t.Fatalf("block partitioner not monotone at key %d", k)
		}
		prev = r
	}
	if (BlockPartitioner{}).Rank(123, 4) != 0 {
		t.Error("zero-span partitioner should route to rank 0")
	}
}
