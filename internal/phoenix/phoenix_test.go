package phoenix

import (
	"math"
	"testing"

	"repro/internal/des"
)

func TestSIOCorrectness(t *testing.T) {
	app, data := SIO(1<<14, 1<<14, 1)
	res, err := Run(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint32]uint32)
	for _, v := range data {
		ref[v]++
	}
	if len(res.Output) != len(ref) {
		t.Fatalf("%d keys, want %d", len(res.Output), len(ref))
	}
	for k, want := range ref {
		if res.Output[k] != want {
			t.Fatalf("key %d: %d, want %d", k, res.Output[k], want)
		}
	}
	if res.Wall <= 0 {
		t.Error("zero wall time")
	}
}

func TestWOCorrectness(t *testing.T) {
	app, lines, table := WO(1<<14, 1<<14, 300, 1)
	res, err := Run(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint32]uint32)
	for _, ln := range lines {
		for _, w := range splitFields(ln) {
			ref[table.Lookup(w)]++
		}
	}
	for k, want := range ref {
		if res.Output[k] != want {
			t.Fatalf("slot %d: %d, want %d", k, res.Output[k], want)
		}
	}
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

func TestKMCCorrectness(t *testing.T) {
	app, pts, ctrs := KMC(1<<12, 1<<12, 8, 4, 1)
	res, err := Run(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	dim := 4
	ref := make(map[uint32]float64)
	n := len(pts) / dim
	for i := 0; i < n; i++ {
		pt := pts[i*dim : (i+1)*dim]
		best, bestD := 0, float32(0)
		for ci, ctr := range ctrs {
			var d float32
			for d2 := 0; d2 < dim; d2++ {
				diff := pt[d2] - ctr[d2]
				d += diff * diff
			}
			if ci == 0 || d < bestD {
				best, bestD = ci, d
			}
		}
		for d2 := 0; d2 < dim; d2++ {
			ref[uint32(best*(dim+1)+d2)] += float64(pt[d2])
		}
		ref[uint32(best*(dim+1)+dim)]++
	}
	for k, want := range ref {
		if math.Abs(res.Output[k]-want) > 1e-6*(math.Abs(want)+1) {
			t.Fatalf("key %d: %g, want %g", k, res.Output[k], want)
		}
	}
}

func TestLRCorrectness(t *testing.T) {
	app, xy := LR(1<<12, 1<<12, 1, 2, 3, 0.5)
	res, err := Run(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	var n, sx float64
	for i := 0; i+1 < len(xy); i += 2 {
		n++
		sx += xy[i]
	}
	if math.Abs(res.Output[0]-n) > 1e-9 || math.Abs(res.Output[1]-sx) > 1e-6*sx {
		t.Fatalf("n=%g sx=%g, want %g %g", res.Output[0], res.Output[1], n, sx)
	}
}

func TestMMCorrectness(t *testing.T) {
	app, a, b, phys := MM(1024, 32, 1)
	res, err := Run(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < phys; i++ {
		for j := 0; j < phys; j++ {
			var want float64
			for k := 0; k < phys; k++ {
				want += float64(a[i*phys+k]) * float64(b[k*phys+j])
			}
			got := res.Output[uint32(i*phys+j)]
			if math.Abs(got-want) > 1e-6*(math.Abs(want)+1) {
				t.Fatalf("C[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestMoreCoresFaster(t *testing.T) {
	app, _ := SIO(8<<20, 1<<12, 1)
	r1, err := Run(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	app4, _ := SIO(8<<20, 1<<12, 1)
	r4, err := Run(app4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Wall >= r1.Wall {
		t.Errorf("4 cores (%v) not faster than 1 (%v)", r4.Wall, r1.Wall)
	}
}

func TestMM1024TakesSeconds(t *testing.T) {
	// The paper: "Phoenix required almost twenty seconds to multiply two
	// 1024×1024 matrices". Our model should land within a factor of ~2.
	app, _, _, _ := MM(1024, 32, 1)
	res, err := Run(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall < 5*des.Second || res.Wall > 40*des.Second {
		t.Errorf("Phoenix 1024² MM took %v; paper measured ~20 s", res.Wall)
	}
}

func TestInvalidApp(t *testing.T) {
	if _, err := Run(App[int]{Name: "bad"}, 0); err == nil {
		t.Error("expected error for empty app")
	}
}
