package core

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/keyval"
)

// Job describes one GPMR run: input chunks plus the user's pipeline pieces.
// Mapper is required; everything else is optional with the paper's
// defaults (RoundRobin partitioning is NOT default — a nil Partitioner
// routes all pairs to rank 0, matching GPMR's "omit Partition" behaviour).
type Job[V any] struct {
	Config Config
	Chunks []Chunk

	// Assign optionally overrides the initial round-robin chunk placement
	// (chunk index → rank).
	Assign func(chunk int) int

	Mapper         Mapper[V]
	PartialReducer PartialReducer[V]
	Combiner       Combiner[V]
	Partitioner    Partitioner
	Sorter         Sorter
	Reducer        Reducer[V]
}

// Result is a completed job's output.
type Result[V any] struct {
	// Output is the gathered final pairs at rank 0 (rank order), when
	// Config.GatherOutput is set.
	Output keyval.Pairs[V]
	// PerRank holds each rank's final pairs (reduce output, or the
	// post-shuffle pairs when the job has no Reducer).
	PerRank []keyval.Pairs[V]
	Trace   *Trace
}

// Validate checks the job's pipeline configuration without running it.
func (j *Job[V]) Validate() error {
	if j.Mapper == nil {
		return errors.New("core: job needs a Mapper")
	}
	if len(j.Chunks) == 0 {
		return errors.New("core: job needs at least one chunk")
	}
	if j.Config.Accumulate && (j.Combiner != nil || j.PartialReducer != nil) {
		return errors.New("core: Accumulation excludes Combiner and PartialReducer")
	}
	if j.Config.DisableSort && (j.Reducer != nil || j.Combiner != nil) {
		return errors.New("core: DisableSort requires no Reducer and no Combiner")
	}
	return nil
}

// Run executes the job on a freshly built simulated cluster and returns the
// result with its timing trace.
func (j *Job[V]) Run() (*Result[V], error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	cfg, err := j.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	eng := des.NewEngine()
	cl := cluster.New(eng, *cfg.Cluster)
	rt := &runtime[V]{
		job:    j,
		cfg:    cfg,
		cl:     cl,
		sched:  newScheduler(j.Chunks, cfg, cl.Fabric, j.Assign),
		traces: make([]RankTrace, cfg.GPUs),
		outs:   make([]keyval.Pairs[V], cfg.GPUs),
		gather: make([]*keyval.Pairs[V], cfg.GPUs),
	}
	if j.Sorter == nil {
		rt.sorter = RadixSorter{}
	} else {
		rt.sorter = j.Sorter
	}
	for r := 0; r < cfg.GPUs; r++ {
		rt.spawnRank(eng, r)
	}
	wall := eng.Run()

	res := &Result[V]{
		PerRank: rt.outs,
		Trace: &Trace{
			Name:       cfg.Name,
			GPUs:       cfg.GPUs,
			Wall:       wall,
			Ranks:      rt.traces,
			WireBytes:  cl.Fabric.BytesSent,
			LocalBytes: cl.Fabric.LocalBytes,
		},
	}
	if cfg.GatherOutput {
		for r := 0; r < cfg.GPUs; r++ {
			var pr *keyval.Pairs[V]
			if r == 0 {
				pr = &rt.outs[0]
			} else {
				pr = rt.gather[r]
			}
			if pr != nil {
				res.Output.AppendPairs(pr)
			}
		}
	}
	return res, nil
}

// MustRun is Run for tests and examples where errors are fatal bugs.
func (j *Job[V]) MustRun() *Result[V] {
	res, err := j.Run()
	if err != nil {
		panic(fmt.Sprintf("core: job %q: %v", j.Config.Name, err))
	}
	return res
}

// runtime holds one execution's shared state.
type runtime[V any] struct {
	job    *Job[V]
	cfg    Config
	cl     *cluster.Cluster
	sched  *scheduler
	sorter Sorter
	traces []RankTrace
	outs   []keyval.Pairs[V]
	gather []*keyval.Pairs[V] // rank 0's gathered outputs, by source rank
}
