package core

import (
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
)

// faultJob is the countJob fixture with an injection plan attached.
func faultJob(data []uint32, gpus, nChunks int, plan *fault.Plan, speculate bool) *Job[uint32] {
	j := countJob(data, gpus, nChunks)
	j.Config.Faults = plan
	j.Config.Speculate = speculate
	return j
}

// assertSameOutput compares two gathered outputs byte-for-byte.
func assertSameOutput(t *testing.T, a, b *Result[uint32]) {
	t.Helper()
	if a.Output.Len() != b.Output.Len() {
		t.Fatalf("output sizes differ: %d vs %d", a.Output.Len(), b.Output.Len())
	}
	for i := range a.Output.Keys {
		if a.Output.Keys[i] != b.Output.Keys[i] || a.Output.Vals[i] != b.Output.Vals[i] {
			t.Fatalf("outputs diverge at pair %d: (%d,%d) vs (%d,%d)", i,
				a.Output.Keys[i], a.Output.Vals[i], b.Output.Keys[i], b.Output.Vals[i])
		}
	}
}

func TestFailStopMidMapRecoversOutput(t *testing.T) {
	data := smallData(20000, 700)
	base := countJob(data, 8, 32).MustRun()
	// Fail after the rank's third chunk: late enough that shuffle pairs
	// have landed in its host memory (so the partition handoff carries
	// real data), early enough that chunks remain to re-execute.
	plan := &fault.Plan{Events: []fault.Event{fault.FailAfterChunks(2, 3)}}
	res := faultJob(data, 8, 32, plan, false).MustRun()

	assertSameOutput(t, base, res)
	checkCounts(t, &res.Output, referenceCounts(data, 0))

	tr := res.Trace
	if !tr.Ranks[2].Failed {
		t.Error("rank 2 not marked failed")
	}
	rec := tr.Recovery()
	if rec.FailedRanks != 1 {
		t.Errorf("FailedRanks=%d, want 1", rec.FailedRanks)
	}
	if rec.ChunksRecovered == 0 {
		t.Error("no chunks re-executed despite a mid-map failure")
	}
	if rec.RecoveredBytes == 0 {
		t.Error("no re-fetch bytes charged for recovered chunks")
	}
	if tr.Ranks[2].ChunksRecovered != 0 {
		t.Error("the failed rank executed recovered chunks")
	}
	// By its third chunk the failed rank had accepted shuffle pairs; the
	// handoff must have moved real data, not just the relay-done marker.
	if tr.Ranks[2].RelayBytes <= endMsgBytes {
		t.Errorf("failed rank relayed %d bytes; expected pair handoff beyond the marker", tr.Ranks[2].RelayBytes)
	}
	// Every chunk's output was delivered exactly once.
	if rec.DupDropped != 0 {
		t.Errorf("receivers dropped %d duplicate deliveries; exactly-once protocol leaked", rec.DupDropped)
	}
	mapped := 0
	for _, r := range tr.Ranks {
		mapped += r.ChunksMapped
	}
	// Lost chunks are mapped twice (once by the failed rank, once by a
	// survivor), so total maps must exceed the chunk count.
	if mapped <= 32 {
		t.Errorf("mapped %d chunk executions, want > 32 (re-execution)", mapped)
	}
}

func TestFailStopAtTimeZeroRecoversOutput(t *testing.T) {
	data := smallData(10000, 300)
	base := countJob(data, 4, 8).MustRun()
	plan := &fault.Plan{Events: []fault.Event{fault.FailAt(1, 0)}}
	res := faultJob(data, 4, 8, plan, false).MustRun()
	assertSameOutput(t, base, res)
	if got := res.Trace.Ranks[1].ChunksMapped; got != 0 {
		t.Errorf("rank failed at t=0 still mapped %d chunks", got)
	}
}

func TestTwoFailuresRecoverOutput(t *testing.T) {
	data := smallData(20000, 500)
	base := countJob(data, 8, 32).MustRun()
	plan := &fault.Plan{Events: []fault.Event{
		fault.FailAfterChunks(1, 1),
		fault.FailAfterChunks(5, 2),
	}}
	res := faultJob(data, 8, 32, plan, false).MustRun()
	assertSameOutput(t, base, res)
	if rec := res.Trace.Recovery(); rec.FailedRanks != 2 {
		t.Errorf("FailedRanks=%d, want 2", rec.FailedRanks)
	}
}

func TestChainedSuccessorFailuresRecoverOutput(t *testing.T) {
	// Rank 2 fails first; its partition moves to rank 3. Then rank 3 —
	// the successor already holding two partitions — fails too, handing
	// both (plus any relay stream it was owed) to rank 4.
	data := smallData(20000, 500)
	base := countJob(data, 8, 32).MustRun()
	plan := &fault.Plan{Events: []fault.Event{
		fault.FailAfterChunks(2, 1),
		fault.FailAfterChunks(3, 2),
	}}
	res := faultJob(data, 8, 32, plan, false).MustRun()
	assertSameOutput(t, base, res)
	if rec := res.Trace.Recovery(); rec.FailedRanks != 2 {
		t.Errorf("FailedRanks=%d, want 2", rec.FailedRanks)
	}
	// Both failed partitions must have produced output via their final
	// owner: PerRank is indexed by partition and must be non-empty for
	// every partition (RoundRobin spreads keys everywhere).
	for part, pr := range res.PerRank {
		if pr.Len() == 0 {
			t.Errorf("partition %d produced no output after chained failures", part)
		}
	}
}

func TestFailureWhileStragglingRecoversOutput(t *testing.T) {
	// A rank first becomes a straggler, then dies outright.
	data := smallData(20000, 500)
	base := countJob(data, 8, 32).MustRun()
	plan := &fault.Plan{Events: []fault.Event{
		fault.SlowdownAfterChunks(6, 1, 6),
		fault.FailAfterChunks(6, 2),
	}}
	res := faultJob(data, 8, 32, plan, false).MustRun()
	assertSameOutput(t, base, res)
	tr := &res.Trace.Ranks[6]
	if !tr.Failed || tr.Derated <= 1 {
		t.Errorf("rank 6 state: failed=%v derated=%v", tr.Failed, tr.Derated)
	}
}

func TestSpeculationImprovesStragglerMakespan(t *testing.T) {
	data := smallData(40000, 1000)
	plan := &fault.Plan{Events: []fault.Event{fault.SlowdownAfterChunks(3, 1, 16)}}
	mk := func(spec bool) *Job[uint32] {
		j := faultJob(data, 4, 16, plan, spec)
		j.Config.VirtFactor = 4096 // compute-dominated, as the scaling test does
		for i, c := range j.Chunks {
			ic := c.(*intChunk)
			j.Chunks[i] = &intChunk{data: ic.data, virt: int64(len(ic.data)) * 4 * 4096}
		}
		return j
	}
	slow := mk(false).MustRun()
	spec := mk(true).MustRun()

	assertSameOutput(t, slow, spec)
	if spec.Trace.Wall >= slow.Trace.Wall {
		t.Errorf("speculation did not improve makespan: %v (spec) vs %v (no spec)",
			spec.Trace.Wall, slow.Trace.Wall)
	}
	rec := spec.Trace.Recovery()
	if rec.SpecLaunched == 0 {
		t.Error("no backup copies launched")
	}
	if rec.SpecWon == 0 {
		t.Error("no backup copy won")
	}
	// Losing copies are either discarded after mapping or abandoned before.
	if rec.ChunksWasted+rec.ChunksSkipped == 0 {
		t.Error("straggler's twin copies neither wasted nor skipped")
	}
	if rec.DupDropped != 0 {
		t.Errorf("receivers dropped %d duplicates; first-win protocol leaked", rec.DupDropped)
	}
}

func TestFaultDeterminism(t *testing.T) {
	// The reproducibility property the fault subsystem depends on: the
	// same job with the same plan twice yields byte-identical traces —
	// wall clock, fabric bytes, steal and recovery counters, everything.
	data := smallData(20000, 700)
	plan := &fault.Plan{Events: []fault.Event{
		fault.FailAfterChunks(2, 1),
		fault.SlowdownAfterChunks(5, 1, 8),
	}}
	run := func() *Result[uint32] { return faultJob(data, 8, 32, plan, true).MustRun() }
	a, b := run(), run()
	if a.Trace.Wall != b.Trace.Wall {
		t.Errorf("wall time differs across runs: %v vs %v", a.Trace.Wall, b.Trace.Wall)
	}
	if a.Trace.WireBytes != b.Trace.WireBytes || a.Trace.LocalBytes != b.Trace.LocalBytes {
		t.Errorf("fabric bytes differ: wire %d/%d local %d/%d",
			a.Trace.WireBytes, b.Trace.WireBytes, a.Trace.LocalBytes, b.Trace.LocalBytes)
	}
	if !reflect.DeepEqual(a.Trace.Ranks, b.Trace.Ranks) {
		t.Errorf("per-rank traces differ:\n%+v\nvs\n%+v", a.Trace.Ranks, b.Trace.Ranks)
	}
	assertSameOutput(t, a, b)

	// And the fault run's output matches the no-fault run's.
	assertSameOutput(t, a, countJob(data, 8, 32).MustRun())
}

func TestStragglerDerating(t *testing.T) {
	data := smallData(20000, 500)
	base := countJob(data, 4, 8).MustRun()
	plan := &fault.Plan{Events: []fault.Event{fault.SlowdownAt(0, des.Microsecond, 8)}}
	res := faultJob(data, 4, 8, plan, false).MustRun()
	assertSameOutput(t, base, res)
	if res.Trace.Wall <= base.Trace.Wall {
		t.Errorf("derating rank 0 by 8x did not slow the job: %v vs %v",
			res.Trace.Wall, base.Trace.Wall)
	}
	if res.Trace.Ranks[0].Derated != 8 {
		t.Errorf("Derated=%v, want 8", res.Trace.Ranks[0].Derated)
	}
}

func TestFailStopTimeSweep(t *testing.T) {
	// Sweep the fail-stop instant across the whole job, including the
	// awkward windows (failure while the final end markers are already
	// queued ahead of the fault notification, failure post-shuffle):
	// output must match the failure-free run at every injection time.
	data := smallData(8000, 300)
	base := countJob(data, 4, 8).MustRun()
	ats := make([]des.Time, 0, 28)
	for i := 0; i <= 24; i++ {
		ats = append(ats, base.Trace.Wall*des.Time(i)/20) // up to 1.2x the makespan
	}
	// Surgical cases: the exact instants rank 2 receives its final end
	// marker and closes its shuffle (the injector's wake-up is scheduled
	// earlier, so it runs first at the same timestamp) — the window where
	// the fault notification can land behind the already-queued ends and
	// never be dequeued.
	ats = append(ats, base.Trace.Ranks[2].ShuffleDone-1, base.Trace.Ranks[2].ShuffleDone, base.Trace.Ranks[2].ShuffleDone+1)
	for _, at := range ats {
		plan := &fault.Plan{Events: []fault.Event{fault.FailAt(2, at)}}
		res := faultJob(data, 4, 8, plan, false).MustRun()
		if res.Output.Len() != base.Output.Len() {
			t.Fatalf("at=%v: output size %d, want %d", at, res.Output.Len(), base.Output.Len())
		}
		for j := range base.Output.Keys {
			if base.Output.Keys[j] != res.Output.Keys[j] || base.Output.Vals[j] != res.Output.Vals[j] {
				t.Fatalf("at=%v: output diverges at pair %d", at, j)
			}
		}
	}
}

func TestStragglerOnlyPlanWorksWithAccumulate(t *testing.T) {
	// Derating needs no recovery machinery, so straggler-only plans must
	// be accepted by the Accumulation (and Combine) pipelines.
	const keySpace = 256
	data := smallData(20000, keySpace)
	mk := func(plan *fault.Plan) *Job[uint32] {
		return &Job[uint32]{
			Config: Config{
				Name: "count-accum", GPUs: 4, ValBytes: 4,
				Accumulate: true, GatherOutput: true, Faults: plan,
			},
			Chunks:      makeChunks(data, 8, 1),
			Mapper:      accumMapper{keySpace: keySpace},
			Partitioner: RoundRobin{},
			Reducer:     sumReducer{},
		}
	}
	base := mk(nil).MustRun()
	plan := &fault.Plan{Events: []fault.Event{fault.SlowdownAfterChunks(1, 1, 8)}}
	res := mk(plan).MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, keySpace))
	if res.Trace.Wall <= base.Trace.Wall {
		t.Errorf("derating did not slow the accumulate job: %v vs %v", res.Trace.Wall, base.Trace.Wall)
	}
	if res.Trace.Recovery().FailedRanks != 0 {
		t.Error("straggler-only plan produced failed ranks")
	}
}

func TestResilientValidation(t *testing.T) {
	data := smallData(1000, 50)

	j := countJob(data, 4, 8)
	j.Config.Speculate = true
	j.Config.Accumulate = true
	j.Mapper = accumMapper{keySpace: 50}
	if _, err := j.Run(); err == nil {
		t.Error("Speculate+Accumulate accepted")
	}

	j = countJob(data, 4, 8)
	j.Config.Faults = &fault.Plan{Events: []fault.Event{fault.FailAt(0, 0)}}
	j.Combiner = sumCombiner{}
	if _, err := j.Run(); err == nil {
		t.Error("Faults+Combiner accepted")
	}

	j = countJob(data, 4, 8)
	j.Config.Faults = &fault.Plan{Events: []fault.Event{fault.FailAt(7, 0)}}
	if _, err := j.Run(); err == nil {
		t.Error("plan targeting rank outside the job accepted")
	}
}

func TestSpeculateAloneKeepsOutput(t *testing.T) {
	// Speculation with no fault: healthy runs may still launch backups at
	// the tail; output must stay identical and every chunk deliver once.
	data := smallData(20000, 700)
	base := countJob(data, 4, 16).MustRun()
	spec := faultJob(data, 4, 16, nil, true).MustRun()
	assertSameOutput(t, base, spec)
	if rec := spec.Trace.Recovery(); rec.DupDropped != 0 {
		t.Errorf("duplicate deliveries reached reducers: %d", rec.DupDropped)
	}
}

func TestCommAccountingCoversShuffle(t *testing.T) {
	data := smallData(20000, 500)
	res := countJob(data, 8, 16).MustRun()
	var sentW, sentL, recvW, recvL int64
	for _, r := range res.Trace.Ranks {
		sentW += r.SentWireBytes
		sentL += r.SentLocalBytes
		recvW += r.RecvWireBytes
		recvL += r.RecvLocalBytes
	}
	if sentW == 0 || sentL == 0 {
		t.Fatalf("no communication recorded: wire=%d local=%d", sentW, sentL)
	}
	// Every send is eventually received, so the provenance must balance.
	if sentW != recvW || sentL != recvL {
		t.Errorf("sent/recv mismatch: wire %d vs %d, local %d vs %d", sentW, recvW, sentL, recvL)
	}
	// Sent bytes are a subset of total fabric traffic (which also counts
	// scheduler chunk transfers that bypass rank sends).
	if sentW > res.Trace.WireBytes || sentL > res.Trace.LocalBytes {
		t.Errorf("rank-level sends (%d wire, %d local) exceed fabric totals (%d, %d)",
			sentW, sentL, res.Trace.WireBytes, res.Trace.LocalBytes)
	}
}
