// Package kmc implements the paper's K-Means Clustering benchmark on GPMR:
// one iteration of assigning points to their closest center and computing
// the new centers.
//
// Following §5.3.4: the map stage uses persistent threads — the block reads
// points coalesced, each thread finds the closest center, the block
// reduces per-center partial sums, and (because GT200 has no floating-point
// atomics) the block's master thread accumulates into a per-block global
// memory pool; a second kernel reduces the pools. The job uses atomic-free
// Accumulation across chunks; emitted keys are ⟨center,dim⟩ sums plus one
// count key per center, giving coalesced writes. The Partitioner sends all
// keys of a center to one GPU; the reducer sums one key per thread. These
// optimizations cut map times by almost 8× versus the naive port, which is
// exactly how the cost descriptors are written.
package kmc

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/cudpp"
	"repro/internal/gpu"
	"repro/internal/workload"
)

// Params configures one KMC job.
type Params struct {
	Points   int64 // virtual point count (paper: 1M–512M, 16 B/point)
	GPUs     int
	Centers  int // default 32
	Dim      int // default 4 (16-byte elements, as Table 1)
	Seed     uint64
	PhysMax  int   // physical point cap (default 1<<19)
	ChunkCap int64 // virtual points per chunk (default 8M = 128 MB)

	// NoAccumulation is the paper's ablation: the naive port that emits
	// ⟨center,coord⟩ pairs per point (non-coalesced writes, the full
	// dataset as intermediate state) instead of accumulating. The paper's
	// optimizations cut map times by almost 8× over this mode.
	NoAccumulation bool
}

func (p Params) withDefaults() Params {
	if p.Centers <= 0 {
		p.Centers = 32
	}
	if p.Dim <= 0 {
		p.Dim = 4
	}
	if p.PhysMax <= 0 {
		p.PhysMax = 1 << 19
	}
	if p.ChunkCap <= 0 {
		p.ChunkCap = 8 << 20
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

type chunk struct {
	pts  []float32 // AoS: dim coords per point
	dim  int
	virt int64 // virtual point count
}

func (c *chunk) Elems() int       { return len(c.pts) / c.dim }
func (c *chunk) VirtBytes() int64 { return c.virt * int64(c.dim) * 4 }

// keyOf encodes ⟨center, slot⟩: slots 0..dim-1 are coordinate sums, slot
// dim is the influencing-point count.
func keyOf(center, slot, dim int) uint32 { return uint32(center*(dim+1) + slot) }

// quantGrid is the fixed-point grid point coordinates snap to (2^-10).
// Grid-aligned addends make every float64 coordinate sum exact — each
// partial is a multiple of 2^-10 and the totals stay far below 2^52 grid
// units — so KMC's output is bit-identical no matter how chunks land on
// ranks: steal order, gang size, co-tenant contention, and failure
// recovery can reorder the accumulation freely without changing a single
// output byte. This is what lets the output-invariance tests demand
// byte-equal answers from a floating-point app.
const quantGrid = 1 << 10

// quantize snaps coordinates onto the grid, toward zero.
func quantize(pts []float32) {
	for i, v := range pts {
		pts[i] = float32(int64(v*quantGrid)) / quantGrid
	}
}

// mapper assigns points to centers with persistent threads and accumulates
// per-center sums into the resident pairs.
type mapper struct {
	centers [][]float32
	dim     int
}

func (m *mapper) Map(ctx *core.MapContext[float64], c core.Chunk) {
	ch := c.(*chunk)
	k := len(m.centers)
	dim := m.dim
	res := ctx.Resident()
	if res.Len() == 0 {
		init := gpu.KernelSpec{Name: "kmc.init", Threads: int64(k * (dim + 1))}
		ctx.Launch(init, func() {
			for ci := 0; ci < k; ci++ {
				for s := 0; s <= dim; s++ {
					res.Append(keyOf(ci, s, dim), 0)
				}
			}
			res.Virt = int64(k * (dim + 1))
		})
	}
	virtN := ch.virt
	const blockSize = 256
	blocks := (virtN + blockSize - 1) / blockSize
	// Primary kernel: distance to every center plus block-level reduction.
	primary := gpu.KernelSpec{
		Name:           "kmc.map",
		Threads:        virtN,
		FlopsPerThread: float64(3*dim*k + dim + 8),
		BytesRead:      float64(virtN * int64(dim) * 4),
		BytesWritten:   float64(blocks * int64(k*(dim+1)) * 4 / 8), // per-block pools, amortized
	}
	ctx.Launch(primary, func() {
		for i := 0; i < ch.Elems(); i++ {
			pt := ch.pts[i*dim : (i+1)*dim]
			best, bestD := 0, float32(0)
			for ci, ctr := range m.centers {
				var d float32
				for d2 := 0; d2 < dim; d2++ {
					diff := pt[d2] - ctr[d2]
					d += diff * diff
				}
				if ci == 0 || d < bestD {
					best, bestD = ci, d
				}
			}
			scale := float64(ctx.VirtFactor)
			for d2 := 0; d2 < dim; d2++ {
				res.Vals[best*(dim+1)+d2] += float64(pt[d2]) * scale
			}
			res.Vals[best*(dim+1)+dim] += scale
		}
	})
	// Pool-reduction kernel folds the per-block pools into the resident set.
	poolReduce := gpu.KernelSpec{
		Name:      "kmc.poolreduce",
		Threads:   int64(k * (dim + 1)),
		BytesRead: float64(blocks * int64(k*(dim+1)) * 4 / 8),
	}
	ctx.Launch(poolReduce, nil)
}

// partitioner routes all keys of one center to the same GPU.
type partitioner struct{ dim int }

func (pt partitioner) Rank(key uint32, nRanks int) int {
	return int(key) / (pt.dim + 1) % nRanks
}

// reducer sums one key per thread (centers and dims are few; reduce time
// is negligible, as the paper reports).
type reducer struct{}

func (reducer) ChunkValueSets(sets int, virtVals, free int64) int {
	return core.FitAllChunking(sets, virtVals, free, 4)
}

func (reducer) Reduce(ctx *core.ReduceContext[float64], keys []uint32, segs []cudpp.Segment, vals []float64) {
	var phys int64
	for _, s := range segs {
		phys += int64(s.Count)
	}
	spec := gpu.KernelSpec{
		Name:           "kmc.reduce",
		Threads:        int64(len(segs)),
		FlopsPerThread: float64(phys) / float64(len(segs)),
		BytesRead:      float64(phys * 4),
		BytesWritten:   float64(len(segs) * 8),
	}
	ctx.Launch(spec, func() {
		for _, s := range segs {
			var sum float64
			for i := 0; i < s.Count; i++ {
				sum += vals[s.Start+i]
			}
			ctx.Emit(s.Key, sum)
		}
	})
	ctx.SetEmittedVirt(int64(len(segs)))
}

// Built bundles a KMC job with its inputs for reference checking.
type Built struct {
	Job     *core.Job[float64]
	Points  []float32
	Centers [][]float32
	Dim     int
}

// NewJob builds the GPMR job for one k-means iteration.
func NewJob(p Params) *Built {
	p = p.withDefaults()
	sc := apputil.PlanScale(p.Points, p.PhysMax)
	pts := workload.Points(p.Seed, sc.PhysElems, p.Dim)
	quantize(pts)
	centers := make([][]float32, p.Centers)
	crng := workload.NewRNG(p.Seed + 7)
	for i := range centers {
		c := make([]float32, p.Dim)
		for d := range c {
			c[d] = crng.Float32() * 100
		}
		centers[i] = c
	}
	nChunks := apputil.NumChunks(sc.VirtElems, p.ChunkCap, p.GPUs)
	offs := workload.SplitEven(sc.PhysElems, nChunks)
	chunks := make([]core.Chunk, nChunks)
	for i := range chunks {
		lo, hi := offs[i]*p.Dim, offs[i+1]*p.Dim
		chunks[i] = &chunk{
			pts:  pts[lo:hi],
			dim:  p.Dim,
			virt: int64(offs[i+1]-offs[i]) * sc.Factor,
		}
	}
	job := &core.Job[float64]{
		Config: core.Config{
			Name:         "kmc",
			GPUs:         p.GPUs,
			VirtFactor:   sc.Factor,
			ValBytes:     4,
			Accumulate:   true,
			GatherOutput: true,
			Startup:      core.DefaultStartup,
		},
		Chunks:      chunks,
		Mapper:      &mapper{centers: centers, dim: p.Dim},
		Partitioner: partitioner{dim: p.Dim},
		Reducer:     reducer{},
	}
	if p.NoAccumulation {
		job.Config.Accumulate = false
		job.Config.Name = "kmc-noaccum"
		job.Mapper = &emitMapper{centers: centers, dim: p.Dim}
	}
	return &Built{Job: job, Points: pts, Centers: centers, Dim: p.Dim}
}

// emitMapper is the ablation mapper: the direct CPU port emitting one pair
// per ⟨center, dimension⟩ per point with non-coalesced writes.
type emitMapper struct {
	centers [][]float32
	dim     int
}

func (m *emitMapper) Map(ctx *core.MapContext[float64], c core.Chunk) {
	ch := c.(*chunk)
	k := len(m.centers)
	dim := m.dim
	virtN := ch.virt
	spec := gpu.KernelSpec{
		Name:             "kmc.map.emit",
		Threads:          virtN,
		FlopsPerThread:   float64(3 * dim * k),
		UncoalescedBytes: float64(virtN * int64(dim) * 4 * 2), // loads AND pair writes scatter
	}
	ctx.Launch(spec, func() {
		scale := float64(ctx.VirtFactor)
		for i := 0; i < ch.Elems(); i++ {
			pt := ch.pts[i*dim : (i+1)*dim]
			best, bestD := 0, float32(0)
			for ci, ctr := range m.centers {
				var d float32
				for d2 := 0; d2 < dim; d2++ {
					diff := pt[d2] - ctr[d2]
					d += diff * diff
				}
				if ci == 0 || d < bestD {
					best, bestD = ci, d
				}
			}
			for d2 := 0; d2 < dim; d2++ {
				ctx.Emit(keyOf(best, d2, dim), float64(pt[d2])*scale)
			}
			ctx.Emit(keyOf(best, dim, dim), scale)
		}
	})
	ctx.SetEmittedVirt(virtN * int64(dim+1))
}

// NewCenters converts the job's gathered output into the next iteration's
// centers (sum/count per center), in units of physical points.
func NewCenters(out map[uint32]float64, k, dim int, virtFactor int64) [][]float32 {
	centers := make([][]float32, k)
	for ci := 0; ci < k; ci++ {
		c := make([]float32, dim)
		count := out[keyOf(ci, dim, dim)]
		if count > 0 {
			for d := 0; d < dim; d++ {
				c[d] = float32(out[keyOf(ci, d, dim)] / count)
			}
		}
		centers[ci] = c
	}
	return centers
}

// Reference computes the per-key sums sequentially (scaled by virtFactor to
// match the job's accumulated values).
func (b *Built) Reference(virtFactor int64) map[uint32]float64 {
	dim := b.Dim
	ref := make(map[uint32]float64)
	n := len(b.Points) / dim
	for i := 0; i < n; i++ {
		pt := b.Points[i*dim : (i+1)*dim]
		best, bestD := 0, float32(0)
		for ci, ctr := range b.Centers {
			var d float32
			for d2 := 0; d2 < dim; d2++ {
				diff := pt[d2] - ctr[d2]
				d += diff * diff
			}
			if ci == 0 || d < bestD {
				best, bestD = ci, d
			}
		}
		for d2 := 0; d2 < dim; d2++ {
			ref[keyOf(best, d2, dim)] += float64(pt[d2]) * float64(virtFactor)
		}
		ref[keyOf(best, dim, dim)] += float64(virtFactor)
	}
	return ref
}
