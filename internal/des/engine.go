package des

import (
	"container/heap"
	"fmt"
	"sort"
)

// event is a scheduled wake-up for a process.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all interaction happens from simulated processes while the
// engine is running, or from the owning goroutine before Run.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	yield   chan yieldMsg
	procs   []*Proc
	live    int // spawned but not finished
	blocked int // parked with no pending wake event
	running bool
	// openFutures tracks join obligations for host work dispatched outside
	// the simulation (see future.go). Mutated only from the engine's
	// serialized goroutines; Run refuses to shut down while any remain.
	openFutures map[*Future]struct{}
	// Open-system state (see inject.go): while openInj > 0, Run parks on
	// injc instead of exiting when the event queue drains. stopped is
	// closed when Run returns for good, failing later injections fast.
	openInj     int
	injc        chan injMsg
	stopped     chan struct{}
	everStopped bool
}

type yieldMsg struct {
	proc *Proc
	done bool
	pnc  any // panic value propagated from the process, if any
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	// injc is deliberately unbuffered: a successful send means the engine
	// goroutine received the message inside Run, so it is guaranteed to be
	// applied — a buffered channel would let a send race the engine's
	// final drain and strand an accepted injection forever.
	return &Engine{
		yield:       make(chan yieldMsg),
		openFutures: make(map[*Future]struct{}),
		injc:        make(chan injMsg),
		stopped:     make(chan struct{}),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Proc is the handle a simulated process uses to interact with the engine.
// Each Proc is bound to exactly one goroutine (the one running its body).
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked bool // parked without a scheduled wake (waiting on resource/queue)
	ended  bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn registers a new process whose body starts at the current simulated
// time. It may be called before Run or from a running process.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		<-p.resume // wait for first schedule
		var pnc any
		func() {
			defer func() {
				if r := recover(); r != nil {
					pnc = r
				}
			}()
			body(p)
		}()
		p.ended = true
		e.yield <- yieldMsg{proc: p, done: true, pnc: pnc}
	}()
	e.schedule(e.now, p)
	return p
}

// schedule queues a wake-up for p at time at.
func (e *Engine) schedule(at Time, p *Proc) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.queue.pushEvent(event{at: at, seq: e.seq, proc: p})
}

// Park suspends the calling process indefinitely; another process must call
// Engine.Wake to resume it. It is the building block for synchronization
// primitives defined outside this package (e.g. fabric barriers).
func (p *Proc) Park() { p.park() }

// Wake resumes a process suspended with Park (or any parked waiter) at the
// current simulated time.
func (e *Engine) Wake(p *Proc) { e.wake(p) }

// wake reschedules a parked process to run at the current time. It is used
// by resources and queues when a waiter becomes runnable.
func (e *Engine) wake(p *Proc) {
	if !p.parked {
		panic("des: waking a process that is not parked")
	}
	p.parked = false
	e.blocked--
	e.schedule(e.now, p)
}

// park suspends the calling process with no scheduled wake-up; some other
// process must call wake (via a resource release or queue put) to resume it.
func (p *Proc) park() {
	p.parked = true
	p.eng.blocked++
	p.eng.yield <- yieldMsg{proc: p}
	<-p.resume
}

// Sleep suspends the calling process for d of simulated time. Negative
// durations are treated as zero.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p)
	p.eng.yield <- yieldMsg{proc: p}
	<-p.resume
}

// Yield gives other runnable processes scheduled at the current time a
// chance to run before the caller continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes the simulation until every spawned process has finished.
// It returns the final simulated time. If all remaining processes are
// blocked with no pending events, Run panics with a deadlock report.
//
// While the engine has open injectors (see inject.go), an empty event
// queue parks the engine instead: Run blocks, holding virtual time still,
// until the outside world injects more work or closes the last injector.
// Deadlock detection is necessarily suspended in open mode — a blocked
// process may be waiting on work that has not been injected yet.
func (e *Engine) Run() Time {
	if e.running {
		panic("des: Run called re-entrantly")
	}
	e.running = true
	defer func() {
		e.running = false
		if !e.everStopped {
			e.everStopped = true
			close(e.stopped)
		}
	}()
	for {
		// Injections are applied between event dispatches, so an injected
		// process lands at the frontier without interleaving with a
		// running one.
		e.drainInjections()
		if e.queue.Len() == 0 {
			if e.openInj > 0 {
				e.applyInjection(<-e.injc) // park: wait for the outside world
				continue
			}
			if e.live > 0 {
				panic(fmt.Sprintf("des: deadlock at t=%v: %d process(es) blocked: %v",
					e.now, e.blocked, e.blockedNames()))
			}
			break
		}
		ev := e.queue.popEvent()
		if ev.proc.ended {
			continue // stale event for a finished process
		}
		e.now = ev.at
		ev.proc.resume <- struct{}{}
		msg := <-e.yield
		if msg.pnc != nil {
			panic(fmt.Sprintf("des: process %q panicked at t=%v: %v", msg.proc.name, e.now, msg.pnc))
		}
		if msg.done {
			e.live--
		}
	}
	if len(e.openFutures) > 0 {
		names := make([]string, 0, len(e.openFutures))
		for f := range e.openFutures {
			names = append(names, f.name)
		}
		sort.Strings(names)
		panic(fmt.Sprintf("des: engine shut down with %d unjoined future(s): %v", len(names), names))
	}
	return e.now
}

func (e *Engine) blockedNames() []string {
	var names []string
	for _, p := range e.procs {
		if p.parked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}
