package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/serve"
)

// quiet swallows router/handler diagnostics so tests can log after the
// harness finishes probing.
func quiet(string, ...any) {}

// syncBuffer guards a trace buffer against the engine goroutine writing
// while a probe races; reads happen only after drain.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// testShard is one in-process gpmrd shard: a serving session behind the
// real HTTP handler, recording its arrival trace.
type testShard struct {
	sv    *serve.Server
	hs    *httptest.Server
	trace *syncBuffer
}

func newTestShard(t *testing.T) *testShard {
	t.Helper()
	trace := &syncBuffer{}
	sv, err := serve.Start(serve.Config{
		Cluster:     cluster.DefaultConfig(8),
		Policy:      sched.Policy{Kind: sched.WeightedFair},
		Catalog:     serve.DefaultCatalog(2048),
		MaxQueue:    -1, // unbounded: survivors must absorb failover re-admissions
		TimeScale:   20,
		TraceW:      trace,
		KeepOutputs: 4,
	})
	if err != nil {
		t.Fatalf("serve.Start: %v", err)
	}
	hs := httptest.NewServer(serve.NewHandler(sv, serve.HandlerConfig{Logf: quiet}))
	return &testShard{sv: sv, hs: hs, trace: trace}
}

// TestFleetFailoverDeterminism is the fleet's acceptance proof: three
// shards, jobs routed across tenants, one shard fail-stopped while it
// still owns unfinished work. Every admitted job must reach a terminal
// state (here: done — survivors have unbounded queues), and the
// survivors' drained fleet report must be byte-identical to a
// ReplayDir over their recorded traces.
func TestFleetFailoverDeterminism(t *testing.T) {
	shards := []*testShard{newTestShard(t), newTestShard(t), newTestShard(t)}
	cfg := Config{
		Shards: []Shard{
			{ID: "s0", URL: shards[0].hs.URL},
			{ID: "s1", URL: shards[1].hs.URL},
			{ID: "s2", URL: shards[2].hs.URL},
		},
		LoadFactor:    -1, // plain hashing: tenant→shard is fixed, so the kill is deterministic
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		FailAfter:     2,
		RetryBackoff:  5 * time.Millisecond,
		SkewThreshold: -1,
		Logf:          quiet,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rt.Start()

	submit := func(tenant string, i int) SubmitStatus {
		t.Helper()
		st := rt.Submit(serve.Request{Tenant: tenant, Kind: "wo",
			Params: serve.Params{"bytes": 1 << 20, "gpus": 2, "seed": int64(i + 1)}})
		if st.Code != http.StatusAccepted {
			t.Fatalf("submit %s/%d: status %d (%s)", tenant, i, st.Code, st.Err)
		}
		return st
	}
	tenants := []string{"ana", "bo", "cy", "dan", "eve", "fay"}
	n := 0
	for i, tn := range tenants {
		submit(tn, i)
		n++
	}

	// Pick the victim: the shard owning the last submitted job, then keep
	// feeding its tenant until the shard provably holds unfinished work
	// at the moment we kill it — that forces a real failover.
	jobs := rt.Jobs()
	victimID := jobs[len(jobs)-1].Shard
	victimTenant := jobs[len(jobs)-1].Tenant
	var victim *testShard
	for i, s := range cfg.Shards {
		if s.ID == victimID {
			victim = shards[i]
		}
	}
	if victim == nil {
		t.Fatalf("no shard %q", victimID)
	}
	killed := false
	for i := 0; i < 50 && !killed; i++ {
		submit(victimTenant, 100+i)
		n++
		s := victim.sv.Stats()
		if s.Queued+s.Running > 0 {
			victim.hs.CloseClientConnections()
			victim.hs.Close()
			killed = true
		}
	}
	if !killed {
		t.Fatal("victim shard never held unfinished work")
	}

	// The router must mark the victim down, re-admit its unfinished jobs
	// onto the survivors, and ride every job to a terminal state.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never settled: status %+v\njobs %+v", rt.Status(), rt.Jobs())
		}
		st := rt.Status()
		down := false
		for _, s := range st.Shards {
			if s.ID == victimID && s.State == shardDown {
				down = true
			}
		}
		allDone := true
		for _, j := range rt.Jobs() {
			if j.State != "done" {
				allDone = false
			}
		}
		if down && allDone {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(rt.Jobs()); got != n {
		t.Fatalf("fleet table has %d jobs, want %d", got, n)
	}
	stats := rt.Stats()
	if stats.Failovers == 0 {
		t.Fatal("shard died with unfinished work but no failovers were recorded")
	}
	if stats.Lost != 0 {
		t.Fatalf("%d jobs lost; every job must complete or be explicitly shed", stats.Lost)
	}

	// Live drain: merged report over the survivors.
	resps, err := rt.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(resps) != 2 {
		t.Fatalf("drained %d shards, want 2 survivors", len(resps))
	}
	var done int64
	for _, r := range resps {
		if r.Shard == victimID {
			t.Fatalf("dead shard %s answered the drain", victimID)
		}
		done += r.Done
	}
	// Jobs the victim finished before dying stay done in the fleet table
	// without appearing in any survivor's report; everything else must.
	victimDone := 0
	for _, j := range rt.Jobs() {
		if j.Shard == victimID {
			victimDone++
		}
	}
	if done != int64(n-victimDone) {
		t.Fatalf("survivors completed %d jobs, want %d (%d total, %d finished on the dead shard)",
			done, n-victimDone, n, victimDone)
	}
	liveMerged := Merge(resps)

	// Replay the survivors' traces from disk: byte-identical merge.
	dir := t.TempDir()
	for i, s := range cfg.Shards {
		if s.ID == victimID {
			continue // its partial trace died with it; its jobs live on in the survivors'
		}
		p := filepath.Join(dir, fmt.Sprintf("%s.jsonl", s.ID))
		if err := os.WriteFile(p, shards[i].trace.Bytes(), 0o644); err != nil {
			t.Fatalf("writing trace: %v", err)
		}
	}
	replayed, err := ReplayDir(dir, serve.ReplayOptions{})
	if err != nil {
		t.Fatalf("ReplayDir: %v", err)
	}
	if liveMerged != replayed {
		t.Fatalf("live and replayed fleet reports differ:\n--- live ---\n%s--- replay ---\n%s", liveMerged, replayed)
	}

	// Second drain call returns the cached responses (idempotent).
	again, err := rt.Drain()
	if err != nil || Merge(again) != liveMerged {
		t.Fatalf("Drain is not idempotent (err %v)", err)
	}
	victim.sv.Drain() // release the dead shard's session
}

// TestRouterRetriesTransientErrors: a shard that throws two transient
// 500s before accepting still lands the job, with retries counted.
func TestRouterRetriesTransientErrors(t *testing.T) {
	var mu sync.Mutex
	posts := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		n := posts
		mu.Unlock()
		if n <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.JobInfo{ID: 0, Tenant: "ana", Kind: "wo", Status: "queued"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "[]") })
	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "{}") })
	hs := httptest.NewServer(mux)
	defer hs.Close()

	rt, err := New(Config{
		Shards:        []Shard{{ID: "s0", URL: hs.URL}},
		SubmitRetries: 2,
		RetryBackoff:  time.Millisecond,
		Logf:          quiet,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st := rt.Submit(serve.Request{Tenant: "ana", Kind: "wo", Params: serve.Params{"bytes": 1 << 20, "gpus": 2, "seed": 1}})
	if st.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", st.Code, st.Err)
	}
	if got := rt.Stats().Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

// TestRouterReroutesAroundDeadShard: a tenant whose ring home refuses
// connections still gets placed — on the next ring candidate.
func TestRouterReroutesAroundDeadShard(t *testing.T) {
	alive := newTestShard(t)
	defer alive.hs.Close()
	defer alive.sv.Drain()
	deadURL := "http://127.0.0.1:1" // nothing listens on port 1

	rt, err := New(Config{
		Shards:        []Shard{{ID: "s0", URL: deadURL}, {ID: "s1", URL: alive.hs.URL}},
		LoadFactor:    -1,
		SubmitRetries: 1,
		RetryBackoff:  time.Millisecond,
		Logf:          quiet,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Find a tenant whose plain-hash home is the dead shard.
	ring, err := NewRing([]string{"s0", "s1"}, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	tenant := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("t%d", i)
		if home, _ := ring.Pick(cand, eligibleZero("s0", "s1"), -1); home == "s0" {
			tenant = cand
			break
		}
	}
	if tenant == "" {
		t.Fatal("no tenant hashes to s0")
	}
	st := rt.Submit(serve.Request{Tenant: tenant, Kind: "wo", Params: serve.Params{"bytes": 1 << 20, "gpus": 2, "seed": 1}})
	if st.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", st.Code, st.Err)
	}
	if st.Job.Shard != "s1" {
		t.Fatalf("job landed on %s, want the live shard s1", st.Job.Shard)
	}
	if got := rt.Stats().Reroutes; got == 0 {
		t.Fatal("no reroute recorded for a dead ring home")
	}
}

// TestMergeOrderAndSummary pins the merged-report shape: banners sorted
// by shard id, summary line over the summed counters.
func TestMergeOrderAndSummary(t *testing.T) {
	got := Merge([]serve.DrainResponse{
		{Shard: "s1", Epoch: 2, Submitted: 3, Done: 2, Failed: 1, Report: "r1\n"},
		{Shard: "s0", Epoch: 2, Submitted: 4, Done: 4, Report: "r0\n"},
	})
	want := "=== shard s0 epoch 2 ===\nr0\n=== shard s1 epoch 2 ===\nr1\n" +
		"fleet: 2 shards  7 submitted  6 done  1 failed  0 cancelled  0 rejected\n"
	if got != want {
		t.Fatalf("merge mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRouterHonorsRetryAfter: a shard shedding with a Retry-After drain
// prediction gets retried on that schedule — the hint overrides the
// exponential backoff, capped at RetryAfterCap — and the submission
// still lands on the same shard once the queue opens up. The same cap
// governs a transient 5xx carrying the header.
func TestRouterHonorsRetryAfter(t *testing.T) {
	const cap = 60 * time.Millisecond
	run := func(t *testing.T, firstAnswer func(w http.ResponseWriter)) {
		var mu sync.Mutex
		var stamps []time.Time
		mux := http.NewServeMux()
		mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			stamps = append(stamps, time.Now())
			n := len(stamps)
			mu.Unlock()
			if n == 1 {
				// Advertise a drain far beyond the cap: the router must
				// wait capped, not the full hint, and not the 1ms backoff.
				w.Header().Set("Retry-After", "7")
				firstAnswer(w)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(serve.JobInfo{ID: 0, Tenant: "ana", Kind: "wo", Status: "queued"})
		})
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
		mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "[]") })
		mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "{}") })
		hs := httptest.NewServer(mux)
		defer hs.Close()

		rt, err := New(Config{
			Shards:        []Shard{{ID: "s0", URL: hs.URL}},
			SubmitRetries: 2,
			RetryBackoff:  time.Millisecond,
			RetryAfterCap: cap,
			Logf:          quiet,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		st := rt.Submit(serve.Request{Tenant: "ana", Kind: "wo", Params: serve.Params{"bytes": 1 << 20, "gpus": 2, "seed": 1}})
		if st.Code != http.StatusAccepted {
			t.Fatalf("submit: status %d (%s)", st.Code, st.Err)
		}
		if st.Job.Shard != "s0" {
			t.Fatalf("job landed on %q, want the hinting shard s0", st.Job.Shard)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(stamps) != 2 {
			t.Fatalf("shard saw %d posts, want 2", len(stamps))
		}
		gap := stamps[1].Sub(stamps[0])
		if gap < cap-5*time.Millisecond {
			t.Errorf("retry after %v — the shard's Retry-After hint was ignored (backoff is 1ms)", gap)
		}
		if gap > 2*time.Second {
			t.Errorf("retry after %v — the 7s hint was not capped at %v", gap, cap)
		}
	}
	t.Run("429", func(t *testing.T) {
		run(t, func(w http.ResponseWriter) {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(serve.JobInfo{Status: "rejected", Reason: "queue full (shed)"})
		})
	})
	t.Run("5xx", func(t *testing.T) {
		run(t, func(w http.ResponseWriter) {
			http.Error(w, "transient", http.StatusInternalServerError)
		})
	})
}
