package des

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
)

// infTime is the sentinel "no event scheduled" horizon. It is far enough
// from MaxInt64 that adding any realistic edge latency cannot overflow.
const infTime = Time(math.MaxInt64 / 4)

// post is one cross-shard message: spawn body as a fresh process at time
// at on the destination engine. Posts are ordered by (at, srcKey, seq).
// srcKey identifies the LOGICAL sender — a stable id independent of how
// gangs are laid out over engines — and seq orders the posts of one
// sender, so the merged delivery order is identical at every shard count.
type post struct {
	at     Time
	srcKey int
	seq    uint64
	name   string
	body   func(p *Proc)
}

// postHeap is a binary min-heap of posts ordered by (at, srcKey, seq).
// It is engine-confined once routed: only the owning engine pops it.
type postHeap []post

func (h postHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.srcKey != b.srcKey {
		return a.srcKey < b.srcKey
	}
	return a.seq < b.seq
}

func (h *postHeap) push(p post) {
	*h = append(*h, p)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *postHeap) pop() post {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// shardEdge is one declared cross-shard channel with its lookahead bound.
type shardEdge struct {
	src, dst int
	minDelay Time
}

// ShardSet runs one simulation as N cooperating engines synchronized by
// conservative lookahead. Engine 0 is, by convention, the hub (schedulers
// and arrival processes live there); the remaining engines host confined
// groups of processes (gangs). Cross-shard communication happens ONLY
// through Post along edges declared with DeclareEdge, each carrying a
// positive minimum delay — the lookahead that lets neighbours advance in
// parallel.
//
// Synchronization is a classic conservative (CMB-style) round loop. Each
// round the coordinator reads every shard's next-event time NET_i, relaxes
//
//	eff_i = min(NET_i, min over in-edges (eff_j + L_ji))
//
// to a fixpoint (eff_i bounds the earliest instant shard i could emit a
// post, directly or transitively), computes each shard's safe horizon
//
//	safe_i = min over in-edges (eff_j + L_ji)
//
// and runs every shard with NET_i < safe_i concurrently up to (strictly
// below) its horizon. Posts generated during the round are routed at the
// barrier; a post from j to i is stamped no earlier than NET_j + L_ji >=
// safe_i, so it can never land behind the frontier a shard reached — the
// lookahead invariant, asserted at routing and again at delivery.
//
// Determinism does not depend on the physical layout: posts merge into a
// shard's event stream by (time, srcKey, seq), applied before any local
// event at the same time, and a Post whose destination is the sender's own
// engine takes the identical buffered path. A simulation therefore
// produces byte-identical event order at 1, 2, or N shards.
type ShardSet struct {
	engines []*Engine
	edges   []shardEdge
	inEdges [][]shardEdge // by destination

	mu     sync.Mutex
	staged [][]post       // cross-engine posts awaiting the round barrier
	seqs   map[int]uint64 // next seq per srcKey

	ran bool
	rec *obs.Recorder
}

// NewShardSet creates n engines (n >= 1) wired for coordinated execution.
func NewShardSet(n int) *ShardSet {
	if n < 1 {
		panic("des: a shard set needs at least one shard")
	}
	ss := &ShardSet{
		engines: make([]*Engine, n),
		inEdges: make([][]shardEdge, n),
		staged:  make([][]post, n),
		seqs:    make(map[int]uint64),
	}
	for i := range ss.engines {
		e := NewEngine()
		e.set = ss
		e.shard = i
		ss.engines[i] = e
	}
	return ss
}

// Shards returns the number of engines in the set.
func (ss *ShardSet) Shards() int { return len(ss.engines) }

// SetRecorder attaches a flight recorder to every shard engine and to the
// coordinator (which reports per-round synchronization bookkeeping). Must
// be called before Run.
func (ss *ShardSet) SetRecorder(r *obs.Recorder) {
	if ss.ran {
		panic("des: SetRecorder after Run")
	}
	ss.rec = r
	for _, e := range ss.engines {
		e.SetRecorder(r)
	}
}

// Engine returns shard i's engine. Engine 0 is the hub.
func (ss *ShardSet) Engine(i int) *Engine { return ss.engines[i] }

// DeclareEdge registers a directed cross-shard channel and its minimum
// delay — the lookahead bound every Post along it must respect. Must be
// called before Run. Self-edges need no declaration: a shard always sees
// its own posts.
func (ss *ShardSet) DeclareEdge(src, dst int, minDelay Time) {
	if ss.ran {
		panic("des: DeclareEdge after Run")
	}
	if src == dst {
		panic("des: self-edges are implicit; do not declare them")
	}
	if minDelay <= 0 {
		panic(fmt.Sprintf("des: edge %d->%d needs a positive lookahead, got %v", src, dst, minDelay))
	}
	e := shardEdge{src: src, dst: dst, minDelay: minDelay}
	ss.edges = append(ss.edges, e)
	ss.inEdges[dst] = append(ss.inEdges[dst], e)
}

// edgeDelay returns the declared minimum delay for src->dst, or ok=false.
func (ss *ShardSet) edgeDelay(src, dst int) (Time, bool) {
	for _, e := range ss.edges {
		if e.src == src && e.dst == dst {
			return e.minDelay, true
		}
	}
	return 0, false
}

// Post schedules body as a fresh process named name on shard dst's engine
// at src.Now()+delay. src must be the engine the caller is currently
// executing on (a process of src, or the coordinator between rounds).
// srcKey is the logical sender's stable identity; posts from one key must
// all originate from one engine at a time, which makes the per-key
// sequence numbers deterministic without any cross-shard agreement.
// Cross-engine posts require a declared edge and delay >= the edge's
// lookahead; same-engine posts only need delay > 0.
func (ss *ShardSet) Post(src *Engine, dst int, srcKey int, delay Time, name string, body func(p *Proc)) {
	if src.set != ss {
		panic("des: Post from an engine outside this shard set")
	}
	if dst < 0 || dst >= len(ss.engines) {
		panic(fmt.Sprintf("des: Post to unknown shard %d", dst))
	}
	if delay <= 0 {
		panic(fmt.Sprintf("des: post %q needs a positive delay, got %v", name, delay))
	}
	if src.shard != dst {
		min, ok := ss.edgeDelay(src.shard, dst)
		if !ok {
			panic(fmt.Sprintf("des: post %q on undeclared edge %d->%d", name, src.shard, dst))
		}
		if delay < min {
			panic(fmt.Sprintf("des: post %q carries delay %v below edge %d->%d lookahead %v",
				name, delay, src.shard, dst, min))
		}
	}
	po := post{at: src.now + delay, srcKey: srcKey, name: name, body: body}
	ss.mu.Lock()
	po.seq = ss.seqs[srcKey]
	ss.seqs[srcKey] = po.seq + 1
	if src.shard == dst {
		// Same engine: deliver straight into the owner's buffer. No race —
		// the poster IS the goroutine driving this engine right now.
		ss.mu.Unlock()
		src.posts.push(po)
		return
	}
	ss.staged[dst] = append(ss.staged[dst], po)
	ss.mu.Unlock()
}

// route moves staged posts into their destination engines' buffers. Called
// only between rounds, when no shard is executing.
func (ss *ShardSet) route() {
	for dst, batch := range ss.staged {
		if len(batch) == 0 {
			continue
		}
		e := ss.engines[dst]
		for _, po := range batch {
			if po.at < e.now {
				panic(fmt.Sprintf("des: post %q for t=%v reached shard %d behind its frontier t=%v (lookahead violation)",
					po.name, po.at, dst, e.now))
			}
			e.posts.push(po)
		}
		ss.staged[dst] = batch[:0]
	}
}

// NewInjector opens an injection handle served by the coordinator: the
// sharded counterpart of Engine.NewInjector, with identical semantics.
// Injected bodies spawn on the hub engine at the global frontier (the
// maximum shard frontier), so their effects reach every other shard
// strictly beyond any clock it has already passed. Must be called before
// Run.
func (ss *ShardSet) NewInjector() *Injector {
	hub := ss.engines[0]
	if hub.running {
		panic("des: NewInjector while the shard set is running")
	}
	hub.openInj++
	return &Injector{eng: hub}
}

// frontier returns the maximum shard clock — the global virtual time the
// simulation has reached.
func (ss *ShardSet) frontier() Time {
	var t Time
	for _, e := range ss.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// applyInjection lands one injection on the hub at the global frontier.
// Runs on the coordinator goroutine between rounds.
func (ss *ShardSet) applyInjection(m injMsg) {
	hub := ss.engines[0]
	if m.close {
		hub.openInj--
		if hub.openInj < 0 {
			panic("des: injector closed twice")
		}
		return
	}
	at := ss.frontier()
	if at < hub.now {
		at = hub.now
	}
	if ss.rec.Enabled() {
		// Live-mode-only, like the single-engine injection event.
		ss.rec.Emit(int64(at), obs.CatSim, "injector", "inject", obs.A("name", m.name))
	}
	hub.spawnAt(at, m.name, m.body)
}

// drainInjections applies every queued injection without blocking.
func (ss *ShardSet) drainInjections() {
	hub := ss.engines[0]
	for {
		select {
		case m := <-hub.injc:
			ss.applyInjection(m)
		default:
			return
		}
	}
}

// Run drives every shard to completion and returns the global makespan
// (the time of the last dispatched event anywhere). It owns global
// liveness: when no shard has pending work and no injector is open, any
// still-live process means the whole simulation deadlocked, and Run panics
// with the aggregated report the single-engine path would have produced.
// Like Engine.Run it may be called once.
func (ss *ShardSet) Run() Time {
	if ss.ran {
		panic("des: ShardSet.Run called twice")
	}
	ss.ran = true
	hub := ss.engines[0]
	for _, e := range ss.engines {
		if e.running {
			panic("des: ShardSet.Run over an engine already running")
		}
		e.running = true
	}
	defer func() {
		for _, e := range ss.engines {
			e.running = false
		}
		if !hub.everStopped {
			hub.everStopped = true
			close(hub.stopped)
		}
	}()

	n := len(ss.engines)
	nets := make([]Time, n)
	effs := make([]Time, n)
	safes := make([]Time, n)
	var wg sync.WaitGroup
	panics := make([]any, n)
	var rounds, shardRuns int64

	for {
		ss.drainInjections()
		ss.route()

		idle := true
		for i, e := range ss.engines {
			if t, ok := e.nextTime(); ok {
				nets[i] = t
				idle = false
			} else {
				nets[i] = infTime
			}
		}
		if idle {
			if hub.openInj > 0 {
				ss.applyInjection(<-hub.injc) // park: wait for the outside world
				continue
			}
			live, blocked := 0, []string(nil)
			for _, e := range ss.engines {
				live += e.live
				blocked = append(blocked, e.blockedNames()...)
			}
			if live > 0 {
				sort.Strings(blocked)
				panic(fmt.Sprintf("des: deadlock at t=%v: %d process(es) blocked across %d shard(s): %v",
					ss.frontier(), live, n, blocked))
			}
			break
		}

		// Conservative horizons: relax eff to a fixpoint over the declared
		// edges (at most n-1 rounds of Bellman-Ford), then bound each shard
		// by its incoming edges. A shard with no incoming edges is safe to
		// run to completion of its current work.
		copy(effs, nets)
		for range ss.engines {
			changed := false
			for _, ed := range ss.edges {
				if v := effs[ed.src] + ed.minDelay; v < effs[ed.dst] {
					effs[ed.dst] = v
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		ran := false
		for i := range ss.engines {
			safe := infTime
			for _, ed := range ss.inEdges[i] {
				if v := effs[ed.src] + ed.minDelay; v < safe {
					safe = v
				}
			}
			safes[i] = safe
			if nets[i] < safe {
				ran = true
			}
		}
		if !ran {
			// Cannot happen with positive edge delays: the globally minimal
			// NET always clears its horizon. Guard against a future zero-
			// latency cycle rather than spin forever.
			panic(fmt.Sprintf("des: shard set stalled at t=%v (zero-lookahead cycle?)", ss.frontier()))
		}
		running := 0
		for i := range ss.engines {
			if nets[i] >= safes[i] {
				continue
			}
			running++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { panics[i] = recover() }()
				ss.engines[i].runWindow(safes[i])
			}(i)
		}
		wg.Wait()
		for _, pnc := range panics {
			if pnc != nil {
				panic(pnc)
			}
		}
		rounds++
		shardRuns += int64(running)
		if ss.rec.Enabled() {
			ss.rec.Emit(int64(ss.frontier()), obs.CatEngine, "shardset", "round",
				obs.Int("round", rounds), obs.Int("ran", int64(running)))
		}
	}
	for _, e := range ss.engines {
		e.checkFutures()
	}
	if ss.rec.Enabled() {
		var dispatched int64
		for _, e := range ss.engines {
			dispatched += int64(e.dispatched)
		}
		ss.rec.Emit(int64(ss.frontier()), obs.CatEngine, "shardset", "shardset.stats",
			obs.Int("shards", int64(n)), obs.Int("rounds", rounds),
			obs.Int("shard_runs", shardRuns), obs.Int("dispatched", dispatched))
	}
	return ss.frontier()
}
