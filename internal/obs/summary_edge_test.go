package obs

import (
	"reflect"
	"testing"
)

// Edge cases for Summarize: the summary must be deterministic and sane
// for degenerate recordings, not just the happy-path pipeline traces
// obs_test.go covers.

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.MakespanNs != 0 || len(s.Streams) != 0 || len(s.Phases) != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	if s.Critical.Stream != "" || len(s.Critical.Steps) != 0 {
		t.Fatalf("empty critical path: %+v", s.Critical)
	}
	want := "makespan 0.000ms\ncritical path:  ends 0.000ms (0 steps)\n"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestSummarizeZeroDurationSpans(t *testing.T) {
	r := New()
	r.Emit(10, CatSim, "a", "tick")
	r.Span(20, 20, CatSim, "b", "blip") // zero-length span = instant
	s := Summarize(r.Canonical())
	// Instants anchor the makespan and critical stream but contribute no
	// busy time and no phase stats.
	if s.MakespanNs != 20 {
		t.Fatalf("makespan = %d", s.MakespanNs)
	}
	if len(s.Streams) != 0 || len(s.Phases) != 0 {
		t.Fatalf("instants must not produce utilization or phases: %+v", s)
	}
	if s.Critical.Stream != "b" || len(s.Critical.Steps) != 0 {
		t.Fatalf("critical path: %+v", s.Critical)
	}
}

func TestSummarizeSingleStream(t *testing.T) {
	r := New()
	r.Span(0, 10, CatSim, "only", "work")
	r.Span(5, 25, CatSim, "only", "work") // overlap counted once
	r.Span(40, 50, CatSim, "only", "work")
	s := Summarize(r.Canonical())
	if s.MakespanNs != 50 {
		t.Fatalf("makespan = %d", s.MakespanNs)
	}
	want := []StreamUtil{{Stream: "only", BusyNs: 35, Util: 0.7}}
	if !reflect.DeepEqual(s.Streams, want) {
		t.Fatalf("streams = %+v, want %+v", s.Streams, want)
	}
	if s.Critical.Stream != "only" || len(s.Critical.Steps) != 3 {
		t.Fatalf("critical path: %+v", s.Critical)
	}
	if len(s.Phases) != 1 || s.Phases[0].Count != 3 || s.Phases[0].TotalNs != 40 {
		t.Fatalf("phases: %+v", s.Phases)
	}
}

func TestSummarizeCriticalPathTie(t *testing.T) {
	// Two streams end at the same instant; the first event reaching that
	// end in canonical order must win, deterministically.
	r := New()
	r.Span(0, 100, CatSim, "z", "work")
	r.Span(0, 100, CatSim, "a", "work")
	s1 := Summarize(r.Canonical())
	if s1.Critical.Stream != "a" {
		t.Fatalf("tie winner = %q, want first in canonical order %q", s1.Critical.Stream, "a")
	}
	// Same events emitted in the opposite order: canonical order — and so
	// the tie winner — must not change.
	r2 := New()
	r2.Span(0, 100, CatSim, "a", "work")
	r2.Span(0, 100, CatSim, "z", "work")
	s2 := Summarize(r2.Canonical())
	if s2.Critical.Stream != s1.Critical.Stream {
		t.Fatalf("tie not deterministic: %q vs %q", s1.Critical.Stream, s2.Critical.Stream)
	}
	if s1.String() != s2.String() {
		t.Fatalf("String differs:\n%s\nvs\n%s", s1.String(), s2.String())
	}
}
