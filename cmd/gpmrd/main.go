// Command gpmrd is the GPMR online job service: a long-running daemon
// that serves MapReduce jobs over HTTP against one shared simulated GPU
// cluster. Wall-clock arrivals are mapped onto virtual time at the HTTP
// boundary; admission control (bounded queue, per-tenant quotas) sheds
// load the cluster cannot absorb; and every arrival is recorded to a
// trace that replays byte-identically through the offline path.
//
// Endpoints (see serve.NewHandler):
//
//	POST   /jobs                 submit {"tenant","kind","params",...} → 202 JobInfo
//	GET    /jobs                 list all job records
//	GET    /jobs/{id}            one job record
//	GET    /jobs/{id}/timeline   the job's flight-recorder timeline (Chrome trace JSON)
//	GET    /jobs/{id}/explain    the job's phase breakdown + bottleneck attribution
//	                             (?format=text for prose, JSON otherwise)
//	GET    /jobs/{id}/output     a completed job's canonical output text
//	DELETE /jobs/{id}            cancel a queued job
//	GET    /flight               the whole session's flight recording (JSONL) —
//	                             what gpmrfleet stitches into its fleet timeline
//	GET    /metrics              Prometheus text exposition (counters + histograms)
//	GET    /healthz              liveness: 200 "ok", or 503 "draining"
//	POST   /fleet/register       gpmrfleet registration handshake
//	POST   /drain                drain handshake: answers with the final report
//
// With -debug-addr set, a second listener serves net/http/pprof under
// /debug/pprof and expvar under /debug/vars.
//
// Shutdown (SIGINT/SIGTERM or POST /drain) shuts the HTTP listener down
// gracefully — in-flight submissions get terminal answers, never
// connection resets — then waits for every admitted job to finish,
// writes the arrival trace, and prints the final report to stdout.
// Replaying that trace:
//
//	gpmrd -replay trace.jsonl
//
// prints a byte-identical report — the CI smoke test diffs the two.
package main

import (
	"context"
	_ "expvar" // register /debug/vars on the debug mux
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the debug mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8373", "HTTP listen address")
	gpus := flag.Int("gpus", 16, "cluster GPU ranks")
	perNode := flag.Int("gpus-per-node", 4, "ranks packed per node")
	policy := flag.String("policy", "weighted-fair", "admission policy: fifo-exclusive|fixed-share|weighted-fair")
	share := flag.Int("share", 4, "per-gang rank cap (fixed-share only)")
	reserve := flag.Bool("reserve", false, "EASY backfill reservation for the blocked queue head")
	preempt := flag.Bool("preempt", false, "checkpoint-preempt running gangs for higher classes (also enables DELETE of running jobs)")
	elastic := flag.Bool("elastic", false, "grow molded gangs back toward their request when ranks free up (weighted-fair only)")
	queue := flag.Int("queue", 16, "admission queue bound (negative = unbounded)")
	quota := flag.Int("quota", 0, "per-tenant in-flight cap (0 = unlimited)")
	scale := flag.Float64("timescale", 1, "virtual seconds per wall second at the boundary")
	workers := flag.Int("workers", 0, "kernel-execution workers (see gpmrbench -workers)")
	shards := flag.Int("shards", 0, "DES engine shards (see gpmrbench -shards)")
	phys := flag.Int("phys", 1<<16, "physical element budget per job")
	keep := flag.Int("keep-outputs", 16, "retain canonical outputs of the N most recent completed jobs (0 = off)")
	shardID := flag.String("shard-id", "", "fleet shard identity (normally stamped by gpmrfleet registration)")
	ringEpoch := flag.Int("ring-epoch", 0, "fleet ring epoch joined at (with -shard-id)")
	jobTable := flag.String("jobtable", "", "append the final job table (JSONL) to this file at drain")
	tracePath := flag.String("trace", "", "record the arrival trace to this file (JSONL)")
	replayPath := flag.String("replay", "", "replay a recorded trace offline and print the report")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. 127.0.0.1:8374)")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "graceful HTTP shutdown window for in-flight requests")
	flag.Parse()

	if *debugAddr != "" {
		// The blank pprof/expvar imports register on the default mux;
		// serving it on a second listener keeps profiling off the API port.
		go func() {
			log.Printf("gpmrd: debug endpoints (/debug/pprof, /debug/vars) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("gpmrd: debug server: %v", err)
			}
		}()
	}
	if *replayPath != "" {
		if err := replay(*replayPath, *workers, *shards); err != nil {
			log.Fatalf("gpmrd: %v", err)
		}
		return
	}
	opts := liveOptions{
		addr: *addr, gpus: *gpus, perNode: *perNode, policy: *policy, share: *share,
		queue: *queue, quota: *quota, scale: *scale, workers: *workers, shards: *shards,
		phys: *phys, keepOutputs: *keep, shardID: *shardID, ringEpoch: *ringEpoch,
		jobTable: *jobTable, tracePath: *tracePath, grace: *grace,
		reserve: *reserve, preempt: *preempt, elastic: *elastic,
	}
	if err := live(opts); err != nil {
		log.Fatalf("gpmrd: %v", err)
	}
}

// replay runs the offline path: same admission code, no wall clock.
func replay(path string, workers, shards int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := serve.ReadTrace(f)
	if err != nil {
		return err
	}
	rep, err := serve.Replay(tr, serve.ReplayOptions{Workers: workers, Shards: shards})
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	return nil
}

// parsePolicy maps the flag onto a sched.Policy.
func parsePolicy(name string, share int) (sched.Policy, error) {
	k, err := sched.ParsePolicyKind(name)
	if err != nil {
		return sched.Policy{}, err
	}
	return sched.Policy{Kind: k, Share: share}, nil
}

// lazyFile defers file creation to the first write, so a daemon that
// fails before recording anything never leaves a truncated trace file
// behind.
type lazyFile struct {
	path string
	f    *os.File
	err  error
}

func (l *lazyFile) Write(p []byte) (int, error) {
	if l.err != nil {
		return 0, l.err
	}
	if l.f == nil {
		if l.f, l.err = os.Create(l.path); l.err != nil {
			return 0, l.err
		}
	}
	return l.f.Write(p)
}

// Close closes the file if it was ever created.
func (l *lazyFile) Close() error {
	if l.f == nil {
		return nil
	}
	return l.f.Close()
}

type liveOptions struct {
	addr, policy, shardID, jobTable, tracePath    string
	gpus, perNode, share, queue, quota            int
	workers, shards, phys, keepOutputs, ringEpoch int
	reserve, preempt, elastic                     bool
	scale                                         float64
	grace                                         time.Duration
}

func live(o liveOptions) error {
	pol, err := parsePolicy(o.policy, o.share)
	if err != nil {
		return err
	}
	pol.Reserve, pol.Preempt, pol.Elastic = o.reserve, o.preempt, o.elastic
	if err := pol.Validate(o.gpus); err != nil {
		return err
	}
	cc := cluster.DefaultConfig(o.gpus)
	if o.perNode > 0 {
		cc.GPUsPerNode = o.perNode
	}
	cc.Workers = o.workers
	cc.Shards = o.shards
	// The live daemon always carries a flight recorder: it feeds the
	// per-job timeline endpoint and recording never perturbs virtual time.
	cc.Obs = obs.New()

	cfg := serve.Config{
		Cluster:     cc,
		Policy:      pol,
		Catalog:     serve.DefaultCatalog(o.phys),
		MaxQueue:    o.queue,
		Quota:       o.quota,
		TimeScale:   o.scale,
		KeepOutputs: o.keepOutputs,
	}
	var traceF *lazyFile
	if o.tracePath != "" {
		// Lazily created on the first trace write — which can only happen
		// once Start has succeeded — and closed on every exit path.
		traceF = &lazyFile{path: o.tracePath}
		cfg.TraceW = traceF
		defer func() {
			if err := traceF.Close(); err != nil {
				log.Printf("gpmrd: closing trace file: %v", err)
			}
		}()
	}
	sv, err := serve.Start(cfg)
	if err != nil {
		return err
	}
	if o.shardID != "" {
		if err := sv.SetFleet(o.shardID, o.ringEpoch); err != nil {
			return err
		}
	}

	// The drain endpoint and POSIX signals converge on one stop channel;
	// either way the listener shuts down gracefully before sv.Drain, so
	// accepted submissions reach the admission path and get answers.
	stop := make(chan struct{})
	h := serve.NewHandler(sv, serve.HandlerConfig{OnDrain: func() { close(stop) }})
	srv := &http.Server{Addr: o.addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gpmrd: serving %d GPUs (%d/node) under %s on %s", o.gpus, cc.GPUsPerNode, pol.Kind, o.addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("gpmrd: %v — draining", s)
	case <-stop:
		log.Printf("gpmrd: drain requested — shutting down")
	}
	// Graceful shutdown: stop accepting connections but let in-flight
	// requests finish (a racing POST /jobs gets its 202/429/503, never a
	// connection reset). srv.Close would abort them mid-write.
	ctx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("gpmrd: http shutdown: %v", err)
	}
	rep, err := sv.Drain()
	if err != nil {
		return err
	}
	if traceF != nil {
		log.Printf("gpmrd: arrival trace written to %s", o.tracePath)
	}
	if o.jobTable != "" {
		if err := writeJobTable(sv, o.jobTable); err != nil {
			log.Printf("gpmrd: writing job table: %v", err)
		}
	}
	// The report is the only thing on stdout: a replay of the recorded
	// trace must print byte-identical text.
	fmt.Print(rep.String())
	return nil
}

// writeJobTable appends the drained job table to path, preserving prior
// incarnations' records — the restartable history a shard leaves behind.
func writeJobTable(sv *serve.Server, path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := sv.WriteJobTable(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
