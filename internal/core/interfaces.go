// Package core implements GPMR, the paper's multi-GPU MapReduce pipeline:
// chunked Maps with optional Accumulation, Partial Reduction, and
// Combination; GPU partitioning; a CPU-side Bin substage that overlaps
// network communication with mapping; a CUDPP-based Sort stage; a chunked
// Reduce stage driven by a value-set callback; and a dynamic per-GPU work
// queue with chunk shifting for load balance.
//
// One simulated process drives each GPU, as in the paper. All stages and
// substages are customizable; defaults are provided for the Partitioner and
// Sorter. The pipeline runs on the simulated cluster from
// internal/cluster — see DESIGN.md for the hardware substitution argument.
package core

import (
	"repro/internal/cudpp"
	"repro/internal/des"
	"repro/internal/gpu"
	"repro/internal/keyval"
)

// Chunk is one indivisible unit of map work. GPMR streams chunks to GPUs
// one at a time, assuming a chunk and its output consume a large fraction
// of GPU memory; chunks must be movable between queues for load balancing
// (in the simulation, moves charge fabric transfer time for VirtBytes).
type Chunk interface {
	// Elems is the number of physical items the chunk holds.
	Elems() int
	// VirtBytes is the chunk's size at paper scale: what the H2D copy,
	// device allocation, and any load-balancing move are charged for.
	VirtBytes() int64
}

// Mapper is the user's map stage. Map processes one resident chunk: it
// launches kernels through ctx (charging the simulated GPU) and emits
// key–value pairs with ctx.Emit, or folds them into ctx.Resident() when the
// job uses Accumulation.
//
// One Mapper instance is shared by every rank (and, under speculation, by
// twin copies of one chunk running concurrently), and its kernel closures
// may execute on a worker pool: any state on the Mapper itself must be
// immutable after construction — per-rank mutable state belongs on the
// context (Resident, Emit) or in the chunk. Chunks are read-only during
// Map for the same reason: a speculative twin may be reading the same
// chunk at the same host instant. See MapContext's closure-capture
// contract.
type Mapper[V any] interface {
	Map(ctx *MapContext[V], c Chunk)
}

// PartialReducer reduces like-keyed pairs still resident on the GPU after
// each chunk's map, before they are transferred — the CellMR-style substage
// that trades GPU compute for PCIe and network traffic. It must rewrite
// ctx's emitted pairs in place (fewer pairs, same key set semantics) and
// charge its kernels through ctx.
type PartialReducer[V any] interface {
	PartialReduce(ctx *MapContext[V], pairs *keyval.Pairs[V])
}

// Combiner merges all values of one unique key into a single pair, executed
// once after all Maps complete (unlike Hadoop's per-map combine) to
// minimize network traffic at the cost of staging pairs through CPU memory
// and back across PCIe. Combine receives sorted, grouped pairs and emits
// one pair per key through ctx.
type Combiner[V any] interface {
	Combine(ctx *MapContext[V], keys []uint32, segs []cudpp.Segment, vals []V)
}

// Partitioner assigns each key a destination reduce rank. It runs as a GPU
// kernel whose cost the framework charges; implementations only supply the
// (pure) placement function. A nil Partitioner sends every pair to rank 0,
// which the paper recommends for jobs with small intermediate data.
type Partitioner interface {
	Rank(key uint32, nRanks int) int
}

// RoundRobin is GPMR's default partitioner for integer keys.
type RoundRobin struct{}

// Rank implements Partitioner as key mod nRanks.
func (RoundRobin) Rank(key uint32, nRanks int) int { return int(key % uint32(nRanks)) }

// BlockPartitioner assigns consecutive key blocks to consecutive ranks
// (the paper's "consecutive blocks" alternative); Span is the total key
// range.
type BlockPartitioner struct{ Span uint32 }

// Rank implements Partitioner.
func (b BlockPartitioner) Rank(key uint32, nRanks int) int {
	if b.Span == 0 {
		return 0
	}
	r := int(uint64(key) * uint64(nRanks) / uint64(b.Span))
	if r >= nRanks {
		r = nRanks - 1
	}
	return r
}

// Sorter customizes the Sort stage's cost model. The functional result is
// always an ascending stable key sort; custom sorters model non-radix
// strategies (e.g. comparison sorts for keys that are not integer-like).
type Sorter interface {
	// SortCost returns the device time to sort virtN pairs with valBytes
	// values on a device with properties pr.
	SortCost(pr gpu.Props, virtN, valBytes int64) des.Time
}

// RadixSorter is GPMR's default Sorter (CUDPP radix sort).
type RadixSorter struct{}

// SortCost implements Sorter with the CUDPP radix model.
func (RadixSorter) SortCost(pr gpu.Props, virtN, valBytes int64) des.Time {
	return cudpp.SortPairsCost(pr, virtN, valBytes)
}

// Reducer is the user's reduce stage. GPMR asks ChunkValueSets how many
// value-sets to stage for the next reduce chunk (the paper's callback),
// then calls Reduce with those sets; Reduce launches kernels and emits
// final pairs through ctx.
type Reducer[V any] interface {
	// ChunkValueSets returns how many of the remaining value-sets to copy
	// to the GPU for the next reduction, given the remaining set count,
	// the remaining virtual value count, and free device bytes. Returns
	// are clamped to [1, sets].
	ChunkValueSets(sets int, virtVals int64, freeBytes int64) int
	Reduce(ctx *ReduceContext[V], keys []uint32, segs []cudpp.Segment, vals []V)
}

// FitAllChunking is a ChunkValueSets helper: take everything if it fits,
// otherwise the largest memory-sized prefix (by average set size).
func FitAllChunking(sets int, virtVals int64, freeBytes int64, valBytes int64) int {
	if sets <= 0 {
		return 1
	}
	need := virtVals * (4 + valBytes) * 2 // pairs + working space
	if need <= freeBytes {
		return sets
	}
	frac := float64(freeBytes) / float64(need)
	n := int(frac * float64(sets))
	if n < 1 {
		n = 1
	}
	if n > sets {
		n = sets
	}
	return n
}
