package core

import (
	"fmt"
	"strings"

	"repro/internal/des"
)

// RankTrace records one GPU process's stage completion timestamps plus
// bookkeeping counters. The Figure-2 decomposition derives from the
// timestamps: Map is everything until the last map-side work finishes,
// Complete Binning is the shuffle drain that could not overlap with
// mapping, then Sort and Reduce, with the remainder attributed to GPMR
// internals (scheduling, gather, barriers).
type RankTrace struct {
	MapDone     des.Time // last map/accumulate/combine kernel finished
	ShuffleDone des.Time // all partitions received (binning complete)
	SortDone    des.Time
	ReduceDone  des.Time

	ChunksMapped int
	ChunksStolen int   // total chunks this rank stole (local + remote)
	StolenBytes  int64 // total virtual bytes this rank stole
	PairsEmitted int64 // virtual
	PairsReduced int64 // virtual pairs fed to reducers
	OutOfCore    bool  // sort stage spilled

	// Steal provenance: a local steal is an intra-node shift (host-memory
	// copy); a remote steal crosses the node boundary and occupies both
	// endpoints' NICs for the whole transfer.
	LocalSteals       int
	RemoteSteals      int
	LocalStolenBytes  int64
	RemoteStolenBytes int64
}

// Trace aggregates a job's timing.
type Trace struct {
	Name  string
	GPUs  int
	Wall  des.Time
	Ranks []RankTrace

	// WireBytes is total cross-node virtual bytes; LocalBytes intra-node.
	WireBytes  int64
	LocalBytes int64
}

// StealStats aggregates chunk-shift provenance across a job's ranks.
type StealStats struct {
	LocalSteals  int
	RemoteSteals int
	LocalBytes   int64
	RemoteBytes  int64
}

// Total is the combined steal count.
func (s StealStats) Total() int { return s.LocalSteals + s.RemoteSteals }

// Steals sums the per-rank steal provenance counters.
func (t *Trace) Steals() StealStats {
	var s StealStats
	for _, r := range t.Ranks {
		s.LocalSteals += r.LocalSteals
		s.RemoteSteals += r.RemoteSteals
		s.LocalBytes += r.LocalStolenBytes
		s.RemoteBytes += r.RemoteStolenBytes
	}
	return s
}

// Breakdown is a Figure-2-style runtime decomposition, in fractions of the
// wall time (summing to 1).
type Breakdown struct {
	Map             float64
	CompleteBinning float64
	Sort            float64
	Reduce          float64
	Internal        float64
}

// Breakdown averages the per-rank stage decomposition.
func (t *Trace) Breakdown() Breakdown {
	if t.Wall <= 0 || len(t.Ranks) == 0 {
		return Breakdown{}
	}
	var b Breakdown
	w := float64(t.Wall)
	for _, r := range t.Ranks {
		m := clampT(r.MapDone)
		sh := maxT(r.ShuffleDone, m)
		so := maxT(r.SortDone, sh)
		re := maxT(r.ReduceDone, so)
		b.Map += float64(m) / w
		b.CompleteBinning += float64(sh-m) / w
		b.Sort += float64(so-sh) / w
		b.Reduce += float64(re-so) / w
		b.Internal += float64(t.Wall-re) / w
	}
	n := float64(len(t.Ranks))
	b.Map /= n
	b.CompleteBinning /= n
	b.Sort /= n
	b.Reduce /= n
	b.Internal /= n
	return b
}

func clampT(t des.Time) des.Time {
	if t < 0 {
		return 0
	}
	return t
}

func maxT(a, b des.Time) des.Time {
	if a > b {
		return a
	}
	return b
}

// String renders a compact human-readable summary.
func (t *Trace) String() string {
	b := t.Breakdown()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d GPU(s), wall %v\n", t.Name, t.GPUs, t.Wall)
	fmt.Fprintf(&sb, "  map %.1f%%  bin %.1f%%  sort %.1f%%  reduce %.1f%%  internal %.1f%%\n",
		b.Map*100, b.CompleteBinning*100, b.Sort*100, b.Reduce*100, b.Internal*100)
	fmt.Fprintf(&sb, "  wire %.1f MB  local %.1f MB", float64(t.WireBytes)/1e6, float64(t.LocalBytes)/1e6)
	if st := t.Steals(); st.Total() > 0 {
		fmt.Fprintf(&sb, "\n  steals %d local (%.1f MB) / %d remote (%.1f MB)",
			st.LocalSteals, float64(st.LocalBytes)/1e6,
			st.RemoteSteals, float64(st.RemoteBytes)/1e6)
	}
	return sb.String()
}
