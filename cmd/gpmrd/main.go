// Command gpmrd is the GPMR online job service: a long-running daemon
// that serves MapReduce jobs over HTTP against one shared simulated GPU
// cluster. Wall-clock arrivals are mapped onto virtual time at the HTTP
// boundary; admission control (bounded queue, per-tenant quotas) sheds
// load the cluster cannot absorb; and every arrival is recorded to a
// trace that replays byte-identically through the offline path.
//
// Endpoints:
//
//	POST   /jobs                 submit {"tenant","kind","params",...} → 202 JobInfo
//	GET    /jobs                 list all job records
//	GET    /jobs/{id}            one job record
//	GET    /jobs/{id}/timeline   the job's flight-recorder timeline (Chrome trace JSON)
//	DELETE /jobs/{id}            cancel a queued job
//	GET    /metrics              Prometheus text exposition (counters + histograms)
//	GET    /healthz              liveness
//
// With -debug-addr set, a second listener serves net/http/pprof under
// /debug/pprof and expvar under /debug/vars.
//
// Shutdown (SIGINT/SIGTERM) stops admissions, waits for every admitted
// job to finish, writes the arrival trace, and prints the final report
// to stdout. Replaying that trace:
//
//	gpmrd -replay trace.jsonl
//
// prints a byte-identical report — the CI smoke test diffs the two.
package main

import (
	"bytes"
	"encoding/json"
	_ "expvar" // register /debug/vars on the debug mux
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the debug mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8373", "HTTP listen address")
	gpus := flag.Int("gpus", 16, "cluster GPU ranks")
	perNode := flag.Int("gpus-per-node", 4, "ranks packed per node")
	policy := flag.String("policy", "weighted-fair", "admission policy: fifo-exclusive|fixed-share|weighted-fair")
	share := flag.Int("share", 4, "per-gang rank cap (fixed-share only)")
	queue := flag.Int("queue", 16, "admission queue bound (negative = unbounded)")
	quota := flag.Int("quota", 0, "per-tenant in-flight cap (0 = unlimited)")
	scale := flag.Float64("timescale", 1, "virtual seconds per wall second at the boundary")
	workers := flag.Int("workers", 0, "kernel-execution workers (see gpmrbench -workers)")
	shards := flag.Int("shards", 0, "DES engine shards (see gpmrbench -shards)")
	phys := flag.Int("phys", 1<<16, "physical element budget per job")
	tracePath := flag.String("trace", "", "record the arrival trace to this file (JSONL)")
	replayPath := flag.String("replay", "", "replay a recorded trace offline and print the report")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. 127.0.0.1:8374)")
	flag.Parse()

	if *debugAddr != "" {
		// The blank pprof/expvar imports register on the default mux;
		// serving it on a second listener keeps profiling off the API port.
		go func() {
			log.Printf("gpmrd: debug endpoints (/debug/pprof, /debug/vars) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("gpmrd: debug server: %v", err)
			}
		}()
	}
	if *replayPath != "" {
		if err := replay(*replayPath, *workers, *shards); err != nil {
			log.Fatalf("gpmrd: %v", err)
		}
		return
	}
	if err := live(*addr, *gpus, *perNode, *policy, *share, *queue, *quota, *scale, *workers, *shards, *phys, *tracePath); err != nil {
		log.Fatalf("gpmrd: %v", err)
	}
}

// replay runs the offline path: same admission code, no wall clock.
func replay(path string, workers, shards int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := serve.ReadTrace(f)
	if err != nil {
		return err
	}
	rep, err := serve.Replay(tr, serve.ReplayOptions{Workers: workers, Shards: shards})
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	return nil
}

// parsePolicy maps the flag onto a sched.Policy.
func parsePolicy(name string, share int) (sched.Policy, error) {
	k, err := sched.ParsePolicyKind(name)
	if err != nil {
		return sched.Policy{}, err
	}
	return sched.Policy{Kind: k, Share: share}, nil
}

func live(addr string, gpus, perNode int, policy string, share, queue, quota int, scale float64, workers, shards, phys int, tracePath string) error {
	pol, err := parsePolicy(policy, share)
	if err != nil {
		return err
	}
	cc := cluster.DefaultConfig(gpus)
	if perNode > 0 {
		cc.GPUsPerNode = perNode
	}
	cc.Workers = workers
	cc.Shards = shards
	// The live daemon always carries a flight recorder: it feeds the
	// per-job timeline endpoint and recording never perturbs virtual time.
	cc.Obs = obs.New()

	var traceF *os.File
	cfg := serve.Config{
		Cluster:   cc,
		Policy:    pol,
		Catalog:   serve.DefaultCatalog(phys),
		MaxQueue:  queue,
		Quota:     quota,
		TimeScale: scale,
	}
	if tracePath != "" {
		traceF, err = os.Create(tracePath)
		if err != nil {
			return err
		}
		cfg.TraceW = traceF
	}
	sv, err := serve.Start(cfg)
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		info, err := sv.Submit(req)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		switch {
		case info.State != serve.Rejected:
			writeJSON(w, http.StatusAccepted, info)
		case strings.HasPrefix(info.Reason, "shed:") || strings.HasPrefix(info.Reason, "quota:"):
			// Backpressure: the client should retry later, with the full
			// record so it can see queue state in the reason.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, info)
		default:
			writeJSON(w, http.StatusBadRequest, info)
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sv.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad job id")
			return
		}
		info, ok := sv.Job(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad job id")
			return
		}
		ok, err := sv.Cancel(id)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		if !ok {
			httpError(w, http.StatusConflict, "job is not queued (already running, finished, or unknown)")
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"cancelled": true})
	})
	mux.HandleFunc("GET /jobs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad job id")
			return
		}
		// Buffer so a missing job can still become a clean 404.
		var buf bytes.Buffer
		if err := sv.WriteTimeline(&buf, id); err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		sv.WriteMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gpmrd: serving %d GPUs (%d/node) under %s on %s", gpus, cc.GPUsPerNode, pol.Kind, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("gpmrd: %v — draining", s)
	}
	if err := srv.Close(); err != nil {
		log.Printf("gpmrd: closing http: %v", err)
	}
	rep, err := sv.Drain()
	if err != nil {
		return err
	}
	if traceF != nil {
		if err := traceF.Close(); err != nil {
			return err
		}
		log.Printf("gpmrd: arrival trace written to %s", tracePath)
	}
	// The report is the only thing on stdout: a replay of the recorded
	// trace must print byte-identical text.
	fmt.Print(rep.String())
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
