package core

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fabric"
)

// stealChunk is a fixed-size chunk for direct scheduler tests.
type stealChunk struct{ bytes int64 }

func (c *stealChunk) Elems() int       { return 1 }
func (c *stealChunk) VirtBytes() int64 { return c.bytes }

// schedFixture builds a scheduler over a two-node cluster (ranks 0,1 on
// node 0; ranks 2,3 on node 1) with queues[r] chunks of chunkBytes
// pre-assigned to each rank.
func schedFixture(policy StealPolicy, minQueue int, queues [4]int, chunkBytes int64) (*des.Engine, *fabric.Fabric, *scheduler) {
	eng := des.NewEngine()
	cc := cluster.DefaultConfig(4)
	cc.GPUsPerNode = 2
	cl := cluster.New(eng, cc)
	g, err := newGang(cl, identityRanks(4))
	if err != nil {
		panic(err)
	}
	var chunks []Chunk
	var owner []int
	for r, n := range queues {
		for i := 0; i < n; i++ {
			chunks = append(chunks, &stealChunk{bytes: chunkBytes})
			owner = append(owner, r)
		}
	}
	cfg := Config{GPUs: 4, StealPolicy: policy, StealMinQueue: minQueue}
	s := newScheduler(eng, chunks, cfg, g, func(c int) int { return owner[c] })
	return eng, cl.Fabric, s
}

// stealOnce runs one next() call for the thief inside the engine and
// returns the victim rank.
func stealOnce(eng *des.Engine, s *scheduler, thief int) int {
	victim := -2
	eng.Spawn("thief", func(p *des.Proc) {
		a, _ := s.next(p, thief)
		victim = a.stolenFrom
	})
	eng.Run()
	return victim
}

func TestStealGlobalPicksFullestAnywhere(t *testing.T) {
	// Remote rank 3 is fullest; global ignores the node boundary.
	eng, _, s := schedFixture(StealGlobal, 2, [4]int{0, 2, 0, 5}, 1<<20)
	if v := stealOnce(eng, s, 0); v != 3 {
		t.Errorf("global policy stole from rank %d, want fullest rank 3", v)
	}
}

func TestStealLocalFirstPrefersSameNode(t *testing.T) {
	// Same queues as above: local-first must take the smaller same-node
	// queue (rank 1) over the fuller remote one (rank 3).
	eng, fab, s := schedFixture(StealLocalFirst, 2, [4]int{0, 2, 0, 5}, 1<<20)
	if v := stealOnce(eng, s, 0); v != 1 {
		t.Errorf("local-first stole from rank %d, want same-node rank 1", v)
	}
	if fab.BytesSent() != 0 {
		t.Errorf("same-node steal crossed the fabric: BytesSent=%d", fab.BytesSent())
	}
	if fab.LocalBytes() != 1<<20 {
		t.Errorf("same-node steal charged %d local bytes, want %d", fab.LocalBytes(), 1<<20)
	}
}

func TestStealLocalFirstCrossesWhenNodeDry(t *testing.T) {
	// The thief's whole node (ranks 0,1) is empty: cross the boundary.
	eng, fab, s := schedFixture(StealLocalFirst, 2, [4]int{0, 0, 0, 5}, 1<<20)
	if v := stealOnce(eng, s, 0); v != 3 {
		t.Errorf("stole from rank %d, want remote rank 3", v)
	}
	if fab.BytesSent() != 1<<20 {
		t.Errorf("cross-node steal charged %d wire bytes, want %d", fab.BytesSent(), 1<<20)
	}
}

func TestStealThresholdPrefersQualifyingQueue(t *testing.T) {
	// minQueue 4: rank 1 (3 queued) is below the threshold, rank 3 (4
	// queued) meets it — the threshold, not raw fullness order within the
	// fallback, decides.
	eng, _, s := schedFixture(StealGlobal, 4, [4]int{0, 3, 0, 4}, 1<<20)
	if v := stealOnce(eng, s, 0); v != 3 {
		t.Errorf("stole from rank %d, want threshold-qualifying rank 3", v)
	}
}

func TestStealFallbackBelowThreshold(t *testing.T) {
	// No queue meets minQueue 4, but an idle GPU is worse than a small
	// shift: fall back to a non-empty queue.
	eng, _, s := schedFixture(StealGlobal, 4, [4]int{0, 0, 0, 1}, 1<<20)
	if v := stealOnce(eng, s, 0); v != 3 {
		t.Errorf("stole from rank %d, want fallback rank 3", v)
	}
}

func TestStealFallbackPicksFullest(t *testing.T) {
	// The below-threshold fallback must still prefer the fullest queue,
	// not the first non-empty by rank order: robbing rank 1's only chunk
	// while rank 3 holds three would idle rank 1 on its next pull.
	eng, _, s := schedFixture(StealGlobal, 4, [4]int{0, 1, 0, 3}, 1<<20)
	if v := stealOnce(eng, s, 0); v != 3 {
		t.Errorf("fallback stole from rank %d, want fullest rank 3", v)
	}
}

func TestStealThresholdDefinesNodeDry(t *testing.T) {
	// Local rank 1 holds a single below-threshold chunk while remote
	// rank 3 is well stocked: with minQueue 2 the node counts as dry, so
	// the thief crosses rather than robbing the straggler its owner will
	// finish sooner locally.
	eng, _, s := schedFixture(StealLocalFirst, 2, [4]int{0, 1, 0, 5}, 1<<20)
	if v := stealOnce(eng, s, 0); v != 3 {
		t.Errorf("stole from rank %d, want remote rank 3 (local node dry)", v)
	}
	// With minQueue 1 the same placement keeps the steal on-node.
	eng2, _, s2 := schedFixture(StealLocalFirst, 1, [4]int{0, 1, 0, 5}, 1<<20)
	if v := stealOnce(eng2, s2, 0); v != 1 {
		t.Errorf("stole from rank %d, want same-node rank 1 at minQueue 1", v)
	}
}

func TestStealExhaustion(t *testing.T) {
	eng, _, s := schedFixture(StealLocalFirst, 2, [4]int{0, 0, 0, 0}, 1<<20)
	eng2, _, s2 := schedFixture(StealGlobal, 2, [4]int{0, 0, 0, 0}, 1<<20)
	for _, tc := range []struct {
		eng *des.Engine
		s   *scheduler
	}{{eng, s}, {eng2, s2}} {
		var ok bool
		tc.eng.Spawn("thief", func(p *des.Proc) {
			_, ok = tc.s.next(p, 0)
		})
		tc.eng.Run()
		if ok {
			t.Error("next returned a chunk from empty queues")
		}
	}
	if s.remaining() != 0 {
		t.Errorf("remaining=%d on empty queues", s.remaining())
	}
}

func TestStealVictimKeepsPrefix(t *testing.T) {
	// The victim loses its tail chunk, not the head it will pull next.
	eng, _, s := schedFixture(StealGlobal, 2, [4]int{0, 3, 0, 0}, 1<<20)
	if v := stealOnce(eng, s, 0); v != 1 {
		t.Fatalf("stole from rank %d, want 1", v)
	}
	if got := len(s.queues[1]); got != 2 {
		t.Errorf("victim queue has %d chunks, want 2", got)
	}
	if s.queues[1][0] != 0 {
		t.Errorf("victim lost its head chunk")
	}
}

func TestUnknownStealPolicyRejected(t *testing.T) {
	data := smallData(100, 10)
	j := countJob(data, 1, 2)
	j.Config.StealPolicy = StealPolicy(99)
	if _, err := j.Run(); err == nil {
		t.Error("unknown StealPolicy: expected error")
	}
}

// skewedJob places every chunk on its node's first rank (ranks 0 and 4 of
// an 8-GPU, 4-per-node job), so six ranks must steal.
func skewedJob(data []uint32, policy StealPolicy) *Job[uint32] {
	j := countJob(data, 8, 32)
	j.Config.StealPolicy = policy
	j.Assign = func(chunk int) int { return (chunk % 2) * 4 }
	return j
}

func TestStealTraceProvenance(t *testing.T) {
	data := smallData(20000, 500)
	res := skewedJob(data, StealLocalFirst).MustRun()
	checkCounts(t, &res.Output, referenceCounts(data, 0))
	st := res.Trace.Steals()
	if st.LocalSteals == 0 {
		t.Error("skewed placement produced no local steals")
	}
	for r, tr := range res.Trace.Ranks {
		if tr.LocalSteals+tr.RemoteSteals != tr.ChunksStolen {
			t.Errorf("rank %d: local %d + remote %d != stolen %d", r, tr.LocalSteals, tr.RemoteSteals, tr.ChunksStolen)
		}
		if tr.LocalStolenBytes+tr.RemoteStolenBytes != tr.StolenBytes {
			t.Errorf("rank %d: stolen bytes split %d+%d != total %d", r, tr.LocalStolenBytes, tr.RemoteStolenBytes, tr.StolenBytes)
		}
	}
	if st.Total() == 0 || st.LocalBytes == 0 {
		t.Errorf("aggregate steal stats empty: %+v", st)
	}
}

func TestLocalFirstReducesCrossNodeTraffic(t *testing.T) {
	data := smallData(20000, 500)
	global := skewedJob(data, StealGlobal).MustRun()
	local := skewedJob(data, StealLocalFirst).MustRun()
	// Shuffle traffic is placement- and policy-independent here, so any
	// cross-node delta comes from steal transfers.
	if local.Trace.WireBytes >= global.Trace.WireBytes {
		t.Errorf("local-first wire bytes %d >= global %d", local.Trace.WireBytes, global.Trace.WireBytes)
	}
	gs, ls := global.Trace.Steals(), local.Trace.Steals()
	if gs.RemoteSteals == 0 {
		t.Error("global policy produced no cross-node steals on the skewed placement")
	}
	if ls.RemoteBytes >= gs.RemoteBytes {
		t.Errorf("local-first remote stolen bytes %d >= global %d", ls.RemoteBytes, gs.RemoteBytes)
	}
	// Both policies still map every chunk exactly once.
	for _, res := range []*Result[uint32]{global, local} {
		mapped := 0
		for _, tr := range res.Trace.Ranks {
			mapped += tr.ChunksMapped
		}
		if mapped != 32 {
			t.Errorf("mapped %d chunks, want 32", mapped)
		}
	}
}

func TestStealTransferChargedOnFabric(t *testing.T) {
	// A remote steal holds both NICs for the chunk's serialized transfer:
	// with all chunks on node 0 and the thief on node 1, wire bytes must
	// include the stolen chunks' VirtBytes on top of shuffle traffic.
	data := smallData(20000, 500)
	base := countJob(data, 8, 32).MustRun() // balanced: no steals
	skew := countJob(data, 8, 32)
	skew.Assign = func(chunk int) int { return chunk % 4 } // node 0 only
	res := skew.MustRun()
	st := res.Trace.Steals()
	if st.RemoteBytes == 0 {
		t.Fatal("expected cross-node steals with all chunks on node 0")
	}
	if res.Trace.WireBytes < base.Trace.WireBytes+st.RemoteBytes {
		t.Errorf("wire bytes %d do not cover shuffle %d + stolen %d",
			res.Trace.WireBytes, base.Trace.WireBytes, st.RemoteBytes)
	}
}

func TestStealTraceInString(t *testing.T) {
	data := smallData(10000, 300)
	res := skewedJob(data, StealLocalFirst).MustRun()
	out := res.Trace.String()
	if !strings.Contains(out, "steals") {
		t.Errorf("trace summary lacks steal provenance:\n%s", out)
	}
}
