// Package fabric models the cluster interconnect: per-node NIC ingress and
// egress engines connected through a non-blocking switch, with a
// latency + size/bandwidth message cost (cut-through, so egress and ingress
// occupancy overlap). This matches the paper's QDR InfiniBand + MVAPICH2
// environment at the fidelity GPMR cares about: four GPU processes per node
// share one NIC in each direction, which is what throttles
// communication-bound MapReduce jobs at scale.
//
// Intra-node messages bypass the NIC and cost host-memory-copy time, as
// MVAPICH2's shared-memory transport would.
package fabric

import (
	"fmt"

	"repro/internal/des"
)

// Props describes the interconnect.
type Props struct {
	Bandwidth float64  // bytes/s per NIC per direction
	Latency   des.Time // end-to-end message latency
	HostMemBW float64  // bytes/s for intra-node (shared-memory) transport

	// GPUDirect, when true, models the paper's future-work wish: NIC
	// transfers source/sink GPU memory directly, so callers skip the
	// staging PCIe copies. The fabric itself only records the flag; the
	// GPMR pipeline consults it.
	GPUDirect bool
}

// QDRInfiniBand returns the effective characteristics of the paper's
// cluster fabric (QDR IB through gen-1 PCIe caps practical bandwidth near
// 3.2 GB/s; MVAPICH2 small-message latency ~2 µs).
func QDRInfiniBand() Props {
	return Props{Bandwidth: 3.2e9, Latency: 2 * des.Microsecond, HostMemBW: 5.3e9}
}

// Message is one fabric delivery.
type Message struct {
	From, To  int
	Tag       string
	VirtBytes int64
	Payload   any
}

// Fabric connects a set of ranks placed on nodes.
type Fabric struct {
	eng    *des.Engine
	props  Props
	nodeOf []int
	inbox  []*des.Queue
	nicIn  []*des.Resource
	nicOut []*des.Resource

	// Traffic counters in virtual bytes, kept per SENDER node so that
	// concurrent tenants on different engine shards never write the same
	// word: a node's NICs belong to one gang at a time, and that gang's
	// processes all live on one shard. Reports sum them.
	bytesSent  []int64
	localBytes []int64
}

// New builds a fabric for len(nodeOf) ranks, where nodeOf[r] is the node
// hosting rank r. Nodes are numbered 0..max(nodeOf).
func New(eng *des.Engine, props Props, nodeOf []int) *Fabric {
	maxNode := -1
	for _, n := range nodeOf {
		if n > maxNode {
			maxNode = n
		}
	}
	f := &Fabric{
		eng:        eng,
		props:      props,
		nodeOf:     append([]int(nil), nodeOf...),
		inbox:      make([]*des.Queue, len(nodeOf)),
		nicIn:      make([]*des.Resource, maxNode+1),
		nicOut:     make([]*des.Resource, maxNode+1),
		bytesSent:  make([]int64, maxNode+1),
		localBytes: make([]int64, maxNode+1),
	}
	for r := range f.inbox {
		f.inbox[r] = des.NewQueue(eng, fmt.Sprintf("inbox%d", r))
	}
	for n := 0; n <= maxNode; n++ {
		f.nicIn[n] = des.NewResource(eng, fmt.Sprintf("node%d.nic.in", n), 1)
		f.nicOut[n] = des.NewResource(eng, fmt.Sprintf("node%d.nic.out", n), 1)
	}
	return f
}

// Props returns the fabric's configuration.
func (f *Fabric) Props() Props { return f.props }

// BytesSent sums cross-node traffic in virtual bytes over all nodes.
// Call it from a quiesced simulation (reports), not mid-run from a shard.
func (f *Fabric) BytesSent() int64 {
	var sum int64
	for _, b := range f.bytesSent {
		sum += b
	}
	return sum
}

// LocalBytes sums intra-node (shared-memory) traffic in virtual bytes.
func (f *Fabric) LocalBytes() int64 {
	var sum int64
	for _, b := range f.localBytes {
		sum += b
	}
	return sum
}

// Ranks returns the number of ranks.
func (f *Fabric) Ranks() int { return len(f.nodeOf) }

// NodeOf returns the node hosting rank r.
func (f *Fabric) NodeOf(r int) int { return f.nodeOf[r] }

// SameNode reports whether two ranks share a node.
func (f *Fabric) SameNode(a, b int) bool { return f.nodeOf[a] == f.nodeOf[b] }

func (f *Fabric) wireTime(bytes int64) des.Time {
	return des.FromSeconds(float64(bytes) / f.props.Bandwidth)
}

// Send transmits a message from rank `from` (the calling process) to rank
// `to`. The caller blocks while its egress NIC is occupied (send-side cost);
// delivery happens asynchronously after the fabric latency, gated by the
// receiver's ingress NIC. Intra-node sends cost a host memory copy instead.
func (f *Fabric) Send(p *des.Proc, from, to int, tag string, virtBytes int64, payload any) {
	msg := Message{From: from, To: to, Tag: tag, VirtBytes: virtBytes, Payload: payload}
	if f.nodeOf[from] == f.nodeOf[to] {
		f.localBytes[f.nodeOf[from]] += virtBytes
		p.Sleep(des.FromSeconds(float64(virtBytes) / f.props.HostMemBW))
		f.inbox[to].Put(msg)
		return
	}
	f.bytesSent[f.nodeOf[from]] += virtBytes
	dur := f.wireTime(virtBytes)
	out := f.nicOut[f.nodeOf[from]]
	out.Acquire(p, 1)
	p.Sleep(dur)
	out.Release(1)
	in := f.nicIn[f.nodeOf[to]]
	lat := f.props.Latency
	// The wire process lives on the SENDER's engine — p's, not the one the
	// fabric was built on — so a sharded run keeps a gang's in-flight
	// messages on the gang's own shard.
	p.Engine().Spawn(fmt.Sprintf("wire:%d->%d", from, to), func(w *des.Proc) {
		w.Sleep(lat)
		// Cut-through: ingress occupancy overlaps egress in real fabrics;
		// we charge only the residual serialization at the receiver.
		in.Acquire(w, 1)
		w.Sleep(dur / 8) // receive-side per-message processing share
		in.Release(1)
		f.inbox[to].Put(msg)
	})
}

// Recv blocks until a message for rank r arrives and returns it. Callers
// demultiplex by Tag.
func (f *Fabric) Recv(p *des.Proc, r int) Message {
	return f.inbox[r].Get(p).(Message)
}

// TryRecv returns a pending message without blocking.
func (f *Fabric) TryRecv(r int) (Message, bool) {
	v, ok := f.inbox[r].TryGet()
	if !ok {
		return Message{}, false
	}
	return v.(Message), true
}

// Pending reports how many delivered messages sit unread in rank r's
// inbox. Multi-tenant runs use it as a lease-end invariant: a job must
// consume everything addressed to it before its ranks are re-leased.
func (f *Fabric) Pending(r int) int { return f.inbox[r].Len() }

// Transfer models a synchronous point-to-point bulk move (used for chunk
// shifting during load balancing): the caller blocks for the full transfer,
// holding both endpoints' NICs for cross-node moves.
func (f *Fabric) Transfer(p *des.Proc, from, to int, virtBytes int64) des.Time {
	start := p.Now()
	if f.nodeOf[from] == f.nodeOf[to] {
		f.localBytes[f.nodeOf[from]] += virtBytes
		p.Sleep(des.FromSeconds(float64(virtBytes) / f.props.HostMemBW))
		return p.Now() - start
	}
	f.bytesSent[f.nodeOf[from]] += virtBytes
	dur := f.wireTime(virtBytes)
	out, in := f.nicOut[f.nodeOf[from]], f.nicIn[f.nodeOf[to]]
	out.Acquire(p, 1)
	in.Acquire(p, 1)
	p.Sleep(f.props.Latency + dur)
	in.Release(1)
	out.Release(1)
	return p.Now() - start
}

// Barrier synchronizes a fixed set of participants, reusable across rounds.
type Barrier struct {
	eng     *des.Engine
	n       int
	arrived int
	waiters []*des.Proc
	lat     des.Time
}

// NewBarrier creates a barrier for n participants; each release costs one
// fabric latency (a dissemination barrier would cost log2(n)·latency — we
// charge the single hop MVAPICH2 achieves on this node count).
func (f *Fabric) NewBarrier(n int) *Barrier {
	return &Barrier{eng: f.eng, n: n, lat: f.props.Latency}
}

// Arrive blocks until all n participants have arrived.
func (b *Barrier) Arrive(p *des.Proc) {
	b.arrived++
	if b.arrived < b.n {
		b.waiters = append(b.waiters, p)
		p.Park()
		return
	}
	// Last arrival releases everyone after one latency hop. Wakes go
	// through each waiter's own engine (see des.Engine.Wake), so a barrier
	// serves whichever shard its participants run on.
	b.arrived = 0
	waiters := b.waiters
	b.waiters = nil
	p.Sleep(b.lat)
	for _, w := range waiters {
		b.eng.Wake(w)
	}
}
